type row = {
  mu : float;
  cbdt : float;
  cbd : float;
  cbd_n : int;
  first_fit : float;
}

let row mu =
  {
    mu;
    cbdt = Ratios.cbdt_best ~mu;
    cbd = Ratios.cbd_best ~mu;
    cbd_n = Ratios.cbd_best_n ~mu;
    first_fit = Ratios.first_fit ~mu;
  }

let default_mus = List.init 100 (fun i -> float_of_int (i + 1))

(* Rows are independent closed-form evaluations (the cbd minimisation
   scans n per mu), so the ratio grid maps across the pool; row order
   follows [mus] either way. *)
let series ?pool ?(mus = default_mus) () =
  match pool with
  | None -> List.map row mus
  | Some pool -> Dbp_par.Pool.parallel_map pool row mus

let crossover () =
  let step = 0.01 in
  let rec scan mu =
    if mu > 1000. then nan
    else if Ratios.cbd_best ~mu < Ratios.cbdt_best ~mu -. 1e-12 then mu
    else scan (mu +. step)
  in
  scan 1.

let equal_point_value = 7.

let pp_row ppf r =
  Format.fprintf ppf "%8.2f  %10.4f  %10.4f (n=%d)  %10.4f" r.mu r.cbdt r.cbd
    r.cbd_n r.first_fit

let pp_table ppf rows =
  Format.fprintf ppf "%8s  %10s  %16s  %10s@." "mu" "cbdt-ff" "cbd-ff"
    "first-fit";
  List.iter (fun r -> Format.fprintf ppf "%a@." pp_row r) rows
