(** The data behind the paper's Figure 8 (Section 5.4).

    Best achievable competitive ratios, durations known, as functions of
    mu: classify-by-departure-time First Fit at rho = sqrt(mu) Delta,
    classify-by-duration First Fit at the optimal category count n, and
    the original (non-clairvoyant) First Fit mu + 4 reference line.  The
    paper's observations to reproduce: both classification strategies are
    asymptotically far below mu + 4; classify-by-departure-time wins for
    mu < 4; classify-by-duration wins for mu > 4. *)

type row = {
  mu : float;
  cbdt : float;  (** 2 sqrt(mu) + 3 *)
  cbd : float;  (** min_n mu^(1/n) + n + 3 *)
  cbd_n : int;  (** the minimising n *)
  first_fit : float;  (** mu + 4 *)
}

val row : float -> row

val series : ?pool:Dbp_par.Pool.t -> ?mus:float list -> unit -> row list
(** Default mu grid: 1 to 100 in steps of 1 (the x-range of Figure 8).
    With [pool], the per-mu rows are computed across the pool's domains
    in submission order (bit-identical to the sequential series). *)

val crossover : unit -> float
(** The mu at which the two strategies' best ratios cross (cbd becomes
    strictly better), found by scanning a fine grid; the paper reports 4. *)

val equal_point_value : float
(** The common ratio value at mu = 4: both strategies give 2*2 + 3 = 7 =
    4^(1/2) + 2 + 3 ... i.e. 7.  Used as a sanity anchor in tests. *)

val pp_row : Format.formatter -> row -> unit

val pp_table : Format.formatter -> row list -> unit
