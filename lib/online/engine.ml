open Dbp_core

type bin_view = {
  index : int;
  opened_at : float;
  level : float;
  state : Bin_state.t;
}

type decision = Place of int | Open_new

type stepper = {
  decide : now:float -> open_bins:bin_view list -> Item.t -> decision;
  notify : item:Item.t -> index:int -> unit;
  departed : Item.t -> unit;
}

type index = {
  open_views : unit -> bin_view list;
  view : int -> bin_view option;
  first_fit : Item.t -> decision;
  best_fit : Item.t -> decision;
  worst_fit : Item.t -> decision;
  open_count : unit -> int;
}

type indexed_stepper = {
  i_decide : now:float -> index:index -> Item.t -> decision;
  i_notify : item:Item.t -> index:int -> unit;
  i_departed : Item.t -> unit;
}

type t = {
  name : string;
  make : unit -> stepper;
  make_indexed : (unit -> indexed_stepper) option;
}

exception Invalid_decision of string

type error =
  | Overflow of { algo : string; item : Item.t; bin : int; time : float }
  | Unknown_bin of { algo : string; bin : int; time : float }
  | Closed_bin of { algo : string; bin : int; time : float }
  | Unplaced_departure of { algo : string; item_id : int }

(* The legacy [Invalid_decision] messages, reproduced byte-for-byte so
   the exception shim is indistinguishable from the pre-refactor
   engines. *)
let error_to_string = function
  | Overflow { algo; item; bin; time } ->
      Printf.sprintf "%s: %s overflows bin %d at %g" algo
        (Item.to_string item) bin time
  | Unknown_bin { algo; bin; time = _ } ->
      Printf.sprintf "%s: unknown bin %d" algo bin
  | Closed_bin { algo; bin; time } ->
      Printf.sprintf "%s: bin %d is closed at %g" algo bin time
  | Unplaced_departure { algo; item_id } ->
      Printf.sprintf "%s: departure of unplaced item %d" algo item_id

(* Internal carrier: fatal paths raise this; the public entry points
   either surface it as [Error] ([run_result]) or re-raise the legacy
   [Invalid_decision] ([run]).  Never escapes this module. *)
exception Err of error

let default_departed (_ : Item.t) = ()

let stateless name decide =
  {
    name;
    make =
      (fun () ->
        {
          decide;
          notify = (fun ~item:_ ~index:_ -> ());
          departed = default_departed;
        });
    make_indexed = None;
  }

let indexed_stateless name decide i_decide =
  {
    name;
    make =
      (fun () ->
        {
          decide;
          notify = (fun ~item:_ ~index:_ -> ());
          departed = default_departed;
        });
    make_indexed =
      Some
        (fun () ->
          {
            i_decide;
            i_notify = (fun ~item:_ ~index:_ -> ());
            i_departed = default_departed;
          });
  }

let fail e = raise (Err e)

(* ------------------------------------------------------------------ *)
(* Reference engine: the original linked-list implementation, frozen as
   the differential-testing oracle.  Every event walks the full list of
   bins ever opened, so a run is Theta(n * bins) — do not optimise this;
   its value is being obviously faithful to the engine the test suite
   grew up on.  [run_indexed] must stay bit-identical to it. *)

(* Engine-side bin record.  [active] counts items currently active and
   [level] tracks their total size, so openness checks and level reads
   are O(1) instead of probing the level profile.  [level] is reset to 0
   whenever the bin empties, so float drift cannot accumulate across
   open/close cycles. *)
type ref_bin = {
  idx : int;
  opened : float;
  mutable bin : Bin_state.t;
  mutable active : int;
  mutable level : float;
}

(* Observer emissions pattern-match the option at each site so the
   no-observer path costs one branch, never a closure call — the bench
   obs sweep pins that overhead. *)

let reference_exn obs algo instance =
  let stepper = algo.make () in
  let bins : ref_bin list ref = ref [] (* reverse opening order *) in
  let home = Hashtbl.create 64 (* item id -> ref_bin *) in
  let views _now =
    List.rev !bins
    |> List.filter_map (fun lb ->
           if lb.active > 0 then
             Some
               {
                 index = lb.idx;
                 opened_at = lb.opened;
                 level = lb.level;
                 state = lb.bin;
               }
           else None)
  in
  let place lb item =
    let now = Item.arrival item in
    if not (Bin_state.fits_at lb.bin ~at:now item) then
      fail (Overflow { algo = algo.name; item; bin = lb.idx; time = now });
    lb.bin <- Bin_state.place lb.bin item;
    lb.active <- lb.active + 1;
    lb.level <- lb.level +. Item.size item;
    Hashtbl.replace home (Item.id item) lb;
    (match obs with
    | Some o -> o.Observer.on_place ~time:now ~item ~bin:lb.idx
    | None -> ());
    stepper.notify ~item ~index:lb.idx
  in
  let handle event =
    match event.Event.kind with
    | Event.Departure ->
        let lb =
          try Hashtbl.find home (Item.id event.Event.item)
          with Not_found ->
            fail
              (Unplaced_departure
                 { algo = algo.name; item_id = Item.id event.Event.item })
        in
        lb.active <- lb.active - 1;
        lb.level <-
          (if lb.active = 0 then 0.
           else lb.level -. Item.size event.Event.item);
        (match obs with
        | Some o ->
            o.Observer.on_departure ~time:event.Event.time
              ~item:event.Event.item;
            if lb.active = 0 then
              o.Observer.on_close_bin ~time:event.Event.time ~bin:lb.idx
        | None -> ());
        stepper.departed event.Event.item
    | Event.Arrival -> (
        let now = event.Event.time in
        let item = event.Event.item in
        (match obs with
        | Some o -> o.Observer.on_arrival ~time:now ~item
        | None -> ());
        let decision = stepper.decide ~now ~open_bins:(views now) item in
        (match obs with
        | Some o ->
            o.Observer.on_decision ~time:now ~item
              ~bin:(match decision with Place i -> Some i | Open_new -> None)
        | None -> ());
        match decision with
        | Open_new ->
            let lb =
              {
                idx = List.length !bins;
                opened = now;
                bin = Bin_state.empty ~index:(List.length !bins);
                active = 0;
                level = 0.;
              }
            in
            bins := lb :: !bins;
            (match obs with
            | Some o -> o.Observer.on_open_bin ~time:now ~bin:lb.idx
            | None -> ());
            place lb item
        | Place idx -> (
            match List.find_opt (fun lb -> lb.idx = idx) !bins with
            | None -> fail (Unknown_bin { algo = algo.name; bin = idx; time = now })
            | Some lb ->
                if lb.active = 0 then
                  fail (Closed_bin { algo = algo.name; bin = idx; time = now });
                place lb item))
  in
  List.iter handle (Event.of_instance instance);
  Packing.of_bins instance (List.rev_map (fun lb -> lb.bin) !bins)

(* ------------------------------------------------------------------ *)
(* Indexed engine.  Bins live in a growable array keyed by bin index
   (O(1) [Place] validation); the open bins form an intrusive doubly-
   linked list in index order (O(1) close, O(open) view materialisation
   instead of O(ever-opened)); fit queries go through {!Fit_index}
   (O(log n)); events come from a binary-heap queue.  Level bookkeeping
   uses the exact float expressions of the reference engine so the two
   are bit-identical on every deterministic algorithm. *)

type live_bin = {
  l_idx : int;
  l_opened : float;
  mutable l_bin : Bin_state.t;
  mutable l_active : int;
  mutable l_level : float;
  (* open-list links: bin indices, -1 for none.  A bin is on the list
     exactly while it has active items; it never re-enters. *)
  mutable l_prev : int;
  mutable l_next : int;
}

let dummy_bin =
  {
    l_idx = -1;
    l_opened = nan;
    l_bin = Bin_state.empty ~index:(-1);
    l_active = 0;
    l_level = 0.;
    l_prev = -1;
    l_next = -1;
  }

type state = {
  mutable arr : live_bin array; (* slots >= count hold dummy_bin *)
  mutable count : int;
  mutable head : int; (* first open bin index, -1 if none *)
  mutable tail : int;
  fit : Fit_index.t;
  homes : (int, live_bin) Hashtbl.t; (* item id -> bin *)
}

let bin_of st idx = st.arr.(idx)

let append_bin st now =
  if st.count = Array.length st.arr then begin
    let cap = max 16 (2 * st.count) in
    let arr = Array.make cap dummy_bin in
    Array.blit st.arr 0 arr 0 st.count;
    st.arr <- arr
  end;
  let idx = st.count in
  let lb =
    {
      l_idx = idx;
      l_opened = now;
      l_bin = Bin_state.empty ~index:idx;
      l_active = 0;
      l_level = 0.;
      l_prev = st.tail;
      l_next = -1;
    }
  in
  st.arr.(idx) <- lb;
  st.count <- st.count + 1;
  (* Fresh bins carry the highest index, so appending at the tail keeps
     the open list in index (opening) order. *)
  if st.tail >= 0 then (bin_of st st.tail).l_next <- idx else st.head <- idx;
  st.tail <- idx;
  Fit_index.open_bin st.fit idx;
  lb

let unlink st lb =
  if lb.l_prev >= 0 then (bin_of st lb.l_prev).l_next <- lb.l_next
  else st.head <- lb.l_next;
  if lb.l_next >= 0 then (bin_of st lb.l_next).l_prev <- lb.l_prev
  else st.tail <- lb.l_prev;
  lb.l_prev <- -1;
  lb.l_next <- -1

let view_of lb =
  { index = lb.l_idx; opened_at = lb.l_opened; level = lb.l_level; state = lb.l_bin }

let make_index st =
  let open_views () =
    let rec go idx acc =
      if idx < 0 then List.rev acc
      else
        let lb = bin_of st idx in
        go lb.l_next (view_of lb :: acc)
    in
    go st.head []
  in
  let view idx =
    if idx < 0 || idx >= st.count then None
    else
      let lb = bin_of st idx in
      if lb.l_active > 0 then Some (view_of lb) else None
  in
  let query q item =
    match q st.fit ~size:(Item.size item) with
    | Some idx -> Place idx
    | None -> Open_new
  in
  let open_count () =
    let rec go idx n = if idx < 0 then n else go (bin_of st idx).l_next (n + 1) in
    go st.head 0
  in
  {
    open_views;
    view;
    first_fit = query Fit_index.first_fit;
    best_fit = query Fit_index.best_fit;
    worst_fit = query Fit_index.worst_fit;
    open_count;
  }

let indexed_exn obs algo instance =
  let stepper =
    match algo.make_indexed with
    | Some make -> make ()
    | None ->
        let s = algo.make () in
        {
          i_decide =
            (fun ~now ~index item ->
              s.decide ~now ~open_bins:(index.open_views ()) item);
          i_notify = s.notify;
          i_departed = s.departed;
        }
  in
  let st =
    {
      arr = Array.make 16 dummy_bin;
      count = 0;
      head = -1;
      tail = -1;
      fit = Fit_index.create ();
      homes = Hashtbl.create 64;
    }
  in
  let index = make_index st in
  let place lb item =
    let now = Item.arrival item in
    if not (Bin_state.fits_at lb.l_bin ~at:now item) then
      fail (Overflow { algo = algo.name; item; bin = lb.l_idx; time = now });
    lb.l_bin <- Bin_state.place_unchecked lb.l_bin item;
    lb.l_active <- lb.l_active + 1;
    lb.l_level <- lb.l_level +. Item.size item;
    Fit_index.set_level st.fit lb.l_idx lb.l_level;
    Hashtbl.replace st.homes (Item.id item) lb;
    (match obs with
    | Some o -> o.Observer.on_place ~time:now ~item ~bin:lb.l_idx
    | None -> ());
    stepper.i_notify ~item ~index:lb.l_idx
  in
  let handle event =
    match event.Event.kind with
    | Event.Departure ->
        let item = event.Event.item in
        let lb =
          try Hashtbl.find st.homes (Item.id item)
          with Not_found ->
            fail
              (Unplaced_departure { algo = algo.name; item_id = Item.id item })
        in
        lb.l_active <- lb.l_active - 1;
        lb.l_level <-
          (if lb.l_active = 0 then 0. else lb.l_level -. Item.size item);
        if lb.l_active = 0 then begin
          Fit_index.close_bin st.fit lb.l_idx;
          unlink st lb
        end
        else Fit_index.set_level st.fit lb.l_idx lb.l_level;
        (match obs with
        | Some o ->
            o.Observer.on_departure ~time:event.Event.time ~item;
            if lb.l_active = 0 then
              o.Observer.on_close_bin ~time:event.Event.time ~bin:lb.l_idx
        | None -> ());
        stepper.i_departed item
    | Event.Arrival -> (
        let now = event.Event.time in
        let item = event.Event.item in
        (match obs with
        | Some o -> o.Observer.on_arrival ~time:now ~item
        | None -> ());
        let decision = stepper.i_decide ~now ~index item in
        (match obs with
        | Some o ->
            o.Observer.on_decision ~time:now ~item
              ~bin:(match decision with Place i -> Some i | Open_new -> None)
        | None -> ());
        match decision with
        | Open_new ->
            let lb = append_bin st now in
            (match obs with
            | Some o -> o.Observer.on_open_bin ~time:now ~bin:lb.l_idx
            | None -> ());
            place lb item
        | Place idx ->
            if idx < 0 || idx >= st.count then
              fail (Unknown_bin { algo = algo.name; bin = idx; time = now })
            else begin
              let lb = bin_of st idx in
              if lb.l_active = 0 then
                fail (Closed_bin { algo = algo.name; bin = idx; time = now });
              place lb item
            end)
  in
  let queue = Event.queue_of_instance instance in
  let rec drain () =
    match Heap.pop queue with
    | None -> ()
    | Some event ->
        handle event;
        drain ()
  in
  drain ();
  Packing.of_bins instance
    (List.init st.count (fun i -> (bin_of st i).l_bin))

(* Public entry points: every engine comes in two flavours — the
   structured [_result] form, and the legacy exception shim that turns
   the same error into the historical [Invalid_decision] message. *)

let wrap engine observer algo instance =
  match engine observer algo instance with
  | packing -> Ok packing
  | exception Err e -> Error e

let lift engine observer algo instance =
  match engine observer algo instance with
  | packing -> packing
  | exception Err e -> raise (Invalid_decision (error_to_string e))

let run_reference_result ?observer algo instance =
  wrap reference_exn observer algo instance

let run_reference ?observer algo instance =
  lift reference_exn observer algo instance

let run_indexed_result ?observer algo instance =
  wrap indexed_exn observer algo instance

let run_indexed ?observer algo instance =
  lift indexed_exn observer algo instance

let run_result ?observer algo instance = run_indexed_result ?observer algo instance
let run ?observer algo instance = run_indexed ?observer algo instance

let usage_time algo instance = Packing.total_usage_time (run algo instance)
