open Dbp_core

type bin_view = {
  index : int;
  opened_at : float;
  level : float;
  state : Bin_state.t Lazy.t;
}

type decision = Place of int | Open_new

type stepper = {
  decide : now:float -> open_bins:bin_view list -> Item.t -> decision;
  notify : item:Item.t -> index:int -> unit;
  departed : Item.t -> unit;
}

type index = {
  open_views : unit -> bin_view list;
  view : int -> bin_view option;
  first_fit : Item.t -> decision;
  best_fit : Item.t -> decision;
  worst_fit : Item.t -> decision;
  open_count : unit -> int;
}

type indexed_stepper = {
  i_decide : now:float -> index:index -> Item.t -> decision;
  i_notify : item:Item.t -> index:int -> unit;
  i_departed : Item.t -> unit;
}

type t = {
  name : string;
  make : unit -> stepper;
  make_indexed : (unit -> indexed_stepper) option;
}

exception Invalid_decision of string

type error =
  | Overflow of { algo : string; item : Item.t; bin : int; time : float }
  | Unknown_bin of { algo : string; bin : int; time : float }
  | Closed_bin of { algo : string; bin : int; time : float }
  | Unplaced_departure of { algo : string; item_id : int }

(* The legacy [Invalid_decision] messages, reproduced byte-for-byte so
   the exception shim is indistinguishable from the pre-refactor
   engines. *)
let error_to_string = function
  | Overflow { algo; item; bin; time } ->
      Printf.sprintf "%s: %s overflows bin %d at %g" algo
        (Item.to_string item) bin time
  | Unknown_bin { algo; bin; time = _ } ->
      Printf.sprintf "%s: unknown bin %d" algo bin
  | Closed_bin { algo; bin; time } ->
      Printf.sprintf "%s: bin %d is closed at %g" algo bin time
  | Unplaced_departure { algo; item_id } ->
      Printf.sprintf "%s: departure of unplaced item %d" algo item_id

(* Internal carrier: fatal paths raise this; the public entry points
   either surface it as [Error] ([run_result]) or re-raise the legacy
   [Invalid_decision] ([run]).  Never escapes this module. *)
exception Err of error

let default_departed (_ : Item.t) = ()

let stateless name decide =
  {
    name;
    make =
      (fun () ->
        {
          decide;
          notify = (fun ~item:_ ~index:_ -> ());
          departed = default_departed;
        });
    make_indexed = None;
  }

let indexed_stateless name decide i_decide =
  {
    name;
    make =
      (fun () ->
        {
          decide;
          notify = (fun ~item:_ ~index:_ -> ());
          departed = default_departed;
        });
    make_indexed =
      Some
        (fun () ->
          {
            i_decide;
            i_notify = (fun ~item:_ ~index:_ -> ());
            i_departed = default_departed;
          });
  }

let fail e = raise (Err e)

(* ------------------------------------------------------------------ *)
(* Reference engine: the original linked-list implementation, frozen as
   the differential-testing oracle.  Every event walks the full list of
   bins ever opened, so a run is Theta(n * bins) — do not optimise this;
   its value is being obviously faithful to the engine the test suite
   grew up on.  [run_indexed] must stay bit-identical to it. *)

(* Engine-side bin record.  [active] counts items currently active and
   [level] tracks their total size, so openness checks and level reads
   are O(1) instead of probing the level profile.  [level] is reset to 0
   whenever the bin empties, so float drift cannot accumulate across
   open/close cycles. *)
type ref_bin = {
  idx : int;
  opened : float;
  mutable bin : Bin_state.t;
  mutable active : int;
  mutable level : float;
}

(* Observer emissions pattern-match the option at each site so the
   no-observer path costs one branch, never a closure call — the bench
   obs sweep pins that overhead. *)

let reference_exn obs algo instance =
  let stepper = algo.make () in
  let bins : ref_bin list ref = ref [] (* reverse opening order *) in
  let home = Hashtbl.create 64 (* item id -> ref_bin *) in
  let views _now =
    List.rev !bins
    |> List.filter_map (fun lb ->
           if lb.active > 0 then
             Some
               {
                 index = lb.idx;
                 opened_at = lb.opened;
                 level = lb.level;
                 state = Lazy.from_val lb.bin;
               }
           else None)
  in
  let place lb item =
    let now = Item.arrival item in
    if not (Bin_state.fits_at lb.bin ~at:now item) then
      fail (Overflow { algo = algo.name; item; bin = lb.idx; time = now });
    lb.bin <- Bin_state.place lb.bin item;
    lb.active <- lb.active + 1;
    lb.level <- lb.level +. Item.size item;
    Hashtbl.replace home (Item.id item) lb;
    (match obs with
    | Some o -> o.Observer.on_place ~time:now ~item ~bin:lb.idx
    | None -> ());
    stepper.notify ~item ~index:lb.idx
  in
  let handle event =
    match event.Event.kind with
    | Event.Departure ->
        let lb =
          try Hashtbl.find home (Item.id event.Event.item)
          with Not_found ->
            fail
              (Unplaced_departure
                 { algo = algo.name; item_id = Item.id event.Event.item })
        in
        lb.active <- lb.active - 1;
        lb.level <-
          (if lb.active = 0 then 0.
           else lb.level -. Item.size event.Event.item);
        (match obs with
        | Some o ->
            o.Observer.on_departure ~time:event.Event.time
              ~item:event.Event.item;
            if lb.active = 0 then
              o.Observer.on_close_bin ~time:event.Event.time ~bin:lb.idx
        | None -> ());
        stepper.departed event.Event.item
    | Event.Arrival -> (
        let now = event.Event.time in
        let item = event.Event.item in
        (match obs with
        | Some o -> o.Observer.on_arrival ~time:now ~item
        | None -> ());
        let decision = stepper.decide ~now ~open_bins:(views now) item in
        (match obs with
        | Some o ->
            o.Observer.on_decision ~time:now ~item
              ~bin:(match decision with Place i -> Some i | Open_new -> None)
        | None -> ());
        match decision with
        | Open_new ->
            let lb =
              {
                idx = List.length !bins;
                opened = now;
                bin = Bin_state.empty ~index:(List.length !bins);
                active = 0;
                level = 0.;
              }
            in
            bins := lb :: !bins;
            (match obs with
            | Some o -> o.Observer.on_open_bin ~time:now ~bin:lb.idx
            | None -> ());
            place lb item
        | Place idx -> (
            match List.find_opt (fun lb -> lb.idx = idx) !bins with
            | None -> fail (Unknown_bin { algo = algo.name; bin = idx; time = now })
            | Some lb ->
                if lb.active = 0 then
                  fail (Closed_bin { algo = algo.name; bin = idx; time = now });
                place lb item))
  in
  List.iter handle (Event.of_instance instance);
  Packing.of_bins instance (List.rev_map (fun lb -> lb.bin) !bins)

(* ------------------------------------------------------------------ *)
(* Indexed engine, flat-memory edition.  All hot per-event state lives
   in parallel unboxed arrays — no boxed record or [Bin_state] is
   allocated anywhere on the event path:

   - per *item* (slot = position in the id-sorted item array): the home
     bin, the placement-chain link, and intrusive active-list links.
     Item sizes are copied into a [floatarray] once, so the level
     arithmetic never chases the boxed floats inside [Item.t];
   - per *bin ever opened* (append-only columns keyed by bin index):
     opening/closing times in [floatarray]s, the newest link of the
     placement chain, and the bin's arena row while open;
   - per *open bin* (arena rows, recycled through a free stack when a
     bin closes): level, active count, active-list ends and open-list
     links.  Rows are reused on close/open cycles, so the hot working
     set is O(max concurrent open bins), not O(bins ever opened).  The
     {!Fit_index} leaves are deliberately *not* recycled: First Fit's
     leftmost descent needs leaves ordered by bin index, so a closed
     bin's leaf stays retired and only the row is reused.

   Events come index-encoded from a {!Heap.Flat} queue ({!Event.Flat}),
   which preserves the (time, departures-first, item id) delivery order
   bit-for-bit.  Departures at a timestamp are drained in a batch: each
   departure updates its row (and emits observer events) immediately,
   but the O(log n) fit-tree writes are deferred to a dirty stack that
   is flushed before the next arrival's decision — fit queries happen
   only at arrivals, which sort after all equal-time departures, so the
   deferral is unobservable and a k-departure batch costs one tree
   update per *touched bin* instead of one per departure.

   Level bookkeeping uses the exact float expressions of the reference
   engine ([level +. size] on place; [0.] or [level -. size] on
   departure), the overflow check re-sums the active items in placement
   order (bit-identical to the reference's [Step_function.value_at] —
   see {!Bin_state.of_placement}), and boxed [Bin_state] values are
   reconstructed on demand from the placement chains, so the two
   engines stay bit-identical on every deterministic algorithm. *)

type flat = {
  items : Item.t array; (* slot -> item, ascending id *)
  sizes : floatarray; (* slot -> Item.size, unboxed copy *)
  item_bin : int array; (* slot -> home bin, -1 = unplaced *)
  chain_prev : int array; (* previous slot placed in the same bin *)
  act_prev : int array; (* active-list links within the home bin *)
  act_next : int array;
  (* per-bin columns, append-only, keyed by bin index *)
  mutable b_opened : floatarray;
  mutable b_closed : floatarray; (* meaningful once the bin closes *)
  mutable b_last : int array; (* newest slot of the placement chain *)
  mutable b_row : int array; (* arena row while open, -1 once closed *)
  mutable b_dirty : Bytes.t; (* '\001' while on the dirty stack *)
  mutable bins : int; (* bins ever opened *)
  (* arena rows: hot state of the open bins, recycled on close *)
  mutable r_bin : int array;
  mutable r_level : floatarray;
  mutable r_active : int array;
  mutable r_head : int array; (* oldest active slot *)
  mutable r_tail : int array; (* newest active slot *)
  mutable r_prev : int array; (* open-list links, index order *)
  mutable r_next : int array;
  mutable rows : int; (* rows ever allocated *)
  mutable free : int array; (* stack of recycled rows *)
  mutable free_n : int;
  mutable open_head : int; (* row of the lowest-index open bin *)
  mutable open_tail : int;
  mutable open_n : int;
  fit : Fit_index.t;
  (* bins touched by the departure batch since the last flush *)
  mutable dirty : int array;
  mutable dirty_n : int;
}

let flat_create items =
  let n = Array.length items in
  let sizes = Float.Array.create n in
  Array.iteri (fun s r -> Float.Array.set sizes s (Item.size r)) items;
  {
    items;
    sizes;
    item_bin = Array.make n (-1);
    chain_prev = Array.make n (-1);
    act_prev = Array.make n (-1);
    act_next = Array.make n (-1);
    b_opened = Float.Array.make 16 0.;
    b_closed = Float.Array.make 16 0.;
    b_last = Array.make 16 (-1);
    b_row = Array.make 16 (-1);
    b_dirty = Bytes.make 16 '\000';
    bins = 0;
    r_bin = Array.make 8 (-1);
    r_level = Float.Array.make 8 0.;
    r_active = Array.make 8 0;
    r_head = Array.make 8 (-1);
    r_tail = Array.make 8 (-1);
    r_prev = Array.make 8 (-1);
    r_next = Array.make 8 (-1);
    rows = 0;
    free = Array.make 8 0;
    free_n = 0;
    open_head = -1;
    open_tail = -1;
    open_n = 0;
    fit = Fit_index.create ();
    dirty = Array.make 16 0;
    dirty_n = 0;
  }

let grow_int arr fill =
  let cap = 2 * Array.length arr in
  let arr' = Array.make cap fill in
  Array.blit arr 0 arr' 0 (Array.length arr);
  arr'

let grow_floats arr =
  let cap = 2 * Float.Array.length arr in
  let arr' = Float.Array.make cap 0. in
  Float.Array.blit arr 0 arr' 0 (Float.Array.length arr);
  arr'

let ensure_bin_capacity fs =
  if fs.bins = Array.length fs.b_last then begin
    fs.b_opened <- grow_floats fs.b_opened;
    fs.b_closed <- grow_floats fs.b_closed;
    fs.b_last <- grow_int fs.b_last (-1);
    fs.b_row <- grow_int fs.b_row (-1);
    let dirty' = Bytes.make (2 * Bytes.length fs.b_dirty) '\000' in
    Bytes.blit fs.b_dirty 0 dirty' 0 (Bytes.length fs.b_dirty);
    fs.b_dirty <- dirty'
  end

let alloc_row fs =
  if fs.free_n > 0 then begin
    fs.free_n <- fs.free_n - 1;
    fs.free.(fs.free_n)
  end
  else begin
    if fs.rows = Array.length fs.r_bin then begin
      fs.r_bin <- grow_int fs.r_bin (-1);
      fs.r_level <- grow_floats fs.r_level;
      fs.r_active <- grow_int fs.r_active 0;
      fs.r_head <- grow_int fs.r_head (-1);
      fs.r_tail <- grow_int fs.r_tail (-1);
      fs.r_prev <- grow_int fs.r_prev (-1);
      fs.r_next <- grow_int fs.r_next (-1)
    end;
    let r = fs.rows in
    fs.rows <- r + 1;
    r
  end

let free_row fs r =
  if fs.free_n = Array.length fs.free then fs.free <- grow_int fs.free 0;
  fs.free.(fs.free_n) <- r;
  fs.free_n <- fs.free_n + 1

let open_new_bin fs now =
  ensure_bin_capacity fs;
  let b = fs.bins in
  fs.bins <- b + 1;
  Float.Array.set fs.b_opened b now;
  fs.b_last.(b) <- -1;
  let r = alloc_row fs in
  fs.b_row.(b) <- r;
  fs.r_bin.(r) <- b;
  Float.Array.set fs.r_level r 0.;
  fs.r_active.(r) <- 0;
  fs.r_head.(r) <- -1;
  fs.r_tail.(r) <- -1;
  (* Fresh bins carry the highest index, so appending at the tail keeps
     the open list in index (opening) order. *)
  fs.r_prev.(r) <- fs.open_tail;
  fs.r_next.(r) <- -1;
  if fs.open_tail >= 0 then fs.r_next.(fs.open_tail) <- r
  else fs.open_head <- r;
  fs.open_tail <- r;
  fs.open_n <- fs.open_n + 1;
  Fit_index.open_bin fs.fit b;
  b

let unlink_row fs r =
  if fs.r_prev.(r) >= 0 then fs.r_next.(fs.r_prev.(r)) <- fs.r_next.(r)
  else fs.open_head <- fs.r_next.(r);
  if fs.r_next.(r) >= 0 then fs.r_prev.(fs.r_next.(r)) <- fs.r_prev.(r)
  else fs.open_tail <- fs.r_prev.(r);
  fs.r_prev.(r) <- -1;
  fs.r_next.(r) <- -1;
  fs.open_n <- fs.open_n - 1

(* Level of row [r] re-summed over its active items in placement order:
   the same left fold [Step_function.value_at] evaluates to on the
   reference engine's profile (see {!Bin_state.of_placement}), used for
   the overflow check so the admission decision is bit-identical. *)
let active_level fs r =
  let rec go s acc =
    if s < 0 then acc else go fs.act_next.(s) (acc +. Float.Array.get fs.sizes s)
  in
  go fs.r_head.(r) 0.

(* Items placed in bin [b] up to chain link [last], oldest first. *)
let placed_items fs last =
  let rec go s acc =
    if s < 0 then acc else go fs.chain_prev.(s) (fs.items.(s) :: acc)
  in
  go last []

let rebuild_bin fs b last = Bin_state.of_placement ~index:b (placed_items fs last)

(* The placement chain links are immutable once written, so capturing
   [b_last] eagerly makes the lazy state an exact snapshot of the bin at
   view-creation time no matter when (or whether) it is forced. *)
let flat_view fs r =
  let b = fs.r_bin.(r) in
  let last = fs.b_last.(b) in
  {
    index = b;
    opened_at = Float.Array.get fs.b_opened b;
    level = Float.Array.get fs.r_level r;
    state = lazy (rebuild_bin fs b last);
  }

let flat_index fs =
  let open_views () =
    let rec go r acc =
      if r < 0 then List.rev acc else go fs.r_next.(r) (flat_view fs r :: acc)
    in
    go fs.open_head []
  in
  let view b =
    if b < 0 || b >= fs.bins then None
    else
      let r = fs.b_row.(b) in
      if r >= 0 then Some (flat_view fs r) else None
  in
  let query q item =
    match q fs.fit ~size:(Item.size item) with
    | Some idx -> Place idx
    | None -> Open_new
  in
  {
    open_views;
    view;
    first_fit = query Fit_index.first_fit;
    best_fit = query Fit_index.best_fit;
    worst_fit = query Fit_index.worst_fit;
    open_count = (fun () -> fs.open_n);
  }

let mark_dirty fs b =
  if Bytes.get fs.b_dirty b = '\000' then begin
    Bytes.set fs.b_dirty b '\001';
    if fs.dirty_n = Array.length fs.dirty then fs.dirty <- grow_int fs.dirty 0;
    fs.dirty.(fs.dirty_n) <- b;
    fs.dirty_n <- fs.dirty_n + 1
  end

let flush_dirty fs =
  for k = 0 to fs.dirty_n - 1 do
    let b = fs.dirty.(k) in
    Bytes.set fs.b_dirty b '\000';
    let r = fs.b_row.(b) in
    if r < 0 then Fit_index.close_bin fs.fit b
    else Fit_index.set_level fs.fit b (Float.Array.get fs.r_level r)
  done;
  fs.dirty_n <- 0

(* Run the event loop to completion and return the final flat state;
   [indexed_exn] and [usage_exn] differ only in what they fold it
   into. *)
let flat_run obs algo instance =
  let stepper =
    match algo.make_indexed with
    | Some make -> make ()
    | None ->
        let s = algo.make () in
        {
          i_decide =
            (fun ~now ~index item ->
              s.decide ~now ~open_bins:(index.open_views ()) item);
          i_notify = s.notify;
          i_departed = s.departed;
        }
  in
  let items = Array.of_list (Instance.items instance) in
  let fs = flat_create items in
  let index = flat_index fs in
  let place b slot now =
    let r = fs.b_row.(b) in
    let item = fs.items.(slot) in
    let size = Float.Array.get fs.sizes slot in
    if not (Fit_index.fits_level (active_level fs r) size) then
      fail (Overflow { algo = algo.name; item; bin = b; time = now });
    fs.chain_prev.(slot) <- fs.b_last.(b);
    fs.b_last.(b) <- slot;
    fs.item_bin.(slot) <- b;
    (* Append at the active-list tail: placement order. *)
    fs.act_prev.(slot) <- fs.r_tail.(r);
    fs.act_next.(slot) <- -1;
    if fs.r_tail.(r) >= 0 then fs.act_next.(fs.r_tail.(r)) <- slot
    else fs.r_head.(r) <- slot;
    fs.r_tail.(r) <- slot;
    fs.r_active.(r) <- fs.r_active.(r) + 1;
    Float.Array.set fs.r_level r (Float.Array.get fs.r_level r +. size);
    Fit_index.set_level fs.fit b (Float.Array.get fs.r_level r);
    (match obs with
    | Some o -> o.Observer.on_place ~time:now ~item ~bin:b
    | None -> ());
    stepper.i_notify ~item ~index:b
  in
  let depart t slot =
    let b = fs.item_bin.(slot) in
    if b < 0 then
      fail
        (Unplaced_departure
           { algo = algo.name; item_id = Item.id fs.items.(slot) });
    let r = fs.b_row.(b) in
    let a = fs.r_active.(r) - 1 in
    fs.r_active.(r) <- a;
    Float.Array.set fs.r_level r
      (if a = 0 then 0.
       else Float.Array.get fs.r_level r -. Float.Array.get fs.sizes slot);
    (* Unlink from the active list. *)
    if fs.act_prev.(slot) >= 0 then
      fs.act_next.(fs.act_prev.(slot)) <- fs.act_next.(slot)
    else fs.r_head.(r) <- fs.act_next.(slot);
    if fs.act_next.(slot) >= 0 then
      fs.act_prev.(fs.act_next.(slot)) <- fs.act_prev.(slot)
    else fs.r_tail.(r) <- fs.act_prev.(slot);
    fs.act_prev.(slot) <- -1;
    fs.act_next.(slot) <- -1;
    if a = 0 then begin
      (* Close: the row is recycled, the fit leaf stays retired (the
         dirty flush below sees [b_row] = -1 and closes it). *)
      Float.Array.set fs.b_closed b t;
      unlink_row fs r;
      free_row fs r;
      fs.b_row.(b) <- -1
    end;
    mark_dirty fs b;
    (match obs with
    | Some o ->
        o.Observer.on_departure ~time:t ~item:fs.items.(slot);
        if a = 0 then o.Observer.on_close_bin ~time:t ~bin:b
    | None -> ());
    stepper.i_departed fs.items.(slot)
  in
  let arrive now slot =
    (* End of the departure batch: settle the fit index before any
       query can see it. *)
    if fs.dirty_n > 0 then flush_dirty fs;
    let item = fs.items.(slot) in
    (match obs with
    | Some o -> o.Observer.on_arrival ~time:now ~item
    | None -> ());
    let decision = stepper.i_decide ~now ~index item in
    (match obs with
    | Some o ->
        o.Observer.on_decision ~time:now ~item
          ~bin:(match decision with Place i -> Some i | Open_new -> None)
    | None -> ());
    match decision with
    | Open_new ->
        let b = open_new_bin fs now in
        (match obs with
        | Some o -> o.Observer.on_open_bin ~time:now ~bin:b
        | None -> ());
        place b slot now
    | Place idx ->
        if idx < 0 || idx >= fs.bins then
          fail (Unknown_bin { algo = algo.name; bin = idx; time = now })
        else if fs.b_row.(idx) < 0 then
          fail (Closed_bin { algo = algo.name; bin = idx; time = now })
        else place idx slot now
  in
  let queue = Event.Flat.queue_of_items items in
  while not (Heap.Flat.is_empty queue) do
    let t = Heap.Flat.min_key queue in
    let p = Heap.Flat.min_payload queue in
    Heap.Flat.remove_min queue;
    match Event.Flat.payload_kind p with
    | Event.Departure -> depart t (Event.Flat.payload_slot p)
    | Event.Arrival -> arrive t (Event.Flat.payload_slot p)
  done;
  fs

let indexed_exn obs algo instance =
  let fs = flat_run obs algo instance in
  Packing.of_bins instance
    (List.init fs.bins (fun b -> rebuild_bin fs b fs.b_last.(b)))

(* Usage without materialising the packing: every engine bin is open
   over a single interval (it closes the moment it empties and never
   reopens, and its level is a positive sum of sizes in between), so its
   profile support is exactly [opened, closed) and
   [Bin_state.usage_time] reduces to [closed -. opened] — bitwise, the
   support endpoints being untouched copies of item floats.  Folding in
   bin-index order reproduces [Packing.total_usage_time]'s float
   accumulation exactly. *)
let usage_exn obs algo instance =
  let fs = flat_run obs algo instance in
  let acc = ref 0. in
  for b = 0 to fs.bins - 1 do
    acc :=
      !acc +. (Float.Array.get fs.b_closed b -. Float.Array.get fs.b_opened b)
  done;
  !acc

(* Public entry points: every engine comes in two flavours — the
   structured [_result] form, and the legacy exception shim that turns
   the same error into the historical [Invalid_decision] message. *)

let wrap engine observer algo instance =
  match engine observer algo instance with
  | packing -> Ok packing
  | exception Err e -> Error e

let lift engine observer algo instance =
  match engine observer algo instance with
  | packing -> packing
  | exception Err e -> raise (Invalid_decision (error_to_string e))

let run_reference_result ?observer algo instance =
  wrap reference_exn observer algo instance

let run_reference ?observer algo instance =
  lift reference_exn observer algo instance

let run_indexed_result ?observer algo instance =
  wrap indexed_exn observer algo instance

let run_indexed ?observer algo instance =
  lift indexed_exn observer algo instance

let run_result ?observer algo instance = run_indexed_result ?observer algo instance
let run ?observer algo instance = run_indexed ?observer algo instance

let run_usage_result ?observer algo instance =
  wrap usage_exn observer algo instance

let run_usage ?observer algo instance = lift usage_exn observer algo instance

let usage_time algo instance = run_usage algo instance
