open Dbp_core

(* The bin's "departure" is the latest departure among its items placed
   so far (future items may extend it; that is inherent to online).  The
   engine's views carry the full bin state lazily; this is the one
   in-repo algorithm that forces it. *)
let bin_departure view =
  Bin_state.items (Lazy.force view.Engine.state)
  |> List.fold_left (fun acc r -> Float.max acc (Item.departure r)) neg_infinity

let make ?(window = 5.) () =
  if window < 0. then invalid_arg "Departure_aligned.make: window < 0";
  Engine.stateless
    (Printf.sprintf "aligned-ff(w=%g)" window)
    (fun ~now:_ ~open_bins item ->
      let candidates =
        List.filter_map
          (fun v ->
            if Any_fit.fits v item then begin
              let mismatch =
                Float.abs (bin_departure v -. Item.departure item)
              in
              if mismatch <= window then Some (mismatch, v) else None
            end
            else None)
          open_bins
      in
      match candidates with
      | [] -> Engine.Open_new
      | first :: rest ->
          let _, best =
            List.fold_left
              (fun ((best_d, _) as acc) ((d, _) as c) ->
                if d < best_d -. 1e-12 then c else acc)
              first rest
          in
          Engine.Place best.Engine.index)

let tuned instance =
  let delta = Instance.min_duration instance in
  let mu = Instance.mu instance in
  make ~window:(sqrt mu *. delta) ()
