(** Fit indices over the open bins, maintained by the indexed engine.

    A pair of flat segment trees (min-level and max-level) over bin
    indices answer the three classic fit queries without allocating,
    with the exact same float predicate and tie-breaking as the list
    scans in {!Any_fit} (fitting test
    [level +. size <= capacity +. tolerance]; ties to the
    earliest-opened bin):

    - {!first_fit}: lowest-index open fitting bin — leftmost descent of
      the min tree, O(log n);
    - {!worst_fit}: lowest-level bin if it fits, ties to the lowest
      index — min-attaining descent, O(log n);
    - {!best_fit}: highest-level fitting bin, ties to the lowest index —
      pruned best-first search of the max tree; O(log n) on typical
      workloads, degrading towards O(open bins) only when non-fitting
      bins interleave with an increasing run of fitting levels.

    Both trees are stored as unboxed [floatarray]s (guaranteed flat
    doubles, no per-node boxing), so queries and updates touch raw
    memory only — part of the flat-engine memory layout described in
    DESIGN.md section 13.

    This module only tracks (index, level) pairs; the engine owns the
    bins themselves and calls {!open_bin} / {!set_level} / {!close_bin}
    as levels change.  Indices are append-only: recycling leaf slots
    would break First Fit's lowest-index descent, so a closed bin's leaf
    stays retired for the rest of the run (the engine recycles its *row*
    state instead). *)

type t

val create : unit -> t

val fits_level : float -> float -> bool
(** [fits_level level size] — the shared admission predicate,
    [level +. size <= Bin_state.capacity +. Bin_state.tolerance]. *)

val open_bin : t -> int -> unit
(** Register a fresh bin at level 0.  Indices must be registered in
    increasing order (the engine's opening order). *)

val set_level : t -> int -> float -> unit
(** Record the new level of an open bin. *)

val close_bin : t -> int -> unit
(** Drop a bin from the indices for good (bins never reopen). *)

val first_fit : t -> size:float -> int option
val best_fit : t -> size:float -> int option
val worst_fit : t -> size:float -> int option
