(** The Any Fit family of non-clairvoyant online packing algorithms.

    An Any Fit algorithm opens a new bin only when no currently open bin
    can accommodate the incoming item; the family members differ in which
    fitting bin they pick (paper Section 1 and the prior work it builds
    on: Li et al. 2014/2016, Kamali & Lopez-Ortiz 2015, Tang et al. 2016).
    These are the baselines the clairvoyant strategies are measured
    against:

    - First Fit: earliest-opened fitting bin; competitive ratio in
      [mu + 1, mu + 4] for Non-Clairvoyant MinUsageTime DBP.
    - Best Fit: highest-level fitting bin; unbounded competitive ratio.
    - Worst Fit: lowest-level fitting bin.
    - Next Fit (not Any Fit): keeps a single current bin, opens a new one
      when the current bin cannot take the item; 2 mu + 1 competitive. *)

open Dbp_core

val fits : Engine.bin_view -> Item.t -> bool
(** Capacity test at the arrival instant, with the shared tolerance. *)

val choose_fitting :
  (Engine.bin_view -> Engine.bin_view -> bool) ->
  Engine.bin_view list ->
  Item.t ->
  Engine.decision
(** [choose_fitting better views item] places into the fitting bin that is
    maximal for [better] (a strict preference; the earliest-opened wins
    ties because views come in opening order), or opens a new bin.

    The Best/Worst Fit preferences are exact level comparisons (no
    epsilon): an epsilon-fuzzy preference is not a total order, so it
    could not be answered by the level-keyed trees of {!Fit_index}, and the
    fuzz only mattered on levels closer than 1e-12 — indistinguishable
    in any reported metric.  All three classic fits also carry an
    indexed fast path making the same decisions in O(log n). *)

val first_fit : Engine.t
val best_fit : Engine.t
val worst_fit : Engine.t
val next_fit : Engine.t

val random_fit : seed:int -> Engine.t
(** An Any Fit member that picks uniformly among the fitting open bins
    (deterministic given the seed).  Still subject to every Any Fit lower
    bound: randomising the *choice* does not help when the trap is that
    some open bin fits at all. *)

val biased_open : p:float -> seed:int -> Engine.t
(** First Fit that opens a fresh bin with probability [p] even when an
    open bin fits.  NOT an Any Fit algorithm — this is the randomisation
    that matters against the Theorem 3 gadget: the deterministic lower
    bound (1+sqrt 5)/2 does not apply to randomised algorithms, and
    around p = 1/4 this algorithm's expected worst case on the gadget is
    ~1.53 < phi (experiment R1).
    @raise Invalid_argument unless [0 <= p <= 1]. *)
