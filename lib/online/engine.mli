(** The online packing engine.

    Events of an instance are delivered in time order (departures before
    arrivals at equal times, see {!Dbp_core.Event}); on each arrival the
    algorithm under test must irrevocably place the item into one of the
    currently open bins or open a new one.  A bin is *open* from the moment
    it receives its first item until all its items have departed, after
    which it is closed for good and never receives again (paper
    Section 5).

    The engine owns the bins, exposes read-only views to the algorithm,
    and validates every decision: placing into a closed bin, an unknown
    bin, or over capacity raises {!Invalid_decision} — an algorithm bug,
    never a property of the input.

    Two interchangeable engines implement this contract:

    - {!run_indexed} (the default {!run}): the flat-memory engine — all
      hot per-event state in parallel unboxed arrays (DESIGN.md
      section 13): index-encoded events from a {!Heap.Flat} queue, fit
      queries through {!Fit_index} (O(log n)), per-open-bin state in
      recycled arena rows, equal-timestamp departures drained in a
      batch before the fit index is touched again.  An n-event run
      costs O(n (log n + a)) where a is the concurrent active count of
      the touched bin; boxed {!Bin_state} values exist only on demand
      (lazy views, the final packing).
    - {!run_reference}: the original list-walking engine, frozen as the
      differential-testing oracle; Theta(n * bins-ever-opened).

    Both must produce bit-identical packings — and byte-identical
    observer streams — for every deterministic algorithm, enforced by
    the qcheck differential and trace-identity suites. *)

open Dbp_core

type bin_view = {
  index : int;  (** opening order, 0-based *)
  opened_at : float;
  level : float;  (** total size of active items at the current instant *)
  state : Bin_state.t Lazy.t;
      (** The full bin state, materialised on first force.  The flat
          engine stores only placement chains during a run; forcing
          rebuilds the boxed {!Bin_state} (an exact snapshot of the bin
          as of view creation, whenever the force happens) in
          O(items log items).  Algorithms that only need [level] /
          [opened_at] / [index] pay nothing. *)
}

type decision = Place of int  (** bin index *) | Open_new

type stepper = {
  decide : now:float -> open_bins:bin_view list -> Item.t -> decision;
      (** [open_bins] are in opening order (index order). *)
  notify : item:Item.t -> index:int -> unit;
      (** Called after every successful placement with the final bin index
          (freshly opened or existing), letting stateful algorithms track
          bin ownership, e.g. which category a bin belongs to. *)
  departed : Item.t -> unit;
      (** Called on every departure event (after the bin bookkeeping).
          Lets learning algorithms observe completed jobs — e.g. the
          online-trained duration predictor.  Default: ignore. *)
}

type index = {
  open_views : unit -> bin_view list;
      (** Views of the open bins in opening order — same list the plain
          [decide] receives, materialised in O(open bins). *)
  view : int -> bin_view option;
      (** O(1) view of one bin; [None] if closed or never opened. *)
  first_fit : Item.t -> decision;
      (** Lowest-index open bin the item fits in, O(log n). *)
  best_fit : Item.t -> decision;
      (** Highest-level fitting bin, ties to the lowest index, O(log n). *)
  worst_fit : Item.t -> decision;
      (** Lowest-level open bin if the item fits there, O(log n). *)
  open_count : unit -> int;
}
(** Query interface the indexed engine hands to indexed steppers in
    place of a materialised view list.  All queries use the shared
    admission predicate of {!Any_fit.fits}. *)

type indexed_stepper = {
  i_decide : now:float -> index:index -> Item.t -> decision;
  i_notify : item:Item.t -> index:int -> unit;
  i_departed : Item.t -> unit;
}

val default_departed : Item.t -> unit
(** The no-op departure hook, for steppers built by hand. *)

type t = {
  name : string;
  make : unit -> stepper;
  make_indexed : (unit -> indexed_stepper) option;
      (** Optional O(log n) fast path used by {!run_indexed}.  When
          [None] the plain stepper is driven with views materialised
          from the open list.  A fast path must make exactly the
          decisions of the plain stepper: the differential suite runs
          one against the other. *)
}
(** An online algorithm: a name for reports and a factory producing a
    fresh, independent stepper per run. *)

exception Invalid_decision of string
(** Legacy fatal-path exception.  The engines now classify every fatal
    condition as a structured {!error}; [run]/[run_reference]/
    [run_indexed] keep raising [Invalid_decision] with byte-identical
    messages (the compatibility shim the differential suite and older
    callers rely on), while the [_result] variants below return the
    error as data. *)

type error =
  | Overflow of { algo : string; item : Item.t; bin : int; time : float }
      (** The algorithm placed an item that does not fit at the arrival
          instant. *)
  | Unknown_bin of { algo : string; bin : int; time : float }
      (** [Place idx] with an index that was never opened. *)
  | Closed_bin of { algo : string; bin : int; time : float }
      (** [Place idx] into a bin whose items have all departed. *)
  | Unplaced_departure of { algo : string; item_id : int }
      (** A departure event for an item no bin holds — corrupt event
          stream, not an algorithm decision. *)
        (** Structured classification of every way an engine run can go
            fatal.  All four are algorithm (or stream) bugs, never a
            property of a valid instance; the fault-tolerant wrapper in
            [Dbp_faults.Resilient] reuses this type to report them
            without unwinding the whole run. *)

val error_to_string : error -> string
(** Renders exactly the historical [Invalid_decision] message for the
    error. *)

val run_result :
  ?observer:Observer.t -> t -> Instance.t -> (Packing.t, error) result
(** {!run} with the fatal path as data instead of an exception. *)

val run_indexed_result :
  ?observer:Observer.t -> t -> Instance.t -> (Packing.t, error) result

val run_reference_result :
  ?observer:Observer.t -> t -> Instance.t -> (Packing.t, error) result

val stateless :
  string -> (now:float -> open_bins:bin_view list -> Item.t -> decision) -> t
(** An algorithm with no cross-arrival state beyond what the views carry. *)

val indexed_stateless :
  string ->
  (now:float -> open_bins:bin_view list -> Item.t -> decision) ->
  (now:float -> index:index -> Item.t -> decision) ->
  t
(** A stateless algorithm with both a view-list decide (used by
    {!run_reference}) and an index-query decide (used by
    {!run_indexed}).  The two must agree decision-for-decision. *)

val run : ?observer:Observer.t -> t -> Instance.t -> Packing.t
(** Feed the instance's event stream through a fresh stepper.  This is
    {!run_indexed}.

    [observer] receives the decision stream as it happens (see
    {!Dbp_core.Observer} for the callback order).  Observation never
    influences the run: with or without one, decisions are identical,
    and both engines emit byte-identical event sequences.
    @raise Invalid_decision on an illegal placement. *)

val run_indexed : ?observer:Observer.t -> t -> Instance.t -> Packing.t
(** The indexed engine (see the module preamble). *)

val run_reference : ?observer:Observer.t -> t -> Instance.t -> Packing.t
(** The frozen list engine: the differential-testing oracle.  Always
    drives the plain stepper, never the indexed fast path. *)

val run_usage : ?observer:Observer.t -> t -> Instance.t -> float
(** The flat engine's usage fast path: runs the same event loop as
    {!run_indexed} (identical decisions, errors and observer stream)
    but skips materialising the packing, folding each bin's
    [close -. open] span directly — bit-identical to
    [Packing.total_usage_time (run_indexed t inst)] (a bin is open over
    a single interval, so its profile support is exactly that span; the
    equality is pinned by a qcheck property).  This is what the 10^7
    bench rows run: O(bins) floats of output state instead of a
    packing.  Note it also skips {!Packing.of_bins}'s end-of-run
    revalidation — the engine's per-placement checks still run.
    @raise Invalid_decision on an illegal placement. *)

val run_usage_result :
  ?observer:Observer.t -> t -> Instance.t -> (float, error) result
(** {!run_usage} with the fatal path as data. *)

val usage_time : t -> Instance.t -> float
(** [total_usage_time (run t inst)], computed via {!run_usage}. *)
