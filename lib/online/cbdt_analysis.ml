open Dbp_core

type stage_report = {
  category : int;
  t1 : float;
  t2 : float;
  t3 : float;
  t_end : float;
  bins : int;
  stage1_max_open : int;
  stage2_min_avg_level : float option;
}

type t = { packing : Packing.t; stages : stage_report list }

(* Sample points covering every constant segment of the instance within
   [lo, hi): all critical times clipped to the window, plus segment
   midpoints. *)
let sample_points instance lo hi =
  if hi <= lo then []
  else
    let times =
      Instance.critical_times instance
      |> List.filter (fun t -> lo <= t && t < hi)
      |> fun ts -> lo :: ts |> List.sort_uniq Float.compare
    in
    let rec mids = function
      | a :: (b :: _ as rest) -> a :: (0.5 *. (a +. b)) :: mids rest
      | [ a ] -> [ a; 0.5 *. (a +. hi) ]
      | [] -> []
    in
    mids times

let analyze ?(origin = 0.) ~rho instance =
  if rho <= 0. then invalid_arg "Cbdt_analysis.analyze: rho <= 0";
  if Instance.is_empty instance then
    invalid_arg "Cbdt_analysis.analyze: empty instance";
  let packing =
    Engine.run (Classify_departure.make ~origin ~rho ()) instance
  in
  let delta = Instance.min_duration instance in
  let mu = Instance.mu instance in
  let category_of_bin bin =
    match Bin_state.items bin with
    | [] -> invalid_arg "Cbdt_analysis.analyze: empty bin in packing"
    | r :: _ -> Classify_departure.category ~origin ~rho r
  in
  let categories =
    Packing.bins packing
    |> List.map category_of_bin
    |> List.sort_uniq Int.compare
  in
  let stages =
    List.map
      (fun category ->
        let bins =
          Packing.bins packing
          |> List.filter (fun b -> category_of_bin b = category)
        in
        let t = origin +. (float_of_int (category - 1) *. rho) in
        let t_end = t +. rho in
        let t1 = t -. (mu *. delta) in
        let t3 = t -. delta in
        let t2 =
          let openings =
            List.map Bin_state.opening_time bins |> List.sort Float.compare
          in
          match openings with
          | _ :: second :: _ when second < t3 -> second
          | _ -> t3
        in
        let open_count at =
          List.length (List.filter (fun b -> Bin_state.active_at b at) bins)
        in
        let stage1_max_open =
          sample_points instance t1 t2
          |> List.fold_left (fun acc at -> max acc (open_count at)) 0
        in
        let stage2_min_avg_level =
          sample_points instance t2 t3
          |> List.filter_map (fun at ->
                 let open_bins =
                   List.filter (fun b -> Bin_state.active_at b at) bins
                 in
                 match open_bins with
                 | [] -> None
                 | _ ->
                     let total =
                       List.fold_left
                         (fun a b -> a +. Bin_state.level_at b at)
                         0. open_bins
                     in
                     Some (total /. float_of_int (List.length open_bins)))
          |> function
          | [] -> None
          | avgs -> Some (List.fold_left Float.min Float.infinity avgs)
        in
        {
          category;
          t1;
          t2;
          t3;
          t_end;
          bins = List.length bins;
          stage1_max_open;
          stage2_min_avg_level;
        })
      categories
  in
  { packing; stages }

type check_failure = Stage1_two_bins of int * int | Lemma_6 of int * float

let pp_failure ppf = function
  | Stage1_two_bins (c, n) ->
      Format.fprintf ppf "category %d: %d bins open during stage 1" c n
  | Lemma_6 (c, avg) ->
      Format.fprintf ppf "category %d: average open-bin level %g <= 1/2" c avg

let check t =
  List.concat_map
    (fun s ->
      let stage1 =
        if s.stage1_max_open > 1 then
          [ Stage1_two_bins (s.category, s.stage1_max_open) ]
        else []
      and lemma6 =
        match s.stage2_min_avg_level with
        | Some avg when avg <= 0.5 -> [ Lemma_6 (s.category, avg) ]
        | _ -> []
      in
      stage1 @ lemma6)
    t.stages
