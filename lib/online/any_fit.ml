open Dbp_core

let fits (view : Engine.bin_view) item =
  view.level +. Item.size item <= Bin_state.capacity +. Bin_state.tolerance

let choose_fitting better views item =
  let fitting = List.filter (fun v -> fits v item) views in
  match fitting with
  | [] -> Engine.Open_new
  | first :: rest ->
      let best =
        List.fold_left (fun acc v -> if better v acc then v else acc) first rest
      in
      Engine.Place best.Engine.index

(* The level preferences are exact float comparisons: a strict [>] / [<]
   keeps the earliest-opened bin on equal levels, giving a total order
   that the {!Fit_index} trees reproduce bin-for-bin.  (An epsilon-
   fuzzy preference is not transitive and cannot be indexed.) *)

let first_fit =
  Engine.indexed_stateless "first-fit"
    (fun ~now:_ ~open_bins item ->
      choose_fitting (fun _ _ -> false) open_bins item)
    (fun ~now:_ ~index item -> index.Engine.first_fit item)

let best_fit =
  Engine.indexed_stateless "best-fit"
    (fun ~now:_ ~open_bins item ->
      choose_fitting
        (fun a b -> a.Engine.level > b.Engine.level)
        open_bins item)
    (fun ~now:_ ~index item -> index.Engine.best_fit item)

let worst_fit =
  Engine.indexed_stateless "worst-fit"
    (fun ~now:_ ~open_bins item ->
      choose_fitting
        (fun a b -> a.Engine.level < b.Engine.level)
        open_bins item)
    (fun ~now:_ ~index item -> index.Engine.worst_fit item)

(* Tiny self-contained splitmix64 so the online library stays independent
   of the workload package; good enough for algorithmic coin flips. *)
module Coin = struct
  type t = { mutable state : int64 }

  let make seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let float t =
    Int64.to_float (Int64.shift_right_logical (next t) 11)
    *. (1. /. 9007199254740992.)

  let int t n = int_of_float (float t *. float_of_int n)
end

let random_fit ~seed =
  {
    Engine.name = Printf.sprintf "random-fit(seed=%d)" seed;
    make =
      (fun () ->
        let coin = Coin.make seed in
        let decide ~now:_ ~open_bins item =
          let fitting =
            Array.of_list (List.filter (fun v -> fits v item) open_bins)
          in
          match Array.length fitting with
          | 0 -> Engine.Open_new
          | n -> Engine.Place fitting.(Coin.int coin n).Engine.index
        in
        {
          Engine.decide;
          notify = (fun ~item:_ ~index:_ -> ());
          departed = Engine.default_departed;
        });
    make_indexed = None;
  }

let biased_open ~p ~seed =
  if not (0. <= p && p <= 1.) then invalid_arg "Any_fit.biased_open: p";
  {
    Engine.name = Printf.sprintf "biased-open(p=%g)" p;
    make =
      (fun () ->
        let coin = Coin.make seed in
        let decide ~now:_ ~open_bins item =
          if Coin.float coin < p then Engine.Open_new
          else choose_fitting (fun _ _ -> false) open_bins item
        in
        {
          Engine.decide;
          notify = (fun ~item:_ ~index:_ -> ());
          departed = Engine.default_departed;
        });
    make_indexed =
      Some
        (fun () ->
          let coin = Coin.make seed in
          let i_decide ~now:_ ~index item =
            if Coin.float coin < p then Engine.Open_new
            else index.Engine.first_fit item
          in
          {
            Engine.i_decide;
            i_notify = (fun ~item:_ ~index:_ -> ());
            i_departed = Engine.default_departed;
          });
  }

(* Next Fit: remember the index of the bin opened most recently by us; if
   it is still open and fits, use it, otherwise open a new current bin.
   Bins left behind stay open until their items depart but never receive
   another item. *)
let next_fit =
  {
    Engine.name = "next-fit";
    make =
      (fun () ->
        let current = ref None in
        let decide ~now:_ ~open_bins item =
          let current_view =
            match !current with
            | None -> None
            | Some idx ->
                List.find_opt (fun v -> v.Engine.index = idx) open_bins
          in
          match current_view with
          | Some v when fits v item -> Engine.Place v.Engine.index
          | Some _ | None -> Engine.Open_new
        in
        let notify ~item:_ ~index = current := Some index in
        { Engine.decide; notify; departed = Engine.default_departed });
    make_indexed =
      Some
        (fun () ->
          let current = ref None in
          let i_decide ~now:_ ~index item =
            let current_view =
              match !current with
              | None -> None
              | Some idx -> index.Engine.view idx
            in
            match current_view with
            | Some v when fits v item -> Engine.Place v.Engine.index
            | Some _ | None -> Engine.Open_new
          in
          let i_notify ~item:_ ~index = current := Some index in
          { Engine.i_decide; i_notify; i_departed = Engine.default_departed });
  }
