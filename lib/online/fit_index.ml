(* The engine's per-run fit indices over the *open* bins.

   Two flat segment trees over bin indices, updated together on every
   level change and never allocating on the query or update path:

   - a min-level tree (closed and unopened bins carry +inf), answering
     First Fit (lowest-index fitting bin) by a leftmost descent and
     Worst Fit (lowest-level bin, ties to the lowest index) by a
     min-attaining descent, both O(log n);

   - a max-level tree (closed and unopened bins carry -inf), answering
     Best Fit (highest fitting level, ties to the lowest index) by a
     best-first search that prunes every subtree whose max cannot beat
     the candidate found so far — O(log n) on typical workloads,
     O(open bins) only when non-fitting bins interleave with an
     increasing run of fitting levels.

   Both trees are [floatarray]s: the levels live unboxed in the backing
   array, so updates and descents read and write raw doubles with no
   pointer chase per node.  (An ordinary [float array] is also unboxed
   by the runtime's float-array optimisation; the [floatarray] type
   makes the representation a guarantee of the interface rather than a
   property of the optimiser, which is what the flat engine's memory
   budget is sized against.)

   The fit predicate is shared with {!Any_fit.fits} verbatim:
   [level +. size <= Bin_state.capacity +. Bin_state.tolerance].  It is
   monotone in [level] (float addition is monotone), which is what makes
   the descents sound.  An earlier revision kept a balanced
   (level, index) set for Best/Worst Fit; the trees replaced it because
   the set allocated O(log n) nodes on every place and departure, which
   at small instance sizes cost more than the reference engine's plain
   list scan. *)

open Dbp_core

type t = {
  (* [min_tree]/[max_tree] have 2*cap slots, leaves at [cap + i]; the
     leaf value is the bin's current level, or +inf / -inf respectively
     for closed and unopened indices. *)
  mutable min_tree : floatarray;
  mutable max_tree : floatarray;
  mutable cap : int;
}

let create () =
  {
    min_tree = Float.Array.make 2 infinity;
    max_tree = Float.Array.make 2 neg_infinity;
    cap = 1;
  }

let fits_level level size =
  level +. size <= Bin_state.capacity +. Bin_state.tolerance

let rec grow_to t idx =
  if idx >= t.cap then begin
    let cap = 2 * t.cap in
    let min_tree = Float.Array.make (2 * cap) infinity in
    let max_tree = Float.Array.make (2 * cap) neg_infinity in
    Float.Array.blit t.min_tree t.cap min_tree cap t.cap;
    Float.Array.blit t.max_tree t.cap max_tree cap t.cap;
    for i = cap - 1 downto 1 do
      Float.Array.set min_tree i
        (Float.min
           (Float.Array.get min_tree (2 * i))
           (Float.Array.get min_tree ((2 * i) + 1)));
      Float.Array.set max_tree i
        (Float.max
           (Float.Array.get max_tree (2 * i))
           (Float.Array.get max_tree ((2 * i) + 1)))
    done;
    t.min_tree <- min_tree;
    t.max_tree <- max_tree;
    t.cap <- cap;
    grow_to t idx
  end

let set_leaf t idx ~lo ~hi =
  let min_tree = t.min_tree and max_tree = t.max_tree in
  let i = ref (t.cap + idx) in
  Float.Array.set min_tree !i lo;
  Float.Array.set max_tree !i hi;
  while !i > 1 do
    i := !i / 2;
    Float.Array.set min_tree !i
      (Float.min
         (Float.Array.get min_tree (2 * !i))
         (Float.Array.get min_tree ((2 * !i) + 1)));
    Float.Array.set max_tree !i
      (Float.max
         (Float.Array.get max_tree (2 * !i))
         (Float.Array.get max_tree ((2 * !i) + 1)))
  done

let open_bin t idx =
  grow_to t idx;
  set_leaf t idx ~lo:0. ~hi:0.

let set_level t idx level = set_leaf t idx ~lo:level ~hi:level
let close_bin t idx = set_leaf t idx ~lo:infinity ~hi:neg_infinity

let first_fit t ~size =
  let min_tree = t.min_tree in
  if not (fits_level (Float.Array.get min_tree 1) size) then None
  else begin
    let i = ref 1 in
    while !i < t.cap do
      i :=
        if fits_level (Float.Array.get min_tree (2 * !i)) size then 2 * !i
        else (2 * !i) + 1
    done;
    Some (!i - t.cap)
  end

(* Leftmost leaf attaining the subtree minimum: an internal node's value
   is an exact copy of one child's, so float comparison identifies which
   side attains it, and preferring the left child on ties yields the
   lowest index. *)
let worst_fit t ~size =
  let min_tree = t.min_tree in
  let m = Float.Array.get min_tree 1 in
  if not (fits_level m size) then None (* also covers the no-open-bins +inf *)
  else begin
    let i = ref 1 in
    while !i < t.cap do
      i :=
        if
          Float.Array.get min_tree (2 * !i)
          <= Float.Array.get min_tree ((2 * !i) + 1)
        then 2 * !i
        else (2 * !i) + 1
    done;
    Some (!i - t.cap)
  end

let best_fit t ~size =
  (* Best candidate so far as (level, leaf slot); a subtree can only beat
     it with a strictly higher fitting level (equal levels lose to the
     leftmost, which the left-to-right visit order has already found). *)
  let max_tree = t.max_tree in
  let best_level = ref neg_infinity in
  let best_slot = ref (-1) in
  let rec leftmost_max i =
    if i >= t.cap then i
    else if Float.Array.get max_tree (2 * i) >= Float.Array.get max_tree i
    then leftmost_max (2 * i)
    else leftmost_max ((2 * i) + 1)
  in
  let rec search i =
    let m = Float.Array.get max_tree i in
    if m > !best_level then
      if fits_level m size then begin
        (* Whole subtree's top level fits and beats the candidate. *)
        best_level := m;
        best_slot := leftmost_max i
      end
      else if i < t.cap then begin
        search (2 * i);
        search ((2 * i) + 1)
      end
  in
  search 1;
  if !best_slot < 0 then None else Some (!best_slot - t.cap)
