
let make ~name ~category =
  let make_stepper () =
    (* Closed bins keep a stale entry; harmless, they never reappear. *)
    let bin_category : (int, string) Hashtbl.t = Hashtbl.create 32 in
    let decide ~now:_ ~open_bins item =
      let cat = category item in
      let mine =
        List.filter
          (fun v ->
            match Hashtbl.find_opt bin_category v.Engine.index with
            | Some c -> String.equal c cat
            | None -> false)
          open_bins
      in
      Any_fit.choose_fitting (fun _ _ -> false) mine item
    in
    let notify ~item ~index = Hashtbl.replace bin_category index (category item) in
    { Engine.decide; notify; departed = Engine.default_departed }
  in
  (* Indexed fast path: per category, the indices of the bins it owns in
     opening order, scanned first-fit with O(1) [view] probes — the scan
     touches only the category's bins instead of every open bin.  Closed
     bins are pruned lazily when a scan walks over them (each is dropped
     exactly once), so no departure-side bookkeeping is needed. *)
  let make_indexed () =
    let by_category : (string, int list ref) Hashtbl.t = Hashtbl.create 32 in
    let members cat =
      match Hashtbl.find_opt by_category cat with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.add by_category cat l;
          l
    in
    let i_decide ~now:_ ~index item =
      let cat = category item in
      let idxs = members cat in
      (* [kept] accumulates surviving indices in reverse. *)
      let rec scan kept = function
        | [] ->
            idxs := List.rev kept;
            Engine.Open_new
        | idx :: rest -> (
            match index.Engine.view idx with
            | None -> scan kept rest (* closed: prune *)
            | Some v ->
                if Any_fit.fits v item then begin
                  idxs := List.rev_append kept (idx :: rest);
                  Engine.Place idx
                end
                else scan (idx :: kept) rest)
      in
      scan [] !idxs
    in
    let recorded : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let i_notify ~item ~index =
      if not (Hashtbl.mem recorded index) then begin
        Hashtbl.add recorded index ();
        let idxs = members (category item) in
        (* A fresh bin carries the highest index so far, so appending
           keeps the list in opening order. *)
        idxs := !idxs @ [ index ]
      end
    in
    { Engine.i_decide; i_notify; i_departed = Engine.default_departed }
  in
  { Engine.name; make = make_stepper; make_indexed = Some make_indexed }
