(** CSV trace import/export.

    Format: optional leading comment lines starting with [#] (used by
    fixture generators to record provenance — e.g. the PRNG seed and
    generator config), then a header line "id,size,arrival,departure"
    followed by one row per item, full float precision.  Round-trips
    exactly; lets instances move between the CLI, external tooling and
    regression fixtures. *)

open Dbp_core

val to_channel : ?comment:string -> out_channel -> Instance.t -> unit
(** [comment] (possibly multi-line) is written as leading [# ] lines. *)

val to_string : Instance.t -> string

val save : ?comment:string -> string -> Instance.t -> unit

exception Parse_error of int * string
(** Line number (1-based, header is line 1) and complaint. *)

val of_string : string -> Instance.t
(** @raise Parse_error on malformed input. *)

val load : string -> Instance.t
(** @raise Parse_error / [Sys_error]. *)
