(** CSV trace import/export.

    Format: optional leading comment lines starting with [#] (used by
    fixture generators to record provenance — e.g. the PRNG seed and
    generator config), then a header line "id,size,arrival,departure"
    followed by one row per item, full float precision.  Round-trips
    exactly; lets instances move between the CLI, external tooling and
    regression fixtures. *)

open Dbp_core

val to_channel : ?comment:string -> out_channel -> Instance.t -> unit
(** [comment] (possibly multi-line) is written as leading [# ] lines. *)

val to_string : Instance.t -> string

val save : ?comment:string -> string -> Instance.t -> unit

exception Parse_error of int * string
(** Line number (1-based, header is line 1) and complaint. *)

val of_string : string -> Instance.t
(** Strict parse.  Rejects — each with the precise offending line
    number — malformed rows, non-finite or out-of-range sizes and
    times, [departure <= arrival], and duplicate ids (reported at the
    second occurrence, naming the line of the first).

    @raise Parse_error on malformed input. *)

val of_string_lenient : string -> Instance.t * (int * string) list
(** Best-effort parse for dirty traces: every row [of_string] would
    reject is skipped and reported as [(line, complaint)], in line
    order; the instance is built from the surviving rows (a duplicate
    id keeps the first occurrence).  {e Total}: an empty or headerless
    trace is reported as the first defect (and the rows parsed anyway)
    rather than raised — the serve fuzz suite feeds arbitrary byte
    strings to hold this. *)

val load : string -> Instance.t
(** @raise Parse_error / [Sys_error]. *)

val load_lenient : string -> Instance.t * (int * string) list
(** [of_string_lenient] over a file.
    @raise Sys_error on an unreadable path. *)
