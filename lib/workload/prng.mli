(** Deterministic pseudo-random number generation (splitmix64).

    Experiments must be reproducible bit-for-bit across runs and machines,
    so the workload generators use this self-contained splitmix64
    generator rather than the global [Random] state.  Streams seeded
    identically are identical; [split] derives independent substreams so
    that, e.g., adding a sampler to one part of a generator does not
    perturb the draws of another. *)

type t

val create : int -> t
(** A fresh generator from an integer seed. *)

val split : t -> t
(** A statistically independent substream; advances the parent. *)

val derive : root:int -> index:int -> t
(** The substream for task [index] of a parallel fleet rooted at seed
    [root]: equal to what [split] returns after [index] draws from
    [create root], computed without materialising the parent stream.
    Each task of a {!Dbp_par.Pool} job seeds from its own submission
    index, so streams are independent of scheduling order and pool size
    (the determinism contract, DESIGN.md section 11).
    @raise Invalid_argument if [index < 0]. *)

val copy : t -> t

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi). @raise Invalid_argument if [hi < lo]. *)

val int : t -> int -> int
(** [int t n] uniform in [0, n). @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** @raise Invalid_argument if [mean <= 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Heavy-tailed durations; minimum value [scale].
    @raise Invalid_argument unless both parameters are positive. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** exp(N(mu, sigma^2)). *)

val gaussian : t -> mean:float -> stddev:float -> float

val choose : t -> 'a array -> 'a
(** Uniform element. @raise Invalid_argument on an empty array. *)

val choose_weighted : t -> ('a * float) array -> 'a
(** Element with probability proportional to its weight.
    @raise Invalid_argument on an empty array or non-positive total. *)
