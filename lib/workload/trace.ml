open Dbp_core

let header = "id,size,arrival,departure"

let write_comment oc comment =
  String.split_on_char '\n' comment
  |> List.iter (fun line -> Printf.fprintf oc "# %s\n" line)

let to_channel ?comment oc instance =
  Option.iter (write_comment oc) comment;
  output_string oc header;
  output_char oc '\n';
  List.iter
    (fun r ->
      Printf.fprintf oc "%d,%.17g,%.17g,%.17g\n" (Item.id r) (Item.size r)
        (Item.arrival r) (Item.departure r))
    (Instance.items instance)

let to_string instance =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%.17g,%.17g,%.17g\n" (Item.id r) (Item.size r)
           (Item.arrival r) (Item.departure r)))
    (Instance.items instance);
  Buffer.contents buf

let save ?comment path instance =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel ?comment oc instance)

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

let parse_line lineno line =
  match String.split_on_char ',' (String.trim line) with
  | [ id; size; arrival; departure ] -> (
      let num name s =
        match float_of_string_opt (String.trim s) with
        | Some v -> v
        | None -> fail lineno "bad %s %S" name s
      in
      match int_of_string_opt (String.trim id) with
      | None -> fail lineno "bad id %S" id
      | Some id ->
          (try
             Item.make ~id ~size:(num "size" size)
               ~arrival:(num "arrival" arrival)
               ~departure:(num "departure" departure)
           with Invalid_argument msg -> fail lineno "%s" msg))
  | parts -> fail lineno "expected 4 fields, got %d" (List.length parts)

let rows_of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> fail 1 "empty trace"
  | (hline, h) :: rows ->
      if not (String.equal h header) then fail hline "bad header %S" h;
      rows

(* Each accepted row remembers the line it came from so duplicate ids can
   be reported at the offending row, not blamed on the whole trace. *)
let check_duplicate seen lineno item =
  let id = Item.id item in
  match Hashtbl.find_opt seen id with
  | Some first ->
      fail lineno "duplicate id %d (first seen at line %d)" id first
  | None -> Hashtbl.add seen id lineno

let of_string s =
  let rows = rows_of_string s in
  let seen = Hashtbl.create 64 in
  let items =
    List.map
      (fun (n, l) ->
        let item = parse_line n l in
        check_duplicate seen n item;
        item)
      rows
  in
  try Instance.of_items items with Invalid_argument msg -> fail 1 "%s" msg

(* Unlike {!of_string}, the lenient variant is total: a missing header
   (or an empty trace) is itself just a recorded defect, and the rows
   are parsed as if the header were present.  The serve fuzz suite feeds
   this arbitrary byte strings to keep it that way. *)
let[@dbp.total] of_string_lenient s =
  let errors = ref [] in
  let rows =
    match rows_of_string s with
    | rows -> rows
    | exception Parse_error (lineno, msg) ->
        errors := [ (lineno, msg) ];
        String.split_on_char '\n' s
        |> List.mapi (fun i l -> (i + 1, String.trim l))
        |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  let seen = Hashtbl.create 64 in
  let items =
    List.filter_map
      (fun (n, l) ->
        match
          let item = parse_line n l in
          check_duplicate seen n item;
          item
        with
        | item -> Some item
        | exception Parse_error (lineno, msg) ->
            errors := (lineno, msg) :: !errors;
            None)
      rows
  in
  let instance =
    match Instance.of_items items with
    | instance -> instance
    | exception Invalid_argument msg ->
        errors := (1, msg) :: !errors;
        Instance.empty
  in
  (instance, List.rev !errors)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len)

let load path = of_string (read_file path)
let load_lenient path = of_string_lenient (read_file path)
