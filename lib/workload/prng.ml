(* splitmix64 (Steele, Lea, Flood 2014): tiny, fast, passes BigCrush when
   used as here, and trivially splittable. *)

type t = { mutable state : int64; mutable spare_gaussian : float option }

let golden = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.of_int seed; spare_gaussian = None }

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  { state = int64 t; spare_gaussian = None }

(* Position-independent splitting for parallel fleets: the substream for
   (root, index) is the one [split] would return after [index] draws
   from [create root] -- computed directly, so a task's stream depends
   only on its submission index, never on which domain ran it or in what
   order.  State = finalizer(root + (index+1) * golden), i.e. the
   (index+1)-th raw splitmix64 output of the root stream. *)
let derive ~root ~index =
  if index < 0 then invalid_arg "Prng.derive: index < 0";
  let z =
    Int64.add (Int64.of_int root) (Int64.mul (Int64.of_int (index + 1)) golden)
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  { state = z; spare_gaussian = None }

let copy t = { state = t.state; spare_gaussian = t.spare_gaussian }

(* 53 random bits into [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.uniform: hi < lo";
  lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: n <= 0";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     small ranges used by generators (n << 2^63). *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int n))

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Prng.exponential: mean <= 0";
  let u = 1. -. float t (* in (0, 1] *) in
  -.mean *. log u

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Prng.pareto";
  let u = 1. -. float t in
  scale /. (u ** (1. /. shape))

let gaussian t ~mean ~stddev =
  match t.spare_gaussian with
  | Some g ->
      t.spare_gaussian <- None;
      mean +. (stddev *. g)
  | None ->
      (* Box-Muller *)
      let u1 = 1. -. float t and u2 = float t in
      let r = sqrt (-2. *. log u1) in
      let theta = 2. *. Float.pi *. u2 in
      t.spare_gaussian <- Some (r *. sin theta);
      mean +. (stddev *. r *. cos theta)

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~stddev:sigma)

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty";
  arr.(int t (Array.length arr))

let choose_weighted t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose_weighted: empty";
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. arr in
  if total <= 0. then invalid_arg "Prng.choose_weighted: total weight <= 0";
  let target = float t *. total in
  let rec scan i acc =
    let x, w = arr.(i) in
    let acc = acc +. w in
    if target < acc || i = Array.length arr - 1 then x else scan (i + 1) acc
  in
  scan 0 0.
