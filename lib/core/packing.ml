module Int_map = Map.Make (Int)

type t = {
  instance : Instance.t;
  bins : Bin_state.t list; (* index order, non-empty *)
  bin_of_item : int Int_map.t;
}

let validate instance bins =
  let seen =
    List.fold_left
      (fun acc b ->
        List.fold_left
          (fun acc r ->
            let id = Item.id r in
            if Int_map.mem id acc then
              invalid_arg
                (Printf.sprintf "Packing: item %d placed twice" id)
            else Int_map.add id (Bin_state.index b) acc)
          acc (Bin_state.items b))
      Int_map.empty bins
  in
  List.iter
    (fun r ->
      if not (Int_map.mem (Item.id r) seen) then
        invalid_arg
          (Printf.sprintf "Packing: item %d not placed" (Item.id r)))
    (Instance.items instance);
  if Int_map.cardinal seen <> Instance.length instance then
    invalid_arg "Packing: packed items not in the instance";
  List.iter
    (fun b ->
      if
        Step_function.max_value (Bin_state.level_profile b)
        > Bin_state.capacity +. Bin_state.tolerance
      then
        invalid_arg
          (Printf.sprintf "Packing: bin %d exceeds capacity"
             (Bin_state.index b)))
    bins;
  seen

let of_bins instance bins =
  let bins =
    List.filter (fun b -> not (Bin_state.is_empty b)) bins
    |> List.sort (fun a b -> Int.compare (Bin_state.index a) (Bin_state.index b))
  in
  let bin_of_item = validate instance bins in
  { instance; bins; bin_of_item }

let of_assignment instance pairs =
  let by_bin =
    List.fold_left
      (fun acc (item_id, bin_index) ->
        let r = Instance.find instance item_id in
        let existing =
          match Int_map.find_opt bin_index acc with
          | Some rs -> rs
          | None -> []
        in
        Int_map.add bin_index (r :: existing) acc)
      Int_map.empty pairs
  in
  let bins =
    Int_map.bindings by_bin
    |> List.map (fun (index, rs) ->
           (* Place in arrival order so intermediate states are sensible. *)
           List.sort Item.compare_arrival rs
           |> List.fold_left Bin_state.place (Bin_state.empty ~index))
  in
  of_bins instance bins

let instance p = p.instance
let bins p = p.bins
let bin_count p = List.length p.bins
let bin_of_item p item_id = Int_map.find item_id p.bin_of_item

let total_usage_time p =
  List.fold_left (fun acc b -> acc +. Bin_state.usage_time b) 0. p.bins

let open_bins_profile p =
  p.bins
  |> List.map (fun b ->
         Bin_state.usage_intervals b
         |> List.map (fun i -> Step_function.indicator i 1.)
         |> List.fold_left Step_function.add Step_function.zero)
  |> List.fold_left Step_function.add Step_function.zero

let max_concurrent_bins p =
  int_of_float (Float.round (Step_function.max_value (open_bins_profile p)))

let utilization p =
  let usage = total_usage_time p in
  if Float.equal usage 0. then 1. else Instance.demand p.instance /. usage

let pp_summary ppf p =
  Format.fprintf ppf "%d bins, usage %.6g, util %.3f" (bin_count p)
    (total_usage_time p) (utilization p)

let pp ppf p =
  Format.fprintf ppf "@[<v>packing: %a@," pp_summary p;
  List.iter (fun b -> Format.fprintf ppf "%a@," Bin_state.pp b) p.bins;
  Format.fprintf ppf "@]"
