(** A problem instance: a list of items (the paper's item list R), with the
    derived quantities the analysis uses throughout — span, total
    time-space demand d(R), the duration ratio mu, and the active-size
    profile S(t). *)

type t

val of_items : Item.t list -> t
(** @raise Invalid_argument if two items share an id. *)

val empty : t
(** The zero-item instance; [of_items []] without the raising type. *)

val items : t -> Item.t list
(** In increasing id order. *)

val length : t -> int
val is_empty : t -> bool

val find : t -> int -> Item.t
(** Lookup by id. @raise Not_found *)

val span : t -> float
(** Measure of the union of the active intervals (paper's span(R)). *)

val span_intervals : t -> Interval.t list
(** The union of active intervals as canonical disjoint intervals; multiple
    intervals mean the instance splits into independent sublists
    (Section 5.2 footnote). *)

val demand : t -> float
(** d(R) = sum of s(r) * l(I(r)). *)

val min_duration : t -> float
(** Delta. @raise Invalid_argument on an empty instance. *)

val max_duration : t -> float

val mu : t -> float
(** max duration / min duration. @raise Invalid_argument on empty. *)

val size_profile : t -> Step_function.t
(** S(t): total size of active items as a step function of t. *)

val active_at : t -> float -> Item.t list
(** Items active at a time, in id order. *)

val arrivals_in_order : t -> Item.t list
(** Items sorted by arrival time (ties by id): the online input order. *)

val critical_times : t -> float list
(** Sorted distinct arrival and departure times.  Every time-varying
    quantity of an instance is constant between consecutive critical
    times. *)

val restrict : t -> (Item.t -> bool) -> t
(** Sub-instance of the items satisfying a predicate. *)

val split_disjoint : t -> t list
(** Split into maximal sub-instances with pairwise disjoint spans, ordered
    by time.  Singleton list if the span is one interval. *)

val shift : float -> t -> t
(** Translate every item in time. *)

val pp : Format.formatter -> t -> unit
