type t = {
  index : int;
  items : Item.t list; (* most recently placed first *)
  profile : Step_function.t; (* cached level profile *)
}

let capacity = 1.
let tolerance = 1e-9

let empty ~index = { index; items = []; profile = Step_function.zero }
let index b = b.index
let items b = List.rev b.items
let is_empty b = b.items = []
let level_profile b = b.profile
let level_at b t = Step_function.value_at b.profile t

let fits b r =
  Step_function.max_over b.profile (Item.interval r) +. Item.size r
  <= capacity +. tolerance

let fits_at b ~at r =
  Item.active_at r at
  && Step_function.value_at b.profile at +. Item.size r
     <= capacity +. tolerance

let place_unchecked b r =
  {
    b with
    items = r :: b.items;
    profile =
      Step_function.add b.profile
        (Step_function.indicator (Item.interval r) (Item.size r));
  }

let place b r =
  if not (fits b r) then
    invalid_arg
      (Format.asprintf "Bin_state.place: %a overflows bin %d" Item.pp r
         b.index);
  place_unchecked b r

let usage_intervals b =
  List.map Item.interval b.items |> Interval.union

let usage_time b = Step_function.support_length b.profile

let opening_time b =
  match items b with
  | [] -> invalid_arg "Bin_state.opening_time: empty bin"
  | rs -> List.fold_left (fun acc r -> Float.min acc (Item.arrival r))
            Float.infinity rs

let closing_time b =
  match items b with
  | [] -> invalid_arg "Bin_state.closing_time: empty bin"
  | rs -> List.fold_left (fun acc r -> Float.max acc (Item.departure r))
            Float.neg_infinity rs

let active_at b t = Step_function.value_at b.profile t > 0.

let pp ppf b =
  Format.fprintf ppf "@[<v>bin %d (usage %g):@," b.index (usage_time b);
  List.iter (fun r -> Format.fprintf ppf "  %a@," Item.pp r) (items b);
  Format.fprintf ppf "@]"
