type t = {
  index : int;
  items : Item.t list; (* most recently placed first *)
  profile : Step_function.t; (* cached level profile *)
}

let capacity = 1.
let tolerance = 1e-9

let empty ~index = { index; items = []; profile = Step_function.zero }
let index b = b.index
let items b = List.rev b.items
let is_empty b = b.items = []
let level_profile b = b.profile
let level_at b t = Step_function.value_at b.profile t

let fits b r =
  Step_function.max_over b.profile (Item.interval r) +. Item.size r
  <= capacity +. tolerance

let fits_at b ~at r =
  Item.active_at r at
  && Step_function.value_at b.profile at +. Item.size r
     <= capacity +. tolerance

let place_unchecked b r =
  {
    b with
    items = r :: b.items;
    profile =
      Step_function.add b.profile
        (Step_function.indicator (Item.interval r) (Item.size r));
  }

(* Rebuild the bin a placement sequence would have produced, without
   paying [place_unchecked]'s incremental profile merge per item.  The
   profile is reconstructed by one sweep over the items' endpoints: at
   each distinct endpoint the level is re-summed as a left fold over the
   items active there, *in placement order*.  That fold is bit-identical
   to the value the incremental [Step_function.add] chain stores:

   - [add] combines with [( +. )], and merging an inactive item
     contributes [v +. 0.] = [v] (levels are sums of positive sizes, so
     never -0.), so every stored break value is exactly the
     placement-order fold over the items active at the break;
   - [normalize] only drops breaks whose value equals the previous one,
     which leaves the function's value (and its canonical break set)
     unchanged — and the sweep's candidate set (all endpoints) is a
     superset of any break the incremental profile can retain.

   Both paths therefore normalize the same (candidate, value) samples to
   the same canonical break list.  The sweep keeps the active items on a
   linked list in placement order (placement order within a bin is
   arrival order, so arrivals append at the tail) and costs
   O(k log k + sum of concurrent actives) instead of O(k^2). *)
let of_placement ~index placed =
  match placed with
  | [] -> empty ~index
  | _ ->
      let arr = Array.of_list placed in
      let k = Array.length arr in
      (* 2k endpoint events: (time, rank, slot), departures first at
         equal times so [arrival <= t < departure] holds at each sample
         instant after the group is applied. *)
      let events = Array.make (2 * k) (0., 0, 0) in
      Array.iteri
        (fun s r ->
          events.(2 * s) <- (Item.arrival r, 1, s);
          events.((2 * s) + 1) <- (Item.departure r, 0, s))
        arr;
      let cmp (ta, ra, sa) (tb, rb, sb) =
        match Float.compare ta tb with
        | 0 -> (
            match Int.compare ra rb with 0 -> Int.compare sa sb | c -> c)
        | c -> c
      in
      Array.sort cmp events;
      let next = Array.make k (-1) and prev = Array.make k (-1) in
      let head = ref (-1) and tail = ref (-1) in
      let link s =
        (* Insert keeping the list in placement (slot) order.  Engine
           bins place in arrival order, so the backwards walk stops
           immediately there; arbitrary placement sequences pay
           O(active). *)
        let rec back p = if p >= 0 && p > s then back prev.(p) else p in
        let after = back !tail in
        prev.(s) <- after;
        next.(s) <- (if after >= 0 then next.(after) else !head);
        (match next.(s) with -1 -> tail := s | nx -> prev.(nx) <- s);
        if after >= 0 then next.(after) <- s else head := s
      in
      let unlink s =
        if prev.(s) >= 0 then next.(prev.(s)) <- next.(s)
        else head := next.(s);
        if next.(s) >= 0 then prev.(next.(s)) <- prev.(s)
        else tail := prev.(s);
        prev.(s) <- -1;
        next.(s) <- -1
      in
      let level_now () =
        let rec go s acc =
          if s < 0 then acc else go next.(s) (acc +. Item.size arr.(s))
        in
        go !head 0.
      in
      let breaks = ref [] in
      let m = 2 * k in
      let i = ref 0 in
      while !i < m do
        let t, _, _ = events.(!i) in
        (* Apply the whole equal-time group, then sample once. *)
        let j = ref !i in
        let same_time j =
          let tj, _, _ = events.(j) in
          Float.equal tj t
        in
        while !j < m && same_time !j do
          let _, rank, s = events.(!j) in
          if rank = 0 then unlink s else link s;
          incr j
        done;
        breaks := (t, level_now ()) :: !breaks;
        i := !j
      done;
      {
        index;
        items = List.rev placed;
        profile = Step_function.of_breaks (List.rev !breaks);
      }

let place b r =
  if not (fits b r) then
    invalid_arg
      (Format.asprintf "Bin_state.place: %a overflows bin %d" Item.pp r
         b.index);
  place_unchecked b r

let usage_intervals b =
  List.map Item.interval b.items |> Interval.union

let usage_time b = Step_function.support_length b.profile

let opening_time b =
  match items b with
  | [] -> invalid_arg "Bin_state.opening_time: empty bin"
  | rs -> List.fold_left (fun acc r -> Float.min acc (Item.arrival r))
            Float.infinity rs

let closing_time b =
  match items b with
  | [] -> invalid_arg "Bin_state.closing_time: empty bin"
  | rs -> List.fold_left (fun acc r -> Float.max acc (Item.departure r))
            Float.neg_infinity rs

let active_at b t = Step_function.value_at b.profile t > 0.

let pp ppf b =
  Format.fprintf ppf "@[<v>bin %d (usage %g):@," b.index (usage_time b);
  List.iter (fun r -> Format.fprintf ppf "  %a@," Item.pp r) (items b);
  Format.fprintf ppf "@]"
