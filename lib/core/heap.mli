(** Array-backed binary min-heap.

    Used by the indexed online engine as its event queue.  When [cmp] is
    a total order (no two distinct pushed elements compare equal — true
    for {!Event.compare}, which falls back to the unique item id), the
    pop sequence is exactly the [cmp]-sorted sequence regardless of push
    order, so a heap-driven run is reproducible and agrees with a
    pre-sorted list. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** Floyd heapify, O(n). *)

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the [cmp]-least element. *)

val peek : 'a t -> 'a option

val length : 'a t -> int

val is_empty : 'a t -> bool

val drain : 'a t -> 'a list
(** Pop everything: the remaining elements in [cmp]-sorted order.
    Empties the heap. *)

(** Flat min-heap over (float key, int payload) pairs, ordered
    lexicographically by (key, payload).

    The keys live in an unboxed [floatarray] and the payloads are
    immediate ints, so no element is ever boxed and the operational
    path allocates nothing beyond the backing arrays.  This is the
    flat engine's event queue: events are index-encoded into the
    payload (see {!Event.Flat}), and because payloads are distinct the
    order is total — popping dry yields the sorted sequence exactly
    like the generic heap.  Keys must be finite ([invalid_arg]
    otherwise): the primitive float compares used internally are not
    NaN-safe. *)
module Flat : sig
  type t

  val create : unit -> t

  val of_raw : keys:floatarray -> payloads:int array -> t
  (** Floyd-heapify the given parallel arrays in place, O(n); the heap
      takes ownership of both.  The arrays must have equal lengths. *)

  val push : t -> key:float -> payload:int -> unit

  val min_key : t -> float
  (** Key of the least element. @raise Invalid_argument if empty. *)

  val min_payload : t -> int
  (** Payload of the least element. @raise Invalid_argument if empty. *)

  val remove_min : t -> unit
  (** Drop the least element. @raise Invalid_argument if empty. *)

  val length : t -> int
  val is_empty : t -> bool
end
