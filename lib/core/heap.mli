(** Array-backed binary min-heap.

    Used by the indexed online engine as its event queue.  When [cmp] is
    a total order (no two distinct pushed elements compare equal — true
    for {!Event.compare}, which falls back to the unique item id), the
    pop sequence is exactly the [cmp]-sorted sequence regardless of push
    order, so a heap-driven run is reproducible and agrees with a
    pre-sorted list. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
(** Floyd heapify, O(n). *)

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the [cmp]-least element. *)

val peek : 'a t -> 'a option

val length : 'a t -> int

val is_empty : 'a t -> bool

val drain : 'a t -> 'a list
(** Pop everything: the remaining elements in [cmp]-sorted order.
    Empties the heap. *)
