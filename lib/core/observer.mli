(** Engine observation callbacks (decision tracing).

    An observer is a record of callbacks the packing engines invoke at
    each step of a run.  It lives in [dbp.core] so both the plain
    engines ([Dbp_online.Engine]) and the fault-tolerant wrapper
    ([Dbp_faults.Resilient]) can accept one without depending on the
    [dbp.obs] sinks that consume it.

    {b Determinism contract} (DESIGN.md section 12): every [time] is
    {e simulation} time — an event timestamp of the run, never the wall
    clock — so anything recorded through an observer is a pure function
    of (instance, algorithm, seed).  Observers must not influence the
    run; the engines guarantee identical decisions with and without one.

    Callback order on an arrival event:
    [on_arrival] → [on_decision] → [on_open_bin] (only when the decision
    opened a fresh bin) → [on_place] (after the placement validated).
    On a departure event: [on_departure] → [on_close_bin] (only when the
    departure emptied the bin).  Both engines ([run_reference] and
    [run_indexed]) emit byte-identical sequences — enforced by the
    qcheck identity property in [test_obs.ml]. *)

type t = {
  on_arrival : time:float -> item:Item.t -> unit;
  on_decision : time:float -> item:Item.t -> bin:int option -> unit;
      (** [bin] is [Some idx] for a placement into an existing open bin,
          [None] when the algorithm opened a new one (whose index the
          following [on_open_bin]/[on_place] carry). *)
  on_open_bin : time:float -> bin:int -> unit;
  on_place : time:float -> item:Item.t -> bin:int -> unit;
  on_close_bin : time:float -> bin:int -> unit;
  on_departure : time:float -> item:Item.t -> unit;
}

val null : t
(** Ignores everything. *)

val v :
  ?on_arrival:(time:float -> item:Item.t -> unit) ->
  ?on_decision:(time:float -> item:Item.t -> bin:int option -> unit) ->
  ?on_open_bin:(time:float -> bin:int -> unit) ->
  ?on_place:(time:float -> item:Item.t -> bin:int -> unit) ->
  ?on_close_bin:(time:float -> bin:int -> unit) ->
  ?on_departure:(time:float -> item:Item.t -> unit) ->
  unit ->
  t
(** An observer from the callbacks you care about; the rest default to
    no-ops. *)

val pair : t -> t -> t
(** Fan out every callback to both observers, first argument first. *)
