(** Arrival/departure event streams.

    The online engine consumes an instance as a time-ordered stream of
    events.  At equal times departures are delivered before arrivals: the
    intervals are half-open, so an item departing at t frees its capacity
    to an item arriving at t. *)

type kind = Arrival | Departure

type t = { time : float; kind : kind; item : Item.t }

val of_instance : Instance.t -> t list
(** All events in delivery order: increasing time; at equal times
    departures first; ties broken by item id. *)

val queue_of_instance : Instance.t -> t Heap.t
(** The same events as a binary-heap queue: popping the heap dry yields
    exactly the {!of_instance} order (the comparator is total, so the
    heap is deterministic).  This is the indexed engine's event source —
    O(n) to build, O(log n) per pop, and it supports future interleaving
    of events not known up front. *)

(** Index-encoded events for the flat engine.

    An event is a (time, payload) pair in a {!Heap.Flat} queue; the
    payload packs the kind rank (departure = 0 in the top bits, so at
    equal times departures pop first) and the *slot* of the item in the
    engine's id-sorted item array.  Lexicographic (key, payload) order
    therefore reproduces {!compare} exactly — the tie-break invariant
    the invariant suite pins. *)
module Flat : sig
  val payload : kind:kind -> slot:int -> int
  (** [invalid_arg] if [slot] is negative or does not fit the payload
      width (2^60 slots — unreachable for real instances). *)

  val payload_kind : int -> kind

  val payload_slot : int -> int

  val queue_of_items : Item.t array -> Heap.Flat.t
  (** Both events of every item, heapified in O(n).  [items] must be the
      id-ascending item array ([Instance.items] order) for the pop order
      to equal {!of_instance}. *)
end

val arrivals : t list -> Item.t list
(** The items of the arrival events, in stream order. *)

val kind_to_string : kind -> string

val pp : Format.formatter -> t -> unit
