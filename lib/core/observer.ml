(* The engine observation contract lives in core so that every engine
   (lib/online, lib/faults) can accept an observer without depending on
   the dbp.obs sinks.  Callbacks receive *simulation* time only: traces
   built on them are a pure function of (instance, algorithm, seed),
   never of the wall clock (DESIGN.md section 12). *)

type t = {
  on_arrival : time:float -> item:Item.t -> unit;
  on_decision : time:float -> item:Item.t -> bin:int option -> unit;
  on_open_bin : time:float -> bin:int -> unit;
  on_place : time:float -> item:Item.t -> bin:int -> unit;
  on_close_bin : time:float -> bin:int -> unit;
  on_departure : time:float -> item:Item.t -> unit;
}

let nop2 ~time:_ ~item:_ = ()
let nop_bin ~time:_ ~bin:_ = ()

let null =
  {
    on_arrival = nop2;
    on_decision = (fun ~time:_ ~item:_ ~bin:_ -> ());
    on_open_bin = nop_bin;
    on_place = (fun ~time:_ ~item:_ ~bin:_ -> ());
    on_close_bin = nop_bin;
    on_departure = nop2;
  }

let v ?(on_arrival = null.on_arrival) ?(on_decision = null.on_decision)
    ?(on_open_bin = null.on_open_bin) ?(on_place = null.on_place)
    ?(on_close_bin = null.on_close_bin) ?(on_departure = null.on_departure) ()
    =
  { on_arrival; on_decision; on_open_bin; on_place; on_close_bin; on_departure }

let pair a b =
  {
    on_arrival =
      (fun ~time ~item ->
        a.on_arrival ~time ~item;
        b.on_arrival ~time ~item);
    on_decision =
      (fun ~time ~item ~bin ->
        a.on_decision ~time ~item ~bin;
        b.on_decision ~time ~item ~bin);
    on_open_bin =
      (fun ~time ~bin ->
        a.on_open_bin ~time ~bin;
        b.on_open_bin ~time ~bin);
    on_place =
      (fun ~time ~item ~bin ->
        a.on_place ~time ~item ~bin;
        b.on_place ~time ~item ~bin);
    on_close_bin =
      (fun ~time ~bin ->
        a.on_close_bin ~time ~bin;
        b.on_close_bin ~time ~bin);
    on_departure =
      (fun ~time ~item ->
        a.on_departure ~time ~item;
        b.on_departure ~time ~item);
  }
