type kind = Arrival | Departure

type t = { time : float; kind : kind; item : Item.t }

let kind_rank = function Departure -> 0 | Arrival -> 1

let compare a b =
  match Float.compare a.time b.time with
  | 0 -> (
      match Int.compare (kind_rank a.kind) (kind_rank b.kind) with
      | 0 -> Item.compare_by_id a.item b.item
      | c -> c)
  | c -> c

let of_instance instance =
  Instance.items instance
  |> List.concat_map (fun r ->
         [
           { time = Item.arrival r; kind = Arrival; item = r };
           { time = Item.departure r; kind = Departure; item = r };
         ])
  |> List.sort compare

let queue_of_instance instance =
  (* Build the heap directly from the unsorted event list: O(n) heapify
     instead of the O(n log n) sort of [of_instance].  Popping yields the
     exact [of_instance] order because [compare] is a total order (ties
     end at the unique item id). *)
  Instance.items instance
  |> List.concat_map (fun r ->
         [
           { time = Item.arrival r; kind = Arrival; item = r };
           { time = Item.departure r; kind = Departure; item = r };
         ])
  |> Heap.of_list ~cmp:compare

module Flat = struct
  (* Payload layout: kind rank in the top bits, slot (position of the
     item in the id-sorted item array) in the low bits.  Lexicographic
     (time, payload) order on these payloads is exactly {!compare}:
     equal times order by kind rank (departures first), then by slot —
     and slots ascend with item ids. *)
  let shift = 60

  let payload ~kind ~slot =
    if slot < 0 || slot >= 1 lsl shift then
      invalid_arg "Event.Flat.payload: slot out of range";
    (kind_rank kind lsl shift) lor slot

  let payload_kind p = if p lsr shift = 0 then Departure else Arrival
  let payload_slot p = p land ((1 lsl shift) - 1)

  let queue_of_items items =
    let n = Array.length items in
    let keys = Float.Array.create (2 * n) in
    let payloads = Array.make (2 * n) 0 in
    Array.iteri
      (fun slot r ->
        Float.Array.set keys (2 * slot) (Item.arrival r);
        payloads.(2 * slot) <- payload ~kind:Arrival ~slot;
        Float.Array.set keys ((2 * slot) + 1) (Item.departure r);
        payloads.((2 * slot) + 1) <- payload ~kind:Departure ~slot)
      items;
    Heap.Flat.of_raw ~keys ~payloads
end

let arrivals events =
  List.filter_map
    (fun e -> match e.kind with Arrival -> Some e.item | Departure -> None)
    events

let kind_to_string = function
  | Arrival -> "arrival"
  | Departure -> "departure"

let pp ppf e =
  Format.fprintf ppf "%g %s %a" e.time (kind_to_string e.kind) Item.pp e.item
