type kind = Arrival | Departure

type t = { time : float; kind : kind; item : Item.t }

let kind_rank = function Departure -> 0 | Arrival -> 1

let compare a b =
  match Float.compare a.time b.time with
  | 0 -> (
      match Int.compare (kind_rank a.kind) (kind_rank b.kind) with
      | 0 -> Item.compare_by_id a.item b.item
      | c -> c)
  | c -> c

let of_instance instance =
  Instance.items instance
  |> List.concat_map (fun r ->
         [
           { time = Item.arrival r; kind = Arrival; item = r };
           { time = Item.departure r; kind = Departure; item = r };
         ])
  |> List.sort compare

let queue_of_instance instance =
  (* Build the heap directly from the unsorted event list: O(n) heapify
     instead of the O(n log n) sort of [of_instance].  Popping yields the
     exact [of_instance] order because [compare] is a total order (ties
     end at the unique item id). *)
  Instance.items instance
  |> List.concat_map (fun r ->
         [
           { time = Item.arrival r; kind = Arrival; item = r };
           { time = Item.departure r; kind = Departure; item = r };
         ])
  |> Heap.of_list ~cmp:compare

let arrivals events =
  List.filter_map
    (fun e -> match e.kind with Arrival -> Some e.item | Departure -> None)
    events

let kind_to_string = function
  | Arrival -> "arrival"
  | Departure -> "departure"

let pp ppf e =
  Format.fprintf ppf "%g %s %a" e.time (kind_to_string e.kind) Item.pp e.item
