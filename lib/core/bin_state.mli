(** A single unit-capacity bin and the items placed in it.

    A bin accumulates items; its *level* at time t is the total size of its
    items active at t and must never exceed the capacity 1.  The bin's
    usage time is the span of its items (paper Section 3.1).  Values are
    persistent: [place] returns a new bin. *)

type t

val capacity : float
(** 1., the unit bin capacity the paper normalises to. *)

val tolerance : float
(** Slack used in feasibility checks ([1e-9]) so that sums of floats such
    as ten items of size 0.1 still fit together. *)

val empty : index:int -> t
(** A fresh bin.  [index] is the opening order used by First Fit. *)

val index : t -> int
val items : t -> Item.t list
val is_empty : t -> bool

val level_profile : t -> Step_function.t
(** The bin level as a function of time. *)

val level_at : t -> float -> float

val fits : t -> Item.t -> bool
(** [fits b r] iff placing [r] in [b] keeps the level within capacity at
    every instant of r's active interval — the clairvoyant admission test
    (uses the already-known departure times of all placed items). *)

val fits_at : t -> at:float -> Item.t -> bool
(** Non-clairvoyant admission test: only checks the level at time [at]
    (the instant of arrival).  With the clairvoyant engine driving
    placements in arrival order the two tests agree; this one exists for
    the non-clairvoyant baselines and for validation. *)

val place : t -> Item.t -> t
(** @raise Invalid_argument if the item does not fit (checks [fits]). *)

val of_placement : index:int -> Item.t list -> t
(** [of_placement ~index placed] is the bin
    [List.fold_left place_unchecked (empty ~index) placed] — including a
    bit-identical level profile — rebuilt in one
    O(k log k + sum of concurrent actives) endpoint sweep instead of
    the fold's O(k^2) incremental profile merges.  [placed] is in
    placement order (oldest first).  This is how the flat engine
    materialises [Bin_state] values on demand: it records only each
    bin's placement chain during a run and reconstructs the boxed state
    here when a view or the final packing needs it. *)

val place_unchecked : t -> Item.t -> t
(** [place] without the [fits] admission re-check, for callers that have
    already validated — the indexed engine checks [fits_at] at the
    arrival instant, which is equivalent here: every already-placed item
    active after the arrival is also active at it, so the level over the
    new item's interval never exceeds its value at the arrival.  An
    unvalidated overflow is caught at the end of a run by
    {!Packing.of_bins}. *)

val usage_time : t -> float
(** Span of the items placed in the bin. *)

val usage_intervals : t -> Interval.t list

val opening_time : t -> float
(** Earliest arrival among placed items. @raise Invalid_argument if empty. *)

val closing_time : t -> float
(** Latest departure among placed items. @raise Invalid_argument if empty. *)

val active_at : t -> float -> bool
(** Whether at least one placed item is active at a time (bin open). *)

val pp : Format.formatter -> t -> unit
