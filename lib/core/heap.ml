(* Array-backed binary min-heap.  The element order is given by the
   [cmp] closure captured at creation; with a *total* order (no two
   distinct elements comparing equal) the pop sequence is exactly the
   sorted sequence, independent of push order — the property the online
   engine's event queue relies on for reproducibility. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array; (* slots >= size are stale padding *)
  mutable size : int;
}

let create ~cmp () = { cmp; data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let swap data i j =
  let tmp = data.(i) in
  data.(i) <- data.(j);
  data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      swap h.data i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest =
    if l < h.size && h.cmp h.data.(l) h.data.(i) < 0 then l else i
  in
  let smallest =
    if r < h.size && h.cmp h.data.(r) h.data.(smallest) < 0 then r
    else smallest
  in
  if smallest <> i then begin
    swap h.data i smallest;
    sift_down h smallest
  end

let push h x =
  if h.size = Array.length h.data then begin
    (* Grow by doubling; [x] is a safe filler for the fresh slots. *)
    let cap = max 8 (2 * h.size) in
    let data = Array.make cap x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      (* Bottom-up deletion: pull the smaller child into the hole all the
         way down (one compare per level instead of two), then sift the
         displaced last element up from there — it came from the bottom
         layer, so the sift-up almost always stops immediately. *)
      let x = h.data.(h.size) in
      let i = ref 0 in
      let descending = ref true in
      while !descending do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        if l >= h.size then descending := false
        else begin
          let c =
            if r < h.size && h.cmp h.data.(r) h.data.(l) < 0 then r else l
          in
          h.data.(!i) <- h.data.(c);
          i := c
        end
      done;
      h.data.(!i) <- x;
      sift_up h !i
    end;
    Some top
  end

let of_list ~cmp xs =
  match xs with
  | [] -> create ~cmp ()
  | _ ->
      let data = Array.of_list xs in
      let h = { cmp; data; size = Array.length data } in
      (* Floyd heapify: O(n). *)
      for i = (h.size / 2) - 1 downto 0 do
        sift_down h i
      done;
      h

let drain h =
  let rec go acc =
    match pop h with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []
