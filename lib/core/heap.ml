(* Array-backed binary min-heap.  The element order is given by the
   [cmp] closure captured at creation; with a *total* order (no two
   distinct elements comparing equal) the pop sequence is exactly the
   sorted sequence, independent of push order — the property the online
   engine's event queue relies on for reproducibility. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array; (* slots >= size are stale padding *)
  mutable size : int;
}

let create ~cmp () = { cmp; data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let swap data i j =
  let tmp = data.(i) in
  data.(i) <- data.(j);
  data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      swap h.data i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest =
    if l < h.size && h.cmp h.data.(l) h.data.(i) < 0 then l else i
  in
  let smallest =
    if r < h.size && h.cmp h.data.(r) h.data.(smallest) < 0 then r
    else smallest
  in
  if smallest <> i then begin
    swap h.data i smallest;
    sift_down h smallest
  end

let push h x =
  if h.size = Array.length h.data then begin
    (* Grow by doubling; [x] is a safe filler for the fresh slots. *)
    let cap = max 8 (2 * h.size) in
    let data = Array.make cap x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      (* Bottom-up deletion: pull the smaller child into the hole all the
         way down (one compare per level instead of two), then sift the
         displaced last element up from there — it came from the bottom
         layer, so the sift-up almost always stops immediately. *)
      let x = h.data.(h.size) in
      let i = ref 0 in
      let descending = ref true in
      while !descending do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        if l >= h.size then descending := false
        else begin
          let c =
            if r < h.size && h.cmp h.data.(r) h.data.(l) < 0 then r else l
          in
          h.data.(!i) <- h.data.(c);
          i := c
        end
      done;
      h.data.(!i) <- x;
      sift_up h !i
    end;
    Some top
  end

let of_list ~cmp xs =
  match xs with
  | [] -> create ~cmp ()
  | _ ->
      let data = Array.of_list xs in
      let h = { cmp; data; size = Array.length data } in
      (* Floyd heapify: O(n). *)
      for i = (h.size / 2) - 1 downto 0 do
        sift_down h i
      done;
      h

let drain h =
  let rec go acc =
    match pop h with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Flat heap: a (floatarray, int array) pair ordered lexicographically
   by (key, payload).  No element is ever boxed — the keys live in an
   unboxed float array and the payloads are immediate ints — so pushes,
   pops and the initial heapify allocate nothing beyond the two backing
   arrays.  Payloads double as tie-breakers: with distinct payloads the
   order is total and the pop sequence is the sorted sequence, exactly
   like the generic heap above. *)

module Flat = struct
  type t = {
    mutable keys : floatarray;
    mutable payloads : int array;
    mutable size : int;
  }

  let create () =
    { keys = Float.Array.create 0; payloads = [||]; size = 0 }

  let length t = t.size
  let is_empty t = t.size = 0

  (* Strict lexicographic less-than between slots [i] and [j].  Keys are
     required finite, so the primitive float compares below are total. *)
  let lt keys payloads i j =
    let ki = Float.Array.get keys i and kj = Float.Array.get keys j in
    if ki < kj then true
    else if kj < ki then false
    else Array.unsafe_get payloads i < Array.unsafe_get payloads j

  let swap t i j =
    let k = Float.Array.get t.keys i in
    Float.Array.set t.keys i (Float.Array.get t.keys j);
    Float.Array.set t.keys j k;
    let p = t.payloads.(i) in
    t.payloads.(i) <- t.payloads.(j);
    t.payloads.(j) <- p

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt t.keys t.payloads i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest =
      if l < t.size && lt t.keys t.payloads l i then l else i
    in
    let smallest =
      if r < t.size && lt t.keys t.payloads r smallest then r else smallest
    in
    if smallest <> i then begin
      swap t i smallest;
      sift_down t smallest
    end

  let push t ~key ~payload =
    if not (Float.is_finite key) then invalid_arg "Heap.Flat.push: key not finite";
    if t.size = Float.Array.length t.keys then begin
      let cap = max 8 (2 * t.size) in
      let keys = Float.Array.make cap 0. in
      let payloads = Array.make cap 0 in
      Float.Array.blit t.keys 0 keys 0 t.size;
      Array.blit t.payloads 0 payloads 0 t.size;
      t.keys <- keys;
      t.payloads <- payloads
    end;
    Float.Array.set t.keys t.size key;
    t.payloads.(t.size) <- payload;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let min_key t =
    if t.size = 0 then invalid_arg "Heap.Flat.min_key: empty";
    Float.Array.get t.keys 0

  let min_payload t =
    if t.size = 0 then invalid_arg "Heap.Flat.min_payload: empty";
    t.payloads.(0)

  let remove_min t =
    if t.size = 0 then invalid_arg "Heap.Flat.remove_min: empty";
    t.size <- t.size - 1;
    if t.size > 0 then begin
      (* Bottom-up deletion, mirroring [pop] above: pull the smaller
         child into the hole down to the bottom layer, then sift the
         displaced last element up from there. *)
      let key = Float.Array.get t.keys t.size in
      let payload = t.payloads.(t.size) in
      let i = ref 0 in
      let descending = ref true in
      while !descending do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        if l >= t.size then descending := false
        else begin
          let c =
            if r < t.size && lt t.keys t.payloads r l then r else l
          in
          Float.Array.set t.keys !i (Float.Array.get t.keys c);
          t.payloads.(!i) <- t.payloads.(c);
          i := c
        end
      done;
      Float.Array.set t.keys !i key;
      t.payloads.(!i) <- payload;
      sift_up t !i
    end

  let of_raw ~keys ~payloads =
    let size = Float.Array.length keys in
    if size <> Array.length payloads then
      invalid_arg "Heap.Flat.of_raw: length mismatch";
    Float.Array.iter
      (fun k ->
        if not (Float.is_finite k) then
          invalid_arg "Heap.Flat.of_raw: key not finite")
      keys;
    let t = { keys; payloads; size } in
    (* Floyd heapify: O(n). *)
    for i = (size / 2) - 1 downto 0 do
      sift_down t i
    done;
    t
end
