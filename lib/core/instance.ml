module Int_map = Map.Make (Int)

type t = { by_id : Item.t Int_map.t }

let of_items items =
  let by_id =
    List.fold_left
      (fun acc r ->
        let id = Item.id r in
        if Int_map.mem id acc then
          invalid_arg (Printf.sprintf "Instance.of_items: duplicate id %d" id)
        else Int_map.add id r acc)
      Int_map.empty items
  in
  { by_id }

let empty = { by_id = Int_map.empty }

let items t = Int_map.bindings t.by_id |> List.map snd
let length t = Int_map.cardinal t.by_id
let is_empty t = Int_map.is_empty t.by_id
let find t id = Int_map.find id t.by_id

let span_intervals t = items t |> List.map Item.interval |> Interval.union

let span t =
  span_intervals t |> List.fold_left (fun acc i -> acc +. Interval.length i) 0.

let demand t =
  Int_map.fold (fun _ r acc -> acc +. Item.demand r) t.by_id 0.

let fold_durations f init t =
  Int_map.fold (fun _ r acc -> f acc (Item.duration r)) t.by_id init

let min_duration t =
  if is_empty t then invalid_arg "Instance.min_duration: empty instance";
  fold_durations Float.min Float.infinity t

let max_duration t =
  if is_empty t then invalid_arg "Instance.max_duration: empty instance";
  fold_durations Float.max Float.neg_infinity t

let mu t = max_duration t /. min_duration t

let size_profile t =
  items t
  |> List.map (fun r -> Step_function.indicator (Item.interval r) (Item.size r))
  |> List.fold_left Step_function.add Step_function.zero

let active_at t time =
  items t |> List.filter (fun r -> Item.active_at r time)

let arrivals_in_order t = items t |> List.sort Item.compare_arrival

let critical_times t =
  items t
  |> List.concat_map (fun r -> [ Item.arrival r; Item.departure r ])
  |> List.sort_uniq Float.compare

let restrict t pred = { by_id = Int_map.filter (fun _ r -> pred r) t.by_id }

let split_disjoint t =
  span_intervals t
  |> List.map (fun frame ->
         restrict t (fun r -> Interval.contains frame (Item.interval r)))

let shift dt t =
  {
    by_id =
      Int_map.map
        (fun r ->
          Item.make ~id:(Item.id r) ~size:(Item.size r)
            ~arrival:(Item.arrival r +. dt)
            ~departure:(Item.departure r +. dt))
        t.by_id;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>instance (%d items):@," (length t);
  List.iter (fun r -> Format.fprintf ppf "  %a@," Item.pp r) (items t);
  Format.fprintf ppf "@]"
