(* Log-bucketed HDR-style histogram (see the interface).

   Bucketing rides on [Float.frexp]: v = m * 2^e with m in [0.5, 1), so
   the exponent picks the octave and the mantissa picks one of [sub]
   linear sub-buckets inside it.  Everything downstream — merge,
   quantiles, exposition — works on the integer count array alone, which
   is what makes merge exact: adding two count arrays is literally the
   histogram of the concatenated samples. *)

let sub = 16
let min_exp = -30
let octaves = 36
let buckets = octaves * sub

(* Relative half-width of one sub-bucket: a quantile estimate is within
   this factor above the true sample quantile. *)
let precision = 1. +. (1. /. float_of_int sub)

let index_of v =
  if not (Float.is_finite v) || v <= 0. then 0
  else
    let m, e = Float.frexp v in
    if e <= min_exp then 0
    else if e > min_exp + octaves then buckets - 1
    else
      let s = int_of_float ((m -. 0.5) *. float_of_int (2 * sub)) in
      let s = if s >= sub then sub - 1 else if s < 0 then 0 else s in
      ((e - min_exp - 1) * sub) + s

let bucket_upper i =
  let o = i / sub and s = i mod sub in
  Float.ldexp (0.5 +. (float_of_int (s + 1) /. float_of_int (2 * sub)))
    (min_exp + o + 1)

let bucket_lower i =
  let o = i / sub and s = i mod sub in
  Float.ldexp (0.5 +. (float_of_int s /. float_of_int (2 * sub)))
    (min_exp + o + 1)

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable max : float;
  mutable min : float;
}

let create () =
  {
    counts = Array.make buckets 0;
    count = 0;
    sum = 0.;
    max = Float.neg_infinity;
    min = Float.infinity;
  }

let record t v =
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v > t.max then t.max <- v;
  if v < t.min then t.min <- v

let reset t =
  Array.fill t.counts 0 buckets 0;
  t.count <- 0;
  t.sum <- 0.;
  t.max <- Float.neg_infinity;
  t.min <- Float.infinity

type snapshot = {
  s_counts : int array;
  s_count : int;
  s_sum : float;
  s_max : float;
  s_min : float;
}

let snapshot t =
  {
    s_counts = Array.copy t.counts;
    s_count = t.count;
    s_sum = t.sum;
    s_max = t.max;
    s_min = t.min;
  }

let empty_snapshot =
  {
    s_counts = Array.make buckets 0;
    s_count = 0;
    s_sum = 0.;
    s_max = Float.neg_infinity;
    s_min = Float.infinity;
  }

let merge a b =
  {
    s_counts = Array.init buckets (fun i -> a.s_counts.(i) + b.s_counts.(i));
    s_count = a.s_count + b.s_count;
    s_sum = a.s_sum +. b.s_sum;
    s_max = Float.max a.s_max b.s_max;
    s_min = Float.min a.s_min b.s_min;
  }

let count s = s.s_count
let sum s = s.s_sum
let max_value s = if s.s_count = 0 then 0. else s.s_max
let min_value s = if s.s_count = 0 then 0. else s.s_min

(* The estimate for quantile q is the upper bound of the bucket holding
   the sample of rank ceil(q * count) (1-based); the top-most occupied
   bucket instead reports the exact recorded max, so [quantile s 1.]
   never over-reports. *)
let quantile s q =
  if s.s_count = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int s.s_count)) in
      if r < 1 then 1 else if r > s.s_count then s.s_count else r
    in
    let rec go i seen =
      let seen = seen + s.s_counts.(i) in
      if seen >= rank then
        if seen = s.s_count then
          (* Highest occupied bucket: the max lives here. *)
          s.s_max
        else bucket_upper i
      else go (i + 1) seen
    in
    go 0 0
  end

let nonzero s =
  let acc = ref [] in
  for i = buckets - 1 downto 0 do
    if s.s_counts.(i) > 0 then acc := (bucket_upper i, s.s_counts.(i)) :: !acc
  done;
  !acc
