(** Named phase timers (wall clock).

    A profiler accumulates per-phase run counts, total and max
    durations.  Phases time {e wall-clock} work — simulation time never
    enters here (it belongs in decision traces).  The clock is
    injectable so tests drive a [Clock.fake] and assert exact totals. *)

type t

val create : ?clock:Clock.t -> unit -> t
(** Default clock: {!Clock.monotonic}. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t "phase" f] runs [f], charging its duration to ["phase"]. *)

val record : t -> string -> float -> unit
(** Charge an externally-measured duration (seconds) to a phase.
    @raise Invalid_argument on a negative duration. *)

val phases : t -> (string * (int * float * float)) list
(** [(name, (count, total_seconds, max_seconds))], sorted by name. *)

val register : t -> Metrics.t -> unit
(** Export the accumulated phases into a registry as
    [dbp_profile_phase_runs_total], [dbp_profile_phase_seconds_total]
    and [dbp_profile_phase_seconds_max], each labelled
    [{phase="name"}]. *)
