(* An [Observer.t] that feeds a metrics registry: event counters, an
   open-bin gauge with peak, an open-bin-count histogram sampled at each
   decision, and a decision-latency histogram timed on the injected
   clock between this observer's own on_arrival and on_decision
   callbacks (so no clock plumbing enters the engines).  Wall time stays
   in metrics; the engine's decisions and any co-installed trace are
   untouched. *)

let open_bin_buckets = [ 0.; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500. ]

let latency_buckets =
  [ 1e-6; 3e-6; 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 1e-1 ]

let observer ?(clock = Clock.monotonic) ?(labels = []) metrics =
  let counter name help =
    Metrics.counter metrics ~labels ~help name
  in
  let c_arrivals = counter "dbp_engine_arrivals_total" "Arrival events" in
  let c_departures = counter "dbp_engine_departures_total" "Departure events" in
  let c_places = counter "dbp_engine_placements_total" "Validated placements" in
  let c_existing =
    counter "dbp_engine_decisions_existing_total"
      "Decisions that reused an open bin"
  in
  let c_opened =
    counter "dbp_engine_bins_opened_total" "Decisions that opened a new bin"
  in
  let c_closed = counter "dbp_engine_bins_closed_total" "Bins emptied" in
  let g_open =
    Metrics.gauge metrics ~labels ~help:"Currently open bins"
      "dbp_engine_open_bins"
  in
  let g_peak =
    Metrics.gauge metrics ~labels ~help:"Peak concurrently open bins"
      "dbp_engine_open_bins_peak"
  in
  let h_open =
    Metrics.histogram metrics ~labels ~buckets:open_bin_buckets
      ~help:"Open-bin count sampled at each decision"
      "dbp_engine_open_bins_at_decision"
  in
  let h_latency =
    Metrics.histogram metrics ~labels ~buckets:latency_buckets
      ~help:"Wall-clock seconds from arrival callback to decision callback"
      "dbp_engine_decision_seconds"
  in
  let open_bins = ref 0 in
  let arrival_at = ref nan in
  Dbp_core.Observer.v
    ~on_arrival:(fun ~time:_ ~item:_ ->
      Metrics.inc c_arrivals;
      arrival_at := Clock.now clock)
    ~on_decision:(fun ~time:_ ~item:_ ~bin ->
      (match bin with
      | Some _ -> Metrics.inc c_existing
      | None -> ());
      Metrics.observe h_open (float_of_int !open_bins);
      let t0 = !arrival_at in
      if Float.is_finite t0 then begin
        Metrics.observe h_latency (Float.max 0. (Clock.now clock -. t0));
        arrival_at := nan
      end)
    ~on_open_bin:(fun ~time:_ ~bin:_ ->
      Metrics.inc c_opened;
      incr open_bins;
      Metrics.set g_open (float_of_int !open_bins);
      if float_of_int !open_bins > Metrics.gauge_value g_peak then
        Metrics.set g_peak (float_of_int !open_bins))
    ~on_place:(fun ~time:_ ~item:_ ~bin:_ -> Metrics.inc c_places)
    ~on_close_bin:(fun ~time:_ ~bin:_ ->
      Metrics.inc c_closed;
      decr open_bins;
      Metrics.set g_open (float_of_int !open_bins))
    ~on_departure:(fun ~time:_ ~item:_ -> Metrics.inc c_departures)
    ()
