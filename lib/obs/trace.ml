(* Decision-trace recorder: an [Observer.t] that appends sim-timestamped
   events into a ring buffer, plus a JSONL renderer.  Because events
   carry simulation time only, a trace is a pure function of
   (instance, algorithm, seed): two runs — or the reference and indexed
   engines — produce byte-identical files.  check.sh diffs two runs of
   the CLI as a determinism canary. *)

type event =
  | Arrival of { time : float; item : int; size : float }
  | Decision of { time : float; item : int; bin : int option }
  | Open_bin of { time : float; bin : int }
  | Place of { time : float; item : int; bin : int }
  | Close_bin of { time : float; bin : int }
  | Departure of { time : float; item : int }

type t = {
  capacity : int;  (* <= 0: unbounded *)
  mutable buf : event array;
  mutable start : int;  (* index of oldest retained event (bounded mode) *)
  mutable len : int;  (* retained events *)
  mutable emitted : int;  (* total events ever pushed *)
}

let dummy = Open_bin { time = 0.; bin = -1 }

let create ?(capacity = 0) () =
  let buf = Array.make (if capacity > 0 then capacity else 64) dummy in
  { capacity; buf; start = 0; len = 0; emitted = 0 }

let push t ev =
  t.emitted <- t.emitted + 1;
  if t.capacity > 0 then
    if t.len = t.capacity then begin
      (* full ring: the oldest slot becomes the newest *)
      t.buf.(t.start) <- ev;
      t.start <- (t.start + 1) mod t.capacity
    end
    else begin
      t.buf.((t.start + t.len) mod t.capacity) <- ev;
      t.len <- t.len + 1
    end
  else begin
    (* unbounded: plain growable array, [start] stays 0 *)
    if t.len = Array.length t.buf then begin
      let fresh = Array.make (2 * t.len) dummy in
      Array.blit t.buf 0 fresh 0 t.len;
      t.buf <- fresh
    end;
    t.buf.(t.len) <- ev;
    t.len <- t.len + 1
  end

let emitted t = t.emitted
let length t = t.len

let events t =
  List.init t.len (fun i -> t.buf.((t.start + i) mod Array.length t.buf))

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.emitted <- 0

let observer t =
  Dbp_core.Observer.v
    ~on_arrival:(fun ~time ~item ->
      push t
        (Arrival
           { time; item = Dbp_core.Item.id item; size = Dbp_core.Item.size item }))
    ~on_decision:(fun ~time ~item ~bin ->
      push t (Decision { time; item = Dbp_core.Item.id item; bin }))
    ~on_open_bin:(fun ~time ~bin -> push t (Open_bin { time; bin }))
    ~on_place:(fun ~time ~item ~bin ->
      push t (Place { time; item = Dbp_core.Item.id item; bin }))
    ~on_close_bin:(fun ~time ~bin -> push t (Close_bin { time; bin }))
    ~on_departure:(fun ~time ~item ->
      push t (Departure { time; item = Dbp_core.Item.id item }))
    ()

(* ---- JSONL rendering ---------------------------------------------------- *)

(* Same number formatter as Metrics: integral floats render bare so the
   common case ({"t":3,...}) stays compact and byte-stable. *)
let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let jsonl_of_event = function
  | Arrival { time; item; size } ->
      Printf.sprintf "{\"t\":%s,\"ev\":\"arrival\",\"item\":%d,\"size\":%s}"
        (fmt_num time) item (fmt_num size)
  | Decision { time; item; bin } ->
      Printf.sprintf "{\"t\":%s,\"ev\":\"decision\",\"item\":%d,\"bin\":%s}"
        (fmt_num time) item
        (match bin with Some b -> string_of_int b | None -> "null")
  | Open_bin { time; bin } ->
      Printf.sprintf "{\"t\":%s,\"ev\":\"open\",\"bin\":%d}" (fmt_num time) bin
  | Place { time; item; bin } ->
      Printf.sprintf "{\"t\":%s,\"ev\":\"place\",\"item\":%d,\"bin\":%d}"
        (fmt_num time) item bin
  | Close_bin { time; bin } ->
      Printf.sprintf "{\"t\":%s,\"ev\":\"close\",\"bin\":%d}" (fmt_num time) bin
  | Departure { time; item } ->
      Printf.sprintf "{\"t\":%s,\"ev\":\"departure\",\"item\":%d}"
        (fmt_num time) item

(* Unbuffered streaming variant: each event renders straight into the
   sink, nothing is retained.  The serve daemon's trace path — a
   10^6-arrival stream must not accumulate an event list. *)
let streaming_observer ~sink =
  let emit ev = sink (jsonl_of_event ev) in
  Dbp_core.Observer.v
    ~on_arrival:(fun ~time ~item ->
      emit
        (Arrival
           { time; item = Dbp_core.Item.id item; size = Dbp_core.Item.size item }))
    ~on_decision:(fun ~time ~item ~bin ->
      emit (Decision { time; item = Dbp_core.Item.id item; bin }))
    ~on_open_bin:(fun ~time ~bin -> emit (Open_bin { time; bin }))
    ~on_place:(fun ~time ~item ~bin ->
      emit (Place { time; item = Dbp_core.Item.id item; bin }))
    ~on_close_bin:(fun ~time ~bin -> emit (Close_bin { time; bin }))
    ~on_departure:(fun ~time ~item ->
      emit (Departure { time; item = Dbp_core.Item.id item }))
    ()

let to_jsonl ?(header = []) t =
  let buf = Buffer.create (64 * (t.len + 1)) in
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    header;
  List.iter
    (fun ev ->
      Buffer.add_string buf (jsonl_of_event ev);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let save ?header ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl ?header t))

(* Designated console sink (lint rule R4), like [Report.print]. *)
let print t =
  print_string (to_jsonl t) (* dbp-lint: allow R4 designated console sink *)
