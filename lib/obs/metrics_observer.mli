(** Engine metrics as an observer.

    {!observer} builds a [Dbp_core.Observer.t] that accumulates engine
    activity into a {!Metrics.t} registry:

    - counters: [dbp_engine_arrivals_total], [dbp_engine_departures_total],
      [dbp_engine_placements_total], [dbp_engine_decisions_existing_total],
      [dbp_engine_bins_opened_total], [dbp_engine_bins_closed_total];
    - gauges: [dbp_engine_open_bins], [dbp_engine_open_bins_peak];
    - histograms: [dbp_engine_open_bins_at_decision] (open-bin count
      sampled at each decision) and [dbp_engine_decision_seconds]
      (wall-clock latency between the observer's own arrival and
      decision callbacks, measured on the injected clock — the engines
      themselves never read a clock).

    Counts derive from simulation events and are deterministic; only
    the latency histogram carries wall time.  Pair with a trace
    recorder via [Observer.pair] to collect both in one run. *)

val open_bin_buckets : float list
val latency_buckets : float list

val observer :
  ?clock:Clock.t -> ?labels:(string * string) list -> Metrics.t ->
  Dbp_core.Observer.t
(** [labels] (e.g. [["algo", "first-fit"]]) are attached to every
    metric this observer registers. *)
