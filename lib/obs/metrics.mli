(** Metrics registry with deterministic Prometheus/JSON exposition.

    Counters, gauges and fixed-bucket histograms, identified by
    (family name, label set).  Registration is idempotent: asking for an
    already-registered (name, labels) pair returns the existing handle;
    re-registering a name under a different kind (or a histogram with
    different buckets) raises [Invalid_argument].

    Exposition is deterministic: metrics sort by family name then by the
    rendered label set, [# HELP]/[# TYPE] headers appear once per
    family, histogram buckets render cumulatively with a trailing
    [+Inf], and every number goes through a single formatter (integers
    bare, otherwise [%.12g]).  Two registries built by the same program
    path produce byte-identical text, which the golden-fixture test
    pins.

    Values carry {e wall-clock} or count data only; simulation time
    belongs in decision traces (see [Dbp_core.Observer]). *)

type t
(** A registry. *)

val create : unit -> t

(** {2 Instruments} *)

type counter
type gauge
type histogram

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Register (or find) a monotonically-increasing counter.
    @raise Invalid_argument on an invalid metric/label name, or if the
    name is already registered as a different kind. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
(** Register (or find) a settable gauge (initially [0.]). *)

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  buckets:float list ->
  string ->
  histogram
(** Register (or find) a histogram with the given strictly-increasing
    finite upper bounds; an implicit [+Inf] bucket is appended.
    @raise Invalid_argument on empty/non-increasing/non-finite buckets,
    or re-registration with different buckets. *)

val inc : ?by:float -> counter -> unit
(** Add [by] (default [1.]) to a counter.
    @raise Invalid_argument if [by < 0.]. *)

val counter_value : counter -> float

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record a sample: increments the first bucket whose upper bound is
    [>= v] (or the [+Inf] bucket) and accumulates sum/count. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val bucket_counts : histogram -> (float option * int) list
(** Per-bucket (non-cumulative) counts in bound order; [None] is the
    trailing [+Inf] bucket.  For tests. *)

(** {2 Exposition} *)

val to_prometheus : t -> string
(** Prometheus text exposition format, deterministically ordered. *)

val to_json : t -> string
(** The same data as a single-line JSON document (trailing newline). *)

val print : t -> unit
(** Write {!to_prometheus} to stdout.  A designated console sink in the
    sense of lint rule R4, like [Report.print]. *)
