(* Per-arrival latency spans (see the interface).

   A ticket is a bare floatarray so the disabled/unsampled path costs
   one length test and allocates nothing: [null] is a shared length-0
   array, every stamping helper guards on [active], and [issue] hands
   out [null] for every arrival the deterministic every-Nth sampler
   skips.  All mutable recorder state (ring, histograms, sink buffer)
   is owned by the thread that calls [issue]/[commit]; tickets cross
   domains by strict hand-off (mailbox in, collector out), never
   shared. *)

type phase = Parse | Route | Mailbox | Admission | Engine | Journal | Merge

let phase_index = function
  | Parse -> 0
  | Route -> 1
  | Mailbox -> 2
  | Admission -> 3
  | Engine -> 4
  | Journal -> 5
  | Merge -> 6

let phase_name = function
  | Parse -> "parse"
  | Route -> "route"
  | Mailbox -> "mailbox"
  | Admission -> "admission"
  | Engine -> "engine"
  | Journal -> "journal"
  | Merge -> "merge"

let phases = [| Parse; Route; Mailbox; Admission; Engine; Journal; Merge |]
let n_phases = Array.length phases

(* Ticket layout: one row of the ring. *)
let idx_seq = 0
let idx_depth = 1
let idx_shard = 2
let idx_t0 = 3
let stamps_off = 4
let width = stamps_off + n_phases

type ticket = floatarray

let null : ticket = Float.Array.create 0
let active tk = Float.Array.length tk > 0

let mark clock tk phase =
  if active tk then
    Float.Array.set tk (stamps_off + phase_index phase) (Clock.now clock)

let set_depth tk depth =
  if active tk then Float.Array.set tk idx_depth (float_of_int depth)

let set_shard tk shard =
  if active tk then Float.Array.set tk idx_shard (float_of_int shard)

let ticket_seq tk = int_of_float (Float.Array.get tk idx_seq)

(* ---- the recorder ----------------------------------------------------- *)

type t = {
  clock : Clock.t;
  sample : int;
  shards : int;
  ring_cap : int;
  ring : floatarray;  (* ring_cap rows x width, preallocated *)
  durs : floatarray;  (* per-commit scratch: one duration per phase *)
  mutable seq : int;
  mutable committed : int;
  started : float;  (* sink lines carry t relative to this *)
  hdr : Hdr.t array array;  (* shards x phases *)
  reg : Metrics.histogram array array option;  (* shards x phases *)
  quant : (Metrics.gauge * Metrics.gauge * Metrics.gauge * Metrics.gauge) array option;
      (* per phase: p50, p95, p99, max *)
  sink : (string -> unit) option;
  buf : Buffer.t;
}

(* Coarse fixed ladder for the Prometheus series; the fine-grained
   quantiles come from the Hdr matrix via the quantile gauges. *)
let phase_buckets =
  [ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. ]

let create ?(clock = Clock.monotonic) ?metrics ?sink ?(ring = 1024) ~sample
    ~shards () =
  if sample < 0 then invalid_arg "Span.create: sample must be >= 0";
  if shards < 1 then invalid_arg "Span.create: shards must be >= 1";
  if ring < 1 then invalid_arg "Span.create: ring must be >= 1";
  let reg =
    Option.map
      (fun m ->
        Array.init shards (fun k ->
            Array.map
              (fun p ->
                Metrics.histogram m
                  ~help:"Per-arrival phase latency (sampled spans)."
                  ~labels:
                    [ ("phase", phase_name p); ("shard", string_of_int k) ]
                  ~buckets:phase_buckets "dbp_serve_phase_seconds")
              phases))
      metrics
  in
  let quant =
    Option.map
      (fun m ->
        Array.map
          (fun p ->
            let g q =
              Metrics.gauge m
                ~help:
                  "Phase latency quantile estimate, merged across shards."
                ~labels:[ ("phase", phase_name p); ("quantile", q) ]
                "dbp_serve_phase_quantile_seconds"
            in
            (g "p50", g "p95", g "p99", g "max"))
          phases)
      metrics
  in
  {
    clock;
    sample;
    shards;
    ring_cap = ring;
    ring = Float.Array.make (ring * width) Float.nan;
    durs = Float.Array.make n_phases Float.nan;
    seq = 0;
    committed = 0;
    started = Clock.now clock;
    hdr = Array.init shards (fun _ -> Array.init n_phases (fun _ -> Hdr.create ()));
    reg;
    quant;
    sink;
    buf = Buffer.create 160;
  }

let disabled =
  create ~clock:(Clock.of_fake (Clock.fake ())) ~ring:1 ~sample:0 ~shards:1 ()

let issue t =
  if t.sample <= 0 then null
  else begin
    let s = t.seq in
    t.seq <- s + 1;
    if s mod t.sample <> 0 then null
    else begin
      let tk = Float.Array.make width Float.nan in
      Float.Array.set tk idx_seq (float_of_int s);
      Float.Array.set tk idx_depth 0.;
      Float.Array.set tk idx_shard 0.;
      Float.Array.set tk idx_t0 (Clock.now t.clock);
      tk
    end
  end

let stamp t tk phase = mark t.clock tk phase

let add_num buf v =
  Buffer.add_string buf (Printf.sprintf "%.9g" v)

let render_line t tk =
  Buffer.clear t.buf;
  Buffer.add_string t.buf "{\"seq\":";
  Buffer.add_string t.buf (string_of_int (ticket_seq tk));
  Buffer.add_string t.buf ",\"shard\":";
  Buffer.add_string t.buf
    (string_of_int (int_of_float (Float.Array.get tk idx_shard)));
  Buffer.add_string t.buf ",\"depth\":";
  Buffer.add_string t.buf
    (string_of_int (int_of_float (Float.Array.get tk idx_depth)));
  Buffer.add_string t.buf ",\"t\":";
  add_num t.buf (Float.Array.get tk idx_t0 -. t.started);
  Array.iteri
    (fun i p ->
      let d = Float.Array.get t.durs i in
      if not (Float.is_nan d) then begin
        Buffer.add_string t.buf ",\"";
        Buffer.add_string t.buf (phase_name p);
        Buffer.add_string t.buf "\":";
        add_num t.buf d
      end)
    phases;
  Buffer.add_char t.buf '}';
  Buffer.contents t.buf

let commit t tk =
  if active tk then begin
    let shard =
      let k = int_of_float (Float.Array.get tk idx_shard) in
      if k < 0 || k >= t.shards then 0 else k
    in
    let slot = t.committed mod t.ring_cap in
    Float.Array.blit tk 0 t.ring (slot * width) width;
    t.committed <- t.committed + 1;
    (* Durations: each stamp minus the previous present stamp (base t0),
       clamped at 0 so a non-monotonic wall clock cannot produce
       negative latencies. *)
    let base = ref (Float.Array.get tk idx_t0) in
    for i = 0 to n_phases - 1 do
      let v = Float.Array.get tk (stamps_off + i) in
      if Float.is_nan v then Float.Array.set t.durs i Float.nan
      else begin
        let d = v -. !base in
        let d = if d > 0. then d else 0. in
        base := v;
        Float.Array.set t.durs i d;
        Hdr.record t.hdr.(shard).(i) d;
        match t.reg with
        | Some m -> Metrics.observe m.(shard).(i) d
        | None -> ()
      end
    done;
    match t.sink with
    | Some sink -> sink (render_line t tk)
    | None -> ()
  end

let merged t phase =
  let i = phase_index phase in
  let acc = ref Hdr.empty_snapshot in
  for k = 0 to t.shards - 1 do
    acc := Hdr.merge !acc (Hdr.snapshot t.hdr.(k).(i))
  done;
  !acc

let export t =
  match t.quant with
  | None -> ()
  | Some gs ->
      Array.iteri
        (fun i p ->
          let s = merged t p in
          let g50, g95, g99, gmax = gs.(i) in
          Metrics.set g50 (Hdr.quantile s 0.50);
          Metrics.set g95 (Hdr.quantile s 0.95);
          Metrics.set g99 (Hdr.quantile s 0.99);
          Metrics.set gmax (Hdr.max_value s))
        phases

let enabled t = t.sample > 0
let seen t = t.seq
let committed t = t.committed
let clock t = t.clock

let snapshot t ~shard phase =
  if shard < 0 || shard >= t.shards then
    invalid_arg "Span.snapshot: shard out of range";
  Hdr.snapshot t.hdr.(shard).(phase_index phase)

let rows t =
  let n = if t.committed < t.ring_cap then t.committed else t.ring_cap in
  let start = if t.committed <= t.ring_cap then 0 else t.committed mod t.ring_cap in
  List.init n (fun j ->
      let slot = (start + j) mod t.ring_cap in
      let row = Float.Array.create width in
      Float.Array.blit t.ring (slot * width) row 0 width;
      row)
