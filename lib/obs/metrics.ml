(* A small in-process metrics registry with Prometheus-compatible
   semantics: counters, gauges and fixed-bucket histograms, identified
   by (family name, label set).  Exposition is deterministic — metrics
   sort by name then rendered labels, numbers render through one
   formatter — so the golden-fixture test can assert exact text. *)

type counter = { mutable c_total : float }
type gauge = { mutable g_value : float }

type histogram = {
  h_upper : float array;  (* strictly increasing finite bucket bounds *)
  h_counts : int array;  (* per-bucket (non-cumulative), last = +Inf *)
  mutable h_sum : float;
  mutable h_count : int;
}

type cell = Counter of counter | Gauge of gauge | Histogram of histogram

type metric = {
  family : string;
  labels : (string * string) list;  (* sorted by label name *)
  cell : cell;
}

type t = {
  metrics : (string * (string * string) list, metric) Hashtbl.t;
  helps : (string, string) Hashtbl.t;  (* family -> help, first wins *)
  kinds : (string, string) Hashtbl.t;  (* family -> "counter" | ... *)
}

let create () =
  { metrics = Hashtbl.create 32; helps = Hashtbl.create 32;
    kinds = Hashtbl.create 32 }

(* ---- validation -------------------------------------------------------- *)

let name_ok s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let label_key_ok s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let normalise_labels family labels =
  List.iter
    (fun (k, _) ->
      if not (label_key_ok k) then
        invalid_arg
          (Printf.sprintf "Metrics: invalid label name %S on %s" k family))
    labels;
  let sorted =
    List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels
  in
  if List.length sorted <> List.length labels then
    invalid_arg (Printf.sprintf "Metrics: duplicate label name on %s" family);
  sorted

(* Register-or-find: a second registration of the same (family, labels)
   returns the existing cell; the same family under a different kind is
   a programming error. *)
let register t family labels ~help make same =
  if not (name_ok family) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" family);
  let labels = normalise_labels family labels in
  let key = (family, labels) in
  match Hashtbl.find_opt t.metrics key with
  | Some m -> (
      match same m.cell with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s re-registered as a %s (was %s)"
               family
               (kind_name (make ()).cell)
               (kind_name m.cell)))
  | None ->
      let m = make () in
      (match Hashtbl.find_opt t.kinds family with
      | Some k when k <> kind_name m.cell ->
          invalid_arg
            (Printf.sprintf "Metrics: family %s is a %s, not a %s" family k
               (kind_name m.cell))
      | Some _ -> ()
      | None ->
          Hashtbl.replace t.kinds family (kind_name m.cell);
          Hashtbl.replace t.helps family help);
      Hashtbl.replace t.metrics key m;
      (match same m.cell with
      | Some v -> v
      | None -> invalid_arg "Metrics.register: constructor/selector mismatch")

let counter t ?(help = "") ?(labels = []) family =
  register t family labels ~help
    (fun () -> { family; labels; cell = Counter { c_total = 0. } })
    (function Counter c -> Some c | Gauge _ | Histogram _ -> None)

let gauge t ?(help = "") ?(labels = []) family =
  register t family labels ~help
    (fun () -> { family; labels; cell = Gauge { g_value = 0. } })
    (function Gauge g -> Some g | Counter _ | Histogram _ -> None)

let histogram t ?(help = "") ?(labels = []) ~buckets family =
  let upper = Array.of_list buckets in
  if Array.length upper = 0 then
    invalid_arg (Printf.sprintf "Metrics.histogram %s: no buckets" family);
  Array.iter
    (fun b ->
      if not (Float.is_finite b) then
        invalid_arg
          (Printf.sprintf "Metrics.histogram %s: non-finite bucket" family))
    upper;
  for i = 1 to Array.length upper - 1 do
    if upper.(i) <= upper.(i - 1) then
      invalid_arg
        (Printf.sprintf "Metrics.histogram %s: buckets not increasing" family)
  done;
  register t family labels ~help
    (fun () ->
      {
        family;
        labels;
        cell =
          Histogram
            {
              h_upper = upper;
              h_counts = Array.make (Array.length upper + 1) 0;
              h_sum = 0.;
              h_count = 0;
            };
      })
    (function
      | Histogram h ->
          if
            Array.length h.h_upper = Array.length upper
            && Array.for_all2 Float.equal h.h_upper upper
          then Some h
          else
            invalid_arg
              (Printf.sprintf
                 "Metrics.histogram %s: re-registered with different buckets"
                 family)
      | Counter _ | Gauge _ -> None)

let inc ?(by = 1.) c =
  if by < 0. then invalid_arg "Metrics.inc: counters only go up";
  c.c_total <- c.c_total +. by

let counter_value c = c.c_total
let set g v = g.g_value <- v
let gauge_value g = g.g_value

let observe h v =
  (* First bucket whose upper bound admits v; the trailing slot is +Inf. *)
  let n = Array.length h.h_upper in
  let rec slot i = if i >= n || v <= h.h_upper.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let bucket_counts h =
  Array.to_list (Array.mapi (fun i c -> (
    (if i < Array.length h.h_upper then Some h.h_upper.(i) else None), c))
    h.h_counts)

(* ---- deterministic exposition ------------------------------------------ *)

(* One number formatter for every exposition: integers bare, everything
   else shortest-round-trip-ish %.12g (all in-tree sources are exact at
   that precision, and the goldens pin the rendering). *)
let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

(* Extra labels merged into an existing set, keeping the sort order. *)
let with_label labels k v =
  List.sort (fun (a, _) (b, _) -> String.compare a b) ((k, v) :: labels)

let sorted_metrics t =
  Hashtbl.fold (fun _ m acc -> m :: acc) t.metrics []
  |> List.sort (fun a b ->
         match String.compare a.family b.family with
         | 0 ->
             String.compare (render_labels a.labels) (render_labels b.labels)
         | c -> c)

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let last_family = ref "" in
  List.iter
    (fun m ->
      if m.family <> !last_family then begin
        last_family := m.family;
        let help =
          Option.value ~default:"" (Hashtbl.find_opt t.helps m.family)
        in
        if help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" m.family (escape_help help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" m.family (kind_name m.cell))
      end;
      match m.cell with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.family (render_labels m.labels)
               (fmt_num c.c_total))
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.family (render_labels m.labels)
               (fmt_num g.g_value))
      | Histogram h ->
          let cum = ref 0 in
          Array.iteri
            (fun i n ->
              cum := !cum + n;
              let le =
                if i < Array.length h.h_upper then fmt_num h.h_upper.(i)
                else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.family
                   (render_labels (with_label m.labels "le" le))
                   !cum))
            h.h_counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" m.family (render_labels m.labels)
               (fmt_num h.h_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.family
               (render_labels m.labels) h.h_count))
    (sorted_metrics t);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let labels_json labels =
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           labels)
    ^ "}"
  in
  let metric_json m =
    let help =
      Option.value ~default:"" (Hashtbl.find_opt t.helps m.family)
    in
    let common =
      Printf.sprintf "\"name\":\"%s\",\"type\":\"%s\",\"help\":\"%s\",\"labels\":%s"
        (json_escape m.family) (kind_name m.cell) (json_escape help)
        (labels_json m.labels)
    in
    match m.cell with
    | Counter c -> Printf.sprintf "{%s,\"value\":%s}" common (fmt_num c.c_total)
    | Gauge g -> Printf.sprintf "{%s,\"value\":%s}" common (fmt_num g.g_value)
    | Histogram h ->
        let cum = ref 0 in
        let buckets =
          Array.mapi
            (fun i n ->
              cum := !cum + n;
              let le =
                if i < Array.length h.h_upper then fmt_num h.h_upper.(i)
                else "\"+Inf\""
              in
              Printf.sprintf "{\"le\":%s,\"count\":%d}" le !cum)
            h.h_counts
          |> Array.to_list
        in
        Printf.sprintf "{%s,\"buckets\":[%s],\"sum\":%s,\"count\":%d}" common
          (String.concat "," buckets)
          (fmt_num h.h_sum) h.h_count
  in
  "{\"metrics\":["
  ^ String.concat "," (List.map metric_json (sorted_metrics t))
  ^ "]}\n"

(* [print] is a designated console sink like [Report.print]: the CLI and
   bench funnel Prometheus exposition through it, hence the R4 allow. *)
let print t =
  print_string (to_prometheus t) (* dbp-lint: allow R4 designated console sink *)
