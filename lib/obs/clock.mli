(** Injectable wall-clock abstraction.

    This module is the {e only} place in [lib/] that reads the system
    clock (lint rule R8); everything that needs wall time — metric
    timing, phase profiling, the bench harness — takes a [t] and
    defaults to {!monotonic}.  Tests inject a {!fake} clock they advance
    by hand, so timing-dependent logic (histogram bucketing, phase
    totals) is testable deterministically.

    Wall time never enters decision traces: those carry simulation time
    only (see [Dbp_core.Observer]). *)

type t

val make : label:string -> (unit -> float) -> t
(** A clock from any seconds-valued reader. *)

val monotonic : t
(** The process wall clock ([Unix.gettimeofday]), read fresh on every
    {!now}.  Used as a monotonic-enough source for coarse interval
    timing. *)

val now : t -> float
(** Current reading, in seconds. *)

val label : t -> string

(** {2 Fake clocks for tests} *)

type fake

val fake : ?start:float -> unit -> fake
(** A manually-driven time source (default start [0.]). *)

val advance : fake -> float -> unit
(** Move the fake clock forward.
    @raise Invalid_argument on a negative step. *)

val of_fake : fake -> t

(** {2 Timing helpers} *)

val elapsed : ?clock:t -> (unit -> 'a) -> float * 'a
(** [(seconds, result)] of one call. *)

val time_best : ?clock:t -> reps:int -> (unit -> 'a) -> float * 'a
(** Run [f] [reps] times; the best (minimum) wall time paired with the
    last result.  The bench harness's standard reducer.
    @raise Invalid_argument if [reps < 1]. *)
