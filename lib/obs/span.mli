(** Per-arrival latency spans for the serve pipeline.

    One arrival's journey through the daemon is a fixed sequence of
    {!phase}s: parse, route, mailbox wait, admission, engine decision,
    journal append, merge release.  A sampled arrival carries a
    {!ticket} — a bare [floatarray] of timestamp stamps — through the
    pipeline; stages stamp the phases they own, and the ingest thread
    {!commit}s the finished ticket into the recorder: a preallocated
    floatarray ring (last N sampled spans), a per-(shard, phase)
    {!Hdr} histogram matrix, optional [dbp_serve_phase_seconds]
    {!Metrics} series, and an optional JSONL sink ([--span-out]).

    {2 Cost model}

    Disabled ([sample = 0]): {!issue} is one integer test returning
    {!null}, and every stamping helper is one length test — no clock
    read, no allocation.  Enabled: {!issue} arms every [N]-th ticket
    ({b seq-keyed}, so the choice is deterministic for a given ingest
    order — no [Random], which keeps the R12 decision-path rule clean)
    and only armed tickets pay the clock reads and the one
    [floatarray] allocation.

    {2 Ownership}

    The recorder is single-owner: only the thread that called
    {!create} may call {!issue}/{!commit}/{!export}.  Tickets may
    cross domains by strict hand-off (a shard mailbox in, a result
    collector out); the stamping helpers {!mark}/{!set_depth}/
    {!set_shard} write only into the ticket itself, so a worker domain
    stamps with its own {!Clock.t} and never touches recorder state.
    Sessions stay clock-free (R12): they stamp through an {e injected}
    clock, never [Clock.monotonic] themselves. *)

type phase = Parse | Route | Mailbox | Admission | Engine | Journal | Merge

val phases : phase array
(** All phases in pipeline (= stamping) order. *)

val phase_name : phase -> string
(** Lowercase label used in metrics, span lines and reports. *)

val phase_index : phase -> int

(** {2 Tickets} *)

type ticket = floatarray

val null : ticket
(** The shared inactive ticket: every helper is a no-op on it. *)

val active : ticket -> bool

val mark : Clock.t -> ticket -> phase -> unit
(** Stamp [phase] with the given clock's now (no-op on {!null}). *)

val set_depth : ticket -> int -> unit
val set_shard : ticket -> int -> unit

val ticket_seq : ticket -> int
(** The ingest sequence number {!issue} armed this ticket with. *)

(** {2 The recorder} *)

type t

val create :
  ?clock:Clock.t ->
  ?metrics:Metrics.t ->
  ?sink:(string -> unit) ->
  ?ring:int ->
  sample:int ->
  shards:int ->
  unit ->
  t
(** [sample = 0] disables; [sample = N] arms every N-th arrival.
    [metrics] registers [dbp_serve_phase_seconds{phase,shard}]
    histograms (observed at commit) and
    [dbp_serve_phase_quantile_seconds{phase,quantile}] gauges
    (refreshed by {!export}).  [sink] receives one compact JSONL line
    per committed span.  [ring] is the span capacity of the in-memory
    ring (default 1024).
    @raise Invalid_argument on [sample < 0], [shards < 1] or
    [ring < 1]. *)

val disabled : t
(** A recorder with [sample = 0]: {!issue} always returns {!null}.
    Lets drive loops hold a [t] unconditionally. *)

val issue : t -> ticket
(** Count one arrival; return an armed ticket (ingest time stamped)
    iff this is a sampled one, else {!null}. *)

val stamp : t -> ticket -> phase -> unit
(** {!mark} with the recorder's own clock — for pipeline stages running
    on the recorder's thread. *)

val commit : t -> ticket -> unit
(** Finish a span: append the ticket to the ring, turn stamps into
    per-phase durations (each stamp minus the previous present one,
    from ingest time; clamped at 0), record them into the Hdr matrix
    and the metrics series, and emit the JSONL line.  No-op on
    {!null}. *)

val export : t -> unit
(** Refresh the quantile gauges (p50/p95/p99/max per phase) from the
    Hdr matrix, merged across shards.  Call at scrape/dump time. *)

(** {2 Introspection} (tests, bench, reports) *)

val enabled : t -> bool
val seen : t -> int
(** Arrivals counted by {!issue}. *)

val committed : t -> int
(** Spans committed (sampled arrivals that completed the pipeline). *)

val clock : t -> Clock.t

val snapshot : t -> shard:int -> phase -> Hdr.snapshot
(** One cell of the histogram matrix.
    @raise Invalid_argument on an out-of-range shard. *)

val merged : t -> phase -> Hdr.snapshot
(** All shards' histograms for [phase], merged. *)

val rows : t -> floatarray list
(** The ring contents, oldest first: up to [ring] committed tickets
    (copies). *)
