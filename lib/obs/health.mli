(** Process-health gauges for long-lived runs ([dbp serve]).

    A [t] bundles a handful of pre-registered gauges — uptime, GC heap
    footprint, collection counts — and a {!tick} that refreshes them
    from [Gc.quick_stat] and the injected {!Clock.t}.  The daemon calls
    {!tick} once per input line; because [quick_stat] reads cached
    counters (no heap walk), the cost is a few loads per call.

    The heap gauge is what the bounded-memory soak watches: a streaming
    process whose resident state is O(open jobs) shows a flat
    [dbp_process_heap_words] over millions of arrivals.  Wall time is
    read through {!Clock}, so tests drive a fake clock and assert exact
    uptimes. *)

type t

val create : ?clock:Clock.t -> Metrics.t -> t
(** Register the health gauges on the registry (idempotent, like all
    registration) and record the start instant.  Default clock:
    {!Clock.monotonic}. *)

val tick : t -> unit
(** Refresh every gauge: [dbp_process_uptime_seconds],
    [dbp_process_heap_words] (major heap words from [Gc.quick_stat]),
    [dbp_process_live_words], [dbp_process_major_collections],
    [dbp_process_minor_collections]. *)

val uptime : t -> float
(** Seconds since {!create}, per the injected clock. *)

val set_build_info : ?family:string -> version:string -> Metrics.t -> unit
(** Register (idempotently) a build-info gauge in the Prometheus idiom:
    constant [1] with the version as a label, e.g.
    [dbp_serve_build_info{version="1.0.0"} 1].  Default family:
    [dbp_build_info]. *)
