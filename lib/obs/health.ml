type t = {
  clock : Clock.t;
  started : float;
  g_uptime : Metrics.gauge;
  g_heap : Metrics.gauge;
  g_live : Metrics.gauge;
  g_major : Metrics.gauge;
  g_minor : Metrics.gauge;
}

let create ?(clock = Clock.monotonic) registry =
  let g name help = Metrics.gauge registry ~help name in
  {
    clock;
    started = Clock.now clock;
    g_uptime = g "dbp_process_uptime_seconds" "Seconds since the daemon started.";
    g_heap = g "dbp_process_heap_words" "Major heap size in words.";
    g_live = g "dbp_process_live_words" "Live words at the last heartbeat.";
    g_major = g "dbp_process_major_collections" "Major GC cycles completed.";
    g_minor = g "dbp_process_minor_collections" "Minor GC cycles completed.";
  }

let set_build_info ?(family = "dbp_build_info") ~version registry =
  let g =
    Metrics.gauge registry
      ~help:"Constant 1, labelled with the build version."
      ~labels:[ ("version", version) ]
      family
  in
  Metrics.set g 1.

let uptime t = Clock.now t.clock -. t.started

let tick t =
  Metrics.set t.g_uptime (uptime t);
  let st = Gc.quick_stat () in
  Metrics.set t.g_heap (float_of_int st.Gc.heap_words);
  Metrics.set t.g_live (float_of_int st.Gc.live_words);
  Metrics.set t.g_major (float_of_int st.Gc.major_collections);
  Metrics.set t.g_minor (float_of_int st.Gc.minor_collections)
