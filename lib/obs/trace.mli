(** Decision-trace recorder and JSONL sink.

    {!observer} adapts a recorder into a [Dbp_core.Observer.t]; plugged
    into [Engine.run ~observer] (or [Resilient.run ~observer]) it
    collects the engine's event stream.  Events carry {e simulation}
    time only, so a trace is a pure function of (instance, algorithm,
    seed): two runs, or the reference and indexed engines, produce
    byte-identical JSONL — asserted by the qcheck identity property and
    by the [scripts/check.sh] determinism canary.

    Line shapes (one JSON object per line, no spaces; integral times
    render bare):
    {v
    {"t":3,"ev":"arrival","item":5,"size":0.25}
    {"t":3,"ev":"decision","item":5,"bin":2}      bin:null = opened new
    {"t":3,"ev":"open","bin":4}
    {"t":3,"ev":"place","item":5,"bin":4}
    {"t":7,"ev":"departure","item":5}
    {"t":7,"ev":"close","bin":4}
    v} *)

type event =
  | Arrival of { time : float; item : int; size : float }
  | Decision of { time : float; item : int; bin : int option }
  | Open_bin of { time : float; bin : int }
  | Place of { time : float; item : int; bin : int }
  | Close_bin of { time : float; bin : int }
  | Departure of { time : float; item : int }

type t
(** A recorder: unbounded by default, or a fixed-size ring that keeps
    the most recent events. *)

val create : ?capacity:int -> unit -> t
(** [capacity <= 0] (the default) grows without bound; a positive
    capacity keeps only the last [capacity] events. *)

val observer : t -> Dbp_core.Observer.t
(** The recording observer; pass to [Engine.run ~observer]. *)

val push : t -> event -> unit
(** Append an event directly (the observer path uses this too). *)

val events : t -> event list
(** Retained events, oldest first. *)

val length : t -> int
(** Retained event count ([<= capacity] when bounded). *)

val emitted : t -> int
(** Total events ever pushed, including any the ring dropped. *)

val clear : t -> unit

(** {2 Rendering} *)

val jsonl_of_event : event -> string
(** One line, without the trailing newline. *)

val streaming_observer : sink:(string -> unit) -> Dbp_core.Observer.t
(** An observer that renders each event with {!jsonl_of_event} and hands
    the line (no trailing newline) straight to [sink], retaining
    nothing.  The [dbp serve] trace path: bounded memory over unbounded
    streams, at the cost of no in-process querying. *)

val to_jsonl : ?header:string list -> t -> string
(** All retained events as newline-terminated JSONL; [header] lines
    (already-rendered JSON) are emitted first. *)

val save : ?header:string list -> path:string -> t -> unit
(** Write {!to_jsonl} to [path], truncating. *)

val print : t -> unit
(** Write {!to_jsonl} to stdout.  A designated console sink in the
    sense of lint rule R4, like [Report.print]. *)
