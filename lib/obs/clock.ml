(* The repo's one wall-clock source.  Everything else in lib/ injects a
   [t] (lint rule R8 forbids Unix.gettimeofday / Unix.time / Sys.time
   outside this file and bench/), so tests swap in a fake and metric
   timing stays deterministic where it must be. *)

type t = { label : string; read : unit -> float }

let make ~label read = { label; read }

(* Wall clock via gettimeofday: the only portable sub-second source in
   the stdlib.  Treated as monotonic for the coarse interval timing the
   metrics need; a platform vendoring a true monotonic source would
   swap it in here and nowhere else. *)
let monotonic =
  { label = "monotonic"; read = (fun () -> Unix.gettimeofday ()) }

let now t = t.read ()
let label t = t.label

type fake = { mutable f_now : float }

let fake ?(start = 0.) () = { f_now = start }

let advance fk dt =
  if dt < 0. then invalid_arg "Clock.advance: negative step";
  fk.f_now <- fk.f_now +. dt

let of_fake fk = { label = "fake"; read = (fun () -> fk.f_now) }

let elapsed ?(clock = monotonic) f =
  let t0 = now clock in
  let v = f () in
  (now clock -. t0, v)

let time_best ?(clock = monotonic) ~reps f =
  if reps < 1 then invalid_arg "Clock.time_best: reps < 1";
  let best = ref infinity in
  let value = ref None in
  for _ = 1 to reps do
    let dt, v = elapsed ~clock f in
    if dt < !best then best := dt;
    value := Some v
  done;
  match !value with
  | Some v -> (!best, v)
  | None -> invalid_arg "Clock.time_best: reps < 1"
