(** Log-bucketed HDR-style latency histogram with exact merge.

    A fixed ladder of [octaves * sub] buckets covers roughly [1ns, 64s]
    at a constant relative precision: each power-of-two octave splits
    into [sub] linear sub-buckets, so a quantile estimate is at most
    {!precision} (= 1 + 1/sub) times the true sample quantile.  Values
    below the ladder (or non-positive / non-finite) land in bucket 0;
    values above clamp into the top bucket.

    The core contract is the {b merge law}: a {!snapshot} is just an
    integer count array (plus count/sum/max/min), and
    [merge (snapshot a) (snapshot b)] has {e exactly} the counts of a
    histogram fed the concatenated samples — so {!quantile}, {!count},
    {!max_value} and {!min_value} agree exactly between "merge of shard
    snapshots" and "one histogram over everything".  ([sum] agrees only
    up to float associativity.)  This is what lets the sharded daemon
    keep one histogram per (shard, phase) with no cross-domain sharing
    and still expose fleet-wide quantiles.

    Recording is allocation-free (array stores into a preallocated
    [t]); snapshots copy the count array and are immutable. *)

type t
(** A mutable recording histogram. *)

val create : unit -> t
val record : t -> float -> unit
val reset : t -> unit

val buckets : int
(** Number of buckets in the ladder. *)

val precision : float
(** Worst-case ratio estimate/true for any quantile of in-range
    samples: [1 + 1/sub]. *)

val index_of : float -> int
(** Bucket index a value records into (exposed for tests). *)

val bucket_upper : int -> float
(** Upper value bound of bucket [i] — what quantiles report. *)

val bucket_lower : int -> float
(** Lower value bound of bucket [i]. *)

(** {2 Snapshots} *)

type snapshot

val snapshot : t -> snapshot
(** Immutable copy of the current state. *)

val empty_snapshot : snapshot
(** The identity of {!merge}. *)

val merge : snapshot -> snapshot -> snapshot
(** Exact: counts add elementwise, so quantiles of the merge equal
    quantiles of the concatenated sample streams. *)

val count : snapshot -> int
val sum : snapshot -> float

val max_value : snapshot -> float
(** Exact recorded maximum ([0.] when empty). *)

val min_value : snapshot -> float
(** Exact recorded minimum ([0.] when empty). *)

val quantile : snapshot -> float -> float
(** [quantile s q] estimates the [q]-quantile (rank
    [ceil (q * count)], 1-based): the upper bound of that rank's
    bucket, except the highest occupied bucket reports the exact max.
    Clamps [q] to [0, 1]; [0.] when empty.  Deterministic: a pure
    function of the snapshot. *)

val nonzero : snapshot -> (float * int) list
(** [(bucket_upper, count)] for each occupied bucket, ascending — the
    exposition/report walk. *)
