(* Phase profiler: named wall-clock timers around coarse pipeline
   phases (sweep cells, portfolio evaluation, whole experiment runs).
   Clock injection keeps the arithmetic testable with a fake clock;
   [register] exports the accumulated phases into a Metrics registry so
   one --metrics-out flag carries both. *)

type phase = { mutable count : int; mutable total_s : float; mutable max_s : float }

type t = { clock : Clock.t; phases : (string, phase) Hashtbl.t }

let create ?(clock = Clock.monotonic) () =
  { clock; phases = Hashtbl.create 8 }

let find t name =
  match Hashtbl.find_opt t.phases name with
  | Some p -> p
  | None ->
      let p = { count = 0; total_s = 0.; max_s = 0. } in
      Hashtbl.replace t.phases name p;
      p

let record t name dt =
  if dt < 0. then invalid_arg "Profile.record: negative duration";
  let p = find t name in
  p.count <- p.count + 1;
  p.total_s <- p.total_s +. dt;
  if dt > p.max_s then p.max_s <- dt

let time t name f =
  let dt, v = Clock.elapsed ~clock:t.clock f in
  record t name dt;
  v

let phases t =
  Hashtbl.fold
    (fun name p acc -> (name, (p.count, p.total_s, p.max_s)) :: acc)
    t.phases []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Export into a metrics registry as three phase-labelled families. *)
let register t metrics =
  List.iter
    (fun (name, (count, total_s, max_s)) ->
      let labels = [ ("phase", name) ] in
      Metrics.inc
        ~by:(float_of_int count)
        (Metrics.counter metrics ~labels
           ~help:"Completed timed phases" "dbp_profile_phase_runs_total");
      Metrics.inc ~by:total_s
        (Metrics.counter metrics ~labels
           ~help:"Cumulative wall-clock seconds per phase"
           "dbp_profile_phase_seconds_total");
      Metrics.set
        (Metrics.gauge metrics ~labels
           ~help:"Longest single run per phase, seconds"
           "dbp_profile_phase_seconds_max")
        max_s)
    (phases t)
