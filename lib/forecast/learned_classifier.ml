open Dbp_core
module E = Dbp_online.Engine

let default_key item = Printf.sprintf "%.2f" (Item.size item)

let make ?(key = default_key) ?(fallback = 1.) ~rho () =
  if rho <= 0. then invalid_arg "Learned_classifier.make: rho <= 0";
  {
    E.name = Printf.sprintf "cbdt-learned(rho=%g)" rho;
    make =
      (fun () ->
        let predictor = Predictor.create ~key () in
        let bin_category : (int, int) Hashtbl.t = Hashtbl.create 32 in
        let category item =
          let predicted_departure =
            Predictor.estimator ~fallback predictor item
          in
          max 1 (int_of_float (Float.ceil ((predicted_departure /. rho) -. 1e-9)))
        in
        let decide ~now:_ ~open_bins item =
          let cat = category item in
          let mine =
            List.filter
              (fun v ->
                match Hashtbl.find_opt bin_category v.E.index with
                | Some c -> c = cat
                | None -> false)
              open_bins
          in
          Dbp_online.Any_fit.choose_fitting (fun _ _ -> false) mine item
        in
        let notify ~item ~index = Hashtbl.replace bin_category index (category item) in
        let departed item = Predictor.observe predictor item in
        { E.decide; notify; departed });
    make_indexed = None;
  }
