type t = {
  algo : string;
  cursor : int;
  placed : int;
  rejected : int;
  skipped : int;
  bins_ever : int;
  shed_transitions : int;
  coarsen_transitions : int;
  reject_transitions : int;
  engine_digest : string;
}

type generation = Current | Previous

type error =
  | Missing of string
  | Unreadable of { path : string; cause : string }

let error_to_string = function
  | Missing path -> Printf.sprintf "no snapshot at %s" path
  | Unreadable { path; cause } -> Printf.sprintf "snapshot %s: %s" path cause

let to_payload t =
  String.concat "\n"
    [
      "format=dbp-serve-snapshot";
      "algo=" ^ t.algo;
      Printf.sprintf "cursor=%d" t.cursor;
      Printf.sprintf "placed=%d" t.placed;
      Printf.sprintf "rejected=%d" t.rejected;
      Printf.sprintf "skipped=%d" t.skipped;
      Printf.sprintf "bins_ever=%d" t.bins_ever;
      Printf.sprintf "shed_transitions=%d" t.shed_transitions;
      Printf.sprintf "coarsen_transitions=%d" t.coarsen_transitions;
      Printf.sprintf "reject_transitions=%d" t.reject_transitions;
      "engine_digest=" ^ t.engine_digest;
      "";
    ]

let[@dbp.total] of_payload s =
  let kvs =
    String.split_on_char '\n' s
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match String.index_opt l '=' with
           | Some i ->
               Ok
                 ( String.sub l 0 i,
                   String.sub l (i + 1) (String.length l - i - 1) )
           | None -> Error (Printf.sprintf "payload line %S has no '='" l))
  in
  match List.find_opt (function Error _ -> true | Ok _ -> false) kvs with
  | Some (Error e) -> Error e
  | _ -> (
      let kvs = List.filter_map Result.to_option kvs in
      let str k =
        match List.assoc_opt k kvs with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "payload missing %S" k)
      in
      let int k =
        match str k with
        | Error _ as e -> e
        | Ok v -> (
            match int_of_string_opt v with
            | Some i when i >= 0 -> Ok i
            | _ -> Error (Printf.sprintf "payload field %S: bad count %S" k v))
      in
      let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
      let* fmt = str "format" in
      if fmt <> "dbp-serve-snapshot" then
        Error (Printf.sprintf "unknown payload format %S" fmt)
      else
        let* algo = str "algo" in
        let* cursor = int "cursor" in
        let* placed = int "placed" in
        let* rejected = int "rejected" in
        let* skipped = int "skipped" in
        let* bins_ever = int "bins_ever" in
        let* shed_transitions = int "shed_transitions" in
        let* coarsen_transitions = int "coarsen_transitions" in
        let* reject_transitions = int "reject_transitions" in
        let* engine_digest = str "engine_digest" in
        (* Strictness cuts both ways: a key this version does not know
           is just as diagnostic of a mismatched writer as a missing
           one. *)
        let known =
          [
            "format"; "algo"; "cursor"; "placed"; "rejected"; "skipped";
            "bins_ever"; "shed_transitions"; "coarsen_transitions";
            "reject_transitions"; "engine_digest";
          ]
        in
        let* () =
          match
            List.find_opt (fun (k, _) -> not (List.mem k known)) kvs
          with
          | Some (k, _) -> Error (Printf.sprintf "unknown payload field %S" k)
          | None -> Ok ()
        in
        Ok
          {
            algo;
            cursor;
            placed;
            rejected;
            skipped;
            bins_ever;
            shed_transitions;
            coarsen_transitions;
            reject_transitions;
            engine_digest;
          })

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save ~path t =
  let tmp = path ^ ".tmp" in
  write_file tmp (Wire.encode (to_payload t));
  if Sys.file_exists path then Sys.rename path (path ^ ".prev");
  Sys.rename tmp path

let load_one path =
  if not (Sys.file_exists path) then Error (Missing path)
  else
    match read_file path with
    | exception Sys_error e -> Error (Unreadable { path; cause = e })
    | bytes -> (
        match Wire.decode bytes with
        | Error c ->
            Error (Unreadable { path; cause = Wire.corruption_to_string c })
        | Ok payload -> (
            match of_payload payload with
            | Error e -> Error (Unreadable { path; cause = e })
            | Ok t -> Ok t))

let load ~path =
  match load_one path with
  | Ok t -> Ok (t, Current)
  | Error current -> (
      match load_one (path ^ ".prev") with
      | Ok t -> Ok (t, Previous)
      | Error prev -> (
          (* Report the current generation's defect; "missing outright"
             defers to whatever the fallback said. *)
          match current with
          | Missing _ -> Error prev
          | _ -> Error current))
