(* Live-state-only engine (see the interface).  The bookkeeping mirrors
   Dbp_faults.Resilient bin-for-bin — same level arithmetic, same
   callback order — except that closed bins are physically evicted
   instead of kept with active = 0. *)

open Dbp_core
module E = Dbp_online.Engine

type bin = {
  idx : int;
  opened_at : float;
  mutable level : float;
  mutable active : int;
  mutable residents : Item.t list;  (* reverse placement order *)
  mutable prev : int;  (* open-list links by bin index; -1 = none *)
  mutable next : int;
}

type t = {
  algo : E.t;
  stepper : E.stepper;
  bins : (int, bin) Hashtbl.t;  (* open bins only *)
  active_ids : (int, unit) Hashtbl.t;
  departures : (float * Item.t * int) Heap.t;  (* (departure, item, bin) *)
  mutable head : int;
  mutable tail : int;
  mutable bins_ever : int;
  mutable placed : int;
  mutable departed : int;
  mutable clock : float;  (* last arrival instant processed *)
  mutable obs : Observer.t option;
}

(* Departures pop in (time, id) order: the Event stream's tie-break, so
   a drain processes exactly the batch Engine's departure sequence. *)
let dep_cmp (t1, i1, _) (t2, i2, _) =
  let c = Float.compare t1 t2 in
  if c <> 0 then c else Int.compare (Item.id i1) (Item.id i2)

let create ?observer algo =
  {
    algo;
    stepper = algo.E.make ();
    bins = Hashtbl.create 64;
    active_ids = Hashtbl.create 64;
    departures = Heap.create ~cmp:dep_cmp ();
    head = -1;
    tail = -1;
    bins_ever = 0;
    placed = 0;
    departed = 0;
    clock = Float.neg_infinity;
    obs = observer;
  }

let set_observer t obs = t.obs <- obs

let bin_of t idx =
  match Hashtbl.find_opt t.bins idx with
  | Some lb -> lb
  | None -> invalid_arg "Stream_engine.bin_of: not an open bin"

let append_bin t now =
  let idx = t.bins_ever in
  t.bins_ever <- idx + 1;
  let lb =
    { idx; opened_at = now; level = 0.; active = 0; residents = [];
      prev = t.tail; next = -1 }
  in
  Hashtbl.replace t.bins idx lb;
  if t.tail >= 0 then (bin_of t t.tail).next <- idx else t.head <- idx;
  t.tail <- idx;
  lb

let unlink t lb =
  if lb.prev >= 0 then (bin_of t lb.prev).next <- lb.next
  else t.head <- lb.next;
  if lb.next >= 0 then (bin_of t lb.next).prev <- lb.prev
  else t.tail <- lb.prev;
  lb.prev <- -1;
  lb.next <- -1

(* Open-bin views in index order — the list [decide] receives.  [state]
   rebuilds the bin from the residents captured now, so forcing it later
   still sees this instant. *)
let views t =
  let rec go idx acc =
    if idx < 0 then List.rev acc
    else
      let lb = bin_of t idx in
      let index = lb.idx and residents = lb.residents in
      go lb.next
        ({
           E.index;
           opened_at = lb.opened_at;
           level = lb.level;
           state =
             lazy (Bin_state.of_placement ~index (List.rev residents));
         }
        :: acc)
  in
  go t.head []

let depart t ~now item idx =
  let lb = bin_of t idx in
  lb.active <- lb.active - 1;
  lb.level <- (if lb.active = 0 then 0. else lb.level -. Item.size item);
  lb.residents <-
    List.filter (fun r -> Item.id r <> Item.id item) lb.residents;
  Hashtbl.remove t.active_ids (Item.id item);
  t.departed <- t.departed + 1;
  if lb.active = 0 then begin
    unlink t lb;
    Hashtbl.remove t.bins lb.idx
  end;
  (match t.obs with
  | Some o ->
      o.Observer.on_departure ~time:now ~item;
      if lb.active = 0 then o.Observer.on_close_bin ~time:now ~bin:lb.idx
  | None -> ());
  t.stepper.E.departed item

let drain_until t upto =
  let rec go () =
    match Heap.peek t.departures with
    | Some (at, item, idx) when at <= upto ->
        ignore (Heap.pop t.departures);
        depart t ~now:at item idx;
        go ()
    | _ -> ()
  in
  go ()

type placement = { bin : int; opened : bool }

let do_place t lb item =
  lb.active <- lb.active + 1;
  lb.level <- lb.level +. Item.size item;
  lb.residents <- item :: lb.residents;
  Hashtbl.replace t.active_ids (Item.id item) ();
  Heap.push t.departures (Item.departure item, item, lb.idx);
  t.placed <- t.placed + 1;
  (match t.obs with
  | Some o -> o.Observer.on_place ~time:(Item.arrival item) ~item ~bin:lb.idx
  | None -> ());
  t.stepper.E.notify ~item ~index:lb.idx

let arrive t item =
  let now = Item.arrival item in
  if now < t.clock then
    invalid_arg "Stream_engine.arrive: arrivals must be time-ordered";
  drain_until t now;
  t.clock <- now;
  (match t.obs with
  | Some o -> o.Observer.on_arrival ~time:now ~item
  | None -> ());
  let decision = t.stepper.E.decide ~now ~open_bins:(views t) item in
  (match t.obs with
  | Some o ->
      o.Observer.on_decision ~time:now ~item
        ~bin:(match decision with E.Place i -> Some i | E.Open_new -> None)
  | None -> ());
  match decision with
  | E.Open_new ->
      let lb = append_bin t now in
      (match t.obs with
      | Some o -> o.Observer.on_open_bin ~time:now ~bin:lb.idx
      | None -> ());
      do_place t lb item;
      Ok { bin = lb.idx; opened = true }
  | E.Place idx -> (
      match Hashtbl.find_opt t.bins idx with
      | None ->
          if idx >= 0 && idx < t.bins_ever then
            Error (E.Closed_bin { algo = t.algo.E.name; bin = idx; time = now })
          else
            Error (E.Unknown_bin { algo = t.algo.E.name; bin = idx; time = now })
      | Some lb ->
          if
            lb.level +. Item.size item
            > Bin_state.capacity +. Bin_state.tolerance
          then
            Error
              (E.Overflow { algo = t.algo.E.name; item; bin = idx; time = now })
          else begin
            do_place t lb item;
            Ok { bin = idx; opened = false }
          end)

let is_active t id = Hashtbl.mem t.active_ids id

let digest t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "ever=%d placed=%d departed=%d active=%d clock=%Lx;"
       t.bins_ever t.placed t.departed
       (Hashtbl.length t.active_ids)
       (Int64.bits_of_float t.clock));
  let rec go idx =
    if idx >= 0 then begin
      let lb = bin_of t idx in
      Buffer.add_string buf
        (Printf.sprintf "b%d:%d:%Lx:%Lx[" lb.idx lb.active
           (Int64.bits_of_float lb.level)
           (Int64.bits_of_float lb.opened_at));
      List.iter
        (fun r -> Buffer.add_string buf (Printf.sprintf "%d," (Item.id r)))
        lb.residents;
      Buffer.add_string buf "]";
      go lb.next
    end
  in
  go t.head;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let bins_ever t = t.bins_ever
let placed t = t.placed
let departed t = t.departed
let open_bins t = Hashtbl.length t.bins
let open_jobs t = Hashtbl.length t.active_ids
let algo_name t = t.algo.E.name
