(* The pure half of the /metrics listener: byte-level HTTP/1.0 request
   parsing and response building, with no IO anywhere — the hostile-input
   fuzz suite drives this module directly with arbitrary byte strings,
   and the listener shell (Http_listener) only moves bytes. *)

type request = { meth : string; path : string }

(* Index just past the header-terminating blank line, if the buffered
   bytes already contain one.  Accepts both CRLF and bare-LF framing
   (curl sends CRLF; hand-rolled clients often do not). *)
let[@dbp.total] request_complete s =
  let n = String.length s in
  let rec scan i =
    if i >= n then None
    else if Char.equal s.[i] '\n' then
      if i + 1 < n && Char.equal s.[i + 1] '\n' then Some (i + 2)
      else if
        i + 2 < n && Char.equal s.[i + 1] '\r' && Char.equal s.[i + 2] '\n'
      then Some (i + 3)
      else scan (i + 1)
    else scan (i + 1)
  in
  (* A request line alone terminated by a blank line: the first '\n'
     could itself complete a header block of zero headers only if the
     very next bytes are the terminator, which [scan] handles. *)
  scan 0

let is_token_char c =
  (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')

(* Parse the request line out of a complete header block.  Total: any
   byte string yields Ok or Error.  Headers are deliberately ignored —
   the two endpoints this daemon serves depend on none of them. *)
let[@dbp.total] parse_request s =
  let n = String.length s in
  let line_end =
    let rec go i = if i >= n then n else if Char.equal s.[i] '\n' then i else go (i + 1) in
    go 0
  in
  let line_end =
    if line_end > 0 && Char.equal s.[line_end - 1] '\r' then line_end - 1
    else line_end
  in
  let line = String.sub s 0 line_end in
  match String.split_on_char ' ' line with
  | [ meth; path; version ] ->
      if meth = "" || not (String.for_all is_token_char meth) then
        Error "bad method"
      else if String.length path = 0 || not (Char.equal path.[0] '/') then
        Error "bad path"
      else if
        not
          (String.length version >= 5
          && String.equal (String.sub version 0 5) "HTTP/")
      then Error "bad version"
      else Ok { meth; path }
  | _ -> Error "malformed request line"

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 431 -> "Request Header Fields Too Large"
  | _ -> "Error"

let response ~status ?(content_type = "text/plain; charset=utf-8") body =
  Printf.sprintf
    "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status (status_text status) content_type (String.length body) body

(* The Prometheus text exposition format version this repo emits; /metrics
   responses must advertise it (scrapers content-negotiate on it), not the
   generic plain-text default above. *)
let prometheus_content_type = "text/plain; version=0.0.4; charset=utf-8"

let metrics_response body =
  response ~status:200 ~content_type:prometheus_content_type body
