(** The non-blocking [/metrics] + [/healthz] HTTP/1.0 listener shell.

    Binds loopback only (this is an operational endpoint, not a public
    one).  All request/response byte logic lives in {!Http}; this module
    moves bytes under a fixed hostile-client posture: request size cap
    (431), concurrent-client cap, a per-client service-round budget that
    sheds slowloris connections, and non-blocking writes so a client
    that never reads can only stall itself.

    Drive it by calling {!service} from the daemon's main loop — it
    does a 0-timeout poll over its own fds and returns immediately; add
    {!fds} to the loop's [select] read set to get woken promptly. *)

type t

val create :
  ?max_clients:int ->
  ?max_request:int ->
  ?max_rounds:int ->
  port:int ->
  unit ->
  t
(** Bind and listen on [127.0.0.1:port] ([port = 0] picks a free one —
    read it back with {!port}).  Defaults: 32 clients, 8 KiB requests,
    10000 rounds.
    @raise Unix.Unix_error if the bind fails (port taken). *)

val port : t -> int

val fds : t -> Unix.file_descr list
(** Listening socket + live client fds, for the caller's [select]. *)

val service : t -> respond:(Http.request -> string) -> unit
(** One non-blocking round: accept new clients, read request bytes,
    write response bytes.  [respond] maps a parsed request to full
    response bytes (build them with {!Http.response}); malformed
    requests get a 400 without consulting [respond].  Never blocks,
    never raises on client misbehaviour. *)

val close : t -> unit
(** Close every client and the listening socket. *)
