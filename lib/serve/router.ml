(* Deterministic tenant-key router (see the interface).  The hash is a
   hand-rolled FNV-1a so shard assignment is a stable function of the
   tenant bytes alone — never of Hashtbl.hash internals, word size or
   process state — and every run, resume and replica routes
   identically. *)

type t = {
  shards : int;
  overrides : (string, int) Hashtbl.t;  (* built at create, then read-only *)
}

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash_sub s ~off ~len =
  let h = ref fnv_offset in
  for i = off to off + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) fnv_prime
  done;
  (* Fold to a nonnegative OCaml int; 62 bits keep every platform
     identical. *)
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)

let hash s = hash_sub s ~off:0 ~len:(String.length s)

let create ?(overrides = []) ~shards () =
  if shards < 1 then invalid_arg "Router.create: shards < 1";
  let tbl = Hashtbl.create (max 8 (List.length overrides)) in
  List.iter
    (fun (tenant, shard) ->
      if shard < 0 || shard >= shards then
        invalid_arg
          (Printf.sprintf
             "Router.create: override %S -> %d is outside 0..%d" tenant shard
             (shards - 1));
      if Hashtbl.mem tbl tenant then
        invalid_arg
          (Printf.sprintf "Router.create: duplicate override for %S" tenant);
      Hashtbl.replace tbl tenant shard)
    overrides;
  { shards; overrides = tbl }

let shards t = t.shards
let overrides t = Hashtbl.length t.overrides

let shard_for t tenant =
  match Hashtbl.find_opt t.overrides tenant with
  | Some s -> s
  | None -> hash tenant mod t.shards

(* The hot-path variant: a tenant living at [off, off+len) of [line]
   routes without allocating the substring unless an override table is
   in play (overrides are an operator feature, not a hot-path one). *)
let shard_for_sub t line ~off ~len =
  if Hashtbl.length t.overrides = 0 then hash_sub line ~off ~len mod t.shards
  else shard_for t (String.sub line off len)

let[@dbp.total] parse_overrides text =
  let lines = String.split_on_char '\n' text in
  let trim = String.trim in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | raw :: rest -> (
        let line = trim raw in
        if line = "" || line.[0] = '#' then go (n + 1) acc rest
        else
          match String.index_opt line '=' with
          | None ->
              Error
                (Printf.sprintf
                   "routes line %d: expected TENANT=SHARD, got %S" n line)
          | Some i -> (
              let tenant = trim (String.sub line 0 i) in
              let shard_s =
                trim (String.sub line (i + 1) (String.length line - i - 1))
              in
              match int_of_string_opt shard_s with
              | Some shard when shard >= 0 ->
                  go (n + 1) ((tenant, shard) :: acc) rest
              | Some _ | None ->
                  Error
                    (Printf.sprintf "routes line %d: bad shard index %S" n
                       shard_s)))
  in
  go 1 [] lines

let default_tenant = ""
