(* Total flat-JSON-object scanner (see the interface for why this is
   hand-rolled).  Index-based with explicit bounds checks everywhere:
   the only exception crossing any function here is the internal [Fail],
   caught before returning. *)

type value = Num of float | Str of string | Bool of bool | Null

exception Fail of string

let fail at reason = raise (Fail (Printf.sprintf "%s at byte %d" reason at))

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

(* Characters that can start or continue a JSON number, plus the forms
   [float_of_string] accepts that we re-reject below. *)
let is_num_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let[@dbp.total] parse_object s =
  let n = String.length s in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && is_ws s.[!pos] do
      incr pos
    done
  in
  let expect c what =
    if !pos < n && Char.equal s.[!pos] c then incr pos
    else fail !pos ("expected " ^ what)
  in
  let parse_string () =
    expect '"' "'\"'";
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            if !pos + 1 >= n then fail !pos "unterminated escape"
            else begin
              (let c = s.[!pos + 1] in
               match c with
               | '"' | '\\' | '/' -> Buffer.add_char buf c
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | _ -> fail !pos "unsupported escape");
              pos := !pos + 2;
              go ()
            end
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail start "expected a value";
    let tok = String.sub s start (!pos - start) in
    (* float_of_string also accepts 0x literals and '_' separators;
       neither appears in JSON, and both are rejected by the character
       class above.  What it rejects ("-", "1.2.3", ...) we report. *)
    match float_of_string_opt tok with
    | Some v -> Num v
    | None -> fail start ("bad number " ^ String.escaped tok)
  in
  let parse_word w v =
    let l = String.length w in
    if !pos + l <= n && String.equal (String.sub s !pos l) w then begin
      pos := !pos + l;
      v
    end
    else fail !pos "expected a value"
  in
  let parse_value () =
    if !pos >= n then fail !pos "expected a value"
    else
      match s.[!pos] with
      | '"' -> Str (parse_string ())
      | 't' -> parse_word "true" (Bool true)
      | 'f' -> parse_word "false" (Bool false)
      | 'n' -> parse_word "null" Null
      | '{' | '[' -> fail !pos "nested values unsupported"
      | _ -> parse_number ()
  in
  match
    skip_ws ();
    expect '{' "'{'";
    let fields = ref [] in
    skip_ws ();
    if !pos < n && Char.equal s.[!pos] '}' then incr pos
    else begin
      let continue = ref true in
      while !continue do
        skip_ws ();
        let key = parse_string () in
        if List.mem_assoc key !fields then fail !pos ("duplicate key " ^ key);
        skip_ws ();
        expect ':' "':'";
        skip_ws ();
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        if !pos < n && Char.equal s.[!pos] ',' then incr pos
        else begin
          expect '}' "',' or '}'";
          continue := false
        end
      done
    end;
    skip_ws ();
    if !pos <> n then fail !pos "trailing bytes after object";
    List.rev !fields
  with
  | fields -> Ok fields
  | exception Fail msg -> Error msg

let[@dbp.total] field fields name = List.assoc_opt name fields

let[@dbp.total] num_field fields name =
  match field fields name with
  | Some (Num v) -> Ok v
  | Some _ -> Error (Printf.sprintf "field %S is not a number" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let[@dbp.total] int_field fields name =
  match num_field fields name with
  | Error _ as e -> e
  | Ok v ->
      if Float.is_integer v && Float.abs v <= 4503599627370496. then
        Ok (int_of_float v)
      else Error (Printf.sprintf "field %S is not an integer" name)

let fmt_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
