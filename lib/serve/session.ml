open Dbp_core
module E = Dbp_online.Engine
module M = Dbp_obs.Metrics
module Sp = Dbp_obs.Span

type config = {
  algo_name : string;
  algo : E.t;
  watermarks : Admission.watermarks;
  snapshot_every : int;
  coarsen_factor : int;
}

let config ?(watermarks = Admission.default) ?(snapshot_every = 1000)
    ?(coarsen_factor = 8) ~name algo =
  Admission.validate watermarks;
  if snapshot_every < 0 then
    invalid_arg "Session.config: snapshot_every must be >= 0";
  if coarsen_factor < 1 then
    invalid_arg "Session.config: coarsen_factor must be >= 1";
  { algo_name = name; algo; watermarks; snapshot_every; coarsen_factor }

type checkpoint = { cursor : int; digest : string }

let checkpoint_of_snapshot (s : Snapshot.t) =
  { cursor = s.Snapshot.cursor; digest = s.Snapshot.engine_digest }

type fatal =
  | Engine_error of E.error
  | Journal_divergence of { seq : int; expected : string; got : string }
  | Journal_corrupt of { seq : int; cause : string }
  | Checkpoint_divergence of {
      cursor : int;
      expected_digest : string;
      actual_digest : string option;
    }

let fatal_to_string = function
  | Engine_error e -> E.error_to_string e
  | Journal_divergence { seq; expected; got } ->
      Printf.sprintf
        "resume replay diverged from the journal at seq %d: journal says %s, \
         replay produced %s (wrong input file or algorithm?)"
        seq expected got
  | Journal_corrupt { seq; cause } ->
      Printf.sprintf "journal line %d unreadable: %s" seq cause
  | Checkpoint_divergence { cursor; expected_digest; actual_digest } -> (
      match actual_digest with
      | Some d ->
          Printf.sprintf
            "replayed state digest %s disagrees with snapshot %s at cursor %d \
             (different input, algorithm or serve version?)"
            d expected_digest cursor
      | None ->
          Printf.sprintf
            "journal ended before the snapshot cursor %d (expected digest \
             %s): snapshot and journal are from different runs"
            cursor expected_digest)

type outcome =
  | Emit of string
  | Replayed
  | Skipped of string
  | Fatal of fatal

(* Pre-registered metric handles; None when the session runs unmetered
   (the soak path), so the hot loop pays one match, not a registry
   lookup. *)
type meters = {
  m_lines : M.counter;
  m_skipped : M.counter;
  m_placed : M.counter;
  m_rej_overload : M.counter;
  m_rej_order : M.counter;
  m_rej_dup : M.counter;
  m_trans : M.counter array;  (* indexed by Admission.rung_index *)
  m_snapshots : M.counter;
  g_depth : M.gauge;
  g_rung : M.gauge;
  g_open_jobs : M.gauge;
  g_open_bins : M.gauge;
}

let meters_of ?(labels = []) registry =
  let c name help =
    match labels with
    | [] -> M.counter registry ~help name
    | _ -> M.counter registry ~help ~labels name
  in
  let g name help =
    match labels with
    | [] -> M.gauge registry ~help name
    | _ -> M.gauge registry ~help ~labels name
  in
  let rej reason =
    M.counter registry ~help:"Arrivals turned away, by reason."
      ~labels:(labels @ [ ("reason", reason) ])
      "dbp_serve_rejected_total"
  in
  let trans rung =
    M.counter registry
      ~help:"Degradation-ladder rung entries, by rung reached."
      ~labels:(labels @ [ ("rung", rung) ])
      "dbp_serve_rung_transitions_total"
  in
  {
    m_lines = c "dbp_serve_lines_total" "Input lines consumed.";
    m_skipped = c "dbp_serve_skipped_lines_total" "Malformed lines skipped.";
    m_placed = c "dbp_serve_placed_total" "Arrivals placed into bins.";
    m_rej_overload = rej "overload";
    m_rej_order = rej "out_of_order";
    m_rej_dup = rej "duplicate";
    m_trans =
      Array.of_list
        (List.map trans [ "normal"; "shedding"; "coarsening"; "rejecting" ]);
    m_snapshots = c "dbp_serve_snapshots_total" "Snapshots cut.";
    g_depth = g "dbp_serve_queue_depth" "Arrivals buffered behind the current one.";
    g_rung = g "dbp_serve_rung" "Current ladder rung (0..3).";
    g_open_jobs = g "dbp_serve_open_jobs" "Jobs currently placed.";
    g_open_bins = g "dbp_serve_open_bins" "Bins currently open.";
  }

type t = {
  cfg : config;
  engine : Stream_engine.t;
  base_observer : Observer.t option;
  meters : meters option;
  span_clock : Dbp_obs.Clock.t option;
      (* injected, never Clock.monotonic from here: this module is an
         R12 decision path and must not reach a wall-clock source *)
  render_buf : Buffer.t;  (* reused for every emitted decision line *)
  mutable journal : (unit -> (Decision.t, string) result option) option;
  mutable checkpoint : checkpoint option;
  mutable seq : int;
  mutable placed : int;
  mutable rejected : int;
  mutable skipped : int;
  mutable expected_time : float;  (* last admitted arrival instant *)
  mutable rung : Admission.rung;
  mutable shed_t : int;
  mutable coarsen_t : int;
  mutable reject_t : int;
  mutable last_snapshot_seq : int;
}

let create ?metrics ?metric_labels ?observer ?span_clock ?journal ?checkpoint
    cfg =
  {
    cfg;
    engine = Stream_engine.create ?observer cfg.algo;
    base_observer = observer;
    meters = Option.map (meters_of ?labels:metric_labels) metrics;
    span_clock;
    render_buf = Buffer.create 96;
    journal;
    checkpoint;
    seq = 0;
    placed = 0;
    rejected = 0;
    skipped = 0;
    expected_time = Float.neg_infinity;
    rung = Admission.Normal;
    shed_t = 0;
    coarsen_t = 0;
    reject_t = 0;
    last_snapshot_seq = 0;
  }

let metered t f = match t.meters with Some m -> f m | None -> ()

(* Stamp a span phase iff a clock was injected and the ticket is armed;
   one match + one length test on the unsampled hot path. *)
let span_mark t span phase =
  match t.span_clock with Some c -> Sp.mark c span phase | None -> ()

let update_rung t ~depth =
  let rung = Admission.rung_for t.cfg.watermarks ~depth in
  metered t (fun m ->
      M.set m.g_depth (float_of_int depth);
      M.set m.g_rung (float_of_int (Admission.rung_index rung)));
  if Admission.rung_index rung <> Admission.rung_index t.rung then begin
    (match rung with
    | Admission.Shedding -> t.shed_t <- t.shed_t + 1
    | Admission.Coarsening -> t.coarsen_t <- t.coarsen_t + 1
    | Admission.Rejecting -> t.reject_t <- t.reject_t + 1
    | Admission.Normal -> ());
    metered t (fun m -> M.inc m.m_trans.(Admission.rung_index rung));
    (* Shedding detaches tracing — the one per-event cost that serves no
       placement.  Recovery to Normal reattaches it. *)
    Stream_engine.set_observer t.engine
      (if Admission.rung_index rung >= 1 then None else t.base_observer);
    t.rung <- rung
  end

(* Verify a pending checkpoint the moment the cursor is the current seq. *)
let check_now t =
  match t.checkpoint with
  | Some { cursor; digest } when cursor = t.seq ->
      let actual = Stream_engine.digest t.engine in
      if String.equal actual digest then begin
        t.checkpoint <- None;
        None
      end
      else
        Some
          (Checkpoint_divergence
             {
               cursor;
               expected_digest = digest;
               actual_digest = Some actual;
             })
  | _ -> None

let emit_gauges t =
  metered t (fun m ->
      M.set m.g_open_jobs (float_of_int (Stream_engine.open_jobs t.engine));
      M.set m.g_open_bins (float_of_int (Stream_engine.open_bins t.engine)))

(* Render through the session's reusable buffer: same bytes as
   [Decision.render] (pinned by a differential test on [render_into])
   without the Printf intermediates on the per-decision hot path. *)
let emit t decision =
  Buffer.clear t.render_buf;
  Decision.render_into t.render_buf decision;
  Emit (Buffer.contents t.render_buf)

let reject t item reason =
  let seq = t.seq in
  t.seq <- seq + 1;
  t.rejected <- t.rejected + 1;
  metered t (fun m ->
      M.inc
        (match reason with
        | Decision.Overload -> m.m_rej_overload
        | Decision.Out_of_order -> m.m_rej_order
        | Decision.Duplicate -> m.m_rej_dup));
  emit t
    (Decision.Rejected
       { seq; job = Item.id item; reason; time = Item.arrival item })

let live t item =
  let now = Item.arrival item in
  if now < t.expected_time then reject t item Decision.Out_of_order
  else if Stream_engine.is_active t.engine (Item.id item) then
    reject t item Decision.Duplicate
  else if t.rung = Admission.Rejecting then reject t item Decision.Overload
  else
    match Stream_engine.arrive t.engine item with
    | Error e -> Fatal (Engine_error e)
    | Ok { Stream_engine.bin; opened } ->
        let seq = t.seq in
        t.seq <- seq + 1;
        t.placed <- t.placed + 1;
        t.expected_time <- now;
        metered t (fun m -> M.inc m.m_placed);
        emit_gauges t;
        emit t
          (Decision.Placed { seq; job = Item.id item; bin; opened; time = now })

(* Apply one journal entry to this arrival instead of re-deciding. *)
let replay t pull item =
  match pull () with
  | None ->
      (* Journal drained: from here on the stream is live.  A pending
         checkpoint past this point can never be satisfied. *)
      t.journal <- None;
      t.last_snapshot_seq <- t.seq;
      (match t.checkpoint with
      | Some { cursor; digest } when cursor > t.seq ->
          Fatal
            (Checkpoint_divergence
               { cursor; expected_digest = digest; actual_digest = None })
      | _ -> live t item)
  | Some (Error cause) -> Fatal (Journal_corrupt { seq = t.seq; cause })
  | Some (Ok entry) -> (
      let entry_seq = Decision.seq entry in
      if entry_seq <> t.seq then
        Fatal
          (Journal_divergence
             {
               seq = t.seq;
               expected = Printf.sprintf "seq %d" t.seq;
               got = Decision.render entry;
             })
      else
        match entry with
        | Decision.Rejected { job; _ } ->
            if job <> Item.id item then
              Fatal
                (Journal_divergence
                   {
                     seq = t.seq;
                     expected = Decision.render entry;
                     got = Printf.sprintf "arrival of job %d" (Item.id item);
                   })
            else begin
              t.seq <- t.seq + 1;
              t.rejected <- t.rejected + 1;
              Replayed
            end
        | Decision.Placed { job; bin; _ } -> (
            if job <> Item.id item then
              Fatal
                (Journal_divergence
                   {
                     seq = t.seq;
                     expected = Decision.render entry;
                     got = Printf.sprintf "arrival of job %d" (Item.id item);
                   })
            else
              match Stream_engine.arrive t.engine item with
              | Error e -> Fatal (Engine_error e)
              | Ok { Stream_engine.bin = got_bin; opened = _ } ->
                  if got_bin <> bin then
                    Fatal
                      (Journal_divergence
                         {
                           seq = t.seq;
                           expected = Decision.render entry;
                           got = Printf.sprintf "placement into bin %d" got_bin;
                         })
                  else begin
                    t.seq <- t.seq + 1;
                    t.placed <- t.placed + 1;
                    t.expected_time <- Item.arrival item;
                    Replayed
                  end))

(* One input line was consumed: count it, drive the ladder, and settle
   any checkpoint whose cursor we just reached. *)
let pre t ~depth =
  metered t (fun m -> M.inc m.m_lines);
  update_rung t ~depth;
  check_now t

(* The [~span] parameters below are plain (not optional) on purpose:
   passing a value to an optional argument boxes it in [Some] — two
   minor words on every call — which the span bench's zero-alloc gate
   on the disabled path would catch.  The public [feed*] wrappers keep
   the [?span] ergonomics; hot loops that already hold a ticket (or
   {!Sp.null}) go through these without allocating. *)

let skip_line t ~span ~depth reason =
  match pre t ~depth with
  | Some fatal -> Fatal fatal
  | None ->
      span_mark t span Sp.Admission;
      t.skipped <- t.skipped + 1;
      metered t (fun m -> M.inc m.m_skipped);
      Skipped reason

let item_line t ~span ~depth item =
  match pre t ~depth with
  | Some fatal -> Fatal fatal
  | None ->
      span_mark t span Sp.Admission;
      let outcome =
        match t.journal with
        | Some pull ->
            let outcome = replay t pull item in
            (* Replay never snapshots; keep the cadence clock pinned
               to the replay frontier. *)
            if Option.is_some t.journal then t.last_snapshot_seq <- t.seq;
            outcome
        | None -> live t item
      in
      span_mark t span Sp.Engine;
      outcome

let feed_skip t ?(span = Sp.null) ~depth reason = skip_line t ~span ~depth reason
let feed_item t ?(span = Sp.null) ~depth item = item_line t ~span ~depth item

let feed t ?(span = Sp.null) ~depth line =
  (* Parsing is pure, so hoisting it above [pre] (which [item_line] and
     [skip_line] run) is unobservable: same outcomes, same counters. *)
  match Arrival.parse line with
  | Error reason ->
      span_mark t span Sp.Parse;
      skip_line t ~span ~depth reason
  | Ok item ->
      span_mark t span Sp.Parse;
      item_line t ~span ~depth item

let finish t =
  match check_now t with
  | Some fatal -> Error fatal
  | None -> (
      match t.checkpoint with
      | Some { cursor; digest } ->
          Error
            (Checkpoint_divergence
               { cursor; expected_digest = digest; actual_digest = None })
      | None -> (
          match t.journal with
          | Some pull -> (
              match pull () with
              | Some entry ->
                  Error
                    (Journal_divergence
                       {
                         seq = t.seq;
                         expected =
                           (match entry with
                           | Ok e -> Decision.render e
                           | Error cause -> "unreadable line: " ^ cause);
                         got = "end of input";
                       })
              | None ->
                  t.journal <- None;
                  Ok ())
          | None -> Ok ()))

let effective_cadence t =
  if Admission.rung_index t.rung >= Admission.rung_index Admission.Coarsening
  then t.cfg.snapshot_every * t.cfg.coarsen_factor
  else t.cfg.snapshot_every

let snapshot_due t =
  t.cfg.snapshot_every > 0
  && Option.is_none t.journal
  && t.seq - t.last_snapshot_seq >= effective_cadence t

let take_snapshot t =
  t.last_snapshot_seq <- t.seq;
  metered t (fun m -> M.inc m.m_snapshots);
  {
    Snapshot.algo = t.cfg.algo_name;
    cursor = t.seq;
    placed = t.placed;
    rejected = t.rejected;
    skipped = t.skipped;
    bins_ever = Stream_engine.bins_ever t.engine;
    shed_transitions = t.shed_t;
    coarsen_transitions = t.coarsen_t;
    reject_transitions = t.reject_t;
    engine_digest = Stream_engine.digest t.engine;
  }

let seq t = t.seq
let placed t = t.placed
let rejected t = t.rejected
let skipped t = t.skipped
let replaying t = Option.is_some t.journal
let rung t = t.rung
let transitions t = (t.shed_t, t.coarsen_t, t.reject_t)
let engine t = t.engine
