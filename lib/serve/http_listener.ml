(* The IO shell around Http: a non-blocking, select-friendly HTTP/1.0
   listener for /metrics + /healthz.  Lives in lib/serve (R9) and does
   no parsing itself — every byte decision is Http's, which the fuzz
   suite hammers directly.

   Hostile-client posture, in order of appearance:
   - request buffer capped at [max_request] bytes → 431 and close;
   - at most [max_clients] concurrent clients → excess accepts are
     closed immediately (cheaper than refusing, and it unblocks the
     peer's connect);
   - a per-client service-round budget → a slowloris trickling one byte
     per round is dropped after [max_rounds] rounds without completing
     a request;
   - all fds non-blocking: a client that never reads its response can
     only stall its own connection, never the daemon ([service] does a
     0-timeout poll and moves on). *)

type client = {
  fd : Unix.file_descr;
  req : Buffer.t;
  mutable resp : string;  (* "" while the request is still being read *)
  mutable sent : int;
  mutable rounds : int;
}

type t = {
  sock : Unix.file_descr;
  port : int;
  mutable clients : client list;
  max_clients : int;
  max_request : int;
  max_rounds : int;
  read_buf : Bytes.t;
}

let create ?(max_clients = 32) ?(max_request = 8192) ?(max_rounds = 10_000)
    ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 16;
     Unix.set_nonblock sock
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  {
    sock;
    port;
    clients = [];
    max_clients;
    max_request;
    max_rounds;
    read_buf = Bytes.create 4096;
  }

let port t = t.port

(* fds worth waking the caller's select for. *)
let fds t = t.sock :: List.map (fun c -> c.fd) t.clients

let drop c =
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let respond_error c status =
  c.resp <- Http.response ~status (Http.status_text status ^ "\n")

(* Returns false when the client is finished (close + forget). *)
let step t ~respond c =
  c.rounds <- c.rounds + 1;
  if String.length c.resp = 0 then begin
    (* Reading phase. *)
    match Unix.read c.fd t.read_buf 0 (Bytes.length t.read_buf) with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        c.rounds <= t.max_rounds
    | exception Unix.Unix_error _ -> false
    | 0 ->
        (* Peer closed before completing a request: nothing to say. *)
        false
    | n -> (
        Buffer.add_subbytes c.req t.read_buf 0 n;
        if Buffer.length c.req > t.max_request then begin
          respond_error c 431;
          true
        end
        else
          match Http.request_complete (Buffer.contents c.req) with
          | None -> c.rounds <= t.max_rounds
          | Some _ ->
              (match Http.parse_request (Buffer.contents c.req) with
              | Error _ -> respond_error c 400
              | Ok req -> c.resp <- respond req);
              true)
  end
  else begin
    (* Writing phase. *)
    let remaining = String.length c.resp - c.sent in
    match
      Unix.write_substring c.fd c.resp c.sent remaining
    with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        c.rounds <= t.max_rounds
    | exception Unix.Unix_error _ -> false
    | n ->
        c.sent <- c.sent + n;
        c.sent < String.length c.resp && c.rounds <= t.max_rounds
  end

let accept_new t =
  let rec go () =
    match Unix.accept t.sock with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
        if List.length t.clients >= t.max_clients then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          go ()
        end
        else begin
          (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
          t.clients <-
            { fd; req = Buffer.create 256; resp = ""; sent = 0; rounds = 0 }
            :: t.clients;
          go ()
        end
  in
  go ()

let service t ~respond =
  accept_new t;
  t.clients <-
    List.filter
      (fun c ->
        match step t ~respond c with
        | true -> true
        | false ->
            drop c;
            false
        | exception _ ->
            drop c;
            false)
      t.clients

let close t =
  List.iter drop t.clients;
  t.clients <- [];
  try Unix.close t.sock with Unix.Unix_error _ -> ()
