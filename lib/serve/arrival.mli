(** The [dbp serve] input line format: one job arrival per line,

    {[ {"id":17,"size":0.25,"arrival":3,"departure":7.5,"tenant":"t1"} ]}

    {!parse} is the lenient half of the malformed-input contract, in the
    spirit of [Dbp_workload.Trace.of_string_lenient]: it is {e total} —
    any byte string yields [Ok item] or [Error reason], never an
    exception — so the daemon can skip and count bad lines instead of
    dying mid-stream.  Validation bottoms out in [Item.make]: sizes
    outside (0, 1], non-finite times and non-positive durations are
    rejected with the smart constructor's own message.

    {!render} is the exact inverse: floats print with enough digits to
    re-parse bit-identically ({!Json_lite.fmt_num}), which [dbp gen
    --jsonl] relies on to produce streams that replay exactly.

    {!parse_into} is the sharded daemon's hot path: the same grammar as
    {!parse}, scanned in place into a reusable {!scratch} with no
    intermediate field list — plus the [tenant] field captured as a
    slice so routing ({!shard_for}) allocates nothing either.  The two
    parsers are kept in lockstep by a differential qcheck suite (same
    Ok/Error verdict on arbitrary bytes, bit-equal items). *)

open Dbp_core

val parse : string -> (Item.t, string) result
(** Never raises.  Unknown fields are ignored; [id]/[size]/[arrival]/
    [departure] are required, [id] integral.  A [tenant] field of any
    type is ignored like other unknown fields. *)

val render : ?tenant:string -> Item.t -> string
(** One line (no trailing newline); [parse (render i)] returns an item
    equal to [i] field-for-field.  With [?tenant], appends a
    [,"tenant":"..."] field (escaped). *)

(** {2 Zero-allocation parse path} *)

type scratch
(** Reusable parse destination: the parsed item plus the tenant slice of
    the last line fed to {!parse_into}.  One scratch per shard-router
    thread; not thread-safe. *)

val scratch : unit -> scratch

val parse_into : scratch -> string -> (unit, string) result
(** Parse one line into [scratch].  Total, like {!parse}, and agrees
    with it exactly: [Ok] iff [parse] returns [Ok], and then {!item}
    is bit-equal to [parse]'s item.  On [Error] the scratch contents
    are unspecified. *)

val item : scratch -> Item.t
(** The item of the last successful {!parse_into}. *)

val tenant : scratch -> string
(** The tenant of the last successful {!parse_into}:
    [Router.default_tenant] when the line had no [tenant] field (or a
    non-string one), else the decoded string value.  Allocates only
    when a tenant is present. *)

val shard_for : Router.t -> scratch -> int
(** Route the last parsed line.  Allocation-free on the hot path (no
    escapes in the tenant, no override table). *)
