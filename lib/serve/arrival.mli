(** The [dbp serve] input line format: one job arrival per line,

    {[ {"id":17,"size":0.25,"arrival":3,"departure":7.5} ]}

    {!parse} is the lenient half of the malformed-input contract, in the
    spirit of [Dbp_workload.Trace.of_string_lenient]: it is {e total} —
    any byte string yields [Ok item] or [Error reason], never an
    exception — so the daemon can skip and count bad lines instead of
    dying mid-stream.  Validation bottoms out in [Item.make]: sizes
    outside (0, 1], non-finite times and non-positive durations are
    rejected with the smart constructor's own message.

    {!render} is the exact inverse: floats print with enough digits to
    re-parse bit-identically ({!Json_lite.fmt_num}), which [dbp gen
    --jsonl] relies on to produce streams that replay exactly. *)

open Dbp_core

val parse : string -> (Item.t, string) result
(** Never raises.  Unknown fields are ignored; [id]/[size]/[arrival]/
    [departure] are required, [id] integral. *)

val render : Item.t -> string
(** One line (no trailing newline); [parse (render i)] returns an item
    equal to [i] field-for-field. *)
