(** Byte-level HTTP/1.0 request parsing and response building for the
    [/metrics] + [/healthz] listener — the {e pure} half, with no IO.

    The listener shell ({!Http_listener}) buffers client bytes and asks
    this module two questions: "is a full request here yet?"
    ({!request_complete}) and "what does it say?" ({!parse_request}).
    Both are total — any byte string yields a value, never an exception
    — because the listener is exposed to hostile input by construction
    and the fuzz suite feeds it torn request lines, binary garbage and
    header floods. *)

type request = { meth : string; path : string }

val request_complete : string -> int option
(** Index just past the blank line ending the header block, if the
    buffered bytes contain one; [None] while the request is still
    arriving.  CRLF and bare-LF framing both accepted. *)

val parse_request : string -> (request, string) result
(** Parse the request line of a complete header block.  Headers are
    ignored (no endpoint here depends on one).  Total. *)

val response : status:int -> ?content_type:string -> string -> string
(** Full HTTP/1.0 response bytes: status line, [Content-Type],
    [Content-Length], [Connection: close], body. *)

val prometheus_content_type : string
(** ["text/plain; version=0.0.4; charset=utf-8"] — the Prometheus text
    exposition content type every [/metrics] response must carry. *)

val metrics_response : string -> string
(** [response ~status:200 ~content_type:prometheus_content_type]. *)

val status_text : int -> string
