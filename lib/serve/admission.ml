type rung = Normal | Shedding | Coarsening | Rejecting
type watermarks = { shed : int; coarsen : int; reject : int }

let default = { shed = 1_024; coarsen = 8_192; reject = 65_536 }

let validate { shed; coarsen; reject } =
  if not (0 < shed && shed <= coarsen && coarsen <= reject) then
    invalid_arg
      (Printf.sprintf
         "Admission.validate: watermarks must satisfy 0 < shed (%d) <= \
          coarsen (%d) <= reject (%d)"
         shed coarsen reject)

let rung_for w ~depth =
  if depth >= w.reject then Rejecting
  else if depth >= w.coarsen then Coarsening
  else if depth >= w.shed then Shedding
  else Normal

let rung_name = function
  | Normal -> "normal"
  | Shedding -> "shedding"
  | Coarsening -> "coarsening"
  | Rejecting -> "rejecting"

let rung_index = function
  | Normal -> 0
  | Shedding -> 1
  | Coarsening -> 2
  | Rejecting -> 3
