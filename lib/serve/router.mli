(** The deterministic tenant-key router behind [dbp serve --shards].

    Routing must be a {e pure function of the tenant key}: the same
    tenant lands on the same shard in every run, on resume, and in every
    replica — that is what makes per-shard journal segments replayable
    and the sharded decision stream comparable to per-tenant-filtered
    unsharded runs.  The hash is therefore a hand-rolled 64-bit FNV-1a
    over the tenant bytes (never [Hashtbl.hash], which is allowed to
    vary), folded to 62 bits so every platform agrees.

    Two useful algebraic consequences, both pinned by the qcheck suite:
    routing is stable across router instances, and when [m] divides [n],
    [shard_for] under [n] shards taken mod [m] equals [shard_for] under
    [m] shards — growing a fleet by an integer factor refines the
    partition instead of reshuffling it.

    An explicit override table ([TENANT=SHARD] lines, {!parse_overrides})
    pins chosen tenants to chosen shards — the operator escape hatch for
    isolating a noisy tenant.  Overrides win over the hash. *)

type t

val create : ?overrides:(string * int) list -> shards:int -> unit -> t
(** @raise Invalid_argument if [shards < 1], an override targets a shard
    outside [0..shards-1], or a tenant is overridden twice. *)

val shards : t -> int

val overrides : t -> int
(** Number of override entries. *)

val hash : string -> int
(** 64-bit FNV-1a folded to a nonnegative int.  Deterministic across
    runs, processes and architectures. *)

val hash_sub : string -> off:int -> len:int -> int
(** {!hash} of the substring at [off, off+len) without allocating it.
    Indices must be in bounds. *)

val shard_for : t -> string -> int
(** Override if present, else [hash tenant mod shards]. *)

val shard_for_sub : t -> string -> off:int -> len:int -> int
(** {!shard_for} of a tenant slice; allocation-free when the override
    table is empty (the hot path). *)

val parse_overrides : string -> ((string * int) list, string) result
(** Parse an override file: one [TENANT=SHARD] per line, [#] comments
    and blank lines ignored, whitespace trimmed.  Total — any byte
    string yields [Ok] or [Error reason].  Shard-range validation
    happens in {!create}, where the shard count is known. *)

val default_tenant : string
(** [""] — the tenant of an arrival line with no [tenant] field. *)
