(** Durable serve snapshots: what survives a [kill -9].

    A snapshot is a {e cheap equality token}, not the engine state: the
    journal (the decision output file) already determines the state by
    deterministic replay, in the spirit of [Resilient.checkpoint], so
    the snapshot only records the cursor (how many decision lines were
    durable when it was taken), the running counters, and the engine's
    MD5 state digest to verify the replay against.  Resume never
    {e needs} a snapshot — the journal alone suffices — but with one it
    can prove the replayed state matches the crashed process bit-for-bit
    before emitting a single new line.

    Durability protocol ({!save}): write to [path ^ ".tmp"], rename over
    [path] (atomic on POSIX), after first rotating any existing [path]
    to [path ^ ".prev"].  {!load} tries [path] then falls back to the
    previous generation, so a crash {e during} a snapshot write never
    loses crash safety — at worst it costs one cadence of extra replay.
    The container format (magic, version, length prefix, digest trailer)
    is {!Wire}'s. *)

type t = {
  algo : string;  (** serve portfolio name *)
  cursor : int;  (** decision lines durable when the snapshot was cut *)
  placed : int;
  rejected : int;
  skipped : int;
  bins_ever : int;
  shed_transitions : int;
  coarsen_transitions : int;
  reject_transitions : int;
  engine_digest : string;  (** {!Stream_engine.digest} at [cursor] *)
}

type generation = Current | Previous

type error =
  | Missing of string
  | Unreadable of { path : string; cause : string }
      (** [cause] renders the wire corruption or payload defect,
          digests included. *)

val error_to_string : error -> string

val to_payload : t -> string
(** The versioned [k=v] text payload (before {!Wire.encode}). *)

val of_payload : string -> (t, string) result
(** Total inverse of {!to_payload}. *)

val save : path:string -> t -> unit
(** Rotate-then-rename durable write (see the preamble).
    @raise Sys_error if the filesystem says no. *)

val load : path:string -> (t * generation, error) result
(** Read and verify [path]; on any defect fall back to [path ^ ".prev"].
    The error reported is the {e current} generation's (the fallback's
    only when the current file is missing outright). *)
