open Dbp_core

let[@dbp.total] parse line =
  match Json_lite.parse_object line with
  | Error e -> Error e
  | Ok fields -> (
      let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
      let* id = Json_lite.int_field fields "id" in
      let* size = Json_lite.num_field fields "size" in
      let* arrival = Json_lite.num_field fields "arrival" in
      let* departure = Json_lite.num_field fields "departure" in
      match Item.make ~id ~size ~arrival ~departure with
      | item -> Ok item
      | exception Invalid_argument msg -> Error msg)

let render ?tenant item =
  let tenant_field =
    match tenant with
    | None -> ""
    | Some t -> Printf.sprintf ",\"tenant\":\"%s\"" (Json_lite.escape t)
  in
  Printf.sprintf "{\"id\":%d,\"size\":%s,\"arrival\":%s,\"departure\":%s%s}"
    (Item.id item)
    (Json_lite.fmt_num (Item.size item))
    (Json_lite.fmt_num (Item.arrival item))
    (Json_lite.fmt_num (Item.departure item))
    tenant_field

(* ---- the zero-alloc parse path ---------------------------------------- *)

(* [parse_into] re-implements exactly the grammar of [parse] (i.e. of
   Json_lite.parse_object + the four field checks + Item.make) as a
   single in-place scan: no field list, no per-key Buffer, no value
   boxes.  The differential qcheck suite feeds both parsers arbitrary
   byte strings and asserts Ok/Error agreement with bit-equal items, so
   any drift between the two is a test failure, not a silent fork.

   Remaining allocations per well-formed line: one short substring per
   number token (float_of_string needs a real string), its boxed float,
   and the Item.t itself — measured by the `bench serve` allocation
   microbench and gated there.  Everything else is engineered out: the
   scanners are top-level functions (no per-call closures), string
   slices and parsed numbers come back through scratch out-params (no
   per-key tuples, no [Some] boxes, no boxed float returns), and the
   number accumulators live in an all-float record whose flat
   representation makes stores unboxed. *)

(* All-float record: stores write the double in place, no minor-heap
   box per assignment. *)
type nums = {
  mutable nm_val : float;  (* [num] out-param *)
  mutable nm_id : float;
  mutable nm_size : float;
  mutable nm_arrival : float;
  mutable nm_departure : float;
}

type scratch = {
  mutable s_line : string;  (* the line the slices below point into *)
  mutable s_pos : int;  (* scan cursor *)
  mutable s_item : Item.t;
  mutable s_tenant_off : int;
  mutable s_tenant_len : int;
  mutable s_tenant_esc : bool;  (* slice contains JSON escapes *)
  (* [scan_string] out-params: content slice of the last string token *)
  mutable s_str_off : int;
  mutable s_str_len : int;
  mutable s_str_esc : bool;
  mutable s_seen : int;  (* known-key bitmask *)
  mutable s_unknown : string list;  (* decoded unknown keys (cold path) *)
  s_nums : nums;
}

let dummy_item = Item.make ~id:0 ~size:1. ~arrival:0. ~departure:1.

let scratch () =
  {
    s_line = "";
    s_pos = 0;
    s_item = dummy_item;
    s_tenant_off = 0;
    s_tenant_len = 0;
    s_tenant_esc = false;
    s_str_off = 0;
    s_str_len = 0;
    s_str_esc = false;
    s_seen = 0;
    s_unknown = [];
    s_nums =
      { nm_val = 0.; nm_id = 0.; nm_size = 0.; nm_arrival = 0.; nm_departure = 0. };
  }

let item sc = sc.s_item

let tenant sc =
  if sc.s_tenant_len = 0 then Router.default_tenant
  else if not sc.s_tenant_esc then
    String.sub sc.s_line sc.s_tenant_off sc.s_tenant_len
  else begin
    (* Escaped tenants are the cold path; decode through a buffer with
       the same escape table the generic parser uses. *)
    let buf = Buffer.create sc.s_tenant_len in
    let i = ref sc.s_tenant_off in
    let stop = sc.s_tenant_off + sc.s_tenant_len in
    while !i < stop do
      (match sc.s_line.[!i] with
      | '\\' when !i + 1 < stop ->
          (match sc.s_line.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | c -> Buffer.add_char buf c);
          incr i
      | c -> Buffer.add_char buf c);
      incr i
    done;
    Buffer.contents buf
  end

let shard_for router sc =
  if sc.s_tenant_len = 0 || sc.s_tenant_esc then
    Router.shard_for router (tenant sc)
  else
    Router.shard_for_sub router sc.s_line ~off:sc.s_tenant_off
      ~len:sc.s_tenant_len

exception Fail of string

let fail at reason = raise (Fail (Printf.sprintf "%s at byte %d" reason at))

(* Known-key bitmask slots. *)
let k_id = 1
let k_size = 2
let k_arrival = 4
let k_departure = 8
let k_tenant = 16

(* The scanners below are top-level (not closures inside [parse_into])
   so the hot path allocates no closure environments; they communicate
   through the scratch out-params instead of returned tuples. *)

let skip_ws sc n =
  let line = sc.s_line in
  while sc.s_pos < n && Json_lite.is_ws line.[sc.s_pos] do
    sc.s_pos <- sc.s_pos + 1
  done

let expect sc n c what =
  if sc.s_pos < n && Char.equal sc.s_line.[sc.s_pos] c then
    sc.s_pos <- sc.s_pos + 1
  else fail sc.s_pos ("expected " ^ what)

(* Scan a JSON string without building it: validates the same escape
   set, leaves (content_off, content_len, has_escapes) in
   [s_str_off]/[s_str_len]/[s_str_esc]. *)
let rec scan_string_body sc n =
  if sc.s_pos >= n then fail sc.s_pos "unterminated string"
  else
    match sc.s_line.[sc.s_pos] with
    | '"' -> sc.s_pos <- sc.s_pos + 1
    | '\\' ->
        if sc.s_pos + 1 >= n then fail sc.s_pos "unterminated escape"
        else begin
          (match sc.s_line.[sc.s_pos + 1] with
          | '"' | '\\' | '/' | 'n' | 't' | 'r' | 'b' | 'f' -> ()
          | _ -> fail sc.s_pos "unsupported escape");
          sc.s_str_esc <- true;
          sc.s_pos <- sc.s_pos + 2;
          scan_string_body sc n
        end
    | _ ->
        sc.s_pos <- sc.s_pos + 1;
        scan_string_body sc n

let scan_string sc n =
  expect sc n '"' "'\"'";
  let start = sc.s_pos in
  sc.s_str_esc <- false;
  scan_string_body sc n;
  sc.s_str_off <- start;
  sc.s_str_len <- sc.s_pos - 1 - start

let decode_slice sc off len =
  let line = sc.s_line in
  let buf = Buffer.create len in
  let i = ref off in
  while !i < off + len do
    (match line.[!i] with
    | '\\' when !i + 1 < off + len ->
        (match line.[!i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | c -> Buffer.add_char buf c);
        incr i
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

(* Leaves the parsed value in [s_nums.nm_val] — an unboxed store, where
   returning the float would box it at every call. *)
let parse_number sc n =
  let line = sc.s_line in
  let start = sc.s_pos in
  while sc.s_pos < n && Json_lite.is_num_char line.[sc.s_pos] do
    sc.s_pos <- sc.s_pos + 1
  done;
  if sc.s_pos = start then fail start "expected a value";
  let tok = String.sub line start (sc.s_pos - start) in
  match float_of_string tok with
  | v -> sc.s_nums.nm_val <- v
  | exception Failure _ -> fail start ("bad number " ^ String.escaped tok)

let skip_word sc n w =
  let l = String.length w in
  if
    sc.s_pos + l <= n
    && String.equal (String.sub sc.s_line sc.s_pos l) w
  then sc.s_pos <- sc.s_pos + l
  else fail sc.s_pos "expected a value"

(* Validate-and-skip any value; used for unknown keys.  Returns
   nothing — only the syntax check matters. *)
let skip_value sc n =
  if sc.s_pos >= n then fail sc.s_pos "expected a value"
  else
    match sc.s_line.[sc.s_pos] with
    | '"' -> scan_string sc n
    | 't' -> skip_word sc n "true"
    | 'f' -> skip_word sc n "false"
    | 'n' -> skip_word sc n "null"
    | '{' | '[' -> fail sc.s_pos "nested values unsupported"
    | _ -> parse_number sc n

let num_value sc n key =
  if sc.s_pos >= n then fail sc.s_pos "expected a value"
  else
    match sc.s_line.[sc.s_pos] with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> parse_number sc n
    | '"' | 't' | 'f' | 'n' ->
        skip_value sc n;
        fail sc.s_pos (Printf.sprintf "field %S is not a number" key)
    | '{' | '[' -> fail sc.s_pos "nested values unsupported"
    | _ -> fail sc.s_pos "expected a value"

let rec bytes_eq line off name i len =
  i >= len
  || (Char.equal line.[off + i] name.[i] && bytes_eq line off name (i + 1) len)

(* Raw-slice comparison against a known key name; keys containing
   escapes can never decode to a known name (the escape set produces
   no letters), so raw bytes suffice. *)
let slice_is sc off len esc name =
  (not esc)
  && len = String.length name
  && bytes_eq sc.s_line off name 0 len

let rec parse_fields sc n =
  skip_ws sc n;
  scan_string sc n;
  let koff = sc.s_str_off and klen = sc.s_str_len and kesc = sc.s_str_esc in
  let known =
    if slice_is sc koff klen kesc "id" then k_id
    else if slice_is sc koff klen kesc "size" then k_size
    else if slice_is sc koff klen kesc "arrival" then k_arrival
    else if slice_is sc koff klen kesc "departure" then k_departure
    else if slice_is sc koff klen kesc "tenant" then k_tenant
    else 0
  in
  if known <> 0 then begin
    if sc.s_seen land known <> 0 then fail sc.s_pos "duplicate key";
    sc.s_seen <- sc.s_seen lor known
  end
  else begin
    (* Unknown keys are the cold path: decode for exact duplicate
       semantics (escaped spellings of the same key collide, as
       they do in the generic parser). *)
    let key = decode_slice sc koff klen in
    if List.mem key sc.s_unknown then fail sc.s_pos ("duplicate key " ^ key);
    sc.s_unknown <- key :: sc.s_unknown
  end;
  skip_ws sc n;
  expect sc n ':' "':'";
  skip_ws sc n;
  (if known = k_id then begin
     num_value sc n "id";
     sc.s_nums.nm_id <- sc.s_nums.nm_val
   end
   else if known = k_size then begin
     num_value sc n "size";
     sc.s_nums.nm_size <- sc.s_nums.nm_val
   end
   else if known = k_arrival then begin
     num_value sc n "arrival";
     sc.s_nums.nm_arrival <- sc.s_nums.nm_val
   end
   else if known = k_departure then begin
     num_value sc n "departure";
     sc.s_nums.nm_departure <- sc.s_nums.nm_val
   end
   else if known = k_tenant then begin
     if sc.s_pos < n && Char.equal sc.s_line.[sc.s_pos] '"' then begin
       scan_string sc n;
       sc.s_tenant_off <- sc.s_str_off;
       sc.s_tenant_len <- sc.s_str_len;
       sc.s_tenant_esc <- sc.s_str_esc
     end
     else
       (* A non-string tenant routes as the default tenant, like a
          line with no tenant at all — [parse] ignores the field
          entirely, so agreement only needs the syntax check. *)
       skip_value sc n
   end
   else skip_value sc n);
  skip_ws sc n;
  if sc.s_pos < n && Char.equal sc.s_line.[sc.s_pos] ',' then begin
    sc.s_pos <- sc.s_pos + 1;
    parse_fields sc n
  end
  else expect sc n '}' "',' or '}'"

let require sc mask name =
  if sc.s_seen land mask = 0 then
    fail sc.s_pos (Printf.sprintf "missing field %S" name)

let[@dbp.total] parse_into sc line =
  let n = String.length line in
  sc.s_line <- line;
  sc.s_pos <- 0;
  sc.s_tenant_off <- 0;
  sc.s_tenant_len <- 0;
  sc.s_tenant_esc <- false;
  sc.s_seen <- 0;
  sc.s_unknown <- [];
  match
    skip_ws sc n;
    expect sc n '{' "'{'";
    skip_ws sc n;
    if sc.s_pos < n && Char.equal line.[sc.s_pos] '}' then
      sc.s_pos <- sc.s_pos + 1
    else parse_fields sc n;
    skip_ws sc n;
    if sc.s_pos <> n then fail sc.s_pos "trailing bytes after object";
    require sc k_id "id";
    require sc k_size "size";
    require sc k_arrival "arrival";
    require sc k_departure "departure";
    if
      not
        (Float.is_integer sc.s_nums.nm_id
        && Float.abs sc.s_nums.nm_id <= 4503599627370496.)
    then fail sc.s_pos "field \"id\" is not an integer"
  with
  | exception Fail msg -> Error msg
  | () -> (
      match
        Item.make
          ~id:(int_of_float sc.s_nums.nm_id)
          ~size:sc.s_nums.nm_size ~arrival:sc.s_nums.nm_arrival
          ~departure:sc.s_nums.nm_departure
      with
      | it ->
          sc.s_item <- it;
          Ok ()
      | exception Invalid_argument msg -> Error msg)
