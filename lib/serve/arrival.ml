open Dbp_core

let[@dbp.total] parse line =
  match Json_lite.parse_object line with
  | Error e -> Error e
  | Ok fields -> (
      let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
      let* id = Json_lite.int_field fields "id" in
      let* size = Json_lite.num_field fields "size" in
      let* arrival = Json_lite.num_field fields "arrival" in
      let* departure = Json_lite.num_field fields "departure" in
      match Item.make ~id ~size ~arrival ~departure with
      | item -> Ok item
      | exception Invalid_argument msg -> Error msg)

let render item =
  Printf.sprintf "{\"id\":%d,\"size\":%s,\"arrival\":%s,\"departure\":%s}"
    (Item.id item)
    (Json_lite.fmt_num (Item.size item))
    (Json_lite.fmt_num (Item.arrival item))
    (Json_lite.fmt_num (Item.departure item))
