(** The [dbp serve] process shell: every byte of real IO in one module.

    Everything decision-shaped lives in {!Session}; the daemon moves
    lines between the input (stdin, a file, or a Unix-domain socket
    server), the durable output/journal file, the snapshot files and the
    metrics sink.  This module is the {e only} place in the tree allowed
    to use Unix socket/file-descriptor/signal APIs (lint rule R9) — the
    confinement that keeps every other library pure and testable.

    Operational behaviour:
    - Decision lines are flushed before any snapshot is cut, preserving
      the invariant snapshot cursor <= durable journal lines.
    - On [resume]: a torn final output line (the [kill -9] landed
      mid-write) is truncated away, the journal is streamed back through
      the session's replay mode, and only then does live output append.
    - [SIGUSR1] dumps the metrics registry to [metrics_out] between
      lines; so does end-of-stream.  SIGINT/SIGTERM in socket mode stop
      the accept loop cleanly (final snapshot included).
    - [crash_after] hard-kills the process ([SIGKILL] to self) after
      that many emitted lines — the crash-injection hook the check.sh
      smoke and the property tests use to make "kill at a random point"
      reproducible.
    - [throttle_us] sleeps between arrivals so an external killer can
      reliably land mid-stream. *)

type input =
  | Stdin
  | In_file of string
  | In_socket of string  (** Unix-domain socket path; daemon binds it *)

val version : string
(** The build version advertised by the [dbp_serve_build_info] gauge
    (and the CLI's [--version]). *)

type config = {
  input : input;
  output : string;  (** decision/journal path; ["-"] = stdout (no resume) *)
  snapshot_path : string option;
  resume : bool;
  metrics_out : string option;
      (** [Some "-"] = stdout; [.json] suffix switches format *)
  trace_out : string option;  (** JSONL decision trace (shed under load) *)
  span_sample : int;
      (** sample every N-th arrival into a latency span (0 = off);
          deterministic, seq-keyed — see {!Dbp_obs.Span} *)
  span_out : string option;  (** JSONL span log (needs [span_sample]) *)
  span_ring : int;  (** in-memory span ring capacity *)
  throttle_us : int;
  crash_after : int option;
  max_arrivals : int option;  (** stop after this many input lines *)
  log : string -> unit;  (** operator chatter; the CLI points it at stderr *)
}

val default_config : config
(** stdin -> stdout, no snapshots, no resume, silent log. *)

type stats = {
  lines : int;
  emitted : int;  (** decision lines written by {e this} process *)
  placed : int;
  rejected : int;
  skipped : int;
  replayed : int;  (** journal entries consumed during resume *)
  snapshots : int;
  resumed_from : string option;  (** description of the snapshot used *)
}

val run : config -> Session.config -> (stats, string) result
(** Run to end-of-input (or a fatal).  [Error] is a rendered
    {!Session.fatal}, snapshot-load failure, or configuration defect;
    the CLI prints it and exits non-zero. *)

(** {2 Journal recovery plumbing} (shared with the sharded daemon,
    {!Shard}, which applies them to each journal segment) *)

val truncate_torn_tail : string -> int
(** Truncate a torn final line (no trailing newline) off the journal
    file; returns the number of bytes cut.  A [SIGKILL] can land
    mid-write; everything up to the previous newline is a complete,
    trustworthy prefix. *)

val journal_reader : string -> unit -> (Decision.t, string) result option
(** Stream the (already truncated) journal back one parsed entry per
    pull — [None] at end of file — so resume memory stays O(open jobs),
    never O(journal). *)

val make_spans :
  config ->
  ?metrics:Dbp_obs.Metrics.t ->
  shards:int ->
  unit ->
  Dbp_obs.Span.t * out_channel option
(** Build the span recorder [span_sample]/[span_out]/[span_ring] ask
    for ({!Dbp_obs.Span.disabled} when sampling is off), plus the
    [--span-out] channel the caller must close at teardown. *)
