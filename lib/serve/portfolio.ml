open Dbp_online

let algorithms () =
  [
    ("first-fit", Any_fit.first_fit);
    ("best-fit", Any_fit.best_fit);
    ("worst-fit", Any_fit.worst_fit);
    ("next-fit", Any_fit.next_fit);
    ("hybrid-ff", Hybrid_first_fit.make ());
    ("cbdt-ff", Classify_departure.make ~rho:4. ());
    ("cbd-ff", Classify_duration.make ~alpha:2. ());
  ]

let names () = List.map fst (algorithms ())
let by_name name = List.assoc_opt name (algorithms ())
