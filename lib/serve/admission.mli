(** The three-rung graceful-degradation ladder.

    The daemon measures {e queue depth} — arrivals read but not yet
    decided (socket mode: complete lines buffered behind the one being
    processed) — and compares it against three watermarks.  Each rung
    strictly widens the previous one's measures:

    + {b Shedding} ([depth >= shed]): decision tracing is detached —
      the observer is the one per-event cost that serves no placement.
    + {b Coarsening} ([depth >= coarsen]): the snapshot cadence is
      multiplied by the configured factor, trading restart latency for
      throughput.
    + {b Rejecting} ([depth >= reject]): admission control turns new
      arrivals away with structured [{"rejected":"overload"}] lines
      instead of queueing without bound.

    Rungs are a pure function of the instantaneous depth (no
    hysteresis — the watermarks are orders of magnitude apart, so
    flapping costs an observer toggle, not correctness), and every
    transition is counted in the metrics registry (DESIGN.md
    section 14). *)

type rung = Normal | Shedding | Coarsening | Rejecting

type watermarks = { shed : int; coarsen : int; reject : int }
(** Queue depths at which each rung engages; must satisfy
    [0 < shed <= coarsen <= reject]. *)

val default : watermarks
(** [{ shed = 1_024; coarsen = 8_192; reject = 65_536 }]. *)

val validate : watermarks -> unit
(** @raise Invalid_argument when the ordering above is violated. *)

val rung_for : watermarks -> depth:int -> rung

val rung_name : rung -> string
(** ["normal" | "shedding" | "coarsening" | "rejecting"]. *)

val rung_index : rung -> int
(** 0..3, monotone in severity. *)
