(** A total, flat, single-line JSON object codec for the serve wire
    protocols.

    The repo deliberately carries no JSON dependency; the streaming
    daemon's line formats (arrivals in, decisions out) are flat objects
    of numbers, strings and booleans, so this hand-rolled scanner covers
    exactly that subset.  Two properties matter more than generality:

    - {b Totality}: {!parse_object} never raises, whatever the input —
      embedded NUL bytes, truncated UTF-8, multi-megabyte garbage.  The
      malformed-input contract of [dbp serve] (skip and count bad lines)
      rests on this, and the qcheck fuzz suite feeds it arbitrary byte
      strings to prove it.
    - {b Byte-stable rendering}: {!fmt_num} renders integral floats bare
      and everything else with enough digits ([%.17g]) to round-trip
      exactly, so a rendered line re-parses to the very same floats —
      the crash-resume replay depends on decision lines being exact.

    Nested arrays/objects are rejected as malformed (no arrival or
    decision line ever contains one). *)

type value =
  | Num of float
  | Str of string
  | Bool of bool
  | Null

val parse_object : string -> ((string * value) list, string) result
(** Parse one [{"key":value,...}] object covering the whole (whitespace
    trimmed) input.  Fields come back in input order; duplicate keys are
    an error.  Never raises. *)

val field : (string * value) list -> string -> value option

val num_field : (string * value) list -> string -> (float, string) result
(** The named field as a number, or an error naming what went wrong. *)

val int_field : (string * value) list -> string -> (int, string) result
(** {!num_field} restricted to exactly-representable integers. *)

val fmt_num : float -> string
(** Integral floats bare ([%.0f]), others [%.17g]: shortest rendering
    that still round-trips bit-exactly through {!parse_object}. *)

val escape : string -> string
(** JSON string-literal escaping (quotes, backslash, control bytes). *)

val is_ws : char -> bool
(** The whitespace class {!parse_object} skips.  Exposed so the
    allocation-free scanner in [Arrival.parse_into] shares the exact
    character classes of this parser instead of forking them. *)

val is_num_char : char -> bool
(** The number-token class {!parse_object} scans before handing the
    token to [float_of_string]. *)
