(* The dbp analyze offline reporter (see the interface).  Pure text in,
   text out: the CLI reads the files, this module never touches IO, the
   clock or any other nondeterminism source — it is on the R12 target
   list precisely because its contract is "same inputs, same bytes". *)

module Hdr = Dbp_obs.Hdr
module Sp = Dbp_obs.Span

type input = {
  spans : string list;
  journals : (string * string list) list;
  arrivals : string list option;
  time_buckets : int;
}

let n_phases = Array.length Sp.phases

(* ---- span rows -------------------------------------------------------- *)

type row = {
  sr_shard : int;
  sr_depth : int;
  sr_t : float;
  sr_durs : float option array;  (* one slot per phase, pipeline order *)
}

let parse_row line =
  match Json_lite.parse_object line with
  | Error _ -> None
  | Ok fields -> (
      match
        ( Json_lite.int_field fields "shard",
          Json_lite.int_field fields "depth",
          Json_lite.num_field fields "t" )
      with
      | Ok sr_shard, Ok sr_depth, Ok sr_t ->
          let sr_durs =
            Array.map
              (fun p ->
                match Json_lite.field fields (Sp.phase_name p) with
                | Some (Json_lite.Num v) when Float.is_finite v && v >= 0. ->
                    Some v
                | _ -> None)
              Sp.phases
          in
          Some { sr_shard; sr_depth; sr_t; sr_durs }
      | _ -> None)

(* ---- journals --------------------------------------------------------- *)

type job = { j_size : float; j_arrival : float; j_departure : float }

(* A bin-usage episode: open instant and the latest departure seen. *)
type episode = { e_open : float; mutable e_close : float }

let cmp_interval (a1, b1) (a2, b2) =
  match Float.compare a1 a2 with 0 -> Float.compare b1 b2 | c -> c

type journal_stats = {
  js_name : string;
  js_placed : int;
  js_rejected : int;
  js_malformed : int;
  js_unmatched : int;  (* placed jobs absent from the arrivals input *)
  js_episodes : (float * float) list;  (* (open, close), completed *)
  js_intervals : (float * float) list;  (* placed jobs' [arrival, dep] *)
  js_demand : float;  (* sum of size * duration over placed jobs *)
}

let analyze_journal jobs (name, lines) =
  let placed = ref 0 and rejected = ref 0 and malformed = ref 0 in
  let unmatched = ref 0 in
  let open_bins : (int, episode) Hashtbl.t = Hashtbl.create 64 in
  let closed = ref [] in
  let intervals = ref [] in
  let demand = ref 0. in
  List.iter
    (fun line ->
      match Decision.parse line with
      | Error _ -> incr malformed
      | Ok (Decision.Rejected _) -> incr rejected
      | Ok (Decision.Placed { job; bin; opened; time; _ }) -> (
          incr placed;
          let close =
            match jobs with
            | None -> time
            | Some tbl -> (
                match Hashtbl.find_opt tbl job with
                | Some j ->
                    intervals := (j.j_arrival, j.j_departure) :: !intervals;
                    demand :=
                      !demand +. (j.j_size *. (j.j_departure -. j.j_arrival));
                    j.j_departure
                | None ->
                    incr unmatched;
                    time)
          in
          match Hashtbl.find_opt open_bins bin with
          | Some ep when not opened ->
              if close > ep.e_close then ep.e_close <- close
          | Some ep ->
              (* The bin id is being reused: the previous episode is
                 complete. *)
              closed := (ep.e_open, ep.e_close) :: !closed;
              Hashtbl.replace open_bins bin { e_open = time; e_close = close }
          | None ->
              (* opened=false with no live episode can only mean the
                 journal is a suffix; start the episode here anyway. *)
              Hashtbl.replace open_bins bin { e_open = time; e_close = close }))
    lines;
  Hashtbl.iter
    (fun _ ep -> closed := (ep.e_open, ep.e_close) :: !closed)
    open_bins;
  {
    js_name = name;
    js_placed = !placed;
    js_rejected = !rejected;
    js_malformed = !malformed;
    js_unmatched = !unmatched;
    js_episodes = List.sort cmp_interval !closed;
    js_intervals = List.sort cmp_interval !intervals;
    js_demand = !demand;
  }

let usage_of js =
  List.fold_left (fun acc (o, c) -> acc +. Float.max 0. (c -. o)) 0.
    js.js_episodes

(* Total length of the union of (sorted) intervals. *)
let union_span intervals =
  let rec go acc cur = function
    | [] -> ( match cur with None -> acc | Some (lo, hi) -> acc +. (hi -. lo))
    | (lo, hi) :: rest -> (
        match cur with
        | None -> go acc (Some (lo, hi)) rest
        | Some (clo, chi) ->
            if lo <= chi then go acc (Some (clo, Float.max chi hi)) rest
            else go (acc +. (chi -. clo)) (Some (lo, hi)) rest)
  in
  go 0. None intervals

let parse_arrivals lines =
  let tbl = Hashtbl.create 1024 in
  let malformed = ref 0 in
  List.iter
    (fun line ->
      match Arrival.parse line with
      | Error _ -> incr malformed
      | Ok item ->
          Hashtbl.replace tbl
            (Dbp_core.Item.id item)
            {
              j_size = Dbp_core.Item.size item;
              j_arrival = Dbp_core.Item.arrival item;
              j_departure = Dbp_core.Item.departure item;
            })
    lines;
  (tbl, !malformed)

(* ---- timelines -------------------------------------------------------- *)

(* Max concurrency per time bucket from (+1 at open, -1 at close)
   events; closes sort before opens at the same instant. *)
let concurrency_timeline ~buckets spans_of_events events =
  match spans_of_events with
  | None -> []
  | Some (t_min, t_max) ->
      let width = (t_max -. t_min) /. float_of_int buckets in
      if not (width > 0.) then []
      else begin
        let events =
          List.sort
            (fun (t1, d1) (t2, d2) ->
              match Float.compare t1 t2 with 0 -> Int.compare d1 d2 | c -> c)
            events
        in
        let per_bucket = Array.make buckets 0 in
        let level = ref 0 in
        let rec sweep evs b =
          if b >= buckets then ()
          else
            let b_end = t_min +. (width *. float_of_int (b + 1)) in
            (* max level over [b_start, b_end) = level entering the
               bucket joined with levels after each event inside it *)
            let rec inside evs acc =
              match evs with
              | (t, d) :: rest
                when t < b_end || (b = buckets - 1 && t <= t_max) ->
                  level := !level + d;
                  inside rest (max acc !level)
              | _ ->
                  per_bucket.(b) <- acc;
                  sweep evs (b + 1)
            in
            inside evs !level
        in
        sweep events 0;
        List.init buckets (fun b ->
            ( t_min +. (width *. float_of_int b),
              t_min +. (width *. float_of_int (b + 1)),
              per_bucket.(b) ))
      end

(* ---- rendering -------------------------------------------------------- *)

let fnum v = Printf.sprintf "%.4g" v

let add_line buf fmt = Printf.ksprintf (fun s ->
    Buffer.add_string buf s;
    Buffer.add_char buf '\n') fmt

let phase_table buf rows =
  let hdrs = Array.init n_phases (fun _ -> Hdr.create ()) in
  List.iter
    (fun r ->
      Array.iteri
        (fun i d -> match d with Some v -> Hdr.record hdrs.(i) v | None -> ())
        r.sr_durs)
    rows;
  add_line buf "-- phase latency (seconds) --";
  add_line buf "%-10s %8s %10s %10s %10s %10s" "phase" "count" "p50" "p95"
    "p99" "max";
  Array.iteri
    (fun i p ->
      let s = Hdr.snapshot hdrs.(i) in
      add_line buf "%-10s %8d %10s %10s %10s %10s" (Sp.phase_name p)
        (Hdr.count s)
        (fnum (Hdr.quantile s 0.50))
        (fnum (Hdr.quantile s 0.95))
        (fnum (Hdr.quantile s 0.99))
        (fnum (Hdr.max_value s)))
    Sp.phases

let shard_table buf rows =
  let shards =
    List.sort_uniq Int.compare (List.map (fun r -> r.sr_shard) rows)
  in
  if shards <> [] then begin
    add_line buf "";
    add_line buf "-- shards --";
    add_line buf "%-6s %8s %10s %11s %12s %12s %12s" "shard" "spans"
      "depth_max" "depth_mean" "mailbox_p50" "mailbox_p99" "mailbox_max";
    List.iter
      (fun k ->
        let mine = List.filter (fun r -> r.sr_shard = k) rows in
        let n = List.length mine in
        let depth_max =
          List.fold_left (fun a r -> max a r.sr_depth) 0 mine
        in
        let depth_sum =
          List.fold_left (fun a r -> a + r.sr_depth) 0 mine
        in
        let wait = Hdr.create () in
        List.iter
          (fun r ->
            match r.sr_durs.(Sp.phase_index Sp.Mailbox) with
            | Some v -> Hdr.record wait v
            | None -> ())
          mine;
        let s = Hdr.snapshot wait in
        add_line buf "%-6d %8d %10d %11.2f %12s %12s %12s" k n depth_max
          (float_of_int depth_sum /. float_of_int (max 1 n))
          (fnum (Hdr.quantile s 0.50))
          (fnum (Hdr.quantile s 0.99))
          (fnum (Hdr.max_value s)))
      shards
  end

let depth_timeline buf ~buckets rows =
  let shards =
    List.sort_uniq Int.compare (List.map (fun r -> r.sr_shard) rows)
  in
  match rows with
  | [] -> ()
  | _ ->
      let t_min =
        List.fold_left (fun a r -> Float.min a r.sr_t) Float.infinity rows
      in
      let t_max =
        List.fold_left (fun a r -> Float.max a r.sr_t) Float.neg_infinity rows
      in
      let width = (t_max -. t_min) /. float_of_int buckets in
      if width > 0. then begin
        add_line buf "";
        add_line buf "-- mailbox depth timeline (max depth per bucket) --";
        let header =
          String.concat ""
            (List.map (fun k -> Printf.sprintf " shard%-4d" k) shards)
        in
        add_line buf "%-24s%s" "bucket" header;
        for b = 0 to buckets - 1 do
          let b_lo = t_min +. (width *. float_of_int b) in
          let b_hi = t_min +. (width *. float_of_int (b + 1)) in
          let in_bucket r =
            r.sr_t >= b_lo && (r.sr_t < b_hi || b = buckets - 1)
          in
          let cells =
            String.concat ""
              (List.map
                 (fun k ->
                   let mine =
                     List.filter
                       (fun r -> r.sr_shard = k && in_bucket r)
                       rows
                   in
                   match mine with
                   | [] -> Printf.sprintf " %9s" "-"
                   | _ ->
                       Printf.sprintf " %9d"
                         (List.fold_left
                            (fun a r -> max a r.sr_depth)
                            0 mine))
                 shards)
          in
          add_line buf "%-24s%s"
            (Printf.sprintf "[%s,%s)" (fnum b_lo) (fnum b_hi))
            cells
        done
      end

let report input =
  let buf = Buffer.create 4096 in
  add_line buf "== dbp analyze ==";
  let rows, span_malformed =
    List.fold_left
      (fun (rows, bad) line ->
        match parse_row line with
        | Some r -> (r :: rows, bad)
        | None -> (rows, bad + 1))
      ([], 0) input.spans
  in
  let rows = List.rev rows in
  add_line buf "spans: %d parsed, %d malformed" (List.length rows)
    span_malformed;
  let jobs, arrivals_note =
    match input.arrivals with
    | None -> (None, None)
    | Some lines ->
        let tbl, bad = parse_arrivals lines in
        (Some tbl, Some (Hashtbl.length tbl, bad))
  in
  (match arrivals_note with
  | Some (n, bad) -> add_line buf "arrivals: %d parsed, %d malformed" n bad
  | None -> ());
  add_line buf "";
  phase_table buf rows;
  shard_table buf rows;
  depth_timeline buf ~buckets:input.time_buckets rows;
  (* ---- journals ---- *)
  let stats = List.map (analyze_journal jobs) input.journals in
  List.iter
    (fun js ->
      add_line buf "";
      add_line buf "-- journal %s --" js.js_name;
      add_line buf "decisions: %d placed, %d rejected, %d malformed%s"
        js.js_placed js.js_rejected js.js_malformed
        (if js.js_unmatched > 0 then
           Printf.sprintf " (%d placed jobs missing from arrivals)"
             js.js_unmatched
         else "");
      add_line buf "bins opened: %d" (List.length js.js_episodes);
      let events =
        List.concat_map (fun (o, c) -> [ (o, 1); (c, -1) ]) js.js_episodes
      in
      let span_bounds =
        match js.js_episodes with
        | [] -> None
        | eps ->
            let lo =
              List.fold_left (fun a (o, _) -> Float.min a o) Float.infinity
                eps
            in
            let hi =
              List.fold_left (fun a (_, c) -> Float.max a c)
                Float.neg_infinity eps
            in
            Some (lo, hi)
      in
      let timeline =
        concurrency_timeline ~buckets:input.time_buckets span_bounds events
      in
      if timeline <> [] then begin
        add_line buf "utilization timeline (open bins, max per bucket):";
        List.iter
          (fun (lo, hi, n) ->
            add_line buf "  %-22s %6d"
              (Printf.sprintf "[%s,%s)" (fnum lo) (fnum hi))
              n)
          timeline
      end)
    stats;
  (* ---- usage-time efficiency (the paper's objective) ---- *)
  add_line buf "";
  add_line buf "-- usage-time efficiency --";
  (match jobs with
  | None ->
      add_line buf
        "unavailable: pass the arrivals input to reconstruct job \
         departures (usage = sum over bins of close - open needs them)"
  | Some _ ->
      add_line buf "%-14s %7s %8s %6s %12s %12s %12s %8s" "algo" "placed"
        "rejected" "bins" "usage" "span_lb" "demand_lb" "ratio";
      List.iter
        (fun js ->
          let usage = usage_of js in
          let span_lb = union_span js.js_intervals in
          let ratio = if span_lb > 0. then usage /. span_lb else 0. in
          add_line buf "%-14s %7d %8d %6d %12s %12s %12s %8.3f" js.js_name
            js.js_placed js.js_rejected
            (List.length js.js_episodes)
            (fnum usage) (fnum span_lb) (fnum js.js_demand) ratio)
        stats);
  Buffer.contents buf
