(** The serve session: the daemon's entire decision logic, IO-free.

    A session consumes raw input lines and yields {!outcome}s; the
    daemon around it only moves bytes (sockets, files, signals).  That
    split is what makes the four robustness contracts unit-testable —
    the crash-resume property, the ladder, the skip counting all run
    in-process against this module.

    {2 The journal-replay resume model}

    Decision lines map 1:1 to well-formed arrivals, in input order.  So
    the output file {e is} the authoritative journal: to resume after a
    crash, re-feed the {e same input from the start} with the journal
    attached.  For each well-formed arrival the session pulls the next
    journal entry and {e applies} it instead of re-deciding:

    - [Placed] entries are driven through the engine (which must agree
      on the bin — any disagreement is {!Journal_divergence});
    - [Rejected] entries are re-applied as recorded, {e without}
      consulting the admission ladder — rejects depended on runtime
      queue depth, which replay must not need to reproduce.

    Replayed entries emit nothing (their lines are already durable).
    When the journal runs dry the session switches to live processing,
    and the decision stream continues byte-exactly where the crash cut
    it — for {e any} kill point, because a torn final line is truncated
    away by the daemon and its arrival simply replays as the first live
    one.  A {!checkpoint} (from a {!Snapshot.t}) additionally verifies
    the engine's state digest the moment the replay cursor passes it,
    turning "wrong inputs on resume" from silent divergence into a
    structured {!Checkpoint_divergence}.

    Live processing rejects (in this order) arrivals older than the
    engine clock ([out_of_order]), ids still active ([duplicate]), and
    anything at the ladder's top rung ([overload]); everything else goes
    to the algorithm.  Bit-fidelity of resume assumes the depth signal
    is reproduced — trivially true for file/stdin input, where depth is
    always 0. *)

module E := Dbp_online.Engine

type config = {
  algo_name : string;  (** portfolio key, recorded in snapshots *)
  algo : E.t;
  watermarks : Admission.watermarks;
  snapshot_every : int;  (** decision lines between snapshots; 0 = never *)
  coarsen_factor : int;  (** cadence multiplier at the Coarsening rung *)
}

val config :
  ?watermarks:Admission.watermarks ->
  ?snapshot_every:int ->
  ?coarsen_factor:int ->
  name:string ->
  E.t ->
  config
(** Defaults: {!Admission.default}, snapshots every 1000 lines,
    coarsen factor 8.  @raise Invalid_argument on bad watermarks or
    non-positive cadence/factor. *)

type checkpoint = { cursor : int; digest : string }

val checkpoint_of_snapshot : Snapshot.t -> checkpoint

type fatal =
  | Engine_error of E.error
  | Journal_divergence of { seq : int; expected : string; got : string }
      (** Replay disagreed with the journal: wrong input file, wrong
          algorithm, or broken determinism. *)
  | Journal_corrupt of { seq : int; cause : string }
      (** A journal line failed to parse (mid-file corruption; a torn
          {e last} line should have been truncated by the daemon). *)
  | Checkpoint_divergence of {
      cursor : int;
      expected_digest : string;
      actual_digest : string option;
          (** [None]: the journal ran out before [cursor] — snapshot
              and journal are from different runs. *)
    }

val fatal_to_string : fatal -> string

type outcome =
  | Emit of string  (** append this decision line to the output *)
  | Replayed  (** journal entry consumed; already durable, emit nothing *)
  | Skipped of string  (** malformed line skipped + counted; the reason *)
  | Fatal of fatal  (** unrecoverable; stop the stream *)

type t

val create :
  ?metrics:Dbp_obs.Metrics.t ->
  ?metric_labels:(string * string) list ->
  ?observer:Dbp_core.Observer.t ->
  ?span_clock:Dbp_obs.Clock.t ->
  ?journal:(unit -> (Decision.t, string) result option) ->
  ?checkpoint:checkpoint ->
  config ->
  t
(** [journal] pulls parsed decision lines lazily (so resume memory stays
    O(open jobs), not O(journal)); [None] from it ends replay mode.
    [metric_labels] (e.g. [[("shard","2")]]) are prepended to every
    metric this session registers, so sharded sessions sharing one
    registry stay distinguishable on [/metrics].  [span_clock] is the
    clock the session stamps span phases with (see {!feed}); it is
    {e injected} because this module is an R12 decision path and must
    never reach a wall-clock source itself. *)

val feed : t -> ?span:Dbp_obs.Span.ticket -> depth:int -> string -> outcome
(** Process one input line under the given queue depth (drives the
    ladder; pass 0 when there is no queue).  With an armed [span]
    ticket (and a [span_clock] at {!create}), stamps the [Parse],
    [Admission] and [Engine] phases; the default {!Dbp_obs.Span.null}
    costs one match per stamp site.  Spans never change outcomes,
    counters or emitted bytes. *)

val feed_item :
  t -> ?span:Dbp_obs.Span.ticket -> depth:int -> Dbp_core.Item.t -> outcome
(** {!feed} for a line already parsed elsewhere — the sharded daemon
    parses once on the router thread ([Arrival.parse_into]) and posts
    the item, not the line.  [feed line] is exactly
    [feed_item (parse line)] when the line is well-formed.  Stamps
    [Admission] and [Engine] ([Parse] belongs to whoever parsed). *)

val feed_skip : t -> ?span:Dbp_obs.Span.ticket -> depth:int -> string -> outcome
(** {!feed} for a line already known to be malformed: counts the line
    and the skip against {e this} session so per-shard skip counters add
    up to the unsharded run's.  Stamps [Admission] only. *)

val finish : t -> (unit, fatal) result
(** End of input: verifies any unconsumed checkpoint/journal suffix
    (either one means resume was given mismatched files). *)

val snapshot_due : t -> bool
(** True when at least the effective cadence (coarsened at rung >=
    Coarsening) of new decision lines is durable since the last
    snapshot.  Never during replay. *)

val take_snapshot : t -> Snapshot.t
(** Cut a snapshot at the current cursor ({e after} the daemon flushed
    the output through it) and reset the cadence clock. *)

(** {2 Introspection} (tests, metrics dumps, bench) *)

val seq : t -> int
val placed : t -> int
val rejected : t -> int
val skipped : t -> int
val replaying : t -> bool
val rung : t -> Admission.rung

val transitions : t -> int * int * int
(** (into Shedding, into Coarsening, into Rejecting) counts. *)

val engine : t -> Stream_engine.t
