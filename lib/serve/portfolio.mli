(** The serve algorithm portfolio: the deterministic engines the daemon
    can drive, keyed by the stable names snapshots and the CLI use.

    Tuned variants ([Classify_*.tuned]) need a materialised instance to
    pick their parameters from; a daemon has none, so the classify
    entries here use fixed defaults ([rho = 4], [alpha = 2]).  Randomised
    algorithms are excluded: crash-resume replays decisions through a
    fresh stepper, which only reproduces the stream when the algorithm
    is a pure function of the arrival/departure sequence. *)

val algorithms : unit -> (string * Dbp_online.Engine.t) list
(** Fresh engine values each call (steppers are stateful factories). *)

val names : unit -> string list

val by_name : string -> Dbp_online.Engine.t option
