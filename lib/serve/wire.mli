(** The snapshot container format: how a serve snapshot sits on disk.

    {[  offset  size  field
        0       7     magic   "DBPSNAP"
        7       1     version (0x01)
        8       4     payload length, big-endian u32
        12      n     payload bytes
        12+n    16    MD5 of the payload (raw bytes)              ]}

    Every way a write can tear is a distinct, detected condition:
    {!Truncated} (header or body cut short — carries expected vs actual
    byte counts), {!Bad_magic}/{!Bad_version} (not a snapshot at all, or
    a future format), {!Digest_mismatch} (body length right, bytes
    wrong — carries both digests, satisfying the "operators can tell
    torn write from wrong inputs from the error alone" contract).
    {!decode} never raises on any byte string; the corruption tests
    flip/cut bytes at every offset class. *)

type corruption =
  | Truncated of { expected : int; actual : int }
      (** Fewer bytes than the header (or the header's length field)
          promises. *)
  | Bad_magic
  | Bad_version of int
  | Digest_mismatch of { expected : string; actual : string }
      (** MD5 hex of what the trailer claims vs what the payload hashes
          to. *)
  | Trailing_garbage of { extra : int }
      (** Well-formed snapshot followed by [extra] unexplained bytes. *)

val corruption_to_string : corruption -> string

val version : int

val encode : string -> string
(** Wrap a payload: header + payload + digest trailer. *)

val decode : string -> (string, corruption) result
(** Unwrap and verify.  Total: never raises. *)
