(** The [dbp analyze] offline reporter: span logs + journals in, one
    deterministic text report out.

    This module is pure — the CLI reads the files and hands the lines
    over; nothing here touches the filesystem, the clock or any other
    nondeterminism source, so the module sits on the semantic-lint R12
    target list and the check.sh smoke byte-compares two runs of the
    same report.

    {2 Report sections}

    - {b spans}: parsed/malformed line counts from the [--span-out]
      JSONL log ({!Dbp_obs.Span}), then a per-phase latency table
      (count, p50, p95, p99, max — quantiles via {!Dbp_obs.Hdr}, so
      upper bucket bounds with relative error <= [Hdr.precision]).
    - {b shards}: per-shard span counts, mailbox depth max/mean and
      mailbox-wait quantiles, plus a max-depth-per-time-bucket timeline.
    - {b journals}: per journal ([--journal NAME=FILE]), decision
      counts, bin {e episodes} reconstructed by replaying [Placed]
      lines (an [opened=true] line on a live bin id closes the previous
      episode; an episode's close instant is the latest departure of
      the jobs it absorbed), and an open-bin utilization timeline.
    - {b usage-time efficiency}: the paper's objective, one row per
      journal: achieved usage ([sum] over episodes of close - open)
      against two lower bounds — [span_lb], the length of the union of
      the placed jobs' [arrival, departure] intervals (no schedule can
      use less server time while any job is live), and [demand_lb],
      [sum size * duration] — plus [ratio = usage / span_lb], the
      empirical competitive ratio.  Needs the arrivals input to learn
      departures; without it the section says so instead of guessing. *)

type input = {
  spans : string list;  (** [--span-out] JSONL lines; may be [[]] *)
  journals : (string * string list) list;
      (** (label, decision lines) — journal files, segments, or the
          sharded merged stream ({!Decision.parse} ignores the spliced
          [shard] field) *)
  arrivals : string list option;
      (** the input stream the journals were produced from; supplies
          job sizes and departures for the efficiency table *)
  time_buckets : int;  (** timeline resolution (rows per timeline) *)
}

val report : input -> string
(** Render the report.  Deterministic: equal inputs give equal bytes.
    Malformed lines are counted and skipped, never fatal. *)
