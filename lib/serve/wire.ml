let magic = "DBPSNAP"
let version = 1
let header_len = String.length magic + 1 + 4 (* magic, version, length *)
let digest_len = 16

type corruption =
  | Truncated of { expected : int; actual : int }
  | Bad_magic
  | Bad_version of int
  | Digest_mismatch of { expected : string; actual : string }
  | Trailing_garbage of { extra : int }

let corruption_to_string = function
  | Truncated { expected; actual } ->
      Printf.sprintf "snapshot truncated: %d bytes expected, %d present"
        expected actual
  | Bad_magic -> "not a dbp serve snapshot (bad magic)"
  | Bad_version v -> Printf.sprintf "unsupported snapshot version %d" v
  | Digest_mismatch { expected; actual } ->
      Printf.sprintf
        "snapshot payload digest %s disagrees with trailer %s (torn write?)"
        actual expected
  | Trailing_garbage { extra } ->
      Printf.sprintf "%d trailing bytes after the snapshot" extra

let encode payload =
  let n = String.length payload in
  let buf = Buffer.create (header_len + n + digest_len) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_string buf payload;
  Buffer.add_string buf (Digest.string payload);
  Buffer.contents buf

let[@dbp.total] decode s =
  let len = String.length s in
  if len < header_len then Error (Truncated { expected = header_len; actual = len })
  else if not (String.equal (String.sub s 0 (String.length magic)) magic) then
    Error Bad_magic
  else
    let v = Char.code s.[String.length magic] in
    if v <> version then Error (Bad_version v)
    else
      let off = String.length magic + 1 in
      let b i = Char.code s.[off + i] in
      let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      let expected = header_len + n + digest_len in
      if len < expected then Error (Truncated { expected; actual = len })
      else if len > expected then Error (Trailing_garbage { extra = len - expected })
      else
        let payload = String.sub s header_len n in
        let trailer = String.sub s (header_len + n) digest_len in
        let actual = Digest.string payload in
        if String.equal trailer actual then Ok payload
        else
          Error
            (Digest_mismatch
               {
                 expected = Digest.to_hex trailer;
                 actual = Digest.to_hex actual;
               })
