(** The incremental, bounded-memory online packing engine behind
    [dbp serve].

    The batch engines ([Dbp_online.Engine]) hold a whole instance and
    fold its event stream; a daemon cannot — it sees one arrival at a
    time and must run forever.  This engine keeps {e only} live state:

    - a hashtable of {b open} bins (closed bins are evicted the instant
      their last resident departs — index, levels, residents, all of it);
    - a min-heap of pending departures, one entry per {b active} job;
    - a doubly-linked open list in opening (index) order, so decide
      views materialise in O(open bins) without touching history.

    Resident memory is therefore O(open jobs), independent of how many
    arrivals the process has absorbed — the soak test in [bench serve]
    streams 10^6 arrivals under a hard major-heap ceiling to pin this.

    Decisions are {b bit-identical} to [Engine.run] on the same arrival
    sequence: views carry the same index/opened_at/level the reference
    engine computes (level arithmetic mirrored operation-for-operation),
    departures drain before arrivals at equal times with the same
    (time, id) tie-break, and observer callbacks fire in the engine's
    documented order.  The serve differential suite runs every portfolio
    algorithm against [Engine.run] to enforce this.  The one deliberate
    divergence: a view's lazy [state] rebuilds the bin from its {e
    active} residents only (history is evicted), so algorithms that read
    departed items out of [state] — none in the serve portfolio — are
    out of contract.

    Arrivals must be fed in nondecreasing time order ({!arrive} raises
    [Invalid_argument] otherwise — {!Session} rejects out-of-order input
    before it gets here), and active ids must be unique (the session
    rejects duplicates). *)

open Dbp_core
module E := Dbp_online.Engine

type t

type placement = { bin : int; opened : bool }

val create : ?observer:Observer.t -> E.t -> t
(** A fresh engine driving a fresh plain stepper of the algorithm. *)

val set_observer : t -> Observer.t option -> unit
(** Swap the observer mid-stream (the shedding rung detaches it).
    Observation never influences decisions. *)

val arrive : t -> Item.t -> (placement, E.error) result
(** Drain every departure due at or before the item's arrival instant,
    then put the arrival to the algorithm and apply its decision.
    Structured errors are the algorithm's bugs, exactly as in
    [Engine.run_result].
    @raise Invalid_argument if time runs backwards. *)

val drain_until : t -> float -> unit
(** Process departures due [<= t] without an arrival (final flush). *)

val is_active : t -> int -> bool
(** Is a job with this id currently placed? *)

val digest : t -> string
(** MD5 hex over the live state (counters, open bins in index order,
    levels by bits, resident ids) — the equality token snapshots carry,
    in the spirit of [Resilient.checkpoint]. *)

(** {2 Counters} (monotone except the instantaneous two) *)

val bins_ever : t -> int
val placed : t -> int
val departed : t -> int
val open_bins : t -> int
val open_jobs : t -> int

val algo_name : t -> string
