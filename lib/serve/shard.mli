(** The sharded [dbp serve] daemon: shard-by-tenant scale-out over
    resident domains (DESIGN.md section 16).

    {2 Architecture}

    One router thread (the caller) reads input lines, parses each once
    with the zero-allocation path ([Arrival.parse_into]), routes it by
    tenant key ({!Router}), and posts the parsed item to one of [N]
    shard {e residents} — long-lived domains from the [Dbp_par.Pool]
    resident-mailbox mode, each owning a full unsharded stack: its own
    {!Session}, journal {e segment} ([output ^ ".shardK"]), snapshot
    file ([snapshot ^ ".shardK"]) and admission ladder fed by its own
    mailbox depth.  Shards share nothing; the only cross-domain traffic
    is the mailbox in and a result collector out.

    {2 Merge determinism}

    Every input line gets a global index at ingest; shards return one
    result per line; the main thread releases results strictly in that
    order into the {e merged} stream ([output]): each decision line with
    a [{"shard":K,] label spliced in.  The segments are the
    authoritative journals; the merged file is derived and rebuilt every
    run — on [--resume] the segments replay through each shard's session
    (digest-verified against its snapshot, torn tails truncated), and
    replayed entries re-emit their merged lines, so the rebuilt merged
    file is byte-identical to an uninterrupted run's.

    Determinism contract: with the same input, routes and shard count,
    segment [K] is byte-identical to an unsharded run over the
    router-filtered input for shard [K] (the bench asserts this).
    Changing the shard count or routes between run and resume is caught
    as journal/checkpoint divergence, not silently absorbed.

    {2 Ingest and metrics}

    Socket mode accepts {e multiple} concurrent clients ([select]-driven,
    non-blocking); a full shard mailbox blocks the router thread, which
    stops reading — per-client read backpressure, surfaced to the ladder
    as mailbox depth.  Decision echoes to clients are best-effort
    non-blocking: a client that stops reading loses echoes, never wedges
    the daemon.  With [metrics_port] set, a loopback HTTP/1.0 listener
    serves [/metrics] (Prometheus exposition: per-shard session series
    plus [dbp_pool_*] mailbox gauges) and [/healthz]. *)

type config = {
  base : Daemon.config;
      (** input/output/resume/snapshot/throttle/crash/budget/log — same
          meanings as unsharded, except [output] must be a file (the
          segment paths derive from it) and [crash_after] counts merged
          lines.  [trace_out] is ignored (logged).  [span_sample]/
          [span_out]/[span_ring] enable the per-arrival span pipeline:
          tickets are armed at ingest (gidx-keyed sampling), stamped
          Parse/Route on the router thread, Mailbox/Admission/Engine/
          Journal on the shard domain, Merge at sequencer release, and
          committed in merge order on the main thread
          ([dbp_serve_phase_seconds{phase,shard}] on [/metrics]). *)
  shards : int;
  routes : (string * int) list;
      (** tenant → shard pins (from [Router.parse_overrides]); win over
          the hash *)
  metrics_port : int option;  (** loopback HTTP listener; [0] = pick *)
}

val segment_path : string -> int -> string
(** [segment_path output k] = [output ^ ".shard" ^ k] — shard [k]'s
    journal segment. *)

val run : config -> Session.config -> (Daemon.stats, string) result
(** Run to end-of-input (or fatal/signal).  Counter semantics in the
    returned stats: [emitted] counts {e live} merged lines, [replayed]
    journal entries re-applied on resume, [skipped]/[placed]/[rejected]
    sum over shards. *)
