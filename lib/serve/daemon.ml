(* The serve process shell (see the interface).  This file is the one
   R9-exempt module: sockets, file descriptors and signals stay here. *)

type input = Stdin | In_file of string | In_socket of string

module Sp = Dbp_obs.Span

let version = "1.0.0"

type config = {
  input : input;
  output : string;
  snapshot_path : string option;
  resume : bool;
  metrics_out : string option;
  trace_out : string option;
  span_sample : int;
  span_out : string option;
  span_ring : int;
  throttle_us : int;
  crash_after : int option;
  max_arrivals : int option;
  log : string -> unit;
}

let default_config =
  {
    input = Stdin;
    output = "-";
    snapshot_path = None;
    resume = false;
    metrics_out = None;
    trace_out = None;
    span_sample = 0;
    span_out = None;
    span_ring = 1024;
    throttle_us = 0;
    crash_after = None;
    max_arrivals = None;
    log = ignore;
  }

type stats = {
  lines : int;
  emitted : int;
  placed : int;
  rejected : int;
  skipped : int;
  replayed : int;
  snapshots : int;
  resumed_from : string option;
}

(* ---- journal recovery ------------------------------------------------ *)

(* Truncate a torn final line (no trailing newline) off the journal:
   scan backwards for the last '\n' and cut everything after it.  A
   SIGKILL can land mid-[output_string]; everything up to the previous
   newline is a complete, trustworthy prefix.  Returns the bytes cut. *)
let truncate_torn_tail path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = Unix.lseek fd 0 Unix.SEEK_END in
      let chunk = 4096 in
      let buf = Bytes.create chunk in
      (* Offset just past the last newline in [0, upper), or 0. *)
      let rec find_cut upper =
        if upper = 0 then 0
        else
          let lo = max 0 (upper - chunk) in
          let len = upper - lo in
          ignore (Unix.lseek fd lo Unix.SEEK_SET);
          let got = Unix.read fd buf 0 len in
          let rec last_nl i =
            if i < 0 then None
            else if Char.equal (Bytes.get buf i) '\n' then Some i
            else last_nl (i - 1)
          in
          match last_nl (got - 1) with
          | Some i -> lo + i + 1
          | None -> find_cut lo
      in
      let cut = find_cut size in
      if cut < size then Unix.ftruncate fd cut;
      size - cut)

(* Stream the (already truncated) journal back one parsed entry per
   pull, so resume memory stays O(open jobs), never O(journal). *)
let journal_reader path =
  let ic = open_in_bin path in
  let done_ = ref false in
  fun () ->
    if !done_ then None
    else
      match input_line ic with
      | line -> Some (Decision.parse line)
      | exception End_of_file ->
          done_ := true;
          close_in ic;
          None

(* ---- metrics sink ----------------------------------------------------- *)

let dump_metrics cfg registry =
  match (cfg.metrics_out, registry) with
  | Some path, Some m ->
      let content =
        if path <> "-" && Filename.check_suffix path ".json" then
          Dbp_obs.Metrics.to_json m
        else Dbp_obs.Metrics.to_prometheus m
      in
      if String.equal path "-" then begin
        output_string stdout content;
        flush stdout
      end
      else begin
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc content)
      end
  | _ -> ()

(* Build the span recorder the config asks for (plus the --span-out
   channel to close at teardown).  Shared with the sharded daemon. *)
let make_spans cfg ?metrics ~shards () =
  if cfg.span_sample <= 0 then begin
    if Option.is_some cfg.span_out then
      cfg.log "serve: --span-out has no effect without --span-sample";
    (Sp.disabled, None)
  end
  else begin
    let oc = Option.map open_out cfg.span_out in
    let sink =
      Option.map
        (fun oc line ->
          output_string oc line;
          output_char oc '\n')
        oc
    in
    ( Sp.create ?metrics ?sink ~ring:cfg.span_ring ~sample:cfg.span_sample
        ~shards (),
      oc )
  end

(* ---- the drive loop (shared by all input flavours) -------------------- *)

exception Fatal_outcome of Session.fatal

type drive = {
  session : Session.t;
  out : out_channel;
  cfg : config;
  registry : Dbp_obs.Metrics.t option;
  health : Dbp_obs.Health.t option;
  spans : Sp.t;
  usr1 : bool ref;
  mutable d_lines : int;
  mutable d_emitted : int;
  mutable d_replayed : int;
  mutable d_snapshots : int;
  mutable d_last_emit : string option;  (* socket mode echoes this back *)
}

let save_snapshot d =
  match d.cfg.snapshot_path with
  | None -> ()
  | Some path ->
      (* Flush first: the snapshot cursor must never exceed the durable
         journal prefix. *)
      flush d.out;
      Snapshot.save ~path (Session.take_snapshot d.session);
      d.d_snapshots <- d.d_snapshots + 1

(* Feed one line; false when the [max_arrivals] budget is spent. *)
let drive_line d ~depth line =
  if !(d.usr1) then begin
    d.usr1 := false;
    Sp.export d.spans;
    dump_metrics d.cfg d.registry
  end;
  Option.iter Dbp_obs.Health.tick d.health;
  d.d_lines <- d.d_lines + 1;
  d.d_last_emit <- None;
  let tk = Sp.issue d.spans in
  Sp.set_depth tk depth;
  (* Only armed tickets go through [~span]: passing a value to the
     optional argument boxes a [Some] on every line, which the span
     bench's zero-alloc gate on the disabled path forbids. *)
  let outcome =
    if Sp.active tk then Session.feed d.session ~span:tk ~depth line
    else Session.feed d.session ~depth line
  in
  (match outcome with
  | Session.Fatal f -> raise (Fatal_outcome f)
  | Session.Skipped _ -> ()
  | Session.Replayed -> d.d_replayed <- d.d_replayed + 1
  | Session.Emit decision ->
      output_string d.out decision;
      output_char d.out '\n';
      Sp.stamp d.spans tk Sp.Journal;
      d.d_emitted <- d.d_emitted + 1;
      d.d_last_emit <- Some decision;
      (match d.cfg.crash_after with
      | Some n when d.d_emitted >= n ->
          (* Crash injection: a genuine SIGKILL, not an exit path — the
             journal is left exactly as the kernel saw it. *)
          flush d.out;
          Unix.kill (Unix.getpid ()) Sys.sigkill
      | _ -> ());
      if Session.snapshot_due d.session then save_snapshot d);
  Sp.commit d.spans tk;
  if d.cfg.throttle_us > 0 then
    Unix.sleepf (float_of_int d.cfg.throttle_us /. 1e6);
  match d.cfg.max_arrivals with Some n -> d.d_lines < n | None -> true

let drive_channel d ic =
  let rec loop () =
    match input_line ic with
    | line -> if drive_line d ~depth:0 line then loop ()
    | exception End_of_file -> ()
  in
  loop ()

(* Unix-domain socket server: single-threaded accept loop, one client
   at a time; decision lines echo back to the client as well as landing
   in the journal.  The ladder's queue depth = complete lines buffered
   behind the one being processed. *)
let drive_socket d path ~stop =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      d.cfg.log (Printf.sprintf "serve: listening on %s" path);
      let buf = Bytes.create 65536 in
      let budget = ref true in
      let echo client =
        match d.d_last_emit with
        | None -> ()
        | Some line ->
            let payload = Bytes.of_string (line ^ "\n") in
            let rec write_all off =
              if off < Bytes.length payload then
                match
                  Unix.write client payload off (Bytes.length payload - off)
                with
                | n -> write_all (off + n)
                | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()
            in
            write_all 0
      in
      while !budget && not !stop do
        match Unix.accept sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | client, _ ->
            Fun.protect
              ~finally:(fun () ->
                try Unix.close client with Unix.Unix_error _ -> ())
              (fun () ->
                let pending = Buffer.create 4096 in
                let connected = ref true in
                while !connected && !budget && not !stop do
                  match Unix.read client buf 0 (Bytes.length buf) with
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                  | 0 -> connected := false
                  | n ->
                      Buffer.add_subbytes pending buf 0 n;
                      let data = Buffer.contents pending in
                      Buffer.clear pending;
                      let rec complete_lines = function
                        | [ tail ] ->
                            (* Still-unterminated tail: keep buffering. *)
                            Buffer.add_string pending tail;
                            []
                        | l :: rest -> l :: complete_lines rest
                        | [] -> []
                      in
                      let lines =
                        complete_lines (String.split_on_char '\n' data)
                      in
                      let depth = ref (List.length lines) in
                      List.iter
                        (fun line ->
                          if !budget && not !stop then begin
                            decr depth;
                            if not (drive_line d ~depth:!depth line) then
                              budget := false;
                            echo client
                          end)
                        lines
                done)
      done)

(* ---- run -------------------------------------------------------------- *)

let run_inner cfg scfg =
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let* () =
    if cfg.resume && String.equal cfg.output "-" then
      Error "serve: --resume needs --output FILE (the output is the journal)"
    else Ok ()
  in
  (* Snapshot checkpoint, if resuming and one survives on disk. *)
  let* checkpoint, resumed_from =
    if not cfg.resume then Ok (None, None)
    else
      match cfg.snapshot_path with
      | None -> Ok (None, None)
      | Some path -> (
          match Snapshot.load ~path with
          | Ok (snap, gen) ->
              if not (String.equal snap.Snapshot.algo scfg.Session.algo_name)
              then
                Error
                  (Printf.sprintf
                     "serve: snapshot was cut by algorithm %s, not %s"
                     snap.Snapshot.algo scfg.Session.algo_name)
              else
                let where =
                  match gen with
                  | Snapshot.Current -> path
                  | Snapshot.Previous -> path ^ ".prev"
                in
                Ok
                  ( Some (Session.checkpoint_of_snapshot snap),
                    Some
                      (Printf.sprintf "%s (cursor %d)" where
                         snap.Snapshot.cursor) )
          | Error (Snapshot.Missing _) ->
              (* First run under --resume: nothing to verify against;
                 the journal alone still replays exactly. *)
              Ok (None, None)
          | Error e -> Error (Snapshot.error_to_string e))
  in
  let journal =
    if cfg.resume && Sys.file_exists cfg.output then begin
      let torn = truncate_torn_tail cfg.output in
      if torn > 0 then
        cfg.log
          (Printf.sprintf "serve: truncated %d torn bytes off %s" torn
             cfg.output);
      Some (journal_reader cfg.output)
    end
    else None
  in
  let* () =
    match (checkpoint, journal) with
    | Some { Session.cursor; _ }, None when cursor > 0 ->
        Error
          (Printf.sprintf
             "serve: snapshot cursor is %d but the journal %s is missing"
             cursor cfg.output)
    | _ -> Ok ()
  in
  let registry =
    match cfg.metrics_out with
    | Some _ -> Some (Dbp_obs.Metrics.create ())
    | None -> None
  in
  let health = Option.map Dbp_obs.Health.create registry in
  Option.iter
    (Dbp_obs.Health.set_build_info ~family:"dbp_serve_build_info" ~version)
    registry;
  let spans, span_oc = make_spans cfg ?metrics:registry ~shards:1 () in
  let trace_oc = Option.map open_out cfg.trace_out in
  let observer =
    Option.map
      (fun oc ->
        Dbp_obs.Trace.streaming_observer ~sink:(fun line ->
            output_string oc line;
            output_char oc '\n'))
      trace_oc
  in
  let span_clock = if Sp.enabled spans then Some (Sp.clock spans) else None in
  let session =
    Session.create ?metrics:registry ?observer ?span_clock ?journal
      ?checkpoint scfg
  in
  let out =
    if String.equal cfg.output "-" then stdout
    else if cfg.resume then
      open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 cfg.output
    else open_out_bin cfg.output
  in
  let usr1 = ref false in
  let prev_usr1 =
    Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> usr1 := true))
  in
  let stop = ref false in
  let d =
    {
      session;
      out;
      cfg;
      registry;
      health;
      spans;
      usr1;
      d_lines = 0;
      d_emitted = 0;
      d_replayed = 0;
      d_snapshots = 0;
      d_last_emit = None;
    }
  in
  let finish_up () =
    match Session.finish session with
    | Error f -> Error (Session.fatal_to_string f)
    | Ok () ->
        (* A final snapshot makes a clean shutdown resume with zero
           unverified replay. *)
        if Option.is_some cfg.snapshot_path && scfg.Session.snapshot_every > 0
        then save_snapshot d;
        Option.iter Dbp_obs.Health.tick health;
        Sp.export spans;
        dump_metrics cfg registry;
        Ok
          {
            lines = d.d_lines;
            emitted = d.d_emitted;
            placed = Session.placed session;
            rejected = Session.rejected session;
            skipped = Session.skipped session;
            replayed = d.d_replayed;
            snapshots = d.d_snapshots;
            resumed_from;
          }
  in
  let result =
    match
      match cfg.input with
      | Stdin -> drive_channel d stdin
      | In_file path ->
          let ic = open_in path in
          Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
              drive_channel d ic)
      | In_socket path ->
          let prev_int =
            Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
          and prev_term =
            Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
          in
          Fun.protect
            ~finally:(fun () ->
              Sys.set_signal Sys.sigint prev_int;
              Sys.set_signal Sys.sigterm prev_term)
            (fun () -> drive_socket d path ~stop)
    with
    | () -> finish_up ()
    | exception Fatal_outcome f -> Error (Session.fatal_to_string f)
  in
  Sys.set_signal Sys.sigusr1 prev_usr1;
  flush d.out;
  if not (String.equal cfg.output "-") then close_out d.out;
  Option.iter close_out trace_oc;
  Option.iter close_out span_oc;
  result

let run cfg scfg =
  match run_inner cfg scfg with
  | r -> r
  | exception Sys_error msg -> Error ("serve: " ^ msg)
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "serve: %s(%s): %s" fn arg (Unix.error_message e))
