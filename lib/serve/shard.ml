(* The sharded serve orchestrator (see the interface for the
   architecture).  R9-exempt like Daemon: sockets, file descriptors and
   signals are allowed here; everything decision-shaped stays in
   Session, everything routing-shaped in Router, and the only
   concurrency primitive is the resident mailbox from Dbp_par.Pool. *)

open Dbp_core
module M = Dbp_obs.Metrics
module Sp = Dbp_obs.Span
module Pool = Dbp_par.Pool

type config = {
  base : Daemon.config;
  shards : int;
  routes : (string * int) list;
  metrics_port : int option;
}

(* ---- messages --------------------------------------------------------- *)

(* Every input line gets a global index [gidx] and exactly one result,
   well-formed or not — the sequencer releases merged lines strictly in
   gidx order, so a gap would stall the stream.  Items cross domains as
   immutable records; the line string itself never does. *)

(* [span] is the arrival's latency-span ticket (Span.null when the
   arrival is unsampled): armed at ingest, stamped by the worker, handed
   back through the result so the sequencer commits it in merge order.
   Strict hand-off — the ticket is never visible to two domains at
   once. *)
type msg =
  | M_item of
      { gidx : int; client : int; depth : int; item : Item.t; span : Sp.ticket }
  | M_skip of
      { gidx : int; client : int; depth : int; reason : string;
        span : Sp.ticket }

type res = {
  r_gidx : int;
  r_client : int;
  r_merged : string option;  (* full merged line, shard label included *)
  r_live : bool;  (* decided by this run (false for replay re-emits) *)
  r_echo : string option;  (* decision line for the socket client *)
  r_fatal : string option;
  r_span : Sp.ticket;
}

(* ---- per-shard worker state (owned by the resident domain) ------------ *)

type worker = {
  w_idx : int;
  w_session : Session.t;
  w_clock : Dbp_obs.Clock.t;  (* span stamps on the resident domain *)
  w_seg : out_channel;
  w_snap_path : string option;
  w_last_pull : (Decision.t, string) result option ref;
      (* journal entry most recently consumed by replay *)
  w_prefix : string;  (* "{\"shard\":K," *)
  w_buf : Buffer.t;
  mutable w_replayed : int;
  mutable w_snapshots : int;
  mutable w_failed : bool;
}

(* Merged line = shard label spliced into the decision object:
   {"shard":K, + <decision line minus its leading brace>. *)
let merged_line w line =
  Buffer.clear w.w_buf;
  Buffer.add_string w.w_buf w.w_prefix;
  Buffer.add_substring w.w_buf line 1 (String.length line - 1);
  Buffer.contents w.w_buf

let maybe_snapshot w =
  if Session.snapshot_due w.w_session then
    match w.w_snap_path with
    | None -> ()
    | Some path ->
        (* Flush first: the snapshot cursor must never exceed the
           durable segment prefix. *)
        flush w.w_seg;
        Snapshot.save ~path (Session.take_snapshot w.w_session);
        w.w_snapshots <- w.w_snapshots + 1

let result ~gidx ~client ?merged ?(live = false) ?echo ?fatal
    ?(span = Sp.null) () =
  { r_gidx = gidx; r_client = client; r_merged = merged; r_live = live;
    r_echo = echo; r_fatal = fatal; r_span = span }

(* The resident handler: feed the shard's session, append to its
   segment, hand the sequencer one result per message.  After a fatal
   the worker keeps consuming (and acknowledging) messages so the poster
   never blocks on a full mailbox while the main loop is aborting. *)
let handle collector w msg =
  match msg with
  | _ when w.w_failed ->
      let gidx, client, span =
        match msg with
        | M_item { gidx; client; span; _ } | M_skip { gidx; client; span; _ }
          ->
            (gidx, client, span)
      in
      Pool.Collector.push collector (result ~gidx ~client ~span ())
  | M_skip { gidx; client; depth; reason; span } -> (
      Sp.mark w.w_clock span Sp.Mailbox;
      Sp.set_shard span w.w_idx;
      match Session.feed_skip w.w_session ~span ~depth reason with
      | Session.Skipped _ ->
          Pool.Collector.push collector (result ~gidx ~client ~span ())
      | Session.Fatal f ->
          w.w_failed <- true;
          Pool.Collector.push collector
            (result ~gidx ~client ~fatal:(Session.fatal_to_string f) ~span ())
      | Session.Emit _ | Session.Replayed ->
          (* feed_skip never emits or replays; treat drift as fatal. *)
          w.w_failed <- true;
          Pool.Collector.push collector
            (result ~gidx ~client
               ~fatal:"shard: feed_skip returned a decision outcome" ~span ()))
  | M_item { gidx; client; depth; item; span } -> (
      Sp.mark w.w_clock span Sp.Mailbox;
      Sp.set_shard span w.w_idx;
      match Session.feed_item w.w_session ~span ~depth item with
      | Session.Emit line ->
          output_string w.w_seg line;
          output_char w.w_seg '\n';
          Sp.mark w.w_clock span Sp.Journal;
          maybe_snapshot w;
          Pool.Collector.push collector
            (result ~gidx ~client ~merged:(merged_line w line) ~live:true
               ~echo:line ~span ())
      | Session.Replayed ->
          w.w_replayed <- w.w_replayed + 1;
          (* Reconstruct the merged line from the journal entry replay
             just consumed, so a resumed run rebuilds the merged stream
             byte-identically to an uninterrupted one. *)
          let merged =
            match !(w.w_last_pull) with
            | Some (Ok entry) -> Some (merged_line w (Decision.render entry))
            | Some (Error _) | None -> None
          in
          Pool.Collector.push collector
            (result ~gidx ~client ?merged ~span ())
      | Session.Fatal f ->
          w.w_failed <- true;
          Pool.Collector.push collector
            (result ~gidx ~client ~fatal:(Session.fatal_to_string f) ~span ())
      | Session.Skipped _ ->
          (* feed_item takes a parsed item; it cannot skip. *)
          w.w_failed <- true;
          Pool.Collector.push collector
            (result ~gidx ~client
               ~fatal:"shard: feed_item skipped a parsed item" ~span ()))

(* ---- paths ------------------------------------------------------------ *)

let segment_path output i = output ^ ".shard" ^ string_of_int i

let shard_snapshot_path snapshot_path i =
  Option.map (fun p -> p ^ ".shard" ^ string_of_int i) snapshot_path

(* ---- the run ---------------------------------------------------------- *)

let run cfg scfg =
  let b = cfg.base in
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let* () =
    if cfg.shards < 1 then Error "serve: --shards must be >= 1" else Ok ()
  in
  let* () =
    if String.equal b.Daemon.output "-" then
      Error "serve: sharded mode needs --output FILE (journal segments \
             derive from it)"
    else Ok ()
  in
  let* router =
    match Router.create ~overrides:cfg.routes ~shards:cfg.shards () with
    | r -> Ok r
    | exception Invalid_argument msg -> Error ("serve: " ^ msg)
  in
  if Option.is_some b.Daemon.trace_out then
    b.Daemon.log "serve: --trace-out is ignored in sharded mode";
  let registry =
    if Option.is_some b.Daemon.metrics_out || Option.is_some cfg.metrics_port
    then Some (M.create ())
    else None
  in
  let health = Option.map Dbp_obs.Health.create registry in
  Option.iter
    (Dbp_obs.Health.set_build_info ~family:"dbp_serve_build_info"
       ~version:Daemon.version)
    registry;
  let spans, span_oc = Daemon.make_spans b ?metrics:registry ~shards:cfg.shards () in
  let span_clock = if Sp.enabled spans then Some (Sp.clock spans) else None in
  (* Per-shard resume state + sessions + segments, all built on the main
     thread before any domain exists. *)
  let build_shard i =
    let seg = segment_path b.Daemon.output i in
    let snap = shard_snapshot_path b.Daemon.snapshot_path i in
    let* checkpoint, resumed_from =
      if not b.Daemon.resume then Ok (None, None)
      else
        match snap with
        | None -> Ok (None, None)
        | Some path -> (
            match Snapshot.load ~path with
            | Ok (s, gen) ->
                if not (String.equal s.Snapshot.algo scfg.Session.algo_name)
                then
                  Error
                    (Printf.sprintf
                       "serve: shard %d snapshot was cut by algorithm %s, \
                        not %s"
                       i s.Snapshot.algo scfg.Session.algo_name)
                else
                  let where =
                    match gen with
                    | Snapshot.Current -> path
                    | Snapshot.Previous -> path ^ ".prev"
                  in
                  Ok
                    ( Some (Session.checkpoint_of_snapshot s),
                      Some
                        (Printf.sprintf "%s (cursor %d)" where
                           s.Snapshot.cursor) )
            | Error (Snapshot.Missing _) -> Ok (None, None)
            | Error e -> Error (Snapshot.error_to_string e))
    in
    let last_pull = ref None in
    let journal =
      if b.Daemon.resume && Sys.file_exists seg then begin
        let torn = Daemon.truncate_torn_tail seg in
        if torn > 0 then
          b.Daemon.log
            (Printf.sprintf "serve: truncated %d torn bytes off %s" torn seg);
        let pull = Daemon.journal_reader seg in
        Some
          (fun () ->
            let e = pull () in
            last_pull := e;
            e)
      end
      else None
    in
    let* () =
      match (checkpoint, journal) with
      | Some { Session.cursor; _ }, None when cursor > 0 ->
          Error
            (Printf.sprintf
               "serve: shard %d snapshot cursor is %d but the segment %s is \
                missing"
               i cursor seg)
      | _ -> Ok ()
    in
    let session =
      Session.create ?metrics:registry
        ~metric_labels:[ ("shard", string_of_int i) ]
        ?span_clock ?journal ?checkpoint scfg
    in
    let seg_oc =
      if b.Daemon.resume then
        open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ]
          0o644 seg
      else open_out_bin seg
    in
    Ok
      ( {
          w_idx = i;
          w_session = session;
          w_clock = Sp.clock spans;
          w_seg = seg_oc;
          w_snap_path = snap;
          w_last_pull = last_pull;
          w_prefix = Printf.sprintf "{\"shard\":%d," i;
          w_buf = Buffer.create 96;
          w_replayed = 0;
          w_snapshots = 0;
          w_failed = false;
        },
        resumed_from )
  in
  let* workers_and_resumed =
    let rec go i acc =
      if i >= cfg.shards then Ok (List.rev acc)
      else
        let* w = build_shard i in
        go (i + 1) (w :: acc)
    in
    go 0 []
  in
  let workers = Array.of_list (List.map fst workers_and_resumed) in
  let resumed_from =
    let parts =
      List.concat
        (List.mapi
           (fun i (_, r) ->
             match r with
             | Some s -> [ Printf.sprintf "shard%d: %s" i s ]
             | None -> [])
           workers_and_resumed)
    in
    if parts = [] then None else Some (String.concat "; " parts)
  in
  (* The merged stream is derived, not authoritative: rebuild it from
     scratch every run (a resume replays every segment, so the rebuilt
     file is byte-identical to the uninterrupted run's). *)
  let merged_oc = open_out_bin b.Daemon.output in
  let collector = Pool.Collector.create () in
  let residents =
    Array.map (fun w -> Pool.Resident.spawn (handle collector w)) workers
  in
  (* Per-shard mailbox gauges (the "pool" of a sharded daemon), set at
     scrape/dump time from the resident counters. *)
  let pool_gauges =
    Option.map
      (fun m ->
        Array.init cfg.shards (fun i ->
            let labels = [ ("shard", string_of_int i) ] in
            ( M.gauge m ~labels
                ~help:"Messages mailed to the shard resident, not yet taken."
                "dbp_pool_mailbox_depth",
              M.gauge m ~labels
                ~help:"Messages mailed to the shard resident, lifetime."
                "dbp_pool_posted",
              M.gauge m ~labels
                ~help:"Messages the shard resident has processed, lifetime."
                "dbp_pool_processed" )))
      registry
  in
  let update_pool_gauges () =
    Option.iter
      (fun gs ->
        Array.iteri
          (fun i (g_depth, g_posted, g_processed) ->
            M.set g_depth (float_of_int (Pool.Resident.depth residents.(i)));
            M.set g_posted (float_of_int (Pool.Resident.posted residents.(i)));
            M.set g_processed
              (float_of_int (Pool.Resident.processed residents.(i))))
          gs)
      pool_gauges
  in
  let dump_metrics () =
    match (b.Daemon.metrics_out, registry) with
    | Some path, Some m ->
        update_pool_gauges ();
        Option.iter Dbp_obs.Health.tick health;
        Sp.export spans;
        let content =
          if path <> "-" && Filename.check_suffix path ".json" then
            M.to_json m
          else M.to_prometheus m
        in
        if String.equal path "-" then begin
          output_string stdout content;
          flush stdout
        end
        else begin
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc content)
        end
    | _ -> ()
  in
  let http =
    Option.map (fun port -> Http_listener.create ~port ()) cfg.metrics_port
  in
  Option.iter
    (fun l ->
      b.Daemon.log
        (Printf.sprintf "serve: metrics on http://127.0.0.1:%d/metrics"
           (Http_listener.port l)))
    http;
  let respond (req : Http.request) =
    if not (String.equal req.Http.meth "GET") then
      Http.response ~status:405 "Method Not Allowed\n"
    else
      match req.Http.path with
      | "/healthz" ->
          Option.iter Dbp_obs.Health.tick health;
          Http.response ~status:200
            (Printf.sprintf "ok shards=%d\n" cfg.shards)
      | "/metrics" -> (
          match registry with
          | Some m ->
              update_pool_gauges ();
              Option.iter Dbp_obs.Health.tick health;
              Sp.export spans;
              Http.metrics_response (M.to_prometheus m)
          | None -> Http.response ~status:404 "metrics registry disabled\n")
      | _ -> Http.response ~status:404 "Not Found\n"
  in
  (* ---- sequencer state, owned by the main thread -------------------- *)
  let pending : (int, res) Hashtbl.t = Hashtbl.create 256 in
  let next_out = ref 0 in
  let gidx = ref 0 in
  let lines = ref 0 in
  let emitted = ref 0 in
  (* every merged line written this run, replay re-emits included — the
     crash_after yardstick ([emitted] counts only live decisions) *)
  let merged_written = ref 0 in
  let fatal : string option ref = ref None in
  let usr1 = ref false in
  let echo_sink : (int -> string -> unit) ref = ref (fun _ _ -> ()) in
  let crash_now () =
    (* Crash injection at a merged-line boundary: drain the residents so
       the segment channels are quiescent, flush everything, then a
       genuine SIGKILL — the journals are left exactly as the kernel saw
       them. *)
    Array.iter Pool.Resident.sync residents;
    Array.iter (fun w -> flush w.w_seg) workers;
    flush merged_oc;
    Unix.kill (Unix.getpid ()) Sys.sigkill
  in
  let release r =
    (match r.r_fatal with
    | Some m when Option.is_none !fatal -> fatal := Some m
    | _ -> ());
    (match r.r_merged with
    | Some line ->
        output_string merged_oc line;
        output_char merged_oc '\n';
        Sp.stamp spans r.r_span Sp.Merge;
        merged_written := !merged_written + 1;
        if r.r_live then emitted := !emitted + 1;
        (match b.Daemon.crash_after with
        | Some n when !merged_written >= n -> crash_now ()
        | _ -> ())
    | None -> ());
    Sp.commit spans r.r_span;
    match r.r_echo with Some line -> !echo_sink r.r_client line | None -> ()
  in
  let drain () =
    List.iter
      (fun r -> Hashtbl.replace pending r.r_gidx r)
      (Pool.Collector.drain collector);
    let rec go () =
      match Hashtbl.find_opt pending !next_out with
      | None -> ()
      | Some r ->
          Hashtbl.remove pending !next_out;
          incr next_out;
          release r;
          go ()
    in
    go ()
  in
  (* Checked on every line (not just the housekeeping cadence) so a
     SIGUSR1 dump lands promptly even on short file inputs. *)
  let check_usr1 () =
    if !usr1 then begin
      usr1 := false;
      dump_metrics ()
    end
  in
  let housekeeping () =
    check_usr1 ();
    Option.iter Dbp_obs.Health.tick health;
    Option.iter (fun l -> Http_listener.service l ~respond) http;
    drain ()
  in
  (* Route one raw input line.  Malformed lines go to shard 0 — any
     fixed choice works, it just has to be deterministic so resume sees
     the same per-shard line streams. *)
  let scratch = Arrival.scratch () in
  let post_line ~client ~file_depth line =
    incr lines;
    let g = !gidx in
    incr gidx;
    (* Sampling is keyed on the ingest order (gidx), so whether a line
       is sampled is deterministic for a given interleave. *)
    let tk = Sp.issue spans in
    match Arrival.parse_into scratch line with
    | Ok () ->
        Sp.stamp spans tk Sp.Parse;
        let k = Arrival.shard_for router scratch in
        Sp.stamp spans tk Sp.Route;
        let depth =
          match file_depth with
          | Some d -> d
          | None -> Pool.Resident.depth residents.(k)
        in
        Sp.set_depth tk depth;
        Pool.Resident.post residents.(k)
          (M_item
             { gidx = g; client; depth; item = Arrival.item scratch;
               span = tk })
    | Error reason ->
        Sp.stamp spans tk Sp.Parse;
        let depth =
          match file_depth with
          | Some d -> d
          | None -> Pool.Resident.depth residents.(0)
        in
        Sp.set_depth tk depth;
        Pool.Resident.post residents.(0)
          (M_skip { gidx = g; client; depth; reason; span = tk })
  in
  let budget_left () =
    match b.Daemon.max_arrivals with Some n -> !lines < n | None -> true
  in
  let throttle () =
    if b.Daemon.throttle_us > 0 then
      Unix.sleepf (float_of_int b.Daemon.throttle_us /. 1e6)
  in
  (* ---- input drivers ------------------------------------------------ *)
  let drive_channel ic =
    let tick = ref 0 in
    let rec loop () =
      if Option.is_none !fatal && budget_left () then
        match input_line ic with
        | line ->
            post_line ~client:(-1) ~file_depth:(Some 0) line;
            throttle ();
            incr tick;
            check_usr1 ();
            if !tick land 255 = 0 then housekeeping () else drain ();
            loop ()
        | exception End_of_file -> ()
    in
    loop ()
  in
  let drive_socket path ~stop =
    (match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
    | _ -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let clients : (int, Unix.file_descr * Buffer.t) Hashtbl.t =
      Hashtbl.create 8
    in
    let next_client = ref 0 in
    (* Echo decision lines back to the owning client, best-effort and
       non-blocking: a client that stops reading loses echoes rather
       than wedging the daemon (its lines are still in the journal). *)
    (echo_sink :=
       fun id line ->
         match Hashtbl.find_opt clients id with
         | None -> ()
         | Some (fd, _) -> (
             let payload = line ^ "\n" in
             match
               Unix.write_substring fd payload 0 (String.length payload)
             with
             | _ -> ()
             | exception
                 Unix.Unix_error
                   ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) ->
                 ()));
    Fun.protect
      ~finally:(fun () ->
        echo_sink := (fun _ _ -> ());
        Hashtbl.iter
          (fun _ (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
          clients;
        (try Unix.close sock with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
      (fun () ->
        Unix.bind sock (Unix.ADDR_UNIX path);
        Unix.listen sock 8;
        Unix.set_nonblock sock;
        b.Daemon.log (Printf.sprintf "serve: listening on %s" path);
        let buf = Bytes.create 65536 in
        let read_client id fd cbuf =
          match Unix.read fd buf 0 (Bytes.length buf) with
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              ()
          | exception Unix.Unix_error _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Hashtbl.remove clients id
          | 0 ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Hashtbl.remove clients id
          | n ->
              Buffer.add_subbytes cbuf buf 0 n;
              let data = Buffer.contents cbuf in
              Buffer.clear cbuf;
              let rec feed = function
                | [ tail ] -> Buffer.add_string cbuf tail
                | line :: rest ->
                    if Option.is_none !fatal && budget_left () then begin
                      post_line ~client:id ~file_depth:None line;
                      throttle ()
                    end;
                    feed rest
                | [] -> ()
              in
              feed (String.split_on_char '\n' data)
        in
        while Option.is_none !fatal && budget_left () && not !stop do
          housekeeping ();
          let http_fds = match http with Some l -> Http_listener.fds l | None -> [] in
          let rds =
            sock
            :: Hashtbl.fold (fun _ (fd, _) acc -> fd :: acc) clients []
            @ http_fds
          in
          match Unix.select rds [] [] 0.05 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready, _, _ ->
              if List.memq sock ready then begin
                match Unix.accept sock with
                | exception
                    Unix.Unix_error
                      ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                  ->
                    ()
                | fd, _ ->
                    Unix.set_nonblock fd;
                    let id = !next_client in
                    incr next_client;
                    Hashtbl.replace clients id (fd, Buffer.create 4096)
              end;
              (* Snapshot before reading: read_client removes closed
                 clients, and mutating a Hashtbl mid-iteration is
                 undefined. *)
              let ready_clients =
                Hashtbl.fold
                  (fun id (fd, cbuf) acc ->
                    if List.memq fd ready then (id, fd, cbuf) :: acc else acc)
                  clients []
              in
              List.iter
                (fun (id, fd, cbuf) -> read_client id fd cbuf)
                ready_clients
        done)
  in
  (* ---- wiring, teardown, stats -------------------------------------- *)
  let prev_usr1 =
    Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> usr1 := true))
  in
  (* Echoes and HTTP responses are best-effort writes to peers that may
     vanish mid-write; EPIPE must come back as an error code, not a
     process-killing signal. *)
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let stop = ref false in
  let finish_up () =
    (* Everything posted; wait for the shards, settle the sequencer,
       then close the sessions in shard order. *)
    Array.iter Pool.Resident.sync residents;
    drain ();
    match !fatal with
    | Some msg -> Error msg
    | None ->
        let errs = ref [] in
        Array.iter
          (fun w ->
            match Session.finish w.w_session with
            | Error f ->
                errs :=
                  Printf.sprintf "shard %d: %s" w.w_idx
                    (Session.fatal_to_string f)
                  :: !errs
            | Ok () ->
                if
                  Option.is_some w.w_snap_path
                  && scfg.Session.snapshot_every > 0
                then begin
                  flush w.w_seg;
                  match w.w_snap_path with
                  | Some path ->
                      Snapshot.save ~path (Session.take_snapshot w.w_session);
                      w.w_snapshots <- w.w_snapshots + 1
                  | None -> ()
                end)
          workers;
        (match !errs with
        | [] ->
            dump_metrics ();
            Ok
              {
                Daemon.lines = !lines;
                emitted = !emitted;
                placed =
                  Array.fold_left
                    (fun a w -> a + Session.placed w.w_session)
                    0 workers;
                rejected =
                  Array.fold_left
                    (fun a w -> a + Session.rejected w.w_session)
                    0 workers;
                skipped =
                  Array.fold_left
                    (fun a w -> a + Session.skipped w.w_session)
                    0 workers;
                replayed =
                  Array.fold_left (fun a w -> a + w.w_replayed) 0 workers;
                snapshots =
                  Array.fold_left (fun a w -> a + w.w_snapshots) 0 workers;
                resumed_from;
              }
        | es -> Error (String.concat "; " (List.rev es)))
  in
  let result =
    match
      (match b.Daemon.input with
      | Daemon.Stdin -> drive_channel stdin
      | Daemon.In_file path ->
          let ic = open_in path in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> drive_channel ic)
      | Daemon.In_socket path ->
          let prev_int =
            Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
          and prev_term =
            Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
          in
          Fun.protect
            ~finally:(fun () ->
              Sys.set_signal Sys.sigint prev_int;
              Sys.set_signal Sys.sigterm prev_term)
            (fun () -> drive_socket path ~stop));
      finish_up ()
    with
    | r -> r
    | exception Pool.Resident_error e ->
        Error ("serve: shard worker died: " ^ Printexc.to_string e)
  in
  Sys.set_signal Sys.sigusr1 prev_usr1;
  Sys.set_signal Sys.sigpipe prev_pipe;
  (* Teardown is unconditional: join the domains, then flush/close every
     channel (the residents are idle after close, so the channels are
     safe to touch from here). *)
  Array.iter
    (fun r -> try Pool.Resident.close r with Pool.Resident_error _ -> ())
    residents;
  Array.iter
    (fun w -> try flush w.w_seg; close_out w.w_seg with Sys_error _ -> ())
    workers;
  (try
     flush merged_oc;
     close_out merged_oc
   with Sys_error _ -> ());
  Option.iter close_out span_oc;
  Option.iter Http_listener.close http;
  result

let run cfg scfg =
  match run cfg scfg with
  | r -> r
  | exception Sys_error msg -> Error ("serve: " ^ msg)
  | exception Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "serve: %s(%s): %s" fn arg (Unix.error_message e))
