(** The [dbp serve] output line format: exactly one line per
    well-formed arrival, in input order.

    {[ {"seq":12,"job":345,"bin":3,"opened":true,"t":17.25}
       {"seq":13,"job":346,"rejected":"overload","t":17.5}    ]}

    [seq] numbers decision lines from 0 with no gaps, so the output
    file doubles as the crash-recovery {e journal}: line [k] is the
    outcome of the [k]-th well-formed arrival, and [--resume] replays
    the input against the journal line-by-line (DESIGN.md section 14).
    Rendering is byte-stable ({!Json_lite.fmt_num}), which is what makes
    "resume ⇒ byte-identical stream" a checkable contract. *)

type reason =
  | Overload  (** admission control at the top ladder rung *)
  | Out_of_order  (** arrival time before an already-admitted arrival *)
  | Duplicate  (** job id already active *)

type t =
  | Placed of { seq : int; job : int; bin : int; opened : bool; time : float }
  | Rejected of { seq : int; job : int; reason : reason; time : float }

val seq : t -> int
val reason_name : reason -> string

val render : t -> string
(** One line, no trailing newline. *)

val render_into : Buffer.t -> t -> unit
(** Append exactly the bytes of {!render} to a reusable buffer — the
    sharded daemon's batched-write path, which flushes one buffer per
    shard at snapshot boundaries instead of one string per line. *)

val parse : string -> (t, string) result
(** Inverse of {!render} (used by resume to read the journal back).
    Total: never raises. *)

val equal : t -> t -> bool
(** Structural, with times compared by bits (journal lines are exact). *)
