type reason = Overload | Out_of_order | Duplicate

type t =
  | Placed of { seq : int; job : int; bin : int; opened : bool; time : float }
  | Rejected of { seq : int; job : int; reason : reason; time : float }

let seq = function Placed { seq; _ } | Rejected { seq; _ } -> seq

let reason_name = function
  | Overload -> "overload"
  | Out_of_order -> "out_of_order"
  | Duplicate -> "duplicate"

let reason_of_name = function
  | "overload" -> Some Overload
  | "out_of_order" -> Some Out_of_order
  | "duplicate" -> Some Duplicate
  | _ -> None

let render = function
  | Placed { seq; job; bin; opened; time } ->
      Printf.sprintf "{\"seq\":%d,\"job\":%d,\"bin\":%d,\"opened\":%b,\"t\":%s}"
        seq job bin opened
        (Json_lite.fmt_num time)
  | Rejected { seq; job; reason; time } ->
      Printf.sprintf "{\"seq\":%d,\"job\":%d,\"rejected\":\"%s\",\"t\":%s}" seq
        job (reason_name reason)
        (Json_lite.fmt_num time)

(* Buffer-append twin of [render], for the sharded daemon's batched
   decision writes: same bytes, no intermediate line string.  A
   differential qcheck case pins [Buffer.contents (render_into b d)]
   to [render d] exactly. *)

let add_int buf v =
  if v < 0 then begin
    (* Negative ints never appear in decisions, but stay total. *)
    Buffer.add_string buf (string_of_int v)
  end
  else begin
    let rec go v = if v >= 10 then go (v / 10); Buffer.add_char buf (Char.chr (Char.code '0' + v mod 10)) in
    go v
  end

let render_into buf = function
  | Placed { seq; job; bin; opened; time } ->
      Buffer.add_string buf "{\"seq\":";
      add_int buf seq;
      Buffer.add_string buf ",\"job\":";
      add_int buf job;
      Buffer.add_string buf ",\"bin\":";
      add_int buf bin;
      Buffer.add_string buf (if opened then ",\"opened\":true" else ",\"opened\":false");
      Buffer.add_string buf ",\"t\":";
      Buffer.add_string buf (Json_lite.fmt_num time);
      Buffer.add_char buf '}'
  | Rejected { seq; job; reason; time } ->
      Buffer.add_string buf "{\"seq\":";
      add_int buf seq;
      Buffer.add_string buf ",\"job\":";
      add_int buf job;
      Buffer.add_string buf ",\"rejected\":\"";
      Buffer.add_string buf (reason_name reason);
      Buffer.add_string buf "\",\"t\":";
      Buffer.add_string buf (Json_lite.fmt_num time);
      Buffer.add_char buf '}'

let[@dbp.total] parse line =
  match Json_lite.parse_object line with
  | Error e -> Error e
  | Ok fields -> (
      let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
      let* seq = Json_lite.int_field fields "seq" in
      let* job = Json_lite.int_field fields "job" in
      let* time = Json_lite.num_field fields "t" in
      match Json_lite.field fields "rejected" with
      | Some (Str name) -> (
          match reason_of_name name with
          | Some reason -> Ok (Rejected { seq; job; reason; time })
          | None -> Error (Printf.sprintf "unknown rejection reason %S" name))
      | Some _ -> Error "field \"rejected\" is not a string"
      | None -> (
          let* bin = Json_lite.int_field fields "bin" in
          match Json_lite.field fields "opened" with
          | Some (Bool opened) -> Ok (Placed { seq; job; bin; opened; time })
          | Some _ -> Error "field \"opened\" is not a boolean"
          | None -> Error "missing field \"opened\""))

let equal a b =
  match (a, b) with
  | ( Placed { seq = s1; job = j1; bin = b1; opened = o1; time = t1 },
      Placed { seq = s2; job = j2; bin = b2; opened = o2; time = t2 } ) ->
      s1 = s2 && j1 = j2 && b1 = b2 && Bool.equal o1 o2
      && Int64.equal (Int64.bits_of_float t1) (Int64.bits_of_float t2)
  | ( Rejected { seq = s1; job = j1; reason = r1; time = t1 },
      Rejected { seq = s2; job = j2; reason = r2; time = t2 } ) ->
      s1 = s2 && j1 = j2
      && String.equal (reason_name r1) (reason_name r2)
      && Int64.equal (Int64.bits_of_float t1) (Int64.bits_of_float t2)
  | _ -> false
