(** Parameter sweeps with seed replication.

    The experiments all share one shape: for each value of a swept
    parameter, generate [seeds] instances, run a set of packers, and
    aggregate a per-run metric (usually the ratio to the Proposition-3
    lower bound) into mean/min/max.  This module is that shape. *)

open Dbp_core

type point = {
  parameter : float;
  label : string;
  ratios : Stats.summary;  (** aggregated metric over the seeds *)
}

val run :
  ?pool:Dbp_par.Pool.t ->
  ?profile:Dbp_obs.Profile.t ->
  ?seeds:int ->
  parameters:float list ->
  generate:(seed:int -> float -> Instance.t) ->
  packers:Runner.packer list ->
  ?metric:(Instance.t -> Packing.t -> float) ->
  unit ->
  point list
(** Default [seeds] 5; default [metric] is usage divided by the
    Proposition-3 lower bound.  Points come out grouped by parameter, in
    packer order within a parameter.  With [pool], the (parameter, seed)
    cells run across the pool's domains; instance generation is keyed on
    the cell's own seed, so the result is bit-identical to the
    sequential run (DESIGN.md section 11).  With [profile], the whole
    cell fleet is charged to phase ["sweep.run"] (one sample per call;
    per-cell timing inside pool workers would race). *)

val table : ?param_name:string -> point list -> Report.table
(** Wide table: one row per parameter value, one column per packer label,
    cells "mean (max)". *)
