(** Table rendering: aligned plain text, CSV, and GitHub markdown.

    One [table] value drives all three renderers so every experiment
    prints consistently in the bench harness, the CLI and EXPERIMENTS.md. *)

type align = Left | Right

type column = { title : string; align : align }

type table = { columns : column list; rows : string list list }

val make :
  columns:(string * align) list -> rows:string list list -> table
(** @raise Invalid_argument if any row's width differs from the header's. *)

val labeled :
  label:string ->
  columns:string list ->
  rows:(string * string list) list ->
  table
(** [make] specialised to the scoreboard layout shared by every report:
    a Left-aligned [label] column followed by Right-aligned data
    columns.  Each row is (label cell, data cells).
    @raise Invalid_argument on a width mismatch, as [make]. *)

val cell_f : ?decimals:int -> float -> string
(** Float cell with fixed decimals (default 4); integers print bare. *)

val cell_i : int -> string

val to_text : table -> string
(** Space-aligned columns. *)

val to_csv : table -> string

val to_markdown : table -> string

val print : ?title:string -> table -> unit
(** [to_text] to stdout, preceded by an underlined title when given. *)
