(** Scoring algorithms under injected faults.

    Runs each online algorithm twice on the same base instance — once
    fault-free through the plain engine, once through the resilient
    engine with a fault plan — and reports how much MinUsageTime
    degrades: usage inflation, evictions recovered, rejection rate,
    retries, lost demand.  This is the simulation-study counterpart of
    {!Runner}: same table plumbing, but the objective is graceful
    degradation rather than competitive ratio. *)

open Dbp_core

type row = {
  label : string;
  fault_free_usage : float;  (** plain [Engine.run] usage on the base instance *)
  usage : float;  (** resilient-engine usage under the plan *)
  inflation : float;
      (** [usage /. fault_free_usage]; 1.0 on an empty instance. *)
  crashes : int;
  evicted : int;
  recovered : int;
  rejected : int;
  retries : int;
  slipped : int;
  injected : int;
  rejection_rate : float;
      (** rejected / displaced jobs (evictions + overstays); 0 when
          nothing was displaced. *)
  lost_demand : float;
}

val evaluate :
  ?policy:Dbp_faults.Recovery.policy ->
  (string * Dbp_online.Engine.t) list ->
  Dbp_faults.Fault_plan.t ->
  Instance.t ->
  row list

val table : row list -> Report.table

val pp_row : Format.formatter -> row -> unit
