open Dbp_core

type point = {
  parameter : float;
  label : string;
  ratios : Stats.summary;
}

let default_metric instance packing =
  Dbp_opt.Lower_bounds.ratio_to_best instance
    (Packing.total_usage_time packing)

let run ?pool ?profile ?(seeds = 5) ~parameters ~generate ~packers
    ?(metric = default_metric) () =
  if seeds < 1 then invalid_arg "Sweep.run: seeds < 1";
  (* One cell per (parameter, seed): the cell generates its instance and
     scores every packer on it.  Cells are independent, so the fleet
     maps across the pool; results come back in submission order and the
     per-packer ratio lists are rebuilt in seed order, making the
     parallel run bit-identical to the sequential one (the test_par
     suite holds this equality pointwise). *)
  let cells =
    List.concat_map
      (fun parameter -> List.init seeds (fun seed -> (parameter, seed)))
      parameters
  in
  let eval (parameter, seed) =
    let inst = generate ~seed parameter in
    List.map (fun (p : Runner.packer) -> metric inst (p.Runner.pack inst))
      packers
  in
  let run_cells () =
    match pool with
    | None -> List.map eval cells
    | Some pool -> Dbp_par.Pool.parallel_map pool eval cells
  in
  (* One phase sample per sweep: cell-level timing inside pool workers
     would race on the profiler. *)
  let results =
    match profile with
    | None -> run_cells ()
    | Some prof -> Dbp_obs.Profile.time prof "sweep.run" run_cells
  in
  let results = Array.of_list results in
  List.concat
    (List.mapi
       (fun pi parameter ->
         List.mapi
           (fun ki (p : Runner.packer) ->
             let ratios =
               List.init seeds (fun seed ->
                   List.nth results.((pi * seeds) + seed) ki)
             in
             {
               parameter;
               label = p.Runner.label;
               ratios = Stats.summarize ratios;
             })
           packers)
       parameters)

let table ?(param_name = "param") points =
  let parameters =
    List.map (fun p -> p.parameter) points |> List.sort_uniq Float.compare
  in
  let labels =
    List.fold_left
      (fun acc p -> if List.mem p.label acc then acc else acc @ [ p.label ])
      [] points
  in
  let columns =
    (param_name, Report.Right)
    :: List.map (fun l -> (l, Report.Right)) labels
  in
  let rows =
    List.map
      (fun param ->
        Report.cell_f ~decimals:2 param
        :: List.map
             (fun label ->
               match
                 List.find_opt
                   (fun p ->
                     Float.equal p.parameter param && String.equal p.label label)
                   points
               with
               | Some p ->
                   Printf.sprintf "%.3f (%.3f)" p.ratios.Stats.mean
                     p.ratios.Stats.max
               | None -> "-")
             labels)
      parameters
  in
  Report.make ~columns ~rows
