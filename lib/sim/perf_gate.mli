(** Perf-regression gate over the committed engine-bench results.

    `bench engine` records one (algorithm, jobs, indexed_s) cell per
    sweep row in BENCH_engine.json; the committed copy of that file is
    the performance baseline the ROADMAP's "as fast as the hardware
    allows" goal is measured against.  {!check} compares a fresh sweep
    to the baseline and returns every cell that slowed past the
    threshold (default 1.3x): the bench fails on a non-empty result in
    full mode and warns in quick/smoke mode (check.sh).  The gate is
    library code, not bench code, so the test suite can pin its
    semantics without timing anything. *)

type row = { algorithm : string; jobs : int; indexed_s : float }

type breach = {
  b_algorithm : string;
  b_jobs : int;
  baseline_s : float;
  current_s : float;
  ratio : float;  (** current / baseline *)
}

val default_threshold : float
(** 1.3 — a cell may not slow by more than 30% against the baseline. *)

val parse_rows : string -> row list
(** Scan the text of a BENCH_engine.json for its result rows.  This
    reads the bench's own flat emission format only; malformed rows are
    skipped, an unrelated string yields []. *)

val check :
  ?threshold:float ->
  ?min_jobs:int ->
  baseline:row list ->
  current:row list ->
  unit ->
  breach list
(** Every current cell at least [min_jobs] big whose matching baseline
    cell (same algorithm, same job count) it exceeds by more than
    [threshold]x.  Cells with no baseline counterpart pass (a new row
    size cannot regress).  @raise Invalid_argument if
    [threshold <= 1]. *)

val breach_to_string : breach -> string
