type align = Left | Right

type column = { title : string; align : align }

type table = { columns : column list; rows : string list list }

let make ~columns ~rows =
  let width = List.length columns in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Report.make: row %d has %d cells, want %d" i
             (List.length row) width))
    rows;
  { columns = List.map (fun (title, align) -> { title; align }) columns; rows }

(* The layout every scoreboard shares: one Left-aligned label column
   followed by Right-aligned data columns.  Fault_report and Runner both
   render through this instead of hand-building the same column list. *)
let labeled ~label ~columns ~rows =
  make
    ~columns:((label, Left) :: List.map (fun title -> (title, Right)) columns)
    ~rows:(List.map (fun (lbl, cells) -> lbl :: cells) rows)

let cell_f ?(decimals = 4) v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.*f" decimals v

let cell_i = string_of_int

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let to_text t =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length c.title) t.rows)
      t.columns
  in
  let render_row cells =
    List.map2
      (fun (c, w) s -> pad c.align w s)
      (List.combine t.columns widths)
      cells
    |> String.concat "  "
  in
  let header = render_row (List.map (fun c -> c.title) t.columns) in
  let rule = String.make (String.length header) '-' in
  String.concat "\n" (header :: rule :: List.map render_row t.rows) ^ "\n"

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line cells = String.concat "," (List.map escape_csv cells) in
  String.concat "\n"
    (line (List.map (fun c -> c.title) t.columns) :: List.map line t.rows)
  ^ "\n"

let to_markdown t =
  let line cells = "| " ^ String.concat " | " cells ^ " |" in
  let sep =
    List.map
      (fun c -> match c.align with Left -> ":---" | Right -> "---:")
      t.columns
  in
  String.concat "\n"
    (line (List.map (fun c -> c.title) t.columns) :: line sep
    :: List.map line t.rows)
  ^ "\n"

(* [print] is the repo's one designated console sink for report tables;
   every CLI/bench entry point funnels through it, hence the R4 allows. *)
let print ?title t =
  (match title with
  | Some s ->
      print_newline () (* dbp-lint: allow R4 designated console sink *);
      print_endline s (* dbp-lint: allow R4 designated console sink *);
      (* dbp-lint: allow R4 designated console sink *)
      print_endline (String.make (String.length s) '=')
  | None -> ());
  print_string (to_text t) (* dbp-lint: allow R4 designated console sink *)
