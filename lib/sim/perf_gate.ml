(* Perf-regression gate over BENCH_engine.json.

   The bench emits one row per (algorithm, jobs) cell; the committed
   file is the baseline.  [check] compares a fresh sweep against it and
   reports every cell that slowed past the threshold.  The parser reads
   only the bench's own emission format (hand-rolled flat JSON, one row
   object per line) — it is a scanner for that format, not a general
   JSON parser, and unparseable rows are skipped rather than fatal so a
   hand-edited baseline degrades to a smaller gate, never a crash. *)

type row = { algorithm : string; jobs : int; indexed_s : float }

type breach = {
  b_algorithm : string;
  b_jobs : int;
  baseline_s : float;
  current_s : float;
  ratio : float;
}

let default_threshold = 1.3

(* ---- scanning helpers ------------------------------------------------ *)

let find_sub text pos pat =
  let n = String.length text and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.equal (String.sub text i m) pat then Some i
    else go (i + 1)
  in
  if m = 0 then None else go pos

(* The raw token following ["key":] in [chunk]: everything up to the
   next ',' or '}' — trimmed, without surrounding quotes. *)
let field chunk key =
  match find_sub chunk 0 (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
      let start = i + String.length key + 3 in
      let stop = ref start in
      let n = String.length chunk in
      while
        !stop < n
        && (match chunk.[!stop] with ',' | '}' -> false | _ -> true)
      do
        incr stop
      done;
      let raw = String.trim (String.sub chunk start (!stop - start)) in
      let raw =
        let l = String.length raw in
        if l >= 2 && raw.[0] = '"' && raw.[l - 1] = '"' then
          String.sub raw 1 (l - 2)
        else raw
      in
      if String.equal raw "" then None else Some raw

let parse_row chunk =
  match
    (field chunk "algorithm", field chunk "jobs", field chunk "indexed_s")
  with
  | Some algorithm, Some jobs, Some indexed_s -> (
      match (int_of_string_opt jobs, float_of_string_opt indexed_s) with
      | Some jobs, Some indexed_s when jobs > 0 && indexed_s >= 0. ->
          Some { algorithm; jobs; indexed_s }
      | _ -> None)
  | _ -> None

let parse_rows text =
  (* Row objects all start with {"jobs": — split on that marker and
     parse each chunk up to its closing brace. *)
  let marker = "{\"jobs\"" in
  let rec go pos acc =
    match find_sub text pos marker with
    | None -> List.rev acc
    | Some i ->
        let stop =
          match String.index_from_opt text i '}' with
          | Some j -> j + 1
          | None -> String.length text
        in
        let acc =
          match parse_row (String.sub text i (stop - i)) with
          | Some row -> row :: acc
          | None -> acc
        in
        go stop acc
  in
  go 0 []

(* ---- the gate -------------------------------------------------------- *)

let check ?(threshold = default_threshold) ?(min_jobs = 0) ~baseline ~current
    () =
  if threshold <= 1. then invalid_arg "Perf_gate.check: threshold <= 1";
  List.filter_map
    (fun c ->
      if c.jobs < min_jobs then None
      else
        match
          List.find_opt
            (fun b -> String.equal b.algorithm c.algorithm && b.jobs = c.jobs)
            baseline
        with
        | None -> None (* new cell: nothing to regress against *)
        | Some b ->
            if b.indexed_s <= 0. then None
            else
              let ratio = c.indexed_s /. b.indexed_s in
              if ratio > threshold then
                Some
                  {
                    b_algorithm = c.algorithm;
                    b_jobs = c.jobs;
                    baseline_s = b.indexed_s;
                    current_s = c.indexed_s;
                    ratio;
                  }
              else None)
    current

let breach_to_string b =
  Printf.sprintf "%s @ %d jobs: %.4fs vs baseline %.4fs (%.2fx)" b.b_algorithm
    b.b_jobs b.current_s b.baseline_s b.ratio
