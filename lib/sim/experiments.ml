open Dbp_core

let fmt = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* F8: Figure 8, theoretical curves.                                    *)

let figure8_default_mus = [ 1.; 2.; 4.; 8.; 16.; 25.; 36.; 50.; 64.; 81.; 100. ]

let figure8 ?pool ?(mus = figure8_default_mus) () =
  let rows =
    List.map
      (fun (r : Dbp_theory.Figure8.row) ->
        [
          Report.cell_f ~decimals:0 r.Dbp_theory.Figure8.mu;
          Report.cell_f ~decimals:3 r.Dbp_theory.Figure8.cbdt;
          Report.cell_f ~decimals:3 r.Dbp_theory.Figure8.cbd;
          Report.cell_i r.Dbp_theory.Figure8.cbd_n;
          Report.cell_f ~decimals:0 r.Dbp_theory.Figure8.first_fit;
        ])
      (Dbp_theory.Figure8.series ?pool ~mus ())
  in
  Report.make
    ~columns:
      [
        ("mu", Report.Right);
        ("cbdt-ff 2*sqrt(mu)+3", Report.Right);
        ("cbd-ff min_n", Report.Right);
        ("best n", Report.Right);
        ("first-fit mu+4", Report.Right);
      ]
    ~rows

let figure8_crossover () = Dbp_theory.Figure8.crossover ()

let bound_landscape ?(mus = [ 2.; 4.; 8.; 16.; 32.; 64. ]) () =
  let open Dbp_theory.Ratios in
  let rows =
    List.map
      (fun mu ->
        [
          Report.cell_f ~decimals:0 mu;
          Report.cell_f ~decimals:2 (any_fit_lower ~mu);
          Report.cell_f ~decimals:2 (first_fit ~mu);
          Report.cell_f ~decimals:2 (first_fit_li ~mu);
          Report.cell_f ~decimals:2 (next_fit ~mu);
          Report.cell_f ~decimals:2 (hybrid_first_fit_known_mu ~mu);
          Report.cell_f ~decimals:2 (bucket_first_fit ~alpha:2. ~mu);
          Report.cell_f ~decimals:2 (cbdt_best ~mu);
          Report.cell_f ~decimals:2 (cbd_best ~mu);
        ])
      mus
  in
  Report.make
    ~columns:
      [
        ("mu", Report.Right);
        ("anyfit LB", Report.Right);
        ("FF mu+4", Report.Right);
        ("FF(Li) 2mu+7", Report.Right);
        ("NF 2mu+1", Report.Right);
        ("HFF mu+5", Report.Right);
        ("bucketFF(a=2)", Report.Right);
        ("cbdt 2sqrt(mu)+3", Report.Right);
        ("cbd min_n", Report.Right);
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* Shared workload families used by the approximation experiments.      *)

let families ~seed =
  [
    ( "uniform",
      Dbp_workload.Generator.generate ~seed Dbp_workload.Generator.default );
    ( "heavy-tail",
      Dbp_workload.Generator.generate ~seed
        {
          Dbp_workload.Generator.default with
          duration =
            Dbp_workload.Distribution.clamped ~lo:0.5 ~hi:100.
              (Dbp_workload.Distribution.pareto ~shape:1.5 ~scale:1.);
        } );
    ( "gaming",
      Dbp_workload.Cloud_gaming.generate ~seed
        { Dbp_workload.Cloud_gaming.default with days = 0.5 } );
    ( "analytics",
      Dbp_workload.Analytics.generate ~seed
        { Dbp_workload.Analytics.default with horizon = 720. } );
    ( "vm-fleet",
      Dbp_workload.Vm_fleet.generate ~seed
        { Dbp_workload.Vm_fleet.default with horizon_hours = 24. } );
  ]

(* Small instances where exact OPT_total is feasible. *)
let small_families ~seed =
  [
    ( "small-sparse",
      Dbp_workload.Generator.generate ~seed
        {
          Dbp_workload.Generator.default with
          arrival_rate = 0.3;
          horizon = 40.;
        } );
    ( "small-dense",
      Dbp_workload.Generator.generate ~seed
        {
          Dbp_workload.Generator.default with
          arrival_rate = 1.0;
          horizon = 15.;
          size = Dbp_workload.Distribution.uniform ~lo:0.2 ~hi:0.9;
        } );
  ]

let approx_experiment ~bound pack ?(seeds = 3) () =
  let seed_list = List.init seeds (fun i -> i) in
  let rows_for (name, instances) ~opt =
    let ratios_lb =
      List.map
        (fun inst ->
          Dbp_opt.Lower_bounds.ratio_to_best inst
            (Packing.total_usage_time (pack inst)))
        instances
    and ratios_opt =
      if opt then
        List.map
          (fun inst ->
            Dbp_opt.Opt_total.ratio inst
              (Packing.total_usage_time (pack inst)))
          instances
      else []
    in
    let s = Stats.summarize ratios_lb in
    [
      name;
      Report.cell_i (List.length instances);
      Report.cell_f ~decimals:3 s.Stats.mean;
      Report.cell_f ~decimals:3 s.Stats.max;
      (if ratios_opt = [] then "-"
       else Report.cell_f ~decimals:3 (Stats.maximum ratios_opt));
      Report.cell_f ~decimals:0 bound;
    ]
  in
  let big =
    families ~seed:0 |> List.map fst
    |> List.map (fun name ->
           let instances =
             List.map
               (fun seed -> List.assoc name (families ~seed))
               seed_list
           in
           rows_for (name, instances) ~opt:false)
  and small =
    small_families ~seed:0 |> List.map fst
    |> List.map (fun name ->
           let instances =
             List.map
               (fun seed -> List.assoc name (small_families ~seed))
               seed_list
           in
           rows_for (name, instances) ~opt:true)
  in
  Report.make
    ~columns:
      [
        ("workload", Report.Left);
        ("runs", Report.Right);
        ("mean ratio/LB", Report.Right);
        ("max ratio/LB", Report.Right);
        ("max ratio/OPT", Report.Right);
        ("proved bound", Report.Right);
      ]
    ~rows:(small @ big)

let ddff_ratio ?seeds () =
  approx_experiment ~bound:Dbp_theory.Ratios.ddff Dbp_offline.Ddff.pack ?seeds
    ()

let dual_coloring_ratio ?seeds () =
  approx_experiment ~bound:Dbp_theory.Ratios.dual_coloring
    Dbp_offline.Dual_coloring.pack ?seeds ()

(* ------------------------------------------------------------------ *)
(* T3: the Theorem 3 golden-ratio gadget.                               *)

let lower_bound_gadget () =
  let x = Dbp_workload.Adversarial.golden_ratio in
  let eps = 0.01 and tau = 0.001 in
  let algorithms =
    [
      Runner.online Dbp_online.Any_fit.first_fit;
      Runner.online Dbp_online.Any_fit.best_fit;
      Runner.online Dbp_online.Any_fit.worst_fit;
      Runner.online Dbp_online.Any_fit.next_fit;
      Runner.online (Dbp_online.Classify_departure.make ~rho:(sqrt x) ());
      Runner.online (Dbp_online.Classify_duration.make ~alpha:2. ());
      Runner.online (Dbp_online.Classify_combined.make ~alpha:2. ());
    ]
  in
  let case_ratio packer case =
    let inst = Dbp_workload.Adversarial.theorem3 ~x ~eps ~tau case in
    let usage = Packing.total_usage_time (packer.Runner.pack inst) in
    usage /. Dbp_workload.Adversarial.theorem3_opt_usage ~x ~tau case
  in
  let rows =
    List.map
      (fun p ->
        let a = case_ratio p Dbp_workload.Adversarial.A
        and b = case_ratio p Dbp_workload.Adversarial.B in
        [
          p.Runner.label;
          Report.cell_f ~decimals:4 a;
          Report.cell_f ~decimals:4 b;
          Report.cell_f ~decimals:4 (Float.max a b);
          Report.cell_f ~decimals:4 Dbp_theory.Ratios.online_lower_bound;
        ])
      algorithms
  in
  Report.make
    ~columns:
      [
        ("algorithm", Report.Left);
        ("case A", Report.Right);
        ("case B", Report.Right);
        ("max", Report.Right);
        ("theorem-3 LB", Report.Right);
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* T4/T5: parameter sweeps of the two classification strategies.        *)

let cbdt_sweep ?pool ?(seeds = 5) ?(mu = 16.) () =
  let delta = 1. in
  let rhos = [ 0.5; 1.; 2.; sqrt mu; 8.; mu; 2. *. mu ] in
  let generate ~seed _rho =
    Dbp_workload.Generator.with_mu ~seed ~items:300 ~mu ()
  in
  let points =
    List.concat_map
      (fun rho ->
        let packer =
          Runner.online (Dbp_online.Classify_departure.make ~rho ())
        in
        Sweep.run ?pool ~seeds ~parameters:[ rho ] ~generate
          ~packers:[ packer ] ())
      rhos
  in
  let rows =
    List.map
      (fun (p : Sweep.point) ->
        [
          Report.cell_f ~decimals:3 p.Sweep.parameter;
          Report.cell_f ~decimals:3 p.Sweep.ratios.Stats.mean;
          Report.cell_f ~decimals:3 p.Sweep.ratios.Stats.max;
          Report.cell_f ~decimals:3
            (Dbp_theory.Ratios.cbdt ~rho:p.Sweep.parameter ~delta ~mu);
        ])
      points
  in
  Report.make
    ~columns:
      [
        ("rho", Report.Right);
        ("mean ratio/LB", Report.Right);
        ("max ratio/LB", Report.Right);
        ("theorem-4 bound", Report.Right);
      ]
    ~rows

let cbd_sweep ?pool ?(seeds = 5) ?(mu = 16.) () =
  let alphas = [ 1.5; 2.; sqrt mu; 8.; mu ] in
  let generate ~seed _alpha =
    Dbp_workload.Generator.with_mu ~seed ~items:300 ~mu ()
  in
  let points =
    List.concat_map
      (fun alpha ->
        let packer =
          Runner.online (Dbp_online.Classify_duration.make ~alpha ())
        in
        Sweep.run ?pool ~seeds ~parameters:[ alpha ] ~generate
          ~packers:[ packer ] ())
      alphas
  in
  let rows =
    List.map
      (fun (p : Sweep.point) ->
        [
          Report.cell_f ~decimals:3 p.Sweep.parameter;
          Report.cell_f ~decimals:3 p.Sweep.ratios.Stats.mean;
          Report.cell_f ~decimals:3 p.Sweep.ratios.Stats.max;
          Report.cell_f ~decimals:3
            (Dbp_theory.Ratios.cbd ~alpha:p.Sweep.parameter ~mu);
        ])
      points
  in
  Report.make
    ~columns:
      [
        ("alpha", Report.Right);
        ("mean ratio/LB", Report.Right);
        ("max ratio/LB", Report.Right);
        ("theorem-5 bound", Report.Right);
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* Empirical Figure 8 and ablation.                                     *)

let ratio_vs_mu ?pool ?(seeds = 3) ?(mus = [ 1.; 2.; 4.; 8.; 16.; 32.; 64. ])
    () =
  let generate ~seed mu =
    Dbp_workload.Generator.with_mu ~seed ~items:300 ~mu ()
  in
  let points =
    Sweep.run ?pool ~seeds ~parameters:mus ~generate
      ~packers:Runner.default_portfolio ()
  in
  Sweep.table ~param_name:"mu" points

let combined_ablation ?pool ?(seeds = 5) ?(mus = [ 2.; 4.; 16.; 64. ]) () =
  let generate ~seed mu =
    Dbp_workload.Generator.with_mu ~seed ~items:300 ~mu ()
  in
  let packers =
    [
      Runner.online_tuned "cbdt-ff*" Dbp_online.Classify_departure.tuned;
      Runner.online_tuned "cbd-ff*" (fun i ->
          Dbp_online.Classify_duration.tuned i);
      Runner.online_tuned "combined-ff*" (fun i ->
          Dbp_online.Classify_combined.tuned i);
      Runner.online Dbp_online.Any_fit.first_fit;
    ]
  in
  Sweep.table ~param_name:"mu"
    (Sweep.run ?pool ~seeds ~parameters:mus ~generate ~packers ())

(* ------------------------------------------------------------------ *)
(* E1/E2: the motivating workloads.                                     *)

let portfolio_table ?pool ?(seeds = 3) make_instance =
  let seedlist = List.init seeds (fun i -> i) in
  let labels = List.map (fun (p : Runner.packer) -> p.Runner.label) Runner.default_portfolio in
  (* Parallelise across the seed replicas (each evaluates the whole
     portfolio on its own instance) rather than within one evaluation:
     coarser tasks, same per-seed score lists in seed order. *)
  let per_seed =
    let eval seed =
      Runner.evaluate Runner.default_portfolio (make_instance seed)
    in
    match pool with
    | None -> List.map eval seedlist
    | Some pool -> Dbp_par.Pool.parallel_map pool eval seedlist
  in
  let rows =
    List.map
      (fun label ->
        let scores =
          List.map
            (fun scores ->
              List.find (fun s -> String.equal s.Runner.label label) scores)
            per_seed
        in
        let usages = List.map (fun s -> s.Runner.usage) scores
        and ratios = List.map (fun s -> s.Runner.ratio_lb) scores
        and bins = List.map (fun s -> float_of_int s.Runner.bins) scores in
        [
          label;
          Report.cell_f ~decimals:1 (Stats.mean usages);
          Report.cell_f ~decimals:1 (Stats.mean bins);
          Report.cell_f ~decimals:3 (Stats.mean ratios);
          Report.cell_f ~decimals:3 (Stats.maximum ratios);
        ])
      labels
  in
  Report.make
    ~columns:
      [
        ("algorithm", Report.Left);
        ("mean usage", Report.Right);
        ("mean bins", Report.Right);
        ("mean ratio/LB", Report.Right);
        ("max ratio/LB", Report.Right);
      ]
    ~rows

let gaming_compare ?pool ?seeds () =
  portfolio_table ?pool ?seeds (fun seed ->
      Dbp_workload.Cloud_gaming.generate ~seed Dbp_workload.Cloud_gaming.default)

let analytics_compare ?pool ?seeds () =
  portfolio_table ?pool ?seeds (fun seed ->
      Dbp_workload.Analytics.generate ~seed Dbp_workload.Analytics.default)

(* ------------------------------------------------------------------ *)
(* E4: non-clairvoyant traps.                                           *)

let nonclairvoyant_gadgets () =
  let stagger = Dbp_workload.Adversarial.staggered_departures ~k:10 ~long:50. () in
  let trap = Dbp_workload.Adversarial.mixed_duration_trap ~pairs:20 ~mu:50. () in
  let evaluate name packer inst =
    let usage = Packing.total_usage_time (packer.Runner.pack inst) in
    let lb = Dbp_opt.Lower_bounds.best inst in
    [
      name;
      packer.Runner.label;
      Report.cell_f ~decimals:2 usage;
      Report.cell_f ~decimals:2 lb;
      Report.cell_f ~decimals:3 (usage /. lb);
    ]
  in
  let packers =
    [
      Runner.online Dbp_online.Any_fit.first_fit;
      Runner.online Dbp_online.Any_fit.best_fit;
      Runner.online (Dbp_online.Classify_departure.make ~rho:5. ());
      Runner.online_tuned "cbd-ff*" (fun i ->
          Dbp_online.Classify_duration.tuned i);
      Runner.offline "ddff" Dbp_offline.Ddff.pack;
    ]
  in
  let trap_rows =
    List.map (fun p -> evaluate "mixed-duration-trap" p trap) packers
  and stagger_rows =
    List.map (fun p -> evaluate "staggered-departures" p stagger) packers
  in
  let search_rows =
    List.map
      (fun (p : Runner.packer) ->
        let _, ratio =
          Dbp_workload.Adversarial.worst_of_random ~seed:7 ~rounds:100
            ~items:8 ~pack:p.Runner.pack
            ~ratio_of:(fun inst usage -> Dbp_opt.Opt_total.ratio inst usage)
            ()
        in
        [
          "random-adversary(worst of 100)";
          p.Runner.label;
          "-";
          "-";
          Report.cell_f ~decimals:3 ratio;
        ])
      packers
  in
  Report.make
    ~columns:
      [
        ("gadget", Report.Left);
        ("algorithm", Report.Left);
        ("usage", Report.Right);
        ("LB", Report.Right);
        ("ratio", Report.Right);
      ]
    ~rows:(trap_rows @ stagger_rows @ search_rows)

(* ------------------------------------------------------------------ *)
(* E7: flexible jobs (Section 6).                                       *)

let flexibility_sweep ?(seeds = 3) () =
  let slack_factors = [ 0.; 0.25; 0.5; 1.; 2.; 4. ] in
  let base_instances =
    List.init seeds (fun seed ->
        Dbp_workload.Generator.generate ~seed
          { Dbp_workload.Generator.default with arrival_rate = 1.; horizon = 50. })
  in
  let jobs_of inst factor =
    Instance.items inst
    |> List.map (fun item ->
           Dbp_flex.Flex_job.of_item ~slack:(factor *. Item.duration item) item)
  in
  let mean_usage scheduler factor =
    base_instances
    |> List.map (fun inst -> Dbp_flex.Flex_schedule.usage (scheduler (jobs_of inst factor)))
    |> Stats.mean
  in
  let rigid_baseline = mean_usage Dbp_flex.Flex_schedule.asap 0. in
  let rows =
    List.map
      (fun factor ->
        let rel u = u /. rigid_baseline in
        [
          Report.cell_f ~decimals:2 factor;
          Report.cell_f ~decimals:3 (rel (mean_usage Dbp_flex.Flex_schedule.asap factor));
          Report.cell_f ~decimals:3 (rel (mean_usage Dbp_flex.Flex_schedule.alap factor));
          Report.cell_f ~decimals:3 (rel (mean_usage Dbp_flex.Flex_schedule.greedy factor));
        ])
      slack_factors
  in
  Report.make
    ~columns:
      [
        ("slack (x length)", Report.Right);
        ("asap / rigid", Report.Right);
        ("alap / rigid", Report.Right);
        ("greedy / rigid", Report.Right);
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* E6: multi-resource packing (Section 6).                              *)

let multidim_compare ?(seeds = 3) () =
  let module M = Dbp_multidim in
  let instances =
    List.init seeds (fun seed ->
        M.Vector_workload.generate ~seed M.Vector_workload.default)
  in
  let algorithms =
    [
      ("first-fit (3d)", M.Vector_algorithms.first_fit);
      ("best-fit (3d)", M.Vector_algorithms.best_fit);
      ("cbdt-ff (3d, rho=5)", M.Vector_algorithms.classify_departure ~rho:5.);
      ("cbd-ff (3d, alpha=2)", M.Vector_algorithms.classify_duration ~base:1. ~alpha:2.);
      ("ddff (3d)", M.Vector_algorithms.ddff);
    ]
  in
  let rows =
    List.map
      (fun (name, pack) ->
        let ratios =
          List.map (fun inst -> M.Vector_packing.ratio_to_lower_bound (pack inst))
            instances
        and bins =
          List.map
            (fun inst -> float_of_int (M.Vector_packing.bin_count (pack inst)))
            instances
        in
        let s = Stats.summarize ratios in
        [
          name;
          Report.cell_f ~decimals:1 (Stats.mean bins);
          Report.cell_f ~decimals:3 s.Stats.mean;
          Report.cell_f ~decimals:3 s.Stats.max;
        ])
      algorithms
  in
  (* reference: pack the scalar (dominant-component) projection with 1-D
     first fit and score it against the same multi-dim lower bound -- the
     cost a single-resource scheduler would pay, were its packing even
     feasible in all dimensions (it over-reserves, so it is feasible) *)
  let projection_row =
    let ratios =
      List.map
        (fun inst ->
          let proj = Dbp_multidim.Vector_workload.scalar_projection inst in
          let usage =
            Packing.total_usage_time
              (Dbp_online.Engine.run Dbp_online.Any_fit.first_fit proj)
          in
          usage /. Dbp_multidim.Vector_instance.lower_bound inst)
        instances
    in
    let s = Stats.summarize ratios in
    [
      "first-fit (scalar projection)";
      "-";
      Report.cell_f ~decimals:3 s.Stats.mean;
      Report.cell_f ~decimals:3 s.Stats.max;
    ]
  in
  Report.make
    ~columns:
      [
        ("algorithm", Report.Left);
        ("mean bins", Report.Right);
        ("mean ratio/LB", Report.Right);
        ("max ratio/LB", Report.Right);
      ]
    ~rows:(rows @ [ projection_row ])

(* ------------------------------------------------------------------ *)
(* E5: robustness to inaccurate duration estimates (Section 6).         *)

let estimate_robustness ?(seeds = 3) ?(mu = 16.) () =
  let sigmas = [ 0.; 0.05; 0.1; 0.2; 0.5; 1. ] in
  let generate seed = Dbp_workload.Generator.with_mu ~seed ~items:300 ~mu () in
  let instances = List.init seeds generate in
  let mean_ratio packer_of =
    instances
    |> List.map (fun inst ->
           let packer = packer_of inst in
           Dbp_opt.Lower_bounds.ratio_to_best inst
             (Packing.total_usage_time (packer.Runner.pack inst)))
    |> Stats.mean
  in
  let ff_ratio =
    mean_ratio (fun _ -> Runner.online Dbp_online.Any_fit.first_fit)
  in
  let rows =
    List.map
      (fun sigma ->
        let estimate = Dbp_workload.Estimator.multiplicative ~seed:99 ~sigma () in
        let cbdt =
          mean_ratio (fun inst ->
              let delta = Instance.min_duration inst in
              let rho =
                Dbp_online.Classify_departure.optimal_rho ~delta
                  ~mu:(Instance.mu inst)
              in
              Runner.online (Dbp_online.Classify_departure.make ~estimate ~rho ()))
        and cbd =
          mean_ratio (fun inst ->
              let base = Instance.min_duration inst in
              Runner.online
                (Dbp_online.Classify_duration.make ~estimate ~base ~alpha:2. ()))
        in
        [
          Report.cell_f ~decimals:2 sigma;
          Report.cell_f ~decimals:3 cbdt;
          Report.cell_f ~decimals:3 cbd;
          Report.cell_f ~decimals:3 ff_ratio;
        ])
      sigmas
  in
  Report.make
    ~columns:
      [
        ("sigma (rel. error)", Report.Right);
        ("cbdt-ff", Report.Right);
        ("cbd-ff", Report.Right);
        ("first-fit (blind)", Report.Right);
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* E10: provisioning (startup) cost sensitivity.                        *)

let startup_cost_sweep ?(seeds = 3) () =
  let startups = [ 0.; 1.; 5.; 15. ] (* minutes per server acquisition *) in
  let packers =
    [
      Runner.offline "ddff" Dbp_offline.Ddff.pack;
      Runner.online Dbp_online.Any_fit.first_fit;
      Runner.online_tuned "cbdt-ff*" Dbp_online.Classify_departure.tuned;
      Runner.online_tuned "aligned-ff*" Dbp_online.Departure_aligned.tuned;
    ]
  in
  let instances =
    List.init seeds (fun seed ->
        Dbp_workload.Cloud_gaming.generate ~seed
          { Dbp_workload.Cloud_gaming.default with days = 0.5 })
  in
  (* per-packer mean usage and mean bins, computed once *)
  let stats =
    List.map
      (fun (p : Runner.packer) ->
        let packings = List.map p.Runner.pack instances in
        ( p.Runner.label,
          Stats.mean (List.map Packing.total_usage_time packings),
          Stats.mean
            (List.map (fun pk -> float_of_int (Packing.bin_count pk)) packings)
        ))
      packers
  in
  let rows =
    List.map
      (fun c ->
        Report.cell_f ~decimals:0 c
        :: List.map
             (fun (_, usage, bins) ->
               Report.cell_f ~decimals:0 (usage +. (c *. bins)))
             stats)
      startups
  in
  Report.make
    ~columns:
      (("startup cost (min)", Report.Right)
      :: List.map (fun (label, _, _) -> (label, Report.Right)) stats)
    ~rows

(* ------------------------------------------------------------------ *)
(* A2: Dual Coloring pick-rule ablation.                                *)

let dual_coloring_pick_ablation ?(seeds = 3) () =
  let rules =
    [
      ("smallest id", Dbp_offline.Demand_chart.Smallest_id);
      ("longest duration", Dbp_offline.Demand_chart.Longest_duration);
      ("largest demand", Dbp_offline.Demand_chart.Largest_demand);
    ]
  in
  let family_names = List.map fst (families ~seed:0) in
  let rows =
    List.map
      (fun family ->
        let instances =
          List.init seeds (fun seed -> List.assoc family (families ~seed))
        in
        family
        :: List.map
             (fun (_, pick) ->
               instances
               |> List.map (fun inst ->
                      Dbp_opt.Lower_bounds.ratio_to_best inst
                        (Packing.total_usage_time
                           (Dbp_offline.Dual_coloring.pack ~pick inst)))
               |> Stats.mean
               |> Report.cell_f ~decimals:3)
             rules)
      family_names
  in
  Report.make
    ~columns:
      (("workload", Report.Left)
      :: List.map (fun (name, _) -> (name, Report.Right)) rules)
    ~rows

(* ------------------------------------------------------------------ *)
(* E9: soft departure alignment (extension).                            *)

let soft_alignment ?(seeds = 3) () =
  let packers =
    [
      Runner.online Dbp_online.Any_fit.first_fit;
      Runner.online_tuned "cbdt-ff*" Dbp_online.Classify_departure.tuned;
      Runner.online_tuned "aligned-ff*" Dbp_online.Departure_aligned.tuned;
    ]
  in
  let mean_ratio make_instance (p : Runner.packer) =
    List.init seeds make_instance
    |> List.map (fun inst ->
           Dbp_opt.Lower_bounds.ratio_to_best inst
             (Packing.total_usage_time (p.Runner.pack inst)))
    |> Stats.mean
  in
  let workloads =
    [
      ( "uniform (mu=16)",
        fun seed -> Dbp_workload.Generator.with_mu ~seed ~items:300 ~mu:16. () );
      ( "gaming",
        fun seed ->
          Dbp_workload.Cloud_gaming.generate ~seed
            { Dbp_workload.Cloud_gaming.default with days = 0.5 } );
      ( "mixed-duration trap",
        fun _ -> Dbp_workload.Adversarial.mixed_duration_trap ~pairs:20 ~mu:50. ()
      );
    ]
  in
  let rows =
    List.map
      (fun (name, make_instance) ->
        name
        :: List.map
             (fun p -> Report.cell_f ~decimals:3 (mean_ratio make_instance p))
             packers)
      workloads
  in
  Report.make
    ~columns:
      (("workload", Report.Left)
      :: List.map (fun (p : Runner.packer) -> (p.Runner.label, Report.Right))
           packers)
    ~rows

(* ------------------------------------------------------------------ *)
(* I1: interval scheduling with bounded parallelism (Section 5.3).      *)

let interval_scheduling ?(seeds = 5) ?(g = 4) () =
  let mus = [ 4.; 16.; 64. ] in
  let alpha = 2. in
  let size = 1. /. float_of_int g in
  let make_instance ~seed mu =
    (* unit-demand interval jobs: constant size 1/g *)
    let base = Dbp_workload.Generator.with_mu ~seed ~items:300 ~mu () in
    Instance.items base
    |> List.map (fun r ->
           Item.make ~id:(Item.id r) ~size ~arrival:(Item.arrival r)
             ~departure:(Item.departure r))
    |> Instance.of_items
  in
  let rows =
    List.map
      (fun mu ->
        let ratios =
          List.init seeds (fun seed ->
              let inst = make_instance ~seed mu in
              Dbp_opt.Lower_bounds.ratio_to_best inst
                (Packing.total_usage_time
                   (Dbp_online.Engine.run
                      (Dbp_online.Classify_duration.make ~alpha ())
                      inst)))
        in
        let s = Stats.summarize ratios in
        [
          Report.cell_f ~decimals:0 mu;
          Report.cell_f ~decimals:3 s.Stats.mean;
          Report.cell_f ~decimals:3 s.Stats.max;
          Report.cell_f ~decimals:2 (Dbp_theory.Ratios.cbd ~alpha ~mu);
          Report.cell_f ~decimals:2
            (Dbp_theory.Ratios.bucket_first_fit ~alpha ~mu);
        ])
      mus
  in
  Report.make
    ~columns:
      [
        ("mu", Report.Right);
        ("mean ratio/LB", Report.Right);
        ("max ratio/LB", Report.Right);
        ("paper bound", Report.Right);
        ("Shalom et al. bound", Report.Right);
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* A1: DDFF placement-rule ablation.                                    *)

let ddff_rule_ablation ?(seeds = 3) () =
  let rules =
    [
      ("first fit (paper)", Dbp_offline.Ddff.pack);
      ("best fit", Dbp_offline.First_fit_offline.best_fit_duration_descending);
      ("next fit", Dbp_offline.First_fit_offline.next_fit_duration_descending);
    ]
  in
  let family_names = List.map fst (families ~seed:0) in
  let rows =
    List.map
      (fun family ->
        let instances =
          List.init seeds (fun seed -> List.assoc family (families ~seed))
        in
        family
        :: List.map
             (fun (_, pack) ->
               instances
               |> List.map (fun inst ->
                      Dbp_opt.Lower_bounds.ratio_to_best inst
                        (Packing.total_usage_time (pack inst)))
               |> Stats.mean
               |> Report.cell_f ~decimals:3)
             rules)
      family_names
  in
  Report.make
    ~columns:
      (("workload", Report.Left)
      :: List.map (fun (name, _) -> (name, Report.Right)) rules)
    ~rows

(* ------------------------------------------------------------------ *)
(* R1: randomization vs the Theorem 3 gadget.                           *)

let randomized_gadget ?(trials = 200) () =
  let x = Dbp_workload.Adversarial.golden_ratio in
  let tau = 1e-9 in
  let expected_ratio ~p case =
    let costs =
      List.init trials (fun seed ->
          let inst = Dbp_workload.Adversarial.theorem3 ~x ~tau case in
          Packing.total_usage_time
            (Dbp_online.Engine.run (Dbp_online.Any_fit.biased_open ~p ~seed) inst))
    in
    Stats.mean costs /. Dbp_workload.Adversarial.theorem3_opt_usage ~x ~tau case
  in
  let rows =
    List.map
      (fun p ->
        let a = expected_ratio ~p Dbp_workload.Adversarial.A
        and b = expected_ratio ~p Dbp_workload.Adversarial.B in
        [
          Report.cell_f ~decimals:2 p;
          Report.cell_f ~decimals:4 a;
          Report.cell_f ~decimals:4 b;
          Report.cell_f ~decimals:4 (Float.max a b);
          Report.cell_f ~decimals:4 Dbp_theory.Ratios.online_lower_bound;
        ])
      [ 0.; 0.25; 0.5; 0.75; 1. ]
  in
  Report.make
    ~columns:
      [
        ("open prob p", Report.Right);
        ("E[ratio] case A", Report.Right);
        ("E[ratio] case B", Report.Right);
        ("max", Report.Right);
        ("deterministic LB", Report.Right);
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* E8: quantized billing.                                               *)

let billing_sweep ?(seeds = 3) () =
  let quanta = [ 1.; 5.; 15.; 60. ] (* minutes *) in
  let instances =
    List.init seeds (fun seed ->
        Dbp_workload.Cloud_gaming.generate ~seed
          { Dbp_workload.Cloud_gaming.default with days = 1. })
  in
  let mean_cost ~reuse_idle ~model algo_of =
    instances
    |> List.map (fun inst ->
           (Dbp_billing.Billed_engine.run ~reuse_idle ~model (algo_of inst) inst)
             .Dbp_billing.Billed_engine.cost)
    |> Stats.mean
  in
  let ff _ = Dbp_online.Any_fit.first_fit in
  let cbdt inst = Dbp_online.Classify_departure.tuned inst in
  let per_second_ff =
    mean_cost ~reuse_idle:true ~model:Dbp_billing.Billing_model.per_second ff
  in
  let rows =
    List.map
      (fun q ->
        let model = Dbp_billing.Billing_model.quantum q in
        let rel v = v /. per_second_ff in
        [
          Report.cell_f ~decimals:0 q;
          Report.cell_f ~decimals:3 (rel (mean_cost ~reuse_idle:false ~model ff));
          Report.cell_f ~decimals:3 (rel (mean_cost ~reuse_idle:true ~model ff));
          Report.cell_f ~decimals:3
            (rel (mean_cost ~reuse_idle:false ~model cbdt));
          Report.cell_f ~decimals:3
            (rel (mean_cost ~reuse_idle:true ~model cbdt));
        ])
      quanta
  in
  Report.make
    ~columns:
      [
        ("quantum (min)", Report.Right);
        ("ff no-reuse", Report.Right);
        ("ff reuse", Report.Right);
        ("cbdt no-reuse", Report.Right);
        ("cbdt reuse", Report.Right);
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* P1: proof-structure audit.                                           *)

let proof_audit ?(seeds = 3) () =
  let rows =
    List.init seeds (fun seed ->
        let inst = Dbp_workload.Generator.with_mu ~seed ~items:200 ~mu:9. () in
        let ddff = Dbp_offline.Ddff_analysis.analyze inst in
        let ddff_failures = Dbp_offline.Ddff_analysis.check ddff in
        let cbdt = Dbp_online.Cbdt_analysis.analyze ~rho:3. inst in
        let cbdt_failures = Dbp_online.Cbdt_analysis.check cbdt in
        let min_avg =
          List.filter_map
            (fun s -> s.Dbp_online.Cbdt_analysis.stage2_min_avg_level)
            cbdt.Dbp_online.Cbdt_analysis.stages
          |> function
          | [] -> Float.nan
          | xs -> List.fold_left Float.min Float.infinity xs
        in
        [
          Printf.sprintf "with_mu(seed=%d)" seed;
          Report.cell_i (List.length ddff.Dbp_offline.Ddff_analysis.reports);
          (if ddff_failures = [] then "pass" else "FAIL");
          Report.cell_i (List.length cbdt.Dbp_online.Cbdt_analysis.stages);
          (if Float.is_nan min_avg then "-"
           else Report.cell_f ~decimals:3 min_avg);
          (if cbdt_failures = [] then "pass" else "FAIL");
        ])
  in
  Report.make
    ~columns:
      [
        ("instance", Report.Left);
        ("ddff bins audited", Report.Right);
        ("sec-4.1 checks", Report.Right);
        ("cbdt categories", Report.Right);
        ("min stage-2 avg level (>0.5)", Report.Right);
        ("sec-5.2 checks", Report.Right);
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* S1/S2: substrate ablations.                                          *)

let lower_bound_quality ?(seeds = 5) () =
  let rows =
    [ ("small-sparse", 0.3, 40.); ("small-dense", 1.0, 15.) ]
    |> List.map (fun (name, arrival_rate, horizon) ->
           let fractions =
             List.init seeds (fun seed ->
                 let inst =
                   Dbp_workload.Generator.generate ~seed
                     { Dbp_workload.Generator.default with arrival_rate; horizon }
                 in
                 let opt = Dbp_opt.Opt_total.value inst in
                 if opt <= 0. then (1., 1., 1.)
                 else
                   ( Dbp_opt.Lower_bounds.demand inst /. opt,
                     Dbp_opt.Lower_bounds.span inst /. opt,
                     Dbp_opt.Lower_bounds.ceil_size_integral inst /. opt ))
           in
           let mean f = Stats.mean (List.map f fractions) in
           [
             name;
             Report.cell_f ~decimals:3 (mean (fun (d, _, _) -> d));
             Report.cell_f ~decimals:3 (mean (fun (_, s, _) -> s));
             Report.cell_f ~decimals:3 (mean (fun (_, _, c) -> c));
           ])
  in
  Report.make
    ~columns:
      [
        ("workload", Report.Left);
        ("d(R)/OPT (Prop 1)", Report.Right);
        ("span/OPT (Prop 2)", Report.Right);
        ("ceil-integral/OPT (Prop 3)", Report.Right);
      ]
    ~rows

let exact_solver_gap ?(seeds = 5) () =
  let counts = Hashtbl.create 8 in
  let record gap =
    Hashtbl.replace counts gap (1 + Option.value ~default:0 (Hashtbl.find_opt counts gap))
  in
  let solves = ref 0 and worst_gap = ref 0 in
  List.iter
    (fun seed ->
      let inst =
        Dbp_workload.Generator.generate ~seed
          {
            Dbp_workload.Generator.default with
            arrival_rate = 1.5;
            horizon = 20.;
            size = Dbp_workload.Distribution.uniform ~lo:0.15 ~hi:0.8;
          }
      in
      let times = Instance.critical_times inst in
      List.iter
        (fun t ->
          let sizes = Instance.active_at inst t |> List.map Item.size in
          if sizes <> [] then begin
            incr solves;
            let ffd = Dbp_opt.Bin_packing_exact.ffd_count sizes in
            let opt = Dbp_opt.Bin_packing_exact.optimal_count sizes in
            let gap = ffd - opt in
            worst_gap := max !worst_gap gap;
            record gap
          end)
        times)
    (List.init seeds (fun i -> i));
  let optimal_fraction =
    float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts 0))
    /. float_of_int (max 1 !solves)
  in
  Report.make
    ~columns:
      [
        ("metric", Report.Left);
        ("value", Report.Right);
      ]
    ~rows:
      [
        [ "per-instant packings solved"; Report.cell_i !solves ];
        [ "FFD already optimal"; Printf.sprintf "%.1f%%" (100. *. optimal_fraction) ];
        [ "worst FFD - OPT bin gap"; Report.cell_i !worst_gap ];
      ]

let learned_clairvoyance ?(seeds = 3) () =
  let day = 1440. in
  let template_key item = Printf.sprintf "%.2f" (Item.size item) in
  let rows =
    List.init seeds (fun seed ->
        let both =
          Dbp_workload.Analytics.generate ~seed
            { Dbp_workload.Analytics.default with horizon = 2. *. day }
        in
        let day1 = Instance.restrict both (fun r -> Item.arrival r < day) in
        let day2 = Instance.restrict both (fun r -> Item.arrival r >= day) in
        let predictor = Dbp_forecast.Predictor.create ~key:template_key () in
        Dbp_forecast.Predictor.observe_all predictor day1;
        let estimate = Dbp_forecast.Predictor.estimator ~fallback:5. predictor in
        let rho =
          Dbp_online.Classify_departure.optimal_rho
            ~delta:(Instance.min_duration day2)
            ~mu:(Instance.mu day2)
        in
        let ratio algo =
          Dbp_opt.Lower_bounds.ratio_to_best day2
            (Packing.total_usage_time (Dbp_online.Engine.run algo day2))
        in
        [
          Printf.sprintf "seed %d (%d jobs)" seed (Instance.length day2);
          Report.cell_f ~decimals:2
            (Dbp_forecast.Predictor.mean_absolute_error predictor day2);
          Report.cell_f ~decimals:3
            (ratio (Dbp_online.Classify_departure.make ~estimate ~rho ()));
          Report.cell_f ~decimals:3
            (ratio (Dbp_forecast.Learned_classifier.make ~fallback:5. ~rho ()));
          Report.cell_f ~decimals:3
            (ratio (Dbp_online.Classify_departure.make ~rho ()));
          Report.cell_f ~decimals:3 (ratio Dbp_online.Any_fit.first_fit);
        ])
  in
  Report.make
    ~columns:
      [
        ("instance", Report.Left);
        ("MAE (min)", Report.Right);
        ("cbdt pre-trained", Report.Right);
        ("cbdt cold-start", Report.Right);
        ("cbdt oracle", Report.Right);
        ("first-fit blind", Report.Right);
      ]
    ~rows

let migration_value ?(seeds = 5) () =
  let rows =
    List.init seeds (fun seed ->
        let inst =
          Dbp_workload.Generator.generate ~seed
            {
              Dbp_workload.Generator.default with
              arrival_rate = 0.35;
              horizon = 30.;
            }
        in
        let schedule = Dbp_migration.Migrating_schedule.build inst in
        let rigid = Dbp_opt.Brute_force.optimal_usage inst in
        let ddff = Packing.total_usage_time (Dbp_offline.Ddff.pack inst) in
        let adv = schedule.Dbp_migration.Migrating_schedule.cost in
        [
          Printf.sprintf "seed %d (%d items)" seed (Instance.length inst);
          Report.cell_f ~decimals:2 adv;
          Report.cell_f ~decimals:2 rigid;
          Report.cell_f ~decimals:3 (if adv > 0. then rigid /. adv else 1.);
          Report.cell_i schedule.Dbp_migration.Migrating_schedule.migrations;
          Report.cell_f ~decimals:3 (if adv > 0. then ddff /. adv else 1.);
        ])
  in
  Report.make
    ~columns:
      [
        ("instance", Report.Left);
        ("migrating OPT", Report.Right);
        ("rigid OPT", Report.Right);
        ("rigid/migrating", Report.Right);
        ("migrations used", Report.Right);
        ("ddff/migrating", Report.Right);
      ]
    ~rows

let optimality_bracket ?(seeds = 3) () =
  let family_names = List.map fst (families ~seed:0) in
  let rows =
    List.map
      (fun family ->
        let instances =
          List.init seeds (fun seed -> List.assoc family (families ~seed))
        in
        let stats f = Stats.mean (List.map f instances) in
        let lb = stats Dbp_opt.Lower_bounds.best in
        let ddff =
          stats (fun i -> Packing.total_usage_time (Dbp_offline.Ddff.pack i))
        in
        let ls = stats (fun i -> Dbp_opt.Local_search.upper_bound i) in
        [
          family;
          Report.cell_f ~decimals:1 lb;
          Report.cell_f ~decimals:1 ls;
          Report.cell_f ~decimals:1 ddff;
          Report.cell_f ~decimals:3 (ls /. lb);
          Report.cell_f ~decimals:3 (ddff /. ls);
        ])
      family_names
  in
  Report.make
    ~columns:
      [
        ("workload", Report.Left);
        ("lower bound", Report.Right);
        ("LS upper bound", Report.Right);
        ("ddff", Report.Right);
        ("bracket (UB/LB)", Report.Right);
        ("ddff vs LS", Report.Right);
      ]
    ~rows

let all ?pool () =
  [
    ("F8  figure-8 theoretical curves", figure8 ?pool ());
    ("F8x bound landscape (all cited closed forms)", bound_landscape ());
    ("T1  ddff approximation ratio (Theorem 1, bound 5)", ddff_ratio ());
    ( "T2  dual-coloring approximation ratio (Theorem 2, bound 4)",
      dual_coloring_ratio () );
    ("T3  golden-ratio online lower bound (Theorem 3)", lower_bound_gadget ());
    ("T4  classify-by-departure-time sweep (Theorem 4)", cbdt_sweep ?pool ());
    ("T5  classify-by-duration sweep (Theorem 5)", cbd_sweep ?pool ());
    ("F8e empirical ratio vs mu (Figure 8 counterpart)", ratio_vs_mu ?pool ());
    ("E1  cloud-gaming workload comparison", gaming_compare ?pool ());
    ("E2  recurring-analytics workload comparison", analytics_compare ?pool ());
    ( "E3  combined-strategy ablation (Section 5.4/6)",
      combined_ablation ?pool () );
    ("E4  non-clairvoyant traps", nonclairvoyant_gadgets ());
    ( "E5  robustness to inaccurate duration estimates (Section 6)",
      estimate_robustness () );
    ("E6  multi-resource packing (Section 6)", multidim_compare ());
    ("E7  flexible jobs: slack sweep (Section 6)", flexibility_sweep ());
    ("E8  quantized billing sweep (motivation, EC2-style)", billing_sweep ());
    ("E9  soft departure alignment (extension)", soft_alignment ());
    ("R1  randomization vs the Theorem-3 gadget", randomized_gadget ());
    ("A1  DDFF placement-rule ablation", ddff_rule_ablation ());
    ("I1  interval scheduling special case (Section 5.3 remark)",
      interval_scheduling ());
    ("A2  dual-coloring pick-rule ablation", dual_coloring_pick_ablation ());
    ("E10 provisioning-cost sensitivity", startup_cost_sweep ());
    ("P1  proof-structure audit (Sections 4.1 and 5.2)", proof_audit ());
    ("S1  lower-bound quality vs exact OPT_total", lower_bound_quality ());
    ("S2  FFD vs exact bin packing gap", exact_solver_gap ());
    ("F1  learned clairvoyance (train day 1, schedule day 2)",
      learned_clairvoyance ());
    ("M1  value of migration (adversary vs rigid optimum)", migration_value ());
    ("S3  optimality bracket (LB vs local-search UB)", optimality_bracket ());
  ]

let _ = fmt
