module R = Dbp_faults.Resilient

type row = {
  label : string;
  fault_free_usage : float;
  usage : float;
  inflation : float;
  crashes : int;
  evicted : int;
  recovered : int;
  rejected : int;
  retries : int;
  slipped : int;
  injected : int;
  rejection_rate : float;
  lost_demand : float;
}

let row_of ~label ~fault_free_usage (o : R.outcome) =
  let displaced = o.R.evicted + o.R.slipped in
  {
    label;
    fault_free_usage;
    usage = o.R.usage_time;
    inflation =
      (if fault_free_usage > 0. then o.R.usage_time /. fault_free_usage else 1.);
    crashes = o.R.crashes_fired;
    evicted = o.R.evicted;
    recovered = o.R.recovered;
    rejected = o.R.rejected;
    retries = o.R.retries;
    slipped = o.R.slipped;
    injected = o.R.injected;
    rejection_rate =
      (if displaced > 0 then float_of_int o.R.rejected /. float_of_int displaced
       else 0.);
    lost_demand = o.R.lost_demand;
  }

let evaluate ?policy algos plan instance =
  List.map
    (fun (label, algo) ->
      let fault_free_usage = Dbp_online.Engine.usage_time algo instance in
      let outcome = R.run ?policy algo instance plan in
      row_of ~label ~fault_free_usage outcome)
    algos

let table rows =
  Report.labeled ~label:"algorithm"
    ~columns:
      [
        "usage";
        "fault-free";
        "inflation";
        "crashes";
        "evicted";
        "recovered";
        "rejected";
        "rej-rate";
        "retries";
        "slipped";
        "injected";
        "lost-demand";
      ]
    ~rows:
      (List.map
         (fun r ->
           ( r.label,
             [
               Report.cell_f ~decimals:2 r.usage;
               Report.cell_f ~decimals:2 r.fault_free_usage;
               Report.cell_f ~decimals:4 r.inflation;
               Report.cell_i r.crashes;
               Report.cell_i r.evicted;
               Report.cell_i r.recovered;
               Report.cell_i r.rejected;
               Report.cell_f ~decimals:3 r.rejection_rate;
               Report.cell_i r.retries;
               Report.cell_i r.slipped;
               Report.cell_i r.injected;
               Report.cell_f ~decimals:2 r.lost_demand;
             ] ))
         rows)

let pp_row ppf r =
  Format.fprintf ppf
    "%s: usage %.2f (fault-free %.2f, x%.4f), %d evicted / %d recovered / %d \
     rejected"
    r.label r.usage r.fault_free_usage r.inflation r.evicted r.recovered
    r.rejected
