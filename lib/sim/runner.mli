(** Running a portfolio of algorithms on instances and scoring them.

    A [packer] is any function from instance to packing — offline
    algorithms directly, online algorithms through {!Dbp_online.Engine} —
    paired with a label for reports.  The runner evaluates each packer on
    an instance against the Proposition-3 lower bound and (optionally,
    when the instance is small enough) the exact repacking adversary
    OPT_total. *)

open Dbp_core

type packer = { label : string; pack : Instance.t -> Packing.t }

val offline : string -> (Instance.t -> Packing.t) -> packer
val online : Dbp_online.Engine.t -> packer
(** Label taken from the engine algorithm's name. *)

val online_tuned :
  string -> (Instance.t -> Dbp_online.Engine.t) -> packer
(** An online algorithm whose parameters are set per-instance from scalar
    statistics (Delta, mu) the theorems allow it to know. *)

val default_portfolio : packer list
(** The standard comparison set: ddff, dual-coloring, first-fit,
    best-fit, worst-fit, next-fit, hybrid-ff, cbdt-ff (tuned), cbd-ff
    (tuned), combined-ff (tuned). *)

val names : string list
(** Labels of the default portfolio, for CLI completion/validation. *)

val by_name : string -> packer option
(** Look a portfolio member up by its label (e.g. "ddff", "cbdt-ff*"). *)

val engines : Instance.t -> (string * Dbp_online.Engine.t) list
(** The portfolio's online members as engines, labelled exactly as their
    packers.  Tuned members are parameterised against the given
    instance.  Used by callers needing engine-level access — decision
    tracing re-runs [Engine.run ~observer] on these. *)

type score = {
  label : string;
  usage : float;
  bins : int;
  max_concurrent : int;
  utilization : float;
  ratio_lb : float;  (** usage / Proposition-3 lower bound (upper bounds
                         the true ratio) *)
  ratio_opt : float option;  (** usage / OPT_total when computed *)
}

val evaluate :
  ?pool:Dbp_par.Pool.t ->
  ?profile:Dbp_obs.Profile.t ->
  ?opt:bool ->
  packer list ->
  Instance.t ->
  score list
(** @param pool run the packers across the pool's domains; scores keep
    packer order, bit-identical to the sequential run.
    @param profile charge the whole evaluation to phase
    ["runner.evaluate"] (one sample per call — per-packer timing inside
    pool workers would race on the profiler).
    @param opt also compute exact OPT_total ratios (default false; cost is
    exponential in the per-instant active-item count). *)

val score_table : score list -> Report.table

val pp_score : Format.formatter -> score -> unit
