(** The experiment suite: one entry per paper artifact (DESIGN.md Section
    4), each returning a {!Report.table} whose rows are what the paper
    reports (or what an empirical counterpart of a theorem reports).

    Conventions: "ratio/LB" columns are usage divided by the
    Proposition-3 lower bound — an *upper bound* on the true ratio to
    OPT, so a value within a theorem's bound certifies the theorem on
    that instance; "ratio/OPT" columns use the exact repacking adversary
    and are only computed on small instances. *)

val figure8 : ?pool:Dbp_par.Pool.t -> ?mus:float list -> unit -> Report.table
(** F8: the three theoretical curves of the paper's Figure 8. *)

val figure8_crossover : unit -> float

val bound_landscape : ?mus:float list -> unit -> Report.table
(** F8x: every closed-form bound the paper states or cites, side by side
    as functions of mu — the non-clairvoyant upper bounds (First Fit old
    and new, Next Fit, Hybrid FF, the Any Fit lower bound), the prior
    online interval-scheduling bound (BucketFirstFit) and the paper's two
    clairvoyant bounds.  Shows at a glance where clairvoyance changes the
    asymptotics. *)

val ddff_ratio : ?seeds:int -> unit -> Report.table
(** T1: DDFF measured ratios across workload families; every ratio/OPT
    must be <= 5. *)

val dual_coloring_ratio : ?seeds:int -> unit -> Report.table
(** T2: Dual Coloring measured ratios; every ratio/OPT must be <= 4. *)

val lower_bound_gadget : unit -> Report.table
(** T3: the golden-ratio gadget.  For each online algorithm, the ratio on
    case A, on case B, and the max of the two — which Theorem 3 says
    cannot be below (1+sqrt 5)/2 ~= 1.618 for any deterministic online
    algorithm at x = phi. *)

val cbdt_sweep :
  ?pool:Dbp_par.Pool.t -> ?seeds:int -> ?mu:float -> unit -> Report.table
(** T4: classify-by-departure-time First Fit across rho, measured ratio
    vs the Theorem 4 bound rho/Delta + mu Delta/rho + 3. *)

val cbd_sweep :
  ?pool:Dbp_par.Pool.t -> ?seeds:int -> ?mu:float -> unit -> Report.table
(** T5: classify-by-duration First Fit across alpha, measured ratio vs
    the Theorem 5 bound alpha + ceil(log_alpha mu) + 4. *)

val ratio_vs_mu :
  ?pool:Dbp_par.Pool.t -> ?seeds:int -> ?mus:float list -> unit -> Report.table
(** Empirical Figure 8 counterpart: portfolio mean ratios as mu grows. *)

val gaming_compare : ?pool:Dbp_par.Pool.t -> ?seeds:int -> unit -> Report.table
(** E1: the portfolio on the cloud-gaming workload. *)

val analytics_compare :
  ?pool:Dbp_par.Pool.t -> ?seeds:int -> unit -> Report.table
(** E2: the portfolio on the recurring-analytics workload. *)

val combined_ablation :
  ?pool:Dbp_par.Pool.t -> ?seeds:int -> ?mus:float list -> unit -> Report.table
(** E3: the two single classification strategies vs their combination. *)

val nonclairvoyant_gadgets : unit -> Report.table
(** E4: the duration-mixing trap (Any Fit pays ~mu, classification
    recovers), the staggered-departure gadget (prices classification's
    fragmentation overhead) and a random adversarial search. *)

val flexibility_sweep : ?seeds:int -> unit -> Report.table
(** E7: the paper's Section-6 flexible-jobs direction (release times and
    deadlines a la Khandekar et al.).  Sweeps the window slack (as a
    multiple of the job length) and reports total usage of the asap,
    alap and greedy schedulers relative to the slack-0 (rigid) baseline:
    how much does scheduling freedom reduce server time? *)

val multidim_compare : ?seeds:int -> unit -> Report.table
(** E6: the paper's Section-6 multi-resource direction.  Three-dimensional
    (CPU/memory/bandwidth) workloads packed by the generalised
    algorithms, scored against the generalised Proposition-3 lower bound
    (the per-instant ceiling of the most loaded dimension). *)

val estimate_robustness : ?seeds:int -> ?mu:float -> unit -> Report.table
(** E5: the paper's Section-6 question — classification driven by noisy
    departure estimates.  Sweeps the lognormal error sigma and reports
    the ratio degradation of cbdt-ff and cbd-ff relative to perfect
    clairvoyance and to blind First Fit. *)

val startup_cost_sweep : ?seeds:int -> unit -> Report.table
(** E10: server provisioning overhead.  Real servers cost startup time
    before doing work, which the usage-time objective ignores; with a
    per-acquisition surcharge c the effective cost is
    usage + c * bins_opened.  Sweeping c on the gaming workload shows how
    quickly bin-hungry strategies (the classifiers) fall behind and where
    the ranking flips. *)

val dual_coloring_pick_ablation : ?seeds:int -> unit -> Report.table
(** A2: the Phase-1 step-7 pick rule the paper leaves open.  Compares
    smallest-id, longest-duration and largest-demand tie-breaking on the
    Dual Coloring ratio; the lemmas (and the 4x bound) hold for all
    three, so this measures only average-case quality. *)

val soft_alignment : ?seeds:int -> unit -> Report.table
(** E9 (extension): soft departure alignment vs the paper's hard
    rho-grid classification, across the benign workloads and the
    adversarial trap.  Measures whether dropping the category walls
    recovers the fragmentation overhead without losing the trap
    robustness. *)

val interval_scheduling : ?seeds:int -> ?g:int -> unit -> Report.table
(** I1: the Section 5.3 remark.  Interval scheduling with bounded
    parallelism is the special case where every job demands 1/g of a
    machine; on such instances classify-by-duration First Fit is exactly
    Shalom et al.'s BucketFirstFit, and the paper's bound
    alpha + ceil(log_alpha mu) + 4 improves their
    (2 alpha + 2) ceil(log_alpha mu).  The experiment packs unit-demand
    workloads and reports the measured ratio against both bounds. *)

val ddff_rule_ablation : ?seeds:int -> unit -> Report.table
(** A1: what does the *first fit* rule contribute to Theorem 1's
    algorithm?  Same duration-descending order, three placement rules
    (first fit / best fit / next fit), mean ratio/LB across workload
    families. *)

val randomized_gadget : ?trials:int -> unit -> Report.table
(** R1: Theorem 3's lower bound is for *deterministic* algorithms.  This
    experiment runs the biased-open randomised First Fit on the
    golden-ratio gadget and reports the expected ratio on each case and
    the max of the two as the open probability p sweeps.  Around p = 1/4
    the expected worst case dips to ~1.53, below the deterministic bound
    phi ~= 1.618 — the standard separation between deterministic and
    randomised competitiveness.  (The naive two-point analysis suggests
    ~1.31 at p = 1/2, but this algorithm keeps flipping its coin on the
    later items too, which costs it on case B.) *)

val billing_sweep : ?seeds:int -> unit -> Report.table
(** E8: the systems layer behind the paper's motivation — pay-per-quantum
    billing (EC2 billed whole hours in 2016).  Sweeps the billing quantum
    on the cloud-gaming workload and prices First Fit and tuned
    classify-by-departure-time with and without paid-idle server reuse,
    relative to the per-second bill. *)

val proof_audit : ?seeds:int -> unit -> Report.table
(** P1: machine-check of the proofs' internal structure on concrete
    workloads — the Section 4.1 X-period/witness decomposition behind
    Theorem 1 and the Section 5.2 three-stage decomposition (single bin
    in stage 1, Lemma 6's average level > 1/2 in stage 2) behind
    Theorem 4. *)

val lower_bound_quality : ?seeds:int -> unit -> Report.table
(** S1 (substrate ablation): how tight are Propositions 1-3 against the
    exact repacking adversary OPT_total on small instances?  Reports each
    bound as a fraction of OPT_total. *)

val exact_solver_gap : ?seeds:int -> unit -> Report.table
(** S2 (substrate ablation): First Fit Decreasing vs the exact
    branch-and-bound bin-packing solver across the per-instant packing
    problems of random instances: how often FFD is already optimal, and
    the worst bin-count gap. *)

val learned_clairvoyance : ?seeds:int -> unit -> Report.table
(** F1: closing the loop on the clairvoyance assumption.  A per-class
    duration predictor is trained on day 1 of the recurring-analytics
    workload and drives classify-by-departure-time on day 2; compared
    against the oracle (true departures) and blind First Fit.  Also
    reports the predictor's mean absolute duration error on day 2. *)

val migration_value : ?seeds:int -> unit -> Report.table
(** M1: the price of the paper's no-migration rule.  On small instances
    the exact migrating adversary (OPT_total, realised as an explicit
    schedule) is compared with the exact non-migrating optimum and with
    DDFF; the adversary's actual migration count is reported.  A small
    gap justifies measuring algorithms against OPT_total even though real
    schedulers cannot migrate. *)

val optimality_bracket : ?seeds:int -> unit -> Report.table
(** S3: bracketing OPT on medium instances where the exact solver cannot
    reach: Proposition-3 lower bound from below, local-search-improved
    DDFF from above.  The bracket width bounds how much of the measured
    "ratio/LB" is algorithm suboptimality vs lower-bound slack. *)

val all : ?pool:Dbp_par.Pool.t -> unit -> (string * Report.table) list
(** Every experiment above with its id, at default sizes — the content of
    EXPERIMENTS.md and of the bench executable's report section.  [pool]
    is threaded to the sweep-shaped experiments (F8, T4, T5, F8e, E1,
    E2, E3); tables are bit-identical with and without it. *)
