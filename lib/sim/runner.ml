open Dbp_core

type packer = { label : string; pack : Instance.t -> Packing.t }

let offline label pack = { label; pack }

let online algo =
  { label = algo.Dbp_online.Engine.name; pack = Dbp_online.Engine.run algo }

let online_tuned label make =
  { label; pack = (fun inst -> Dbp_online.Engine.run (make inst) inst) }

let default_portfolio =
  [
    offline "ddff" Dbp_offline.Ddff.pack;
    offline "dual-coloring" Dbp_offline.Dual_coloring.pack;
    offline "narrow-wide" Dbp_offline.Narrow_wide.pack;
    online Dbp_online.Any_fit.first_fit;
    online Dbp_online.Any_fit.best_fit;
    online Dbp_online.Any_fit.worst_fit;
    online Dbp_online.Any_fit.next_fit;
    online (Dbp_online.Hybrid_first_fit.make ());
    online_tuned "cbdt-ff*" Dbp_online.Classify_departure.tuned;
    online_tuned "aligned-ff*" Dbp_online.Departure_aligned.tuned;
    online_tuned "cbd-ff*" (fun inst ->
        Dbp_online.Classify_duration.tuned inst);
    online_tuned "combined-ff*" (fun inst ->
        Dbp_online.Classify_combined.tuned inst);
  ]

let names = List.map (fun p -> p.label) default_portfolio

let by_name name =
  List.find_opt (fun p -> String.equal p.label name) default_portfolio

(* The portfolio's online members as engines (labels matching the packer
   labels), for callers that need engine-level access — e.g. decision
   tracing, which re-runs [Engine.run ~observer] rather than going
   through the opaque [pack] closures.  Tuned members are resolved
   against the given instance, exactly as their packers would. *)
let engines instance =
  let named e = (e.Dbp_online.Engine.name, e) in
  [
    named Dbp_online.Any_fit.first_fit;
    named Dbp_online.Any_fit.best_fit;
    named Dbp_online.Any_fit.worst_fit;
    named Dbp_online.Any_fit.next_fit;
    named (Dbp_online.Hybrid_first_fit.make ());
    ("cbdt-ff*", Dbp_online.Classify_departure.tuned instance);
    ("aligned-ff*", Dbp_online.Departure_aligned.tuned instance);
    ("cbd-ff*", Dbp_online.Classify_duration.tuned instance);
    ("combined-ff*", Dbp_online.Classify_combined.tuned instance);
  ]

type score = {
  label : string;
  usage : float;
  bins : int;
  max_concurrent : int;
  utilization : float;
  ratio_lb : float;
  ratio_opt : float option;
}

let evaluate ?pool ?profile ?(opt = false) packers instance =
  let lb = Dbp_opt.Lower_bounds.best instance in
  let opt_total =
    if opt then Some (Dbp_opt.Opt_total.value instance) else None
  in
  (* Packers are independent; scores come back in packer order either
     way, so the parallel run is bit-identical to the sequential one. *)
  let map f xs =
    match pool with
    | None -> List.map f xs
    | Some pool -> Dbp_par.Pool.parallel_map pool f xs
  in
  let run_all () =
    map
      (fun p ->
        let packing = p.pack instance in
        let usage = Packing.total_usage_time packing in
        {
          label = p.label;
          usage;
          bins = Packing.bin_count packing;
          max_concurrent = Packing.max_concurrent_bins packing;
          utilization = Packing.utilization packing;
          ratio_lb = (if lb > 0. then usage /. lb else 1.);
          ratio_opt =
            Option.map (fun o -> if o > 0. then usage /. o else 1.) opt_total;
        })
      packers
  in
  (* One phase sample around the whole evaluation: timing individual
     packers inside pool workers would race on the profiler. *)
  match profile with
  | None -> run_all ()
  | Some prof -> Dbp_obs.Profile.time prof "runner.evaluate" run_all

let score_table scores =
  let has_opt = List.exists (fun s -> s.ratio_opt <> None) scores in
  Report.labeled ~label:"algorithm"
    ~columns:
      ([ "usage"; "bins"; "max-conc"; "util"; "ratio/LB" ]
      @ if has_opt then [ "ratio/OPT" ] else [])
    ~rows:
      (List.map
         (fun s ->
           ( s.label,
             [
               Report.cell_f ~decimals:2 s.usage;
               Report.cell_i s.bins;
               Report.cell_i s.max_concurrent;
               Report.cell_f ~decimals:3 s.utilization;
               Report.cell_f ~decimals:3 s.ratio_lb;
             ]
             @
             match (has_opt, s.ratio_opt) with
             | false, _ -> []
             | true, Some r -> [ Report.cell_f ~decimals:3 r ]
             | true, None -> [ "-" ] ))
         scores)

let pp_score ppf s =
  Format.fprintf ppf "%s: usage=%.4g bins=%d ratio/LB=%.3f" s.label s.usage
    s.bins s.ratio_lb
