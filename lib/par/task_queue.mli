(** Per-worker chunk queues with simple stealing.

    Holds the chunk indices of one parallel job, dealt round-robin across
    a fixed set of workers at creation.  Each worker pops its own queue
    from the front; a worker whose queue is empty steals from the back of
    the most loaded other queue.

    Not thread-safe on its own: the pool performs every operation under
    its lock (chunks are coarse batches of simulation runs, so serialised
    scheduling costs nothing measurable), and only chunk {e execution}
    runs outside it. *)

type t

val create : workers:int -> chunks:int -> t
(** Chunk ids [0 .. chunks-1] dealt round-robin over [workers] queues.
    @raise Invalid_argument if [workers < 1] or [chunks < 0]. *)

val workers : t -> int

val length : t -> int -> int
(** Chunks currently queued for one worker. *)

val remaining : t -> int
(** Chunks not yet taken, over all queues. *)

val take : t -> worker:int -> int option
(** The next chunk for [worker]: its own front, else a steal from the
    back of the longest other queue, else [None] (the job has no chunks
    left to start; some may still be running elsewhere).
    @raise Invalid_argument if [worker] is out of range. *)

val steals : t -> int
(** How many {!take}s were served by stealing from another worker's
    queue.  Feeds the pool's scheduling statistics. *)
