(* A fixed-size domain pool, from scratch on Domain/Mutex/Condition.

   Design (DESIGN.md section 11):

   - [create ~domains:n] spawns n-1 worker domains; the submitting
     thread is worker 0 and executes chunks too, so [~domains:1] spawns
     nothing and every parallel_* call degenerates to the plain
     sequential loop.  Determinism is the contract: task [i] always
     computes the same value and lands in slot [i] of the result, so a
     run under any pool size is bit-identical to the sequential run.

   - One job at a time.  Submission chunks the index space, deals the
     chunks round-robin into per-worker queues (Task_queue), wakes the
     workers, and drains chunks itself until none are left to start,
     then blocks until the in-flight ones finish.

   - All scheduling state is under one mutex; only chunk execution runs
     outside it.  Chunks are coarse (batches of simulation runs), so the
     serialised scheduler is never the bottleneck; what matters is that
     workers sleep on a condition variable between jobs instead of
     spinning.

   - First failure wins: a task that raises records (index, exn), flips
     the job's cancellation flag (an Atomic, the only lock-free state,
     so running chunks can observe it between tasks without taking the
     lock) and the submitter re-raises [Task_error] once the job
     settles.  Chunks not yet started are skipped, finished results are
     discarded, and the pool stays usable. *)

exception Task_error of int * exn

let () =
  Printexc.register_printer (function
    | Task_error (index, e) ->
        Some
          (Printf.sprintf "Dbp_par.Pool.Task_error (task %d, %s)" index
             (Printexc.to_string e))
    | _ -> None)

let max_default_domains = 8

let default_domains () =
  let d = Domain.recommended_domain_count () - 1 in
  if d < 1 then 1 else if d > max_default_domains then max_default_domains else d

let available_cores () = Domain.recommended_domain_count ()

type job = {
  queue : Task_queue.t;
  ranges : (int * int) array;  (* chunk c runs tasks [lo, hi) *)
  run_task : int -> unit;
  mutable unfinished : int;  (* chunks not yet completed *)
  mutable failure : (int * exn) option;  (* smallest observed task index *)
  cancelled : bool Atomic.t;
}

type stats = { jobs : int; chunks : int; steals : int }

type t = {
  lock : Mutex.t;
  have_work : Condition.t;  (* workers: a new job (or shutdown) *)
  all_done : Condition.t;  (* submitter: unfinished reached 0 *)
  mutable current : job option;
  mutable epoch : int;  (* bumped per job; workers drain each epoch once *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
  size : int;
  (* lifetime scheduling statistics, accumulated under [lock] as each
     job settles *)
  mutable s_jobs : int;
  mutable s_chunks : int;
  mutable s_steals : int;
}

let domains t = t.size

let record_failure job index e =
  (match job.failure with
  | Some (i, _) when i <= index -> ()
  | Some _ | None -> job.failure <- Some (index, e));
  Atomic.set job.cancelled true

(* Run one chunk's tasks outside the lock; [None] = clean (including
   skipped-by-cancellation), [Some (i, e)] = task i raised e. *)
let run_chunk job ~lo ~hi =
  let rec go i =
    if i >= hi || Atomic.get job.cancelled then None
    else
      match job.run_task i with
      | () -> go (i + 1)
      | exception e -> Some (i, e)
  in
  go lo

(* Take and run chunks until none are left to start.  Lock held on entry
   and on exit. *)
let drain t job ~worker =
  let rec loop () =
    match Task_queue.take job.queue ~worker with
    | None -> ()
    | Some c ->
        let lo, hi = job.ranges.(c) in
        Mutex.unlock t.lock;
        let outcome = run_chunk job ~lo ~hi in
        Mutex.lock t.lock;
        (match outcome with
        | Some (i, e) -> record_failure job i e
        | None -> ());
        job.unfinished <- job.unfinished - 1;
        if job.unfinished = 0 then Condition.broadcast t.all_done;
        loop ()
  in
  loop ()

let worker_loop t ~worker () =
  Mutex.lock t.lock;
  let drained = ref 0 in
  let rec loop () =
    if t.shutting_down then Mutex.unlock t.lock
    else
      match t.current with
      | Some job when t.epoch <> !drained ->
          drained := t.epoch;
          drain t job ~worker;
          loop ()
      | Some _ | None ->
          Condition.wait t.have_work t.lock;
          loop ()
  in
  loop ()

let create ?domains () =
  let size = match domains with Some d -> d | None -> default_domains () in
  if size < 1 then invalid_arg "Pool.create: domains < 1";
  let t =
    {
      lock = Mutex.create ();
      have_work = Condition.create ();
      all_done = Condition.create ();
      current = None;
      epoch = 0;
      shutting_down = false;
      workers = [];
      size;
      s_jobs = 0;
      s_chunks = 0;
      s_steals = 0;
    }
  in
  t.workers <-
    List.init (size - 1) (fun i -> Domain.spawn (worker_loop t ~worker:(i + 1)));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.shutting_down <- true;
  Condition.broadcast t.have_work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let stats t =
  Mutex.lock t.lock;
  let s = { jobs = t.s_jobs; chunks = t.s_chunks; steals = t.s_steals } in
  Mutex.unlock t.lock;
  s

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* The sequential backstop: same task order, same failure contract. *)
let sequential_for n run_task =
  let rec go i =
    if i < n then
      match run_task i with
      | () -> go (i + 1)
      | exception e -> raise (Task_error (i, e))
  in
  go 0

let chunk_size t ~chunk n =
  match chunk with
  | Some c ->
      if c < 1 then invalid_arg "Pool.parallel: chunk < 1";
      c
  | None ->
      (* Four chunks per worker balances stealing opportunity against
         scheduling overhead for the fleet sizes the sweeps produce. *)
      let c = n / (t.size * 4) in
      if c < 1 then 1 else c

let parallel_for t ?chunk n run_task =
  if n < 0 then invalid_arg "Pool.parallel_for: negative task count";
  let chunk = chunk_size t ~chunk (max n 1) in
  if n = 0 then ()
  else if t.size = 1 then begin
    sequential_for n run_task;
    Mutex.lock t.lock;
    t.s_jobs <- t.s_jobs + 1;
    t.s_chunks <- t.s_chunks + 1;
    Mutex.unlock t.lock
  end
  else begin
    let chunks = (n + chunk - 1) / chunk in
    let ranges =
      Array.init chunks (fun c -> (c * chunk, min n ((c + 1) * chunk)))
    in
    let job =
      {
        queue = Task_queue.create ~workers:t.size ~chunks;
        ranges;
        run_task;
        unfinished = chunks;
        failure = None;
        cancelled = Atomic.make false;
      }
    in
    Mutex.lock t.lock;
    if t.shutting_down then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.parallel_for: pool is shut down"
    end;
    (match t.current with
    | Some _ ->
        Mutex.unlock t.lock;
        invalid_arg "Pool.parallel_for: a job is already in flight"
    | None -> ());
    t.current <- Some job;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.have_work;
    (* The submitter is worker 0: it drains chunks like everyone else,
       then waits for the stragglers. *)
    drain t job ~worker:0;
    while job.unfinished > 0 do
      Condition.wait t.all_done t.lock
    done;
    t.s_jobs <- t.s_jobs + 1;
    t.s_chunks <- t.s_chunks + chunks;
    t.s_steals <- t.s_steals + Task_queue.steals job.queue;
    t.current <- None;
    Mutex.unlock t.lock;
    match job.failure with
    | Some (i, e) -> raise (Task_error (i, e))
    | None -> ()
  end

let map_array t ?chunk f xs =
  let n = Array.length xs in
  let out = Array.make n None in
  parallel_for t ?chunk n (fun i -> out.(i) <- Some (f xs.(i)));
  Array.map
    (function
      | Some v -> v
      | None -> invalid_arg "Pool.map_array: task produced no result")
    out

let parallel_map t ?chunk f xs =
  Array.to_list (map_array t ?chunk f (Array.of_list xs))

(* ---- resident mode ----------------------------------------------------- *)

(* The daemon-shaped pool variant (DESIGN.md section 16): the epoch-
   signalled job handoff above is the wrong shape for a process that
   keeps per-domain state alive between messages, so a resident owns one
   dedicated domain for its whole lifetime and receives work through a
   bounded mailbox.  The handler closure is the resident state: it is
   created before the domain spawns and touched only by that domain
   afterwards, so per-message mutation needs no further synchronisation.
   Every mailbox operation goes through one mutex, which is also what
   publishes the handler's writes to a caller returning from [sync]
   (mutex release in the worker happens-before acquire in the syncer). *)

exception Resident_error of exn

let () =
  Printexc.register_printer (function
    | Resident_error e ->
        Some
          (Printf.sprintf "Dbp_par.Pool.Resident_error (%s)"
             (Printexc.to_string e))
    | _ -> None)

module Resident = struct
  type 'a t = {
    r_lock : Mutex.t;
    r_not_empty : Condition.t;  (* worker: a message (or close) arrived *)
    r_not_full : Condition.t;  (* poster: mailbox dropped below capacity *)
    r_idle : Condition.t;  (* syncer: processed caught up with posted *)
    r_mailbox : 'a Queue.t;
    r_capacity : int;
    mutable r_posted : int;
    mutable r_processed : int;
    mutable r_closed : bool;
    mutable r_failure : exn option;  (* first handler exception *)
    mutable r_domain : unit Domain.t option;
  }

  let default_capacity = 1024

  (* Messages posted after a handler failure are drained and discarded
     (still counted as processed, so [sync] never deadlocks); the
     failure itself resurfaces on every subsequent operation. *)
  let worker_loop r handler () =
    Mutex.lock r.r_lock;
    let rec loop () =
      if Queue.is_empty r.r_mailbox then
        if r.r_closed then Mutex.unlock r.r_lock
        else begin
          Condition.wait r.r_not_empty r.r_lock;
          loop ()
        end
      else begin
        let msg = Queue.pop r.r_mailbox in
        let failed = r.r_failure <> None in
        Mutex.unlock r.r_lock;
        let outcome =
          if failed then None
          else match handler msg with () -> None | exception e -> Some e
        in
        Mutex.lock r.r_lock;
        (match (outcome, r.r_failure) with
        | Some e, None -> r.r_failure <- Some e
        | _ -> ());
        r.r_processed <- r.r_processed + 1;
        Condition.signal r.r_not_full;
        if r.r_processed = r.r_posted then Condition.broadcast r.r_idle;
        loop ()
      end
    in
    loop ()

  let spawn ?(capacity = default_capacity) handler =
    if capacity < 1 then invalid_arg "Pool.Resident.spawn: capacity < 1";
    let r =
      {
        r_lock = Mutex.create ();
        r_not_empty = Condition.create ();
        r_not_full = Condition.create ();
        r_idle = Condition.create ();
        r_mailbox = Queue.create ();
        r_capacity = capacity;
        r_posted = 0;
        r_processed = 0;
        r_closed = false;
        r_failure = None;
        r_domain = None;
      }
    in
    r.r_domain <- Some (Domain.spawn (worker_loop r handler));
    r

  let fail_if_broken r =
    match r.r_failure with
    | Some e ->
        Mutex.unlock r.r_lock;
        raise (Resident_error e)
    | None -> ()

  let post r msg =
    Mutex.lock r.r_lock;
    fail_if_broken r;
    if r.r_closed then begin
      Mutex.unlock r.r_lock;
      invalid_arg "Pool.Resident.post: mailbox is closed"
    end;
    while Queue.length r.r_mailbox >= r.r_capacity && r.r_failure = None do
      Condition.wait r.r_not_full r.r_lock
    done;
    fail_if_broken r;
    Queue.push msg r.r_mailbox;
    r.r_posted <- r.r_posted + 1;
    Condition.signal r.r_not_empty;
    Mutex.unlock r.r_lock

  let depth r =
    Mutex.lock r.r_lock;
    let d = Queue.length r.r_mailbox in
    Mutex.unlock r.r_lock;
    d

  let posted r =
    Mutex.lock r.r_lock;
    let n = r.r_posted in
    Mutex.unlock r.r_lock;
    n

  let processed r =
    Mutex.lock r.r_lock;
    let n = r.r_processed in
    Mutex.unlock r.r_lock;
    n

  let sync r =
    Mutex.lock r.r_lock;
    while r.r_processed < r.r_posted && r.r_failure = None do
      Condition.wait r.r_idle r.r_lock
    done;
    fail_if_broken r;
    Mutex.unlock r.r_lock

  let close r =
    Mutex.lock r.r_lock;
    r.r_closed <- true;
    Condition.broadcast r.r_not_empty;
    let d = r.r_domain in
    r.r_domain <- None;
    Mutex.unlock r.r_lock;
    (match d with Some d -> Domain.join d | None -> ());
    match r.r_failure with
    | Some e -> raise (Resident_error e)
    | None -> ()
end

module Collector = struct
  type 'a t = { c_lock : Mutex.t; c_queue : 'a Queue.t }

  let create () = { c_lock = Mutex.create (); c_queue = Queue.create () }

  let push c v =
    Mutex.lock c.c_lock;
    Queue.push v c.c_queue;
    Mutex.unlock c.c_lock

  let drain c =
    Mutex.lock c.c_lock;
    let out = List.of_seq (Queue.to_seq c.c_queue) in
    Queue.clear c.c_queue;
    Mutex.unlock c.c_lock;
    out

  let length c =
    Mutex.lock c.c_lock;
    let n = Queue.length c.c_queue in
    Mutex.unlock c.c_lock;
    n
end
