(** A fixed-size domain pool (from scratch: [Domain], [Mutex],
    [Condition]; no domainslib).

    Parallelises the fleets of independent runs behind the sweeps, the
    experiment suite and the bench harness.  The contract is
    {e determinism}: task [i] computes the same value whatever the pool
    size or schedule, results come back in submission order, and a run
    with any [~domains] is bit-identical to the sequential run.  Tasks
    needing randomness derive their stream from the root seed and their
    own index ({!Dbp_workload.Prng.derive}), never from a shared
    generator.

    One job runs at a time; submitting from inside a task (nesting) is
    rejected.  The submitting thread participates as a worker, so a pool
    of size 1 spawns no domains and runs the plain sequential loop.  See
    DESIGN.md section 11. *)

type t

exception Task_error of int * exn
(** Raised by the [parallel_*] functions when a task raises: the failing
    task's index paired with its exception (the smallest observed index,
    when cancellation lets several fail).  The first failure cancels the
    chunks not yet started; in-flight chunks stop at their next task
    boundary; the pool remains usable. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count () - 1] (one core left for the
    submitting thread's own work), clamped to [\[1, 8\]]. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()], unclamped.  Exposed here so
    callers outside [lib/par] never touch [Domain] directly (lint R7,
    concurrency confinement). *)

val create : ?domains:int -> unit -> t
(** A pool of [domains] workers including the caller (default
    {!default_domains}); spawns [domains - 1] domains.
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int

val parallel_for : t -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for t n f] runs [f 0 .. f (n-1)] across the pool in
    batches of [chunk] consecutive indices (default: tasks split into
    about four chunks per worker), dealt round-robin with stealing.
    @raise Task_error on the first task failure.
    @raise Invalid_argument if [n < 0] or [chunk < 1]. *)

val parallel_map : t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Like [List.map], with the elements evaluated across the pool and the
    results routed back in submission order: for a pure [f] the result
    is identical to [List.map f] under every pool size.
    @raise Task_error on the first task failure. *)

val map_array : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map] over arrays. *)

type stats = { jobs : int; chunks : int; steals : int }
(** Lifetime scheduling counters: parallel jobs settled, chunks
    dispatched, and takes served by stealing from another worker's
    queue.  Degenerate (sequential) jobs count as one chunk. *)

val stats : t -> stats
(** Snapshot of the pool's counters, read under the pool lock.  Feeds
    the observability exposition ([dbp ... --metrics-out]); scheduling
    statistics never influence results — determinism is unaffected. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; subsequent [parallel_*] calls
    raise [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

(** {2 Resident mode}

    The daemon-shaped pool variant: where {!parallel_for} hands a
    one-shot job to the whole pool, a {!Resident.t} owns one dedicated
    domain for its entire lifetime and receives messages through a
    bounded mailbox — the shape a sharded service needs for per-domain
    state (a packing session, a journal channel) that must survive
    between messages.  [dbp serve --shards] pins one resident per shard
    (DESIGN.md section 16). *)

exception Resident_error of exn
(** A resident's handler raised.  The first exception is remembered and
    re-raised by every subsequent {!Resident.post}, {!Resident.sync} and
    {!Resident.close}; messages already mailed are drained and
    discarded so no caller deadlocks. *)

module Resident : sig
  type 'a t

  val spawn : ?capacity:int -> ('a -> unit) -> 'a t
  (** Spawn one domain running [handler] over posted messages in post
      order.  The handler closure is the resident's state: created
      before the spawn, touched only by the resident domain afterwards,
      its effects published to callers by {!sync}'s mutex pairing.
      [capacity] (default 1024) bounds the mailbox — {!post} blocks at
      the bound, which is the shard backpressure signal.
      @raise Invalid_argument if [capacity < 1]. *)

  val post : 'a t -> 'a -> unit
  (** Mail one message; blocks while the mailbox is at capacity.
      @raise Resident_error if the handler has failed.
      @raise Invalid_argument after {!close}. *)

  val depth : 'a t -> int
  (** Messages mailed but not yet taken by the handler — the queue-depth
      gauge feeding the admission ladder. *)

  val posted : 'a t -> int

  val processed : 'a t -> int

  val sync : 'a t -> unit
  (** Block until every posted message has been processed.  On return
      the handler's state writes are visible to the caller (and stay
      coherent until the next {!post}).
      @raise Resident_error if the handler has failed. *)

  val close : 'a t -> unit
  (** Drain the mailbox, stop the handler and join the domain.
      Idempotent.
      @raise Resident_error if the handler failed at any point. *)
end

(** A many-producer single-consumer FIFO for routing resident results
    back to the orchestrating thread.  {!Collector.drain} is
    non-blocking: it returns whatever has been pushed so far, in push
    order. *)
module Collector : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit

  val drain : 'a t -> 'a list
  (** All values pushed since the last drain, oldest first; [[]] when
      there is nothing pending. *)

  val length : 'a t -> int
end
