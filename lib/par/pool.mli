(** A fixed-size domain pool (from scratch: [Domain], [Mutex],
    [Condition]; no domainslib).

    Parallelises the fleets of independent runs behind the sweeps, the
    experiment suite and the bench harness.  The contract is
    {e determinism}: task [i] computes the same value whatever the pool
    size or schedule, results come back in submission order, and a run
    with any [~domains] is bit-identical to the sequential run.  Tasks
    needing randomness derive their stream from the root seed and their
    own index ({!Dbp_workload.Prng.derive}), never from a shared
    generator.

    One job runs at a time; submitting from inside a task (nesting) is
    rejected.  The submitting thread participates as a worker, so a pool
    of size 1 spawns no domains and runs the plain sequential loop.  See
    DESIGN.md section 11. *)

type t

exception Task_error of int * exn
(** Raised by the [parallel_*] functions when a task raises: the failing
    task's index paired with its exception (the smallest observed index,
    when cancellation lets several fail).  The first failure cancels the
    chunks not yet started; in-flight chunks stop at their next task
    boundary; the pool remains usable. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count () - 1] (one core left for the
    submitting thread's own work), clamped to [\[1, 8\]]. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()], unclamped.  Exposed here so
    callers outside [lib/par] never touch [Domain] directly (lint R7,
    concurrency confinement). *)

val create : ?domains:int -> unit -> t
(** A pool of [domains] workers including the caller (default
    {!default_domains}); spawns [domains - 1] domains.
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int

val parallel_for : t -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for t n f] runs [f 0 .. f (n-1)] across the pool in
    batches of [chunk] consecutive indices (default: tasks split into
    about four chunks per worker), dealt round-robin with stealing.
    @raise Task_error on the first task failure.
    @raise Invalid_argument if [n < 0] or [chunk < 1]. *)

val parallel_map : t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Like [List.map], with the elements evaluated across the pool and the
    results routed back in submission order: for a pure [f] the result
    is identical to [List.map f] under every pool size.
    @raise Task_error on the first task failure. *)

val map_array : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map] over arrays. *)

type stats = { jobs : int; chunks : int; steals : int }
(** Lifetime scheduling counters: parallel jobs settled, chunks
    dispatched, and takes served by stealing from another worker's
    queue.  Degenerate (sequential) jobs count as one chunk. *)

val stats : t -> stats
(** Snapshot of the pool's counters, read under the pool lock.  Feeds
    the observability exposition ([dbp ... --metrics-out]); scheduling
    statistics never influence results — determinism is unaffected. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; subsequent [parallel_*] calls
    raise [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)
