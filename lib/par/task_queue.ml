(* Per-worker chunk deques with simple stealing.  All operations are
   performed under the pool's lock (the pool serialises queue access and
   parallelises only the execution of chunks), so the representation is a
   plain array-backed deque per worker with no internal synchronisation:
   chunk granularity is coarse -- each chunk is a batch of simulation
   runs -- and the scheduling cost is noise next to the work itself. *)

type t = {
  slots : int array array;  (* per worker, capacity = total chunk count *)
  head : int array;  (* owner pops here (front) *)
  tail : int array;  (* one past the last element; thieves pop at tail-1 *)
  mutable steals : int;  (* takes served from another worker's queue *)
}

let create ~workers ~chunks =
  if workers < 1 then invalid_arg "Task_queue.create: workers < 1";
  if chunks < 0 then invalid_arg "Task_queue.create: chunks < 0";
  let t =
    {
      slots = Array.init workers (fun _ -> Array.make (max chunks 1) 0);
      head = Array.make workers 0;
      tail = Array.make workers 0;
      steals = 0;
    }
  in
  (* Deal chunks round-robin so that the low (leftmost) chunks -- which
     correspond to the first submitted tasks -- start on distinct workers
     immediately. *)
  for c = 0 to chunks - 1 do
    let w = c mod workers in
    t.slots.(w).(t.tail.(w)) <- c;
    t.tail.(w) <- t.tail.(w) + 1
  done;
  t

let workers t = Array.length t.slots

let length t worker = t.tail.(worker) - t.head.(worker)

let remaining t =
  let total = ref 0 in
  for w = 0 to workers t - 1 do
    total := !total + length t w
  done;
  !total

let pop_front t worker =
  let h = t.head.(worker) in
  t.head.(worker) <- h + 1;
  t.slots.(worker).(h)

let pop_back t worker =
  let i = t.tail.(worker) - 1 in
  t.tail.(worker) <- i;
  t.slots.(worker).(i)

(* The victim with the most queued chunks (ties to the lowest worker id),
   so a steal rebalances the largest backlog. *)
let victim_of t ~thief =
  let best = ref (-1) and best_len = ref 0 in
  for w = 0 to workers t - 1 do
    let len = length t w in
    if w <> thief && len > !best_len then begin
      best := w;
      best_len := len
    end
  done;
  if !best_len = 0 then None else Some !best

let take t ~worker =
  if worker < 0 || worker >= workers t then
    invalid_arg "Task_queue.take: worker out of range";
  if length t worker > 0 then Some (pop_front t worker)
  else
    match victim_of t ~thief:worker with
    | Some v ->
        t.steals <- t.steals + 1;
        Some (pop_back t v)
    | None -> None

let steals t = t.steals
