open Dbp_core

let capacity = 1.
let tolerance = 1e-9

type t = {
  index : int;
  items : Vector_item.t list; (* most recent first *)
  profiles : Step_function.t array; (* one level profile per dimension *)
}

let empty ~dims ~index =
  if dims < 1 then invalid_arg "Vector_bin.empty: dims < 1";
  { index; items = []; profiles = Array.make dims Step_function.zero }

let index b = b.index
let dims b = Array.length b.profiles
let items b = List.rev b.items
let is_empty b = b.items = []

let level_at b t =
  Resource.of_array
    (Array.map (fun p -> Float.max 0. (Step_function.value_at p t)) b.profiles)

let check_dims b item =
  if Resource.dims (Vector_item.demand item) <> dims b then
    invalid_arg "Vector_bin: dimension mismatch"

let fits b item =
  check_dims b item;
  let frame = Vector_item.interval item in
  let demand = Vector_item.demand item in
  Array.for_all
    (fun i ->
      Step_function.max_over b.profiles.(i) frame +. Resource.get demand i
      <= capacity +. tolerance)
    (Array.init (dims b) Fun.id)

let fits_at b ~at item =
  check_dims b item;
  Vector_item.active_at item at
  &&
  let demand = Vector_item.demand item in
  Array.for_all
    (fun i ->
      Step_function.value_at b.profiles.(i) at +. Resource.get demand i
      <= capacity +. tolerance)
    (Array.init (dims b) Fun.id)

let place b item =
  if not (fits b item) then
    invalid_arg
      (Format.asprintf "Vector_bin.place: %a overflows bin %d" Vector_item.pp
         item b.index);
  let demand = Vector_item.demand item in
  let frame = Vector_item.interval item in
  {
    b with
    items = item :: b.items;
    profiles =
      Array.mapi
        (fun i p ->
          let d = Resource.get demand i in
          if Float.equal d 0. then p
          else Step_function.add p (Step_function.indicator frame d))
        b.profiles;
  }

let usage_intervals b =
  List.map Vector_item.interval b.items |> Interval.union

let usage_time b =
  usage_intervals b |> List.fold_left (fun a i -> a +. Interval.length i) 0.

let active_at b t = List.exists (fun r -> Vector_item.active_at r t) b.items

let max_level b =
  Array.fold_left (fun acc p -> Float.max acc (Step_function.max_value p)) 0.
    b.profiles

let pp ppf b =
  Format.fprintf ppf "@[<v>vbin %d (usage %g):@," b.index (usage_time b);
  List.iter (fun r -> Format.fprintf ppf "  %a@," Vector_item.pp r) (items b);
  Format.fprintf ppf "@]"
