open Dbp_core

let eps = 1e-9

type placement = { item : Item.t; altitude : float }

(* A coloured rectangle: [time] in the horizontal dimension, altitudes in
   the half-open range (alt_lo, alt_hi]. *)
type rect = { time : Interval.t; alt_lo : float; alt_hi : float }

type t = {
  instance : Instance.t;
  height : Step_function.t;
  endpoints : float array; (* sorted distinct item endpoints *)
  placements : placement list; (* placement order *)
  red : rect list;
  blue : rect list;
}

type segment_class = Red | Blue | Uncolored | Outside

let height_profile t = t.height
let max_height t = Step_function.max_value t.height
let placements t = List.rev t.placements

let altitude_of t item =
  match
    List.find_opt (fun p -> Item.equal p.item item) t.placements
  with
  | Some p -> p.altitude
  | None -> raise Not_found

let rect_covers_altitude h rect = rect.alt_lo +. eps < h && h <= rect.alt_hi +. eps

(* Elementary segments: consecutive pairs of item endpoints.  All rectangle
   boundaries are item endpoints, so every segment is uniformly coloured. *)
let segments endpoints =
  let n = Array.length endpoints in
  let rec go i acc =
    if i + 1 >= n then List.rev acc
    else go (i + 1) ((endpoints.(i), endpoints.(i + 1)) :: acc)
  in
  go 0 []

let classify_segment t ~red_rects h (l, r) =
  let mid = 0.5 *. (l +. r) in
  if h > Step_function.value_at t.height mid +. eps then Outside
  else
    let covering rects =
      List.exists
        (fun rect -> Interval.mem mid rect.time && rect_covers_altitude h rect)
        rects
    in
    if covering red_rects then Red
    else if covering t.blue then Blue
    else Uncolored

(* Merge consecutive same-class segments into maximal intervals of each
   class, dropping [Outside]. *)
let line_intervals t ~red_rects h =
  let classified =
    segments t.endpoints
    |> List.map (fun seg -> (classify_segment t ~red_rects h seg, seg))
  in
  let rec merge acc = function
    | [] -> List.rev acc
    | (cls, (l, r)) :: rest -> (
        match acc with
        | (cls', iv) :: acc' when cls' = cls && Interval.right iv >= l -. eps ->
            merge ((cls, Interval.make (Interval.left iv) r) :: acc') rest
        | _ -> merge ((cls, Interval.make l r) :: acc) rest)
  in
  let merged = merge [] classified in
  let select want =
    List.filter_map (fun (cls, iv) -> if cls = want then Some iv else None)
      merged
  in
  (select Red, select Blue, select Uncolored)

(* Step 7: an unplaced item is eligible for I_u iff its interval meets I_u,
   stays inside the demand chart at altitude h over its whole interval
   (the "placed in the demand chart" requirement that makes Lemma 3 hold),
   and meets no other uncoloured interval and no red interval at h. *)
let eligible t h ~others ~red_rects_at_h i_u item =
  let ir = Item.interval item in
  Interval.overlaps ir i_u
  && Step_function.min_over t.height ir >= h -. eps
  && (not (List.exists (Interval.overlaps ir) others))
  && not (List.exists (Interval.overlaps ir) red_rects_at_h)

type pick_rule = Smallest_id | Longest_duration | Largest_demand

let pick_order = function
  | Smallest_id -> Item.compare_by_id
  | Longest_duration -> Item.compare_duration_descending
  | Largest_demand ->
      fun a b ->
        (match Float.compare (Item.demand b) (Item.demand a) with
        | 0 -> Item.compare_by_id a b
        | c -> c)

let find_eligible ~pick t h unplaced ~others ~red_rects_at_h i_u =
  unplaced
  |> List.filter (eligible t h ~others ~red_rects_at_h i_u)
  |> List.sort (pick_order pick)
  |> function
  | [] -> None
  | r :: _ -> Some r

(* Altitude worklist: sorted descending, deduplicated within eps. *)
module Altitudes = struct


  let mem h m = List.exists (fun x -> Float.abs (x -. h) <= eps) m

  let add h m = if mem h m then m else List.sort (fun a b -> Float.compare b a) (h :: m)

  let of_profile profile =
    List.fold_left
      (fun m (_, v) -> if v > eps then add v m else m)
      [] (Step_function.breaks profile)
end

(* The inner loop of Phase 1 for one altitude h: consume uncoloured
   intervals, placing items or colouring blue.  Returns the updated chart
   and altitudes.  [red_at_h] tracks the red intervals at altitude h
   including ones created by placements made in this very loop. *)
let examine_altitude ~pick (chart, altitudes) h =
  let red_rects = chart.red in
  let red_at_h, _blue_at_h, uncolored = line_intervals chart ~red_rects h in
  let unplaced =
    let placed_ids =
      List.map (fun p -> Item.id p.item) chart.placements
    in
    Instance.items chart.instance
    |> List.filter (fun r -> not (List.mem (Item.id r) placed_ids))
  in
  let rec loop chart altitudes unplaced red_at_h = function
    | [] -> (chart, altitudes)
    | i_u :: u_rest -> (
        match
          find_eligible ~pick chart h unplaced ~others:u_rest
            ~red_rects_at_h:red_at_h i_u
        with
        | Some r ->
            let ir = Item.interval r in
            let covered =
              match Interval.intersect ir i_u with
              | Some c -> c
              | None ->
                  invalid_arg
                    "Demand_chart.examine_altitude: eligible item does not \
                     meet the uncoloured interval"
            in
            let rect = { time = covered; alt_lo = h -. Item.size r; alt_hi = h } in
            let chart =
              {
                chart with
                placements = { item = r; altitude = h } :: chart.placements;
                red = rect :: chart.red;
              }
            in
            let u_rest =
              let before =
                if Interval.left i_u +. eps < Interval.left ir then
                  [ Interval.make (Interval.left i_u) (Interval.left ir) ]
                else []
              and after =
                if Interval.right ir +. eps < Interval.right i_u then
                  [ Interval.make (Interval.right ir) (Interval.right i_u) ]
                else []
              in
              before @ after @ u_rest
            in
            let altitudes =
              let lower = h -. Item.size r in
              if lower > eps then Altitudes.add lower altitudes else altitudes
            in
            let unplaced =
              List.filter (fun x -> not (Item.equal x r)) unplaced
            in
            loop chart altitudes unplaced (covered :: red_at_h) u_rest
        | None ->
            let chart =
              { chart with blue = { time = i_u; alt_lo = 0.; alt_hi = h } :: chart.blue }
            in
            loop chart altitudes unplaced red_at_h u_rest)
  in
  loop chart altitudes unplaced red_at_h uncolored

let place_all ?(pick = Smallest_id) instance =
  let height = Instance.size_profile instance in
  let endpoints = Array.of_list (Instance.critical_times instance) in
  let chart =
    { instance; height; endpoints; placements = []; red = []; blue = [] }
  in
  let rec outer chart altitudes =
    match altitudes with
    | [] -> chart
    | h :: rest ->
        let chart, altitudes = examine_altitude ~pick (chart, rest) h in
        (* [examine_altitude] may have discovered new (lower) altitudes;
           they sort below h so taking the head keeps high-to-low order. *)
        outer chart altitudes
  in
  outer chart (Altitudes.of_profile height)

(* ------------------------------------------------------------------ *)
(* Verification of Lemmas 2-5.                                         *)

type violation =
  | Not_all_placed of int
  | Outside_chart of placement
  | Triple_overlap of placement * placement * placement
  | Uncolored_area of float

let pp_violation ppf = function
  | Not_all_placed n -> Format.fprintf ppf "%d items unplaced" n
  | Outside_chart p ->
      Format.fprintf ppf "%a placed at altitude %g outside the chart"
        Item.pp p.item p.altitude
  | Triple_overlap (a, b, c) ->
      Format.fprintf ppf "triple overlap of %a, %a, %a" Item.pp a.item
        Item.pp b.item Item.pp c.item
  | Uncolored_area a -> Format.fprintf ppf "%g chart area left uncoloured" a

let check_all_placed t =
  let n = Instance.length t.instance - List.length t.placements in
  if n > 0 then [ Not_all_placed n ] else []

let check_within_chart t =
  List.filter_map
    (fun p ->
      let ir = Item.interval p.item in
      let ok_top =
        segments t.endpoints
        |> List.for_all (fun (l, r) ->
               let mid = 0.5 *. (l +. r) in
               (not (Interval.mem mid ir))
               || p.altitude <= Step_function.value_at t.height mid +. eps)
      and ok_bottom = p.altitude -. Item.size p.item >= -.eps in
      if ok_top && ok_bottom then None else Some (Outside_chart p))
    t.placements

(* Sweep the altitude ranges of the placements covering one time segment;
   three simultaneously active ranges of positive common measure form a
   triple overlap. *)
let triple_at t (l, r) =
  let mid = 0.5 *. (l +. r) in
  let active =
    List.filter (fun p -> Interval.mem mid (Item.interval p.item)) t.placements
  in
  (* Altitude dedup in Phase 1 introduces up to [eps] of jitter between
     ranges that meet exactly; shrink each range by [eps] at the bottom so
     touching ranges never read as overlapping. *)
  let events =
    List.concat_map
      (fun p ->
        [
          (p.altitude -. Item.size p.item +. eps, 1, p); (p.altitude, -1, p);
        ])
      active
    |> List.sort (fun (a, ka, _) (b, kb, _) ->
           match Float.compare a b with 0 -> Int.compare ka kb | c -> c)
  in
  let rec sweep open_ps = function
    | [] -> None
    | (_, 1, p) :: rest ->
        let open_ps = p :: open_ps in
        (match open_ps with
        | a :: b :: c :: _ -> Some (Triple_overlap (a, b, c))
        | _ -> sweep open_ps rest)
    | (_, _, p) :: rest ->
        sweep
          (List.filter (fun q -> not (Item.equal q.item p.item)) open_ps)
          rest
  in
  sweep [] events

(* The same triple shows up once per elementary segment it spans; report
   each distinct item trio once. *)
let check_triple_overlap t =
  let seen = Hashtbl.create 8 in
  segments t.endpoints
  |> List.filter_map (fun seg ->
         match triple_at t seg with
         | Some (Triple_overlap (a, b, c) as v) ->
             let ids =
               List.sort Int.compare
                 [ Item.id a.item; Item.id b.item; Item.id c.item ]
             in
             if Hashtbl.mem seen ids then None
             else begin
               Hashtbl.add seen ids ();
               Some v
             end
         | other -> other)

(* Uncoloured chart area: per time segment, the measure of (0, H] not
   covered by the union of red and blue altitude ranges. *)
let uncovered_measure t (l, r) =
  let mid = 0.5 *. (l +. r) in
  let h = Step_function.value_at t.height mid in
  if h <= eps then 0.
  else
    let ranges =
      List.filter (fun rect -> Interval.mem mid rect.time) (t.red @ t.blue)
      |> List.map (fun rect ->
             Interval.make
               (Float.max 0. rect.alt_lo)
               (Float.min h (Float.max rect.alt_lo rect.alt_hi)))
    in
    Float.max 0. (h -. Interval.union_length ranges)

let check_colored t =
  let area =
    segments t.endpoints
    |> List.fold_left
         (fun acc (l, r) -> acc +. (uncovered_measure t (l, r) *. (r -. l)))
         0.
  in
  let total = Step_function.integral t.height in
  if area > (1e-6 *. Float.max total 1.) then [ Uncolored_area area ] else []

let check t =
  check_all_placed t @ check_within_chart t @ check_triple_overlap t
  @ check_colored t
