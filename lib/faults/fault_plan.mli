(** Deterministic, replayable fault schedules.

    A fault plan is concrete data — every crash time, slippage delta and
    burst job is materialised at generation time from a seeded PRNG — so
    executing the same plan against the same instance and algorithm is
    bit-for-bit reproducible, checkpointable, and diffable across
    algorithm or policy changes.  Three fault families:

    - {e bin crashes}: at time [t] a currently open bin fails, evicting
      every resident job (the paper's model assumes servers never fail);
    - {e departure slippage}: a job overstays its declared departure by
      [delta], stressing the clairvoyance assumption — the engine
      releases the declared reservation and must re-place the overstay
      remainder as new work;
    - {e arrival bursts}: extra synthetic jobs injected at a time,
      modelling unplanned traffic the clairvoyant schedule never saw.

    How the engine reacts to an executed plan is the recovery policy's
    business ({!Recovery}, {!Resilient}). *)

open Dbp_core

type crash = {
  time : float;
  victim : int;
      (** Rank of the victim among the bins open at [time], resolved as
          [victim mod open-bin-count] at execution; a crash with no open
          bins is a no-op. *)
}

type burst = {
  burst_time : float;
  jobs : (float * float) list;  (** (size, duration) per injected job *)
}

type slip = {
  item_id : int;  (** base-instance item that overstays *)
  delta : float;  (** extra residence beyond the declared departure, > 0 *)
}

type t = {
  plan_seed : int;  (** provenance; 0 for hand-built plans *)
  crashes : crash list;  (** increasing time *)
  bursts : burst list;  (** increasing time *)
  slips : slip list;  (** increasing item id, at most one per item *)
}

val empty : t

val is_empty : t -> bool
(** No crashes, no bursts, no slips: executing the plan is exactly a
    fault-free run. *)

type spec = {
  crash_rate : float;
      (** Expected crashes per unit time (Poisson over the instance
          span). *)
  slip_prob : float;  (** Per-job probability of overstaying. *)
  slip_stretch : float;
      (** Mean overstay as a multiple of the job's own duration
          (exponentially distributed). *)
  burst_rate : float;  (** Expected bursts per unit time. *)
  burst_size : int;  (** Jobs per burst. *)
}

val no_faults : spec
(** All rates zero; [generate] returns a plan that {!is_empty}. *)

val default_spec : spec
(** A moderate mix of all three families, the CLI default. *)

val generate : seed:int -> spec -> Instance.t -> t
(** Materialise a plan for an instance.  Crash and burst times are
    Poisson processes over the instance's [min arrival, max departure)
    window; slips are sampled per item.  Independent PRNG substreams per
    family, so e.g. raising [crash_rate] does not perturb the sampled
    slips.
    @raise Invalid_argument on negative rates/probabilities or a
    non-positive [slip_stretch] with positive [slip_prob]. *)

val counts : t -> int * int * int
(** (crashes, slips, burst jobs). *)

val pp : Format.formatter -> t -> unit
