(** Recovery policies: what the resilient engine does with displaced work.

    A job displaced by a fault — evicted by a bin crash, or overstaying
    its declared departure — re-enters the system as a synthetic arrival
    and is re-placed through the online algorithm under test.  The policy
    bounds that recovery: whether recovered work may open fresh bins, how
    many placement attempts it gets, and how the retry delay grows.  When
    the attempts are exhausted the job is rejected outright (admission
    control) and its remaining demand is counted as lost. *)

type policy = {
  policy_name : string;
  allow_new_bin : bool;
      (** When false, recovered jobs may only be re-placed into already
          open bins; an [Open_new] decision counts as an infeasible
          attempt.  Models a capacity-capped fleet. *)
  max_retries : int;
      (** Retries after the initial attempt; 0 means one shot. *)
  backoff : float;  (** Delay before the first retry, > 0. *)
  backoff_factor : float;
      (** Multiplier applied per further retry, >= 1 (exponential
          backoff). *)
}

val default : policy
(** Elastic fleet: new bins allowed (so first attempts always succeed
    for well-behaved algorithms), 3 retries, 0.1 initial backoff,
    doubling. *)

val admission_controlled :
  ?max_retries:int -> ?backoff:float -> ?backoff_factor:float -> unit -> policy
(** No new bins for recovered work; defaults: 3 retries, 0.1 backoff,
    doubling. *)

val validate : policy -> unit
(** @raise Invalid_argument on non-positive backoff, factor < 1, or
    negative retries. *)

val delay : policy -> attempt:int -> float
(** Backoff before retry number [attempt] (1-based):
    [backoff *. backoff_factor ^ (attempt - 1)]. *)
