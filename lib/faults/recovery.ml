type policy = {
  policy_name : string;
  allow_new_bin : bool;
  max_retries : int;
  backoff : float;
  backoff_factor : float;
}

let default =
  {
    policy_name = "elastic";
    allow_new_bin = true;
    max_retries = 3;
    backoff = 0.1;
    backoff_factor = 2.;
  }

let admission_controlled ?(max_retries = 3) ?(backoff = 0.1)
    ?(backoff_factor = 2.) () =
  {
    policy_name = "admission-controlled";
    allow_new_bin = false;
    max_retries;
    backoff;
    backoff_factor;
  }

let validate p =
  if p.max_retries < 0 then
    invalid_arg
      (Printf.sprintf "Recovery.validate: max_retries %d < 0" p.max_retries);
  if not (Float.is_finite p.backoff && p.backoff > 0.) then
    invalid_arg (Printf.sprintf "Recovery.validate: backoff %g" p.backoff);
  if not (Float.is_finite p.backoff_factor && p.backoff_factor >= 1.) then
    invalid_arg
      (Printf.sprintf "Recovery.validate: backoff_factor %g" p.backoff_factor)

let delay p ~attempt =
  p.backoff *. (p.backoff_factor ** float_of_int (attempt - 1))
