(** The fault-tolerant online engine.

    Executes a base instance {e and} a {!Fault_plan.t} against any
    online algorithm from {!Dbp_online.Engine}, applying a
    {!Recovery.policy} to displaced work:

    - a {e crash} closes the victim bin for good and evicts its resident
      jobs; evicted jobs are not checkpointed, so each one loses its
      progress and re-enters as a synthetic arrival that must redo its
      placement's {e full} duration from wherever it restarts (crashes
      therefore genuinely inflate usage — the pre-crash service was
      wasted work);
    - a {e slip} releases the declared reservation at the declared
      departure (which is all the clairvoyant algorithm was ever
      promised) and re-places the overstay remainder
      [[departure, departure + delta)] as a synthetic arrival;
    - a {e burst} job is an ordinary arrival the schedule never
      anticipated;
    - synthetic re-placements get bounded retries with exponential
      backoff; exhausted jobs are rejected and their remaining demand is
      counted lost.

    With an {e empty} plan the engine reproduces [Engine.run]
    bit-identically — same bin for every item, same usage time — for
    every online algorithm (enforced by the qcheck differential
    property in [test_faults.ml]).  Fatal conditions on the primary
    stream (algorithm bugs) surface as structured {!Dbp_online.Engine.error}
    values; infeasible {e recovery} placements are data for the policy,
    never fatal.

    Usage accounting is by residency segment: each placement contributes
    [[place time, exit time)] to its bin, where the exit is the (possibly
    early, crash-truncated) instant the job actually left.  A bin's busy
    time is the measure of the union of its segments, so crash-truncated
    bins are not billed for reservations they never served.

    Checkpoints are event-sourced: {!checkpoint} captures the event
    cursor plus a digest of the full engine state; {!resume} replays the
    prefix deterministically through a fresh stepper and verifies the
    digest, so a resumed run is bit-identical to an uninterrupted one and
    corruption or mismatched inputs are detected rather than silently
    diverging.  (A constant-time restore would need algorithm steppers to
    expose serialisable state; they are opaque closures today.) *)

open Dbp_core

type origin =
  | Base of int  (** a base-instance item (its id) *)
  | Overstay of int  (** overstay remainder of a base item *)
  | Burst_job  (** injected burst arrival *)

type bin_report = {
  index : int;
  opened_at : float;
  crashed_at : float option;
  state : Bin_state.t;
      (** Every engine-item ever placed in the bin, with the declared
          interval of its placement (capacity reasoning happens on
          these). *)
  busy : Interval.t list;
      (** Canonical union of the actual residency segments. *)
}

type outcome = {
  packing : Packing.t option;
      (** The ordinary packing of the base instance — [Some] iff the
          plan was empty, in which case it equals [Engine.run]'s
          bit-for-bit. *)
  bins : bin_report list;  (** every bin ever opened, in index order *)
  usage_time : float;
      (** Sum over bins of busy time (union of residency segments). *)
  bins_opened : int;
  crashes_fired : int;
      (** Planned crashes that hit an open bin (a crash arriving while no
          bin is open is a no-op and is not counted). *)
  evicted : int;  (** jobs displaced by crashes *)
  recovered : int;  (** successful re-placements of displaced work *)
  rejected : int;  (** displaced jobs dropped by admission control *)
  retries : int;  (** re-placement attempts beyond each first try *)
  slipped : int;  (** overstay remainders spawned *)
  injected : int;  (** burst jobs placed *)
  lost_demand : float;
      (** Size x remaining-duration over rejected jobs. *)
}

type run
(** An in-flight resilient execution (mutable). *)

val start :
  ?policy:Recovery.policy ->
  ?observer:Observer.t ->
  Dbp_online.Engine.t ->
  Instance.t ->
  Fault_plan.t ->
  run
(** Fresh run; no events processed yet.  Policy defaults to
    {!Recovery.default}.

    [observer] receives the decision stream (see {!Dbp_core.Observer}):
    synthetic recovery arrivals and burst jobs emit
    [on_arrival]/[on_decision] like primary ones, crash evictions emit
    one [on_departure] per evicted job (in placement order) followed by
    [on_close_bin] for the victim.  With an empty plan the emitted
    sequence is byte-identical to [Engine.run ~observer]'s.  The
    observer is not part of the checkpoint digest; {!resume} re-observes
    the replayed prefix. *)

val step : run -> bool
(** Process the next event; [false] when the stream is drained.
    @raise Dbp_online.Engine.Invalid_decision on a fatal primary-stream
    error (see {!run_result} for the structured form). *)

val events_processed : run -> int

val finish : run -> outcome
(** Drain the remaining events and report. *)

val run :
  ?policy:Recovery.policy ->
  ?observer:Observer.t ->
  Dbp_online.Engine.t ->
  Instance.t ->
  Fault_plan.t ->
  outcome
(** [finish (start ...)].
    @raise Dbp_online.Engine.Invalid_decision on fatal errors (legacy
    shim, same messages as [Engine.run]). *)

val run_result :
  ?policy:Recovery.policy ->
  ?observer:Observer.t ->
  Dbp_online.Engine.t ->
  Instance.t ->
  Fault_plan.t ->
  (outcome, Dbp_online.Engine.error) result
(** [run] with fatal conditions as structured data. *)

(** {2 Checkpoint / resume} *)

type checkpoint = { events_done : int; state_digest : string }

type mismatch = {
  expected_digest : string;  (** what the checkpoint recorded *)
  actual_digest : string option;
      (** what replay produced; [None] when the event stream drained
          before reaching [events_done] (so there was nothing to
          digest) *)
  events_done : int;  (** the checkpoint's replay cursor *)
  detail : string;  (** human-readable diagnosis *)
}

exception Checkpoint_mismatch of mismatch
(** Replayed state disagrees with the checkpoint digest: the inputs
    (algorithm, instance, plan, policy) differ from the checkpointed
    run's, or determinism was broken.  The payload carries both digests
    and the cursor so supervisors can log {e what} diverged, not just
    that something did. *)

val mismatch_to_string : mismatch -> string

val checkpoint : run -> checkpoint
(** Snapshot the cursor and digest the engine state (bins, levels,
    residents, counters). *)

val resume :
  ?policy:Recovery.policy ->
  ?observer:Observer.t ->
  Dbp_online.Engine.t ->
  Instance.t ->
  Fault_plan.t ->
  checkpoint ->
  run
(** Rebuild a run positioned exactly at the checkpoint by deterministic
    replay, then verify the state digest.
    @raise Checkpoint_mismatch on digest disagreement or a stream
    shorter than [events_done]. *)
