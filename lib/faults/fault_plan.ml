open Dbp_core
module Prng = Dbp_workload.Prng

type crash = { time : float; victim : int }
type burst = { burst_time : float; jobs : (float * float) list }
type slip = { item_id : int; delta : float }

type t = {
  plan_seed : int;
  crashes : crash list;
  bursts : burst list;
  slips : slip list;
}

let empty = { plan_seed = 0; crashes = []; bursts = []; slips = [] }

let is_empty t = t.crashes = [] && t.bursts = [] && t.slips = []

type spec = {
  crash_rate : float;
  slip_prob : float;
  slip_stretch : float;
  burst_rate : float;
  burst_size : int;
}

let no_faults =
  {
    crash_rate = 0.;
    slip_prob = 0.;
    slip_stretch = 0.;
    burst_rate = 0.;
    burst_size = 0;
  }

let default_spec =
  {
    crash_rate = 0.05;
    slip_prob = 0.05;
    slip_stretch = 0.5;
    burst_rate = 0.02;
    burst_size = 5;
  }

let validate spec =
  let nonneg name v =
    if not (Float.is_finite v && v >= 0.) then
      invalid_arg (Printf.sprintf "Fault_plan.generate: %s %g < 0" name v)
  in
  nonneg "crash_rate" spec.crash_rate;
  nonneg "slip_prob" spec.slip_prob;
  nonneg "burst_rate" spec.burst_rate;
  if spec.slip_prob > 1. then
    invalid_arg
      (Printf.sprintf "Fault_plan.generate: slip_prob %g > 1" spec.slip_prob);
  if spec.slip_prob > 0. && not (Float.is_finite spec.slip_stretch && spec.slip_stretch > 0.)
  then
    invalid_arg
      (Printf.sprintf "Fault_plan.generate: slip_stretch %g not positive"
         spec.slip_stretch);
  if spec.burst_size < 0 then
    invalid_arg
      (Printf.sprintf "Fault_plan.generate: burst_size %d < 0" spec.burst_size)

(* Poisson process over [lo, hi) via exponential inter-arrival times. *)
let poisson_times rng ~rate ~lo ~hi =
  if rate <= 0. then []
  else begin
    let times = ref [] in
    let t = ref (lo +. Prng.exponential rng ~mean:(1. /. rate)) in
    while !t < hi do
      times := !t :: !times;
      t := !t +. Prng.exponential rng ~mean:(1. /. rate)
    done;
    List.rev !times
  end

let generate ~seed spec instance =
  validate spec;
  if Instance.is_empty instance then { empty with plan_seed = seed }
  else begin
    let root = Prng.create seed in
    let crash_rng = Prng.split root in
    let slip_rng = Prng.split root in
    let burst_rng = Prng.split root in
    let items = Instance.items instance in
    let lo =
      List.fold_left (fun acc r -> Float.min acc (Item.arrival r)) infinity items
    in
    let hi =
      List.fold_left
        (fun acc r -> Float.max acc (Item.departure r))
        neg_infinity items
    in
    let mean_duration =
      List.fold_left (fun acc r -> acc +. Item.duration r) 0. items
      /. float_of_int (List.length items)
    in
    let crashes =
      poisson_times crash_rng ~rate:spec.crash_rate ~lo ~hi
      |> List.map (fun time -> { time; victim = Prng.int crash_rng 0x10000 })
    in
    let slips =
      if spec.slip_prob <= 0. then []
      else
        List.filter_map
          (fun r ->
            if Prng.float slip_rng < spec.slip_prob then
              let delta =
                Prng.exponential slip_rng
                  ~mean:(spec.slip_stretch *. Item.duration r)
              in
              if delta > 0. then Some { item_id = Item.id r; delta } else None
            else None)
          items
    in
    let bursts =
      if spec.burst_size = 0 then []
      else
        poisson_times burst_rng ~rate:spec.burst_rate ~lo ~hi
        |> List.map (fun burst_time ->
               let jobs =
                 List.init spec.burst_size (fun _ ->
                     let size = Prng.uniform burst_rng ~lo:0.05 ~hi:0.5 in
                     let duration =
                       Float.max 1e-3
                         (Prng.exponential burst_rng ~mean:mean_duration)
                     in
                     (size, duration))
               in
               { burst_time; jobs })
    in
    { plan_seed = seed; crashes; bursts; slips }
  end

let counts t =
  ( List.length t.crashes,
    List.length t.slips,
    List.fold_left (fun acc b -> acc + List.length b.jobs) 0 t.bursts )

let pp ppf t =
  let c, s, b = counts t in
  Format.fprintf ppf "fault plan (seed %d): %d crashes, %d slips, %d burst jobs"
    t.plan_seed c s b
