open Dbp_core
module E = Dbp_online.Engine

type origin = Base of int | Overstay of int | Burst_job

type bin_report = {
  index : int;
  opened_at : float;
  crashed_at : float option;
  state : Bin_state.t;
  busy : Interval.t list;
}

type outcome = {
  packing : Packing.t option;
  bins : bin_report list;
  usage_time : float;
  bins_opened : int;
  crashes_fired : int;
  evicted : int;
  recovered : int;
  rejected : int;
  retries : int;
  slipped : int;
  injected : int;
  lost_demand : float;
}

(* Displaced work waiting to be re-placed.  Evicted jobs are not
   checkpointed: they lose their progress and must redo their
   placement's full duration from wherever they restart ([Work]).
   Overstay remainders are wall-pinned: the job physically leaves at
   its slipped departure no matter when (or whether) the remainder is
   re-placed ([Wall]). *)
type remainder = Work of float  (* duration to redo *) | Wall of float

type pending = {
  p_origin : origin;
  p_size : float;
  p_remainder : remainder;
  p_attempt : int;  (* 0 on the first try *)
}

type ev =
  | Primary_departure of Item.t
  | Synthetic_departure of { s_item : Item.t; s_origin : origin }
  | Crash_ev of Fault_plan.crash
  | Primary_arrival of Item.t
  | Burst_spec of float * float  (* size, duration; item built at fire time *)
  | Attempt of pending

(* Deterministic total order on injected events: time, then class
   (departures release capacity first, crashes hit before new work, all
   arrival-like events last), then insertion sequence.  Primary events
   are pushed in [Event.of_instance] order, so with an empty plan the
   pop sequence is exactly the plain engine's event stream. *)
type entry = { at : float; cls : int; seq : int; ev : ev }

let cls_departure = 0
let cls_crash = 1
let cls_arrival = 2

let compare_entry a b =
  match Float.compare a.at b.at with
  | 0 -> (
      match Int.compare a.cls b.cls with
      | 0 -> Int.compare a.seq b.seq
      | c -> c)
  | c -> c

(* Engine-side bin: the reference engine's bookkeeping (identical level
   arithmetic, so empty-plan runs are bit-identical) plus an intrusive
   open list, residency segments and the resident set. *)
type rbin = {
  idx : int;
  opened : float;
  mutable bin : Bin_state.t;
  mutable active : int;
  mutable level : float;
  mutable prev : int;
  mutable next : int;
  mutable crashed : float option;
  mutable segments : Interval.t list;  (* reverse chronological *)
  mutable residents : int list;  (* engine item ids, reverse placement order *)
}

let dummy_bin =
  {
    idx = -1;
    opened = nan;
    bin = Bin_state.empty ~index:(-1);
    active = 0;
    level = 0.;
    prev = -1;
    next = -1;
    crashed = None;
    segments = [];
    residents = [];
  }

type run = {
  algo : E.t;
  policy : Recovery.policy;
  instance : Instance.t;
  plan : Fault_plan.t;
  obs : Observer.t option;  (* not part of the checkpoint digest *)
  stepper : E.stepper;
  queue : entry Heap.t;
  homes : (int, rbin * Item.t * origin) Hashtbl.t;
  evicted_ids : (int, unit) Hashtbl.t;  (* stale departures to swallow *)
  slips : (int, float) Hashtbl.t;  (* unconsumed overstays, by base id *)
  mutable arr : rbin array;  (* slots >= count hold dummy_bin *)
  mutable count : int;
  mutable head : int;
  mutable tail : int;
  mutable seq : int;
  mutable next_id : int;  (* fresh engine-item ids for synthetic work *)
  mutable processed : int;
  mutable c_crashes : int;
  mutable c_evicted : int;
  mutable c_recovered : int;
  mutable c_rejected : int;
  mutable c_retries : int;
  mutable c_slipped : int;
  mutable c_injected : int;
  mutable c_lost : float;
}

exception Fatal of E.error

let push r ~at ~cls ev =
  let seq = r.seq in
  r.seq <- seq + 1;
  Heap.push r.queue { at; cls; seq; ev }

let bin_of r idx = r.arr.(idx)

let append_bin r now =
  if r.count = Array.length r.arr then begin
    let cap = max 16 (2 * r.count) in
    let arr = Array.make cap dummy_bin in
    Array.blit r.arr 0 arr 0 r.count;
    r.arr <- arr
  end;
  let idx = r.count in
  let lb =
    {
      idx;
      opened = now;
      bin = Bin_state.empty ~index:idx;
      active = 0;
      level = 0.;
      prev = r.tail;
      next = -1;
      crashed = None;
      segments = [];
      residents = [];
    }
  in
  r.arr.(idx) <- lb;
  r.count <- r.count + 1;
  if r.tail >= 0 then (bin_of r r.tail).next <- idx else r.head <- idx;
  r.tail <- idx;
  lb

let unlink r lb =
  if lb.prev >= 0 then (bin_of r lb.prev).next <- lb.next
  else r.head <- lb.next;
  if lb.next >= 0 then (bin_of r lb.next).prev <- lb.prev
  else r.tail <- lb.prev;
  lb.prev <- -1;
  lb.next <- -1

(* Open-bin views in index order: the exact list the reference engine
   hands to [decide]. *)
let views r =
  let rec go idx acc =
    if idx < 0 then List.rev acc
    else
      let lb = bin_of r idx in
      go lb.next
        ({
           E.index = lb.idx;
           opened_at = lb.opened;
           level = lb.level;
           state = Lazy.from_val lb.bin;
         }
        :: acc)
  in
  go r.head []

let fresh_id r =
  let id = r.next_id in
  r.next_id <- id + 1;
  id

let do_place r lb item origin =
  lb.bin <- Bin_state.place_unchecked lb.bin item;
  lb.active <- lb.active + 1;
  lb.level <- lb.level +. Item.size item;
  lb.residents <- Item.id item :: lb.residents;
  Hashtbl.replace r.homes (Item.id item) (lb, item, origin);
  (match r.obs with
  | Some o -> o.Observer.on_place ~time:(Item.arrival item) ~item ~bin:lb.idx
  | None -> ());
  r.stepper.E.notify ~item ~index:lb.idx

(* Primary-stream placement: invalid decisions are algorithm bugs and
   fatal, exactly as in the plain engines. *)
let place_checked r lb item origin =
  let now = Item.arrival item in
  if not (Bin_state.fits_at lb.bin ~at:now item) then
    raise
      (Fatal (E.Overflow { algo = r.algo.E.name; item; bin = lb.idx; time = now }));
  do_place r lb item origin

let arrival_target r ~now item =
  (match r.obs with
  | Some o -> o.Observer.on_arrival ~time:now ~item
  | None -> ());
  let decision = r.stepper.E.decide ~now ~open_bins:(views r) item in
  (match r.obs with
  | Some o ->
      o.Observer.on_decision ~time:now ~item
        ~bin:(match decision with E.Place i -> Some i | E.Open_new -> None)
  | None -> ());
  match decision with
  | E.Open_new ->
      let lb = append_bin r now in
      (match r.obs with
      | Some o -> o.Observer.on_open_bin ~time:now ~bin:lb.idx
      | None -> ());
      lb
  | E.Place idx ->
      if idx < 0 || idx >= r.count then
        raise (Fatal (E.Unknown_bin { algo = r.algo.E.name; bin = idx; time = now }));
      let lb = bin_of r idx in
      if lb.active = 0 then
        raise (Fatal (E.Closed_bin { algo = r.algo.E.name; bin = idx; time = now }));
      lb

let enqueue_attempt r ~at p = push r ~at ~cls:cls_arrival (Attempt p)

let close_segment ~until lb item =
  lb.segments <- Interval.make (Item.arrival item) until :: lb.segments

(* A genuine departure (declared time for base items, deadline for
   synthetic remainders).  Departures of evicted engine-items are stale
   — the eviction already settled them — and are swallowed. *)
let handle_departure r ~now item origin =
  match Hashtbl.find_opt r.homes (Item.id item) with
  | None ->
      if Hashtbl.mem r.evicted_ids (Item.id item) then
        Hashtbl.remove r.evicted_ids (Item.id item)
      else
        raise
          (Fatal
             (E.Unplaced_departure
                { algo = r.algo.E.name; item_id = Item.id item }))
  | Some (lb, eitem, _) ->
      lb.active <- lb.active - 1;
      lb.level <- (if lb.active = 0 then 0. else lb.level -. Item.size eitem);
      lb.residents <- List.filter (fun i -> i <> Item.id eitem) lb.residents;
      close_segment ~until:now lb eitem;
      Hashtbl.remove r.homes (Item.id eitem);
      if lb.active = 0 then unlink r lb;
      (match r.obs with
      | Some o ->
          o.Observer.on_departure ~time:now ~item:eitem;
          if lb.active = 0 then o.Observer.on_close_bin ~time:now ~bin:lb.idx
      | None -> ());
      r.stepper.E.departed eitem;
      (* Departure slippage: the declared reservation just ended, but the
         job overstays; its remainder re-enters as displaced work. *)
      match origin with
      | Base oid -> (
          match Hashtbl.find_opt r.slips oid with
          | Some delta ->
              Hashtbl.remove r.slips oid;
              r.c_slipped <- r.c_slipped + 1;
              enqueue_attempt r ~at:now
                {
                  p_origin = Overstay oid;
                  p_size = Item.size eitem;
                  p_remainder = Wall (now +. delta);
                  p_attempt = 0;
                }
          | None -> ())
      | Overstay _ | Burst_job -> ()

let handle_crash r ~now (crash : Fault_plan.crash) =
  let open_bins =
    let rec go idx acc =
      if idx < 0 then List.rev acc else go (bin_of r idx).next (idx :: acc)
    in
    go r.head []
  in
  match open_bins with
  | [] -> () (* nothing to hit: the crash does not count as fired *)
  | _ ->
      r.c_crashes <- r.c_crashes + 1;
      let victim =
        bin_of r (List.nth open_bins (crash.victim mod List.length open_bins))
      in
      let settled =
        List.rev_map (fun id -> Hashtbl.find r.homes id) victim.residents
      in
      (* [settled] is in placement order: eviction, stepper callbacks and
         recovery attempts replay deterministically. *)
      List.iter
        (fun ((_, eitem, origin) : rbin * Item.t * origin) ->
          close_segment ~until:now victim eitem;
          Hashtbl.remove r.homes (Item.id eitem);
          Hashtbl.replace r.evicted_ids (Item.id eitem) ();
          (match r.obs with
          | Some o -> o.Observer.on_departure ~time:now ~item:eitem
          | None -> ());
          r.stepper.E.departed eitem;
          r.c_evicted <- r.c_evicted + 1;
          let p_remainder =
            match origin with
            | Overstay _ -> Wall (Item.departure eitem)
            | Base _ | Burst_job ->
                Work (Item.departure eitem -. Item.arrival eitem)
          in
          enqueue_attempt r ~at:now
            { p_origin = origin; p_size = Item.size eitem; p_remainder;
              p_attempt = 0 })
        settled;
      victim.residents <- [];
      victim.active <- 0;
      victim.level <- 0.;
      victim.crashed <- Some now;
      unlink r victim;
      (match r.obs with
      | Some o -> o.Observer.on_close_bin ~time:now ~bin:victim.idx
      | None -> ())

let reject r ~now p =
  r.c_rejected <- r.c_rejected + 1;
  let lost =
    match p.p_remainder with
    | Wall deadline -> Float.max 0. (deadline -. now)
    | Work duration -> duration
  in
  r.c_lost <- r.c_lost +. (p.p_size *. lost)

(* Re-place displaced work.  Unlike the primary stream, an infeasible or
   invalid decision here is data for the policy — retry with backoff,
   then admission-control rejection — never fatal. *)
let handle_attempt r ~now p =
  let expired =
    match p.p_remainder with Wall deadline -> now >= deadline | Work _ -> false
  in
  if expired then reject r ~now p
  else begin
    let departure =
      match p.p_remainder with
      | Wall deadline -> deadline
      | Work duration -> now +. duration
    in
    let item =
      Item.make ~id:(fresh_id r) ~size:p.p_size ~arrival:now ~departure
    in
    (match r.obs with
    | Some o -> o.Observer.on_arrival ~time:now ~item
    | None -> ());
    let decision = r.stepper.E.decide ~now ~open_bins:(views r) item in
    (match r.obs with
    | Some o ->
        o.Observer.on_decision ~time:now ~item
          ~bin:(match decision with E.Place i -> Some i | E.Open_new -> None)
    | None -> ());
    let target =
      match decision with
      | E.Open_new ->
          if r.policy.Recovery.allow_new_bin then begin
            let lb = append_bin r now in
            (match r.obs with
            | Some o -> o.Observer.on_open_bin ~time:now ~bin:lb.idx
            | None -> ());
            Some lb
          end
          else None
      | E.Place idx ->
          if idx < 0 || idx >= r.count then None
          else
            let lb = bin_of r idx in
            if lb.active = 0 then None
            else if not (Bin_state.fits_at lb.bin ~at:now item) then None
            else Some lb
    in
    match target with
    | Some lb ->
        do_place r lb item p.p_origin;
        r.c_recovered <- r.c_recovered + 1;
        push r ~at:departure ~cls:cls_departure
          (Synthetic_departure { s_item = item; s_origin = p.p_origin })
    | None ->
        if p.p_attempt >= r.policy.Recovery.max_retries then reject r ~now p
        else begin
          r.c_retries <- r.c_retries + 1;
          let attempt = p.p_attempt + 1 in
          enqueue_attempt r
            ~at:(now +. Recovery.delay r.policy ~attempt)
            { p with p_attempt = attempt }
        end
  end

let handle_burst r ~now (size, duration) =
  let item =
    Item.make ~id:(fresh_id r) ~size ~arrival:now ~departure:(now +. duration)
  in
  let lb = arrival_target r ~now item in
  place_checked r lb item Burst_job;
  r.c_injected <- r.c_injected + 1;
  push r ~at:(Item.departure item) ~cls:cls_departure
    (Synthetic_departure { s_item = item; s_origin = Burst_job })

let handle r entry =
  let now = entry.at in
  match entry.ev with
  | Primary_departure item -> handle_departure r ~now item (Base (Item.id item))
  | Synthetic_departure { s_item; s_origin } ->
      handle_departure r ~now s_item s_origin
  | Crash_ev crash -> handle_crash r ~now crash
  | Primary_arrival item ->
      let lb = arrival_target r ~now item in
      place_checked r lb item (Base (Item.id item))
  | Burst_spec (size, duration) -> handle_burst r ~now (size, duration)
  | Attempt p -> handle_attempt r ~now p

let start ?(policy = Recovery.default) ?observer algo instance
    (plan : Fault_plan.t) =
  Recovery.validate policy;
  let r =
    {
      algo;
      policy;
      instance;
      plan;
      obs = observer;
      stepper = algo.E.make ();
      queue = Heap.create ~cmp:compare_entry ();
      homes = Hashtbl.create 64;
      evicted_ids = Hashtbl.create 16;
      slips = Hashtbl.create 16;
      arr = Array.make 16 dummy_bin;
      count = 0;
      head = -1;
      tail = -1;
      seq = 0;
      next_id = 0;
      processed = 0;
      c_crashes = 0;
      c_evicted = 0;
      c_recovered = 0;
      c_rejected = 0;
      c_retries = 0;
      c_slipped = 0;
      c_injected = 0;
      c_lost = 0.;
    }
  in
  List.iter
    (fun (e : Event.t) ->
      r.next_id <- max r.next_id (Item.id e.item + 1);
      match e.kind with
      | Event.Departure ->
          push r ~at:e.time ~cls:cls_departure (Primary_departure e.item)
      | Event.Arrival ->
          push r ~at:e.time ~cls:cls_arrival (Primary_arrival e.item))
    (Event.of_instance instance);
  List.iter
    (fun (c : Fault_plan.crash) -> push r ~at:c.time ~cls:cls_crash (Crash_ev c))
    plan.crashes;
  List.iter
    (fun (b : Fault_plan.burst) ->
      List.iter
        (fun (size, duration) ->
          push r ~at:b.burst_time ~cls:cls_arrival (Burst_spec (size, duration)))
        b.jobs)
    plan.bursts;
  List.iter
    (fun (s : Fault_plan.slip) -> Hashtbl.replace r.slips s.item_id s.delta)
    plan.slips;
  r

let step_exn r =
  match Heap.pop r.queue with
  | None -> false
  | Some entry ->
      handle r entry;
      r.processed <- r.processed + 1;
      true

let shim f =
  try f () with Fatal e -> raise (E.Invalid_decision (E.error_to_string e))

let step r = shim (fun () -> step_exn r)

let events_processed r = r.processed

let segment_length segments =
  List.fold_left (fun acc i -> acc +. Interval.length i) 0. segments

let outcome_of r =
  let bins = List.init r.count (fun i -> bin_of r i) in
  let reports =
    List.map
      (fun lb ->
        {
          index = lb.idx;
          opened_at = lb.opened;
          crashed_at = lb.crashed;
          state = lb.bin;
          busy = Interval.union lb.segments;
        })
      bins
  in
  let usage_time =
    List.fold_left (fun acc rep -> acc +. segment_length rep.busy) 0. reports
  in
  let packing =
    if Fault_plan.is_empty r.plan then
      Some (Packing.of_bins r.instance (List.map (fun lb -> lb.bin) bins))
    else None
  in
  {
    packing;
    bins = reports;
    usage_time;
    bins_opened = r.count;
    crashes_fired = r.c_crashes;
    evicted = r.c_evicted;
    recovered = r.c_recovered;
    rejected = r.c_rejected;
    retries = r.c_retries;
    slipped = r.c_slipped;
    injected = r.c_injected;
    lost_demand = r.c_lost;
  }

let finish_exn r =
  while step_exn r do
    ()
  done;
  outcome_of r

let finish r = shim (fun () -> finish_exn r)

let run ?policy ?observer algo instance plan =
  finish (start ?policy ?observer algo instance plan)

let run_result ?policy ?observer algo instance plan =
  match finish_exn (start ?policy ?observer algo instance plan) with
  | o -> Ok o
  | exception Fatal e -> Error e

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume: event-sourced (see the interface preamble).     *)

type checkpoint = { events_done : int; state_digest : string }

type mismatch = {
  expected_digest : string;
  actual_digest : string option;
  events_done : int;
  detail : string;
}

exception Checkpoint_mismatch of mismatch

let mismatch_to_string m =
  Printf.sprintf "checkpoint mismatch after %d events (expected digest %s, \
                  replayed %s): %s"
    m.events_done m.expected_digest
    (match m.actual_digest with Some d -> d | None -> "nothing")
    m.detail

let digest r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "n=%d seq=%d id=%d homes=%d cr=%d ev=%d rec=%d rej=%d \
                     ret=%d sl=%d inj=%d lost=%Lx;"
       r.count r.seq r.next_id (Hashtbl.length r.homes) r.c_crashes r.c_evicted
       r.c_recovered r.c_rejected r.c_retries r.c_slipped r.c_injected
       (Int64.bits_of_float r.c_lost));
  for i = 0 to r.count - 1 do
    let lb = bin_of r i in
    Buffer.add_string buf
      (Printf.sprintf "b%d:%d:%Lx:%d:%d:%s[" lb.idx lb.active
         (Int64.bits_of_float lb.level)
         (List.length lb.segments)
         (List.length (Bin_state.items lb.bin))
         (match lb.crashed with
         | None -> "-"
         | Some t -> Printf.sprintf "%h" t));
    List.iter (fun id -> Buffer.add_string buf (Printf.sprintf "%d," id)) lb.residents;
    Buffer.add_string buf "]"
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let checkpoint r = { events_done = r.processed; state_digest = digest r }

let resume ?policy ?observer algo instance plan (cp : checkpoint) =
  let r = start ?policy ?observer algo instance plan in
  while
    r.processed < cp.events_done
    && (step r
       || raise
            (Checkpoint_mismatch
               {
                 expected_digest = cp.state_digest;
                 actual_digest = None;
                 events_done = cp.events_done;
                 detail =
                   Printf.sprintf
                     "event stream drained after %d events, checkpoint at %d"
                     r.processed cp.events_done;
               }))
  do
    ()
  done;
  let d = digest r in
  if not (String.equal d cp.state_digest) then
    raise
      (Checkpoint_mismatch
         {
           expected_digest = cp.state_digest;
           actual_digest = Some d;
           events_done = cp.events_done;
           detail =
             "different algorithm, instance, plan or policy — or broken \
              determinism";
         });
  r
