(** A single lint diagnostic: a rule id, a source position and a fix hint. *)

type t

val v :
  rule:string ->
  file:string ->
  line:int ->
  col:int ->
  message:string ->
  hint:string ->
  t

(** Build a finding from a compiler-libs [Location.t] (start position). *)
val of_loc :
  rule:string -> loc:Location.t -> message:string -> hint:string -> t

val rule : t -> string
val file : t -> string
val line : t -> int
val col : t -> int
val message : t -> string
val hint : t -> string

(** Order by file, then line, column and rule id. *)
val compare : t -> t -> int

(** Compiler-style ["file:line:col: [RULE] message"] plus a hint line. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** One JSON object; all strings escaped. *)
val to_json : t -> string
