(** Transitive reachability of nondeterminism and IO sources over the
    {!Callgraph}.

    The classifier is injected (it lives in [Rules], next to the
    syntactic source tables) to keep this module dependency-free: it
    maps canonical use components to a taint class plus the source's
    display name. *)

type cls =
  | Clock  (** wall-clock reads *)
  | Rand  (** [Random] *)
  | Conc  (** [Domain]/[Atomic]/[Thread]/[Mutex]/... *)
  | Io  (** [Unix]/process IO *)

val cls_name : cls -> string

type origin =
  | Direct of Location.t * string  (** use site and source name *)
  | Via of string  (** one hop down the call chain, by node id *)

type t

val analyze :
  classify:(string list -> (cls * string) option) -> Callgraph.t list -> t

(** Taint classes reachable from a node id, at most one entry per
    class. *)
val taints : t -> string -> (cls * origin) list

(** Render the call chain from an origin down to the concrete source
    use. *)
val chain : t -> cls:cls -> origin -> string
