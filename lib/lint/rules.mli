(** The packing-invariant rule registry.

    Nine rules guard conventions the type system cannot express (see
    DESIGN.md section 9): R1 no physical equality, R2 no polymorphic
    comparison on float literals / record literals / bare [compare],
    R3 no [failwith] or [assert false] in [lib/], R4 no console output
    from [lib/], R5 every [lib/] module ships an interface, R6 no raw
    record construction of the smart-constructor types [Interval.t] and
    [Item.t] outside their defining modules, R7 no shared-memory
    concurrency primitives ([Domain], [Mutex], [Condition], [Atomic] —
    expressions or types) outside [lib/par/], R8 no system-clock reads
    ([Unix.gettimeofday], [Unix.time], [Sys.time]) outside
    [lib/obs/clock.ml] and [bench/], R9 no Unix IO/process/signal APIs
    ([Unix.*] except the R8 clock reads, [Sys.signal]/[Sys.set_signal],
    and the [Unix.file_descr]/[Unix.sockaddr] types) outside
    [lib/serve/] — the daemon shell is the one process-facing module.
    [R0] marks suppression hygiene errors and [P0] parse failures. *)

type scope = Lib | Bin | Bench | Test | Other

(** Scope from the leading path segment, after normalising away leading
    [./] and [../] components. *)
val scope_of_path : string -> scope

type info = { id : string; name : string; hint : string }

(** Registry metadata, R0 plus R1..R9. *)
val all : info list

(** Run the expression rules over an implementation. *)
val check_structure :
  path:string -> scope -> Parsetree.structure -> Finding.t list

(** Run the expression rules over an interface. *)
val check_signature :
  path:string -> scope -> Parsetree.signature -> Finding.t list

(** R5 over a file listing: every [lib/] [.ml] needs its [.mli] in the
    same listing.  [scope] overrides path-derived scoping for tests. *)
val check_missing_mli :
  ?scope:(string -> scope) -> string list -> Finding.t list
