(** The packing-invariant rule registry.

    Nine rules guard conventions the type system cannot express (see
    DESIGN.md section 9): R1 no physical equality, R2 no polymorphic
    comparison on float literals / record literals / bare [compare],
    R3 no [failwith] or [assert false] in [lib/], R4 no console output
    from [lib/], R5 every [lib/] module ships an interface, R6 no raw
    record construction of the smart-constructor types [Interval.t] and
    [Item.t] outside their defining modules, R7 no shared-memory
    concurrency primitives ([Domain], [Mutex], [Condition], [Atomic] —
    expressions or types) outside [lib/par/], R8 no system-clock reads
    ([Unix.gettimeofday], [Unix.time], [Sys.time]) outside
    [lib/obs/clock.ml] and [bench/], R9 no Unix IO/process/signal APIs
    ([Unix.*] except the R8 clock reads, [Sys.signal]/[Sys.set_signal],
    and the [Unix.file_descr]/[Unix.sockaddr] types) outside
    [lib/serve/] — the daemon shell is the one process-facing module.
    [R0] marks suppression hygiene errors and [P0] parse failures.

    Three semantic rules run over the typed call graph ({!Callgraph}
    built from [.cmt] artifacts, see {!check_semantic}): R10 re-checks
    the R7/R8/R9 confinement on typechecker-resolved paths, catching
    [module U = Unix] aliases, [open]ed uses and [include]s the
    syntactic walk cannot see; R11 requires every
    [[@dbp.total]]-annotated function to have an empty residual
    may-raise set ({!Effects}), rendering the offending call chain in
    the hint; R12 requires the decision-path modules (online engine,
    serve admission/placement chain) to stay free of transitively
    reachable wall-clock, randomness and concurrency sources
    ({!Taint}), with the same designated-module exemptions as
    R7/R8/R9.  [C0] marks missing/stale artifacts. *)

type scope = Lib | Bin | Bench | Test | Other

(** Scope from the leading path segment, after normalising away leading
    [./] and [../] components. *)
val scope_of_path : string -> scope

type info = { id : string; name : string; hint : string }

(** Registry metadata, R0 plus R1..R12. *)
val all : info list

(** Is [id] a registered rule id (["R0"]..["R12"])?  [P0]/[C0] are
    pseudo-rules and not listed: they always pass rule filters. *)
val is_known_id : string -> bool

(** Run the expression rules over an implementation. *)
val check_structure :
  path:string -> scope -> Parsetree.structure -> Finding.t list

(** Run the expression rules over an interface. *)
val check_signature :
  path:string -> scope -> Parsetree.signature -> Finding.t list

(** R5 over a file listing: every [lib/] [.ml] needs its [.mli] in the
    same listing.  [scope] overrides path-derived scoping for tests. *)
val check_missing_mli :
  ?scope:(string -> scope) -> string list -> Finding.t list

(** Run the semantic rules (R10 resolved confinement, R11 totality of
    [[@dbp.total]] functions, R12 decision-path determinism) over the
    call graphs of a set of units.  Findings carry each graph's
    [g_file] as their file. *)
val check_semantic : Callgraph.t list -> Finding.t list
