(** Locate and load the [.cmt] typed artifact for a source file.

    Probes a side-by-side [foo.cmt] (the [ocamlc -bin-annot] layout the
    fixture tests use) and dune's [.<lib>.objs/byte/] /
    [.<exe>.eobjs/byte/] directories, both under [build_root] and
    directly under the source directory (for processes whose cwd already
    is the build tree, like the [@lint] alias).  All failure modes are
    structured errors the driver renders as [C0] findings; nothing here
    raises. *)

type t = {
  source : string;  (** the source path as handed to [load] *)
  modname : string;  (** compilation-unit name, e.g. [Dbp_serve__Arrival] *)
  structure : Typedtree.structure;
}

type error = {
  e_file : string;  (** source path the error is attributed to *)
  e_reason : string;  (** missing / stale / unreadable, with detail *)
  e_hint : string;  (** rebuild instruction *)
}

(** ["_build/default"] *)
val default_build_root : string

(** [load ?build_root source] finds the freshest matching artifact.  A
    stale artifact (its [cmt_source_digest] differs from the current
    source digest) is reported only if no fresh one exists anywhere on
    the probe path. *)
val load : ?build_root:string -> string -> (t, error) result
