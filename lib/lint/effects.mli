(** Per-function may-raise summaries, transitively closed over the
    {!Callgraph}.

    A summary maps exception names (canonical: predefined ones bare,
    unit-local ones unit-qualified, ["*"] for a raise whose constructor
    could not be named) to the {!origin} of the potential raise.
    [try]/[match-with-exception] handlers subtract what their patterns
    provably catch.  Unknown callees are assumed total; known-partial
    stdlib functions ([List.hd], [Option.get], [Hashtbl.find],
    [int_of_string], ...) raise per a built-in table.  Bounds-checked
    indexing ([String.get]/[String.sub]/[Array.get]) is deliberately
    treated as total. *)

type origin =
  | Direct of Location.t * string
      (** concrete raise site and a short description *)
  | Via of string  (** one hop down the call chain, by node id *)

(** Fixpoint result over a set of units. *)
type t

val analyze : Callgraph.t list -> t

(** Residual may-raise set of a node id: what escapes after all local
    handlers; empty for a verified-total function. *)
val residual : t -> string -> (string * origin) list

(** Render the call chain from an origin down to its concrete raise
    site, e.g. ["Dbp_serve.Arrival.parse -> Dbp_serve.Json_lite.field ->
    call to List.hd (Failure) at lib/serve/json_lite.ml:42"]. *)
val chain : t -> exn:string -> origin -> string
