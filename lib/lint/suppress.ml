type t = {
  rule : string;
  line : int;
  reason : string;
  mutable used : bool;
}

let marker = "dbp-lint:"

let is_space c = c = ' ' || c = '\t' || c = '\n'

let skip_spaces s i =
  let n = String.length s in
  let rec go i = if i < n && is_space s.[i] then go (i + 1) else i in
  go i

let take_word s i =
  let n = String.length s in
  let rec go j = if j < n && not (is_space s.[j]) then go (j + 1) else j in
  let j = go i in
  (String.sub s i (j - i), j)

let malformed ~path ~line detail =
  Finding.v ~rule:"R0" ~file:path ~line ~col:0
    ~message:(Printf.sprintf "malformed dbp-lint comment (%s)" detail)
    ~hint:"write the marker as: allow RULE reason"

(* Lex the source with the compiler's lexer and keep the comments whose
   content starts with the marker.  Lexing (rather than scanning raw
   lines) means string literals and prose that merely mention the marker
   syntax can never be mistaken for a suppression. *)
let marker_comments source =
  let lexbuf = Lexing.from_string source in
  Lexer.init ();
  (try
     while
       match Lexer.token lexbuf with Parser.EOF -> false | _ -> true
     do
       ()
     done
   with _ -> ());
  Lexer.comments ()
  |> List.filter_map (fun (text, loc) ->
         let text = String.trim text in
         let n = String.length marker in
         if String.length text >= n && String.sub text 0 n = marker then
           Some
             (String.sub text n (String.length text - n),
              loc.Location.loc_start.Lexing.pos_lnum)
         else None)

(* Grammar after the marker: [allow RULE reason]. *)
let parse_marker ~path ~line body =
  let i = skip_spaces body 0 in
  let verb, i = take_word body i in
  if verb <> "allow" then Error (malformed ~path ~line "expected 'allow'")
  else
    let i = skip_spaces body i in
    let rule, i = take_word body i in
    if rule = "" then Error (malformed ~path ~line "missing rule id")
    else
      let reason = String.trim (String.sub body i (String.length body - i)) in
      if reason = "" then Error (malformed ~path ~line "missing reason")
      else Ok { rule; line; reason; used = false }

let scan ~path source =
  List.fold_left
    (fun (sups, errs) (body, line) ->
      match parse_marker ~path ~line body with
      | Ok s -> (s :: sups, errs)
      | Error f -> (sups, f :: errs))
    ([], [])
    (marker_comments source)
  |> fun (sups, errs) -> (List.rev sups, List.rev errs)

(* A suppression covers findings of its rule on its own line or on the
   next line (for comments placed on the line above the flagged code).
   Same-line matches win, so an end-of-line allow is never consumed by a
   finding on the line below it. *)
let find_covering sups f =
  let at delta =
    List.find_opt
      (fun s ->
        s.rule = Finding.rule f && s.line = Finding.line f - delta)
      sups
  in
  match at 0 with Some s -> Some s | None -> at 1

let apply ~path sups findings =
  let kept =
    List.filter
      (fun f ->
        match find_covering sups f with
        | Some s ->
            s.used <- true;
            false
        | None -> true)
      findings
  in
  let unused =
    List.filter_map
      (fun s ->
        if s.used then None
        else
          Some
            (Finding.v ~rule:"R0" ~file:path ~line:s.line ~col:0
               ~message:
                 (Printf.sprintf "unused suppression for %s (%s)" s.rule
                    s.reason)
               ~hint:"remove the stale allow comment")
      )
      sups
  in
  (kept, unused)
