(* Per-function may-raise summaries over the call graph.

   Each toplevel definition gets a map from exception name to the
   {e origin} of that potential raise: either a [Direct] site (a [raise],
   an [assert], a non-exhaustive match, or a call to a known-partial
   stdlib function such as [List.hd]) or [Via callee], pointing one hop
   down the call chain.  Summaries are closed transitively with a
   fixpoint over all units; [try]/[match-with-exception] handlers
   subtract the exceptions their patterns provably catch (a wildcard
   handler catches everything; a named handler only its constructor).

   The analysis is optimistic about what it cannot see: calls to
   functions outside the analyzed units and outside the known-partial
   table are assumed total, as are higher-order parameters.  It is
   deliberately conservative the other way about function {e values}:
   a lambda's body effects materialize where the lambda is created (or,
   for let-bound functions, where the name is referenced), since we do
   not track which call sites actually run it.  Bounds-checked indexing
   ([String.get], [String.sub], [Array.get]) is treated as total: the
   parsers this verifies guard indices explicitly, and flagging every
   [s.[i]] would drown the signal.  ["*"] stands for an exception we
   could not name (a computed [raise e]). *)

module SM = Map.Make (String)
module SS = Set.Make (String)

type origin = Direct of Location.t * string | Via of string

type summary = origin SM.t

type t = { globals : summary SM.t }

(* Known-partial stdlib functions, keyed by canonical dotted name. *)
let partial_table =
  [
    ("List.hd", [ "Failure" ]);
    ("List.tl", [ "Failure" ]);
    ("List.nth", [ "Failure"; "Invalid_argument" ]);
    ("List.find", [ "Not_found" ]);
    ("List.assoc", [ "Not_found" ]);
    ("Option.get", [ "Invalid_argument" ]);
    ("Hashtbl.find", [ "Not_found" ]);
    ("int_of_string", [ "Failure" ]);
    ("float_of_string", [ "Failure" ]);
    ("bool_of_string", [ "Invalid_argument" ]);
    ("failwith", [ "Failure" ]);
    ("invalid_arg", [ "Invalid_argument" ]);
    ("Char.chr", [ "Invalid_argument" ]);
    ("String.index", [ "Not_found" ]);
    ("String.rindex", [ "Not_found" ]);
    ("Queue.pop", [ "Queue.Empty" ]);
    ("Queue.take", [ "Queue.Empty" ]);
    ("Queue.peek", [ "Queue.Empty" ]);
    ("Stack.pop", [ "Stack.Empty" ]);
    ("Stack.top", [ "Stack.Empty" ]);
    ("Sys.getenv", [ "Not_found" ]);
  ]
  |> List.to_seq |> SM.of_seq

let union a b = SM.union (fun _ o _ -> Some o) a b

let add_exn name origin s =
  if SM.mem name s then s else SM.add name origin s

(* What a handler pattern catches. *)
type catches = All | Only of SS.t

let no_catch = Only SS.empty

let catch_union a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Only x, Only y -> Only (SS.union x y)

let rec catch_of_pat exn_name (p : Typedtree.pattern) : catches =
  match p.pat_desc with
  | Tpat_any | Tpat_var _ -> All
  | Tpat_alias (q, _, _) -> catch_of_pat exn_name q
  | Tpat_or (a, b, _) ->
      catch_union (catch_of_pat exn_name a) (catch_of_pat exn_name b)
  | Tpat_construct (_, cd, _, _) -> (
      match cd.Types.cstr_tag with
      | Types.Cstr_extension (path, _) -> Only (SS.singleton (exn_name path))
      | _ -> no_catch)
  | _ -> no_catch

(* ["*"] (a raise we could not name) survives anything short of a
   wildcard handler. *)
let subtract s = function
  | All -> SM.empty
  | Only names -> SM.filter (fun exn _ -> not (SS.mem exn names)) s

type st = { g : Callgraph.t; globals : summary SM.t }

let is_raise st p =
  match Callgraph.strip_stdlib (st.g.Callgraph.g_resolve p) with
  | [ ("raise" | "raise_notrace") ] -> true
  | _ -> false

(* Effects of referencing an identifier: a lexically-local function's
   summary, a node's current global summary (as [Via] links), or a
   known-partial stdlib entry.  Anything else is assumed total. *)
let summary_of_path st env ~loc p =
  match p with
  | Path.Pident id when SM.mem (Ident.unique_name id) env ->
      SM.find (Ident.unique_name id) env
  | _ -> (
      let key = Callgraph.join (st.g.Callgraph.g_resolve p) in
      match SM.find_opt key st.globals with
      | Some s -> SM.map (fun _ -> Via key) s
      | None -> (
          match SM.find_opt key partial_table with
          | Some exns ->
              List.fold_left
                (fun acc exn ->
                  add_exn exn (Direct (loc, "call to " ^ key)) acc)
                SM.empty exns
          | None ->
              if key = "raise" || key = "raise_notrace" then
                SM.singleton "*" (Direct (loc, "raise"))
              else SM.empty))

let exn_of_construct st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_construct (_, cd, _) -> (
      match cd.Types.cstr_tag with
      | Types.Cstr_extension (path, _) -> st.g.Callgraph.g_exn_name path
      | _ -> "*")
  | _ -> "*"

let rec eff st env (e : Typedtree.expression) : summary =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> summary_of_path st env ~loc:e.exp_loc p
  | Texp_constant _ | Texp_unreachable -> SM.empty
  | Texp_apply (fn, args) -> (
      let arg_effs =
        List.fold_left
          (fun acc (_, a) ->
            match a with Some a -> union acc (eff st env a) | None -> acc)
          SM.empty args
      in
      match fn.exp_desc with
      | Texp_ident (p, _, _) when is_raise st p ->
          let exn =
            match args with
            | (_, Some arg) :: _ -> exn_of_construct st arg
            | _ -> "*"
          in
          add_exn exn (Direct (e.exp_loc, "raise")) arg_effs
      | _ -> union (eff st env fn) arg_effs)
  | Texp_function { cases; partial; _ } ->
      let s = value_cases st env cases in
      if partial = Partial then
        add_exn "Match_failure"
          (Direct (e.exp_loc, "non-exhaustive function"))
          s
      else s
  | Texp_match (scrut, cases, partial) ->
      let catches =
        List.fold_left
          (fun acc (c : Typedtree.computation Typedtree.case) ->
            match snd (Typedtree.split_pattern c.c_lhs) with
            | Some ep ->
                catch_union acc (catch_of_pat st.g.Callgraph.g_exn_name ep)
            | None -> acc)
          no_catch cases
      in
      let s =
        union
          (subtract (eff st env scrut) catches)
          (computation_cases st env cases)
      in
      if partial = Partial then
        add_exn "Match_failure" (Direct (e.exp_loc, "non-exhaustive match")) s
      else s
  | Texp_try (body, cases) ->
      let catches =
        List.fold_left
          (fun acc (c : Typedtree.value Typedtree.case) ->
            catch_union acc (catch_of_pat st.g.Callgraph.g_exn_name c.c_lhs))
          no_catch cases
      in
      union (subtract (eff st env body) catches) (value_cases st env cases)
  | Texp_let (rf, vbs, body) ->
      let contrib, env' = bindings st env rf vbs in
      union contrib (eff st env' body)
  | Texp_letop { let_; ands; body; partial; _ } ->
      let ops =
        List.fold_left
          (fun acc (bop : Typedtree.binding_op) ->
            union acc
              (union
                 (summary_of_path st env ~loc:bop.bop_loc bop.bop_op_path)
                 (eff st env bop.bop_exp)))
          SM.empty (let_ :: ands)
      in
      let s = union ops (value_cases st env [ body ]) in
      if partial = Partial then
        add_exn "Match_failure"
          (Direct (e.exp_loc, "non-exhaustive binding operator body"))
          s
      else s
  | Texp_assert (cond, _) ->
      add_exn "Assert_failure"
        (Direct (e.exp_loc, "assert"))
        (eff st env cond)
  | Texp_lazy le -> eff st env le
  | _ ->
      (* Generic fallback: union over every sub-expression reachable
         without crossing another expression node. *)
      List.fold_left
        (fun acc c -> union acc (eff st env c))
        SM.empty (immediate_children e)

and value_cases st env cases =
  List.fold_left
    (fun acc (c : Typedtree.value Typedtree.case) ->
      let acc =
        match c.c_guard with
        | Some g -> union acc (eff st env g)
        | None -> acc
      in
      union acc (eff st env c.c_rhs))
    SM.empty cases

and computation_cases st env cases =
  List.fold_left
    (fun acc (c : Typedtree.computation Typedtree.case) ->
      let acc =
        match c.c_guard with
        | Some g -> union acc (eff st env g)
        | None -> acc
      in
      union acc (eff st env c.c_rhs))
    SM.empty cases

(* Let bindings: a [Tpat_var]-bound function (or eta-alias of one)
   contributes nothing at the binding -- creating a closure is pure --
   and its summary enters the lexical environment so references to the
   name materialize it.  Anything else contributes its effects here.
   Recursive groups reach their own local fixpoint (summaries only
   grow, so a handful of rounds suffices). *)
and bindings st env rf vbs =
  let is_deferred (vb : Typedtree.value_binding) =
    match vb.vb_expr.exp_desc with
    | Texp_function _ | Texp_ident _ -> true
    | _ -> false
  in
  let var_id (vb : Typedtree.value_binding) =
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) -> Some (Ident.unique_name id)
    | _ -> None
  in
  match rf with
  | Asttypes.Nonrecursive ->
      List.fold_left
        (fun (contrib, env') vb ->
          match (var_id vb, is_deferred vb) with
          | Some key, true ->
              (contrib, SM.add key (eff st env vb.Typedtree.vb_expr) env')
          | _ -> (union contrib (eff st env vb.Typedtree.vb_expr), env'))
        (SM.empty, env) vbs
  | Asttypes.Recursive ->
      let keys = List.filter_map var_id vbs in
      let seed =
        List.fold_left (fun acc k -> SM.add k SM.empty acc) env keys
      in
      let step env_rec =
        List.fold_left
          (fun acc vb ->
            match var_id vb with
            | Some key -> SM.add key (eff st env_rec vb.Typedtree.vb_expr) acc
            | None -> acc)
          env_rec vbs
      in
      let rec fix env_rec n =
        let next = step env_rec in
        let stable =
          List.for_all
            (fun k ->
              SM.equal
                (fun _ _ -> true)
                (SM.find k env_rec) (SM.find k next))
            keys
        in
        if stable || n >= 10 then next else fix next (n + 1)
      in
      let env' = fix seed 0 in
      let contrib =
        List.fold_left
          (fun acc vb ->
            if var_id vb = None || not (is_deferred vb) then
              union acc (eff st env' vb.Typedtree.vb_expr)
            else acc)
          SM.empty vbs
      in
      (contrib, env')

and immediate_children e =
  let acc = ref [] in
  let it =
    let open Tast_iterator in
    { default_iterator with expr = (fun _ c -> acc := c :: !acc) }
  in
  Tast_iterator.default_iterator.expr it e;
  List.rev !acc

(* Global fixpoint over every definition in every unit.  Summaries only
   grow (catch subtraction has a fixed subtrahend), so this terminates;
   the iteration cap is belt-and-braces. *)
let analyze graphs =
  let defs =
    List.concat_map
      (fun g -> List.map (fun d -> (g, d)) g.Callgraph.g_defs)
      graphs
  in
  let globals =
    ref
      (List.fold_left
         (fun acc (_, d) -> SM.add d.Callgraph.d_id SM.empty acc)
         SM.empty defs)
  in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 100 do
    changed := false;
    incr iters;
    List.iter
      (fun ((g : Callgraph.t), (d : Callgraph.def)) ->
        let st = { g; globals = !globals } in
        let s = eff st SM.empty d.Callgraph.d_body in
        let old = SM.find d.Callgraph.d_id !globals in
        if not (SM.equal (fun _ _ -> true) old s) then begin
          globals := SM.add d.Callgraph.d_id s !globals;
          changed := true
        end)
      defs
  done;
  { globals = !globals }

let residual (t : t) node =
  match SM.find_opt node t.globals with
  | Some s -> SM.bindings s
  | None -> []

let loc_string (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.loc_start.Lexing.pos_fname
    loc.loc_start.Lexing.pos_lnum

(* Follow [Via] links down to the concrete raise site. *)
let chain (t : t) ~exn origin =
  let rec go origin visited =
    match origin with
    | Direct (loc, desc) ->
        [ Printf.sprintf "%s (%s) at %s" desc exn (loc_string loc) ]
    | Via node ->
        if List.mem node visited || List.length visited > 20 then
          [ node ^ " -> ..." ]
        else
          let rest =
            match SM.find_opt node t.globals with
            | Some s -> (
                match SM.find_opt exn s with
                | Some next -> go next (node :: visited)
                | None -> [])
            | None -> []
          in
          node :: rest
  in
  String.concat " -> " (go origin [])
