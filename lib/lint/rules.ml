(* The packing-invariant rule set.  Every rule here guards a convention
   the type system cannot see; see DESIGN.md section 9 for the rationale
   behind each one. *)

type scope = Lib | Bin | Bench | Test | Other

(* Strip leading "." and ".." segments so scope detection and the
   defining-module exemption work for paths like "../lib/core/item.ml"
   (tests run from a subdirectory of the repo). *)
let norm_path path =
  let segs =
    String.split_on_char '/' path
    |> List.filter (fun s -> s <> "" && s <> ".")
  in
  let rec drop = function ".." :: rest -> drop rest | segs -> segs in
  String.concat "/" (drop segs)

let scope_of_path path =
  match String.split_on_char '/' (norm_path path) with
  | "lib" :: _ -> Lib
  | "bin" :: _ -> Bin
  | "bench" :: _ -> Bench
  | "test" :: _ -> Test
  | _ -> Other

type info = { id : string; name : string; hint : string }

let r1_hint =
  "use structural (=) on immutable values or an id-based equal \
   (Item.equal) on mutable state"

let r2_hint = "use Float.equal / Float.compare or an explicit comparator"

let r3_hint =
  "raise invalid_arg with a \"Module.fn: why\" message or return a \
   structured error (Engine.error)"

let r4_hint =
  "return a string or take a ppf argument; only bin/, bench/ and test/ \
   may print"

let r5_hint = "add a sibling .mli restating the module's contract"

let r6_hint = "use the Interval.make / Item.make smart constructors"

let r0_hint = "remove the stale (* dbp-lint: allow ... *) comment"

let r7_hint =
  "go through Dbp_par.Pool (parallel_map / parallel_for); only lib/par \
   may touch Domain, Mutex, Condition or Atomic"

let r8_hint =
  "inject a Dbp_obs.Clock.t (default Clock.monotonic); only \
   lib/obs/clock.ml and bench/ may read the system clock"

let r9_hint =
  "route process IO through Dbp_serve.Daemon; only lib/serve/ may touch \
   sockets, file descriptors or signal handlers"

let r10_hint =
  "the use resolves to a confined primitive even though it is written \
   differently (module alias, open, include); route through the \
   designated module instead of smuggling the name"

let r11_hint =
  "make the function total (handle the raising case, catch the \
   exception) or drop the [@dbp.total] attribute"

let r12_hint =
  "decision paths must be deterministic and replayable: inject the \
   clock (Dbp_obs.Clock.t) or an explicit seed instead of reaching the \
   source"

let all =
  [
    { id = "R0"; name = "unused-suppression"; hint = r0_hint };
    { id = "R1"; name = "physical-equality"; hint = r1_hint };
    { id = "R2"; name = "polymorphic-float-compare"; hint = r2_hint };
    { id = "R3"; name = "unstructured-failure"; hint = r3_hint };
    { id = "R4"; name = "print-in-lib"; hint = r4_hint };
    { id = "R5"; name = "missing-interface"; hint = r5_hint };
    { id = "R6"; name = "raw-record-construction"; hint = r6_hint };
    { id = "R7"; name = "concurrency-confinement"; hint = r7_hint };
    { id = "R8"; name = "wall-clock-confinement"; hint = r8_hint };
    { id = "R9"; name = "unix-io-confinement"; hint = r9_hint };
    { id = "R10"; name = "resolved-confinement"; hint = r10_hint };
    { id = "R11"; name = "total-annotation"; hint = r11_hint };
    { id = "R12"; name = "decision-determinism"; hint = r12_hint };
  ]

let is_known_id id = List.exists (fun i -> i.id = id) all

(* ---- identifier classification ---------------------------------------- *)

(* Bare or [Stdlib.]-qualified name. *)
let stdlib_name lid =
  match lid with
  | Longident.Lident s -> Some s
  | Longident.Ldot (Longident.Lident "Stdlib", s) -> Some s
  | _ -> None

let is_physical_eq lid =
  match stdlib_name lid with Some ("==" | "!=") -> true | _ -> false

let is_poly_eq lid =
  match stdlib_name lid with Some ("=" | "<>") -> true | _ -> false

(* Bare [compare] is only polymorphic when the module does not shadow it
   with its own comparator ([Event.compare] is the in-tree example), so
   the structure check passes [shadowed] down. *)
let is_poly_compare ~shadowed lid =
  match lid with
  | Longident.Lident "compare" -> not shadowed
  | Longident.Ldot (Longident.Lident "Stdlib", "compare") -> true
  | _ -> false

let is_failwith lid =
  match stdlib_name lid with Some "failwith" -> true | _ -> false

let print_names =
  [
    "print_char"; "print_string"; "print_bytes"; "print_int"; "print_float";
    "print_endline"; "print_newline"; "prerr_char"; "prerr_string";
    "prerr_bytes"; "prerr_int"; "prerr_float"; "prerr_endline";
    "prerr_newline";
  ]

let is_print lid =
  match lid with
  | Longident.Ldot (Longident.Lident ("Printf" | "Format"), ("printf" | "eprintf"))
    ->
      true
  | _ -> (
      match stdlib_name lid with
      | Some s -> List.mem s print_names
      | None -> false)

(* ---- R7 concurrency confinement --------------------------------------- *)

let concurrency_modules = [ "Domain"; "Mutex"; "Condition"; "Atomic" ]

(* A qualified use rooted in one of the shared-memory primitive modules:
   [Domain.spawn], [Mutex.t], [Stdlib.Atomic.make], ...  A bare module
   name alone never matches (there is nothing to use without a member).
   The [_comps] cores work on already-split components so the semantic
   phase can feed them typechecker-resolved paths. *)
let concurrency_comps components =
  match components with
  | m :: _ :: _ when List.mem m concurrency_modules -> Some m
  | _ -> None

let concurrency_use lid =
  concurrency_comps (Callgraph.strip_stdlib (Longident.flatten lid))

(* The whole point of the rule: the pool is the one place allowed to
   spawn and synchronise, so everything under lib/par/ is exempt. *)
let r7_exempt path =
  let n = norm_path path in
  String.length n >= 8 && String.sub n 0 8 = "lib/par/"

(* ---- R8 wall-clock confinement ----------------------------------------- *)

(* A read of the system clock: Unix.gettimeofday, Unix.time, Sys.time
   (bare or Stdlib-qualified). *)
let wallclock_comps components =
  match components with
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
      Some (String.concat "." components)
  | _ -> None

let wallclock_use lid =
  wallclock_comps (Callgraph.strip_stdlib (Longident.flatten lid))

(* Clock injection has to bottom out somewhere: Obs.Clock is that place,
   and the bench harness (bechamel's domain) stays free to time however
   it likes. *)
let r8_exempt ~scope path =
  scope = Bench
  ||
  let n = norm_path path in
  n = "lib/obs/clock.ml" || n = "lib/obs/clock.mli"

(* ---- R9 unix-io confinement -------------------------------------------- *)

(* Any qualified [Unix] member — sockets, file descriptors, processes,
   signals — except the clock reads, which are R8's domain.  [Sys]'s
   signal installers count too: a handler is process state wherever it
   is registered. *)
let unix_io_comps components =
  match components with
  | [ "Unix"; ("gettimeofday" | "time") ] -> None (* R8, not R9 *)
  | "Unix" :: _ :: _ | [ "Sys"; ("signal" | "set_signal") ] ->
      Some (String.concat "." components)
  | _ -> None

let unix_io_use lid =
  unix_io_comps (Callgraph.strip_stdlib (Longident.flatten lid))

(* The daemon shell is the designated process-facing module: everything
   under lib/serve/ may do real IO, nothing else may. *)
let r9_exempt path =
  let n = norm_path path in
  String.length n >= 10 && String.sub n 0 10 = "lib/serve/"

(* ---- R2 operand shapes ------------------------------------------------ *)

let rec is_float_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident neg; _ }; _ },
        [ (Asttypes.Nolabel, inner) ] )
    when neg = "~-." || neg = "~+." || neg = "~-" || neg = "~+" ->
      is_float_literal inner
  | _ -> false

let is_record_literal (e : Parsetree.expression) =
  match e.pexp_desc with Pexp_record _ -> true | _ -> false

(* ---- R6 protected record shapes --------------------------------------- *)

(* (module, defining file, field set) for the smart-constructor types. *)
let protected_records =
  [
    ("Interval", "lib/core/interval.ml", [ "left"; "right" ]);
    ("Item", "lib/core/item.ml", [ "id"; "size"; "arrival"; "departure" ]);
  ]

let label_name lid =
  match lid with
  | Longident.Lident s -> Some (None, s)
  | Longident.Ldot (Longident.Lident m, s) -> Some (Some m, s)
  | _ -> None

(* A record expression constructs a protected type when a field label is
   qualified with the defining module, or when its unqualified label set
   matches the protected field set (exactly for closed records, as a
   subset for [{ e with ... }] updates). *)
let r6_match ~path fields closed =
  let labels = List.filter_map label_name fields in
  List.find_map
    (fun (m, defining, field_set) ->
      if norm_path path = defining || norm_path path = defining ^ "i" then None
      else
        let qualified =
          List.exists
            (fun (q, f) -> q = Some m && List.mem f field_set)
            labels
        and names =
          List.map snd labels |> List.sort_uniq String.compare
        in
        let full_set = List.sort String.compare field_set in
        let unqualified_hit =
          if closed then names = full_set
          else names <> [] && List.for_all (fun n -> List.mem n field_set) names
        in
        if qualified || unqualified_hit then Some m else None)
    protected_records

(* ---- the AST walk ----------------------------------------------------- *)

let check_expr ~path ~scope ~shadowed_compare acc (e : Parsetree.expression) =
  let add rule loc message hint = acc := Finding.of_loc ~rule ~loc ~message ~hint :: !acc in
  match e.pexp_desc with
  | Pexp_ident { txt; loc } ->
      if is_physical_eq txt then
        add "R1" loc
          (Printf.sprintf "physical equality (%s) compares identity, not value"
             (Longident.last txt))
          r1_hint
      else if is_poly_compare ~shadowed:shadowed_compare txt then
        add "R2" loc "polymorphic compare" r2_hint
      else if scope = Lib && is_failwith txt then
        add "R3" loc "failwith in lib/" r3_hint
      else if scope = Lib && is_print txt then
        add "R4" loc
          (Printf.sprintf "console output (%s) from lib/" (Longident.last txt))
          r4_hint
      else begin
        match concurrency_use txt with
        | Some _ when not (r7_exempt path) ->
            add "R7" loc
              (Printf.sprintf "%s used outside lib/par"
                 (String.concat "." (Longident.flatten txt)))
              r7_hint
        | Some _ -> ()
        | None -> (
            match wallclock_use txt with
            | Some name when not (r8_exempt ~scope path) ->
                add "R8" loc
                  (Printf.sprintf "%s reads the wall clock outside Obs.Clock"
                     name)
                  r8_hint
            | Some _ -> ()
            | None -> (
                match unix_io_use txt with
                | Some name when not (r9_exempt path) ->
                    add "R9" loc
                      (Printf.sprintf "%s does process IO outside lib/serve"
                         name)
                      r9_hint
                | _ -> ()))
      end
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt; loc }; _ }, [ (_, lhs); (_, rhs) ])
    when is_poly_eq txt && (is_float_literal lhs || is_float_literal rhs) ->
      add "R2" loc
        (Printf.sprintf "polymorphic (%s) on a float literal"
           (Longident.last txt))
        r2_hint
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt; loc }; _ }, [ (_, lhs); (_, rhs) ])
    when is_poly_eq txt && (is_record_literal lhs || is_record_literal rhs) ->
      add "R2" loc
        (Printf.sprintf "polymorphic (%s) on a record literal"
           (Longident.last txt))
        r2_hint
  | Pexp_assert
      { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
    when scope = Lib ->
      add "R3" e.pexp_loc "assert false in lib/" r3_hint
  | Pexp_record (fields, base) -> (
      match r6_match ~path (List.map (fun (l, _) -> l.Asttypes.txt) fields)
              (base = None)
      with
      | Some m ->
          add "R6" e.pexp_loc
            (Printf.sprintf "direct record construction of %s.t" m)
            r6_hint
      | None -> ())
  | _ -> ()

(* R7 and R9 also fire on types ([Mutex.t] in a signature is as much a
   leak as [Mutex.create] in an implementation; likewise a
   [Unix.file_descr] or [Unix.sockaddr] in an interface). *)
let check_typ ~path acc (t : Parsetree.core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; loc }, _) -> (
      match concurrency_use txt with
      | Some _ when not (r7_exempt path) ->
          acc :=
            Finding.of_loc ~rule:"R7" ~loc
              ~message:
                (Printf.sprintf "%s used outside lib/par"
                   (String.concat "." (Longident.flatten txt)))
              ~hint:r7_hint
            :: !acc
      | Some _ -> ()
      | None -> (
          match unix_io_use txt with
          | Some name when not (r9_exempt path) ->
              acc :=
                Finding.of_loc ~rule:"R9" ~loc
                  ~message:
                    (Printf.sprintf "%s does process IO outside lib/serve"
                       name)
                  ~hint:r9_hint
                :: !acc
          | _ -> ()))
  | _ -> ()

let iterator ~path ~scope ~shadowed_compare acc =
  let default = Ast_iterator.default_iterator in
  {
    default with
    expr =
      (fun self e ->
        check_expr ~path ~scope ~shadowed_compare acc e;
        default.expr self e);
    typ =
      (fun self t ->
        check_typ ~path acc t;
        default.typ self t);
  }

(* Does the module define its own toplevel [compare]? *)
let defines_compare str =
  List.exists
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.exists
            (fun (vb : Parsetree.value_binding) ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = "compare"; _ } -> true
              | _ -> false)
            bindings
      | _ -> false)
    str

let check_structure ~path scope str =
  let acc = ref [] in
  let it =
    iterator ~path ~scope ~shadowed_compare:(defines_compare str) acc
  in
  it.structure it str;
  List.rev !acc

let check_signature ~path scope sg =
  let acc = ref [] in
  let it = iterator ~path ~scope ~shadowed_compare:false acc in
  it.signature it sg;
  List.rev !acc

(* ---- R5: every lib/ implementation ships an interface ----------------- *)

(* ---- semantic phase: R10-R12 over the typed call graph ---------------- *)

(* Findings from the typed tree keep the driver-relative [file] (cmt
   locations carry whatever path the compiler was invoked with, which
   need not match), taking only line/column from the location. *)
let finding_at ~rule ~file (loc : Location.t) ~message ~hint =
  let p = loc.Location.loc_start in
  Finding.v ~rule ~file ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
    ~message ~hint

(* Taint classification over canonical components, shared by R12's
   reachability analysis.  Clock before IO so [Unix.time] classifies as
   a clock read, mirroring the R8/R9 split. *)
let classify_taint comps =
  match wallclock_comps comps with
  | Some name -> Some (Taint.Clock, name)
  | None -> (
      match comps with
      | "Random" :: _ :: _ -> Some (Taint.Rand, String.concat "." comps)
      | _ -> (
          match concurrency_comps comps with
          | Some _ -> Some (Taint.Conc, String.concat "." comps)
          | None -> (
              match unix_io_comps comps with
              | Some name -> Some (Taint.Io, name)
              | None -> None)))

(* R10 covers the same three confinement families as R7/R8/R9 (never
   randomness: that is R12's transitive concern), on resolved
   components.  [include M] brings every member of a confined module
   into scope, so a bare head match suffices there. *)
let r10_classify ~include_ comps =
  if include_ then
    match comps with
    | m :: _ when List.mem m concurrency_modules -> Some (Taint.Conc, m)
    | "Unix" :: _ -> Some (Taint.Io, "Unix")
    | _ -> None
  else
    match concurrency_comps comps with
    | Some _ -> Some (Taint.Conc, String.concat "." comps)
    | None -> (
        match wallclock_comps comps with
        | Some name -> Some (Taint.Clock, name)
        | None -> (
            match unix_io_comps comps with
            | Some name -> Some (Taint.Io, name)
            | None -> None))

(* Per-class exemptions are the same designated modules the syntactic
   rules use; randomness has no designated module in lib/. *)
let confinement_exempt ~scope path = function
  | Taint.Conc -> r7_exempt path
  | Taint.Clock -> r8_exempt ~scope path
  | Taint.Io -> r9_exempt path
  | Taint.Rand -> false

(* The written form already triggering a syntactic classifier means the
   use is either reported by R7/R8/R9 or exempted by them -- either way
   R10 repeating it would double-report. *)
let syntactically_visible lid =
  concurrency_use lid <> None
  || wallclock_use lid <> None
  || unix_io_use lid <> None

let r10_message cls name written =
  let verb =
    match cls with
    | Taint.Conc -> "used outside lib/par"
    | Taint.Clock -> "reads the wall clock outside Obs.Clock"
    | Taint.Io -> "does process IO outside lib/serve"
    | Taint.Rand -> "is nondeterministic"
  in
  Printf.sprintf "%s %s (resolved from %s)" name verb written

let r10_class_hint = function
  | Taint.Conc -> r7_hint
  | Taint.Clock -> r8_hint
  | Taint.Io -> r9_hint
  | Taint.Rand -> r12_hint

(* Decision-path modules R12 holds to zero unexempted taint: the online
   engine and the serve-side admission/placement chain.  lib/serve is
   r9-exempt, so for those files R12 effectively guards clock,
   randomness and concurrency reachability. *)
let r12_targets =
  [
    "lib/online/engine.ml";
    "lib/serve/stream_engine.ml";
    "lib/serve/session.ml";
    "lib/serve/portfolio.ml";
    "lib/serve/admission.ml";
    (* PR 9 sharding: the router decides placement-relevant shard
       assignment, and Http is the byte parser exposed to hostile
       network input — both must stay free of clock/randomness/
       concurrency reach.  Shard.ml itself is deliberately NOT listed:
       it is the orchestration shell (domains, sockets, signals), the
       sharded counterpart of daemon.ml. *)
    "lib/serve/router.ml";
    "lib/serve/http.ml";
    (* PR 10 observability: the analyze reporter's whole contract is
       "same inputs, same bytes" (check.sh byte-compares two runs), so
       it must not reach the clock or randomness.  Span/Hdr themselves
       are obs-side and carry an injected clock; analyze only folds
       over already-recorded lines. *)
    "lib/serve/analyze.ml";
  ]

let check_semantic graphs =
  let eff = Effects.analyze graphs in
  let tnt = Taint.analyze ~classify:classify_taint graphs in
  List.concat_map
    (fun (g : Callgraph.t) ->
      let path = g.g_file in
      let scope = scope_of_path path in
      let r10 =
        List.filter_map
          (fun (u : Callgraph.use) ->
            match r10_classify ~include_:u.u_include u.u_comps with
            | Some (cls, name)
              when (not (confinement_exempt ~scope path cls))
                   && not (syntactically_visible u.u_written) ->
                let written =
                  String.concat "." (Longident.flatten u.u_written)
                in
                Some
                  (finding_at ~rule:"R10" ~file:path u.u_loc
                     ~message:(r10_message cls name written)
                     ~hint:(r10_class_hint cls))
            | _ -> None)
          (Callgraph.all_uses g)
      in
      let r11 =
        List.filter_map
          (fun (d : Callgraph.def) ->
            if not d.d_total then None
            else
              match Effects.residual eff d.d_id with
              | [] -> None
              | (exn0, origin0) :: _ as residual ->
                  let exns = List.map fst residual in
                  Some
                    (finding_at ~rule:"R11" ~file:path d.d_loc
                       ~message:
                         (Printf.sprintf "[@dbp.total] %s may raise: %s"
                            d.d_id
                            (String.concat ", " exns))
                       ~hint:
                         (d.d_id ^ " -> "
                         ^ Effects.chain eff ~exn:exn0 origin0)))
          g.g_defs
      in
      let r12 =
        if not (List.mem (norm_path path) r12_targets) then []
        else
          List.concat_map
            (fun (d : Callgraph.def) ->
              Taint.taints tnt d.d_id
              |> List.filter_map (fun (cls, origin) ->
                     if confinement_exempt ~scope path cls then None
                     else
                       Some
                         (finding_at ~rule:"R12" ~file:path d.d_loc
                            ~message:
                              (Printf.sprintf
                                 "decision path %s transitively reaches a \
                                  %s source"
                                 d.d_id (Taint.cls_name cls))
                            ~hint:
                              (d.d_id ^ " -> " ^ Taint.chain tnt ~cls origin))))
            g.g_defs
      in
      r10 @ r11 @ r12)
    graphs

let check_missing_mli ?(scope = scope_of_path) files =
  List.filter_map
    (fun f ->
      if
        Filename.check_suffix f ".ml"
        && scope f = Lib
        && not (List.mem (f ^ "i") files)
      then
        Some
          (Finding.v ~rule:"R5" ~file:f ~line:1 ~col:0
             ~message:
               (Printf.sprintf "%s has no interface"
                  (Filename.basename f))
             ~hint:r5_hint)
      else None)
    files
