type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  hint : string;
}

let v ~rule ~file ~line ~col ~message ~hint =
  { rule; file; line; col; message; hint }

let of_loc ~rule ~loc ~message ~hint =
  let p = loc.Location.loc_start in
  {
    rule;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
    hint;
  }

let rule f = f.rule
let file f = f.file
let line f = f.line
let col f = f.col
let message f = f.message
let hint f = f.hint

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message;
  if f.hint <> "" then Format.fprintf ppf "@,  hint: %s" f.hint

let to_string f = Format.asprintf "@[<v>%a@]" pp f

(* Minimal JSON string escaping; findings carry ASCII paths and messages. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\",\"hint\":\"%s\"}"
    (json_escape f.rule) (json_escape f.file) f.line f.col
    (json_escape f.message) (json_escape f.hint)
