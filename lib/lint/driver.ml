(* Walk source trees, parse every .ml/.mli with compiler-libs and run the
   rule registry, folding inline suppressions in.  This module never
   prints: rendering is returned as strings so the callers (tools/lint,
   the dbp CLI, the test suite) decide where output goes. *)

(* Directory names never descended into: build artefacts and VCS state
   (any dot- or underscore-prefixed name) and the seeded-violation
   corpora under test/fixtures.  Roots passed explicitly are always
   walked, so the fixture tests can still point at the corpus. *)
let skip_dir name =
  name = "fixtures"
  || String.length name > 0
     && (name.[0] = '.' || name.[0] = '_')

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

let collect_files roots =
  let rec walk acc path =
    if not (Sys.file_exists path) then
      invalid_arg (Printf.sprintf "dbp-lint: no such file or directory: %s" path)
    else if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
             if skip_dir name then acc
             else walk acc (Filename.concat path name))
           acc
    else if is_source path then path :: acc
    else acc
  in
  List.fold_left walk [] roots |> List.rev

let read_file path = In_channel.with_open_bin path In_channel.input_all

let parse_error_finding ~path exn =
  match Location.error_of_exn exn with
  | Some (`Ok err) ->
      let loc = err.Location.main.Location.loc in
      Finding.of_loc ~rule:"P0" ~loc
        ~message:
          (Printf.sprintf "parse error: %s"
             (Format.asprintf "%t" err.Location.main.Location.txt))
        ~hint:"dbp-lint only analyses files that parse"
  | _ ->
      Finding.v ~rule:"P0" ~file:path ~line:1 ~col:0
        ~message:(Printf.sprintf "parse error: %s" (Printexc.to_string exn))
        ~hint:"dbp-lint only analyses files that parse"

let lint_source ?scope ~path source =
  let scope =
    match scope with Some s -> s | None -> Rules.scope_of_path path
  in
  let sups, marker_errors = Suppress.scan ~path source in
  let ast_findings =
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf path;
    match
      if Filename.check_suffix path ".mli" then
        Rules.check_signature ~path scope (Parse.interface lexbuf)
      else Rules.check_structure ~path scope (Parse.implementation lexbuf)
    with
    | findings -> findings
    | exception exn -> [ parse_error_finding ~path exn ]
  in
  let kept, unused = Suppress.apply ~path sups ast_findings in
  List.sort Finding.compare (kept @ marker_errors @ unused)

let lint_file ?scope path = lint_source ?scope ~path (read_file path)

let lint_tree ?scope roots =
  let files = collect_files roots in
  let scope_fn =
    match scope with Some s -> Some (fun _ -> s) | None -> None
  in
  let missing = Rules.check_missing_mli ?scope:scope_fn files in
  let per_file = List.concat_map (fun f -> lint_file ?scope f) files in
  List.sort Finding.compare (missing @ per_file)

let to_text findings =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_string f);
      Buffer.add_char b '\n')
    findings;
  (match findings with
  | [] -> Buffer.add_string b "dbp-lint: clean\n"
  | fs ->
      Buffer.add_string b
        (Printf.sprintf "dbp-lint: %d finding(s)\n" (List.length fs)));
  Buffer.contents b

let to_json findings =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Finding.to_json f))
    findings;
  Buffer.add_string b
    (Printf.sprintf "],\"count\":%d}\n" (List.length findings));
  Buffer.contents b
