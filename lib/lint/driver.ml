(* Walk source trees, parse every .ml/.mli with compiler-libs and run the
   rule registry, folding inline suppressions in.  With [~semantic] the
   driver additionally loads each lib-scope implementation's .cmt
   artifact and runs the typed rules (R10-R12) over the combined call
   graph; artifact load failures degrade to C0 findings rather than
   aborting.  This module never prints: rendering is returned as strings
   so the callers (tools/lint, the dbp CLI, the test suite) decide where
   output goes. *)

(* Directory names never descended into: build artefacts and VCS state
   (any dot- or underscore-prefixed name) and the seeded-violation
   corpora under test/fixtures.  Roots passed explicitly are always
   walked, so the fixture tests can still point at the corpus. *)
let skip_dir name =
  name = "fixtures"
  || String.length name > 0
     && (name.[0] = '.' || name.[0] = '_')

let is_source path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

(* Overlapping roots ("dbp lint lib lib/serve") visit the same file
   twice; deduplication is by exact path string, keeping the first
   occurrence, so the same file spelled through different roots ("lib"
   vs "./lib") still lints once per spelling. *)
let dedupe files =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun f ->
      if Hashtbl.mem seen f then false
      else begin
        Hashtbl.add seen f ();
        true
      end)
    files

let collect_files roots =
  let rec walk acc path =
    if not (Sys.file_exists path) then
      invalid_arg (Printf.sprintf "dbp-lint: no such file or directory: %s" path)
    else if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
             if skip_dir name then acc
             else walk acc (Filename.concat path name))
           acc
    else if is_source path then path :: acc
    else acc
  in
  List.fold_left walk [] roots |> List.rev |> dedupe

let read_file path = In_channel.with_open_bin path In_channel.input_all

let parse_error_finding ~path exn =
  match Location.error_of_exn exn with
  | Some (`Ok err) ->
      let loc = err.Location.main.Location.loc in
      Finding.of_loc ~rule:"P0" ~loc
        ~message:
          (Printf.sprintf "parse error: %s"
             (Format.asprintf "%t" err.Location.main.Location.txt))
        ~hint:"dbp-lint only analyses files that parse"
  | _ ->
      Finding.v ~rule:"P0" ~file:path ~line:1 ~col:0
        ~message:(Printf.sprintf "parse error: %s" (Printexc.to_string exn))
        ~hint:"dbp-lint only analyses files that parse"

(* [extra] carries the file's semantic findings into the suppression
   pass, so one (* dbp-lint: allow R10 ... *) covers them like any
   syntactic finding and goes stale (R0) like any unused marker. *)
let lint_source ?scope ?(extra = []) ~path source =
  let scope =
    match scope with Some s -> s | None -> Rules.scope_of_path path
  in
  let sups, marker_errors = Suppress.scan ~path source in
  let ast_findings =
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf path;
    match
      if Filename.check_suffix path ".mli" then
        Rules.check_signature ~path scope (Parse.interface lexbuf)
      else Rules.check_structure ~path scope (Parse.implementation lexbuf)
    with
    | findings -> findings
    | exception exn -> [ parse_error_finding ~path exn ]
  in
  let kept, unused = Suppress.apply ~path sups (ast_findings @ extra) in
  List.sort Finding.compare (kept @ marker_errors @ unused)

let lint_file ?scope path = lint_source ?scope ~path (read_file path)

let c0_finding (e : Cmt_loader.error) =
  Finding.v ~rule:"C0" ~file:e.e_file ~line:1 ~col:0
    ~message:(Printf.sprintf "typed artifact unavailable: %s" e.e_reason)
    ~hint:e.e_hint

(* The semantic phase only covers lib-scope implementations: dune emits
   .cmt files for libraries but not for the native-only executables in
   bin/, and every R10-R12 invariant is a lib-side contract anyway. *)
let semantic_phase ?scope ?build_root files =
  let lib_scope f =
    match scope with Some s -> s = Rules.Lib | None -> Rules.scope_of_path f = Rules.Lib
  in
  let targets =
    List.filter (fun f -> Filename.check_suffix f ".ml" && lib_scope f) files
  in
  let graphs, c0s =
    List.fold_left
      (fun (graphs, c0s) f ->
        match Cmt_loader.load ?build_root f with
        | Ok unit ->
            ( Callgraph.build ~file:f ~modname:unit.Cmt_loader.modname
                unit.Cmt_loader.structure
              :: graphs,
              c0s )
        | Error e -> (graphs, c0_finding e :: c0s))
      ([], []) targets
  in
  (Rules.check_semantic (List.rev graphs), List.rev c0s)

(* Rule filtering happens after suppressions, so markers for filtered
   rules still count as used.  P0 (unparseable source) and C0 (missing
   typed artifact) always pass: a filtered run that silently skipped
   what it could not analyse would report clean trees it never saw. *)
let filter_rules rules findings =
  match rules with
  | None -> findings
  | Some ids ->
      List.filter
        (fun f ->
          let r = Finding.rule f in
          r = "P0" || r = "C0" || List.mem r ids)
        findings

let lint_tree ?scope ?(semantic = false) ?build_root ?rules roots =
  let files = collect_files roots in
  let scope_fn =
    match scope with Some s -> Some (fun _ -> s) | None -> None
  in
  let missing = Rules.check_missing_mli ?scope:scope_fn files in
  let sem_findings, c0s =
    if semantic then semantic_phase ?scope ?build_root files else ([], [])
  in
  let per_file =
    List.concat_map
      (fun f ->
        let extra =
          List.filter (fun sf -> Finding.file sf = f) sem_findings
        in
        lint_source ?scope ~extra ~path:f (read_file f))
      files
  in
  filter_rules rules (missing @ c0s @ per_file) |> List.sort Finding.compare

let to_text findings =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string b (Finding.to_string f);
      Buffer.add_char b '\n')
    findings;
  (match findings with
  | [] -> Buffer.add_string b "dbp-lint: clean\n"
  | fs ->
      Buffer.add_string b
        (Printf.sprintf "dbp-lint: %d finding(s)\n" (List.length fs)));
  Buffer.contents b

let to_json findings =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Finding.to_json f))
    findings;
  Buffer.add_string b
    (Printf.sprintf "],\"count\":%d}\n" (List.length findings));
  Buffer.contents b
