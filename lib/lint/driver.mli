(** The dbp-lint driver: collect sources, parse, run the rule registry,
    apply suppressions and render findings.

    The driver never prints; [to_text]/[to_json] return strings so each
    entry point (the [dbp-lint] tool, [dbp lint], tests) controls its own
    output channel and exit code. *)

(** Recursively collect [.ml]/[.mli] files under the given roots, in
    sorted order.  Directories named [fixtures] or starting with a dot
    or underscore are not descended into (explicit roots are always
    walked).  Raises [Invalid_argument] on a missing root. *)
val collect_files : string list -> string list

(** Lint one file already in memory.  [scope] overrides the path-derived
    scope (used by the fixture tests to exercise lib-only rules). *)
val lint_source :
  ?scope:Rules.scope -> path:string -> string -> Finding.t list

(** Lint one file from disk. *)
val lint_file : ?scope:Rules.scope -> string -> Finding.t list

(** Lint whole trees: every file under the roots plus the filesystem
    rule R5 (missing interfaces).  Findings are sorted by position. *)
val lint_tree : ?scope:Rules.scope -> string list -> Finding.t list

(** Human-readable report; ends with a ["dbp-lint: clean"] or a count. *)
val to_text : Finding.t list -> string

(** Machine-readable [{"findings":[...],"count":n}] report. *)
val to_json : Finding.t list -> string
