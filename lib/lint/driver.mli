(** The dbp-lint driver: collect sources, parse, run the rule registry,
    apply suppressions and render findings.

    The driver never prints; [to_text]/[to_json] return strings so each
    entry point (the [dbp-lint] tool, [dbp lint], tests) controls its own
    output channel and exit code. *)

(** Recursively collect [.ml]/[.mli] files under the given roots, in
    sorted order per root.  Directories named [fixtures] or starting
    with a dot or underscore are not descended into (explicit roots are
    always walked).  Files reached through overlapping roots are
    deduplicated by exact path string, first occurrence kept.  Raises
    [Invalid_argument] on a missing root. *)
val collect_files : string list -> string list

(** Lint one file already in memory.  [scope] overrides the path-derived
    scope (used by the fixture tests to exercise lib-only rules);
    [extra] merges precomputed findings (the semantic phase's) into the
    suppression pass, so allow-markers cover them and go stale like any
    other. *)
val lint_source :
  ?scope:Rules.scope ->
  ?extra:Finding.t list ->
  path:string ->
  string ->
  Finding.t list

(** Lint one file from disk. *)
val lint_file : ?scope:Rules.scope -> string -> Finding.t list

(** Lint whole trees: every file under the roots plus the filesystem
    rule R5 (missing interfaces).  Findings are sorted by position.

    With [~semantic:true], additionally load each lib-scope [.ml]'s
    [.cmt] artifact (under [build_root], default
    {!Cmt_loader.default_build_root}) and run the typed rules R10-R12
    over the combined call graph; load failures surface as [C0]
    findings instead of aborting.  Only lib scope is analysed: dune
    does not emit [.cmt]s for native-only executables, and the R10-R12
    invariants are lib-side contracts.

    [rules] keeps only findings whose rule id is listed; [P0] and [C0]
    always pass the filter (a run that silently skipped what it could
    not analyse would report clean trees it never saw).  Filtering
    happens after suppression, so markers for filtered rules still
    count as used. *)
val lint_tree :
  ?scope:Rules.scope ->
  ?semantic:bool ->
  ?build_root:string ->
  ?rules:string list ->
  string list ->
  Finding.t list

(** Human-readable report; ends with a ["dbp-lint: clean"] or a count. *)
val to_text : Finding.t list -> string

(** Machine-readable [{"findings":[...],"count":n}] report. *)
val to_json : Finding.t list -> string
