(* Locate and load the .cmt typed artifact for a source file.

   dune keeps library cmts under <dir>/.<lib>.objs/byte/ with mangled
   names (dbp_serve__Arrival.cmt); ocamlc -bin-annot drops foo.cmt next
   to foo.ml (the layout the fixture tests use).  Both are probed, under
   the build root and -- for runs whose cwd already is the build tree --
   directly under the source directory.  Every failure mode (missing
   artifact, unreadable file, digest mismatch against the current
   source) degrades to a structured error the driver renders as a C0
   finding; nothing here raises. *)

type t = {
  source : string;
  modname : string;
  structure : Typedtree.structure;
}

type error = { e_file : string; e_reason : string; e_hint : string }

let default_build_root = "_build/default"

let rebuild_hint =
  "run 'dune build' so the .cmt artifacts match the sources, then re-run \
   the semantic lint"

let module_name_of path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Candidate artifact paths for [source], most specific first. *)
let candidates ~build_root source =
  let dir = Filename.dirname source in
  let stem = Filename.remove_extension (Filename.basename source) in
  let modname = module_name_of source in
  let side_by_side = Filename.concat dir (stem ^ ".cmt") in
  let objs_candidates parent =
    if not (Sys.file_exists parent && Sys.is_directory parent) then []
    else
      Sys.readdir parent |> Array.to_list |> List.sort String.compare
      |> List.filter_map (fun name ->
             if
               String.length name > 1
               && name.[0] = '.'
               && (Filename.check_suffix name ".objs"
                  || Filename.check_suffix name ".eobjs")
             then Some (Filename.concat (Filename.concat parent name) "byte")
             else None)
      |> List.concat_map (fun byte_dir ->
             if not (Sys.file_exists byte_dir && Sys.is_directory byte_dir)
             then []
             else
               Sys.readdir byte_dir |> Array.to_list
               |> List.sort String.compare
               |> List.filter_map (fun f ->
                      if
                        f = stem ^ ".cmt"
                        || f = String.uncapitalize_ascii modname ^ ".cmt"
                        || Filename.check_suffix f ("__" ^ modname ^ ".cmt")
                      then Some (Filename.concat byte_dir f)
                      else None))
  in
  let roots =
    if Filename.is_relative source then
      [ Filename.concat build_root dir; dir ]
    else [ dir ]
  in
  (if Sys.file_exists side_by_side then [ side_by_side ] else [])
  @ List.concat_map objs_candidates roots

let source_digest source =
  match Digest.file source with
  | digest -> Some digest
  | exception Sys_error _ -> None

let read ~source ~digest path =
  match Cmt_format.read_cmt path with
  | exception exn ->
      Error
        {
          e_file = source;
          e_reason =
            Printf.sprintf "unreadable artifact %s (%s)" path
              (Printexc.to_string exn);
          e_hint = rebuild_hint;
        }
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation structure -> (
          match (cmt.Cmt_format.cmt_source_digest, digest) with
          | Some have, Some want when not (String.equal have want) ->
              Error
                {
                  e_file = source;
                  e_reason =
                    Printf.sprintf "stale artifact %s (compiled from a \
                                    different version of the source)"
                      path;
                  e_hint = rebuild_hint;
                }
          | _ ->
              Ok
                {
                  source;
                  modname = cmt.Cmt_format.cmt_modname;
                  structure;
                })
      | _ ->
          Error
            {
              e_file = source;
              e_reason =
                Printf.sprintf "artifact %s is not an implementation" path;
              e_hint = rebuild_hint;
            })

let load ?(build_root = default_build_root) source =
  let digest = source_digest source in
  let rec try_all stale = function
    | [] -> (
        match stale with
        | Some err -> Error err
        | None ->
            Error
              {
                e_file = source;
                e_reason = "no .cmt artifact found for this source";
                e_hint = rebuild_hint;
              })
    | path :: rest -> (
        match read ~source ~digest path with
        | Ok unit -> Ok unit
        | Error err ->
            (* Remember the first stale/unreadable artifact but keep
               probing: a fresh one in another objs dir wins. *)
            let stale = match stale with Some _ -> stale | None -> Some err in
            try_all stale rest)
  in
  try_all None (candidates ~build_root source)
