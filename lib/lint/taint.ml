(* Transitive taint reachability over the call graph.

   A taint source is any resolved use whose canonical components the
   injected [classify] function recognises (wall-clock reads, [Random],
   [Domain]/[Atomic]/[Thread]/[Mutex], [Unix]/[Sys] process IO -- the
   classifier lives in {!Rules} so the source tables stay in one place
   and this module stays cycle-free).  Each node's taint set is its
   direct sources plus, via a fixpoint, everything reachable through
   calls to other analyzed nodes.  Origins mirror {!Effects}: [Direct]
   points at the use site, [Via] one hop down the chain. *)

module SM = Map.Make (String)

type cls = Clock | Rand | Conc | Io

let cls_name = function
  | Clock -> "wall-clock"
  | Rand -> "randomness"
  | Conc -> "concurrency"
  | Io -> "process/IO"

type origin = Direct of Location.t * string | Via of string

type t = { taints : (cls * origin) list SM.t }

let add_taint cls origin l =
  if List.exists (fun (c, _) -> c = cls) l then l else (cls, origin) :: l

let analyze ~classify graphs =
  let defs =
    List.concat_map
      (fun g -> List.map (fun d -> (g, d)) g.Callgraph.g_defs)
      graphs
  in
  let node_ids =
    List.fold_left
      (fun acc (_, (d : Callgraph.def)) -> SM.add d.d_id () acc)
      SM.empty defs
  in
  (* Direct sources and intra-graph call edges, both straight off the
     resolved uses. *)
  let direct, edges =
    List.fold_left
      (fun (direct, edges) ((_ : Callgraph.t), (d : Callgraph.def)) ->
        let srcs, callees =
          List.fold_left
            (fun (srcs, callees) (u : Callgraph.use) ->
              let srcs =
                match classify u.u_comps with
                | Some (cls, name) ->
                    add_taint cls (Direct (u.u_loc, name)) srcs
                | None -> srcs
              in
              let key = Callgraph.join u.u_comps in
              let callees =
                if SM.mem key node_ids && key <> d.d_id then key :: callees
                else callees
              in
              (srcs, callees))
            ([], []) d.d_uses
        in
        (SM.add d.d_id srcs direct, SM.add d.d_id callees edges))
      (SM.empty, SM.empty) defs
  in
  let taints = ref direct in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 100 do
    changed := false;
    incr iters;
    List.iter
      (fun ((_ : Callgraph.t), (d : Callgraph.def)) ->
        let current = SM.find d.d_id !taints in
        let next =
          List.fold_left
            (fun acc callee ->
              match SM.find_opt callee !taints with
              | Some ts ->
                  List.fold_left
                    (fun acc (cls, _) -> add_taint cls (Via callee) acc)
                    acc ts
              | None -> acc)
            current
            (SM.find d.d_id edges)
        in
        if List.length next <> List.length current then begin
          taints := SM.add d.d_id next !taints;
          changed := true
        end)
      defs
  done;
  { taints = !taints }

let taints t node =
  match SM.find_opt node t.taints with Some l -> List.rev l | None -> []

let loc_string (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.loc_start.Lexing.pos_fname
    loc.loc_start.Lexing.pos_lnum

let chain t ~cls origin =
  let rec go origin visited =
    match origin with
    | Direct (loc, name) ->
        [ Printf.sprintf "%s (%s source) at %s" name (cls_name cls)
            (loc_string loc) ]
    | Via node ->
        if List.mem node visited || List.length visited > 20 then
          [ node ^ " -> ..." ]
        else
          let rest =
            match SM.find_opt node t.taints with
            | Some ts -> (
                match List.find_opt (fun (c, _) -> c = cls) ts with
                | Some (_, next) -> go next (node :: visited)
                | None -> [])
            | None -> []
          in
          node :: rest
  in
  String.concat " -> " (go origin [])
