(** Inline suppression comments: a comment whose content starts with
    [dbp-lint:] followed by [allow RULE reason].

    Comments are found with the compiler's lexer, so string literals and
    prose that merely mention the marker are never mistaken for one.  A
    suppression covers findings of the named rule on the comment's own
    line or on the line immediately below it.  Suppressions that cover no
    finding are reported as [R0] findings themselves, as are malformed
    marker comments, so stale or broken annotations cannot accumulate. *)

type t = { rule : string; line : int; reason : string; mutable used : bool }

(** Scan source text for suppression markers.  Returns the suppressions
    plus findings for malformed markers. *)
val scan : path:string -> string -> t list * Finding.t list

(** Drop suppressed findings, marking the suppressions used; unused
    suppressions come back as [R0] findings located at their comment. *)
val apply : path:string -> t list -> Finding.t list -> Finding.t list * Finding.t list
