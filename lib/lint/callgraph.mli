(** Resolved def->use extraction over a compilation unit's Typedtree.

    Identifier uses are canonicalised: dune and stdlib module mangling
    ([Dbp_serve__Arrival], [Stdlib__List]) is split back into dotted
    components, [Stdlib.] prefixes are stripped, and module aliases
    ([module U = Unix], chained through [module V = U]) are chased to
    their roots -- the resolution step the purely syntactic rules
    cannot perform.  [open]ed uses arrive already resolved from the
    typechecker. *)

(** One value use: canonical components, the identifier as written in
    the source (for deciding whether the syntactic layer already caught
    it), and its location.  [u_include] marks [include M] module uses
    (components are the bare module path). *)
type use = {
  u_comps : string list;
  u_written : Longident.t;
  u_loc : Location.t;
  u_include : bool;
}

(** One toplevel (possibly nested-module) value binding: canonical node
    id ([Dbp_serve.Arrival.parse]), definition location, whether it
    carries a [[@dbp.total]] attribute, the resolved uses in its body,
    and the body itself (consumed by {!Effects}). *)
type def = {
  d_id : string;
  d_loc : Location.t;
  d_total : bool;
  d_uses : use list;
  d_body : Typedtree.expression;
}

type t = {
  g_file : string;  (** source path as given to the driver *)
  g_prefix : string;  (** canonical unit prefix, e.g. [Dbp_serve.Arrival] *)
  g_defs : def list;
  g_floating : use list;
      (** uses outside any named binding: [let () = ...], includes *)
  g_resolve : Path.t -> string list;  (** canonicalise any path *)
  g_exn_name : Path.t -> string;
      (** canonical exception-constructor name; predefined exceptions
          stay bare ([Failure]), unit-local ones are unit-qualified *)
}

(** Build the graph for one unit.  [modname] is the cmt's compilation
    unit name; [file] the driver-relative source path findings should
    carry. *)
val build : file:string -> modname:string -> Typedtree.structure -> t

(** Every use in the unit: floating ones plus each def's. *)
val all_uses : t -> use list

(** Split a mangled name on [__] ([Dbp_serve__Arrival] ->
    [["Dbp_serve"; "Arrival"]]). *)
val demangle : string -> string list

(** Drop a leading [Stdlib.] when something follows it. *)
val strip_stdlib : string list -> string list

(** Dot-join components. *)
val join : string list -> string
