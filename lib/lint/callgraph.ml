(* Cross-module def->use extraction over the Typedtree.

   The semantic rules (R10-R12) work on {e resolved} [Path.t]s, so the
   first job here is canonicalisation: dune's module mangling
   ([Dbp_serve__Arrival]) and the stdlib's ([Stdlib__List]) are split
   back into dotted components, [Stdlib.] prefixes are stripped, and --
   the whole point of the exercise -- module {e aliases} are chased:
   [module U = Unix] followed by [U.getpid] yields the canonical
   components [["Unix"; "getpid"]], which no Parsetree walker can see.
   Plain [open]s need no work: the typechecker already resolves
   [gettimeofday] under [open Unix] to the path [Unix.gettimeofday]. *)

type use = {
  u_comps : string list;
  u_written : Longident.t;
  u_loc : Location.t;
  u_include : bool;
}

type def = {
  d_id : string;
  d_loc : Location.t;
  d_total : bool;
  d_uses : use list;
  d_body : Typedtree.expression;
}

type t = {
  g_file : string;
  g_prefix : string;
  g_defs : def list;
  g_floating : use list;
  g_resolve : Path.t -> string list;
  g_exn_name : Path.t -> string;
}

(* "Dbp_serve__Arrival" -> ["Dbp_serve"; "Arrival"]; applied to head
   (module-level) identifiers only, so a value named [foo__bar] is never
   split (values always sit in [Pdot] member position). *)
let demangle name =
  let n = String.length name in
  let rec go start i acc =
    if i + 1 >= n then List.rev (String.sub name start (n - start) :: acc)
    else if name.[i] = '_' && name.[i + 1] = '_' then
      go (i + 2) (i + 2) (String.sub name start (i - start) :: acc)
    else go start (i + 1) acc
  in
  if n = 0 then [ name ]
  else go 0 0 [] |> List.filter (fun s -> s <> "")

let strip_stdlib = function
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | comps -> comps

let join = String.concat "."

(* Wrapper around the two mutable tables [build] fills: module aliases
   (by unique ident, so shadowing cannot confuse entries) and toplevel
   value bindings (so [fail] inside its own module canonicalises to the
   same node id [Dbp_serve.Json_lite.fail] other modules use). *)
let resolver ~aliases ~toplevel =
  let rec comps p =
    match p with
    | Path.Pident id -> (
        let key = Ident.unique_name id in
        match Hashtbl.find_opt aliases key with
        | Some target -> target
        | None -> (
            match Hashtbl.find_opt toplevel key with
            | Some node -> node
            | None -> demangle (Ident.name id)))
    | Path.Pdot (p, s) -> comps p @ [ s ]
    | Path.Papply (f, _) -> comps f
    | Path.Pextra_ty (p, _) -> comps p
  in
  fun p -> strip_stdlib (comps p)

let build ~file ~modname str =
  let prefix_comps = demangle modname in
  let aliases : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let toplevel : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let resolve = resolver ~aliases ~toplevel in
  let exn_name p =
    match p with
    | Path.Pident id when Ident.is_predef id -> Ident.name id
    | Path.Pident id -> join (prefix_comps @ [ Ident.name id ])
    | p -> join (resolve p)
  in
  (* Pass 1: record every module alias, at any depth.  Modules must be
     defined before they are aliased, and the iterator visits in source
     order, so resolving each right-hand side immediately chases chains
     ([module V = U] where [module U = Unix]) in one pass. *)
  let record_alias id mod_expr =
    let rec target (m : Typedtree.module_expr) =
      match m.mod_desc with
      | Tmod_ident (p, _) -> Some (resolve p)
      | Tmod_constraint (inner, _, _, _) -> target inner
      | _ -> None
    in
    match (id, target mod_expr) with
    | Some id, Some comps -> Hashtbl.replace aliases (Ident.unique_name id) comps
    | _ -> ()
  in
  let alias_pass =
    let open Tast_iterator in
    {
      default_iterator with
      module_binding =
        (fun self mb ->
          record_alias mb.Typedtree.mb_id mb.Typedtree.mb_expr;
          default_iterator.module_binding self mb);
      expr =
        (fun self e ->
          (match e.Typedtree.exp_desc with
          | Texp_letmodule (id, _, _, mexpr, _) -> record_alias id mexpr
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  alias_pass.structure alias_pass str;
  (* Pass 2: register toplevel value idents so intra-unit references
     resolve to their node ids. *)
  let rec register prefix (items : Typedtree.structure_item list) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) ->
                    Hashtbl.replace toplevel (Ident.unique_name id)
                      (prefix @ [ Ident.name id ])
                | _ -> ())
              vbs
        | Tstr_module mb -> register_module prefix mb
        | Tstr_recmodule mbs -> List.iter (register_module prefix) mbs
        | Tstr_include incl -> (
            match incl.incl_mod.mod_desc with
            | Tmod_structure inner -> register prefix inner.str_items
            | _ -> ())
        | _ -> ())
      items
  and register_module prefix (mb : Typedtree.module_binding) =
    let rec body (m : Typedtree.module_expr) =
      match m.mod_desc with
      | Tmod_structure inner -> Some inner
      | Tmod_constraint (inner, _, _, _) -> body inner
      | _ -> None
    in
    match (mb.mb_name.txt, body mb.mb_expr) with
    | Some name, Some inner -> register (prefix @ [ name ]) inner.str_items
    | _ -> ()
  in
  register prefix_comps str.str_items;
  (* Pass 3: collect defs with their value uses, plus floating uses
     (toplevel [let () = ...], module initialisers, includes). *)
  let uses_of_expr e =
    let acc = ref [] in
    let it =
      let open Tast_iterator in
      {
        default_iterator with
        expr =
          (fun self e ->
            (match e.Typedtree.exp_desc with
            | Texp_ident (p, lid, _) ->
                acc :=
                  {
                    u_comps = resolve p;
                    u_written = lid.txt;
                    u_loc = lid.loc;
                    u_include = false;
                  }
                  :: !acc
            | _ -> ());
            default_iterator.expr self e);
      }
    in
    it.expr it e;
    List.rev !acc
  in
  let has_total_attr (vb : Typedtree.value_binding) =
    List.exists
      (fun (a : Parsetree.attribute) -> a.attr_name.txt = "dbp.total")
      vb.vb_attributes
  in
  let defs = ref [] in
  let floating = ref [] in
  let rec collect prefix (items : Typedtree.structure_item list) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) ->
                    defs :=
                      {
                        d_id = join (prefix @ [ Ident.name id ]);
                        d_loc = vb.vb_loc;
                        d_total = has_total_attr vb;
                        d_uses = uses_of_expr vb.vb_expr;
                        d_body = vb.vb_expr;
                      }
                      :: !defs
                | _ -> floating := !floating @ uses_of_expr vb.vb_expr)
              vbs
        | Tstr_eval (e, _) -> floating := !floating @ uses_of_expr e
        | Tstr_module mb -> collect_module prefix mb
        | Tstr_recmodule mbs -> List.iter (collect_module prefix) mbs
        | Tstr_include incl -> (
            match incl.incl_mod.mod_desc with
            | Tmod_ident (p, lid) ->
                floating :=
                  !floating
                  @ [
                      {
                        u_comps = resolve p;
                        u_written = lid.txt;
                        u_loc = lid.loc;
                        u_include = true;
                      };
                    ]
            | Tmod_structure inner -> collect prefix inner.str_items
            | _ -> ())
        | _ -> ())
      items
  and collect_module prefix (mb : Typedtree.module_binding) =
    let rec body (m : Typedtree.module_expr) =
      match m.mod_desc with
      | Tmod_structure inner -> Some inner
      | Tmod_constraint (inner, _, _, _) -> body inner
      | _ -> None
    in
    match (mb.mb_name.txt, body mb.mb_expr) with
    | Some name, Some inner -> collect (prefix @ [ name ]) inner.str_items
    | _ -> ()
  in
  collect prefix_comps str.str_items;
  {
    g_file = file;
    g_prefix = join prefix_comps;
    g_defs = List.rev !defs;
    g_floating = !floating;
    g_resolve = resolve;
    g_exn_name = exn_name;
  }

let all_uses g = g.g_floating @ List.concat_map (fun d -> d.d_uses) g.g_defs
