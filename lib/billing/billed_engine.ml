open Dbp_core
module E = Dbp_online.Engine

type server_report = {
  index : int;
  acquired : float;
  released : float;
  cost : float;
  quanta : int;
  items_served : int;
}

type result = {
  packing : Packing.t;
  cost : float;
  usage : float;
  servers : server_report list;
}

type live = {
  idx : int;
  acquired : float;
  mutable bin : Bin_state.t;
  mutable active : int;
  mutable release_at : float option;
      (** scheduled release boundary while empty; None when occupied *)
  mutable released : float option;  (** final release time once decided *)
}

(* The release boundary for a server that became empty at [t]: the first
   quantum boundary at or after [t] ([t] itself when it falls exactly on
   one).  Per-second servers release immediately. *)
let release_boundary model ~acquired t =
  match model with
  | Billing_model.Per_second -> t
  | Billing_model.Quantum q ->
      let elapsed = (t -. acquired) /. q in
      if Float.abs (elapsed -. Float.round elapsed) < 1e-9 then t
      else Billing_model.next_boundary model ~acquired ~after:t

let run ?(reuse_idle = true) ~model algo instance =
  let stepper = algo.E.make () in
  let servers : live list ref = ref [] (* reverse acquisition order *) in
  let home = Hashtbl.create 64 in
  (* finalize any server whose scheduled release is due at or before t
     (strictly before an arrival can use it at t = boundary) *)
  let settle_releases now =
    List.iter
      (fun s ->
        match (s.released, s.release_at) with
        | None, Some b when b <= now +. 1e-12 -> s.released <- Some b
        | _ -> ())
      !servers
  in
  let alive now =
    List.rev !servers
    |> List.filter (fun s ->
           s.released = None
           &&
           match s.release_at with
           | None -> true
           | Some b -> b > now +. 1e-12)
  in
  let views now =
    alive now
    |> List.filter (fun s -> s.active > 0 || reuse_idle)
    |> List.map (fun s ->
           {
             E.index = s.idx;
             opened_at = s.acquired;
             level = Bin_state.level_at s.bin now;
             state = Lazy.from_val s.bin;
           })
  in
  let place s item =
    let now = Item.arrival item in
    if not (Bin_state.fits_at s.bin ~at:now item) then
      raise
        (E.Invalid_decision
           (Printf.sprintf "%s: item %d overflows server %d" algo.E.name
              (Item.id item) s.idx));
    s.bin <- Bin_state.place s.bin item;
    s.active <- s.active + 1;
    s.release_at <- None;
    Hashtbl.replace home (Item.id item) s;
    stepper.E.notify ~item ~index:s.idx
  in
  let handle event =
    let now = event.Event.time in
    settle_releases now;
    match event.Event.kind with
    | Event.Departure ->
        let s = Hashtbl.find home (Item.id event.Event.item) in
        s.active <- s.active - 1;
        if s.active = 0 then
          s.release_at <- Some (release_boundary model ~acquired:s.acquired now)
    | Event.Arrival -> (
        let item = event.Event.item in
        match stepper.E.decide ~now ~open_bins:(views now) item with
        | E.Open_new ->
            let s =
              {
                idx = List.length !servers;
                acquired = now;
                bin = Bin_state.empty ~index:(List.length !servers);
                active = 0;
                release_at = None;
                released = None;
              }
            in
            servers := s :: !servers;
            place s item
        | E.Place idx -> (
            match List.find_opt (fun s -> s.idx = idx) (alive now) with
            | None ->
                raise
                  (E.Invalid_decision
                     (Printf.sprintf "%s: server %d unavailable at %g"
                        algo.E.name idx now))
            | Some s ->
                if s.active = 0 && not reuse_idle then
                  raise
                    (E.Invalid_decision
                       (Printf.sprintf "%s: server %d is idle (no reuse)"
                          algo.E.name idx));
                place s item))
  in
  List.iter handle (Event.of_instance instance);
  (* finalize remaining releases *)
  List.iter
    (fun s ->
      match (s.released, s.release_at) with
      | None, Some b -> s.released <- Some b
      | None, None -> assert (s.active = 0 || Bin_state.is_empty s.bin)
      | _ -> ())
    !servers;
  let servers = List.rev !servers in
  let packing = Packing.of_bins instance (List.map (fun s -> s.bin) servers) in
  let reports =
    List.map
      (fun s ->
        let released =
          match s.released with
          | Some r -> r
          | None -> s.acquired (* empty server never happened *)
        in
        {
          index = s.idx;
          acquired = s.acquired;
          released;
          cost = Billing_model.rental_cost model ~acquired:s.acquired ~released;
          quanta = Billing_model.quanta_used model ~acquired:s.acquired ~released;
          items_served = List.length (Bin_state.items s.bin);
        })
      servers
  in
  {
    packing;
    cost =
      List.fold_left (fun a (r : server_report) -> a +. r.cost) 0. reports;
    usage = Packing.total_usage_time packing;
    servers = reports;
  }

let cost_of_packing ~model packing =
  Packing.bins packing
  |> List.fold_left
       (fun acc b ->
         acc
         +. Billing_model.rental_cost model
              ~acquired:(Bin_state.opening_time b)
              ~released:(Bin_state.closing_time b))
       0.
