(* The benchmark harness.

   Three parts:

   1. Experiment tables — regenerates every table/figure of the paper's
      evaluation (see DESIGN.md section 4 for the experiment index).  This
      is the part whose *shape* is compared against the paper in
      EXPERIMENTS.md.

   2. Bechamel micro-benchmarks — packing throughput of each algorithm and
      of the supporting machinery, one Test.make per subject.

   3. Engine sweep — indexed vs. reference online engine over generated
      workloads from 10^3 to 10^6 jobs.  Asserts bit-identical usage
      between the engines wherever both run, prints a table and writes
      the machine-readable results to BENCH_engine.json in the current
      directory.

   4. Fault degradation sweep — usage-time inflation of the resilient
      engine vs. crash rate and slippage probability, averaged over fault
      seeds.  Writes BENCH_faults.json.

   5. Parallel scaling sweep — one Sweep.run workload timed at 1/2/4/8
      domains through the dbp.par pool.  The point lists are asserted
      bit-identical to the sequential 1-domain baseline (the pool's
      determinism contract, enforced here and not just in the tests) and
      the wall-clock speedup is reported per row.  Writes BENCH_par.json.

   6. Observer overhead sweep — the indexed engine with no observer vs.
      with a recording trace observer, over generated workloads.  Usage
      is asserted identical (observation must not perturb packing) and
      the run fails loudly if the observed run costs more than 2x the
      bare run on the largest (10^5-job) row.  Writes BENCH_obs.json.

   7. Serve sweep — the streaming session's four robustness contracts
      measured end to end: line-parse-to-decision throughput per
      portfolio algorithm, a 10^6-arrival bounded-memory soak under a
      major-heap ceiling, crash-restart (journal replay) latency with a
      digest-equality assert, and admission-ladder transitions under a
      synthetic queue-depth wave.  Writes BENCH_serve.json.

   Run everything: `dune exec bench/main.exe`
   Tables only:    `dune exec bench/main.exe -- tables [--domains N]`
   Micro only:     `dune exec bench/main.exe -- micro`
   Engine sweep:   `dune exec bench/main.exe -- engine [--quick]`
   Fault sweep:    `dune exec bench/main.exe -- faults [--quick]`
   Parallel sweep: `dune exec bench/main.exe -- par [--quick] [--domains N]`
   Observer sweep: `dune exec bench/main.exe -- obs [--quick]`
   Serve sweep:    `dune exec bench/main.exe -- serve [--quick]`

   `--domains 0` means auto (Pool.default_domains).  All wall timing goes
   through Dbp_obs.Clock (best-of-reps reducer). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: experiment tables.                                           *)

let run_tables ~domains () =
  print_endline "=== Experiment tables (paper reproduction) ===";
  let tables =
    match domains with
    | None | Some 1 -> Dbp_sim.Experiments.all ()
    | Some n ->
        Dbp_par.Pool.with_pool ~domains:n (fun pool ->
            Dbp_sim.Experiments.all ~pool ())
  in
  List.iter
    (fun (name, table) -> Dbp_sim.Report.print ~title:name table)
    tables;
  Printf.printf "\nFigure-8 crossover mu (paper: 4): %.2f\n"
    (Dbp_sim.Experiments.figure8_crossover ())

(* ------------------------------------------------------------------ *)
(* Part 2: micro-benchmarks.                                            *)

let medium_instance =
  lazy (Dbp_workload.Generator.generate ~seed:42 Dbp_workload.Generator.default)

let small_instance =
  lazy
    (Dbp_workload.Generator.generate ~seed:42
       { Dbp_workload.Generator.default with arrival_rate = 0.4; horizon = 30. })

let sized_instance n =
  lazy
    (Dbp_workload.Generator.generate ~seed:42
       {
         Dbp_workload.Generator.default with
         horizon = float_of_int n /. 2.;
       })

let instance_1k = sized_instance 1000
let instance_3k = sized_instance 3000

let vector_instance =
  lazy
    (Dbp_multidim.Vector_workload.generate ~seed:42
       Dbp_multidim.Vector_workload.default)

let flex_jobs =
  lazy
    (Dbp_core.Instance.items (Lazy.force small_instance)
    |> List.map (fun item ->
           Dbp_flex.Flex_job.of_item
             ~slack:(Dbp_core.Item.duration item)
             item))

let pack_test name pack =
  Test.make ~name
    (Staged.stage (fun () -> pack (Lazy.force medium_instance)))

let online_test name algo =
  pack_test name (Dbp_online.Engine.run algo)

let tests () =
  let inst = Lazy.force medium_instance in
  [
    pack_test "offline/ddff" Dbp_offline.Ddff.pack;
    pack_test "offline/dual-coloring" Dbp_offline.Dual_coloring.pack;
    pack_test "offline/arrival-ff" Dbp_offline.First_fit_offline.arrival_order;
    online_test "online/first-fit" Dbp_online.Any_fit.first_fit;
    online_test "online/best-fit" Dbp_online.Any_fit.best_fit;
    online_test "online/worst-fit" Dbp_online.Any_fit.worst_fit;
    online_test "online/next-fit" Dbp_online.Any_fit.next_fit;
    online_test "online/hybrid-ff" (Dbp_online.Hybrid_first_fit.make ());
    online_test "online/cbdt-ff" (Dbp_online.Classify_departure.tuned inst);
    online_test "online/cbd-ff" (Dbp_online.Classify_duration.tuned inst);
    online_test "online/combined-ff" (Dbp_online.Classify_combined.tuned inst);
    Test.make ~name:"substrate/size-profile"
      (Staged.stage (fun () -> Dbp_core.Instance.size_profile inst));
    Test.make ~name:"substrate/lower-bounds"
      (Staged.stage (fun () -> Dbp_opt.Lower_bounds.best inst));
    Test.make ~name:"substrate/demand-chart-phase1"
      (Staged.stage (fun () ->
           Dbp_offline.Demand_chart.place_all
             (Dbp_core.Instance.restrict inst (fun r ->
                  Dbp_core.Item.size r <= 0.5))));
    Test.make ~name:"substrate/opt-total-small"
      (Staged.stage (fun () -> Dbp_opt.Opt_total.value (Lazy.force small_instance)));
    Test.make ~name:"substrate/workload-generate"
      (Staged.stage (fun () ->
           Dbp_workload.Generator.generate ~seed:7 Dbp_workload.Generator.default));
    Test.make ~name:"theory/figure8-series"
      (Staged.stage (fun () -> Dbp_theory.Figure8.series ()));
    Test.make ~name:"multidim/first-fit-3d"
      (Staged.stage (fun () ->
           Dbp_multidim.Vector_algorithms.first_fit
             (Lazy.force vector_instance)));
    Test.make ~name:"multidim/ddff-3d"
      (Staged.stage (fun () ->
           Dbp_multidim.Vector_algorithms.ddff (Lazy.force vector_instance)));
    Test.make ~name:"flex/greedy"
      (Staged.stage (fun () ->
           Dbp_flex.Flex_schedule.greedy (Lazy.force flex_jobs)));
    Test.make ~name:"flex/asap"
      (Staged.stage (fun () ->
           Dbp_flex.Flex_schedule.asap (Lazy.force flex_jobs)));
    Test.make ~name:"scale/first-fit-1k"
      (Staged.stage (fun () ->
           Dbp_online.Engine.run Dbp_online.Any_fit.first_fit
             (Lazy.force instance_1k)));
    Test.make ~name:"scale/first-fit-3k"
      (Staged.stage (fun () ->
           Dbp_online.Engine.run Dbp_online.Any_fit.first_fit
             (Lazy.force instance_3k)));
    Test.make ~name:"scale/ddff-1k"
      (Staged.stage (fun () -> Dbp_offline.Ddff.pack (Lazy.force instance_1k)));
    Test.make ~name:"scale/ddff-3k"
      (Staged.stage (fun () -> Dbp_offline.Ddff.pack (Lazy.force instance_3k)));
  ]

let run_micro () =
  print_endline "\n=== Micro-benchmarks (bechamel) ===";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let analyzed = Analyze.all ols Instance.monotonic_clock results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let ns_per_run =
              match Analyze.OLS.estimates ols_result with
              | Some [ est ] -> est
              | _ -> Float.nan
            in
            [ (if String.length name > 0 && name.[0] = '/' then String.sub name 1 (String.length name - 1) else name); Printf.sprintf "%.3f" (ns_per_run /. 1e6) ] :: acc)
          analyzed [])
      (List.map (fun t -> Test.make_grouped ~name:"" [ t ]) (tests ()))
    |> List.concat
    |> List.sort (List.compare String.compare)
  in
  Dbp_sim.Report.print ~title:"packing throughput"
    (Dbp_sim.Report.make
       ~columns:
         [ ("benchmark", Dbp_sim.Report.Left); ("ms/run", Dbp_sim.Report.Right) ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Part 3: engine sweep (indexed vs. reference, BENCH_engine.json).     *)

(* The reference engine rebuilds views of every bin ever opened at every
   event, so it is quadratic in practice; past ~10^5 jobs it takes hours
   and we report the indexed engine alone. *)
let reference_job_cap = 150_000

let engine_algorithms () =
  [
    ("first-fit", Dbp_online.Any_fit.first_fit);
    ("best-fit", Dbp_online.Any_fit.best_fit);
    ("worst-fit", Dbp_online.Any_fit.worst_fit);
    ("next-fit", Dbp_online.Any_fit.next_fit);
    ("hybrid-ff", Dbp_online.Hybrid_first_fit.make ());
  ]

(* Same shape as sized_instance: default config (rate 2, uniform sizes,
   exponential durations) with the horizon scaled so ~n jobs arrive. *)
let engine_instance n =
  Dbp_workload.Generator.generate ~seed:42
    { Dbp_workload.Generator.default with horizon = float_of_int n /. 2. }

let time_best reps f = Dbp_obs.Clock.time_best ~reps f

type engine_row = {
  jobs : int;
  algo : string;
  indexed_s : float;
  reference_s : float option; (* None above reference_job_cap *)
  usage : float;
}

(* Gc knobs for the large engine rows: a 256 MB minor heap (words) so
   the flat engine's short-lived view/decision garbage stays minor, and
   a relaxed space_overhead so the big backing arrays are not compacted
   mid-measurement.  Applied once, before the sweep. *)
let tune_gc_for_engine () =
  Gc.set
    {
      (Gc.get ()) with
      Gc.minor_heap_size = 1 lsl 25;
      space_overhead = 200;
    }

let engine_sweep sizes =
  List.concat_map
    (fun n ->
      let inst = engine_instance n in
      let jobs = Dbp_core.Instance.length inst in
      let reps =
        if jobs <= 2_000 then 15 else if jobs <= 20_000 then 5 else 1
      in
      List.map
        (fun (name, algo) ->
          (* [run_usage] is the serving-path metric: the full event loop
             with identical decisions, without materialising the packing
             (usage is bit-identical; the suite pins that). *)
          let indexed_s, usage =
            time_best reps (fun () -> Dbp_online.Engine.run_usage algo inst)
          in
          let reference_s =
            if jobs > reference_job_cap then None
            else
              let s, ref_usage =
                time_best reps (fun () ->
                    Dbp_core.Packing.total_usage_time
                      (Dbp_online.Engine.run_reference algo inst))
              in
              if not (Float.equal usage ref_usage) then
                failwith
                  (Printf.sprintf
                     "engine mismatch: %s on %d jobs: indexed %.9f vs \
                      reference %.9f"
                     name jobs usage ref_usage);
              Some s
          in
          let row = { jobs; algo = name; indexed_s; reference_s; usage } in
          (match reference_s with
          | Some r ->
              Printf.printf
                "  %7d jobs  %-10s indexed %8.4fs  reference %8.4fs  (%.1fx)\n\
                 %!"
                jobs name indexed_s r (r /. indexed_s)
          | None ->
              Printf.printf
                "  %7d jobs  %-10s indexed %8.4fs  reference   (skipped)\n%!"
                jobs name indexed_s);
          row)
        (engine_algorithms ()))
    sizes

let engine_json rows =
  let row_json { jobs; algo; indexed_s; reference_s; usage } =
    let reference_fields =
      match reference_s with
      | Some r ->
          Printf.sprintf
            "\"reference_s\": %.6f, \"speedup\": %.3f, \"reference_skipped\": \
             false"
            r (r /. indexed_s)
      | None ->
          (* Explicit omission marker: the reference engine is quadratic
             and is skipped above reference_job_cap, not merely missing. *)
          "\"reference_s\": null, \"speedup\": null, \"reference_skipped\": \
           true"
    in
    Printf.sprintf
      "    {\"jobs\": %d, \"algorithm\": \"%s\", \"indexed_s\": %.6f, %s, \
       \"usage\": %.9f}"
      jobs algo indexed_s reference_fields usage
  in
  String.concat ""
    [
      "{\n";
      "  \"benchmark\": \"online engine sweep (indexed vs. reference)\",\n";
      "  \"command\": \"dune exec bench/main.exe -- engine\",\n";
      "  \"workload\": \"Generator.default, seed 42, horizon = jobs/2\",\n";
      Printf.sprintf
        "  \"note\": \"reference engine omitted above %d jobs (quadratic); \
         usage checked bit-identical between engines on every row where \
         both ran\",\n"
        reference_job_cap;
      "  \"results\": [\n";
      String.concat ",\n" (List.map row_json rows);
      "\n  ]\n}\n";
    ]

(* The 1.3x perf-regression gate: compare the fresh sweep against the
   committed BENCH_engine.json (the baseline this run may be about to
   replace).  Full sweeps fail hard on a breach of a large row; quick
   sweeps (the check.sh smoke stage) only warn — their 1e3/1e4 rows are
   millisecond-scale and noisy, and the smoke stage must stay green on
   slow machines. *)
let gate_baseline_file = "BENCH_engine.json"

(* Only rows at least this big are enforced: below it, timing noise
   dwarfs real regressions.  The committed 1e6 row is the contract. *)
let gate_min_jobs = 500_000

let engine_gate ~warn_only rows =
  if not (Sys.file_exists gate_baseline_file) then
    Printf.printf "perf gate: no %s baseline, skipping\n%!" gate_baseline_file
  else begin
    let ic = open_in_bin gate_baseline_file in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let baseline = Dbp_sim.Perf_gate.parse_rows text in
    let current =
      List.map
        (fun r ->
          {
            Dbp_sim.Perf_gate.algorithm = r.algo;
            jobs = r.jobs;
            indexed_s = r.indexed_s;
          })
        rows
    in
    let min_jobs = if warn_only then 0 else gate_min_jobs in
    let breaches =
      Dbp_sim.Perf_gate.check ~min_jobs ~baseline ~current ()
    in
    match breaches with
    | [] ->
        Printf.printf "perf gate: ok (threshold %.2fx, %d baseline rows)\n%!"
          Dbp_sim.Perf_gate.default_threshold (List.length baseline)
    | _ ->
        List.iter
          (fun b ->
            Printf.printf "perf gate %s: %s\n%!"
              (if warn_only then "WARNING" else "FAILURE")
              (Dbp_sim.Perf_gate.breach_to_string b))
          breaches;
        if not warn_only then
          failwith
            (Printf.sprintf
               "perf gate: %d row(s) slower than %.2fx the committed %s"
               (List.length breaches) Dbp_sim.Perf_gate.default_threshold
               gate_baseline_file)
  end

let run_engine ~quick () =
  let sizes =
    if quick then [ 1_000; 10_000 ]
    else [ 1_000; 10_000; 100_000; 1_000_000; 10_000_000 ]
  in
  Printf.printf "=== Engine sweep (%s) ===\n%!"
    (if quick then "quick" else "full");
  tune_gc_for_engine ();
  let rows = engine_sweep sizes in
  (* Gate before writing: a full sweep that regressed must not replace
     the baseline it just failed against. *)
  engine_gate ~warn_only:quick rows;
  (* Quick runs (the check.sh smoke) must not clobber the committed
     full-sweep results. *)
  let out = if quick then "BENCH_engine_quick.json" else "BENCH_engine.json" in
  let oc = open_out out in
  output_string oc (engine_json rows);
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Part 4: fault degradation sweep (BENCH_faults.json).                 *)

module FP = Dbp_faults.Fault_plan

let fault_algorithms =
  [
    ("first-fit", Dbp_online.Any_fit.first_fit);
    ("best-fit", Dbp_online.Any_fit.best_fit);
  ]

type fault_row = {
  family : string;  (* "crash" | "slip" *)
  param : float;  (* crash rate resp. slip probability *)
  f_algo : string;
  inflation : float;  (* mean over fault seeds *)
  f_usage : float;  (* mean faulted usage *)
  fault_free : float;
  f_evicted : float;  (* means over fault seeds *)
  f_recovered : float;
  f_rejected : float;
  f_slipped : float;
}

let fault_sweep ~seeds ~family ~params ~spec_of inst =
  List.concat_map
    (fun param ->
      List.map
        (fun (name, algo) ->
          let fault_free = Dbp_online.Engine.usage_time algo inst in
          let outcomes =
            List.map
              (fun seed ->
                Dbp_faults.Resilient.run algo inst
                  (FP.generate ~seed (spec_of param) inst))
              seeds
          in
          let mean f =
            List.fold_left (fun acc o -> acc +. f o) 0. outcomes
            /. float_of_int (List.length outcomes)
          in
          let usage = mean (fun o -> o.Dbp_faults.Resilient.usage_time) in
          let row =
            {
              family;
              param;
              f_algo = name;
              inflation = usage /. fault_free;
              f_usage = usage;
              fault_free;
              f_evicted =
                mean (fun o -> float_of_int o.Dbp_faults.Resilient.evicted);
              f_recovered =
                mean (fun o -> float_of_int o.Dbp_faults.Resilient.recovered);
              f_rejected =
                mean (fun o -> float_of_int o.Dbp_faults.Resilient.rejected);
              f_slipped =
                mean (fun o -> float_of_int o.Dbp_faults.Resilient.slipped);
            }
          in
          Printf.printf
            "  %s %-5.2f  %-10s inflation %.4f  (usage %.1f / %.1f)\n%!" family
            param name row.inflation usage fault_free;
          row)
        fault_algorithms)
    params

let faults_json ~jobs ~seeds rows =
  let row_json r =
    Printf.sprintf
      "    {\"family\": \"%s\", \"param\": %g, \"algorithm\": \"%s\", \
       \"inflation\": %.6f, \"usage\": %.4f, \"fault_free_usage\": %.4f, \
       \"evicted\": %.1f, \"recovered\": %.1f, \"rejected\": %.1f, \
       \"slipped\": %.1f}"
      r.family r.param r.f_algo r.inflation r.f_usage r.fault_free r.f_evicted
      r.f_recovered r.f_rejected r.f_slipped
  in
  String.concat ""
    [
      "{\n";
      "  \"benchmark\": \"fault degradation sweep (resilient engine)\",\n";
      "  \"command\": \"dune exec bench/main.exe -- faults\",\n";
      Printf.sprintf
        "  \"workload\": \"Generator.default, seed 42, %d jobs\",\n" jobs;
      Printf.sprintf
        "  \"note\": \"inflation = faulted usage / fault-free usage, mean \
         over fault seeds %s; crash family sweeps crashes per unit time \
         (slips off), slip family sweeps overstay probability (crashes \
         off, stretch 0.5); elastic recovery policy\",\n"
        (String.concat "," (List.map string_of_int seeds));
      "  \"results\": [\n";
      String.concat ",\n" (List.map row_json rows);
      "\n  ]\n}\n";
    ]

let run_faults ~quick () =
  let n = if quick then 1_000 else 5_000 in
  let seeds = if quick then [ 1 ] else [ 1; 2; 3 ] in
  let inst = engine_instance n in
  let jobs = Dbp_core.Instance.length inst in
  Printf.printf "=== Fault degradation sweep (%s, %d jobs) ===\n%!"
    (if quick then "quick" else "full")
    jobs;
  let crash_rates =
    if quick then [ 0.; 0.1; 0.4 ] else [ 0.; 0.05; 0.1; 0.2; 0.4 ]
  in
  let slip_probs = if quick then [ 0.; 0.2 ] else [ 0.; 0.1; 0.2; 0.4 ] in
  let crash_rows =
    fault_sweep ~seeds ~family:"crash" ~params:crash_rates
      ~spec_of:(fun crash_rate -> { FP.no_faults with crash_rate })
      inst
  in
  let slip_rows =
    fault_sweep ~seeds ~family:"slip" ~params:slip_probs
      ~spec_of:(fun slip_prob ->
        { FP.no_faults with slip_prob; slip_stretch = 0.5 })
      inst
  in
  (* The zero-fault row must agree with the plain engine: inflation 1. *)
  List.iter
    (fun r ->
      if Float.equal r.param 0. && Float.abs (r.inflation -. 1.) > 1e-9 then
        failwith
          (Printf.sprintf
             "fault sweep: zero-fault inflation %.12f <> 1 for %s (%s)"
             r.inflation r.f_algo r.family))
    (crash_rows @ slip_rows);
  let out = if quick then "BENCH_faults_quick.json" else "BENCH_faults.json" in
  let oc = open_out out in
  output_string oc (faults_json ~jobs ~seeds (crash_rows @ slip_rows));
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Part 5: parallel scaling sweep (BENCH_par.json).                     *)

let par_packers () =
  [
    Dbp_sim.Runner.online Dbp_online.Any_fit.first_fit;
    Dbp_sim.Runner.online Dbp_online.Any_fit.best_fit;
    Dbp_sim.Runner.online Dbp_online.Any_fit.worst_fit;
    Dbp_sim.Runner.online (Dbp_online.Hybrid_first_fit.make ());
    Dbp_sim.Runner.offline "ddff" Dbp_offline.Ddff.pack;
  ]

let par_sweep ~items ~seeds ~mus pool =
  let generate ~seed mu =
    (* Replicate seeds go through the same splitmix64 stream derivation
       the pool's determinism contract prescribes for per-task
       randomness (Prng.derive), so each workload is a pure function of
       (root, replicate) no matter which domain generates it. *)
    let seed =
      Dbp_workload.Prng.int
        (Dbp_workload.Prng.derive ~root:42 ~index:seed)
        1_000_000
    in
    Dbp_workload.Generator.with_mu ~seed ~items ~mu ()
  in
  Dbp_sim.Sweep.run ?pool ~seeds ~parameters:mus ~generate
    ~packers:(par_packers ())
    ~metric:(fun _ packing -> Dbp_core.Packing.total_usage_time packing)
    ()

let points_equal ps qs =
  List.length ps = List.length qs
  && List.for_all2
       (fun (p : Dbp_sim.Sweep.point) (q : Dbp_sim.Sweep.point) ->
         Float.equal p.parameter q.parameter
         && String.equal p.label q.label
         && p.ratios.Dbp_sim.Stats.n = q.ratios.Dbp_sim.Stats.n
         && Float.equal p.ratios.mean q.ratios.mean
         && Float.equal p.ratios.stddev q.ratios.stddev
         && Float.equal p.ratios.min q.ratios.min
         && Float.equal p.ratios.max q.ratios.max)
       ps qs

let usage_total points =
  List.fold_left
    (fun acc (p : Dbp_sim.Sweep.point) ->
      acc +. (p.ratios.Dbp_sim.Stats.mean *. float_of_int p.ratios.n))
    0. points

type par_row = {
  p_domains : int;
  seconds : float;
  speedup : float;
  p_usage : float;
  identical : bool;
}

let par_json ~items ~seeds ~mus ~cores rows =
  let row_json { p_domains; seconds; speedup; p_usage; identical } =
    Printf.sprintf
      "    {\"domains\": %d, \"seconds\": %.6f, \"speedup\": %.3f, \
       \"usage_total\": %.9f, \"identical_to_baseline\": %b}"
      p_domains seconds speedup p_usage identical
  in
  String.concat ""
    [
      "{\n";
      "  \"benchmark\": \"parallel scaling sweep (dbp.par domain pool)\",\n";
      "  \"command\": \"dune exec bench/main.exe -- par\",\n";
      Printf.sprintf
        "  \"workload\": \"Sweep.run, Generator.with_mu %d items, mus [%s], \
         %d Prng.derive-keyed seed replicates, 5 packers\",\n"
        items
        (String.concat "; " (List.map (Printf.sprintf "%g") mus))
        seeds;
      "  \"note\": \"every row's full point list is asserted bit-identical \
       to the sequential 1-domain baseline (pool determinism contract); \
       speedup is baseline seconds / row seconds, best of the timing \
       repetitions\",\n";
      Printf.sprintf "  \"cores_available\": %d,\n" cores;
      "  \"results\": [\n";
      String.concat ",\n" (List.map row_json rows);
      "\n  ]\n}\n";
    ]

let run_par ~quick ~domains_limit () =
  let items = if quick then 300 else 2_000 in
  let seeds = if quick then 2 else 6 in
  let mus = if quick then [ 2.; 8. ] else [ 2.; 8.; 32.; 64. ] in
  let reps = if quick then 1 else 3 in
  let cores = Dbp_par.Pool.available_cores () in
  let grid =
    let base = if quick then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
    match domains_limit with
    | None -> base
    | Some limit ->
        let limit = max 1 limit in
        List.sort_uniq Int.compare
          (1 :: limit :: List.filter (fun d -> d < limit) base)
  in
  Printf.printf "=== Parallel scaling sweep (%s; %d core%s available) ===\n%!"
    (if quick then "quick" else "full")
    cores
    (if cores = 1 then "" else "s");
  let baseline = ref None in
  let rows =
    List.map
      (fun domains ->
        let seconds, points =
          if domains = 1 then
            time_best reps (fun () -> par_sweep ~items ~seeds ~mus None)
          else
            Dbp_par.Pool.with_pool ~domains (fun pool ->
                time_best reps (fun () ->
                    par_sweep ~items ~seeds ~mus (Some pool)))
        in
        let base_seconds, base_points =
          match !baseline with
          | Some b -> b
          | None ->
              baseline := Some (seconds, points);
              (seconds, points)
        in
        let identical = points_equal points base_points in
        if not identical then
          failwith
            (Printf.sprintf
               "par sweep: point list at %d domains differs from the \
                1-domain baseline (determinism contract violated)"
               domains);
        let speedup = base_seconds /. seconds in
        Printf.printf
          "  %2d domains  %8.4fs  speedup %5.2fx  usage total %.3f  \
           identical yes\n\
           %!"
          domains seconds speedup (usage_total points);
        { p_domains = domains; seconds; speedup; p_usage = usage_total points;
          identical })
      grid
  in
  (if cores >= 4 then
     match List.find_opt (fun r -> r.p_domains = 4) rows with
     | Some r when r.speedup < 2.5 ->
         Printf.printf
           "  WARNING: 4-domain speedup %.2fx is below the 2.5x target on \
            a %d-core machine\n\
            %!"
           r.speedup cores
     | _ -> ());
  let out = if quick then "BENCH_par_quick.json" else "BENCH_par.json" in
  let oc = open_out out in
  output_string oc (par_json ~items ~seeds ~mus ~cores rows);
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Part 6: observer overhead sweep (BENCH_obs.json).                     *)

let obs_algorithms () =
  [
    ("first-fit", Dbp_online.Any_fit.first_fit);
    ("best-fit", Dbp_online.Any_fit.best_fit);
  ]

(* Loud-failure threshold for the largest row: tracing every decision
   may not double the engine's cost. *)
let obs_overhead_limit = 2.0
let obs_assert_floor = 50_000

type obs_row = {
  o_jobs : int;
  o_algo : string;
  off_s : float;
  on_s : float;
  o_overhead : float; (* on_s / off_s *)
  o_events : int;
  o_usage : float;
}

let obs_sweep sizes =
  List.concat_map
    (fun n ->
      let inst = engine_instance n in
      let jobs = Dbp_core.Instance.length inst in
      let reps =
        if jobs <= 2_000 then 15 else if jobs <= 20_000 then 5 else 3
      in
      List.map
        (fun (name, algo) ->
          let off_s, usage =
            time_best reps (fun () ->
                Dbp_core.Packing.total_usage_time
                  (Dbp_online.Engine.run algo inst))
          in
          let recorder = Dbp_obs.Trace.create () in
          let observer = Dbp_obs.Trace.observer recorder in
          let on_s, on_usage =
            time_best reps (fun () ->
                Dbp_obs.Trace.clear recorder;
                Dbp_core.Packing.total_usage_time
                  (Dbp_online.Engine.run ~observer algo inst))
          in
          if not (Float.equal usage on_usage) then
            failwith
              (Printf.sprintf
                 "obs sweep: observer perturbed the packing: %s on %d \
                  jobs: bare %.9f vs observed %.9f"
                 name jobs usage on_usage);
          let row =
            {
              o_jobs = jobs;
              o_algo = name;
              off_s;
              on_s;
              o_overhead = on_s /. off_s;
              o_events = Dbp_obs.Trace.emitted recorder;
              o_usage = usage;
            }
          in
          Printf.printf
            "  %7d jobs  %-10s bare %8.4fs  observed %8.4fs  (%.2fx, %d \
             events)\n\
             %!"
            jobs name off_s on_s row.o_overhead row.o_events;
          row)
        (obs_algorithms ()))
    sizes

let obs_json ~span_section rows =
  let row_json r =
    Printf.sprintf
      "    {\"jobs\": %d, \"algorithm\": \"%s\", \"bare_s\": %.6f, \
       \"observed_s\": %.6f, \"overhead\": %.3f, \"events\": %d, \
       \"usage\": %.9f}"
      r.o_jobs r.o_algo r.off_s r.on_s r.o_overhead r.o_events r.o_usage
  in
  String.concat ""
    [
      "{\n";
      "  \"benchmark\": \"observer overhead sweep (indexed engine, trace \
       recorder)\",\n";
      "  \"command\": \"dune exec bench/main.exe -- obs\",\n";
      "  \"workload\": \"Generator.default, seed 42, horizon = jobs/2\",\n";
      Printf.sprintf
        "  \"note\": \"overhead = observed seconds / bare seconds, best of \
         the timing repetitions; usage asserted identical between bare and \
         observed runs on every row; rows with >= %d jobs must stay under \
         %.1fx overhead or the bench fails\",\n"
        obs_assert_floor obs_overhead_limit;
      "  \"results\": [\n";
      String.concat ",\n" (List.map row_json rows);
      "\n  ],\n";
      span_section;
      "}\n";
    ]

(* ------------------------------------------------------------------ *)
(* Part 7: serve sweep (BENCH_serve.json).                              *)

module Sv = Dbp_serve

let serve_lines inst =
  List.map Sv.Arrival.render (Dbp_core.Instance.arrivals_in_order inst)

let serve_session ?journal ?checkpoint ?watermarks ~snapshot_every name =
  let algo =
    match Sv.Portfolio.by_name name with
    | Some a -> a
    | None -> failwith ("serve bench: unknown algorithm " ^ name)
  in
  Sv.Session.create ?journal ?checkpoint
    (Sv.Session.config ?watermarks ~snapshot_every ~name algo)

(* Feed every line through one session; any Fatal is a bench bug.
   [depth] synthesises the queue-depth signal (the ladder driver). *)
let serve_feed ?(depth = fun _ -> 0) s lines =
  let snaps = ref 0 in
  List.iteri
    (fun i line ->
      (match Sv.Session.feed s ~depth:(depth i) line with
      | Sv.Session.Emit _ | Sv.Session.Replayed | Sv.Session.Skipped _ -> ()
      | Sv.Session.Fatal f ->
          failwith ("serve bench: " ^ Sv.Session.fatal_to_string f));
      if Sv.Session.snapshot_due s then begin
        ignore (Sv.Session.take_snapshot s);
        incr snaps
      end)
    lines;
  (match Sv.Session.finish s with
  | Ok () -> ()
  | Error f -> failwith ("serve bench: " ^ Sv.Session.fatal_to_string f));
  !snaps

(* ---- span-pipeline overhead (PR 10, the "spans" section of
   BENCH_obs.json) ---------------------------------------------------------

   Three variants of the same session drive loop: bare (no span calls
   at all), disabled (issue/commit against a sample=0 recorder — the
   shape every daemon line now runs), and sampled at the stride the
   acceptance gate names.  Sessions are stateful, so every timed
   repetition feeds a fresh one; all variants pay the same creation
   cost.  The sampled sink swallows the rendered line, i.e. the full
   daemon-side span cost minus only the final write(2). *)

let span_sample_stride = 16
let span_overhead_limit = 1.3
let span_assert_floor = 50_000

(* Ceilings on the *extra* minor words per line over the bare loop:
   the disabled path may not allocate at all (measurement jitter
   allowance only); the sampled path amortises one armed ticket (a
   12-word floatarray plus the [Some] boxing at the [?span] call) and
   one rendered JSONL line (~280 words of Buffer/Printf churn) over
   [span_sample_stride] arrivals — measured ~19 words/line at 1/16. *)
let span_disabled_words_ceiling = 2.
let span_sampled_words_ceiling = 24.

type span_row = {
  sp_lines : int;
  sp_bare_s : float;
  sp_disabled_s : float;
  sp_sampled_s : float;
  sp_overhead : float; (* sampled / bare *)
  sp_committed : int;
  sp_disabled_dwpl : float; (* extra minor words/line, disabled recorder *)
  sp_sampled_dwpl : float; (* extra minor words/line, sampled recorder *)
}

let span_session ?span_clock () =
  match Sv.Portfolio.by_name "first-fit" with
  | Some algo ->
      Sv.Session.create ?span_clock
        (Sv.Session.config ~snapshot_every:0 ~name:"first-fit" algo)
  | None -> failwith "span bench: first-fit missing"

let span_feed_bare lines =
  let s = span_session () in
  Array.iter
    (fun line ->
      match Sv.Session.feed s ~depth:0 line with
      | Sv.Session.Emit _ | Sv.Session.Replayed | Sv.Session.Skipped _ -> ()
      | Sv.Session.Fatal f ->
          failwith ("span bench: " ^ Sv.Session.fatal_to_string f))
    lines

(* One full drive-loop pass with issue/stamp-in-session/commit, like
   the daemon's.  Returns the recorder so callers can read counters. *)
let span_feed_spans ~sample lines =
  let spans =
    if sample = 0 then Dbp_obs.Span.disabled
    else Dbp_obs.Span.create ~sink:ignore ~sample ~shards:1 ()
  in
  let span_clock =
    if Dbp_obs.Span.enabled spans then Some (Dbp_obs.Span.clock spans)
    else None
  in
  let s = span_session ?span_clock () in
  Array.iter
    (fun line ->
      let tk = Dbp_obs.Span.issue spans in
      (* Branch like the daemon: [~span] on an optional parameter boxes
         a [Some] per call, so unarmed tickets take the bare path. *)
      let outcome =
        if Dbp_obs.Span.active tk then Sv.Session.feed s ~span:tk ~depth:0 line
        else Sv.Session.feed s ~depth:0 line
      in
      (match outcome with
      | Sv.Session.Emit _ | Sv.Session.Replayed | Sv.Session.Skipped _ -> ()
      | Sv.Session.Fatal f ->
          failwith ("span bench: " ^ Sv.Session.fatal_to_string f));
      Dbp_obs.Span.commit spans tk)
    lines;
  spans

let span_sweep sizes =
  List.map
    (fun n ->
      let inst = engine_instance n in
      let lines = Array.of_list (serve_lines inst) in
      let m = Array.length lines in
      let reps = if m <= 20_000 then 7 else 3 in
      let sp_bare_s, () = time_best reps (fun () -> span_feed_bare lines) in
      let sp_disabled_s, _ =
        time_best reps (fun () -> span_feed_spans ~sample:0 lines)
      in
      let sp_sampled_s, spans =
        time_best reps (fun () ->
            span_feed_spans ~sample:span_sample_stride lines)
      in
      let words f =
        f ();
        (* warm *)
        let before = Gc.minor_words () in
        f ();
        (Gc.minor_words () -. before) /. float_of_int m
      in
      let bare_wpl = words (fun () -> span_feed_bare lines) in
      let disabled_wpl =
        words (fun () -> ignore (span_feed_spans ~sample:0 lines))
      in
      let sampled_wpl =
        words (fun () ->
            ignore (span_feed_spans ~sample:span_sample_stride lines))
      in
      let row =
        {
          sp_lines = m;
          sp_bare_s;
          sp_disabled_s;
          sp_sampled_s;
          sp_overhead = sp_sampled_s /. sp_bare_s;
          sp_committed = Dbp_obs.Span.committed spans;
          sp_disabled_dwpl = disabled_wpl -. bare_wpl;
          sp_sampled_dwpl = sampled_wpl -. bare_wpl;
        }
      in
      Printf.printf
        "  %7d lines  bare %8.4fs  disabled %8.4fs  sampled(1/%d) %8.4fs \
         (%.2fx)  +%.2f w/line disabled, +%.2f w/line sampled\n\
         %!"
        m sp_bare_s sp_disabled_s span_sample_stride sp_sampled_s
        row.sp_overhead row.sp_disabled_dwpl row.sp_sampled_dwpl;
      row)
    sizes

let span_gate rows =
  List.iter
    (fun r ->
      if r.sp_lines >= span_assert_floor then begin
        if r.sp_overhead > span_overhead_limit then
          failwith
            (Printf.sprintf
               "span bench: sampled overhead %.2fx exceeds the %.1fx \
                budget on %d lines"
               r.sp_overhead span_overhead_limit r.sp_lines);
        if r.sp_disabled_dwpl > span_disabled_words_ceiling then
          failwith
            (Printf.sprintf
               "span bench: disabled spans allocate %.2f extra minor \
                words/line (ceiling %.0f) on %d lines"
               r.sp_disabled_dwpl span_disabled_words_ceiling r.sp_lines);
        if r.sp_sampled_dwpl > span_sampled_words_ceiling then
          failwith
            (Printf.sprintf
               "span bench: sampled spans allocate %.2f extra minor \
                words/line (ceiling %.0f) on %d lines"
               r.sp_sampled_dwpl span_sampled_words_ceiling r.sp_lines)
      end)
    rows

let span_section rows =
  let row_json r =
    Printf.sprintf
      "      {\"lines\": %d, \"bare_s\": %.6f, \"disabled_s\": %.6f, \
       \"sampled_s\": %.6f, \"overhead\": %.3f, \"committed\": %d, \
       \"disabled_delta_words_per_line\": %.2f, \
       \"sampled_delta_words_per_line\": %.2f}"
      r.sp_lines r.sp_bare_s r.sp_disabled_s r.sp_sampled_s r.sp_overhead
      r.sp_committed r.sp_disabled_dwpl r.sp_sampled_dwpl
  in
  String.concat ""
    [
      "  \"spans\": {\n";
      Printf.sprintf
        "    \"note\": \"Session.feed drive loop, first-fit; sampled = \
         --span-sample %d with a swallowing sink; overhead = sampled \
         seconds / bare seconds, gated at %.1fx on rows with >= %d lines; \
         delta words/line gated at %.0f (disabled) and %.0f (sampled)\",\n"
        span_sample_stride span_overhead_limit span_assert_floor
        span_disabled_words_ceiling span_sampled_words_ceiling;
      "    \"results\": [\n";
      String.concat ",\n" (List.map row_json rows);
      "\n    ]\n  }\n";
    ]

let run_obs ~quick () =
  let sizes = if quick then [ 1_000; 100_000 ] else [ 1_000; 10_000; 100_000 ] in
  Printf.printf "=== Observer overhead sweep (%s) ===\n%!"
    (if quick then "quick" else "full");
  let rows = obs_sweep sizes in
  List.iter
    (fun r ->
      if r.o_jobs >= obs_assert_floor && r.o_overhead > obs_overhead_limit then
        failwith
          (Printf.sprintf
             "obs sweep: observer overhead %.2fx exceeds the %.1fx budget \
              for %s on %d jobs"
             r.o_overhead obs_overhead_limit r.o_algo r.o_jobs))
    rows;
  Printf.printf "=== Span pipeline overhead ===\n%!";
  let spans = span_sweep sizes in
  span_gate spans;
  let out = if quick then "BENCH_obs_quick.json" else "BENCH_obs.json" in
  let oc = open_out out in
  output_string oc (obs_json ~span_section:(span_section spans) rows);
  close_out oc;
  Printf.printf "wrote %s\n" out

type serve_tp_row = {
  sv_algo : string;
  sv_arrivals : int;
  sv_s : float;
  sv_lps : float;
}

let serve_throughput ~sizes ~algos =
  List.concat_map
    (fun n ->
      let inst = engine_instance n in
      let lines = serve_lines inst in
      let arrivals = List.length lines in
      let reps = if arrivals <= 20_000 then 5 else 1 in
      List.map
        (fun name ->
          let sv_s, _ =
            time_best reps (fun () ->
                serve_feed (serve_session ~snapshot_every:0 name) lines)
          in
          let row =
            {
              sv_algo = name;
              sv_arrivals = arrivals;
              sv_s;
              sv_lps = float_of_int arrivals /. sv_s;
            }
          in
          Printf.printf "  %7d arrivals  %-10s %8.4fs  (%.0f lines/s)\n%!"
            arrivals name sv_s row.sv_lps;
          row)
        algos)
    sizes

(* Bounded-memory contract: heap growth while streaming must be
   O(open jobs), not O(arrivals processed).  We compact once after the
   workload is materialised (the driver's own O(n) cost), then watch the
   major heap every [soak_sample_every] lines; a session that retained
   its decision stream (10^6 lines ~ 30M words) would blow the delta
   ceiling several times over, while the real O(open) state stays well
   under a megaword. *)
let soak_heap_ceiling_words = 8_000_000
let soak_sample_every = 16_384

type soak_result = {
  sk_arrivals : int;
  sk_snapshots : int;
  sk_baseline_words : int;
  sk_max_delta_words : int;
  sk_max_open_jobs : int;
  sk_s : float;
}

let serve_soak ~arrivals =
  let inst = engine_instance arrivals in
  let items = Dbp_core.Instance.arrivals_in_order inst in
  let n = List.length items in
  let s = serve_session ~snapshot_every:8192 "first-fit" in
  Gc.compact ();
  let baseline = (Gc.quick_stat ()).Gc.heap_words in
  let max_delta = ref 0 in
  let max_open = ref 0 in
  let snaps = ref 0 in
  let t0 = Dbp_obs.Clock.now Dbp_obs.Clock.monotonic in
  List.iteri
    (fun i item ->
      (* Render on the fly: retaining the rendered stream would make the
         driver itself O(n) and mask a session leak. *)
      (match Sv.Session.feed s ~depth:0 (Sv.Arrival.render item) with
      | Sv.Session.Emit _ -> ()
      | Sv.Session.Replayed | Sv.Session.Skipped _ -> ()
      | Sv.Session.Fatal f ->
          failwith ("serve soak: " ^ Sv.Session.fatal_to_string f));
      if Sv.Session.snapshot_due s then begin
        ignore (Sv.Session.take_snapshot s);
        incr snaps
      end;
      if i land (soak_sample_every - 1) = 0 then begin
        let heap = (Gc.quick_stat ()).Gc.heap_words in
        if heap - baseline > !max_delta then max_delta := heap - baseline;
        let open_jobs = Sv.Stream_engine.open_jobs (Sv.Session.engine s) in
        if open_jobs > !max_open then max_open := open_jobs
      end)
    items;
  (match Sv.Session.finish s with
  | Ok () -> ()
  | Error f -> failwith ("serve soak: " ^ Sv.Session.fatal_to_string f));
  let sk_s = Dbp_obs.Clock.now Dbp_obs.Clock.monotonic -. t0 in
  if !max_delta > soak_heap_ceiling_words then
    failwith
      (Printf.sprintf
         "serve soak: major heap grew %d words over the post-build baseline \
          (ceiling %d) — session memory is not O(open jobs)"
         !max_delta soak_heap_ceiling_words);
  Printf.printf
    "  soak %7d arrivals  %8.4fs  heap delta %d words (ceiling %d)  max \
     open jobs %d  %d snapshots\n\
     %!"
    n sk_s !max_delta soak_heap_ceiling_words !max_open !snaps;
  {
    sk_arrivals = n;
    sk_snapshots = !snaps;
    sk_baseline_words = baseline;
    sk_max_delta_words = !max_delta;
    sk_max_open_jobs = !max_open;
    sk_s;
  }

type restart_result = {
  rs_arrivals : int;
  rs_live_s : float;
  rs_replay_s : float;
}

(* Crash-restart latency: run a stream once (phase 1), keep its decision
   lines as the journal and its last snapshot as the checkpoint, then
   time the full resume path — replay the same input against journal +
   checkpoint through to live — and assert the rebuilt engine digest
   matches phase 1's.  This is the `--resume` cost a supervisor pays. *)
let serve_restart ~arrivals =
  let inst = engine_instance arrivals in
  let lines = serve_lines inst in
  let n = List.length lines in
  let emitted = ref [] in
  let last_snap = ref None in
  let s1 = serve_session ~snapshot_every:(max 1 (n / 2)) "first-fit" in
  let live_s, () =
    time_best 1 (fun () ->
        List.iter
          (fun line ->
            (match Sv.Session.feed s1 ~depth:0 line with
            | Sv.Session.Emit out -> emitted := out :: !emitted
            | Sv.Session.Replayed | Sv.Session.Skipped _ -> ()
            | Sv.Session.Fatal f ->
                failwith ("serve restart: " ^ Sv.Session.fatal_to_string f));
            if Sv.Session.snapshot_due s1 then
              last_snap := Some (Sv.Session.take_snapshot s1))
          lines)
  in
  (match Sv.Session.finish s1 with
  | Ok () -> ()
  | Error f -> failwith ("serve restart: " ^ Sv.Session.fatal_to_string f));
  let journal_lines = List.rev !emitted in
  let digest1 = Sv.Stream_engine.digest (Sv.Session.engine s1) in
  let checkpoint =
    Option.map Sv.Session.checkpoint_of_snapshot !last_snap
  in
  let reps = if n <= 20_000 then 5 else 1 in
  let rs_replay_s, () =
    time_best reps (fun () ->
        let remaining = ref journal_lines in
        let journal () =
          match !remaining with
          | [] -> None
          | l :: tl ->
              remaining := tl;
              Some (Sv.Decision.parse l)
        in
        let s2 = serve_session ~journal ?checkpoint ~snapshot_every:0
            "first-fit"
        in
        ignore (serve_feed s2 lines);
        let digest2 = Sv.Stream_engine.digest (Sv.Session.engine s2) in
        if not (String.equal digest1 digest2) then
          failwith
            (Printf.sprintf
               "serve restart: replayed digest %s <> live digest %s"
               digest2 digest1))
  in
  Printf.printf
    "  restart %5d arrivals  live %8.4fs  replay-to-live %8.4fs  (%.2fx)  \
     digest ok\n\
     %!"
    n live_s rs_replay_s
    (rs_replay_s /. live_s);
  { rs_arrivals = n; rs_live_s = live_s; rs_replay_s }

type ladder_result = {
  ld_arrivals : int;
  ld_shed : int;
  ld_coarsen : int;
  ld_reject : int;
  ld_rejected : int;
}

(* Graceful-degradation contract: a triangle-wave depth signal sweeping
   0..2*reject must engage (and later release) every rung, and rejects
   must appear only while the wave is above the reject watermark. *)
let serve_ladder ~arrivals =
  let wm = { Sv.Admission.shed = 100; coarsen = 200; reject = 300 } in
  let inst = engine_instance arrivals in
  let lines = serve_lines inst in
  let n = List.length lines in
  let depth i =
    let p = i mod 1200 in
    if p < 600 then p else 1200 - p
  in
  let s = serve_session ~watermarks:wm ~snapshot_every:0 "first-fit" in
  ignore (serve_feed ~depth s lines);
  let shed, coarsen, reject = Sv.Session.transitions s in
  let rejected = Sv.Session.rejected s in
  if shed = 0 || coarsen = 0 || reject = 0 then
    failwith
      (Printf.sprintf
         "serve ladder: some rung never engaged (shed %d, coarsen %d, \
          reject %d transitions)"
         shed coarsen reject);
  if rejected = 0 then
    failwith "serve ladder: top rung engaged but nothing was rejected";
  Printf.printf
    "  ladder %6d arrivals  transitions shed %d / coarsen %d / reject %d  \
     rejected %d\n\
     %!"
    n shed coarsen reject rejected;
  {
    ld_arrivals = n;
    ld_shed = shed;
    ld_coarsen = coarsen;
    ld_reject = reject;
    ld_rejected = rejected;
  }

(* ---- shard-scaling sweep (PR 9) ---------------------------------------

   Time the sharded daemon end-to-end (file in, merged file + segments
   out) at 1/2/4 shards over a tenant-striped workload, asserting the
   determinism contract before trusting any number: every journal
   segment must be byte-identical to an unsharded session driven over
   the router-filtered input for that shard.  The >= 1.8x-at-4-shards
   gate only holds where 4 cores exist; on smaller hosts the sweep
   still runs (correctness is core-count independent) and the gate
   records "cores_available" instead of failing. *)

type shard_row = {
  sh_shards : int;
  sh_s : float;
  sh_lps : float;
  sh_speedup : float;  (* vs the 1-shard run *)
}

type shard_gate = {
  sg_enforced : bool;
  sg_reason : string;  (* "enforced" or why not *)
  sg_speedup4 : float;
}

let shard_speedup_required = 1.8

let serve_shard_sweep ~arrivals =
  let inst = engine_instance arrivals in
  let items = Dbp_core.Instance.arrivals_in_order inst in
  let lines =
    List.map
      (fun item ->
        Sv.Arrival.render
          ~tenant:(Printf.sprintf "t%d" (Dbp_core.Item.id item mod 17))
          item)
      items
  in
  let n = List.length lines in
  let scfg =
    match Sv.Portfolio.by_name "first-fit" with
    | Some algo -> Sv.Session.config ~snapshot_every:0 ~name:"first-fit" algo
    | None -> failwith "serve shard bench: unknown algorithm first-fit"
  in
  let dir = Filename.temp_file "dbp_bench_shard" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let input = Filename.concat dir "input.jsonl" in
      let oc = open_out_bin input in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      close_out oc;
      let read_lines path =
        In_channel.with_open_bin path (fun ic ->
            let rec go acc =
              match In_channel.input_line ic with
              | Some l -> go (l :: acc)
              | None -> List.rev acc
            in
            go [])
      in
      let unsharded_reference filtered =
        let s = serve_session ~snapshot_every:0 "first-fit" in
        let out = ref [] in
        List.iter
          (fun line ->
            match Sv.Session.feed s ~depth:0 line with
            | Sv.Session.Emit l -> out := l :: !out
            | Sv.Session.Replayed | Sv.Session.Skipped _ -> ()
            | Sv.Session.Fatal f ->
                failwith ("serve shard bench: " ^ Sv.Session.fatal_to_string f))
          filtered;
        (match Sv.Session.finish s with
        | Ok () -> ()
        | Error f ->
            failwith ("serve shard bench: " ^ Sv.Session.fatal_to_string f));
        List.rev !out
      in
      let run_at k =
        let output = Filename.concat dir (Printf.sprintf "s%d.out" k) in
        let cfg =
          {
            Sv.Shard.base =
              {
                Sv.Daemon.default_config with
                Sv.Daemon.input = Sv.Daemon.In_file input;
                output;
              };
            shards = k;
            routes = [];
            metrics_port = None;
          }
        in
        let t0 = Dbp_obs.Clock.now Dbp_obs.Clock.monotonic in
        (match Sv.Shard.run cfg scfg with
        | Ok _ -> ()
        | Error e -> failwith ("serve shard bench: " ^ e));
        let s = Dbp_obs.Clock.now Dbp_obs.Clock.monotonic -. t0 in
        (* the determinism contract, checked before the number counts *)
        let router = Sv.Router.create ~shards:k () in
        let sc = Sv.Arrival.scratch () in
        for i = 0 to k - 1 do
          let filtered =
            List.filter
              (fun line ->
                match Sv.Arrival.parse_into sc line with
                | Ok () -> Sv.Arrival.shard_for router sc = i
                | Error _ -> i = 0)
              lines
          in
          let want = unsharded_reference filtered in
          let got = read_lines (Sv.Shard.segment_path output i) in
          if want <> got then
            failwith
              (Printf.sprintf
                 "serve shard bench: segment %d of %d-shard run diverges \
                  from the router-filtered unsharded run"
                 i k)
        done;
        s
      in
      let t1 = run_at 1 in
      let rows =
        List.map
          (fun k ->
            let s = if k = 1 then t1 else run_at k in
            let row =
              {
                sh_shards = k;
                sh_s = s;
                sh_lps = float_of_int n /. s;
                sh_speedup = t1 /. s;
              }
            in
            Printf.printf
              "  shards %d  %7d arrivals  %8.4fs  (%.0f lines/s, %.2fx, \
               segments verified)\n\
               %!"
              k n s row.sh_lps row.sh_speedup;
            row)
          [ 1; 2; 4 ]
      in
      let speedup4 =
        match List.find_opt (fun r -> r.sh_shards = 4) rows with
        | Some r -> r.sh_speedup
        | None -> 0.
      in
      let cores = Dbp_par.Pool.available_cores () in
      let gate =
        if cores >= 4 then begin
          if speedup4 < shard_speedup_required then
            failwith
              (Printf.sprintf
                 "serve shard bench: %.2fx at 4 shards on %d cores (gate \
                  %.1fx)"
                 speedup4 cores shard_speedup_required);
          { sg_enforced = true; sg_reason = "enforced"; sg_speedup4 = speedup4 }
        end
        else begin
          Printf.printf
            "  WARNING: speedup gate skipped — %d core(s) available, 4 \
             needed\n\
             %!"
            cores;
          {
            sg_enforced = false;
            sg_reason = "cores_available";
            sg_speedup4 = speedup4;
          }
        end
      in
      (rows, gate))

(* ---- allocation microbench (PR 9) --------------------------------------

   Minor words per arrival through the generic parse (field list +
   per-key buffers) vs the in-place parse_into scratch path the router
   thread runs.  The committed ceiling holds the zero-alloc path to its
   budget: a regression that re-boxes the hot path fails the bench, not
   just a profile. *)

type alloc_result = {
  al_lines : int;
  al_parse_wpl : float;
  al_parse_into_wpl : float;
}

let parse_into_words_ceiling = 48.

let serve_alloc ~lines:n =
  let inst = engine_instance n in
  let items = Dbp_core.Instance.arrivals_in_order inst in
  let arr =
    Array.of_list
      (List.mapi
         (fun i item ->
           Sv.Arrival.render ~tenant:(Printf.sprintf "t%d" (i mod 17)) item)
         items)
  in
  let m = Array.length arr in
  let per_line f =
    f ();
    (* warm: caches, minor heap shape *)
    let before = Gc.minor_words () in
    f ();
    (Gc.minor_words () -. before) /. float_of_int m
  in
  let al_parse_wpl =
    per_line (fun () ->
        Array.iter
          (fun line ->
            match Sv.Arrival.parse line with
            | Ok _ -> ()
            | Error e -> failwith ("serve alloc bench: " ^ e))
          arr)
  in
  let sc = Sv.Arrival.scratch () in
  let al_parse_into_wpl =
    per_line (fun () ->
        Array.iter
          (fun line ->
            match Sv.Arrival.parse_into sc line with
            | Ok () -> ()
            | Error e -> failwith ("serve alloc bench: " ^ e))
          arr)
  in
  if al_parse_into_wpl > parse_into_words_ceiling then
    failwith
      (Printf.sprintf
         "serve alloc bench: parse_into allocates %.1f minor words/line \
          (ceiling %.0f)"
         al_parse_into_wpl parse_into_words_ceiling);
  Printf.printf
    "  alloc %7d lines  parse %.1f w/line  parse_into %.1f w/line \
     (ceiling %.0f, %.1fx less)\n\
     %!"
    m al_parse_wpl al_parse_into_wpl parse_into_words_ceiling
    (al_parse_wpl /. al_parse_into_wpl);
  { al_lines = m; al_parse_wpl; al_parse_into_wpl }

let serve_json ~tp_rows ~soak ~restart ~ladder ~shard_rows ~shard_gate ~alloc =
  let tp_json r =
    Printf.sprintf
      "    {\"algorithm\": \"%s\", \"arrivals\": %d, \"seconds\": %.6f, \
       \"lines_per_s\": %.0f}"
      r.sv_algo r.sv_arrivals r.sv_s r.sv_lps
  in
  String.concat ""
    [
      "{\n";
      "  \"benchmark\": \"serve streaming sweep (session feed path)\",\n";
      "  \"command\": \"dune exec bench/main.exe -- serve\",\n";
      "  \"workload\": \"Generator.default, seed 42, horizon = arrivals/2, \
       rendered through Arrival.render\",\n";
      Printf.sprintf
        "  \"note\": \"throughput is parse-to-decision through \
         Session.feed; soak asserts major-heap growth over the post-build \
         baseline stays under %d words across the stream (bounded-memory \
         contract); restart times the full journal-replay resume path and \
         asserts digest equality with the live run; ladder drives a \
         triangle queue-depth wave through watermarks 100/200/300 and \
         asserts every rung engages; shards times the sharded daemon at \
         1/2/4 shards with every journal segment byte-compared against a \
         router-filtered unsharded run before the number counts (speedup \
         gate %.1fx at 4 shards, enforced only with >= 4 cores); alloc \
         holds the zero-alloc arrival path to %.0f minor words/line\",\n"
        soak_heap_ceiling_words shard_speedup_required
        parse_into_words_ceiling;
      "  \"throughput\": [\n";
      String.concat ",\n" (List.map tp_json tp_rows);
      "\n  ],\n";
      Printf.sprintf
        "  \"soak\": {\"arrivals\": %d, \"seconds\": %.4f, \
         \"heap_ceiling_words\": %d, \"max_heap_delta_words\": %d, \
         \"baseline_heap_words\": %d, \"max_open_jobs\": %d, \
         \"snapshots\": %d},\n"
        soak.sk_arrivals soak.sk_s soak_heap_ceiling_words
        soak.sk_max_delta_words soak.sk_baseline_words soak.sk_max_open_jobs
        soak.sk_snapshots;
      Printf.sprintf
        "  \"restart\": {\"arrivals\": %d, \"live_s\": %.6f, \"replay_s\": \
         %.6f, \"replay_ratio\": %.3f, \"digest_match\": true},\n"
        restart.rs_arrivals restart.rs_live_s restart.rs_replay_s
        (restart.rs_replay_s /. restart.rs_live_s);
      Printf.sprintf
        "  \"ladder\": {\"arrivals\": %d, \"watermarks\": {\"shed\": 100, \
         \"coarsen\": 200, \"reject\": 300}, \"shed_transitions\": %d, \
         \"coarsen_transitions\": %d, \"reject_transitions\": %d, \
         \"rejected\": %d},\n"
        ladder.ld_arrivals ladder.ld_shed ladder.ld_coarsen ladder.ld_reject
        ladder.ld_rejected;
      "  \"shards\": [\n";
      String.concat ",\n"
        (List.map
           (fun r ->
             Printf.sprintf
               "    {\"shards\": %d, \"seconds\": %.6f, \"lines_per_s\": \
                %.0f, \"speedup\": %.3f, \"segments_verified\": true}"
               r.sh_shards r.sh_s r.sh_lps r.sh_speedup)
           shard_rows);
      "\n  ],\n";
      Printf.sprintf
        "  \"shard_gate\": {\"required_speedup_at_4\": %.1f, \"enforced\": \
         %b, \"reason\": \"%s\", \"speedup_at_4\": %.3f, \
         \"cores_available\": %d},\n"
        shard_speedup_required shard_gate.sg_enforced shard_gate.sg_reason
        shard_gate.sg_speedup4
        (Dbp_par.Pool.available_cores ());
      Printf.sprintf
        "  \"alloc\": {\"lines\": %d, \"parse_minor_words_per_line\": %.1f, \
         \"parse_into_minor_words_per_line\": %.1f, \
         \"parse_into_ceiling_words\": %.0f}\n"
        alloc.al_lines alloc.al_parse_wpl alloc.al_parse_into_wpl
        parse_into_words_ceiling;
      "}\n";
    ]

let run_serve ~quick () =
  Printf.printf "=== Serve sweep (%s) ===\n%!"
    (if quick then "quick" else "full");
  tune_gc_for_engine ();
  let tp_sizes = if quick then [ 10_000 ] else [ 100_000; 1_000_000 ] in
  let tp_rows =
    serve_throughput ~sizes:tp_sizes ~algos:[ "first-fit"; "best-fit" ]
  in
  let soak = serve_soak ~arrivals:(if quick then 100_000 else 1_000_000) in
  let restart = serve_restart ~arrivals:(if quick then 10_000 else 100_000) in
  let ladder = serve_ladder ~arrivals:(if quick then 5_000 else 20_000) in
  let shard_rows, shard_gate =
    serve_shard_sweep ~arrivals:(if quick then 20_000 else 100_000)
  in
  let alloc = serve_alloc ~lines:(if quick then 20_000 else 100_000) in
  let out = if quick then "BENCH_serve_quick.json" else "BENCH_serve.json" in
  let oc = open_out out in
  output_string oc
    (serve_json ~tp_rows ~soak ~restart ~ladder ~shard_rows ~shard_gate ~alloc);
  close_out oc;
  Printf.printf "wrote %s\n" out

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let quick =
    Array.exists (fun a -> a = "--quick") Sys.argv
  in
  let domains_limit =
    let r = ref None in
    Array.iteri
      (fun i a ->
        if a = "--domains" && i + 1 < Array.length Sys.argv then
          r := int_of_string_opt Sys.argv.(i + 1))
      Sys.argv;
    match !r with
    | Some 0 -> Some (Dbp_par.Pool.default_domains ())
    | limit -> limit
  in
  (match mode with
  | "tables" -> run_tables ~domains:domains_limit ()
  | "micro" -> run_micro ()
  | "engine" -> run_engine ~quick ()
  | "faults" -> run_faults ~quick ()
  | "par" -> run_par ~quick ~domains_limit ()
  | "obs" -> run_obs ~quick ()
  | "serve" -> run_serve ~quick ()
  | _ ->
      run_tables ~domains:domains_limit ();
      run_micro ());
  print_newline ()
