(* The dbp analyze offline reporter: determinism, malformed-line
   accounting, episode replay and the hand-computed efficiency table. *)

open Helpers
module An = Dbp_serve.Analyze

(* Three jobs, one bin reused: episode 1 is [0, 10] (jobs 1 and 2,
   closing at job 1's departure), episode 2 is [20, 25] (job 3).
   usage = 15; span_lb = |[0,10] u [2,6] u [20,25]| = 15; ratio 1. *)
let arrivals =
  [
    "{\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":10}";
    "{\"id\":2,\"size\":0.5,\"arrival\":2,\"departure\":6}";
    "{\"id\":3,\"size\":0.5,\"arrival\":20,\"departure\":25}";
  ]

let journal =
  [
    "{\"seq\":0,\"job\":1,\"bin\":0,\"opened\":true,\"t\":0}";
    "{\"seq\":1,\"job\":2,\"bin\":0,\"opened\":false,\"t\":2}";
    "{\"seq\":2,\"job\":3,\"bin\":0,\"opened\":true,\"t\":20}";
    "{\"seq\":3,\"job\":4,\"rejected\":\"overload\",\"t\":21}";
    "this is not a decision line";
  ]

let spans =
  [
    "{\"seq\":0,\"shard\":0,\"depth\":1,\"t\":0,\"parse\":0.001,\"engine\":0.002}";
    "{\"seq\":4,\"shard\":1,\"depth\":3,\"t\":10,\"parse\":0.003,\"mailbox\":0.004}";
    "nope";
  ]

let full_input =
  {
    An.spans;
    journals = [ ("ff", journal) ];
    arrivals = Some arrivals;
    time_buckets = 4;
  }

let lines_of report = String.split_on_char '\n' report

let has_line report line =
  if not (List.mem line (lines_of report)) then
    Alcotest.failf "report missing line %S:\n%s" line report

let has_prefix report prefix =
  if
    not
      (List.exists
         (fun l -> String.length l >= String.length prefix
                   && String.sub l 0 (String.length prefix) = prefix)
         (lines_of report))
  then Alcotest.failf "report has no line starting %S:\n%s" prefix report

let test_deterministic () =
  check_string "same inputs, same bytes" (An.report full_input)
    (An.report full_input)

let test_counts () =
  let r = An.report full_input in
  has_line r "spans: 2 parsed, 1 malformed";
  has_line r "arrivals: 3 parsed, 0 malformed";
  has_line r "decisions: 3 placed, 1 rejected, 1 malformed";
  has_line r "bins opened: 2";
  (* phase table: parse seen twice, mailbox once, route never *)
  has_prefix r (Printf.sprintf "%-10s %8d" "parse" 2);
  has_prefix r (Printf.sprintf "%-10s %8d" "mailbox" 1);
  has_prefix r (Printf.sprintf "%-10s %8d" "route" 0)

let test_efficiency_row () =
  let r = An.report full_input in
  (* usage = (10 - 0) + (25 - 20) = 15; span_lb = 15; demand =
     0.5*10 + 0.5*4 + 0.5*5 = 9.5; ratio = 1. *)
  has_line r
    (Printf.sprintf "%-14s %7d %8d %6d %12s %12s %12s %8.3f" "ff" 3 1 2 "15"
       "15" "9.5" 1.0)

let test_no_arrivals () =
  let r =
    An.report { full_input with An.arrivals = None }
  in
  has_prefix r "unavailable: pass the arrivals input";
  (* journal accounting still works without departures *)
  has_line r "decisions: 3 placed, 1 rejected, 1 malformed"

let test_unmatched_jobs () =
  (* Journal references a job the arrivals never delivered. *)
  let r =
    An.report
      {
        full_input with
        An.journals =
          [
            ( "ff",
              [ "{\"seq\":0,\"job\":99,\"bin\":0,\"opened\":true,\"t\":1}" ]
            );
          ];
      }
  in
  has_line r
    "decisions: 1 placed, 0 rejected, 0 malformed (1 placed jobs missing \
     from arrivals)"

let test_shard_field_tolerated () =
  (* The sharded merged stream splices a "shard" field into each line;
     Decision.parse ignores unknown fields, so the replay must too. *)
  let r =
    An.report
      {
        full_input with
        An.journals =
          [
            ( "merged",
              [
                "{\"shard\":1,\"seq\":0,\"job\":1,\"bin\":0,\"opened\":true,\"t\":0}";
              ] );
          ];
      }
  in
  has_line r "decisions: 1 placed, 0 rejected, 0 malformed"

let test_empty_input () =
  let r =
    An.report
      { An.spans = []; journals = []; arrivals = None; time_buckets = 4 }
  in
  has_line r "spans: 0 parsed, 0 malformed";
  has_prefix r "unavailable: pass the arrivals input"

let test_shard_table () =
  let r = An.report full_input in
  (* shard 1's one span: depth 3, mailbox wait 0.004 *)
  has_prefix r (Printf.sprintf "%-6d %8d %10d %11.2f" 1 1 3 3.0)

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "line accounting" `Quick test_counts;
    Alcotest.test_case "hand-computed efficiency row" `Quick
      test_efficiency_row;
    Alcotest.test_case "no arrivals input" `Quick test_no_arrivals;
    Alcotest.test_case "unmatched placed jobs" `Quick test_unmatched_jobs;
    Alcotest.test_case "merged-stream shard field" `Quick
      test_shard_field_tolerated;
    Alcotest.test_case "empty input" `Quick test_empty_input;
    Alcotest.test_case "shard table" `Quick test_shard_table;
  ]
