(* Per-arrival latency spans: sampling determinism, the disabled-path
   contract, duration accounting, the JSONL sink line, the Prometheus
   series, and the session stamping integration. *)

open Helpers
module Sp = Dbp_obs.Span
module Hdr = Dbp_obs.Hdr
module Clock = Dbp_obs.Clock
module Metrics = Dbp_obs.Metrics

let fake_recorder ?metrics ?sink ?(start = 0.) ?(sample = 1) ?(shards = 1) ()
    =
  let fk = Clock.fake ~start () in
  let t =
    Sp.create ~clock:(Clock.of_fake fk) ?metrics ?sink ~sample ~shards ()
  in
  (fk, t)

(* ---- disabled path ---- *)

let test_disabled () =
  let _, t = fake_recorder ~sample:0 () in
  check_bool "not enabled" false (Sp.enabled t);
  for _ = 1 to 5 do
    let tk = Sp.issue t in
    check_bool "null ticket" false (Sp.active tk);
    (* Every helper is a no-op on null — must not raise or allocate
       stamps. *)
    Sp.stamp t tk Sp.Parse;
    Sp.set_depth tk 3;
    Sp.set_shard tk 1;
    Sp.commit t tk
  done;
  (* Disabled really means zero work: not even the arrival counter
     moves (issue is a single integer test). *)
  check_int "seen untouched" 0 (Sp.seen t);
  check_int "nothing committed" 0 (Sp.committed t)

(* ---- sampling determinism ---- *)

let test_sampling_stride () =
  let _, t = fake_recorder ~sample:3 () in
  let armed = ref [] in
  for _ = 0 to 9 do
    let tk = Sp.issue t in
    if Sp.active tk then armed := Sp.ticket_seq tk :: !armed
  done;
  check_int "seen" 10 (Sp.seen t);
  check_bool "every 3rd arrival, seq-keyed" true
    (List.rev !armed = [ 0; 3; 6; 9 ])

let test_sampling_is_replayable () =
  (* Two recorders over the same ingest order arm the same arrivals —
     no Random anywhere (the R12 designation test pins this at the
     taint level; this pins the behaviour). *)
  let run () =
    let _, t = fake_recorder ~sample:4 () in
    List.init 20 (fun _ -> Sp.active (Sp.issue t))
  in
  check_bool "deterministic choice" true (run () = run ())

(* ---- duration accounting + sink line ---- *)

let test_pipeline_golden () =
  let lines = ref [] in
  let fk, t =
    fake_recorder
      ~sink:(fun l -> lines := l :: !lines)
      ~start:100. ~sample:1 ~shards:2 ()
  in
  let clk = Sp.clock t in
  let tk = Sp.issue t in
  check_bool "armed" true (Sp.active tk);
  (* Each phase takes twice the previous one; durations are deltas
     from the preceding stamp, so they come out as the advances. *)
  Clock.advance fk 0.001;
  Sp.mark clk tk Sp.Parse;
  Clock.advance fk 0.002;
  Sp.mark clk tk Sp.Route;
  Sp.set_depth tk 5;
  Sp.set_shard tk 1;
  Clock.advance fk 0.004;
  Sp.mark clk tk Sp.Mailbox;
  Clock.advance fk 0.008;
  Sp.mark clk tk Sp.Admission;
  Clock.advance fk 0.016;
  Sp.mark clk tk Sp.Engine;
  Clock.advance fk 0.032;
  Sp.mark clk tk Sp.Journal;
  Clock.advance fk 0.064;
  Sp.mark clk tk Sp.Merge;
  Sp.commit t tk;
  check_int "committed" 1 (Sp.committed t);
  check_int "one sink line" 1 (List.length !lines);
  (* [t] is relative to recorder creation, so logs from a fresh daemon
     start near 0 whatever the wall clock says. *)
  check_string "sink line"
    "{\"seq\":0,\"shard\":1,\"depth\":5,\"t\":0,\"parse\":0.001,\"route\":0.002,\"mailbox\":0.004,\"admission\":0.008,\"engine\":0.016,\"journal\":0.032,\"merge\":0.064}"
    (List.hd !lines);
  (* The histogram matrix files the durations under shard 1. *)
  check_int "shard 1 engine count" 1
    (Hdr.count (Sp.snapshot t ~shard:1 Sp.Engine));
  check_int "shard 0 engine count" 0
    (Hdr.count (Sp.snapshot t ~shard:0 Sp.Engine));
  check_float_eps 1e-12 "engine duration" 0.016
    (Hdr.max_value (Sp.snapshot t ~shard:1 Sp.Engine));
  check_float_eps 1e-12 "merge duration" 0.064
    (Hdr.max_value (Sp.merged t Sp.Merge));
  check_int "ring holds the ticket" 1 (List.length (Sp.rows t))

let test_partial_stamps () =
  (* Unsharded pipeline: no Route/Mailbox/Merge stamps.  Durations
     chain across the gaps (engine = its stamp minus the parse stamp
     when admission wasn't stamped). *)
  let lines = ref [] in
  let fk, t =
    fake_recorder ~sink:(fun l -> lines := l :: !lines) ~sample:1 ()
  in
  let clk = Sp.clock t in
  let tk = Sp.issue t in
  Clock.advance fk 0.5;
  Sp.mark clk tk Sp.Parse;
  Clock.advance fk 0.25;
  Sp.mark clk tk Sp.Engine;
  Sp.commit t tk;
  check_string "only stamped phases in the line"
    "{\"seq\":0,\"shard\":0,\"depth\":0,\"t\":0,\"parse\":0.5,\"engine\":0.25}"
    (List.hd !lines);
  check_int "route not recorded" 0 (Hdr.count (Sp.merged t Sp.Route));
  check_float_eps 1e-12 "engine = gap from parse" 0.25
    (Hdr.max_value (Sp.merged t Sp.Engine))

let test_ring_wraps () =
  let fk = Clock.fake () in
  let t =
    Sp.create ~clock:(Clock.of_fake fk) ~ring:3 ~sample:1 ~shards:1 ()
  in
  for _ = 1 to 5 do
    let tk = Sp.issue t in
    Clock.advance fk 1.;
    Sp.stamp t tk Sp.Parse;
    Sp.commit t tk
  done;
  check_int "committed" 5 (Sp.committed t);
  let rows = Sp.rows t in
  check_int "ring keeps last 3" 3 (List.length rows);
  check_bool "oldest first" true
    (List.map (fun r -> Sp.ticket_seq r) rows = [ 2; 3; 4 ])

(* ---- Prometheus exposition (ISSUE satellite: golden series) ---- *)

let test_prometheus_golden () =
  let reg = Metrics.create () in
  let fk, t = fake_recorder ~metrics:reg ~sample:1 ~shards:1 () in
  let clk = Sp.clock t in
  (* Two engine samples an octave apart: the p50 estimate must come
     from the lower bucket's upper bound, the max from the exact top
     sample. *)
  List.iter
    (fun d ->
      let tk = Sp.issue t in
      Clock.advance fk d;
      Sp.mark clk tk Sp.Engine;
      Sp.commit t tk)
    [ 0.008; 0.032 ];
  Sp.export t;
  let exposition = Metrics.to_prometheus reg in
  let has line = check_bool line true
      (List.mem line (String.split_on_char '\n' exposition))
  in
  (* Histogram: 0.008 lands in the le=0.01 bucket, both under 0.1.
     Label order is the registry's (sorted: le first). *)
  has "dbp_serve_phase_seconds_bucket{le=\"0.01\",phase=\"engine\",shard=\"0\"} 1";
  has "dbp_serve_phase_seconds_bucket{le=\"0.1\",phase=\"engine\",shard=\"0\"} 2";
  has "dbp_serve_phase_seconds_bucket{le=\"0.001\",phase=\"engine\",shard=\"0\"} 0";
  has "dbp_serve_phase_seconds_count{phase=\"engine\",shard=\"0\"} 2";
  has "dbp_serve_phase_seconds_sum{phase=\"engine\",shard=\"0\"} 0.04";
  has "dbp_serve_phase_quantile_seconds{phase=\"engine\",quantile=\"max\"} 0.032";
  has
    (Printf.sprintf
       "dbp_serve_phase_quantile_seconds{phase=\"engine\",quantile=\"p50\"} %.12g"
       (Hdr.bucket_upper (Hdr.index_of 0.008)));
  (* Phases with no samples still expose their series (count 0). *)
  has "dbp_serve_phase_seconds_count{phase=\"merge\",shard=\"0\"} 0"

(* ---- session integration ---- *)

let test_session_stamps () =
  let engine =
    match Dbp_serve.Portfolio.by_name "first-fit" with
    | Some e -> e
    | None -> Alcotest.fail "first-fit missing"
  in
  let cfg = Dbp_serve.Session.config ~name:"first-fit" engine in
  let fk, t = fake_recorder ~sample:1 () in
  let session =
    Dbp_serve.Session.create ~span_clock:(Sp.clock t) cfg
  in
  let tk = Sp.issue t in
  Clock.advance fk 0.25;
  (match
     Dbp_serve.Session.feed session ~span:tk ~depth:0
       "{\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":2}"
   with
  | Dbp_serve.Session.Emit _ -> ()
  | _ -> Alcotest.fail "expected Emit");
  Sp.commit t tk;
  (* feed stamps Parse, Admission and Engine; never Route/Mailbox. *)
  check_int "parse stamped" 1 (Hdr.count (Sp.merged t Sp.Parse));
  check_int "admission stamped" 1 (Hdr.count (Sp.merged t Sp.Admission));
  check_int "engine stamped" 1 (Hdr.count (Sp.merged t Sp.Engine));
  check_int "route untouched" 0 (Hdr.count (Sp.merged t Sp.Route));
  check_int "mailbox untouched" 0 (Hdr.count (Sp.merged t Sp.Mailbox))

let test_session_without_clock_ignores_spans () =
  (* No span_clock injected: feeding with an armed ticket is harmless
     and stamps nothing — outcomes are identical. *)
  let engine =
    match Dbp_serve.Portfolio.by_name "first-fit" with
    | Some e -> e
    | None -> Alcotest.fail "first-fit missing"
  in
  let cfg = Dbp_serve.Session.config ~name:"first-fit" engine in
  let _, t = fake_recorder ~sample:1 () in
  let session = Dbp_serve.Session.create cfg in
  let tk = Sp.issue t in
  (match
     Dbp_serve.Session.feed session ~span:tk ~depth:0
       "{\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":2}"
   with
  | Dbp_serve.Session.Emit _ -> ()
  | _ -> Alcotest.fail "expected Emit");
  Sp.commit t tk;
  check_int "nothing recorded" 0 (Hdr.count (Sp.merged t Sp.Parse))

let test_create_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "sample < 0" true
    (raises (fun () -> Sp.create ~sample:(-1) ~shards:1 ()));
  check_bool "shards < 1" true
    (raises (fun () -> Sp.create ~sample:1 ~shards:0 ()));
  check_bool "ring < 1" true
    (raises (fun () -> Sp.create ~ring:0 ~sample:1 ~shards:1 ()))

let suite =
  [
    Alcotest.test_case "disabled path is inert" `Quick test_disabled;
    Alcotest.test_case "sampling stride" `Quick test_sampling_stride;
    Alcotest.test_case "sampling is replayable" `Quick
      test_sampling_is_replayable;
    Alcotest.test_case "full pipeline golden" `Quick test_pipeline_golden;
    Alcotest.test_case "partial stamps chain" `Quick test_partial_stamps;
    Alcotest.test_case "ring wraps" `Quick test_ring_wraps;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_golden;
    Alcotest.test_case "session stamps parse/admission/engine" `Quick
      test_session_stamps;
    Alcotest.test_case "session without span clock" `Quick
      test_session_without_clock_ignores_spans;
    Alcotest.test_case "create validation" `Quick test_create_validation;
  ]
