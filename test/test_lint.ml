(* The dbp-lint linter: each rule on its seeded fixture (exact ids and
   positions), scope gating, suppression lifecycle, rendering and a meta
   test that the actual repo tree is lint-clean. *)

open Dbp_lint

let fixture name = Filename.concat "fixtures/lint" name

(* (rule, line, col) triples, in reported order. *)
let hits = Alcotest.(list (triple string int int))

let hits_of findings =
  List.map (fun f -> (Finding.rule f, Finding.line f, Finding.col f)) findings

let check_file ?scope name expected =
  Alcotest.check hits name expected
    (hits_of (Driver.lint_file ?scope (fixture name)))

let test_r1 () =
  check_file "r1_physical_eq.ml" [ ("R1", 2, 17); ("R1", 3, 19) ]

let test_r2 () =
  check_file "r2_float_eq.ml"
    [
      ("R2", 2, 18); ("R2", 3, 17); ("R2", 4, 26); ("R2", 5, 18);
      ("R6", 5, 20);
    ]

let test_r2_shadowed_compare () =
  (* the module defines its own [compare]: bare uses pass, the
     Stdlib-qualified polymorphic one is still flagged *)
  check_file "r2_shadowed_compare.ml" [ ("R2", 5, 25) ]

let test_r3 () =
  check_file ~scope:Rules.Lib "r3_failwith.ml"
    [ ("R3", 2, 17); ("R3", 3, 20) ]

let test_r4 () =
  check_file ~scope:Rules.Lib "r4_print.ml"
    [ ("R4", 2, 15); ("R4", 3, 15); ("R4", 4, 14) ]

let test_scope_gating () =
  (* R3/R4 only apply under lib/: the same fixtures are clean at the
     fixture path's own scope and at Bench scope *)
  check_file "r3_failwith.ml" [];
  check_file ~scope:Rules.Bench "r4_print.ml" []

let test_r5 () =
  let findings =
    Driver.lint_tree ~scope:Rules.Lib [ fixture "r5_missing_mli" ]
  in
  Alcotest.check hits "orphan.ml flagged, paired.ml not"
    [ ("R5", 1, 0) ] (hits_of findings);
  Alcotest.(check (list string))
    "finding names the orphan"
    [ fixture "r5_missing_mli/orphan.ml" ]
    (List.map Finding.file findings)

let test_r6 () =
  check_file "r6_record.ml" [ ("R6", 2, 9); ("R6", 3, 9); ("R6", 4, 16) ]

let test_r6_defining_module_exempt () =
  (* the same construction inside the defining module is fine, wherever
     the repo is checked out relative to the linter's cwd *)
  let source = "let mk l r = { left = l; right = r }\n" in
  Alcotest.check hits "interval.ml may build its own record" []
    (hits_of
       (Driver.lint_source ~path:"../lib/core/interval.ml" source));
  Alcotest.check hits "other modules may not" [ ("R6", 1, 13) ]
    (hits_of (Driver.lint_source ~path:"lib/core/step_function.ml" source))

let test_r7 () =
  check_file "r7_concurrency.ml"
    [
      ("R7", 1, 11); ("R7", 2, 8); ("R7", 3, 8); ("R7", 4, 8); ("R7", 5, 11);
      ("R7", 6, 8);
    ]

let test_r7_par_exempt () =
  (* the pool's own sources are the one place allowed to spawn and
     synchronise; the exemption is by path, wherever the repo sits
     relative to the linter's cwd *)
  let source = "let lock = Mutex.create ()\nlet go f = Domain.spawn f\n" in
  Alcotest.check hits "lib/par may use the primitives" []
    (hits_of (Driver.lint_source ~path:"../lib/par/pool.ml" source));
  Alcotest.check hits "other lib modules may not"
    [ ("R7", 1, 11); ("R7", 2, 11) ]
    (hits_of (Driver.lint_source ~path:"lib/sim/sweep.ml" source))

let test_r8 () =
  check_file "r8_wallclock.ml"
    [ ("R8", 1, 11); ("R8", 2, 11); ("R8", 3, 11); ("R8", 4, 11) ]

let test_r8_clock_exempt () =
  (* clock injection bottoms out in Obs.Clock; the bench harness is also
     free to time directly.  Exemptions are by path/scope, wherever the
     repo sits relative to the linter's cwd *)
  let source = "let now () = Unix.gettimeofday ()\n" in
  Alcotest.check hits "lib/obs/clock.ml may read the clock" []
    (hits_of (Driver.lint_source ~path:"../lib/obs/clock.ml" source));
  Alcotest.check hits "bench may time however it likes" []
    (hits_of (Driver.lint_source ~path:"bench/main.ml" source));
  Alcotest.check hits "other lib modules may not" [ ("R8", 1, 13) ]
    (hits_of (Driver.lint_source ~path:"lib/sim/runner.ml" source))

let test_r9 () =
  (* expressions, the Unix.file_descr / Unix.sockaddr types, and the
     Sys signal installers all fire; the final line is a clock read,
     which is R8's finding, not R9's *)
  check_file "r9_io.ml"
    [
      ("R9", 1, 9); ("R9", 2, 11); ("R9", 3, 8); ("R9", 3, 19); ("R9", 4, 11);
      ("R9", 5, 14); ("R9", 5, 33); ("R9", 6, 11); ("R8", 7, 15);
    ]

let test_r9_serve_exempt () =
  (* the daemon shell is the designated process-facing module; the
     exemption is by path, wherever the repo sits relative to the
     linter's cwd *)
  let source =
    "let s () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0\n"
    ^ "let h () = Sys.set_signal 10 Sys.Signal_ignore\n"
  in
  Alcotest.check hits "lib/serve may do process IO" []
    (hits_of (Driver.lint_source ~path:"../lib/serve/daemon.ml" source));
  Alcotest.check hits "other lib modules may not"
    [ ("R9", 1, 11); ("R9", 2, 11) ]
    (hits_of (Driver.lint_source ~path:"lib/obs/metrics.ml" source));
  Alcotest.check hits "bin may not either"
    [ ("R9", 1, 11); ("R9", 2, 11) ]
    (hits_of (Driver.lint_source ~path:"bin/dbp.ml" source))

let test_suppressed () =
  check_file ~scope:Rules.Lib "suppressed.ml" []

let test_unused_suppression () =
  check_file "unused_suppression.ml" [ ("R0", 1, 0); ("R0", 4, 0) ]

let test_malformed_marker () =
  check_file "malformed_marker.ml" [ ("R0", 1, 0); ("R0", 4, 0) ]

let test_same_line_suppression_priority () =
  (* two findings on adjacent lines, each with its own end-of-line allow:
     the first allow must not swallow the second line's finding *)
  let source =
    "let a x y = x == y (* dbp-lint: allow R1 one *)\n"
    ^ "let b x y = x == y (* dbp-lint: allow R1 two *)\n"
  in
  Alcotest.check hits "both consumed, none unused" []
    (hits_of (Driver.lint_source ~path:"x.ml" source))

let test_marker_in_string_not_a_suppression () =
  (* the marker inside a string literal is neither a suppression nor a
     malformed-marker finding *)
  let source = "let s = \"(* dbp-lint: allow R1 nope *)\"\nlet t x y = x == y\n" in
  Alcotest.check hits "string literal ignored, violation kept"
    [ ("R1", 2, 14) ]
    (hits_of (Driver.lint_source ~path:"x.ml" source))

let test_parse_error () =
  match Driver.lint_source ~path:"broken.ml" "let = (" with
  | [ f ] -> Alcotest.(check string) "parse failures are findings" "P0" (Finding.rule f)
  | fs -> Alcotest.failf "expected one P0 finding, got %d" (List.length fs)

let test_registry () =
  let ids = List.map (fun r -> r.Rules.id) Rules.all in
  Alcotest.(check (list string))
    "registry covers R0, the nine syntactic rules and the three \
     semantic rules"
    [
      "R0"; "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8"; "R9"; "R10";
      "R11"; "R12";
    ]
    ids

let test_json () =
  let findings = Driver.lint_file (fixture "r1_physical_eq.ml") in
  let json = Driver.to_json findings in
  Alcotest.(check bool) "has count 2" true
    (Str_exists.contains_substring json "\"count\":2");
  Alcotest.(check bool) "findings carry rule ids" true
    (Str_exists.contains_substring json "\"rule\":\"R1\"");
  Alcotest.(check string) "empty report is stable" "{\"findings\":[],\"count\":0}\n"
    (Driver.to_json [])

let test_text_rendering () =
  let out = Driver.to_text (Driver.lint_file (fixture "r1_physical_eq.ml")) in
  Alcotest.(check bool) "compiler-style position" true
    (Str_exists.contains_substring out "r1_physical_eq.ml:2:17: [R1]");
  Alcotest.(check bool) "hint line present" true
    (Str_exists.contains_substring out "hint: use structural (=)");
  Alcotest.(check string) "clean report" "dbp-lint: clean\n" (Driver.to_text [])

(* The meta test: the shipped tree has zero findings.  Tests run from
   test/ inside the build tree, so walk up to the project root first. *)
let test_repo_tree_clean () =
  let rec find_root dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then Alcotest.fail "no dune-project above cwd"
      else find_root parent
  in
  let cwd = Sys.getcwd () in
  let root = find_root cwd in
  Fun.protect
    ~finally:(fun () -> Sys.chdir cwd)
    (fun () ->
      Sys.chdir root;
      let roots =
        List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "test" ]
      in
      Alcotest.(check (list string))
        "repo tree is lint-clean" []
        (List.map Finding.to_string (Driver.lint_tree roots)))

let suite =
  [
    Alcotest.test_case "R1 physical equality" `Quick test_r1;
    Alcotest.test_case "R2 float/record/compare" `Quick test_r2;
    Alcotest.test_case "R2 shadowed compare" `Quick test_r2_shadowed_compare;
    Alcotest.test_case "R3 unstructured failure" `Quick test_r3;
    Alcotest.test_case "R4 print in lib" `Quick test_r4;
    Alcotest.test_case "R3/R4 scope gating" `Quick test_scope_gating;
    Alcotest.test_case "R5 missing interface" `Quick test_r5;
    Alcotest.test_case "R6 raw record construction" `Quick test_r6;
    Alcotest.test_case "R6 defining-module exemption" `Quick
      test_r6_defining_module_exempt;
    Alcotest.test_case "R7 concurrency confinement" `Quick test_r7;
    Alcotest.test_case "R7 lib/par exemption" `Quick test_r7_par_exempt;
    Alcotest.test_case "R8 wall-clock confinement" `Quick test_r8;
    Alcotest.test_case "R8 clock/bench exemption" `Quick test_r8_clock_exempt;
    Alcotest.test_case "R9 unix-io confinement" `Quick test_r9;
    Alcotest.test_case "R9 lib/serve exemption" `Quick test_r9_serve_exempt;
    Alcotest.test_case "suppression both positions" `Quick test_suppressed;
    Alcotest.test_case "unused suppressions error" `Quick
      test_unused_suppression;
    Alcotest.test_case "malformed markers error" `Quick test_malformed_marker;
    Alcotest.test_case "same-line suppression priority" `Quick
      test_same_line_suppression_priority;
    Alcotest.test_case "marker in string ignored" `Quick
      test_marker_in_string_not_a_suppression;
    Alcotest.test_case "parse errors are findings" `Quick test_parse_error;
    Alcotest.test_case "rule registry" `Quick test_registry;
    Alcotest.test_case "JSON findings" `Quick test_json;
    Alcotest.test_case "text rendering" `Quick test_text_rendering;
    Alcotest.test_case "meta: repo tree is clean" `Quick test_repo_tree_clean;
  ]
