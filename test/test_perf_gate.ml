(* The perf-regression gate over BENCH_engine.json: parser semantics on
   the bench's own emission format (including the committed baseline
   file's real shape) and the check's threshold/min_jobs/matching rules.
   No timing happens here — the gate is library code precisely so its
   contract can be pinned without running a sweep. *)

open Helpers
module G = Dbp_sim.Perf_gate

(* A snippet in the bench's exact emission shape: two sizes, two
   algorithms, one reference-skipped row. *)
let bench_snippet =
  "{\n\
  \  \"benchmark\": \"engine\",\n\
  \  \"results\": [\n\
  \    {\"jobs\": 10000, \"algorithm\": \"first-fit\", \"indexed_s\": \
   0.007000, \"reference_s\": 0.102081, \"speedup\": 14.58, \"usage\": \
   123.456789, \"reference_skipped\": false},\n\
  \    {\"jobs\": 10000, \"algorithm\": \"best-fit\", \"indexed_s\": \
   0.009000, \"reference_s\": 0.110000, \"speedup\": 12.22, \"usage\": \
   120.000000, \"reference_skipped\": false},\n\
  \    {\"jobs\": 1000000, \"algorithm\": \"first-fit\", \"indexed_s\": \
   8.123456, \"reference_s\": null, \"speedup\": null, \"usage\": \
   9999.000000, \"reference_skipped\": true}\n\
  \  ]\n\
   }\n"

let test_parse_rows () =
  match G.parse_rows bench_snippet with
  | [ a; b; c ] ->
      check_string "row 1 algorithm" "first-fit" a.G.algorithm;
      check_int "row 1 jobs" 10_000 a.G.jobs;
      check_float "row 1 indexed_s" 0.007 a.G.indexed_s;
      check_string "row 2 algorithm" "best-fit" b.G.algorithm;
      check_string "row 3 algorithm" "first-fit" c.G.algorithm;
      check_int "row 3 jobs" 1_000_000 c.G.jobs;
      check_float "reference-skipped row still parses" 8.123456 c.G.indexed_s
  | rows -> Alcotest.failf "expected 3 rows, got %d" (List.length rows)

let test_parse_rows_garbage () =
  check_int "unrelated text yields no rows" 0
    (List.length (G.parse_rows "not json at all {\"nope\": 1}"));
  check_int "malformed row is skipped" 1
    (List.length
       (G.parse_rows
          "{\"jobs\": -5, \"algorithm\": \"x\", \"indexed_s\": 1.0}\n\
           {\"jobs\": 10, \"algorithm\": \"y\", \"indexed_s\": 1.0}"));
  check_int "empty string" 0 (List.length (G.parse_rows ""))

let test_parse_committed_baseline () =
  (* The real committed baseline must be parseable — otherwise the gate
     silently degrades to a no-op. *)
  let path = "../BENCH_engine.json" in
  let path = if Sys.file_exists path then path else "BENCH_engine.json" in
  if Sys.file_exists path then begin
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    check_bool "committed baseline has gate rows" true
      (List.length (G.parse_rows text) >= 5)
  end

let row algorithm jobs indexed_s = { G.algorithm; jobs; indexed_s }

let test_check_passes_within_threshold () =
  let baseline = [ row "first-fit" 1000 1.0; row "best-fit" 1000 2.0 ] in
  let current = [ row "first-fit" 1000 1.29; row "best-fit" 1000 2.5 ] in
  check_int "1.29x and 1.25x both pass at 1.3x" 0
    (List.length (G.check ~baseline ~current ()))

let test_check_flags_breach () =
  let baseline = [ row "first-fit" 1000 1.0 ] in
  let current = [ row "first-fit" 1000 1.5 ] in
  match G.check ~baseline ~current () with
  | [ b ] ->
      check_string "algorithm" "first-fit" b.G.b_algorithm;
      check_int "jobs" 1000 b.G.b_jobs;
      check_float "baseline" 1.0 b.G.baseline_s;
      check_float "current" 1.5 b.G.current_s;
      check_float "ratio" 1.5 b.G.ratio;
      check_bool "to_string mentions the cell" true
        (String.length (G.breach_to_string b) > 0)
  | bs -> Alcotest.failf "expected 1 breach, got %d" (List.length bs)

let test_check_min_jobs_filters () =
  let baseline = [ row "first-fit" 1000 1.0; row "first-fit" 500_000 1.0 ] in
  let current = [ row "first-fit" 1000 9.0; row "first-fit" 500_000 1.1 ] in
  check_int "small cell breach ignored below min_jobs" 0
    (List.length (G.check ~min_jobs:500_000 ~baseline ~current ()));
  check_int "same cells gate everywhere at min_jobs 0" 1
    (List.length (G.check ~min_jobs:0 ~baseline ~current ()))

let test_check_unmatched_cells_pass () =
  let current = [ row "first-fit" 10_000_000 50.0 ] in
  check_int "new row size has nothing to regress against" 0
    (List.length (G.check ~baseline:[ row "first-fit" 1000 1.0 ] ~current ()));
  check_int "empty baseline gates nothing" 0
    (List.length (G.check ~baseline:[] ~current ()))

let test_check_threshold_validation () =
  Alcotest.check_raises "threshold must exceed 1"
    (Invalid_argument "Perf_gate.check: threshold <= 1") (fun () ->
      ignore
        (G.check ~threshold:1.0 ~baseline:[] ~current:[] () : G.breach list));
  let baseline = [ row "first-fit" 1000 1.0 ] in
  let current = [ row "first-fit" 1000 1.4 ] in
  check_int "custom threshold 1.5 tolerates 1.4x" 0
    (List.length (G.check ~threshold:1.5 ~baseline ~current ()))

let suite =
  [
    Alcotest.test_case "parse_rows on the bench emission format" `Quick
      test_parse_rows;
    Alcotest.test_case "parse_rows skips garbage" `Quick test_parse_rows_garbage;
    Alcotest.test_case "committed baseline parses" `Quick
      test_parse_committed_baseline;
    Alcotest.test_case "within threshold passes" `Quick
      test_check_passes_within_threshold;
    Alcotest.test_case "breach is reported with its cell" `Quick
      test_check_flags_breach;
    Alcotest.test_case "min_jobs filters small cells" `Quick
      test_check_min_jobs_filters;
    Alcotest.test_case "unmatched cells pass" `Quick
      test_check_unmatched_cells_pass;
    Alcotest.test_case "threshold validation" `Quick
      test_check_threshold_validation;
  ]
