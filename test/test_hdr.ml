(* Log-bucketed HDR histograms: bucket math, quantiles and the merge
   law (merge = concatenation, exactly, at the bucket level). *)

open Helpers
module Hdr = Dbp_obs.Hdr

(* ---- bucket math ---- *)

let test_bracket () =
  (* Every recordable value sits inside its bucket's bounds, and the
     bucket is tight: relative width <= precision. *)
  List.iter
    (fun v ->
      let i = Hdr.index_of v in
      let lo = Hdr.bucket_lower i and hi = Hdr.bucket_upper i in
      if not (lo <= v && v <= hi) then
        Alcotest.failf "%g outside bucket %d [%g, %g]" v i lo hi;
      if hi /. lo > Hdr.precision +. 1e-12 then
        Alcotest.failf "bucket %d too wide: [%g, %g]" i lo hi)
    [ 1e-9; 2.5e-7; 1e-6; 3.1e-4; 0.02; 0.5; 1.0; 7.25; 60. ]

let test_clamping () =
  (* Below/above the covered range clamps to the edge buckets instead
     of raising. *)
  check_int "tiny clamps to 0" 0 (Hdr.index_of 1e-40);
  check_int "zero clamps to 0" 0 (Hdr.index_of 0.);
  check_int "huge clamps to top" (Hdr.buckets - 1) (Hdr.index_of 1e12)

let qcheck_index_monotone =
  qtest "index_of is monotone in the value"
    QCheck2.Gen.(
      let* a = float_range 1e-9 64. in
      let* b = float_range 1e-9 64. in
      return (a, b))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Hdr.index_of lo <= Hdr.index_of hi)

(* ---- quantiles ---- *)

let test_quantiles_known () =
  let h = Hdr.create () in
  (* 100 samples: 1ms..100ms in 1ms steps. *)
  for i = 1 to 100 do
    Hdr.record h (float_of_int i /. 1000.)
  done;
  let s = Hdr.snapshot h in
  check_int "count" 100 (Hdr.count s);
  check_float_eps 1e-9 "sum" 5.05 (Hdr.sum s);
  check_float_eps 1e-12 "max exact" 0.1 (Hdr.max_value s);
  check_float_eps 1e-12 "min" 0.001 (Hdr.min_value s);
  (* The p50 estimate must bracket the true median within one bucket's
     relative precision. *)
  let p50 = Hdr.quantile s 0.5 in
  if not (p50 >= 0.05 && p50 <= 0.05 *. Hdr.precision) then
    Alcotest.failf "p50 %g outside [0.05, 0.05 * precision]" p50;
  (* q = 1 always returns the exact max, not a bucket bound. *)
  check_float_eps 1e-12 "p100 is exact max" 0.1 (Hdr.quantile s 1.0)

let test_empty () =
  let s = Hdr.empty_snapshot in
  check_int "count" 0 (Hdr.count s);
  check_float "sum" 0. (Hdr.sum s);
  check_float "max" 0. (Hdr.max_value s);
  check_float "quantile" 0. (Hdr.quantile s 0.99);
  check_bool "nonzero" true (Hdr.nonzero s = [])

let test_reset () =
  let h = Hdr.create () in
  Hdr.record h 0.5;
  Hdr.reset h;
  check_int "count after reset" 0 (Hdr.count (Hdr.snapshot h))

let qcheck_quantile_brackets =
  qtest "quantile estimate is within bucket precision of a true sample"
    QCheck2.Gen.(
      let* n = int_range 1 200 in
      flatten_l (List.init n (fun _ -> float_range 1e-6 10.)))
    (fun samples ->
      let h = Hdr.create () in
      List.iter (Hdr.record h) samples;
      let s = Hdr.snapshot h in
      let sorted = List.sort Float.compare samples in
      let n = List.length sorted in
      List.for_all
        (fun q ->
          let est = Hdr.quantile s q in
          let rank =
            let r = int_of_float (ceil (q *. float_of_int n)) in
            max 1 (min n r)
          in
          let true_v = List.nth sorted (rank - 1) in
          (* The estimate is the bucket's upper bound (or the exact max
             in the top occupied bucket): never below the true rank
             value, never more than one bucket above it. *)
          est >= true_v -. 1e-15
          && est <= (true_v *. Hdr.precision) +. 1e-15)
        [ 0.5; 0.9; 0.95; 0.99; 1.0 ])

(* ---- the merge law (ISSUE satellite: merge(a,b) == concat) ---- *)

let qcheck_merge_law =
  qtest "merge(a, b) behaves exactly like recording a @ b"
    QCheck2.Gen.(
      let samples = list_size (int_range 0 60) (float_range 1e-6 10.) in
      let* a = samples in
      let* b = samples in
      return (a, b))
    (fun (a, b) ->
      let record xs =
        let h = Hdr.create () in
        List.iter (Hdr.record h) xs;
        Hdr.snapshot h
      in
      let m = Hdr.merge (record a) (record b) in
      let c = record (a @ b) in
      (* Counts, bucket contents, min/max and hence every quantile are
         exact under merge; only [sum] is float addition, compared with
         a tolerance. *)
      Hdr.count m = Hdr.count c
      && Hdr.nonzero m = Hdr.nonzero c
      && Hdr.max_value m = Hdr.max_value c
      && Hdr.min_value m = Hdr.min_value c
      && List.for_all
           (fun q -> Hdr.quantile m q = Hdr.quantile c q)
           [ 0.; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ]
      && Float.abs (Hdr.sum m -. Hdr.sum c)
         <= 1e-9 *. Float.max 1. (Float.abs (Hdr.sum c)))

let test_merge_empty_identity () =
  let h = Hdr.create () in
  Hdr.record h 0.25;
  Hdr.record h 0.5;
  let s = Hdr.snapshot h in
  let m = Hdr.merge s Hdr.empty_snapshot in
  check_int "count" (Hdr.count s) (Hdr.count m);
  check_float "p99" (Hdr.quantile s 0.99) (Hdr.quantile m 0.99);
  check_float "max" (Hdr.max_value s) (Hdr.max_value m)

let suite =
  [
    Alcotest.test_case "bucket bounds bracket the value" `Quick test_bracket;
    Alcotest.test_case "out-of-range values clamp" `Quick test_clamping;
    qcheck_index_monotone;
    Alcotest.test_case "known quantiles" `Quick test_quantiles_known;
    Alcotest.test_case "empty snapshot" `Quick test_empty;
    Alcotest.test_case "reset" `Quick test_reset;
    qcheck_quantile_brackets;
    qcheck_merge_law;
    Alcotest.test_case "merge with empty is identity" `Quick
      test_merge_empty_identity;
  ]
