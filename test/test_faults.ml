(* Fault-injection layer: plan determinism, the empty-plan differential
   (the resilient engine must reproduce [Engine.run] bit-identically when
   nothing goes wrong), capacity safety under crashes and slips,
   displaced-work conservation, checkpoint/resume round-trips, and the
   structured-error migration of the engine's fatal paths. *)

open Dbp_core
open Helpers
module E = Dbp_online.Engine
module FP = Dbp_faults.Fault_plan
module Rec = Dbp_faults.Recovery
module R = Dbp_faults.Resilient

(* Same deterministic set the engine differential suite uses. *)
let algorithms =
  [
    Dbp_online.Any_fit.first_fit;
    Dbp_online.Any_fit.best_fit;
    Dbp_online.Any_fit.worst_fit;
    Dbp_online.Any_fit.next_fit;
    Dbp_online.Any_fit.random_fit ~seed:7;
    Dbp_online.Any_fit.biased_open ~p:0.25 ~seed:3;
    Dbp_online.Hybrid_first_fit.make ();
    Dbp_online.Departure_aligned.make ~window:2. ();
    Dbp_online.Classify_departure.make ~rho:2. ();
    Dbp_online.Classify_duration.make ~alpha:2. ();
    Dbp_online.Classify_combined.make ~alpha:2. ();
  ]

let stormy_spec =
  {
    FP.crash_rate = 0.3;
    slip_prob = 0.3;
    slip_stretch = 0.5;
    burst_rate = 0.1;
    burst_size = 3;
  }

(* ---- fault plans ---- *)

let test_plan_empty () =
  check_bool "empty is empty" true (FP.is_empty FP.empty);
  let inst = instance [ (0.5, 0., 1.) ] in
  check_bool "no_faults generates empty" true
    (FP.is_empty (FP.generate ~seed:1 FP.no_faults inst))

let test_plan_deterministic () =
  let inst = instance [ (0.5, 0., 4.); (0.3, 1., 6.); (0.8, 2., 9.) ] in
  let a = FP.generate ~seed:9 stormy_spec inst in
  let b = FP.generate ~seed:9 stormy_spec inst in
  check_bool "same plan" true (a = b);
  let c = FP.generate ~seed:10 stormy_spec inst in
  check_bool "seed matters somewhere" true (a <> c || FP.is_empty a)

let test_plan_validates () =
  let inst = instance [ (0.5, 0., 1.) ] in
  check_bool "negative rate rejected" true
    (match FP.generate ~seed:1 { stormy_spec with FP.crash_rate = -1. } inst with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- recovery policies ---- *)

let test_recovery_delay () =
  check_float "first retry" 0.1 (Rec.delay Rec.default ~attempt:1);
  check_float "third retry doubles twice" 0.4 (Rec.delay Rec.default ~attempt:3)

let test_recovery_validates () =
  check_bool "zero backoff rejected" true
    (match Rec.validate { Rec.default with Rec.backoff = 0. } with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Rec.validate (Rec.admission_controlled ())

(* ---- empty-plan differential: the acceptance property ---- *)

let same_as_plain inst algo =
  let plain = E.run algo inst in
  let out = R.run algo inst FP.empty in
  match out.R.packing with
  | None -> false
  | Some p ->
      List.for_all
        (fun r ->
          Packing.bin_of_item plain (Item.id r)
          = Packing.bin_of_item p (Item.id r))
        (Instance.items inst)
      && Packing.bin_count plain = Packing.bin_count p
      && Float.equal
           (Packing.total_usage_time plain)
           (Packing.total_usage_time p)
      && Float.equal (Packing.total_usage_time plain) out.R.usage_time

let prop_empty_plan_bit_identical =
  qtest ~count:60 "empty plan reproduces Engine.run bit-identically"
    (gen_instance ())
    (fun inst -> List.for_all (same_as_plain inst) algorithms)

(* ---- faulted runs: safety invariants ---- *)

(* Instance plus a stormy generated plan. *)
let gen_faulted =
  QCheck2.Gen.(
    let* inst = gen_instance ~max_items:16 () in
    let* seed = int_range 0 10_000 in
    return (inst, FP.generate ~seed stormy_spec inst))

(* Declared-interval level of a bin at an instant, from the engine items
   the report retains. *)
let level_at_declared state t =
  List.fold_left
    (fun acc r -> if Item.active_at r t then acc +. Item.size r else acc)
    0. (Bin_state.items state)

let prop_capacity_under_faults =
  qtest ~count:80 "capacity holds in every bin after crashes and slips"
    gen_faulted
    (fun (inst, plan) ->
      let out = R.run Dbp_online.Any_fit.first_fit inst plan in
      List.for_all
        (fun b ->
          List.for_all
            (fun r ->
              level_at_declared b.R.state (Item.arrival r)
              <= Bin_state.capacity +. Bin_state.tolerance)
            (Bin_state.items b.R.state))
        out.R.bins)

let prop_displaced_work_conserved =
  qtest ~count:80 "every displaced job is recovered or rejected" gen_faulted
    (fun (inst, plan) ->
      let out = R.run Dbp_online.Any_fit.best_fit inst plan in
      out.R.evicted + out.R.slipped = out.R.recovered + out.R.rejected)

let prop_faulted_run_deterministic =
  qtest ~count:40 "same plan, same outcome" gen_faulted
    (fun (inst, plan) ->
      let a = R.run Dbp_online.Any_fit.first_fit inst plan in
      let b = R.run Dbp_online.Any_fit.first_fit inst plan in
      Float.equal a.R.usage_time b.R.usage_time
      && a.R.bins_opened = b.R.bins_opened
      && a.R.recovered = b.R.recovered
      && a.R.rejected = b.R.rejected)

(* ---- deterministic crash scenarios ---- *)

(* One job, one crash halfway: the evicted job loses its progress and
   redoes its full duration in a fresh bin. *)
let test_crash_restart_inflates () =
  let inst = instance [ (0.6, 0., 10.) ] in
  let plan =
    { FP.empty with FP.crashes = [ { FP.time = 5.; victim = 0 } ] }
  in
  let out = R.run Dbp_online.Any_fit.first_fit inst plan in
  check_int "crash fired" 1 out.R.crashes_fired;
  check_int "evicted" 1 out.R.evicted;
  check_int "recovered" 1 out.R.recovered;
  check_int "two bins" 2 out.R.bins_opened;
  (* bin 0 served [0,5), bin 1 redoes the full 10 from t=5 *)
  check_float "usage 5 + 10" 15. out.R.usage_time

let test_admission_control_rejects () =
  let inst = instance [ (0.6, 0., 10.) ] in
  let plan =
    { FP.empty with FP.crashes = [ { FP.time = 5.; victim = 0 } ] }
  in
  let policy = Rec.admission_controlled ~max_retries:2 () in
  let out = R.run ~policy Dbp_online.Any_fit.first_fit inst plan in
  check_int "rejected" 1 out.R.rejected;
  check_int "recovered" 0 out.R.recovered;
  check_int "retries" 2 out.R.retries;
  (* lost demand: size 0.6 x full redo duration 10 *)
  check_float "lost demand" 6. out.R.lost_demand;
  check_float "usage truncated at the crash" 5. out.R.usage_time

let test_crash_on_empty_system_is_noop () =
  let inst = instance [ (0.5, 1., 2.) ] in
  let plan =
    { FP.empty with FP.crashes = [ { FP.time = 0.5; victim = 3 } ] }
  in
  let out = R.run Dbp_online.Any_fit.first_fit inst plan in
  check_int "no crash fired" 0 out.R.crashes_fired;
  check_float "usage untouched" 1. out.R.usage_time

let test_slip_overstays () =
  let inst = instance [ (0.5, 0., 2.) ] in
  let plan = { FP.empty with FP.slips = [ { FP.item_id = 0; delta = 3. } ] } in
  let out = R.run Dbp_online.Any_fit.first_fit inst plan in
  check_int "slipped" 1 out.R.slipped;
  check_int "recovered" 1 out.R.recovered;
  (* remainder [2, 5) lands in the still-open bin or a fresh one; either
     way total busy time is 5 *)
  check_float "usage stretched" 5. out.R.usage_time

(* ---- checkpoint / resume ---- *)

let same_outcome a b =
  Float.equal a.R.usage_time b.R.usage_time
  && a.R.bins_opened = b.R.bins_opened
  && a.R.crashes_fired = b.R.crashes_fired
  && a.R.evicted = b.R.evicted
  && a.R.recovered = b.R.recovered
  && a.R.rejected = b.R.rejected
  && a.R.retries = b.R.retries
  && a.R.slipped = b.R.slipped
  && a.R.injected = b.R.injected
  && Float.equal a.R.lost_demand b.R.lost_demand
  && List.length a.R.bins = List.length b.R.bins
  && List.for_all2
       (fun (x : R.bin_report) (y : R.bin_report) ->
         x.R.index = y.R.index
         && Float.equal x.R.opened_at y.R.opened_at
         && Option.equal Float.equal x.R.crashed_at y.R.crashed_at
         && List.equal Interval.equal x.R.busy y.R.busy)
       a.R.bins b.R.bins

let gen_checkpointed =
  QCheck2.Gen.(
    let* inst, plan = gen_faulted in
    let* cut = int_range 0 40 in
    return (inst, plan, cut))

let prop_checkpoint_roundtrip =
  qtest ~count:60 "checkpoint/resume is bit-identical" gen_checkpointed
    (fun (inst, plan, cut) ->
      let algo = Dbp_online.Any_fit.first_fit in
      let straight = R.run algo inst plan in
      let r = R.start algo inst plan in
      let rec burn k = if k > 0 && R.step r then burn (k - 1) in
      burn cut;
      let cp = R.checkpoint r in
      let resumed = R.resume algo inst plan cp in
      check_int "cursor restored" (R.events_processed r)
        (R.events_processed resumed);
      same_outcome straight (R.finish resumed))

let test_resume_detects_mismatched_inputs () =
  let inst = instance [ (0.6, 0., 10.); (0.3, 1., 4.) ] in
  let plan =
    { FP.empty with FP.crashes = [ { FP.time = 2.; victim = 0 } ] }
  in
  let algo = Dbp_online.Any_fit.first_fit in
  let r = R.start algo inst plan in
  let rec drain_to k = if k > 0 && R.step r then drain_to (k - 1) in
  drain_to 4 (* past the crash *);
  let cp = R.checkpoint r in
  (match R.resume algo inst FP.empty cp with
  | exception R.Checkpoint_mismatch m ->
      (* The payload names both sides of the disagreement. *)
      check_string "expected digest is the checkpoint's"
        cp.R.state_digest m.R.expected_digest;
      check_int "cursor carried" cp.R.events_done m.R.events_done;
      (match m.R.actual_digest with
      | Some d ->
          check_bool "replayed digest differs" true
            (not (String.equal d cp.R.state_digest))
      | None -> Alcotest.fail "replay reached the cursor; digest expected");
      check_bool "rendering mentions both digests" true
        (let s = R.mismatch_to_string m in
         let has sub =
           let n = String.length sub and len = String.length s in
           let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         has cp.R.state_digest && has (Option.get m.R.actual_digest))
  | _ -> Alcotest.fail "resume against a different plan must be refused");
  (* Drained-early flavour: a cursor past the end of the event stream. *)
  let far = { cp with R.events_done = 1_000_000 } in
  match R.resume algo inst plan far with
  | exception R.Checkpoint_mismatch m ->
      check_bool "no digest when the stream drained early" true
        (Option.is_none m.R.actual_digest);
      check_int "cursor carried" 1_000_000 m.R.events_done
  | _ -> Alcotest.fail "over-long cursor must be refused"

(* ---- structured engine errors ---- *)

let unknown_bin_algo =
  E.stateless "always-99" (fun ~now:_ ~open_bins:_ _ -> E.Place 99)

let overflow_algo =
  E.stateless "cram-into-0" (fun ~now:_ ~open_bins _ ->
      if open_bins = [] then E.Open_new else E.Place 0)

let overlap_pair = instance [ (0.9, 0., 4.); (0.9, 1., 5.) ]

let test_run_result_unknown_bin () =
  match E.run_result unknown_bin_algo overlap_pair with
  | Error (E.Unknown_bin { algo; bin; _ }) ->
      check_string "algo name" "always-99" algo;
      check_int "bin index" 99 bin
  | Error e -> Alcotest.failf "wrong error: %s" (E.error_to_string e)
  | Ok _ -> Alcotest.fail "expected an error"

let test_run_result_overflow () =
  check_bool "overflow classified" true
    (match E.run_result overflow_algo overlap_pair with
    | Error (E.Overflow { bin = 0; _ }) -> true
    | _ -> false)

(* The legacy exception and the structured error must render the exact
   same message — callers matching on strings keep working. *)
let test_error_message_shim () =
  List.iter
    (fun algo ->
      match E.run_result algo overlap_pair with
      | Ok _ -> Alcotest.fail "expected an error"
      | Error e -> (
          match E.run algo overlap_pair with
          | exception E.Invalid_decision msg ->
              check_string "identical message" (E.error_to_string e) msg
          | _ -> Alcotest.fail "legacy path did not raise"))
    [ unknown_bin_algo; overflow_algo ]

let test_resilient_reports_structured_errors () =
  match R.run_result unknown_bin_algo overlap_pair FP.empty with
  | Error (E.Unknown_bin _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (E.error_to_string e)
  | Ok _ -> Alcotest.fail "expected an error"

let suite =
  [
    Alcotest.test_case "plan: empty/no_faults" `Quick test_plan_empty;
    Alcotest.test_case "plan: deterministic" `Quick test_plan_deterministic;
    Alcotest.test_case "plan: validates spec" `Quick test_plan_validates;
    Alcotest.test_case "recovery: backoff schedule" `Quick test_recovery_delay;
    Alcotest.test_case "recovery: validates" `Quick test_recovery_validates;
    prop_empty_plan_bit_identical;
    prop_capacity_under_faults;
    prop_displaced_work_conserved;
    prop_faulted_run_deterministic;
    Alcotest.test_case "crash restarts the victim" `Quick
      test_crash_restart_inflates;
    Alcotest.test_case "admission control rejects" `Quick
      test_admission_control_rejects;
    Alcotest.test_case "crash with no open bin is a no-op" `Quick
      test_crash_on_empty_system_is_noop;
    Alcotest.test_case "slip overstays" `Quick test_slip_overstays;
    prop_checkpoint_roundtrip;
    Alcotest.test_case "resume refuses mismatched inputs" `Quick
      test_resume_detects_mismatched_inputs;
    Alcotest.test_case "run_result: unknown bin" `Quick
      test_run_result_unknown_bin;
    Alcotest.test_case "run_result: overflow" `Quick test_run_result_overflow;
    Alcotest.test_case "error message shim is byte-identical" `Quick
      test_error_message_shim;
    Alcotest.test_case "resilient surfaces structured errors" `Quick
      test_resilient_reports_structured_errors;
  ]
