open Dbp_core
open Helpers

let test_order () =
  let inst = instance [ (0.5, 0., 2.); (0.5, 1., 3.) ] in
  let kinds =
    Event.of_instance inst
    |> List.map (fun e -> (e.Event.time, Event.kind_to_string e.Event.kind))
  in
  Alcotest.(check (list (pair (float 1e-12) string)))
    "sorted"
    [ (0., "arrival"); (1., "arrival"); (2., "departure"); (3., "departure") ]
    kinds

let test_departure_before_arrival_at_same_time () =
  (* item 0 leaves exactly when item 1 arrives: departure delivered first *)
  let inst = instance [ (0.5, 0., 5.); (0.5, 5., 6.) ] in
  let kinds =
    Event.of_instance inst
    |> List.filter (fun e -> Float.equal e.Event.time 5.)
    |> List.map (fun e -> Event.kind_to_string e.Event.kind)
  in
  Alcotest.(check (list string)) "departure first" [ "departure"; "arrival" ]
    kinds

let test_arrivals () =
  let inst = instance [ (0.5, 2., 3.); (0.5, 0., 9.) ] in
  let ids = Event.arrivals (Event.of_instance inst) |> List.map Item.id in
  Alcotest.(check (list int)) "arrival order" [ 1; 0 ] ids

let prop_event_count =
  qtest "two events per item" (gen_instance ()) (fun inst ->
      List.length (Event.of_instance inst) = 2 * Instance.length inst)

let prop_events_sorted =
  qtest "events nondecreasing in time" (gen_instance ()) (fun inst ->
      let times = List.map (fun e -> e.Event.time) (Event.of_instance inst) in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      sorted times)

(* --- heap queue: must preserve the of_instance delivery order ------- *)

let event_key e =
  (e.Event.time, Event.kind_to_string e.Event.kind, Item.id e.Event.item)

let test_queue_ties_pinned () =
  (* All four tie dimensions at once: items 0 and 1 share arrival 0;
     item 0 departs exactly when items 2 and 3 arrive; items 2 and 3
     share both times so their events tie down to the id. *)
  let inst =
    instance [ (0.2, 0., 5.); (0.2, 0., 3.); (0.2, 5., 7.); (0.2, 5., 7.) ]
  in
  let popped =
    Event.queue_of_instance inst |> Heap.drain |> List.map event_key
  in
  Alcotest.(check (list (triple (float 1e-12) string int)))
    "departures before arrivals, ties by id"
    [
      (0., "arrival", 0);
      (0., "arrival", 1);
      (3., "departure", 1);
      (5., "departure", 0);
      (5., "arrival", 2);
      (5., "arrival", 3);
      (7., "departure", 2);
      (7., "departure", 3);
    ]
    popped

let prop_queue_matches_of_instance =
  qtest ~count:300 "heap queue = sorted event list" (gen_instance ())
    (fun inst ->
      let sorted = Event.of_instance inst |> List.map event_key in
      let popped =
        Event.queue_of_instance inst |> Heap.drain |> List.map event_key
      in
      sorted = popped)

let prop_queue_departures_first =
  (* Integer-grid instances to force many equal-time events. *)
  let gen =
    QCheck2.Gen.(
      let* n = int_range 2 20 in
      let* items =
        flatten_l
          (List.init n (fun id ->
               let* a = int_range 0 5 in
               let* d = int_range 1 4 in
               return
                 (Dbp_core.Item.make ~id ~size:0.25
                    ~arrival:(float_of_int a)
                    ~departure:(float_of_int (a + d)))))
      in
      return (Instance.of_items items))
  in
  qtest ~count:300 "queue: departures precede arrivals at equal times" gen
    (fun inst ->
      let popped = Event.queue_of_instance inst |> Heap.drain in
      let rec ok = function
        | a :: (b :: _ as rest) ->
            (a.Event.time < b.Event.time
            || (a.Event.time = b.Event.time
               && not
                    (a.Event.kind = Event.Arrival
                    && b.Event.kind = Event.Departure)))
            && ok rest
        | _ -> true
      in
      ok popped)

let suite =
  [
    Alcotest.test_case "global order" `Quick test_order;
    Alcotest.test_case "departures precede arrivals at ties" `Quick
      test_departure_before_arrival_at_same_time;
    Alcotest.test_case "arrivals extraction" `Quick test_arrivals;
    Alcotest.test_case "queue tie-breaking pinned" `Quick test_queue_ties_pinned;
    prop_event_count;
    prop_events_sorted;
    prop_queue_matches_of_instance;
    prop_queue_departures_first;
  ]
