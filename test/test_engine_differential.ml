(* Differential testing of the indexed engine against the frozen
   reference engine: on random instances, every deterministic algorithm
   must produce the *same packing* (same bin index for every item) under
   both engines, and the usage times must match exactly.

   Two instance generators: general float-valued instances, and a
   tie-heavy grid generator (integer times, discrete sizes) that forces
   equal-time arrival/departure collisions and exactly-equal bin levels —
   the cases where heap ordering and index tie-breaking could silently
   diverge from the list engine. *)

open Dbp_core
open Helpers
module E = Dbp_online.Engine

(* Deterministic algorithms only.  random-fit and biased-open are
   deterministic given their seed: the engines call [decide] on the same
   arrival sequence, so the coin streams align. *)
let algorithms =
  [
    Dbp_online.Any_fit.first_fit;
    Dbp_online.Any_fit.best_fit;
    Dbp_online.Any_fit.worst_fit;
    Dbp_online.Any_fit.next_fit;
    Dbp_online.Any_fit.random_fit ~seed:7;
    Dbp_online.Any_fit.biased_open ~p:0.25 ~seed:3;
    Dbp_online.Hybrid_first_fit.make ();
    Dbp_online.Departure_aligned.make ~window:2. ();
    Dbp_online.Classify_departure.make ~rho:2. ();
    Dbp_online.Classify_duration.make ~alpha:2. ();
    Dbp_online.Classify_combined.make ~alpha:2. ();
  ]

(* Integer arrival/departure grid with sizes from a small discrete set:
   maximal tie pressure. *)
let gen_tie_instance =
  QCheck2.Gen.(
    let* n = int_range 2 30 in
    let sizes = [| 0.1; 0.2; 0.25; 0.3; 0.5; 0.5; 1.0 |] in
    let* items =
      flatten_l
        (List.init n (fun id ->
             let* si = int_range 0 (Array.length sizes - 1) in
             let* arrival = int_range 0 8 in
             let* duration = int_range 1 5 in
             return
               (Item.make ~id ~size:sizes.(si)
                  ~arrival:(float_of_int arrival)
                  ~departure:(float_of_int (arrival + duration)))))
    in
    return (Instance.of_items items))

let same_packing inst algo =
  let reference = E.run_reference algo inst in
  let indexed = E.run_indexed algo inst in
  let same_bins =
    List.for_all
      (fun r ->
        Packing.bin_of_item reference (Item.id r)
        = Packing.bin_of_item indexed (Item.id r))
      (Instance.items inst)
  in
  same_bins
  && Packing.bin_count reference = Packing.bin_count indexed
  && Float.equal
       (Packing.total_usage_time reference)
       (Packing.total_usage_time indexed)

let differential_tests =
  List.concat_map
    (fun algo ->
      let name = algo.E.name in
      [
        qtest ~count:400
          (Printf.sprintf "indexed = reference: %s" name)
          (gen_instance ~max_items:25 ())
          (fun inst -> same_packing inst algo);
        qtest ~count:200
          (Printf.sprintf "indexed = reference (ties): %s" name)
          gen_tie_instance
          (fun inst -> same_packing inst algo);
      ])
    algorithms

(* The tuned classifiers pick their parameters from the instance; cover
   them too so the parameter plumbing goes through both engines. *)
let tuned_tests =
  [
    qtest ~count:500 "indexed = reference: cbdt-tuned"
      (gen_instance ~max_items:20 ())
      (fun inst -> same_packing inst (Dbp_online.Classify_departure.tuned inst));
    qtest ~count:500 "indexed = reference: cbd-tuned"
      (gen_instance ~max_items:20 ())
      (fun inst -> same_packing inst (Dbp_online.Classify_duration.tuned inst));
  ]

(* ---- adversarial instances against the flat engine ---------------------

   The flat engine drains all equal-time departures before touching the
   fit index (deferred via a per-bin dirty stack) and recycles arena
   rows when bins close.  These generators are built to break exactly
   that machinery: dense equal-timestamp bursts, one-ulp lifetimes that
   open and close a bin inside a single drain, and monotone-duration
   ramps that retire one item per instant from shared bins. *)
let adversarial_tests =
  List.concat_map
    (fun algo ->
      let name = algo.E.name in
      [
        qtest ~count:200
          (Printf.sprintf "indexed = reference (bursts): %s" name)
          (gen_burst_instance ())
          (fun inst -> same_packing inst algo);
        qtest ~count:200
          (Printf.sprintf "indexed = reference (one-ulp jobs): %s" name)
          (gen_tiny_duration_instance ())
          (fun inst -> same_packing inst algo);
        qtest ~count:200
          (Printf.sprintf "indexed = reference (duration ramps): %s" name)
          (gen_ramp_instance ())
          (fun inst -> same_packing inst algo);
      ])
    algorithms

(* Instances large enough to cross the fit index's and the arena's
   doubling boundaries (both start well below 200 leaves/rows), so
   growth-time blits are covered, not just the small steady state. *)
let large_instance_tests =
  List.map
    (fun algo ->
      qtest ~count:30
        (Printf.sprintf "indexed = reference (200 items): %s" algo.E.name)
        (gen_instance ~max_items:200 ())
        (fun inst -> same_packing inst algo))
    [
      Dbp_online.Any_fit.first_fit;
      Dbp_online.Any_fit.best_fit;
      Dbp_online.Any_fit.worst_fit;
      Dbp_online.Any_fit.next_fit;
      Dbp_online.Hybrid_first_fit.make ();
    ]

(* run_usage is the bench's serving-path metric: it must agree bitwise
   with folding the full packing, on every generator in this file. *)
let usage_fast_path_tests =
  let agrees inst algo =
    Float.equal
      (E.run_usage algo inst)
      (Packing.total_usage_time (E.run_indexed algo inst))
  in
  [
    qtest ~count:300 "run_usage = total_usage_time (general)"
      (gen_instance ~max_items:30 ())
      (fun inst -> List.for_all (agrees inst) algorithms);
    qtest ~count:200 "run_usage = total_usage_time (bursts)"
      (gen_burst_instance ())
      (fun inst -> List.for_all (agrees inst) algorithms);
  ]

let suite =
  differential_tests @ tuned_tests @ adversarial_tests @ large_instance_tests
  @ usage_fast_path_tests
