(* The dbp.par domain pool: parallel_map equivalence to List.map under
   random chunk/pool sizes, bit-identical sweeps and evaluations through
   ~pool, structured exception propagation (and pool survival), the
   Prng.derive seed-splitting contract, and the task queue's dealing and
   stealing. *)

open Helpers
module Pool = Dbp_par.Pool
module Q = Dbp_par.Task_queue
module P = Dbp_workload.Prng

(* ---- parallel_map = List.map ---- *)

let prop_map_matches_list_map =
  let gen =
    QCheck2.Gen.(
      let* xs = list_size (int_range 0 40) (int_range (-1000) 1000) in
      let* chunk = int_range 1 5 in
      let* domains = int_range 1 3 in
      return (xs, chunk, domains))
  in
  qtest ~count:30 "parallel_map = List.map under random chunk/pool sizes" gen
    (fun (xs, chunk, domains) ->
      let f x = (x * 31) + (x mod 7) in
      Pool.with_pool ~domains (fun pool ->
          Pool.parallel_map pool ~chunk f xs = List.map f xs))

let test_map_array_submission_order () =
  Pool.with_pool ~domains:2 (fun pool ->
      let input = Array.init 37 (fun i -> i) in
      let out = Pool.map_array pool ~chunk:3 (fun i -> i * i) input in
      Alcotest.(check (array int))
        "slot i holds f input.(i)"
        (Array.map (fun i -> i * i) input)
        out)

let test_parallel_for_covers_every_index () =
  Pool.with_pool ~domains:3 (fun pool ->
      let hits = Array.make 25 0 in
      (* task i writes only slot i, so no two domains share a cell *)
      Pool.parallel_for pool ~chunk:2 25 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check (array int)) "each task ran exactly once"
        (Array.make 25 1) hits;
      Pool.parallel_for pool 0 (fun _ -> Alcotest.fail "n = 0 runs nothing"))

(* ---- bit-identical parallel sweeps and evaluations ---- *)

let small_packers () =
  [
    Dbp_sim.Runner.online Dbp_online.Any_fit.first_fit;
    Dbp_sim.Runner.online Dbp_online.Any_fit.best_fit;
    Dbp_sim.Runner.offline "ddff" Dbp_offline.Ddff.pack;
  ]

let sweep_points pool =
  let generate ~seed mu =
    Dbp_workload.Generator.with_mu ~seed ~items:60 ~mu ()
  in
  Dbp_sim.Sweep.run ?pool ~seeds:2 ~parameters:[ 2.; 8. ] ~generate
    ~packers:(small_packers ()) ()

let check_points_identical name ps qs =
  check_int (name ^ ": point count") (List.length ps) (List.length qs);
  List.iter2
    (fun (p : Dbp_sim.Sweep.point) (q : Dbp_sim.Sweep.point) ->
      check_string (name ^ ": label") p.label q.label;
      check_bool (name ^ ": parameter") true (Float.equal p.parameter q.parameter);
      check_int (name ^ ": n") p.ratios.Dbp_sim.Stats.n q.ratios.Dbp_sim.Stats.n;
      List.iter2
        (fun a b -> check_bool (name ^ ": summary field") true (Float.equal a b))
        [ p.ratios.mean; p.ratios.stddev; p.ratios.min; p.ratios.max ]
        [ q.ratios.mean; q.ratios.stddev; q.ratios.min; q.ratios.max ])
    ps qs

let test_sweep_bit_identical () =
  let sequential = sweep_points None in
  Pool.with_pool ~domains:2 (fun pool ->
      check_points_identical "2 domains" sequential (sweep_points (Some pool)));
  Pool.with_pool ~domains:3 (fun pool ->
      check_points_identical "3 domains" sequential (sweep_points (Some pool)))

let test_evaluate_bit_identical () =
  let inst = Dbp_workload.Generator.with_mu ~seed:5 ~items:80 ~mu:6. () in
  let sequential = Dbp_sim.Runner.evaluate (small_packers ()) inst in
  Pool.with_pool ~domains:2 (fun pool ->
      let parallel = Dbp_sim.Runner.evaluate ~pool (small_packers ()) inst in
      check_int "score count" (List.length sequential) (List.length parallel);
      List.iter2
        (fun (a : Dbp_sim.Runner.score) (b : Dbp_sim.Runner.score) ->
          check_string "label" a.label b.label;
          check_bool "usage bit-identical" true (Float.equal a.usage b.usage);
          check_int "bins" a.bins b.bins;
          check_int "max concurrent" a.max_concurrent b.max_concurrent;
          check_bool "ratio/LB bit-identical" true
            (Float.equal a.ratio_lb b.ratio_lb))
        sequential parallel)

let test_figure8_bit_identical () =
  let mus = [ 1.; 2.; 4.; 8.; 16.; 100. ] in
  let sequential = Dbp_theory.Figure8.series ~mus () in
  Pool.with_pool ~domains:2 (fun pool ->
      let parallel = Dbp_theory.Figure8.series ~pool ~mus () in
      check_int "row count" (List.length sequential) (List.length parallel);
      List.iter2
        (fun (a : Dbp_theory.Figure8.row) (b : Dbp_theory.Figure8.row) ->
          check_bool "row bit-identical" true
            (Float.equal a.mu b.mu && Float.equal a.cbdt b.cbdt
            && Float.equal a.cbd b.cbd && a.cbd_n = b.cbd_n
            && Float.equal a.first_fit b.first_fit))
        sequential parallel)

(* ---- exception propagation ---- *)

let test_error_propagation_parallel () =
  Pool.with_pool ~domains:2 (fun pool ->
      (match Pool.parallel_for pool ~chunk:2 20 (fun i -> if i = 7 then raise Exit) with
      | () -> Alcotest.fail "expected Task_error"
      | exception Pool.Task_error (i, Exit) -> check_int "failing index" 7 i);
      (* the failure cancelled the job, not the pool *)
      Alcotest.(check (list int))
        "pool usable after a failed job" [ 0; 2; 4 ]
        (Pool.parallel_map pool (fun x -> 2 * x) [ 0; 1; 2 ]))

let test_error_propagation_sequential () =
  Pool.with_pool ~domains:1 (fun pool ->
      match Pool.parallel_for pool 5 (fun i -> if i >= 2 then failwith "task") with
      | () -> Alcotest.fail "expected Task_error"
      | exception Pool.Task_error (i, Failure _) ->
          check_int "first failing index" 2 i)

let test_nested_submission_rejected () =
  Pool.with_pool ~domains:2 (fun pool ->
      match
        Pool.parallel_for pool 4 (fun _ ->
            Pool.parallel_for pool 2 (fun _ -> ()))
      with
      | () -> Alcotest.fail "nested submission should be rejected"
      | exception Pool.Task_error (_, Invalid_argument _) -> ())

let test_shutdown_rejects_further_jobs () =
  let pool = Pool.create ~domains:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  match Pool.parallel_map pool (fun x -> x) [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ()

(* ---- Prng.derive: the seed-splitting contract ---- *)

let test_derive_matches_split () =
  List.iter
    (fun index ->
      (* the documented equation: derive (root, k) = split after k draws *)
      let parent = P.create 42 in
      for _ = 1 to index do
        ignore (P.int64 parent)
      done;
      let from_split = P.split parent in
      let derived = P.derive ~root:42 ~index in
      for draw = 1 to 16 do
        Alcotest.(check int64)
          (Printf.sprintf "index %d, draw %d" index draw)
          (P.int64 from_split) (P.int64 derived)
      done)
    [ 0; 1; 3; 10 ]

let test_derive_streams_distinct () =
  let firsts = List.init 100 (fun i -> P.int64 (P.derive ~root:7 ~index:i)) in
  check_int "100 indices give 100 distinct first draws" 100
    (List.length (List.sort_uniq Int64.compare firsts))

let test_derive_floats_uniform () =
  let n = 500 in
  let sum = ref 0. in
  for i = 0 to n - 1 do
    let rng = P.derive ~root:11 ~index:i in
    let x = P.float rng in
    check_bool "in [0, 1)" true (0. <= x && x < 1.);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean of first draws near 1/2" true
    (Float.abs (mean -. 0.5) < 0.05)

let test_derive_rejects_negative_index () =
  match P.derive ~root:0 ~index:(-1) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---- pool sizing and the task queue ---- *)

let test_default_domains_clamped () =
  let d = Pool.default_domains () in
  check_bool "default in [1, 8]" true (1 <= d && d <= 8);
  check_bool "at least one core" true (Pool.available_cores () >= 1)

let test_task_queue_deals_and_steals () =
  let q = Q.create ~workers:3 ~chunks:10 in
  check_int "workers" 3 (Q.workers q);
  check_int "all chunks queued" 10 (Q.remaining q);
  (* round-robin deal: worker 0 owns 0, 3, 6, 9 *)
  check_int "worker 0 dealt four chunks" 4 (Q.length q 0);
  (match Q.take q ~worker:0 with
  | Some c -> check_int "owner pops its own front" 0 c
  | None -> Alcotest.fail "worker 0 has chunks");
  (* one worker draining the rest (own queue, then steals) visits every
     remaining chunk exactly once *)
  let rec drain acc =
    match Q.take q ~worker:2 with
    | Some c -> drain (c :: acc)
    | None -> List.rev acc
  in
  let rest = drain [] in
  check_int "nine chunks left" 9 (List.length rest);
  check_int "no chunk handed out twice" 9
    (List.length (List.sort_uniq Int.compare rest));
  check_bool "chunk 0 not re-issued" false (List.mem 0 rest);
  check_int "queue empty" 0 (Q.remaining q)

(* ---- resident mailboxes and the collector (the sharded daemon's
   substrate: one long-lived domain per shard, results FIFO'd back) ---- *)

let test_resident_processes_in_post_order () =
  let seen = ref [] in
  let r = Pool.Resident.spawn (fun x -> seen := x :: !seen) in
  let n = 500 in
  for i = 1 to n do
    Pool.Resident.post r i
  done;
  Pool.Resident.sync r;
  (* sync's mutex pairing publishes the handler's writes *)
  Alcotest.(check (list int))
    "messages handled in post order"
    (List.init n (fun i -> i + 1))
    (List.rev !seen);
  check_int "posted" n (Pool.Resident.posted r);
  check_int "processed" n (Pool.Resident.processed r);
  check_int "depth drained" 0 (Pool.Resident.depth r);
  Pool.Resident.close r

let test_resident_close_drains () =
  let count = ref 0 in
  let r = Pool.Resident.spawn (fun () -> incr count) in
  for _ = 1 to 100 do
    Pool.Resident.post r ()
  done;
  Pool.Resident.close r;
  check_int "close drains the mailbox first" 100 !count;
  Pool.Resident.close r;
  (* idempotent *)
  match Pool.Resident.post r () with
  | () -> Alcotest.fail "post after close accepted"
  | exception Invalid_argument _ -> ()

let test_resident_failure_is_sticky () =
  let r =
    Pool.Resident.spawn (fun x -> if x = 3 then failwith "boom")
  in
  for i = 0 to 9 do
    Pool.Resident.post r i
  done;
  (match Pool.Resident.sync r with
  | () -> Alcotest.fail "expected Resident_error"
  | exception Pool.Resident_error (Failure msg) ->
      check_string "original exception carried" "boom" msg);
  (* the failure is remembered: every later interaction re-raises, and
     none of them deadlocks *)
  (match Pool.Resident.post r 99 with
  | () -> Alcotest.fail "post after failure accepted"
  | exception Pool.Resident_error _ -> ());
  match Pool.Resident.close r with
  | () -> Alcotest.fail "close after failure must re-raise"
  | exception Pool.Resident_error _ -> ()

let test_resident_rejects_bad_capacity () =
  match Pool.Resident.spawn ~capacity:0 (fun () -> ()) with
  | _ -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ()

let test_collector_fifo () =
  let c = Pool.Collector.create () in
  Alcotest.(check (list int)) "empty drain" [] (Pool.Collector.drain c);
  List.iter (Pool.Collector.push c) [ 1; 2; 3 ];
  check_int "length" 3 (Pool.Collector.length c);
  Alcotest.(check (list int)) "push order" [ 1; 2; 3 ] (Pool.Collector.drain c);
  Alcotest.(check (list int)) "drain empties" [] (Pool.Collector.drain c)

let test_collector_across_domains () =
  let c = Pool.Collector.create () in
  let r = Pool.Resident.spawn (fun x -> Pool.Collector.push c (x * x)) in
  let n = 200 in
  for i = 1 to n do
    Pool.Resident.post r i
  done;
  Pool.Resident.sync r;
  Alcotest.(check (list int))
    "collector sees every result in post order"
    (List.init n (fun i -> (i + 1) * (i + 1)))
    (Pool.Collector.drain c);
  Pool.Resident.close r

let suite =
  [
    prop_map_matches_list_map;
    Alcotest.test_case "map_array keeps submission order" `Quick
      test_map_array_submission_order;
    Alcotest.test_case "parallel_for covers every index" `Quick
      test_parallel_for_covers_every_index;
    Alcotest.test_case "sweep ~pool bit-identical" `Quick
      test_sweep_bit_identical;
    Alcotest.test_case "evaluate ~pool bit-identical" `Quick
      test_evaluate_bit_identical;
    Alcotest.test_case "figure8 ~pool bit-identical" `Quick
      test_figure8_bit_identical;
    Alcotest.test_case "Task_error carries the failing index" `Quick
      test_error_propagation_parallel;
    Alcotest.test_case "sequential path reports first failure" `Quick
      test_error_propagation_sequential;
    Alcotest.test_case "nested submission rejected" `Quick
      test_nested_submission_rejected;
    Alcotest.test_case "shutdown is final and idempotent" `Quick
      test_shutdown_rejects_further_jobs;
    Alcotest.test_case "derive = split after index draws" `Quick
      test_derive_matches_split;
    Alcotest.test_case "derive streams distinct" `Quick
      test_derive_streams_distinct;
    Alcotest.test_case "derive floats uniform in [0,1)" `Quick
      test_derive_floats_uniform;
    Alcotest.test_case "derive rejects negative index" `Quick
      test_derive_rejects_negative_index;
    Alcotest.test_case "default_domains clamped to [1,8]" `Quick
      test_default_domains_clamped;
    Alcotest.test_case "task queue deals and steals" `Quick
      test_task_queue_deals_and_steals;
    Alcotest.test_case "resident handles messages in post order" `Quick
      test_resident_processes_in_post_order;
    Alcotest.test_case "resident close drains, then rejects" `Quick
      test_resident_close_drains;
    Alcotest.test_case "resident failure is sticky, never deadlocks" `Quick
      test_resident_failure_is_sticky;
    Alcotest.test_case "resident rejects capacity < 1" `Quick
      test_resident_rejects_bad_capacity;
    Alcotest.test_case "collector is a FIFO" `Quick test_collector_fifo;
    Alcotest.test_case "collector routes resident results" `Quick
      test_collector_across_domains;
  ]
