(* The dbp.serve streaming stack: wire codecs (roundtrip + totality
   fuzz), the bounded-memory stream engine against the batch engine,
   crash-resume bit-fidelity for every portfolio algorithm at every cut
   point, snapshot durability and corruption detection, the degradation
   ladder, and the malformed-input skip contract. *)

open Helpers
open Dbp_serve
module E = Dbp_online.Engine
module Item = Dbp_core.Item

(* ---- json_lite / arrival / decision codecs ---------------------------- *)

let gen_any_bytes =
  QCheck2.Gen.(string_size ~gen:char (int_range 0 120))

let prop_json_lite_total =
  qtest ~count:500 "Json_lite.parse_object never raises" gen_any_bytes
    (fun s ->
      match Json_lite.parse_object s with Ok _ | Error _ -> true)

let prop_arrival_total =
  qtest ~count:500 "Arrival.parse never raises" gen_any_bytes (fun s ->
      match Arrival.parse s with Ok _ | Error _ -> true)

let prop_decision_total =
  qtest ~count:500 "Decision.parse never raises" gen_any_bytes (fun s ->
      match Decision.parse s with Ok _ | Error _ -> true)

let prop_lenient_trace_total =
  qtest ~count:200 "Trace.of_string_lenient never raises" gen_any_bytes
    (fun s ->
      let _instance, _errors = Dbp_workload.Trace.of_string_lenient s in
      true)

let test_arrival_hostile_bytes () =
  (* NULs, truncated UTF-8, and a 10 MB line: errors, never exceptions *)
  let hostile =
    [
      "\x00{\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":1}";
      "{\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":1}\x00";
      "{\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":\xc3";
      "{\"id\":\xed\xa0\x80}";
      "{\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":1";
      "{\"id\":1.5,\"size\":0.5,\"arrival\":0,\"departure\":1}";
      "{\"id\":1,\"size\":0.5,\"arrival\":0}";
      "{\"id\":1,\"id\":2,\"size\":0.5,\"arrival\":0,\"departure\":1}";
      "{\"id\":1,\"size\":2.0,\"arrival\":0,\"departure\":1}";
      "{\"id\":1,\"size\":0.5,\"arrival\":5,\"departure\":1}";
      "[1,2,3]";
      "";
      String.make 10_000_000 'x';
      "{\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":1,\"pad\":\""
      ^ String.make 10_000_000 'y';
    ]
  in
  List.iter
    (fun line ->
      match Arrival.parse line with
      | Ok _ -> Alcotest.failf "hostile line parsed: %s" (String.sub line 0 (min 60 (String.length line)))
      | Error reason ->
          check_bool "reason is non-empty" true (String.length reason > 0))
    hostile

let test_arrival_ignores_unknown_fields () =
  match
    Arrival.parse
      "{\"id\":7,\"size\":0.25,\"arrival\":3,\"departure\":7.5,\"tag\":\"x\"}"
  with
  | Ok item ->
      check_int "id" 7 (Item.id item);
      check_float "size" 0.25 (Item.size item)
  | Error e -> Alcotest.failf "unexpected parse failure: %s" e

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let prop_arrival_roundtrip =
  qtest ~count:300 "Arrival.render/parse roundtrip is bit-exact"
    (gen_item_with_id 12345)
    (fun item ->
      match Arrival.parse (Arrival.render item) with
      | Error e -> QCheck2.Test.fail_reportf "rendered line rejected: %s" e
      | Ok back ->
          Item.id back = Item.id item
          && same_float (Item.size back) (Item.size item)
          && same_float (Item.arrival back) (Item.arrival item)
          && same_float (Item.departure back) (Item.departure item))

let gen_decision =
  QCheck2.Gen.(
    let* seq = int_range 0 1_000_000 in
    let* job = int_range 0 1_000_000 in
    let* time = float_range 0. 1e7 in
    let* placed = bool in
    if placed then
      let* bin = int_range 0 10_000 in
      let* opened = bool in
      return (Decision.Placed { seq; job; bin; opened; time })
    else
      let* reason =
        oneofl [ Decision.Overload; Decision.Out_of_order; Decision.Duplicate ]
      in
      return (Decision.Rejected { seq; job; reason; time }))

let prop_decision_roundtrip =
  qtest ~count:300 "Decision.render/parse roundtrip" gen_decision (fun d ->
      match Decision.parse (Decision.render d) with
      | Error e -> QCheck2.Test.fail_reportf "rendered line rejected: %s" e
      | Ok back -> Decision.equal d back)

(* ---- wire container ---------------------------------------------------- *)

let prop_wire_roundtrip =
  qtest ~count:300 "Wire.decode (Wire.encode p) = Ok p" gen_any_bytes
    (fun payload ->
      match Wire.decode (Wire.encode payload) with
      | Ok p -> String.equal p payload
      | Error c -> QCheck2.Test.fail_reportf "%s" (Wire.corruption_to_string c))

let prop_wire_total =
  qtest ~count:500 "Wire.decode never raises" gen_any_bytes (fun s ->
      match Wire.decode s with Ok _ | Error _ -> true)

let prop_wire_truncation_detected =
  (* every proper prefix of an encoded snapshot is a detected defect,
     never a false Ok *)
  QCheck2.Gen.(
    let* payload = string_size ~gen:char (int_range 0 40) in
    let* frac = float_range 0. 1. in
    return (payload, frac))
  |> fun gen ->
  qtest ~count:300 "any truncation is detected" gen (fun (payload, frac) ->
         let whole = Wire.encode payload in
         let cut = int_of_float (frac *. float_of_int (String.length whole)) in
         let cut = min cut (String.length whole - 1) in
         match Wire.decode (String.sub whole 0 cut) with
         | Ok _ -> false
         | Error (Wire.Truncated _ | Wire.Bad_magic) -> true
         | Error c ->
             QCheck2.Test.fail_reportf "unexpected class: %s"
               (Wire.corruption_to_string c))

let test_wire_corruption_classes () =
  let payload = "format=dbp-serve-snapshot\ncursor=12\n" in
  let whole = Wire.encode payload in
  let flip pos s =
    let b = Bytes.of_string s in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a));
    Bytes.to_string b
  in
  (match Wire.decode (flip 0 whole) with
  | Error Wire.Bad_magic -> ()
  | _ -> Alcotest.fail "magic flip undetected");
  (match Wire.decode (flip 7 whole) with
  | Error (Wire.Bad_version v) -> check_bool "version differs" true (v <> Wire.version)
  | _ -> Alcotest.fail "version flip undetected");
  (match Wire.decode (flip 14 whole) with
  | Error (Wire.Digest_mismatch { expected; actual }) ->
      check_bool "digests differ and are hex" true
        ((not (String.equal expected actual))
        && String.length expected = 32
        && String.length actual = 32)
  | _ -> Alcotest.fail "payload flip undetected");
  (match Wire.decode (whole ^ "junk") with
  | Error (Wire.Trailing_garbage { extra }) -> check_int "extra bytes" 4 extra
  | _ -> Alcotest.fail "trailing bytes undetected");
  match Wire.decode (String.sub whole 0 (String.length whole - 3)) with
  | Error (Wire.Truncated { expected; actual }) ->
      check_bool "byte counts carried" true (actual < expected)
  | _ -> Alcotest.fail "truncation undetected"

(* ---- snapshot payload + durability ------------------------------------- *)

let sample_snapshot =
  {
    Snapshot.algo = "best-fit";
    cursor = 420;
    placed = 400;
    rejected = 15;
    skipped = 5;
    bins_ever = 37;
    shed_transitions = 2;
    coarsen_transitions = 1;
    reject_transitions = 1;
    engine_digest = "0123456789abcdef0123456789abcdef";
  }

let test_snapshot_payload_roundtrip () =
  match Snapshot.of_payload (Snapshot.to_payload sample_snapshot) with
  | Ok back ->
      check_bool "roundtrip preserves every field" true (back = sample_snapshot)
  | Error e -> Alcotest.failf "payload rejected: %s" e

let test_snapshot_payload_strict () =
  List.iter
    (fun payload ->
      match Snapshot.of_payload payload with
      | Ok _ -> Alcotest.failf "bad payload accepted: %S" payload
      | Error _ -> ())
    [
      ""; "cursor=12\n"; "format=wrong\ncursor=12\n";
      Snapshot.to_payload sample_snapshot ^ "mystery=1\n";
      "format=dbp-serve-snapshot\ncursor=twelve\n";
    ]

let in_tmp f =
  let dir = Filename.temp_file "dbp_serve_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_snapshot_save_load_rotation () =
  in_tmp (fun dir ->
      let path = Filename.concat dir "snap.bin" in
      (match Snapshot.load ~path with
      | Error (Snapshot.Missing _) -> ()
      | _ -> Alcotest.fail "missing file must report Missing");
      Snapshot.save ~path sample_snapshot;
      (match Snapshot.load ~path with
      | Ok (s, Snapshot.Current) -> check_int "cursor" 420 s.Snapshot.cursor
      | _ -> Alcotest.fail "fresh save unreadable");
      let second = { sample_snapshot with Snapshot.cursor = 840 } in
      Snapshot.save ~path second;
      (match Snapshot.load ~path with
      | Ok (s, Snapshot.Current) -> check_int "newest wins" 840 s.Snapshot.cursor
      | _ -> Alcotest.fail "second save unreadable");
      (* corrupt the current generation: load falls back to .prev *)
      let oc = open_out path in
      output_string oc "DBPSNAPgarbage";
      close_out oc;
      (match Snapshot.load ~path with
      | Ok (s, Snapshot.Previous) ->
          check_int "previous generation used" 420 s.Snapshot.cursor
      | Ok (_, Snapshot.Current) -> Alcotest.fail "corrupt current accepted"
      | Error e -> Alcotest.failf "fallback failed: %s" (Snapshot.error_to_string e));
      (* both generations corrupt: the error is the current one's *)
      let oc = open_out (path ^ ".prev") in
      output_string oc "junk";
      close_out oc;
      match Snapshot.load ~path with
      | Error (Snapshot.Unreadable { path = p; _ }) ->
          check_string "current generation's defect reported" path p
      | _ -> Alcotest.fail "double corruption accepted")

(* ---- session drivers --------------------------------------------------- *)

let scfg ?watermarks ?snapshot_every ?coarsen_factor name =
  match Portfolio.by_name name with
  | Some algo ->
      Session.config ?watermarks ?snapshot_every ?coarsen_factor ~name algo
  | None -> Alcotest.failf "unknown portfolio algorithm %s" name

let jsonl_of_instance inst =
  List.map Arrival.render (Dbp_core.Instance.arrivals_in_order inst)

(* Feed every line at depth 0, mimicking the daemon: collect emitted
   lines, cut snapshots when due.  Fatals fail the test. *)
let drive ?journal ?checkpoint cfg lines =
  let s = Session.create ?journal ?checkpoint cfg in
  let out = ref [] and snaps = ref [] in
  List.iter
    (fun line ->
      match Session.feed s ~depth:0 line with
      | Session.Emit l ->
          out := l :: !out;
          if Session.snapshot_due s then snaps := Session.take_snapshot s :: !snaps
      | Session.Replayed | Session.Skipped _ -> ()
      | Session.Fatal f -> Alcotest.failf "fatal: %s" (Session.fatal_to_string f))
    lines;
  (match Session.finish s with
  | Ok () -> ()
  | Error f -> Alcotest.failf "finish: %s" (Session.fatal_to_string f));
  (List.rev !out, List.rev !snaps, s)

let journal_of_lines lines =
  let rest = ref lines in
  fun () ->
    match !rest with
    | [] -> None
    | l :: tl ->
        rest := tl;
        Some (Decision.parse l)

(* ---- stream engine vs the batch engine --------------------------------- *)

let portfolio_names = Portfolio.names ()

let gen_algo_and_instance =
  QCheck2.Gen.(
    let* ai = int_range 0 (List.length portfolio_names - 1) in
    let* inst = gen_instance ~max_items:14 () in
    return (List.nth portfolio_names ai, inst))

let prop_differential =
  qtest ~count:150 "session decisions = Engine.run placements"
    gen_algo_and_instance (fun (name, inst) ->
      let lines = jsonl_of_instance inst in
      let out, _, session = drive (scfg name) lines in
      let packing = E.run (Option.get (Portfolio.by_name name)) inst in
      List.length out = List.length lines
      && List.for_all
           (fun line ->
             match Decision.parse line with
             | Ok (Decision.Placed { job; bin; _ }) ->
                 Dbp_core.Packing.bin_of_item packing job = bin
             | Ok (Decision.Rejected _) ->
                 QCheck2.Test.fail_reportf "unexpected reject: %s" line
             | Error e -> QCheck2.Test.fail_reportf "unparseable: %s" e)
           out
      && Stream_engine.bins_ever (Session.engine session)
         = Dbp_core.Packing.bin_count packing)

let test_engine_eviction_bounds_state () =
  (* strictly sequential jobs: every bin closes before the next opens,
     so open state stays O(1) while bins_ever grows without bound *)
  let e = Stream_engine.create Dbp_online.Any_fit.first_fit in
  for i = 0 to 99 do
    let t = float_of_int i in
    let item =
      Item.make ~id:i ~size:0.9 ~arrival:t ~departure:(t +. 0.5)
    in
    match Stream_engine.arrive e item with
    | Ok { Stream_engine.bin; opened } ->
        check_int "fresh bin each time" i bin;
        check_bool "always opened" true opened;
        check_int "never more than one open bin" 1 (Stream_engine.open_bins e);
        check_int "never more than one open job" 1 (Stream_engine.open_jobs e)
    | Error err -> Alcotest.failf "arrive: %s" (E.error_to_string err)
  done;
  Stream_engine.drain_until e 1e9;
  check_int "all departed" 0 (Stream_engine.open_jobs e);
  check_int "all bins closed" 0 (Stream_engine.open_bins e);
  check_int "history still counted" 100 (Stream_engine.bins_ever e)

let test_engine_rejects_time_travel () =
  let e = Stream_engine.create Dbp_online.Any_fit.first_fit in
  (match
     Stream_engine.arrive e
       (Item.make ~id:0 ~size:0.5 ~arrival:5. ~departure:6.)
   with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "arrive: %s" (E.error_to_string err));
  check_bool "backwards arrival raises" true
    (match
       Stream_engine.arrive e
         (Item.make ~id:1 ~size:0.5 ~arrival:3. ~departure:9.)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- crash-resume bit-fidelity ----------------------------------------- *)

(* A fixed overlapping-instance for the exhaustive sweep: every cut
   point x every portfolio algorithm. *)
let sweep_instance =
  instance
    [
      (0.6, 0., 4.); (0.6, 0.5, 3.); (0.3, 1., 6.); (0.8, 1.5, 5.);
      (0.2, 2., 7.); (0.5, 2.5, 8.); (0.9, 3., 9.); (0.4, 3.5, 10.);
      (0.35, 4., 11.); (0.55, 5., 12.);
    ]

let resume_check name lines cut =
  let cfg = scfg ~snapshot_every:3 name in
  let full_out, snaps, full_session = drive cfg lines in
  let journal_lines =
    List.filteri (fun i _ -> i < cut) full_out
  in
  (* the newest snapshot the journal prefix reaches, like Daemon.run *)
  let checkpoint =
    List.fold_left
      (fun best s -> if s.Snapshot.cursor <= cut then Some s else best)
      None snaps
    |> Option.map Session.checkpoint_of_snapshot
  in
  let resumed_out, _, resumed_session =
    drive ~journal:(journal_of_lines journal_lines) ?checkpoint cfg lines
  in
  Alcotest.(check (list string))
    (Printf.sprintf "%s cut=%d: journal + resumed output = full stream" name cut)
    full_out
    (journal_lines @ resumed_out);
  check_string
    (Printf.sprintf "%s cut=%d: end-state digests agree" name cut)
    (Stream_engine.digest (Session.engine full_session))
    (Stream_engine.digest (Session.engine resumed_session))

let test_crash_resume_every_algo_every_cut () =
  let lines = jsonl_of_instance sweep_instance in
  List.iter
    (fun name ->
      for cut = 0 to List.length lines do
        resume_check name lines cut
      done)
    portfolio_names

let prop_crash_resume =
  qtest ~count:60 "crash-resume is bit-identical (random algo/instance/cut)"
    QCheck2.Gen.(
      let* pair = gen_algo_and_instance in
      let* cut_frac = float_range 0. 1. in
      return (pair, cut_frac))
    (fun ((name, inst), cut_frac) ->
      let lines = jsonl_of_instance inst in
      let cut =
        int_of_float (cut_frac *. float_of_int (List.length lines))
      in
      resume_check name lines cut;
      true)

(* ---- resume defect detection ------------------------------------------- *)

let feed_all s lines =
  List.fold_left
    (fun acc line ->
      match acc with
      | Some _ -> acc
      | None -> (
          match Session.feed s ~depth:0 line with
          | Session.Fatal f -> Some f
          | _ -> None))
    None lines

let test_resume_detects_wrong_journal () =
  let lines = jsonl_of_instance sweep_instance in
  let full_out, _, _ = drive (scfg "first-fit") lines in
  (* Forge a journal that disagrees with what the algorithm would do:
     bump one Placed entry's bin number.  (Deterministic, unlike pitting
     two algorithms against each other — they may happen to agree.) *)
  let bumped = ref false in
  let wrong_out =
    List.map
      (fun l ->
        match Decision.parse l with
        | Ok (Decision.Placed p) when not !bumped ->
            bumped := true;
            Decision.render (Decision.Placed { p with bin = p.bin + 1 })
        | _ -> l)
      full_out
  in
  check_bool "precondition: some entry was bumped" true !bumped;
  let s =
    Session.create
      ~journal:(journal_of_lines wrong_out)
      (scfg "first-fit")
  in
  match feed_all s lines with
  | Some (Session.Journal_divergence _) -> ()
  | Some f -> Alcotest.failf "wrong fatal: %s" (Session.fatal_to_string f)
  | None -> Alcotest.fail "divergent journal accepted"

let test_resume_detects_corrupt_journal_line () =
  let lines = jsonl_of_instance sweep_instance in
  let full_out, _, _ = drive (scfg "first-fit") lines in
  let corrupted =
    List.mapi (fun i l -> if i = 3 then "{torn" else l) full_out
  in
  let s =
    Session.create ~journal:(journal_of_lines corrupted) (scfg "first-fit")
  in
  match feed_all s lines with
  | Some (Session.Journal_corrupt { seq = 3; _ }) -> ()
  | Some f -> Alcotest.failf "wrong fatal: %s" (Session.fatal_to_string f)
  | None -> Alcotest.fail "corrupt journal accepted"

let test_resume_detects_bogus_checkpoint_digest () =
  let lines = jsonl_of_instance sweep_instance in
  let full_out, _, _ = drive (scfg "first-fit") lines in
  let s =
    Session.create
      ~journal:(journal_of_lines full_out)
      ~checkpoint:{ Session.cursor = 4; digest = "not-a-real-digest" }
      (scfg "first-fit")
  in
  match feed_all s lines with
  | Some (Session.Checkpoint_divergence { cursor = 4; actual_digest = Some _; _ })
    ->
      ()
  | Some f -> Alcotest.failf "wrong fatal: %s" (Session.fatal_to_string f)
  | None -> Alcotest.fail "bogus digest accepted"

let test_resume_detects_checkpoint_past_journal () =
  let lines = jsonl_of_instance sweep_instance in
  let full_out, _, _ = drive (scfg "first-fit") lines in
  let s =
    Session.create
      ~journal:(journal_of_lines (List.filteri (fun i _ -> i < 2) full_out))
      ~checkpoint:{ Session.cursor = 9999; digest = "whatever" }
      (scfg "first-fit")
  in
  match feed_all s lines with
  | Some (Session.Checkpoint_divergence { actual_digest = None; _ }) -> ()
  | Some f -> Alcotest.failf "wrong fatal: %s" (Session.fatal_to_string f)
  | None -> Alcotest.fail "unreachable checkpoint accepted"

let test_finish_rejects_leftover_journal () =
  let lines = jsonl_of_instance sweep_instance in
  let full_out, _, _ = drive (scfg "first-fit") lines in
  let s =
    Session.create ~journal:(journal_of_lines full_out) (scfg "first-fit")
  in
  (* feed only half the input: the journal suffix goes unconsumed *)
  List.iteri
    (fun i line -> if i < 5 then ignore (Session.feed s ~depth:0 line))
    lines;
  match Session.finish s with
  | Error (Session.Journal_divergence _) -> ()
  | Error f -> Alcotest.failf "wrong fatal: %s" (Session.fatal_to_string f)
  | Ok () -> Alcotest.fail "leftover journal accepted"

(* ---- live rejects + skip counting -------------------------------------- *)

let arrival_line ~id ~arrival ~departure =
  Arrival.render (Item.make ~id ~size:0.25 ~arrival ~departure)

let test_out_of_order_and_duplicate_rejects () =
  let s = Session.create (scfg "first-fit") in
  let expect label want line =
    match Session.feed s ~depth:0 line with
    | Session.Emit out -> (
        match Decision.parse out with
        | Ok d -> Alcotest.(check bool) label true (want d)
        | Error e -> Alcotest.failf "unparseable: %s" e)
    | _ -> Alcotest.failf "%s: expected an emitted line" label
  in
  expect "first placed"
    (function Decision.Placed { seq = 0; job = 1; _ } -> true | _ -> false)
    (arrival_line ~id:1 ~arrival:5. ~departure:9.);
  expect "older arrival rejected out_of_order"
    (function
      | Decision.Rejected { seq = 1; job = 2; reason = Decision.Out_of_order; _ }
        ->
          true
      | _ -> false)
    (arrival_line ~id:2 ~arrival:3. ~departure:8.);
  expect "active id rejected as duplicate"
    (function
      | Decision.Rejected { seq = 2; job = 1; reason = Decision.Duplicate; _ } ->
          true
      | _ -> false)
    (arrival_line ~id:1 ~arrival:6. ~departure:10.);
  expect "fresh id at a fresh time placed"
    (function Decision.Placed { seq = 3; job = 3; _ } -> true | _ -> false)
    (arrival_line ~id:3 ~arrival:7. ~departure:11.);
  check_int "rejects counted" 2 (Session.rejected s);
  check_int "placements counted" 2 (Session.placed s)

let prop_exact_skip_counts =
  (* seeded corruption of k distinct lines in an otherwise valid stream:
     the session skips exactly those and places the rest *)
  qtest ~count:100 "corrupted lines are skipped and counted exactly"
    QCheck2.Gen.(
      let* inst = gen_instance ~max_items:14 () in
      let* mask =
        list_size
          (return (Dbp_core.Instance.length inst))
          (int_range 0 3)
      in
      return (inst, mask))
    (fun (inst, mask) ->
      let lines = jsonl_of_instance inst in
      let corrupted =
        List.map2
          (fun line m -> if m = 0 then "\x00not json\xff" else line)
          lines mask
      in
      let bad = List.length (List.filter (fun m -> m = 0) mask) in
      let s = Session.create (scfg "first-fit") in
      let skips = ref 0 and emits = ref 0 in
      List.iter
        (fun line ->
          match Session.feed s ~depth:0 line with
          | Session.Skipped _ -> incr skips
          | Session.Emit _ -> incr emits
          | Session.Replayed -> ()
          | Session.Fatal f ->
              Alcotest.failf "fatal: %s" (Session.fatal_to_string f))
        corrupted;
      !skips = bad
      && Session.skipped s = bad
      && !emits = List.length lines - bad)

(* ---- the degradation ladder -------------------------------------------- *)

let test_admission_rungs () =
  let w = { Admission.shed = 2; coarsen = 4; reject = 6 } in
  Admission.validate w;
  check_int "below shed" 0 (Admission.rung_index (Admission.rung_for w ~depth:1));
  check_int "at shed" 1 (Admission.rung_index (Admission.rung_for w ~depth:2));
  check_int "at coarsen" 2 (Admission.rung_index (Admission.rung_for w ~depth:4));
  check_int "at reject" 3 (Admission.rung_index (Admission.rung_for w ~depth:6));
  check_string "names" "rejecting"
    (Admission.rung_name (Admission.rung_for w ~depth:100));
  check_bool "bad ordering refused" true
    (match Admission.validate { Admission.shed = 5; coarsen = 4; reject = 6 } with
    | exception Invalid_argument _ -> true
    | () -> false);
  check_bool "zero shed refused" true
    (match Admission.validate { Admission.shed = 0; coarsen = 4; reject = 6 } with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_ladder_transitions_and_overload_reject () =
  let watermarks = { Admission.shed = 2; coarsen = 4; reject = 6 } in
  let s = Session.create (scfg ~watermarks "first-fit") in
  let feed ~depth ~id t =
    Session.feed s ~depth (arrival_line ~id ~arrival:t ~departure:(t +. 10.))
  in
  (match feed ~depth:0 ~id:0 1. with
  | Session.Emit _ -> ()
  | _ -> Alcotest.fail "normal depth places");
  check_string "starts normal" "normal" (Admission.rung_name (Session.rung s));
  (match feed ~depth:2 ~id:1 2. with
  | Session.Emit _ -> ()
  | _ -> Alcotest.fail "shedding still places");
  check_string "shedding entered" "shedding"
    (Admission.rung_name (Session.rung s));
  (match feed ~depth:4 ~id:2 3. with
  | Session.Emit _ -> ()
  | _ -> Alcotest.fail "coarsening still places");
  (match feed ~depth:7 ~id:3 4. with
  | Session.Emit line -> (
      match Decision.parse line with
      | Ok (Decision.Rejected { reason = Decision.Overload; _ }) -> ()
      | _ -> Alcotest.failf "expected an overload reject, got %s" line)
  | _ -> Alcotest.fail "rejecting rung must emit a reject line");
  (match feed ~depth:0 ~id:4 5. with
  | Session.Emit _ -> ()
  | _ -> Alcotest.fail "recovery places again");
  check_string "recovered to normal" "normal"
    (Admission.rung_name (Session.rung s));
  let shed, coarsen, reject = Session.transitions s in
  check_int "one transition into shedding" 1 shed;
  check_int "one transition into coarsening" 1 coarsen;
  check_int "one transition into rejecting" 1 reject

let test_coarsening_multiplies_snapshot_cadence () =
  let watermarks = { Admission.shed = 2; coarsen = 4; reject = 100 } in
  let cfg = scfg ~watermarks ~snapshot_every:2 ~coarsen_factor:3 "first-fit" in
  let s = Session.create cfg in
  let feed ~depth ~id t =
    ignore (Session.feed s ~depth (arrival_line ~id ~arrival:t ~departure:(t +. 50.)))
  in
  feed ~depth:0 ~id:0 1.;
  check_bool "one line: not due" false (Session.snapshot_due s);
  feed ~depth:0 ~id:1 2.;
  check_bool "two lines: due at the base cadence" true (Session.snapshot_due s);
  ignore (Session.take_snapshot s);
  check_bool "cadence clock reset" false (Session.snapshot_due s);
  (* climb to the coarsening rung: cadence is now 2 * 3 = 6 *)
  feed ~depth:4 ~id:2 3.;
  feed ~depth:4 ~id:3 4.;
  check_bool "two lines under coarsening: not due" false (Session.snapshot_due s);
  feed ~depth:4 ~id:4 5.;
  feed ~depth:4 ~id:5 6.;
  feed ~depth:4 ~id:6 7.;
  check_bool "five lines: still not due" false (Session.snapshot_due s);
  feed ~depth:4 ~id:7 8.;
  check_bool "six lines: due at the coarsened cadence" true
    (Session.snapshot_due s)

let test_session_metrics_registry () =
  let registry = Dbp_obs.Metrics.create () in
  let watermarks = { Admission.shed = 1; coarsen = 2; reject = 3 } in
  let s = Session.create ~metrics:registry (scfg ~watermarks "first-fit") in
  ignore (Session.feed s ~depth:0 (arrival_line ~id:0 ~arrival:1. ~departure:5.));
  ignore (Session.feed s ~depth:3 (arrival_line ~id:1 ~arrival:2. ~departure:6.));
  ignore (Session.feed s ~depth:0 "garbage");
  let counter name labels =
    Dbp_obs.Metrics.counter_value
      (Dbp_obs.Metrics.counter registry ~labels name)
  in
  check_float "lines counted" 3. (counter "dbp_serve_lines_total" []);
  check_float "placements counted" 1. (counter "dbp_serve_placed_total" []);
  check_float "overload rejects counted" 1.
    (counter "dbp_serve_rejected_total" [ ("reason", "overload") ]);
  check_float "skips counted" 1. (counter "dbp_serve_skipped_lines_total" []);
  check_float "rejecting-rung transition counted" 1.
    (counter "dbp_serve_rung_transitions_total" [ ("rung", "rejecting") ]);
  check_float "queue-depth gauge tracks the last feed" 0.
    (Dbp_obs.Metrics.gauge_value
       (Dbp_obs.Metrics.gauge registry "dbp_serve_queue_depth"))

(* ---- obs additions: health + streaming trace --------------------------- *)

let test_health_gauges () =
  let registry = Dbp_obs.Metrics.create () in
  let fake = Dbp_obs.Clock.fake ~start:100. () in
  let h =
    Dbp_obs.Health.create ~clock:(Dbp_obs.Clock.of_fake fake) registry
  in
  Dbp_obs.Clock.advance fake 7.5;
  Dbp_obs.Health.tick h;
  check_float "uptime tracks the injected clock" 7.5
    (Dbp_obs.Metrics.gauge_value
       (Dbp_obs.Metrics.gauge registry "dbp_process_uptime_seconds"));
  check_bool "heap gauge is populated" true
    (Dbp_obs.Metrics.gauge_value
       (Dbp_obs.Metrics.gauge registry "dbp_process_heap_words")
    > 0.)

let test_streaming_observer_matches_recorder () =
  let inst = sweep_instance in
  let algo () = Dbp_online.Any_fit.best_fit in
  let recorder = Dbp_obs.Trace.create () in
  ignore (E.run ~observer:(Dbp_obs.Trace.observer recorder) (algo ()) inst);
  let streamed = ref [] in
  ignore
    (E.run
       ~observer:
         (Dbp_obs.Trace.streaming_observer ~sink:(fun l ->
              streamed := l :: !streamed))
       (algo ()) inst);
  Alcotest.(check (list string))
    "streamed lines = recorded lines"
    (List.map Dbp_obs.Trace.jsonl_of_event (Dbp_obs.Trace.events recorder))
    (List.rev !streamed)

let suite =
  [
    prop_json_lite_total;
    prop_arrival_total;
    prop_decision_total;
    prop_lenient_trace_total;
    Alcotest.test_case "hostile arrival bytes" `Quick test_arrival_hostile_bytes;
    Alcotest.test_case "unknown fields ignored" `Quick
      test_arrival_ignores_unknown_fields;
    prop_arrival_roundtrip;
    prop_decision_roundtrip;
    prop_wire_roundtrip;
    prop_wire_total;
    prop_wire_truncation_detected;
    Alcotest.test_case "wire corruption classes" `Quick
      test_wire_corruption_classes;
    Alcotest.test_case "snapshot payload roundtrip" `Quick
      test_snapshot_payload_roundtrip;
    Alcotest.test_case "snapshot payload strictness" `Quick
      test_snapshot_payload_strict;
    Alcotest.test_case "snapshot save/load/rotation" `Quick
      test_snapshot_save_load_rotation;
    prop_differential;
    Alcotest.test_case "eviction bounds live state" `Quick
      test_engine_eviction_bounds_state;
    Alcotest.test_case "time travel refused" `Quick
      test_engine_rejects_time_travel;
    Alcotest.test_case "crash-resume: every algo, every cut" `Quick
      test_crash_resume_every_algo_every_cut;
    prop_crash_resume;
    Alcotest.test_case "wrong journal detected" `Quick
      test_resume_detects_wrong_journal;
    Alcotest.test_case "corrupt journal line detected" `Quick
      test_resume_detects_corrupt_journal_line;
    Alcotest.test_case "bogus checkpoint digest detected" `Quick
      test_resume_detects_bogus_checkpoint_digest;
    Alcotest.test_case "checkpoint past journal detected" `Quick
      test_resume_detects_checkpoint_past_journal;
    Alcotest.test_case "leftover journal refused at finish" `Quick
      test_finish_rejects_leftover_journal;
    Alcotest.test_case "out-of-order + duplicate rejects" `Quick
      test_out_of_order_and_duplicate_rejects;
    prop_exact_skip_counts;
    Alcotest.test_case "admission rung boundaries" `Quick test_admission_rungs;
    Alcotest.test_case "ladder transitions + overload reject" `Quick
      test_ladder_transitions_and_overload_reject;
    Alcotest.test_case "coarsening multiplies snapshot cadence" `Quick
      test_coarsening_multiplies_snapshot_cadence;
    Alcotest.test_case "session metrics registry" `Quick
      test_session_metrics_registry;
    Alcotest.test_case "health gauges" `Quick test_health_gauges;
    Alcotest.test_case "streaming observer = recorder" `Quick
      test_streaming_observer_matches_recorder;
  ]
