(* Shared builders and generators for the test suite. *)

open Dbp_core

let item ?(id = 0) ?(size = 0.5) arrival departure =
  Item.make ~id ~size ~arrival ~departure

(* Items with distinct ids from a (size, arrival, departure) list. *)
let items specs =
  List.mapi
    (fun id (size, arrival, departure) -> Item.make ~id ~size ~arrival ~departure)
    specs

let instance specs = Instance.of_items (items specs)

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let interval = Alcotest.testable Interval.pp Interval.equal

(* ---- qcheck generators ---- *)

(* A random valid item: size in (0, 1], arrival in [0, 20), duration in
   (0.1, 10]. *)
let gen_item_with_id id =
  QCheck2.Gen.(
    let* size = float_range 0.01 1.0 in
    let* arrival = float_range 0. 20. in
    let* duration = float_range 0.1 10. in
    return (Item.make ~id ~size ~arrival ~departure:(arrival +. duration)))

let gen_instance ?(max_items = 12) () =
  QCheck2.Gen.(
    let* n = int_range 1 max_items in
    let* items =
      flatten_l (List.init n (fun id -> gen_item_with_id id))
    in
    return (Instance.of_items items))

(* Small items only (size <= 1/2), for demand-chart properties. *)
let gen_small_instance ?(max_items = 10) () =
  QCheck2.Gen.(
    let* n = int_range 1 max_items in
    let* items =
      flatten_l
        (List.init n (fun id ->
             let* size = float_range 0.01 0.5 in
             let* arrival = float_range 0. 20. in
             let* duration = float_range 0.1 10. in
             return (Item.make ~id ~size ~arrival ~departure:(arrival +. duration))))
    in
    return (Instance.of_items items))

(* ---- adversarial generators for the flat-engine differential suite ----

   These target the batched-departure drain and the flat heap's
   tie-breaking: every timestamp is shared by many events, so any
   ordering or flush mistake in the arena/dirty-stack machinery shows up
   as a divergence from the reference engine. *)

(* Integer-grid bursts: arrivals land on instants 0..4 and durations are
   whole numbers 1..3, so departures collide with arrivals (and with
   each other) at almost every instant.  Sizes come from a discrete set
   so several bins fill to exactly 1.0. *)
let gen_burst_instance ?(max_items = 60) () =
  QCheck2.Gen.(
    let sizes = [| 0.1; 0.2; 0.25; 0.3; 0.5; 0.5; 1.0 |] in
    let* n = int_range 2 max_items in
    let* items =
      flatten_l
        (List.init n (fun id ->
             let* size = oneofa sizes in
             let* arrival = int_range 0 4 in
             let* duration = int_range 1 3 in
             let arrival = float_of_int arrival in
             return
               (Item.make ~id ~size ~arrival
                  ~departure:(arrival +. float_of_int duration))))
    in
    return (Instance.of_items items))

(* One-ulp jobs: departure = Float.succ arrival is the shortest lifetime
   Item.make accepts ("zero-duration" up to representability).  Mixed
   with normal integer-duration jobs at the same instants, they force a
   bin to open and close inside a single drain cycle while longer jobs
   arrive at the very same timestamp. *)
let gen_tiny_duration_instance ?(max_items = 40) () =
  QCheck2.Gen.(
    let* n = int_range 2 max_items in
    let* items =
      flatten_l
        (List.init n (fun id ->
             let* size = float_range 0.05 1.0 in
             let* arrival = int_range 0 5 in
             let arrival = float_of_int arrival in
             let* tiny = bool in
             let* duration = int_range 1 4 in
             let departure =
               if tiny then Float.succ arrival
               else arrival +. float_of_int duration
             in
             return (Item.make ~id ~size ~arrival ~departure)))
    in
    return (Instance.of_items items))

(* Monotone-duration ramps: cohorts arrive together and their durations
   ramp up or down with rank, so departures within a cohort fire in
   strictly increasing (or decreasing-id) order — a worst case for the
   heap's (time, kind, id) tie-break and for arena slot reuse, since
   bins drain one item per instant. *)
let gen_ramp_instance ?(max_cohorts = 5) ?(max_cohort_size = 8) () =
  QCheck2.Gen.(
    let* cohorts = int_range 1 max_cohorts in
    let* per = int_range 2 max_cohort_size in
    let* increasing = bool in
    let items =
      List.concat
        (List.init cohorts (fun c ->
             List.init per (fun rank ->
                 let id = (c * per) + rank in
                 let arrival = float_of_int c in
                 let step =
                   if increasing then float_of_int rank
                   else float_of_int (per - 1 - rank)
                 in
                 let duration = 0.5 +. (0.25 *. step) in
                 let size = 0.15 +. (0.05 *. float_of_int (rank mod 5)) in
                 Item.make ~id ~size ~arrival ~departure:(arrival +. duration))))
    in
    return (Instance.of_items items))

(* Fixed seed so test runs are reproducible (override with QCHECK_SEED). *)
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0xdbb |])
    (QCheck2.Test.make ~count ~name gen prop)

(* Every algorithm output must be a valid packing; Packing.of_bins already
   validates, so just force the packing and return usage. *)
let usage_of pack inst = Packing.total_usage_time (pack inst)
