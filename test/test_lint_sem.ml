(* The semantic lint phase (R10-R12): fixtures are copied into a temp
   tree laid out like the repo (lib/sim/, lib/serve/), compiled to .cmt
   with ocamlc -bin-annot, and linted from inside the tree so the typed
   rules see real resolved paths and real artifacts.  Positions are
   pinned exactly; the meta tests at the end verify the shipped lib/ is
   R10-R12 clean and that every documented-total parser carries
   [@dbp.total]. *)

open Dbp_lint

let fixture name = Filename.concat "fixtures/lint_sem" name

(* (rule, line, col) triples, in reported order. *)
let hits = Alcotest.(list (triple string int int))

let hits_of findings =
  List.map (fun f -> (Finding.rule f, Finding.line f, Finding.col f)) findings

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let rec mkdir_p dir =
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

(* Copy fixtures ((name, dest-relative path, compile?) triples) into a
   fresh temp tree, compile the flagged ones to side-by-side .cmt
   artifacts, chdir into the tree and run [f].  Compiling from inside
   the tree keeps artifact locations root-relative, matching what the
   driver reports. *)
let with_corpus files f =
  let dir = Filename.temp_dir "dbp_lint_sem" "" in
  let cwd = Sys.getcwd () in
  Fun.protect
    ~finally:(fun () ->
      Sys.chdir cwd;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      List.iter
        (fun (name, dest, _) ->
          let target = Filename.concat dir dest in
          mkdir_p (Filename.dirname target);
          write_file target (read_file (fixture name)))
        files;
      Sys.chdir dir;
      List.iter
        (fun (_, dest, compile) ->
          if compile then
            let cmd =
              Printf.sprintf "ocamlc -bin-annot -c -I +unix %s 2>/dev/null"
                (Filename.quote dest)
            in
            if Sys.command cmd <> 0 then
              Alcotest.failf "fixture %s does not compile" dest)
        files;
      f ())

let sem ~rules roots = Driver.lint_tree ~semantic:true ~rules roots

let message_has f needle =
  Alcotest.(check bool)
    (Printf.sprintf "message mentions %S" needle)
    true
    (Str_exists.contains_substring (Finding.message f) needle)

let hint_has f needle =
  Alcotest.(check bool)
    (Printf.sprintf "hint mentions %S" needle)
    true
    (Str_exists.contains_substring (Finding.hint f) needle)

let test_r10_alias () =
  with_corpus
    [ ("alias_unix.ml", "lib/sim/alias_unix.ml", true) ]
    (fun () ->
      match sem ~rules:[ "R10" ] [ "lib" ] with
      | [ f ] as findings ->
          Alcotest.check hits "exactly one R10 at the aliased use"
            [ ("R10", 4, 13) ] (hits_of findings);
          message_has f "Unix.getpid";
          message_has f "resolved from U.getpid"
      | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs))

let test_r10_open () =
  with_corpus
    [ ("open_clock.ml", "lib/sim/open_clock.ml", true) ]
    (fun () ->
      match sem ~rules:[ "R10" ] [ "lib" ] with
      | [ f ] as findings ->
          Alcotest.check hits "exactly one R10 at the opened clock read"
            [ ("R10", 5, 13) ] (hits_of findings);
          message_has f "Unix.gettimeofday";
          message_has f "resolved from gettimeofday"
      | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs))

let test_r11_total_raises () =
  with_corpus
    [ ("total_raises.ml", "lib/sim/total_raises.ml", true) ]
    (fun () ->
      match sem ~rules:[ "R11" ] [ "lib" ] with
      | [ f ] as findings ->
          Alcotest.check hits "exactly one R11 at the definition"
            [ ("R11", 3, 0) ] (hits_of findings);
          message_has f "may raise: Failure";
          hint_has f "call to List.hd"
      | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs))

let test_r11_caught_is_clean () =
  with_corpus
    [ ("caught_total.ml", "lib/sim/caught_total.ml", true) ]
    (fun () ->
      Alcotest.check hits "caught exception leaves no residual" []
        (hits_of (sem ~rules:[ "R10"; "R11"; "R12" ] [ "lib" ])))

let test_r12_randomness () =
  with_corpus
    [ ("session.ml", "lib/serve/session.ml", true) ]
    (fun () ->
      match sem ~rules:[ "R12" ] [ "lib" ] with
      | [ direct; transitive ] as findings ->
          Alcotest.check hits "both decision-path defs flagged"
            [ ("R12", 3, 0); ("R12", 5, 0) ]
            (hits_of findings);
          message_has direct "randomness";
          hint_has direct "Random.float";
          (* the second finding's taint is one call away; the hint walks
             the chain through the tainted callee *)
          hint_has transitive "Session.jitter";
          hint_has transitive "Random.float"
      | fs -> Alcotest.failf "expected two findings, got %d" (List.length fs))

(* PR 9 designations: router.ml and http.ml joined r12_targets, so a
   seeded taint compiled at those paths must surface — proving the
   table entries actually cover the new modules. *)
let test_r12_router_designated () =
  with_corpus
    [ ("router_tainted.ml", "lib/serve/router.ml", true) ]
    (fun () ->
      match sem ~rules:[ "R12" ] [ "lib" ] with
      | [ f ] as findings ->
          Alcotest.check hits "one R12 at the tainted router def"
            [ ("R12", 4, 0) ] (hits_of findings);
          message_has f "wall-clock";
          hint_has f "Unix.gettimeofday"
      | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs))

let test_r12_http_designated () =
  with_corpus
    [ ("http_tainted.ml", "lib/serve/http.ml", true) ]
    (fun () ->
      match sem ~rules:[ "R12" ] [ "lib" ] with
      | [ f ] as findings ->
          Alcotest.check hits "one R12 at the tainted parser def"
            [ ("R12", 6, 0) ] (hits_of findings);
          message_has f "concurrency";
          hint_has f "Domain.spawn"
      | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs))

(* PR 10 designation: analyze.ml joined r12_targets (the span-pipeline
   reporter must stay byte-deterministic), same proof obligation. *)
let test_r12_analyze_designated () =
  with_corpus
    [ ("analyze_tainted.ml", "lib/serve/analyze.ml", true) ]
    (fun () ->
      match sem ~rules:[ "R12" ] [ "lib" ] with
      | [ f ] as findings ->
          Alcotest.check hits "one R12 at the tainted reporter def"
            [ ("R12", 5, 0) ] (hits_of findings);
          message_has f "wall-clock";
          hint_has f "Unix.gettimeofday"
      | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs))

let test_semantic_suppression () =
  with_corpus
    [ ("suppressed_alias.ml", "lib/sim/suppressed_alias.ml", true) ]
    (fun () ->
      Alcotest.check hits
        "allow R10 covers the resolved-use site, marker counted as used"
        []
        (hits_of (sem ~rules:[ "R0"; "R10" ] [ "lib" ])))

let test_unused_semantic_marker () =
  with_corpus
    [ ("unused_allow.ml", "lib/sim/unused_allow.ml", true) ]
    (fun () ->
      match sem ~rules:[ "R0"; "R11" ] [ "lib" ] with
      | [ f ] as findings ->
          Alcotest.check hits "stale allow R11 surfaces as R0"
            [ ("R0", 1, 0) ] (hits_of findings);
          message_has f "unused suppression for R11"
      | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs))

let test_c0_missing_artifact () =
  with_corpus
    [ ("alias_unix.ml", "lib/sim/alias_unix.ml", false) ]
    (fun () ->
      match sem ~rules:[ "R10" ] [ "lib" ] with
      | [ f ] ->
          Alcotest.(check string)
            "C0 passes the rule filter" "C0" (Finding.rule f);
          message_has f "no .cmt artifact"
      | fs -> Alcotest.failf "expected one C0, got %d" (List.length fs))

let test_c0_stale_artifact () =
  with_corpus
    [ ("alias_unix.ml", "lib/sim/alias_unix.ml", true) ]
    (fun () ->
      let path = "lib/sim/alias_unix.ml" in
      write_file path (read_file path ^ "(* touched after compile *)\n");
      match sem ~rules:[ "R10" ] [ "lib" ] with
      | [ f ] ->
          Alcotest.(check string)
            "edited source degrades to C0" "C0" (Finding.rule f);
          message_has f "stale artifact"
      | fs -> Alcotest.failf "expected one C0, got %d" (List.length fs))

let test_overlapping_roots_dedupe () =
  with_corpus
    [ ("alias_unix.ml", "lib/sim/alias_unix.ml", true) ]
    (fun () ->
      Alcotest.(check (list string))
        "overlapping roots collect each file once"
        [ "lib/sim/alias_unix.ml" ]
        (Driver.collect_files [ "lib"; "lib/sim" ]);
      Alcotest.check hits "findings are not double-reported"
        [ ("R10", 4, 13) ]
        (hits_of (sem ~rules:[ "R10" ] [ "lib"; "lib/sim" ])))

(* ---- meta tests against the real tree --------------------------------- *)

(* Tests run from test/ inside the build tree; the repo root (where
   lib/ and the dune artifacts live) is the nearest ancestor with a
   dune-project. *)
let in_repo_root f =
  let rec find_root dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then Alcotest.fail "no dune-project above cwd"
      else find_root parent
  in
  let cwd = Sys.getcwd () in
  Fun.protect
    ~finally:(fun () -> Sys.chdir cwd)
    (fun () ->
      Sys.chdir (find_root cwd);
      f ())

(* Every parser documented as total must carry the attribute; the clean
   meta test below then proves the annotations verify. *)
let expected_total =
  [
    ( "lib/serve/json_lite.ml",
      [
        "Dbp_serve.Json_lite.parse_object";
        "Dbp_serve.Json_lite.field";
        "Dbp_serve.Json_lite.num_field";
        "Dbp_serve.Json_lite.int_field";
      ] );
    ( "lib/serve/arrival.ml",
      [ "Dbp_serve.Arrival.parse"; "Dbp_serve.Arrival.parse_into" ] );
    ("lib/serve/decision.ml", [ "Dbp_serve.Decision.parse" ]);
    ("lib/serve/router.ml", [ "Dbp_serve.Router.parse_overrides" ]);
    ( "lib/serve/http.ml",
      [ "Dbp_serve.Http.request_complete"; "Dbp_serve.Http.parse_request" ] );
    ("lib/serve/wire.ml", [ "Dbp_serve.Wire.decode" ]);
    ("lib/serve/snapshot.ml", [ "Dbp_serve.Snapshot.of_payload" ]);
    ("lib/workload/trace.ml", [ "Dbp_workload.Trace.of_string_lenient" ]);
  ]

let test_parsers_annotated () =
  in_repo_root (fun () ->
      List.iter
        (fun (file, ids) ->
          match Cmt_loader.load file with
          | Error e ->
              Alcotest.failf "loading %s: %s" file e.Cmt_loader.e_reason
          | Ok unit ->
              let g =
                Callgraph.build ~file ~modname:unit.Cmt_loader.modname
                  unit.Cmt_loader.structure
              in
              List.iter
                (fun id ->
                  match
                    List.find_opt
                      (fun (d : Callgraph.def) -> d.d_id = id)
                      g.Callgraph.g_defs
                  with
                  | Some d ->
                      Alcotest.(check bool)
                        (id ^ " carries [@dbp.total]")
                        true d.Callgraph.d_total
                  | None -> Alcotest.failf "%s not found in %s" id file)
                ids)
        expected_total)

let test_repo_tree_semantic_clean () =
  in_repo_root (fun () ->
      Alcotest.(check (list string))
        "lib/ is R10-R12 clean" []
        (List.map Finding.to_string
           (Driver.lint_tree ~semantic:true
              ~rules:[ "R10"; "R11"; "R12" ]
              [ "lib" ])))

let suite =
  [
    Alcotest.test_case "R10 alias-smuggled Unix" `Quick test_r10_alias;
    Alcotest.test_case "R10 open-smuggled clock read" `Quick test_r10_open;
    Alcotest.test_case "R11 raising [@dbp.total]" `Quick
      test_r11_total_raises;
    Alcotest.test_case "R11 caught exception is clean" `Quick
      test_r11_caught_is_clean;
    Alcotest.test_case "R12 randomness reachability" `Quick
      test_r12_randomness;
    Alcotest.test_case "R12 covers the shard router" `Quick
      test_r12_router_designated;
    Alcotest.test_case "R12 covers the HTTP parser" `Quick
      test_r12_http_designated;
    Alcotest.test_case "R12 covers the analyze reporter" `Quick
      test_r12_analyze_designated;
    Alcotest.test_case "suppression covers semantic findings" `Quick
      test_semantic_suppression;
    Alcotest.test_case "unused semantic marker is R0" `Quick
      test_unused_semantic_marker;
    Alcotest.test_case "C0 on missing artifact" `Quick
      test_c0_missing_artifact;
    Alcotest.test_case "C0 on stale artifact" `Quick test_c0_stale_artifact;
    Alcotest.test_case "overlapping roots dedupe" `Quick
      test_overlapping_roots_dedupe;
    Alcotest.test_case "meta: parsers carry [@dbp.total]" `Quick
      test_parsers_annotated;
    Alcotest.test_case "meta: lib is R10-R12 clean" `Quick
      test_repo_tree_semantic_clean;
  ]
