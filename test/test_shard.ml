(* The sharded dbp serve stack (PR 9): router purity and algebra, the
   zero-alloc arrival parse against the generic parser (differential),
   buffered decision rendering, merge determinism of Shard.run,
   exhaustive clean-cut crash-resume byte-fidelity, torn-tail recovery,
   and the HTTP listener's hostile-client posture. *)

open Helpers
open Dbp_serve
module Item = Dbp_core.Item

(* ---- router: purity, stability, algebra -------------------------------- *)

let gen_tenant = QCheck2.Gen.(string_size ~gen:char (int_range 0 24))

let prop_router_stable =
  let gen =
    QCheck2.Gen.(
      let* t = gen_tenant in
      let* shards = int_range 1 16 in
      return (t, shards))
  in
  qtest ~count:300 "routing is stable across router instances" gen
    (fun (t, shards) ->
      let a = Router.create ~shards () in
      let b = Router.create ~shards () in
      let k = Router.shard_for a t in
      k = Router.shard_for b t && 0 <= k && k < shards)

let prop_router_divisibility =
  let gen =
    QCheck2.Gen.(
      let* t = gen_tenant in
      let* m = int_range 1 5 in
      let* factor = int_range 1 5 in
      return (t, m, factor))
  in
  qtest ~count:300 "m | n => shard under n mod m = shard under m" gen
    (fun (t, m, factor) ->
      let n = m * factor in
      let rn = Router.create ~shards:n () in
      let rm = Router.create ~shards:m () in
      Router.shard_for rn t mod m = Router.shard_for rm t)

let prop_hash_sub =
  let gen =
    QCheck2.Gen.(
      let* s = string_size ~gen:char (int_range 0 40) in
      let* off = int_range 0 (String.length s) in
      let* len = int_range 0 (String.length s - off) in
      return (s, off, len))
  in
  qtest ~count:300 "hash_sub = hash of the substring" gen
    (fun (s, off, len) ->
      Router.hash_sub s ~off ~len = Router.hash (String.sub s off len))

let test_router_overrides () =
  let r = Router.create ~overrides:[ ("noisy", 3) ] ~shards:4 () in
  check_int "override wins" 3 (Router.shard_for r "noisy");
  check_int "override count" 1 (Router.overrides r);
  let hashed = Router.create ~shards:4 () in
  check_int "other tenants unaffected"
    (Router.shard_for hashed "quiet")
    (Router.shard_for r "quiet");
  (match Router.create ~overrides:[ ("t", 4) ] ~shards:4 () with
  | _ -> Alcotest.fail "out-of-range override accepted"
  | exception Invalid_argument _ -> ());
  (match Router.create ~overrides:[ ("t", 0); ("t", 1) ] ~shards:4 () with
  | _ -> Alcotest.fail "duplicate override accepted"
  | exception Invalid_argument _ -> ());
  match Router.create ~shards:0 () with
  | _ -> Alcotest.fail "zero shards accepted"
  | exception Invalid_argument _ -> ()

let test_parse_overrides () =
  (match
     Router.parse_overrides "# comment\n\n  alpha = 2 \nbeta=0\n"
   with
  | Ok [ ("alpha", 2); ("beta", 0) ] -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.failf "unexpected error: %s" e);
  (* "=3" pins the default (empty) tenant — legitimately parseable *)
  (match Router.parse_overrides "=3" with
  | Ok [ ("", 3) ] -> ()
  | _ -> Alcotest.fail "default-tenant pin rejected");
  List.iter
    (fun bad ->
      match Router.parse_overrides bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [ "tenant"; "tenant=notanint"; "tenant=-1" ]

let prop_parse_overrides_total =
  qtest ~count:300 "parse_overrides never raises"
    QCheck2.Gen.(string_size ~gen:char (int_range 0 120))
    (fun s ->
      match Router.parse_overrides s with Ok _ | Error _ -> true)

(* ---- parse_into: differential against the generic parser --------------- *)

let gen_any_bytes = QCheck2.Gen.(string_size ~gen:char (int_range 0 120))

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let same_item a b =
  Item.id a = Item.id b
  && same_float (Item.size a) (Item.size b)
  && same_float (Item.arrival a) (Item.arrival b)
  && same_float (Item.departure a) (Item.departure b)

(* One scratch reused across every generated line, like the router
   thread does — stale state leaking between parses would surface as a
   disagreement. *)
let shared_scratch = Arrival.scratch ()

let agree line =
  match (Arrival.parse line, Arrival.parse_into shared_scratch line) with
  | Ok item, Ok () -> same_item item (Arrival.item shared_scratch)
  | Error _, Error _ -> true
  | Ok _, Error _ | Error _, Ok _ -> false

let prop_parse_into_differential_bytes =
  qtest ~count:500 "parse_into agrees with parse on arbitrary bytes"
    gen_any_bytes agree

(* Tenants drawn from the bytes Json_lite.escape can round-trip: the
   printable range plus the named escapes.  (Control chars outside
   \n\t\r render as \u00xx, which the lenient parser — either of them —
   rejects by design.) *)
let gen_roundtrip_tenant =
  QCheck2.Gen.(
    string_size
      ~gen:(oneof [ char_range ' ' '~'; oneofl [ '\n'; '\t'; '\r' ] ])
      (int_range 0 24))

let gen_rendered_arrival =
  QCheck2.Gen.(
    let* item = gen_item_with_id 4242 in
    let* tenant =
      oneof
        [
          return None;
          map Option.some gen_roundtrip_tenant;
          return (Some "esc\t\"ape\\d");
        ]
    in
    return (Arrival.render ?tenant item, tenant))

let prop_parse_into_rendered =
  qtest ~count:300 "parse_into parses rendered arrivals, tenant intact"
    gen_rendered_arrival
    (fun (line, tenant) ->
      agree line
      &&
      match Arrival.parse_into shared_scratch line with
      | Error _ -> false
      | Ok () ->
          let want =
            match tenant with
            | Some t when String.length t > 0 -> t
            | _ -> Router.default_tenant
          in
          String.equal (Arrival.tenant shared_scratch) want)

let test_parse_into_hostile_bytes () =
  List.iter
    (fun line ->
      check_bool "parse/parse_into agree on hostile input" true (agree line))
    [
      "\x00{\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":1}";
      "{\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":1}\x00";
      "{\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":1";
      "{\"id\":1.5,\"size\":0.5,\"arrival\":0,\"departure\":1}";
      "{\"id\":1,\"size\":0.5,\"arrival\":0}";
      "{\"id\":1,\"id\":2,\"size\":0.5,\"arrival\":0,\"departure\":1}";
      "{\"id\":1,\"size\":\"big\",\"arrival\":0,\"departure\":1}";
      "{\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":1,\"x\":[1]}";
      "{\"tenant\":7,\"id\":1,\"size\":0.5,\"arrival\":0,\"departure\":1}";
      "{\"tenant\":\"a\",\"tenant\":\"b\",\"id\":1,\"size\":0.5,\
       \"arrival\":0,\"departure\":1}";
      "{}";
      "";
      "[1,2,3]";
      String.make 100_000 'x';
    ]

let prop_shard_for_consistent =
  qtest ~count:300 "shard_for on the slice = shard_for on the tenant"
    gen_rendered_arrival
    (fun (line, _) ->
      match Arrival.parse_into shared_scratch line with
      | Error _ -> true
      | Ok () ->
          let r = Router.create ~shards:5 () in
          Arrival.shard_for r shared_scratch
          = Router.shard_for r (Arrival.tenant shared_scratch))

(* ---- render_into: differential against render --------------------------- *)

let gen_decision =
  QCheck2.Gen.(
    let* seq = int_range 0 1_000_000 in
    let* job = int_range 0 1_000_000 in
    let* time = float_range 0. 1000. in
    oneof
      [
        (let* bin = int_range 0 500 in
         let* opened = bool in
         return (Decision.Placed { seq; job; bin; opened; time }));
        (let* reason =
           oneofl Decision.[ Overload; Out_of_order; Duplicate ]
         in
         return (Decision.Rejected { seq; job; reason; time }));
      ])

let prop_render_into =
  qtest ~count:300 "render_into produces exactly render's bytes" gen_decision
    (fun d ->
      let buf = Buffer.create 64 in
      Decision.render_into buf d;
      String.equal (Buffer.contents buf) (Decision.render d))

let test_render_into_batches () =
  let ds =
    [
      Decision.Placed { seq = 0; job = 9; bin = 0; opened = true; time = 0.5 };
      Decision.Rejected
        { seq = 1; job = 10; reason = Decision.Overload; time = 1.25 };
    ]
  in
  let buf = Buffer.create 64 in
  List.iter
    (fun d ->
      Decision.render_into buf d;
      Buffer.add_char buf '\n')
    ds;
  check_string "buffer accumulates one line per decision"
    (String.concat "" (List.map (fun d -> Decision.render d ^ "\n") ds))
    (Buffer.contents buf)

(* ---- Shard.run: merge determinism and crash-resume ---------------------- *)

let scfg ?snapshot_every name =
  match Portfolio.by_name name with
  | Some algo -> Session.config ?snapshot_every ~name algo
  | None -> Alcotest.failf "unknown portfolio algorithm %s" name

let in_tmp f =
  let dir = Filename.temp_file "dbp_shard_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let read_file path =
  if Sys.file_exists path then
    In_channel.with_open_bin path In_channel.input_all
  else ""

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let lines_of s =
  List.filter (fun l -> String.length l > 0) (String.split_on_char '\n' s)

(* A deterministic tenant-striped workload: ids ascending, arrivals
   non-decreasing, three named tenants plus the default (no field). *)
let tenant_of i =
  match i mod 4 with
  | 0 -> Some "t0"
  | 1 -> Some "t1"
  | 2 -> Some "alpha"
  | _ -> None

let input_lines n =
  List.init n (fun i ->
      let item =
        Item.make ~id:i
          ~size:(0.1 +. (float_of_int (i mod 7) *. 0.1))
          ~arrival:(float_of_int i)
          ~departure:(float_of_int i +. 3.5)
      in
      Arrival.render ?tenant:(tenant_of i) item)

let shard_cfg ?(shards = 2) ?(routes = []) ?(resume = false) ?max_arrivals
    ?(snapshot = true) ~dir ~prefix ~input () =
  let p name = Filename.concat dir (prefix ^ name) in
  {
    Shard.base =
      {
        Daemon.default_config with
        Daemon.input = Daemon.In_file input;
        output = p ".out";
        snapshot_path = (if snapshot then Some (p ".snap") else None);
        resume;
        max_arrivals;
      };
    shards;
    routes;
    metrics_port = None;
  }

let run_ok cfg sc =
  match Shard.run cfg sc with
  | Ok stats -> stats
  | Error e -> Alcotest.failf "Shard.run failed: %s" e

let shard_label line =
  let prefix = "{\"shard\":" in
  let pl = String.length prefix in
  if String.length line <= pl || not (String.equal (String.sub line 0 pl) prefix)
  then Alcotest.failf "merged line missing shard label: %s" line
  else
    let comma = String.index_from line pl ',' in
    (int_of_string (String.sub line pl (comma - pl)), comma)

(* Strip the spliced {"shard":K, label back off a merged line, giving
   the segment's decision line. *)
let unlabel line =
  let _, comma = shard_label line in
  "{" ^ String.sub line (comma + 1) (String.length line - comma - 1)

let test_sharded_run_merge_and_segments () =
  in_tmp (fun dir ->
      let n = 12 in
      let input = Filename.concat dir "input.jsonl" in
      write_file input (String.concat "\n" (input_lines n) ^ "\n");
      let cfg = shard_cfg ~dir ~prefix:"full" ~input () in
      let stats = run_ok cfg (scfg ~snapshot_every:3 "first-fit") in
      check_int "every line got a decision" n stats.Daemon.emitted;
      check_int "no skips" 0 stats.Daemon.skipped;
      check_int "placed + rejected = lines" n
        (stats.Daemon.placed + stats.Daemon.rejected);
      let merged = lines_of (read_file (Filename.concat dir "full.out")) in
      check_int "one merged line per arrival" n (List.length merged);
      (* labels match the pure router, and per-shard subsequences are
         byte-identical to the journal segments *)
      let router = Router.create ~shards:2 () in
      let expected_shard i =
        Router.shard_for router
          (match tenant_of i with Some t -> t | None -> Router.default_tenant)
      in
      List.iteri
        (fun i line ->
          check_int
            (Printf.sprintf "line %d routed by tenant key" i)
            (expected_shard i)
            (fst (shard_label line)))
        merged;
      for k = 0 to 1 do
        let seg =
          lines_of (read_file (Shard.segment_path (Filename.concat dir "full.out") k))
        in
        let from_merged =
          List.filter_map
            (fun line ->
              if fst (shard_label line) = k then Some (unlabel line) else None)
            merged
        in
        Alcotest.(check (list string))
          (Printf.sprintf "segment %d = its merged subsequence" k)
          from_merged seg
      done)

(* The determinism contract: segment K is byte-identical to an
   unsharded session driven over the router-filtered input for K. *)
let test_segments_match_filtered_unsharded () =
  in_tmp (fun dir ->
      let n = 16 in
      let input = Filename.concat dir "input.jsonl" in
      write_file input (String.concat "\n" (input_lines n) ^ "\n");
      let cfg = shard_cfg ~dir ~prefix:"run" ~input () in
      ignore (run_ok cfg (scfg ~snapshot_every:3 "first-fit"));
      let router = Router.create ~shards:2 () in
      let sc = Arrival.scratch () in
      for k = 0 to 1 do
        let filtered =
          List.filter
            (fun line ->
              match Arrival.parse_into sc line with
              | Ok () -> Arrival.shard_for router sc = k
              | Error _ -> k = 0)
            (input_lines n)
        in
        let s = Session.create (scfg ~snapshot_every:3 "first-fit") in
        let out = ref [] in
        List.iter
          (fun line ->
            match Session.feed s ~depth:0 line with
            | Session.Emit l -> out := l :: !out
            | Session.Replayed | Session.Skipped _ -> ()
            | Session.Fatal f ->
                Alcotest.failf "fatal: %s" (Session.fatal_to_string f))
          filtered;
        (match Session.finish s with
        | Ok () -> ()
        | Error f -> Alcotest.failf "finish: %s" (Session.fatal_to_string f));
        Alcotest.(check (list string))
          (Printf.sprintf "segment %d = filtered unsharded run" k)
          (List.rev !out)
          (lines_of
             (read_file (Shard.segment_path (Filename.concat dir "run.out") k)))
      done)

let test_resume_at_every_cut_point () =
  in_tmp (fun dir ->
      let n = 10 in
      let input = Filename.concat dir "input.jsonl" in
      write_file input (String.concat "\n" (input_lines n) ^ "\n");
      let sc () = scfg ~snapshot_every:2 "first-fit" in
      ignore (run_ok (shard_cfg ~dir ~prefix:"full" ~input ()) (sc ()));
      let want_merged = read_file (Filename.concat dir "full.out") in
      let want_seg k =
        read_file (Shard.segment_path (Filename.concat dir "full.out") k)
      in
      for cut = 0 to n do
        let prefix = Printf.sprintf "cut%d" cut in
        ignore
          (run_ok
             (shard_cfg ~dir ~prefix ~input ~max_arrivals:cut ())
             (sc ()));
        let stats =
          run_ok (shard_cfg ~dir ~prefix ~input ~resume:true ()) (sc ())
        in
        check_int
          (Printf.sprintf "cut %d: all journaled entries replayed" cut)
          cut stats.Daemon.replayed;
        check_int
          (Printf.sprintf "cut %d: live emits cover the remainder" cut)
          (n - cut) stats.Daemon.emitted;
        check_string
          (Printf.sprintf "cut %d: merged byte-identical" cut)
          want_merged
          (read_file (Filename.concat dir prefix ^ ".out"));
        for k = 0 to 1 do
          check_string
            (Printf.sprintf "cut %d: segment %d byte-identical" cut k)
            (want_seg k)
            (read_file
               (Shard.segment_path (Filename.concat dir prefix ^ ".out") k))
        done
      done)

let test_resume_truncates_torn_tail () =
  in_tmp (fun dir ->
      let n = 8 in
      let input = Filename.concat dir "input.jsonl" in
      write_file input (String.concat "\n" (input_lines n) ^ "\n");
      (* no snapshots: recovery leans on the journal segments alone, so
         we may tear real bytes off a segment, not just garbage *)
      ignore
        (run_ok
           (shard_cfg ~dir ~prefix:"full" ~input ~snapshot:false ())
           (scfg "first-fit"));
      let want = read_file (Filename.concat dir "full.out") in
      (* crash at 5, then wound segment 0 twice: garbage with no newline
         (a decision line torn mid-write), and a real line chopped *)
      ignore
        (run_ok
           (shard_cfg ~dir ~prefix:"cut" ~input ~snapshot:false
              ~max_arrivals:5 ())
           (scfg "first-fit"));
      let seg0 = Shard.segment_path (Filename.concat dir "cut.out") 0 in
      let bytes = read_file seg0 in
      let torn =
        String.sub bytes 0 (String.length bytes - 3) ^ "{\"seq\":99"
      in
      write_file seg0 torn;
      let stats =
        run_ok
          (shard_cfg ~dir ~prefix:"cut" ~input ~snapshot:false ~resume:true ())
          (scfg "first-fit")
      in
      check_string "merged byte-identical after torn-tail truncation" want
        (read_file (Filename.concat dir "cut.out"));
      check_bool "the torn entries were re-decided live" true
        (stats.Daemon.emitted > n - 5))

let test_malformed_lines_counted_once () =
  in_tmp (fun dir ->
      let n = 8 in
      let good = input_lines n in
      let all =
        List.concat_map
          (fun (i, l) -> if i mod 3 = 1 then [ "{torn"; l ] else [ l ])
          (List.mapi (fun i l -> (i, l)) good)
      in
      let input = Filename.concat dir "input.jsonl" in
      write_file input (String.concat "\n" all ^ "\n");
      let stats =
        run_ok (shard_cfg ~dir ~prefix:"run" ~input ()) (scfg "first-fit")
      in
      check_int "malformed lines skipped" 3 stats.Daemon.skipped;
      check_int "well-formed lines decided" n stats.Daemon.emitted;
      check_int "merged has decision lines only" n
        (List.length (lines_of (read_file (Filename.concat dir "run.out")))))

let test_routes_pin_tenants () =
  in_tmp (fun dir ->
      let n = 12 in
      let input = Filename.concat dir "input.jsonl" in
      write_file input (String.concat "\n" (input_lines n) ^ "\n");
      let routes = [ ("t0", 1); ("t1", 0) ] in
      let cfg = shard_cfg ~dir ~prefix:"run" ~input ~routes () in
      ignore (run_ok cfg (scfg "first-fit"));
      let merged = lines_of (read_file (Filename.concat dir "run.out")) in
      List.iteri
        (fun i line ->
          match tenant_of i with
          | Some "t0" -> check_int "t0 pinned to 1" 1 (fst (shard_label line))
          | Some "t1" -> check_int "t1 pinned to 0" 0 (fst (shard_label line))
          | _ -> ())
        merged)

let test_config_rejections () =
  in_tmp (fun dir ->
      let input = Filename.concat dir "input.jsonl" in
      write_file input "";
      let base = shard_cfg ~dir ~prefix:"x" ~input () in
      (match Shard.run { base with Shard.shards = 0 } (scfg "first-fit") with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "zero shards accepted");
      (match
         Shard.run
           { base with Shard.routes = [ ("t", 9) ] }
           (scfg "first-fit")
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "out-of-range route accepted");
      match
        Shard.run
          { base with Shard.base = { base.Shard.base with Daemon.output = "-" } }
          (scfg "first-fit")
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "stdout output accepted in sharded mode")

(* ---- HTTP: total parsers and the hostile-client listener ---------------- *)

let prop_http_total =
  qtest ~count:500 "request_complete/parse_request never raise" gen_any_bytes
    (fun s ->
      (match Http.request_complete s with Some _ | None -> true)
      && match Http.parse_request s with Ok _ | Error _ -> true)

let test_http_framing () =
  check_bool "CRLF terminator" true
    (Http.request_complete "GET / HTTP/1.0\r\nHost: x\r\n\r\n" <> None);
  check_bool "bare LF terminator" true
    (Http.request_complete "GET / HTTP/1.0\n\n" <> None);
  check_bool "incomplete headers" true
    (Http.request_complete "GET / HTTP/1.0\r\nHost:" = None);
  check_bool "empty buffer" true (Http.request_complete "" = None)

let test_http_parse_request () =
  (match Http.parse_request "GET /metrics HTTP/1.0\r\n\r\n" with
  | Ok { Http.meth = "GET"; path = "/metrics" } -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.failf "unexpected: %s" e);
  List.iter
    (fun bad ->
      match Http.parse_request bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [
      "NOT A REQUEST\r\n\r\n";
      "GET metrics HTTP/1.0\r\n\r\n";
      "GET /x FTP/1.0\r\n\r\n";
      "G@T /x HTTP/1.0\r\n\r\n";
      "\r\n\r\n";
    ]

let test_http_response_shape () =
  let r = Http.response ~status:200 "ok" in
  check_bool "status line" true
    (String.length r > 15 && String.equal (String.sub r 0 15) "HTTP/1.0 200 OK");
  check_bool "content length" true
    (Str_exists.contains_substring r "Content-Length: 2");
  check_bool "connection close" true
    (Str_exists.contains_substring r "Connection: close")

(* Prometheus scrapers key format detection off this exact string; pin
   it so a refactor can't silently drift the /metrics content type. *)
let test_metrics_response_content_type () =
  check_string "content type pinned"
    "text/plain; version=0.0.4; charset=utf-8" Http.prometheus_content_type;
  let r = Http.metrics_response "x 1\n" in
  check_bool "header on /metrics responses" true
    (Str_exists.contains_substring r
       "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n");
  check_bool "body intact" true (Str_exists.contains_substring r "\r\n\r\nx 1\n")

(* Drive a real listener from a loopback client.  [service] is
   non-blocking, so pump it between client-side socket operations. *)
let with_listener ?max_clients ?max_request ?max_rounds ~respond f =
  let t = Http_listener.create ?max_clients ?max_request ?max_rounds ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Http_listener.close t)
    (fun () ->
      let pump () =
        for _ = 1 to 20 do
          Http_listener.service t ~respond
        done
      in
      f t pump)

(* The test plays the hostile network peer, so it needs a real client
   socket — R9-allowed here, line by line, because only lib/serve may
   hold this kind of fd in shipping code. *)
let connect t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in (* dbp-lint: allow R9 test client socket *)
  Unix.connect fd (* dbp-lint: allow R9 test client socket *)
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Http_listener.port t)) (* dbp-lint: allow R9 test client socket *);
  fd

let send fd s = ignore (Unix.write_substring fd s 0 (String.length s)) (* dbp-lint: allow R9 test client socket *)

let recv_all fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    match Unix.read fd chunk 0 1024 with (* dbp-lint: allow R9 test client socket *)
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ();
  Buffer.contents buf

let status_of response =
  if String.length response >= 12 then String.sub response 9 3 else response

let test_listener_serves_and_rejects () =
  let respond (req : Http.request) =
    if String.equal req.Http.path "/healthz" then Http.response ~status:200 "ok"
    else Http.response ~status:404 (Http.status_text 404)
  in
  with_listener ~respond (fun t pump ->
      (* two concurrent clients: one well-formed, one garbage *)
      let good = connect t in
      let bad = connect t in
      send good "GET /healthz HTTP/1.0\r\n\r\n";
      send bad "NOT A REQUEST\r\n\r\n";
      pump ();
      let good_resp = recv_all good in
      let bad_resp = recv_all bad in
      Unix.close good; (* dbp-lint: allow R9 test client socket *)
      Unix.close bad; (* dbp-lint: allow R9 test client socket *)
      check_string "healthz answered" "200" (status_of good_resp);
      check_bool "body delivered" true
        (Str_exists.contains_substring good_resp "ok");
      check_string "garbage got 400" "400" (status_of bad_resp))

let test_listener_caps_request_size () =
  let respond _ = Http.response ~status:200 "never" in
  with_listener ~max_request:64 ~respond (fun t pump ->
      let fd = connect t in
      send fd (String.make 200 'x');
      pump ();
      let resp = recv_all fd in
      Unix.close fd; (* dbp-lint: allow R9 test client socket *)
      check_string "oversized request got 431" "431" (status_of resp))

let test_listener_sheds_slowloris () =
  let respond _ = Http.response ~status:200 "never" in
  with_listener ~max_rounds:5 ~respond (fun t pump ->
      let fd = connect t in
      send fd "GE";
      (* never completes the request: the round budget runs out and the
         listener drops the connection *)
      pump ();
      pump ();
      check_int "client shed, only the listening socket remains" 1
        (List.length (Http_listener.fds t));
      let resp = recv_all fd in
      Unix.close fd; (* dbp-lint: allow R9 test client socket *)
      check_string "connection closed without a response" "" resp)

(* ---- per-arrival spans through the daemons ----------------------------- *)

let span_fields line =
  match Json_lite.parse_object line with
  | Ok fields -> fields
  | Error e -> Alcotest.failf "bad span line %S: %s" line e

let require_fields line fields keys =
  List.iter
    (fun k ->
      if Json_lite.field fields k = None then
        Alcotest.failf "span line missing %S: %s" k line)
    keys

let span_seq line =
  match Json_lite.int_field (span_fields line) "seq" with
  | Ok v -> v
  | Error e -> Alcotest.failf "span line %S: %s" line e

let test_daemon_span_log () =
  in_tmp (fun dir ->
      let n = 10 in
      let input = Filename.concat dir "input.jsonl" in
      write_file input (String.concat "\n" (input_lines n) ^ "\n");
      let span_out = Filename.concat dir "spans.jsonl" in
      let cfg =
        {
          Daemon.default_config with
          Daemon.input = Daemon.In_file input;
          output = Filename.concat dir "out.jsonl";
          span_sample = 4;
          span_out = Some span_out;
        }
      in
      (match Daemon.run cfg (scfg "first-fit") with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "Daemon.run: %s" e);
      let spans = lines_of (read_file span_out) in
      check_int "every 4th arrival sampled" 3 (List.length spans);
      Alcotest.(check (list int))
        "seq-keyed stride" [ 0; 4; 8 ] (List.map span_seq spans);
      List.iter
        (fun l ->
          let fields = span_fields l in
          require_fields l fields
            [ "seq"; "shard"; "depth"; "t"; "parse"; "admission"; "engine" ];
          (* no router/mailbox/sequencer in the unsharded pipeline *)
          List.iter
            (fun k ->
              if Json_lite.field fields k <> None then
                Alcotest.failf "unsharded span has %S: %s" k l)
            [ "route"; "mailbox"; "merge" ])
        spans)

let test_sharded_span_log () =
  in_tmp (fun dir ->
      let n = 20 in
      let input = Filename.concat dir "input.jsonl" in
      write_file input (String.concat "\n" (input_lines n) ^ "\n");
      let span_out = Filename.concat dir "spans.jsonl" in
      let base = shard_cfg ~dir ~prefix:"sp" ~input () in
      let cfg =
        {
          base with
          Shard.base =
            {
              base.Shard.base with
              Daemon.span_sample = 3;
              span_out = Some span_out;
            };
        }
      in
      ignore (run_ok cfg (scfg "first-fit"));
      let spans = lines_of (read_file span_out) in
      (* gidx-keyed sampling, committed in merge order: ceil(20/3)
         spans, seqs 0, 3, ..., 18 ascending. *)
      Alcotest.(check (list int))
        "gidx-keyed, merge-ordered"
        (List.init 7 (fun i -> 3 * i))
        (List.map span_seq spans);
      let router = Router.create ~shards:2 () in
      List.iter
        (fun l ->
          let fields = span_fields l in
          require_fields l fields
            [
              "seq"; "shard"; "depth"; "t"; "parse"; "route"; "mailbox";
              "admission"; "engine"; "journal"; "merge";
            ];
          (* the shard stamped into the ticket is the router's *)
          let seq = span_seq l in
          let expected =
            Router.shard_for router
              (match tenant_of seq with
              | Some t -> t
              | None -> Router.default_tenant)
          in
          match Json_lite.int_field fields "shard" with
          | Ok k -> check_int (Printf.sprintf "span %d shard" seq) expected k
          | Error e -> Alcotest.fail e)
        spans)

let suite =
  [
    prop_router_stable;
    prop_router_divisibility;
    prop_hash_sub;
    Alcotest.test_case "overrides win and are validated" `Quick
      test_router_overrides;
    Alcotest.test_case "override file parsing" `Quick test_parse_overrides;
    prop_parse_overrides_total;
    prop_parse_into_differential_bytes;
    prop_parse_into_rendered;
    Alcotest.test_case "parse_into agrees on hostile bytes" `Quick
      test_parse_into_hostile_bytes;
    prop_shard_for_consistent;
    prop_render_into;
    Alcotest.test_case "render_into batches lines" `Quick
      test_render_into_batches;
    Alcotest.test_case "merged stream: labels, order, segments" `Quick
      test_sharded_run_merge_and_segments;
    Alcotest.test_case "segments = router-filtered unsharded runs" `Quick
      test_segments_match_filtered_unsharded;
    Alcotest.test_case "resume byte-identical at every cut point" `Quick
      test_resume_at_every_cut_point;
    Alcotest.test_case "resume truncates a torn segment tail" `Quick
      test_resume_truncates_torn_tail;
    Alcotest.test_case "malformed lines skip on shard 0" `Quick
      test_malformed_lines_counted_once;
    Alcotest.test_case "route overrides pin tenants to shards" `Quick
      test_routes_pin_tenants;
    Alcotest.test_case "config defects are structured errors" `Quick
      test_config_rejections;
    prop_http_total;
    Alcotest.test_case "request framing" `Quick test_http_framing;
    Alcotest.test_case "request-line parsing" `Quick test_http_parse_request;
    Alcotest.test_case "response shape" `Quick test_http_response_shape;
    Alcotest.test_case "/metrics content type pinned" `Quick
      test_metrics_response_content_type;
    Alcotest.test_case "unsharded daemon span log" `Quick test_daemon_span_log;
    Alcotest.test_case "sharded daemon span log" `Quick test_sharded_span_log;
    Alcotest.test_case "listener serves two clients, rejects garbage" `Quick
      test_listener_serves_and_rejects;
    Alcotest.test_case "listener caps request size (431)" `Quick
      test_listener_caps_request_size;
    Alcotest.test_case "listener sheds slowloris clients" `Quick
      test_listener_sheds_slowloris;
  ]
