open Dbp_core
open Helpers
module E = Dbp_online.Engine

(* An algorithm that always opens a new bin. *)
let always_open = E.stateless "always-open" (fun ~now:_ ~open_bins:_ _ -> E.Open_new)

let test_always_open run () =
  let inst = instance [ (0.1, 0., 2.); (0.1, 0.5, 3.) ] in
  let p = run always_open inst in
  check_int "one bin per item" 2 (Packing.bin_count p)

let test_open_bins_view_excludes_closed run () =
  (* second item arrives after the first departed; a "place into bin 0"
     algorithm must fail because bin 0 is closed *)
  let place_zero =
    E.stateless "place-zero" (fun ~now:_ ~open_bins _ ->
        match open_bins with
        | [] -> E.Open_new
        | v :: _ -> E.Place v.E.index)
  in
  let inst = instance [ (0.5, 0., 1.); (0.5, 2., 3.) ] in
  let p = run place_zero inst in
  (* bin 0 closed at t=2, so view is empty and a new bin opens *)
  check_int "two bins" 2 (Packing.bin_count p)

let test_invalid_place_unknown_bin run () =
  let bad = E.stateless "bad" (fun ~now:_ ~open_bins:_ _ -> E.Place 99) in
  let inst = instance [ (0.5, 0., 1.) ] in
  check_bool "raises" true
    (match run bad inst with
    | exception E.Invalid_decision _ -> true
    | _ -> false)

let test_invalid_place_closed_bin run () =
  (* remember bin 0 and try to reuse it after it closed *)
  let stubborn =
    E.stateless "stubborn" (fun ~now ~open_bins:_ _ ->
        if now < 1.5 then E.Open_new else E.Place 0)
  in
  let inst = instance [ (0.5, 0., 1.); (0.5, 2., 3.) ] in
  check_bool "raises" true
    (match run stubborn inst with
    | exception E.Invalid_decision _ -> true
    | _ -> false)

let test_invalid_overflow_decision run () =
  let cram =
    E.stateless "cram" (fun ~now:_ ~open_bins _ ->
        match open_bins with [] -> E.Open_new | v :: _ -> E.Place v.E.index)
  in
  let inst = instance [ (0.7, 0., 2.); (0.7, 0.5, 2.5) ] in
  check_bool "raises" true
    (match run cram inst with
    | exception E.Invalid_decision _ -> true
    | _ -> false)

let test_departure_frees_capacity_at_same_instant () =
  (* item 1 arrives exactly when item 0 departs; half-open semantics means
     bin 0 is already closed, so the engine reports no open bins *)
  let observed = ref (-1) in
  let observer =
    E.stateless "observer" (fun ~now:_ ~open_bins _ ->
        observed := List.length open_bins;
        E.Open_new)
  in
  let inst = instance [ (1.0, 0., 5.); (1.0, 5., 6.) ] in
  ignore (E.run observer inst);
  check_int "no open bins at second arrival" 0 !observed

let test_levels_reported_at_now () =
  let seen_levels = ref [] in
  let spy =
    E.stateless "spy" (fun ~now:_ ~open_bins _ ->
        seen_levels := List.map (fun v -> v.E.level) open_bins :: !seen_levels;
        match open_bins with
        | v :: _ when Dbp_online.Any_fit.fits v (item ~id:9 ~size:0.1 0. 1.) ->
            E.Place v.E.index
        | _ -> E.Open_new)
  in
  let inst = instance [ (0.4, 0., 10.); (0.3, 1., 2.); (0.2, 5., 6.) ] in
  ignore (E.run spy inst);
  match List.rev !seen_levels with
  | [ []; [ l1 ]; [ l2 ] ] ->
      check_float "level before second arrival" 0.4 l1;
      (* the 0.3 item departed at 2, so at t=5 level is back to 0.4 *)
      check_float "level after departure" 0.4 l2
  | other ->
      Alcotest.failf "unexpected level trace length %d" (List.length other)

let test_notify_reports_final_index () =
  let notified = ref [] in
  let algo =
    {
      E.name = "notify-spy";
      make =
        (fun () ->
          {
            E.decide = (fun ~now:_ ~open_bins:_ _ -> E.Open_new);
            notify =
              (fun ~item ~index -> notified := (Item.id item, index) :: !notified);
            departed = E.default_departed;
          });
      make_indexed = None;
    }
  in
  let inst = instance [ (0.5, 0., 1.); (0.5, 0.5, 2.) ] in
  ignore (E.run algo inst);
  Alcotest.(check (list (pair int int)))
    "notifications" [ (0, 0); (1, 1) ] (List.rev !notified)

let test_fresh_stepper_per_run () =
  (* a stateful algorithm must not leak state between runs *)
  let algo = Dbp_online.Any_fit.next_fit in
  let inst = instance [ (0.6, 0., 2.); (0.6, 1., 3.) ] in
  let p1 = E.run algo inst and p2 = E.run algo inst in
  check_int "same result" (Packing.bin_count p1) (Packing.bin_count p2)

let prop_usage_time_matches_packing =
  qtest "usage_time = total of run" (gen_instance ()) (fun inst ->
      Float.abs
        (E.usage_time Dbp_online.Any_fit.first_fit inst
        -. Packing.total_usage_time (E.run Dbp_online.Any_fit.first_fit inst))
      < 1e-9)

(* The engine contract must hold for both implementations: the default
   indexed engine and the frozen reference oracle. *)
let per_engine =
  List.concat_map
    (fun (engine, run) ->
      let case name f =
        Alcotest.test_case (Printf.sprintf "%s (%s)" name engine) `Quick (f run)
      in
      [
        case "always-open baseline" test_always_open;
        case "closed bins leave the view" test_open_bins_view_excludes_closed;
        case "unknown bin rejected" test_invalid_place_unknown_bin;
        case "closed bin rejected" test_invalid_place_closed_bin;
        case "overflow decision rejected" test_invalid_overflow_decision;
      ])
    [
      ("indexed", fun algo inst -> E.run_indexed algo inst);
      ("reference", fun algo inst -> E.run_reference algo inst);
    ]

let suite =
  per_engine
  @ [
      Alcotest.test_case "departure frees capacity at same instant" `Quick
        test_departure_frees_capacity_at_same_instant;
      Alcotest.test_case "levels reported at arrival instant" `Quick
        test_levels_reported_at_now;
      Alcotest.test_case "notify gets final bin index" `Quick
        test_notify_reports_final_index;
      Alcotest.test_case "fresh stepper per run" `Quick test_fresh_stepper_per_run;
      prop_usage_time_matches_packing;
    ]
