open Dbp_core
open Helpers
module P = Dbp_workload.Prng
module D = Dbp_workload.Distribution
module G = Dbp_workload.Generator
module CG = Dbp_workload.Cloud_gaming
module An = Dbp_workload.Analytics
module Adv = Dbp_workload.Adversarial
module T = Dbp_workload.Trace

(* ---- prng ---- *)

let test_prng_deterministic () =
  let a = P.create 42 and b = P.create 42 in
  for _ = 1 to 10 do
    check_float "same stream" (P.float a) (P.float b)
  done

let test_prng_seeds_differ () =
  let a = P.create 1 and b = P.create 2 in
  check_bool "different" true (P.float a <> P.float b)

let test_prng_float_range () =
  let rng = P.create 7 in
  for _ = 1 to 1000 do
    let x = P.float rng in
    check_bool "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_prng_int_range () =
  let rng = P.create 7 in
  for _ = 1 to 1000 do
    let x = P.int rng 10 in
    check_bool "in [0,10)" true (x >= 0 && x < 10)
  done

let test_prng_split_independent () =
  let parent = P.create 5 in
  let child = P.split parent in
  (* consuming the child must not equal consuming the parent stream *)
  check_bool "streams differ" true (P.float child <> P.float parent)

let test_prng_exponential_positive () =
  let rng = P.create 3 in
  for _ = 1 to 200 do
    check_bool "positive" true (P.exponential rng ~mean:2. >= 0.)
  done

let test_prng_pareto_min () =
  let rng = P.create 3 in
  for _ = 1 to 200 do
    check_bool ">= scale" true (P.pareto rng ~shape:1.5 ~scale:2. >= 2.)
  done

let test_prng_gaussian_mean () =
  let rng = P.create 9 in
  let n = 5000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. P.gaussian rng ~mean:10. ~stddev:2.
  done;
  check_bool "mean near 10" true (Float.abs ((!sum /. float_of_int n) -. 10.) < 0.2)

let test_choose_weighted () =
  let rng = P.create 11 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let x = P.choose_weighted rng [| ("a", 1.); ("b", 9.) |] in
    Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
  done;
  let b = Option.value ~default:0 (Hashtbl.find_opt counts "b") in
  check_bool "b dominates" true (b > 2300 && b < 2950)

(* ---- distributions ---- *)

let test_distribution_constant () =
  let rng = P.create 0 in
  check_float "constant" 3. (D.sample (D.constant 3.) rng)

let test_distribution_clamped () =
  let rng = P.create 0 in
  for _ = 1 to 100 do
    let x = D.sample (D.clamped ~lo:1. ~hi:2. (D.exponential ~mean:5.)) rng in
    check_bool "clamped" true (x >= 1. && x <= 2.)
  done

let test_distribution_mean_estimate () =
  let m = D.mean_estimate ~seed:1 (D.uniform ~lo:0. ~hi:10.) in
  check_bool "near 5" true (Float.abs (m -. 5.) < 0.3)

let test_distribution_describe () =
  check_string "describe" "const(2)" (D.describe (D.constant 2.))

(* ---- generators ---- *)

let test_generator_deterministic () =
  let a = G.generate ~seed:4 G.default and b = G.generate ~seed:4 G.default in
  check_int "same count" (Instance.length a) (Instance.length b);
  check_float "same demand" (Instance.demand a) (Instance.demand b)

let test_generator_respects_horizon () =
  let inst = G.generate ~seed:0 G.default in
  List.iter
    (fun r ->
      check_bool "arrival in horizon" true
        (Item.arrival r >= 0. && Item.arrival r < G.default.G.horizon))
    (Instance.items inst)

let test_generator_sizes_valid () =
  let inst = G.generate ~seed:0 G.default in
  List.iter
    (fun r -> check_bool "size ok" true (Item.size r > 0. && Item.size r <= 1.))
    (Instance.items inst)

let test_with_mu_calibrated () =
  let inst = G.with_mu ~seed:1 ~items:100 ~mu:16. () in
  check_float_eps 1e-6 "mu realised" 16. (Instance.mu inst)

let test_cloud_gaming_properties () =
  let inst = CG.generate ~seed:0 { CG.default with days = 0.25 } in
  check_bool "nonempty" false (Instance.is_empty inst);
  List.iter
    (fun r ->
      check_bool "share from catalogue" true
        (Array.exists
           (fun t -> Float.abs (t.CG.share -. Item.size r) < 1e-12)
           CG.catalogue))
    (Instance.items inst)

let test_analytics_periodic_backbone () =
  let inst =
    An.generate ~seed:0 { An.default with adhoc_rate = 0.; horizon = 360. }
  in
  (* six hours: 15-min ingest fires 24 times, hourly twice x6... at least
     the template count is deterministic per template *)
  let shares =
    Instance.items inst |> List.map Item.size |> List.sort_uniq Float.compare
  in
  check_bool "only template shares" true (List.length shares <= 5);
  check_bool "plenty of jobs" true (Instance.length inst > 30)

let test_vm_fleet_shapes () =
  let inst = Dbp_workload.Vm_fleet.generate ~seed:1 Dbp_workload.Vm_fleet.default in
  check_bool "nonempty" false (Instance.is_empty inst);
  List.iter
    (fun r ->
      check_bool "size from catalogue" true
        (Array.exists
           (fun s -> Float.abs (s -. Item.size r) < 1e-12)
           Dbp_workload.Vm_fleet.sizes))
    (Instance.items inst)

let test_vm_fleet_heavy_tail () =
  let inst = Dbp_workload.Vm_fleet.generate ~seed:1 Dbp_workload.Vm_fleet.default in
  (* heavy tail: the max lifetime dwarfs the median *)
  let durations = List.map Item.duration (Instance.items inst) in
  let sorted = List.sort Float.compare durations in
  let median = List.nth sorted (List.length sorted / 2) in
  let longest = List.fold_left Float.max 0. durations in
  check_bool "fat tail" true (longest > 10. *. median)

let test_vm_fleet_deterministic () =
  let a = Dbp_workload.Vm_fleet.generate ~seed:3 Dbp_workload.Vm_fleet.default in
  let b = Dbp_workload.Vm_fleet.generate ~seed:3 Dbp_workload.Vm_fleet.default in
  check_float "same demand" (Instance.demand a) (Instance.demand b)

let test_vm_fleet_validation () =
  check_bool "bad group" true
    (match
       Dbp_workload.Vm_fleet.generate
         { Dbp_workload.Vm_fleet.default with max_group = 0 }
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- adversarial ---- *)

let test_theorem3_case_a () =
  let inst = Adv.theorem3 Adv.A in
  check_int "two items" 2 (Instance.length inst);
  check_float_eps 1e-9 "opt usage" Adv.golden_ratio (Adv.theorem3_opt_usage Adv.A)

let test_theorem3_case_b () =
  let inst = Adv.theorem3 Adv.B in
  check_int "four items" 4 (Instance.length inst);
  (* large items cannot pair with small ones: sizes 0.49/0.51 *)
  let sizes = List.map Item.size (Instance.items inst) in
  check_bool "two small two large" true
    (List.length (List.filter (fun s -> s < 0.5) sizes) = 2)

let test_theorem3_validates_params () =
  check_bool "x <= 1 rejected" true
    (match Adv.theorem3 ~x:1. Adv.A with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_theorem3_ff_suffers () =
  (* FF packs the two size-(1/2 - eps) items together, so in case B it
     pays 2x+1 against x+1+2tau: the golden-ratio loss *)
  (* tau must be tiny: the achieved ratio is (2x+1)/(x+1+2tau) -> phi *)
  let tau = 1e-9 in
  let ratio case =
    let inst = Adv.theorem3 ~tau case in
    Packing.total_usage_time (Dbp_online.Engine.run Dbp_online.Any_fit.first_fit inst)
    /. Adv.theorem3_opt_usage ~tau case
  in
  let worst = Float.max (ratio Adv.A) (ratio Adv.B) in
  check_bool "at least golden ratio" true
    (worst >= Dbp_theory.Ratios.online_lower_bound -. 1e-3)

let test_staggered_departures_shape () =
  let inst = Adv.staggered_departures ~k:5 ~long:10. () in
  check_int "k items" 5 (Instance.length inst);
  check_float "span" 10. (Instance.span inst)

let test_mixed_duration_trap_hurts_any_fit () =
  let inst = Adv.mixed_duration_trap ~pairs:10 ~mu:20. () in
  let usage algo =
    Packing.total_usage_time (Dbp_online.Engine.run algo inst)
  in
  let ff = usage Dbp_online.Any_fit.first_fit
  and bf = usage Dbp_online.Any_fit.best_fit in
  (* every Any Fit pays ~pairs * mu = 200 *)
  check_bool "ff trapped" true (ff > 150.);
  check_bool "bf trapped" true (bf > 150.);
  (* classify-by-departure-time recovers ~pairs + mu *)
  let cbdt =
    usage (Dbp_online.Classify_departure.make ~rho:5. ())
  in
  check_bool "cbdt escapes" true (cbdt < 60.);
  check_bool "cbdt beats ff by a wide margin" true (cbdt *. 2. < ff)

let test_mixed_duration_trap_validates () =
  check_bool "too many pairs" true
    (match Adv.mixed_duration_trap ~pairs:100 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_worst_of_random_finds_something () =
  let _, ratio =
    Adv.worst_of_random ~seed:1 ~rounds:20 ~items:5
      ~pack:(Dbp_online.Engine.run Dbp_online.Any_fit.first_fit)
      ~ratio_of:(fun inst usage -> Dbp_opt.Lower_bounds.ratio_to_best inst usage)
      ()
  in
  check_bool "ratio at least 1" true (ratio >= 1. -. 1e-9)

(* ---- trace ---- *)

let test_trace_roundtrip () =
  let inst = G.generate ~seed:5 { G.default with horizon = 20. } in
  let inst' = T.of_string (T.to_string inst) in
  check_int "count" (Instance.length inst) (Instance.length inst');
  check_float "demand" (Instance.demand inst) (Instance.demand inst');
  check_float "span" (Instance.span inst) (Instance.span inst')

let test_trace_rejects_bad_header () =
  check_bool "bad header" true
    (match T.of_string "nope\n1,0.5,0,1\n" with
    | exception T.Parse_error (1, _) -> true
    | _ -> false)

let test_trace_rejects_bad_row () =
  check_bool "bad row" true
    (match T.of_string "id,size,arrival,departure\n1,hello,0,1\n" with
    | exception T.Parse_error (2, _) -> true
    | _ -> false)

let test_trace_rejects_invalid_item () =
  check_bool "size out of range" true
    (match T.of_string "id,size,arrival,departure\n1,2.5,0,1\n" with
    | exception T.Parse_error (2, _) -> true
    | _ -> false)

let test_trace_rejects_nonfinite () =
  let err line s =
    match T.of_string s with
    | exception T.Parse_error (n, _) -> n = line
    | _ -> false
  in
  check_bool "nan size" true (err 2 "id,size,arrival,departure\n1,nan,0,1\n");
  check_bool "inf departure" true
    (err 2 "id,size,arrival,departure\n1,0.5,0,inf\n");
  check_bool "nan arrival on its own line" true
    (err 3 "id,size,arrival,departure\n1,0.5,0,1\n2,0.5,nan,1\n")

let test_trace_rejects_departure_before_arrival () =
  check_bool "departure <= arrival" true
    (match T.of_string "id,size,arrival,departure\n1,0.5,2,2\n" with
    | exception T.Parse_error (2, _) -> true
    | _ -> false)

let test_trace_rejects_duplicate_id_with_line () =
  let s =
    "id,size,arrival,departure\n1,0.5,0,1\n2,0.5,0,1\n1,0.5,2,3\n"
  in
  let contains msg needle =
    let n = String.length needle and m = String.length msg in
    let rec at i = i + n <= m && (String.sub msg i n = needle || at (i + 1)) in
    at 0
  in
  match T.of_string s with
  | exception T.Parse_error (4, msg) ->
      check_bool "names the id" true (contains msg "duplicate id 1");
      check_bool "names the first line" true (contains msg "line 2")
  | exception T.Parse_error (n, _) ->
      Alcotest.failf "blamed line %d, wanted 4" n
  | _ -> Alcotest.fail "duplicate accepted"

let test_trace_lenient_skips_bad_rows () =
  let s =
    "id,size,arrival,departure\n\
     1,0.5,0,1\n\
     2,hello,0,1\n\
     3,0.5,4,2\n\
     1,0.5,5,6\n\
     4,0.25,1,3\n"
  in
  let inst, errors = T.of_string_lenient s in
  check_int "survivors" 2 (Instance.length inst);
  check_int "errors" 3 (List.length errors);
  check_bool "error lines in order" true
    (List.map fst errors = [ 3; 4; 5 ]);
  (* the duplicate keeps the first occurrence *)
  check_float "first id-1 row wins" 1. (Item.departure (Instance.find inst 1))

let test_trace_lenient_clean_trace () =
  let inst = G.generate ~seed:5 { G.default with horizon = 20. } in
  let inst', errors = T.of_string_lenient (T.to_string inst) in
  check_int "no errors" 0 (List.length errors);
  check_int "all rows" (Instance.length inst) (Instance.length inst')

let test_trace_lenient_total_on_bad_header () =
  (* A structural defect (missing header) is itself just the first
     recorded error; the rows still parse.  Totality here is what lets
     [dbp serve] feed this arbitrary bytes (see the serve fuzz suite). *)
  let inst, errors = T.of_string_lenient "nope\n1,0.5,0,1\n" in
  check_int "surviving row" 1 (Instance.length inst);
  check_bool "header defect reported first" true
    (match errors with (1, _) :: _ -> true | _ -> false);
  check_int "bad header also fails as a row" 2 (List.length errors)

let test_trace_file_roundtrip () =
  let inst = Adv.theorem3 Adv.B in
  let path = Filename.temp_file "dbp" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      T.save path inst;
      let inst' = T.load path in
      check_int "count" (Instance.length inst) (Instance.length inst'))

let prop_trace_roundtrip_exact =
  qtest ~count:40 "trace round-trips items exactly" (gen_instance ())
    (fun inst ->
      let inst' = T.of_string (T.to_string inst) in
      List.for_all2
        (fun a b ->
          Item.id a = Item.id b
          && Item.size a = Item.size b
          && Item.arrival a = Item.arrival b
          && Item.departure a = Item.departure b)
        (Instance.items inst) (Instance.items inst'))

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seeds differ" `Quick test_prng_seeds_differ;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng int range" `Quick test_prng_int_range;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "exponential positive" `Quick test_prng_exponential_positive;
    Alcotest.test_case "pareto min" `Quick test_prng_pareto_min;
    Alcotest.test_case "gaussian mean" `Quick test_prng_gaussian_mean;
    Alcotest.test_case "choose weighted" `Quick test_choose_weighted;
    Alcotest.test_case "constant distribution" `Quick test_distribution_constant;
    Alcotest.test_case "clamped distribution" `Quick test_distribution_clamped;
    Alcotest.test_case "mean estimate" `Quick test_distribution_mean_estimate;
    Alcotest.test_case "describe" `Quick test_distribution_describe;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator horizon" `Quick test_generator_respects_horizon;
    Alcotest.test_case "generator sizes" `Quick test_generator_sizes_valid;
    Alcotest.test_case "with_mu calibrated" `Quick test_with_mu_calibrated;
    Alcotest.test_case "cloud gaming catalogue" `Quick test_cloud_gaming_properties;
    Alcotest.test_case "analytics backbone" `Quick test_analytics_periodic_backbone;
    Alcotest.test_case "vm fleet shapes" `Quick test_vm_fleet_shapes;
    Alcotest.test_case "vm fleet heavy tail" `Quick test_vm_fleet_heavy_tail;
    Alcotest.test_case "vm fleet deterministic" `Quick test_vm_fleet_deterministic;
    Alcotest.test_case "vm fleet validation" `Quick test_vm_fleet_validation;
    Alcotest.test_case "theorem3 case A" `Quick test_theorem3_case_a;
    Alcotest.test_case "theorem3 case B" `Quick test_theorem3_case_b;
    Alcotest.test_case "theorem3 validates" `Quick test_theorem3_validates_params;
    Alcotest.test_case "theorem3 FF suffers golden ratio" `Quick
      test_theorem3_ff_suffers;
    Alcotest.test_case "staggered departures" `Quick test_staggered_departures_shape;
    Alcotest.test_case "mixed-duration trap hurts any fit" `Quick
      test_mixed_duration_trap_hurts_any_fit;
    Alcotest.test_case "mixed-duration trap validates" `Quick
      test_mixed_duration_trap_validates;
    Alcotest.test_case "worst of random" `Quick test_worst_of_random_finds_something;
    Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace bad header" `Quick test_trace_rejects_bad_header;
    Alcotest.test_case "trace bad row" `Quick test_trace_rejects_bad_row;
    Alcotest.test_case "trace invalid item" `Quick test_trace_rejects_invalid_item;
    Alcotest.test_case "trace non-finite fields" `Quick test_trace_rejects_nonfinite;
    Alcotest.test_case "trace departure <= arrival" `Quick
      test_trace_rejects_departure_before_arrival;
    Alcotest.test_case "trace duplicate id line" `Quick
      test_trace_rejects_duplicate_id_with_line;
    Alcotest.test_case "trace lenient skips bad rows" `Quick
      test_trace_lenient_skips_bad_rows;
    Alcotest.test_case "trace lenient clean" `Quick test_trace_lenient_clean_trace;
    Alcotest.test_case "trace lenient bad header" `Quick
      test_trace_lenient_total_on_bad_header;
    Alcotest.test_case "trace file roundtrip" `Quick test_trace_file_roundtrip;
    prop_trace_roundtrip_exact;
  ]
