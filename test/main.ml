let () =
  Alcotest.run "dbp"
    [
      ("interval", Test_interval.suite);
      ("step-function", Test_step_function.suite);
      ("item", Test_item.suite);
      ("instance", Test_instance.suite);
      ("bin-state", Test_bin_state.suite);
      ("packing", Test_packing.suite);
      ("event", Test_event.suite);
      ("offline-first-fit", Test_offline.suite);
      ("demand-chart", Test_demand_chart.suite);
      ("dual-coloring", Test_dual_coloring.suite);
      ("online-engine", Test_engine.suite);
      ("engine-differential", Test_engine_differential.suite);
      ("packing-invariants", Test_invariants.suite);
      ("any-fit", Test_any_fit.suite);
      ("classification", Test_classify.suite);
      ("opt", Test_opt.suite);
      ("theory", Test_theory.suite);
      ("workload", Test_workload.suite);
      ("estimator", Test_estimator.suite);
      ("multidim", Test_multidim.suite);
      ("flex", Test_flex.suite);
      ("proof-machinery", Test_analysis.suite);
      ("billing", Test_billing.suite);
      ("gantt", Test_gantt.suite);
      ("local-search", Test_local_search.suite);
      ("migration", Test_migration.suite);
      ("forecast", Test_forecast.suite);
      ("trace-ops-metrics", Test_trace_ops_metrics.suite);
      ("golden", Test_golden.suite);
      ("lint", Test_lint.suite);
      ("faults", Test_faults.suite);
      ("sim", Test_sim.suite);
      ("par", Test_par.suite);
      ("integration", Test_integration.suite);
    ]
