(* qcheck invariants on [Packing.t], recomputed from scratch — never
   through the cached level profiles the engines maintain:

   - capacity: at every arrival instant of every bin, the total size of
     the bin's items active at that instant stays within
     capacity + tolerance (between events the level only falls, so the
     arrival instants dominate);
   - online liveness: an online bin never receives an item after closing
     (every item but the bin's first arrives strictly before the latest
     departure seen so far) — offline packings are exempt, a rented bin
     may legitimately be reused after a gap;
   - usage accounting: [Packing.total_usage_time] (and the figure
     surfaced by [Metrics]) equals the sum over bins of the measure of
     the union of the items' intervals.

   Run against every online algorithm (through the default, indexed
   engine) and both offline approximation algorithms. *)

open Dbp_core
open Helpers

let online_packers =
  [
    ("first-fit", Dbp_online.Engine.run Dbp_online.Any_fit.first_fit);
    ("best-fit", Dbp_online.Engine.run Dbp_online.Any_fit.best_fit);
    ("worst-fit", Dbp_online.Engine.run Dbp_online.Any_fit.worst_fit);
    ("next-fit", Dbp_online.Engine.run Dbp_online.Any_fit.next_fit);
    ("random-fit", Dbp_online.Engine.run (Dbp_online.Any_fit.random_fit ~seed:11));
    ( "biased-open",
      Dbp_online.Engine.run (Dbp_online.Any_fit.biased_open ~p:0.3 ~seed:5) );
    ("hybrid-ff", Dbp_online.Engine.run (Dbp_online.Hybrid_first_fit.make ()));
    ( "aligned-ff",
      Dbp_online.Engine.run (Dbp_online.Departure_aligned.make ~window:3. ()) );
    ( "cbdt-ff",
      fun inst ->
        Dbp_online.Engine.run (Dbp_online.Classify_departure.tuned inst) inst );
    ( "cbd-ff",
      fun inst ->
        Dbp_online.Engine.run (Dbp_online.Classify_duration.tuned inst) inst );
    ( "combined-ff",
      fun inst ->
        Dbp_online.Engine.run (Dbp_online.Classify_combined.tuned inst) inst );
  ]

let offline_packers =
  [
    ("ddff", Dbp_offline.Ddff.pack);
    ("dual-coloring", fun inst -> Dbp_offline.Dual_coloring.pack inst);
  ]

(* Level at time t recomputed directly from the item list. *)
let level_from_items items t =
  List.fold_left
    (fun acc r -> if Item.active_at r t then acc +. Item.size r else acc)
    0. items

let capacity_ok packing =
  List.for_all
    (fun b ->
      let items = Bin_state.items b in
      List.for_all
        (fun r ->
          level_from_items items (Item.arrival r)
          <= Bin_state.capacity +. Bin_state.tolerance)
        items)
    (Packing.bins packing)

let no_closed_bin_placement packing =
  List.for_all
    (fun b ->
      let by_arrival =
        List.sort
          (fun a b ->
            match Float.compare (Item.arrival a) (Item.arrival b) with
            | 0 -> Item.compare_by_id a b
            | c -> c)
          (Bin_state.items b)
      in
      match by_arrival with
      | [] -> true
      | first :: rest ->
          let _, ok =
            List.fold_left
              (fun (latest, ok) r ->
                ( Float.max latest (Item.departure r),
                  ok && Item.arrival r < latest ))
              (Item.departure first, true)
              rest
          in
          ok)
    (Packing.bins packing)

let usage_from_scratch packing =
  List.fold_left
    (fun acc b ->
      let span =
        Bin_state.items b
        |> List.map Item.interval
        |> Interval.union
        |> List.fold_left (fun acc i -> acc +. Interval.length i) 0.
      in
      acc +. span)
    0. (Packing.bins packing)

let usage_ok packing =
  let scratch = usage_from_scratch packing in
  Float.abs (Packing.total_usage_time packing -. scratch) <= 1e-9
  && Float.abs ((Dbp_core.Metrics.of_packing packing).Metrics.total_usage -. scratch)
     <= 1e-9

let invariant_tests ~online (name, pack) =
  [
    qtest ~count:120
      (Printf.sprintf "capacity within tolerance: %s" name)
      (gen_instance ~max_items:14 ())
      (fun inst -> capacity_ok (pack inst));
    qtest ~count:120
      (Printf.sprintf "usage = recomputed spans: %s" name)
      (gen_instance ~max_items:14 ())
      (fun inst -> usage_ok (pack inst));
  ]
  @
  if online then
    [
      qtest ~count:120
        (Printf.sprintf "no placement into closed bin: %s" name)
        (gen_instance ~max_items:14 ())
        (fun inst -> no_closed_bin_placement (pack inst));
    ]
  else []

let suite =
  List.concat_map (invariant_tests ~online:true) online_packers
  @ List.concat_map (invariant_tests ~online:false) offline_packers
