(* qcheck invariants on [Packing.t], recomputed from scratch — never
   through the cached level profiles the engines maintain:

   - capacity: at every arrival instant of every bin, the total size of
     the bin's items active at that instant stays within
     capacity + tolerance (between events the level only falls, so the
     arrival instants dominate);
   - online liveness: an online bin never receives an item after closing
     (every item but the bin's first arrives strictly before the latest
     departure seen so far) — offline packings are exempt, a rented bin
     may legitimately be reused after a gap;
   - usage accounting: [Packing.total_usage_time] (and the figure
     surfaced by [Metrics]) equals the sum over bins of the measure of
     the union of the items' intervals.

   Run against every online algorithm (through the default, indexed
   engine) and both offline approximation algorithms. *)

open Dbp_core
open Helpers

let online_packers =
  [
    ("first-fit", Dbp_online.Engine.run Dbp_online.Any_fit.first_fit);
    ("best-fit", Dbp_online.Engine.run Dbp_online.Any_fit.best_fit);
    ("worst-fit", Dbp_online.Engine.run Dbp_online.Any_fit.worst_fit);
    ("next-fit", Dbp_online.Engine.run Dbp_online.Any_fit.next_fit);
    ("random-fit", Dbp_online.Engine.run (Dbp_online.Any_fit.random_fit ~seed:11));
    ( "biased-open",
      Dbp_online.Engine.run (Dbp_online.Any_fit.biased_open ~p:0.3 ~seed:5) );
    ("hybrid-ff", Dbp_online.Engine.run (Dbp_online.Hybrid_first_fit.make ()));
    ( "aligned-ff",
      Dbp_online.Engine.run (Dbp_online.Departure_aligned.make ~window:3. ()) );
    ( "cbdt-ff",
      fun inst ->
        Dbp_online.Engine.run (Dbp_online.Classify_departure.tuned inst) inst );
    ( "cbd-ff",
      fun inst ->
        Dbp_online.Engine.run (Dbp_online.Classify_duration.tuned inst) inst );
    ( "combined-ff",
      fun inst ->
        Dbp_online.Engine.run (Dbp_online.Classify_combined.tuned inst) inst );
  ]

let offline_packers =
  [
    ("ddff", Dbp_offline.Ddff.pack);
    ("dual-coloring", fun inst -> Dbp_offline.Dual_coloring.pack inst);
  ]

(* Level at time t recomputed directly from the item list. *)
let level_from_items items t =
  List.fold_left
    (fun acc r -> if Item.active_at r t then acc +. Item.size r else acc)
    0. items

let capacity_ok packing =
  List.for_all
    (fun b ->
      let items = Bin_state.items b in
      List.for_all
        (fun r ->
          level_from_items items (Item.arrival r)
          <= Bin_state.capacity +. Bin_state.tolerance)
        items)
    (Packing.bins packing)

let no_closed_bin_placement packing =
  List.for_all
    (fun b ->
      let by_arrival =
        List.sort
          (fun a b ->
            match Float.compare (Item.arrival a) (Item.arrival b) with
            | 0 -> Item.compare_by_id a b
            | c -> c)
          (Bin_state.items b)
      in
      match by_arrival with
      | [] -> true
      | first :: rest ->
          let _, ok =
            List.fold_left
              (fun (latest, ok) r ->
                ( Float.max latest (Item.departure r),
                  ok && Item.arrival r < latest ))
              (Item.departure first, true)
              rest
          in
          ok)
    (Packing.bins packing)

let usage_from_scratch packing =
  List.fold_left
    (fun acc b ->
      let span =
        Bin_state.items b
        |> List.map Item.interval
        |> Interval.union
        |> List.fold_left (fun acc i -> acc +. Interval.length i) 0.
      in
      acc +. span)
    0. (Packing.bins packing)

let usage_ok packing =
  let scratch = usage_from_scratch packing in
  Float.abs (Packing.total_usage_time packing -. scratch) <= 1e-9
  && Float.abs ((Dbp_core.Metrics.of_packing packing).Metrics.total_usage -. scratch)
     <= 1e-9

let invariant_tests ~online (name, pack) =
  [
    qtest ~count:120
      (Printf.sprintf "capacity within tolerance: %s" name)
      (gen_instance ~max_items:14 ())
      (fun inst -> capacity_ok (pack inst));
    qtest ~count:120
      (Printf.sprintf "usage = recomputed spans: %s" name)
      (gen_instance ~max_items:14 ())
      (fun inst -> usage_ok (pack inst));
  ]
  @
  if online then
    [
      qtest ~count:120
        (Printf.sprintf "no placement into closed bin: %s" name)
        (gen_instance ~max_items:14 ())
        (fun inst -> no_closed_bin_placement (pack inst));
    ]
  else []

(* ---- flat event heap: tie-break preservation --------------------------

   The flat engine replaces the boxed event heap with a (float key, int
   payload) pair of arrays; the payload packs (kind rank, slot) so that
   lexicographic (key, payload) order reproduces the boxed comparator:
   increasing time, departures before arrivals at equal times, then item
   id.  Pin that the encoding really preserves the order by draining the
   flat queue dry and comparing the full (time, kind, id) sequence
   against [Event.of_instance]. *)

module Ev = Dbp_core.Event
module FH = Dbp_core.Heap.Flat

let flat_pop_order inst =
  let items = Array.of_list (Instance.items inst) in
  let q = Ev.Flat.queue_of_items items in
  let rec drain acc =
    if FH.is_empty q then List.rev acc
    else
      let t = FH.min_key q in
      let p = FH.min_payload q in
      FH.remove_min q;
      drain
        ((t, Ev.Flat.payload_kind p, Item.id items.(Ev.Flat.payload_slot p))
        :: acc)
  in
  drain []

let boxed_order inst =
  List.map
    (fun e -> (e.Ev.time, e.Ev.kind, Item.id e.Ev.item))
    (Ev.of_instance inst)

(* Explicit equality — no polymorphic compare on float tuples. *)
let same_event (t1, k1, i1) (t2, k2, i2) =
  Float.equal t1 t2 && i1 = i2
  &&
  match (k1, k2) with
  | Ev.Arrival, Ev.Arrival | Ev.Departure, Ev.Departure -> true
  | _ -> false

let same_order inst = List.equal same_event (flat_pop_order inst) (boxed_order inst)

let test_flat_heap_tie_break_unit () =
  (* Three items colliding at t = 2: item 0 departs, items 1 and 2
     arrive.  The departure must pop first, then the arrivals in id
     order — the half-open-interval handoff the engines rely on. *)
  let inst =
    instance [ (0.6, 0., 2.); (0.6, 2., 3.); (0.3, 2., 4.) ]
  in
  let order = flat_pop_order inst in
  let expected =
    [
      (0., Ev.Arrival, 0);
      (2., Ev.Departure, 0);
      (2., Ev.Arrival, 1);
      (2., Ev.Arrival, 2);
      (3., Ev.Departure, 1);
      (4., Ev.Departure, 2);
    ]
  in
  check_bool "departure before equal-time arrivals, ids ascending" true
    (List.equal same_event expected order)

let flat_heap_tests =
  [
    Alcotest.test_case "flat heap: departure-before-arrival tie-break" `Quick
      test_flat_heap_tie_break_unit;
    qtest ~count:300 "flat heap pop order = Event.of_instance (general)"
      (gen_instance ~max_items:30 ())
      same_order;
    qtest ~count:300 "flat heap pop order = Event.of_instance (bursts)"
      (gen_burst_instance ())
      same_order;
    qtest ~count:300 "flat heap pop order = Event.of_instance (one-ulp)"
      (gen_tiny_duration_instance ())
      same_order;
  ]

(* ---- Bin_state.of_placement = the place_unchecked fold -----------------

   The flat engine records only each bin's placement chain and rebuilds
   the boxed [Bin_state] through [of_placement]; its contract is
   bit-identity with the incremental fold, including the canonical level
   profile.  Feed it placement chains the engine could actually produce
   (prefixes of first-fit bins) and arbitrary item lists alike — the
   contract covers both. *)

let breaks_equal p q =
  List.equal
    (fun (x1, v1) (x2, v2) -> Float.equal x1 x2 && Float.equal v1 v2)
    (Step_function.breaks p) (Step_function.breaks q)

let of_placement_matches placed =
  let folded =
    List.fold_left Bin_state.place_unchecked (Bin_state.empty ~index:3) placed
  in
  let rebuilt = Bin_state.of_placement ~index:3 placed in
  breaks_equal (Bin_state.level_profile folded) (Bin_state.level_profile rebuilt)
  && List.equal
       (fun a b -> Item.id a = Item.id b)
       (Bin_state.items folded) (Bin_state.items rebuilt)
  && Float.equal (Bin_state.usage_time folded) (Bin_state.usage_time rebuilt)
  && Bin_state.index rebuilt = 3

let of_placement_tests =
  [
    qtest ~count:400 "of_placement = place_unchecked fold (general)"
      (QCheck2.Gen.map Instance.items (gen_instance ~max_items:20 ()))
      of_placement_matches;
    qtest ~count:300 "of_placement = place_unchecked fold (bursts)"
      (QCheck2.Gen.map Instance.items (gen_burst_instance ~max_items:25 ()))
      of_placement_matches;
    qtest ~count:300 "of_placement = place_unchecked fold (engine bins)"
      (gen_instance ~max_items:25 ())
      (fun inst ->
        Dbp_online.Engine.run Dbp_online.Any_fit.first_fit inst
        |> Packing.bins
        |> List.for_all (fun b -> of_placement_matches (Bin_state.items b)));
  ]

let suite =
  List.concat_map (invariant_tests ~online:true) online_packers
  @ List.concat_map (invariant_tests ~online:false) offline_packers
  @ flat_heap_tests @ of_placement_tests
