(* The dbp.obs observability layer.

   Three pillars under test:

   - decision tracing: the reference and indexed engines emit
     byte-identical JSONL traces on random instances for every portfolio
     algorithm; observation never perturbs the packing; the resilient
     engine on an empty plan emits exactly the plain engine's trace; the
     ring buffer retains the newest events.

   - metrics: golden Prometheus/JSON exposition (exact text, stable
     ordering), registration guards, and fake-clock-driven latency
     histogram bucketing through Metrics_observer.

   - profiling: exact phase totals on a fake clock and their export into
     a registry. *)

open Dbp_core
open Helpers
module E = Dbp_online.Engine
module Obs = Dbp_obs

(* ---- decision tracing --------------------------------------------------- *)

let trace_reference algo inst =
  let r = Obs.Trace.create () in
  ignore (E.run_reference ~observer:(Obs.Trace.observer r) algo inst : Packing.t);
  Obs.Trace.to_jsonl r

let trace_indexed algo inst =
  let r = Obs.Trace.create () in
  ignore (E.run_indexed ~observer:(Obs.Trace.observer r) algo inst : Packing.t);
  Obs.Trace.to_jsonl r

(* Same list as the engine differential suite: deterministic algorithms
   (the seeded ones are deterministic given their seed, and both engines
   present the same arrival sequence to the coin stream). *)
let algorithms =
  [
    Dbp_online.Any_fit.first_fit;
    Dbp_online.Any_fit.best_fit;
    Dbp_online.Any_fit.worst_fit;
    Dbp_online.Any_fit.next_fit;
    Dbp_online.Any_fit.random_fit ~seed:7;
    Dbp_online.Any_fit.biased_open ~p:0.25 ~seed:3;
    Dbp_online.Hybrid_first_fit.make ();
    Dbp_online.Departure_aligned.make ~window:2. ();
    Dbp_online.Classify_departure.make ~rho:2. ();
    Dbp_online.Classify_duration.make ~alpha:2. ();
    Dbp_online.Classify_combined.make ~alpha:2. ();
  ]

let trace_identity_tests =
  List.map
    (fun algo ->
      qtest ~count:200
        (Printf.sprintf "trace identity reference = indexed: %s" algo.E.name)
        (gen_instance ~max_items:25 ())
        (fun inst ->
          String.equal (trace_reference algo inst) (trace_indexed algo inst)))
    algorithms

let trace_two_runs_identical =
  qtest ~count:200 "two runs produce byte-identical traces"
    (gen_instance ~max_items:25 ())
    (fun inst ->
      let algo = Dbp_online.Any_fit.first_fit in
      String.equal (trace_indexed algo inst) (trace_indexed algo inst))

let observer_does_not_perturb =
  qtest ~count:200 "observation never changes the packing"
    (gen_instance ~max_items:25 ())
    (fun inst ->
      let algo = Dbp_online.Any_fit.best_fit in
      let bare = E.run_indexed algo inst in
      let r = Obs.Trace.create () in
      let observed =
        E.run_indexed ~observer:(Obs.Trace.observer r) algo inst
      in
      Packing.bin_count bare = Packing.bin_count observed
      && Float.equal
           (Packing.total_usage_time bare)
           (Packing.total_usage_time observed)
      && List.for_all
           (fun item ->
             Packing.bin_of_item bare (Item.id item)
             = Packing.bin_of_item observed (Item.id item))
           (Instance.items inst))

(* The flat engine batches equal-time departures and defers fit-index
   updates; neither may reorder or drop observer emissions.  Burst
   instances maximise the pressure on that drain, and 150-item instances
   cross the fit index's and arena's growth boundaries mid-trace. *)
let trace_identity_adversarial_tests =
  List.map
    (fun algo ->
      qtest ~count:120
        (Printf.sprintf "trace identity under bursts: %s" algo.E.name)
        (gen_burst_instance ())
        (fun inst ->
          String.equal (trace_reference algo inst) (trace_indexed algo inst)))
    algorithms

let trace_identity_large_tests =
  List.map
    (fun algo ->
      qtest ~count:30
        (Printf.sprintf "trace identity at 150 items: %s" algo.E.name)
        (gen_instance ~max_items:150 ())
        (fun inst ->
          String.equal (trace_reference algo inst) (trace_indexed algo inst)))
    [
      Dbp_online.Any_fit.first_fit;
      Dbp_online.Any_fit.best_fit;
      Dbp_online.Any_fit.worst_fit;
      Dbp_online.Hybrid_first_fit.make ();
    ]

let resilient_empty_plan_trace =
  qtest ~count:150 "resilient engine, empty plan: trace = Engine.run's"
    (gen_instance ~max_items:20 ())
    (fun inst ->
      List.for_all
        (fun algo ->
          let plain = Obs.Trace.create () in
          ignore
            (E.run ~observer:(Obs.Trace.observer plain) algo inst : Packing.t);
          let resilient = Obs.Trace.create () in
          ignore
            (Dbp_faults.Resilient.run
               ~observer:(Obs.Trace.observer resilient)
               algo inst Dbp_faults.Fault_plan.empty
              : Dbp_faults.Resilient.outcome);
          String.equal (Obs.Trace.to_jsonl plain) (Obs.Trace.to_jsonl resilient))
        [ Dbp_online.Any_fit.first_fit; Dbp_online.Any_fit.best_fit ])

(* Under a materialised (generally non-empty) fault plan the resilient
   engine still runs on the flat substrate; its trace must be a pure
   function of (algorithm, instance, plan) — byte-identical on replay. *)
let resilient_faulty_plan_trace =
  qtest ~count:100 "resilient engine, faulty plan: byte-identical replay"
    (gen_instance ~max_items:20 ())
    (fun inst ->
      let plan =
        Dbp_faults.Fault_plan.generate ~seed:42
          Dbp_faults.Fault_plan.default_spec inst
      in
      let run () =
        let r = Obs.Trace.create () in
        ignore
          (Dbp_faults.Resilient.run
             ~observer:(Obs.Trace.observer r)
             Dbp_online.Any_fit.first_fit inst plan
            : Dbp_faults.Resilient.outcome);
        Obs.Trace.to_jsonl r
      in
      String.equal (run ()) (run ()))

let test_trace_event_order () =
  (* One item, one bin: the exact six-line lifecycle in order. *)
  let inst = instance [ (0.5, 1., 3.) ] in
  let r = Obs.Trace.create () in
  ignore
    (E.run ~observer:(Obs.Trace.observer r) Dbp_online.Any_fit.first_fit inst
      : Packing.t);
  check_string "full lifecycle"
    "{\"t\":1,\"ev\":\"arrival\",\"item\":0,\"size\":0.5}\n\
     {\"t\":1,\"ev\":\"decision\",\"item\":0,\"bin\":null}\n\
     {\"t\":1,\"ev\":\"open\",\"bin\":0}\n\
     {\"t\":1,\"ev\":\"place\",\"item\":0,\"bin\":0}\n\
     {\"t\":3,\"ev\":\"departure\",\"item\":0}\n\
     {\"t\":3,\"ev\":\"close\",\"bin\":0}\n"
    (Obs.Trace.to_jsonl r);
  check_string "header lines come first"
    "{\"algo\":\"first-fit\"}\n{\"t\":1,\"ev\":\"arrival\",\"item\":0,\"size\":0.5}\n"
    (String.concat ""
       (List.filteri
          (fun i _ -> i < 2)
          (String.split_on_char '\n'
             (Obs.Trace.to_jsonl ~header:[ "{\"algo\":\"first-fit\"}" ] r))
       |> List.map (fun l -> l ^ "\n")))

let test_ring_capacity () =
  let r = Obs.Trace.create ~capacity:3 () in
  for i = 0 to 4 do
    Obs.Trace.push r (Obs.Trace.Departure { time = float_of_int i; item = i })
  done;
  check_int "retains capacity" 3 (Obs.Trace.length r);
  check_int "counts everything pushed" 5 (Obs.Trace.emitted r);
  Alcotest.(check (list int))
    "keeps the newest, oldest first" [ 2; 3; 4 ]
    (List.map
       (function
         | Obs.Trace.Departure { item; _ } -> item
         | _ -> Alcotest.fail "unexpected event")
       (Obs.Trace.events r));
  Obs.Trace.clear r;
  check_int "clear resets retained" 0 (Obs.Trace.length r);
  check_int "clear resets emitted" 0 (Obs.Trace.emitted r)

let test_observer_pair () =
  let inst = instance [ (0.5, 0., 2.); (0.4, 1., 3.) ] in
  let a = Obs.Trace.create () in
  let b = Obs.Trace.create () in
  ignore
    (E.run
       ~observer:(Observer.pair (Obs.Trace.observer a) (Obs.Trace.observer b))
       Dbp_online.Any_fit.first_fit inst
      : Packing.t);
  check_bool "both sinks saw the stream" true
    (Obs.Trace.emitted a > 0
    && String.equal (Obs.Trace.to_jsonl a) (Obs.Trace.to_jsonl b))

(* ---- metrics registry --------------------------------------------------- *)

(* A registry exercising all three kinds, shared labels, help first-wins
   and both formatters; the exposition is pinned byte-for-byte. *)
let golden_registry () =
  let m = Obs.Metrics.create () in
  let ff =
    Obs.Metrics.counter m ~help:"Requests served"
      ~labels:[ ("algo", "ff") ]
      "demo_requests_total"
  in
  Obs.Metrics.inc ff;
  Obs.Metrics.inc ~by:2. ff;
  Obs.Metrics.inc
    (Obs.Metrics.counter m ~labels:[ ("algo", "bf") ] "demo_requests_total");
  Obs.Metrics.set (Obs.Metrics.gauge m ~help:"Open bins" "demo_open_bins") 3.;
  let h =
    Obs.Metrics.histogram m ~help:"Sizes" ~buckets:[ 0.5; 1. ] "demo_size"
  in
  Obs.Metrics.observe h 0.25;
  Obs.Metrics.observe h 0.75;
  Obs.Metrics.observe h 2.;
  m

let test_golden_prometheus () =
  check_string "exact exposition"
    "# HELP demo_open_bins Open bins\n\
     # TYPE demo_open_bins gauge\n\
     demo_open_bins 3\n\
     # HELP demo_requests_total Requests served\n\
     # TYPE demo_requests_total counter\n\
     demo_requests_total{algo=\"bf\"} 1\n\
     demo_requests_total{algo=\"ff\"} 3\n\
     # HELP demo_size Sizes\n\
     # TYPE demo_size histogram\n\
     demo_size_bucket{le=\"0.5\"} 1\n\
     demo_size_bucket{le=\"1\"} 2\n\
     demo_size_bucket{le=\"+Inf\"} 3\n\
     demo_size_sum 3\n\
     demo_size_count 3\n"
    (Obs.Metrics.to_prometheus (golden_registry ()))

let test_golden_json () =
  check_string "exact JSON"
    ("{\"metrics\":["
    ^ "{\"name\":\"demo_open_bins\",\"type\":\"gauge\",\"help\":\"Open \
       bins\",\"labels\":{},\"value\":3},"
    ^ "{\"name\":\"demo_requests_total\",\"type\":\"counter\",\"help\":\"Requests \
       served\",\"labels\":{\"algo\":\"bf\"},\"value\":1},"
    ^ "{\"name\":\"demo_requests_total\",\"type\":\"counter\",\"help\":\"Requests \
       served\",\"labels\":{\"algo\":\"ff\"},\"value\":3},"
    ^ "{\"name\":\"demo_size\",\"type\":\"histogram\",\"help\":\"Sizes\",\"labels\":{},\"buckets\":[{\"le\":0.5,\"count\":1},{\"le\":1,\"count\":2},{\"le\":\"+Inf\",\"count\":3}],\"sum\":3,\"count\":3}"
    ^ "]}\n")
    (Obs.Metrics.to_json (golden_registry ()))

let test_exposition_deterministic () =
  (* Two registries built by the same path render identically. *)
  check_string "byte-identical rebuild"
    (Obs.Metrics.to_prometheus (golden_registry ()))
    (Obs.Metrics.to_prometheus (golden_registry ()))

let test_registration_guards () =
  let m = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter m "dbp_things_total" : Obs.Metrics.counter);
  Alcotest.check_raises "kind conflict"
    (Invalid_argument
       "Metrics: dbp_things_total re-registered as a gauge (was counter)")
    (fun () -> ignore (Obs.Metrics.gauge m "dbp_things_total" : Obs.Metrics.gauge));
  let h = Obs.Metrics.histogram m ~buckets:[ 1.; 2. ] "dbp_h" in
  Obs.Metrics.observe h 1.5;
  Alcotest.check_raises "bucket conflict"
    (Invalid_argument "Metrics.histogram dbp_h: re-registered with different buckets")
    (fun () ->
      ignore
        (Obs.Metrics.histogram m ~buckets:[ 1.; 3. ] "dbp_h"
          : Obs.Metrics.histogram));
  Alcotest.check_raises "counters only go up"
    (Invalid_argument "Metrics.inc: counters only go up")
    (fun () -> Obs.Metrics.inc ~by:(-1.) (Obs.Metrics.counter m "dbp_up_total"));
  (* Idempotent registration: the second handle is the same cell. *)
  let c1 = Obs.Metrics.counter m "dbp_shared_total" in
  let c2 = Obs.Metrics.counter m "dbp_shared_total" in
  Obs.Metrics.inc c1;
  Obs.Metrics.inc c2;
  check_float "one cell behind both handles" 2. (Obs.Metrics.counter_value c1)

let test_histogram_bucketing () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m ~buckets:[ 1.; 2.; 5. ] "dbp_b" in
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.; 1.5; 4.; 100. ];
  Alcotest.(check (list (pair (option (float 0.)) int)))
    "boundary values land in their bucket (le is inclusive)"
    [ (Some 1., 2); (Some 2., 1); (Some 5., 1); (None, 1) ]
    (Obs.Metrics.bucket_counts h);
  check_int "count" 5 (Obs.Metrics.histogram_count h);
  check_float "sum" 107. (Obs.Metrics.histogram_sum h)

(* ---- fake clock / latency histogram / profiling ------------------------- *)

let test_fake_clock () =
  let fake = Obs.Clock.fake () in
  let clock = Obs.Clock.of_fake fake in
  check_float "starts at 0" 0. (Obs.Clock.now clock);
  Obs.Clock.advance fake 1.5;
  check_float "advances" 1.5 (Obs.Clock.now clock);
  Alcotest.check_raises "no going back"
    (Invalid_argument "Clock.advance: negative step") (fun () ->
      Obs.Clock.advance fake (-1.));
  let dt, v = Obs.Clock.elapsed ~clock (fun () -> Obs.Clock.advance fake 0.25; 7) in
  check_float "elapsed measures the step" 0.25 dt;
  check_int "elapsed returns the value" 7 v

let test_metrics_observer_latency_buckets () =
  (* Drive the observer callbacks by hand on a fake clock: each
     arrival->decision gap lands in a known latency bucket. *)
  let fake = Obs.Clock.fake () in
  let m = Obs.Metrics.create () in
  let o = Obs.Metrics_observer.observer ~clock:(Obs.Clock.of_fake fake) m in
  let item = Item.make ~id:0 ~size:0.5 ~arrival:0. ~departure:1. in
  List.iter
    (fun gap ->
      o.Observer.on_arrival ~time:0. ~item;
      Obs.Clock.advance fake gap;
      o.Observer.on_decision ~time:0. ~item ~bin:(Some 0))
    [ 5e-7; 2e-6; 0.05 ];
  let h =
    Obs.Metrics.histogram m ~buckets:Obs.Metrics_observer.latency_buckets
      "dbp_engine_decision_seconds"
  in
  check_int "three samples" 3 (Obs.Metrics.histogram_count h);
  check_float "sum is the advanced time" 0.0500025
    (Obs.Metrics.histogram_sum h);
  let count_le bound =
    List.assoc (Some bound) (Obs.Metrics.bucket_counts h)
  in
  check_int "5e-7 in le=1e-6" 1 (count_le 1e-6);
  check_int "2e-6 in le=3e-6" 1 (count_le 3e-6);
  check_int "0.05 in le=0.1" 1 (count_le 0.1)

let test_metrics_observer_engine_counts () =
  (* Deterministic counts from a real run: two items share one bin. *)
  let inst = instance [ (0.5, 0., 4.); (0.5, 1., 3.) ] in
  let m = Obs.Metrics.create () in
  ignore
    (E.run
       ~observer:(Obs.Metrics_observer.observer m)
       Dbp_online.Any_fit.first_fit inst
      : Packing.t);
  let value name = Obs.Metrics.counter_value (Obs.Metrics.counter m name) in
  check_float "arrivals" 2. (value "dbp_engine_arrivals_total");
  check_float "departures" 2. (value "dbp_engine_departures_total");
  check_float "placements" 2. (value "dbp_engine_placements_total");
  check_float "one bin opened" 1. (value "dbp_engine_bins_opened_total");
  check_float "one bin closed" 1. (value "dbp_engine_bins_closed_total");
  check_float "second decision reused the bin" 1.
    (value "dbp_engine_decisions_existing_total");
  check_float "no bins left open" 0.
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge m "dbp_engine_open_bins"));
  check_float "peak of 1" 1.
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge m "dbp_engine_open_bins_peak"))

let test_profile_phases () =
  let fake = Obs.Clock.fake () in
  let prof = Obs.Profile.create ~clock:(Obs.Clock.of_fake fake) () in
  let v =
    Obs.Profile.time prof "sweep.run" (fun () ->
        Obs.Clock.advance fake 1.5;
        42)
  in
  check_int "time returns the value" 42 v;
  Obs.Profile.time prof "sweep.run" (fun () -> Obs.Clock.advance fake 0.5);
  Obs.Profile.record prof "runner.evaluate" 2.;
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Profile.record: negative duration") (fun () ->
      Obs.Profile.record prof "runner.evaluate" (-1.));
  Alcotest.(check (list (pair string (triple int (float 1e-9) (float 1e-9)))))
    "phases sorted by name, exact totals on the fake clock"
    [ ("runner.evaluate", (1, 2., 2.)); ("sweep.run", (2, 2., 1.5)) ]
    (Obs.Profile.phases prof);
  let m = Obs.Metrics.create () in
  Obs.Profile.register prof m;
  let runs phase =
    Obs.Metrics.counter_value
      (Obs.Metrics.counter m
         ~labels:[ ("phase", phase) ]
         "dbp_profile_phase_runs_total")
  in
  check_float "exported run counts" 2. (runs "sweep.run");
  check_float "exported seconds" 2.
    (Obs.Metrics.counter_value
       (Obs.Metrics.counter m
          ~labels:[ ("phase", "runner.evaluate") ]
          "dbp_profile_phase_seconds_total"))

let test_runner_profile_integration () =
  (* evaluate/sweep charge exactly one sample to their phase. *)
  let inst = instance [ (0.5, 0., 2.); (0.3, 1., 4.) ] in
  let prof = Obs.Profile.create () in
  ignore
    (Dbp_sim.Runner.evaluate ~profile:prof
       [ Dbp_sim.Runner.online Dbp_online.Any_fit.first_fit ]
       inst
      : Dbp_sim.Runner.score list);
  match Obs.Profile.phases prof with
  | [ ("runner.evaluate", (1, total, _)) ] ->
      check_bool "nonnegative total" true (total >= 0.)
  | phases ->
      Alcotest.failf "expected one runner.evaluate sample, got %d"
        (List.length phases)

let suite =
  trace_identity_tests @ trace_identity_adversarial_tests
  @ trace_identity_large_tests
  @ [
      trace_two_runs_identical;
      observer_does_not_perturb;
      resilient_empty_plan_trace;
      resilient_faulty_plan_trace;
      Alcotest.test_case "trace event order and headers" `Quick
        test_trace_event_order;
      Alcotest.test_case "trace ring capacity" `Quick test_ring_capacity;
      Alcotest.test_case "Observer.pair fans out" `Quick test_observer_pair;
      Alcotest.test_case "golden Prometheus exposition" `Quick
        test_golden_prometheus;
      Alcotest.test_case "golden JSON exposition" `Quick test_golden_json;
      Alcotest.test_case "exposition is deterministic" `Quick
        test_exposition_deterministic;
      Alcotest.test_case "registration guards" `Quick test_registration_guards;
      Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
      Alcotest.test_case "fake clock" `Quick test_fake_clock;
      Alcotest.test_case "latency buckets on a fake clock" `Quick
        test_metrics_observer_latency_buckets;
      Alcotest.test_case "engine counts through the observer" `Quick
        test_metrics_observer_engine_counts;
      Alcotest.test_case "profile phases on a fake clock" `Quick
        test_profile_phases;
      Alcotest.test_case "runner charges one evaluate sample" `Quick
        test_runner_profile_integration;
    ]
