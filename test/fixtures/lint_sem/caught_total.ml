(* True negative: the partial call's exception is caught locally, so
   the residual may-raise set is empty. *)
let[@dbp.total] head_or default xs =
  match List.hd xs with v -> v | exception Failure _ -> default
