(* Seeded evasion: the alias hides Unix from the syntactic R9 walk. *)
module U = Unix

let pid () = U.getpid ()
