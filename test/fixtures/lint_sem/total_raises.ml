(* Seeded evasion: a documented-total function calling a partial stdlib
   function. *)
let[@dbp.total] first xs = List.hd xs
