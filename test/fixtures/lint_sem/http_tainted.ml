(* Seeded R12 violation: concurrency reach in the HTTP byte parser
   (compiled at lib/serve/http.ml, an R12 target since the sharded
   daemon — the parser exposed to hostile network bytes must stay free
   of clock/randomness/concurrency reach; IO stays in the listener
   shell). *)
let parse_request s =
  let d = Domain.spawn (fun () -> String.length s) in
  Domain.join d
