(* Seeded R12 violation: a clock read in the tenant router (compiled at
   lib/serve/router.ml, an R12 target since the sharded daemon — shard
   assignment must be a pure function of the tenant bytes). *)
let shard_for tenant shards =
  (Hashtbl.hash tenant + int_of_float (Unix.gettimeofday ())) mod shards
