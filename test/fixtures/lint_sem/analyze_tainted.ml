(* Seeded R12 violation: a clock read in the offline reporter (compiled
   at lib/serve/analyze.ml, an R12 target since the span pipeline — the
   report's contract is "same inputs, same bytes", so wall time must
   never leak into it). *)
let report lines =
  Printf.sprintf "generated at %f over %d lines" (Unix.gettimeofday ())
    (List.length lines)
