(* Seeded R12 violation: direct and transitive randomness in a decision
   path (compiled at lib/serve/session.ml, an R12 target). *)
let jitter () = Random.float 1.0

let decide load = load +. jitter ()
