module U = Unix

(* dbp-lint: allow R10 sanctioned alias for the syscall shim *)
let pid () = U.getpid ()
