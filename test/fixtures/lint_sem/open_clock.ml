(* Seeded evasion: the open resolves the clock read only for the
   typechecker; the written form is a bare identifier. *)
open Unix

let now () = gettimeofday ()
