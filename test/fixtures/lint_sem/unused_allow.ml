(* dbp-lint: allow R11 nothing raises here *)
let id x = x
