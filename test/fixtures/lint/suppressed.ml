(* both suppression positions: end of the flagged line, and line above *)
let same x y = x == y (* dbp-lint: allow R1 fixture keeps identity check *)

(* dbp-lint: allow R3 fixture demonstrates line-above suppression *)
let explode () = failwith "boom"
