(* seeded violation: physical equality on both operators *)
let same x y = x == y
let differ x y = x != y
