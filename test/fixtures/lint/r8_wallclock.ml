let a () = Unix.gettimeofday ()
let b () = Unix.time ()
let c () = Sys.time ()
let d () = Stdlib.Sys.time ()
