(* seeded violations: raw record construction of smart-constructor types *)
let iv = { left = 0.; right = 1. }
let it = { id = 1; size = 0.5; arrival = 0.; departure = 1. }
let shifted i = { i with Interval.right = 2. }
