let fd = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0
let s () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
let _ = Unix.kill (Unix.getpid ()) 9
let h () = Sys.set_signal 10 Sys.Signal_ignore
let pass (d : Unix.file_descr) = Unix.close d
let addr : Unix.sockaddr = Unix.ADDR_UNIX "/tmp/x"
let clock () = Unix.gettimeofday ()
