(* seeded violations: polymorphic comparison where intent must be explicit *)
let is_zero x = x = 0.
let nonneg x = x <> -1.
let sorted xs = List.sort compare xs
let is_unit r = r = { left = 0.; right = 1. }
