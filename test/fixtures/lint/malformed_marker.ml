(* dbp-lint: allower R1 typo in the verb *)
let fine x = x + 1

let ok y = y - 1 (* dbp-lint: allow R1 *)
