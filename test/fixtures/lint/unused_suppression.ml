(* dbp-lint: allow R1 nothing on the next line violates R1 *)
let fine x = x + 1

let also_fine y = y * 2 (* dbp-lint: allow R9 no such finding either *)
