(* seeded violations: console output (lib/-scoped rule) *)
let shout () = Printf.printf "loud\n"
let report s = print_endline s
let trace s = Format.eprintf "%s" s
