let fine = true
