(* seeded violation: no sibling orphan.mli *)
let lonely = true
