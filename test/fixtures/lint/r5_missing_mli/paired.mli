val fine : bool
