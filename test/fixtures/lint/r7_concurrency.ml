let d () = Domain.spawn (fun () -> ())
let m = Mutex.create ()
let c = Condition.create ()
let a = Atomic.make 0
let s () = Stdlib.Domain.cpu_relax ()
let t : Mutex.t list = []
