(* seeded violations: unstructured failure (lib/-scoped rule) *)
let explode () = failwith "boom"
let impossible () = assert false
