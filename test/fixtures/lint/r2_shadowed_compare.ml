(* a module-local comparator shadows Stdlib.compare: bare uses are fine,
   but the qualified polymorphic one is still flagged *)
let compare a b = Int.compare a b
let sorted xs = List.sort compare xs
let worst xs = List.sort Stdlib.compare xs
