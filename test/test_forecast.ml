open Dbp_core
open Helpers
module P = Dbp_forecast.Predictor

let by_size item = Printf.sprintf "%.2f" (Item.size item)

let test_predict_unseen_is_none () =
  let p = P.create ~key:by_size () in
  check_bool "none" true (P.predict_duration p (item ~size:0.5 0. 1.) = None);
  check_int "no classes" 0 (P.classes p)

let test_mean_of_observations () =
  let p = P.create ~key:by_size () in
  P.observe p (item ~id:0 ~size:0.5 0. 10.);
  P.observe p (item ~id:1 ~size:0.5 0. 20.);
  (match P.predict_duration p (item ~id:2 ~size:0.5 100. 101.) with
  | Some d -> check_float "mean" 15. d
  | None -> Alcotest.fail "expected prediction");
  check_int "samples" 2 (P.samples p (item ~id:3 ~size:0.5 0. 1.));
  check_int "one class" 1 (P.classes p)

let test_classes_are_independent () =
  let p = P.create ~key:by_size () in
  P.observe p (item ~id:0 ~size:0.5 0. 10.);
  P.observe p (item ~id:1 ~size:0.25 0. 99.);
  match P.predict_duration p (item ~id:2 ~size:0.5 0. 1.) with
  | Some d -> check_float "unpolluted" 10. d
  | None -> Alcotest.fail "expected prediction"

let test_stddev () =
  let p = P.create ~key:by_size () in
  P.observe p (item ~id:0 ~size:0.5 0. 10.);
  (match P.predict_stddev p (item ~id:1 ~size:0.5 0. 1.) with
  | Some s -> check_float "single sample" 0. s
  | None -> Alcotest.fail "expected stddev");
  P.observe p (item ~id:1 ~size:0.5 0. 20.);
  match P.predict_stddev p (item ~id:2 ~size:0.5 0. 1.) with
  | Some s -> check_float_eps 1e-9 "two samples" (sqrt 50.) s
  | None -> Alcotest.fail "expected stddev"

let test_estimator_fallback () =
  let p = P.create ~key:by_size () in
  let est = P.estimator ~fallback:7. p in
  check_float "fallback departure" 9. (est (item ~size:0.5 2. 3.))

let test_estimator_uses_prediction () =
  let p = P.create ~key:by_size () in
  P.observe p (item ~id:0 ~size:0.5 0. 10.);
  let est = P.estimator p in
  check_float "arrival + mean" 12. (est (item ~id:1 ~size:0.5 2. 3.))

let test_mae () =
  let p = P.create ~key:by_size () in
  P.observe p (item ~id:0 ~size:0.5 0. 10.);
  (* test set: durations 12 and 8, both predicted 10 -> MAE 2 *)
  let test_set = instance [ (0.5, 0., 12.); (0.5, 0., 8.) ] in
  check_float "mae" 2. (P.mean_absolute_error p test_set)

let test_welford_long_stream_stability () =
  let p = P.create ~key:by_size () in
  for i = 0 to 9_999 do
    P.observe p (item ~id:i ~size:0.5 0. (10. +. float_of_int (i mod 2)))
  done;
  match P.predict_duration p (item ~id:10000 ~size:0.5 0. 1.) with
  | Some d -> check_float_eps 1e-9 "stable mean" 10.5 d
  | None -> Alcotest.fail "expected prediction"

let prop_prediction_within_observed_range =
  qtest ~count:40 "mean within [min, max] of observations"
    QCheck2.Gen.(list_size (int_range 1 20) (float_range 0.5 20.))
    (fun durations ->
      let p = P.create ~key:by_size () in
      List.iteri
        (fun i d -> P.observe p (item ~id:i ~size:0.5 0. d))
        durations;
      match P.predict_duration p (item ~id:999 ~size:0.5 0. 1.) with
      | Some mean ->
          let lo = List.fold_left Float.min Float.infinity durations
          and hi = List.fold_left Float.max Float.neg_infinity durations in
          mean >= lo -. 1e-9 && mean <= hi +. 1e-9
      | None -> false)

(* ---- online-learning classifier ---- *)

let test_learned_classifier_valid_run () =
  let inst =
    Dbp_workload.Analytics.generate ~seed:2
      { Dbp_workload.Analytics.default with horizon = 360. }
  in
  let p =
    Dbp_online.Engine.run
      (Dbp_forecast.Learned_classifier.make ~fallback:5. ~rho:10. ())
      inst
  in
  check_bool "valid" true (Packing.bin_count p >= 1)

let test_learned_classifier_learns_within_run () =
  (* a recurring job class: early instances are misclassified by the
     fallback, later instances use the learned duration.  With fallback 1
     and true duration 40, the predicted category of a late job differs
     from the cold prediction -- observable via bin fragmentation
     compared to an oracle run *)
  let items =
    List.init 8 (fun i ->
        item ~id:i ~size:0.3
          (float_of_int i *. 50.)
          ((float_of_int i *. 50.) +. 40.))
  in
  let inst = Instance.of_items items in
  let learned =
    Dbp_online.Engine.run
      (Dbp_forecast.Learned_classifier.make ~fallback:1. ~rho:10. ())
      inst
  in
  (* every job is alone in time, so packing is trivially fine; the point
     is that the run completes and remains valid while the predictor
     updates across departures *)
  check_int "one bin per disjoint job stream"
    (Packing.bin_count learned)
    (Packing.bin_count
       (Dbp_online.Engine.run (Dbp_online.Classify_departure.make ~rho:10. ()) inst))

let test_engine_departure_hook_fires () =
  let seen = ref [] in
  let algo =
    {
      Dbp_online.Engine.name = "departure-spy";
      make =
        (fun () ->
          {
            Dbp_online.Engine.decide =
              (fun ~now:_ ~open_bins:_ _ -> Dbp_online.Engine.Open_new);
            notify = (fun ~item:_ ~index:_ -> ());
            departed = (fun item -> seen := Item.id item :: !seen);
          });
      make_indexed = None;
    }
  in
  let inst = instance [ (0.5, 0., 1.); (0.5, 0.5, 2.) ] in
  ignore (Dbp_online.Engine.run algo inst);
  Alcotest.(check (list int)) "departures observed in order" [ 0; 1 ]
    (List.rev !seen)

let prop_learned_classifier_valid =
  qtest ~count:40 "learned classifier packs validly" (gen_instance ())
    (fun inst ->
      Packing.bin_count
        (Dbp_online.Engine.run
           (Dbp_forecast.Learned_classifier.make ~rho:2. ())
           inst)
      >= 1)

let test_experiment_f1_runs () =
  let table = Dbp_sim.Experiments.learned_clairvoyance ~seeds:1 () in
  check_bool "renders" true
    (String.length (Dbp_sim.Report.to_text table) > 40)

let suite =
  [
    Alcotest.test_case "unseen class" `Quick test_predict_unseen_is_none;
    Alcotest.test_case "mean of observations" `Quick test_mean_of_observations;
    Alcotest.test_case "independent classes" `Quick test_classes_are_independent;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "estimator fallback" `Quick test_estimator_fallback;
    Alcotest.test_case "estimator prediction" `Quick test_estimator_uses_prediction;
    Alcotest.test_case "mean absolute error" `Quick test_mae;
    Alcotest.test_case "welford stability" `Quick test_welford_long_stream_stability;
    prop_prediction_within_observed_range;
    Alcotest.test_case "learned classifier runs" `Quick
      test_learned_classifier_valid_run;
    Alcotest.test_case "learned classifier learns in-run" `Quick
      test_learned_classifier_learns_within_run;
    Alcotest.test_case "engine departure hook" `Quick
      test_engine_departure_hook_fires;
    prop_learned_classifier_valid;
    Alcotest.test_case "F1 experiment runs" `Slow test_experiment_f1_runs;
  ]
