(* Golden regression tests: exact usage values of every algorithm on
   checked-in fixture traces.  Any behavioural change to an algorithm,
   the engine, the event ordering or the float conventions shows up here
   as an exact-value diff.

   Four fixtures: the original 224-item uniform trace (seed 77), two
   >= 10k-job traces, and a ~100k-job trace, all with generator seed and
   config recorded in their comment headers (regenerate with
   scripts/gen_fixtures.exe).  The large traces make engine refactors
   diffable at the scale where index bugs actually bite — a wrong
   tie-break that happens to survive 224 items will not survive 10k, and
   the 100k trace runs the flat engine's arena and batching machinery
   through thousands of bin open/close cycles.

   Regenerate the numbers deliberately (after an intended change) with
   `dune exec scripts/golden_totals.exe` and paste the new values. *)

open Dbp_core
open Helpers

(* dune runs the test binary from the build's test directory (fixtures
   are declared deps there); the other candidates cover manual runs. *)
let fixture_instance name =
  lazy
    (let candidates =
       [
         Filename.concat "fixtures" name;
         Filename.concat "test/fixtures" name;
         Filename.concat (Filename.dirname Sys.executable_name)
           (Filename.concat "fixtures" name);
       ]
     in
     match List.find_opt Sys.file_exists candidates with
     | Some path -> Dbp_workload.Trace.load path
     | None -> failwith ("golden fixture not found: " ^ name))

let fixture = fixture_instance "uniform_seed77.csv"
let fixture_10k_uniform = fixture_instance "uniform_seed2101_10k.csv"
let fixture_10k_dense = fixture_instance "dense_seed2102_10k.csv"
let fixture_100k = fixture_instance "uniform_seed2103_100k.csv"

let golden_usage = 1e-6

let check_usage fixture name expected pack () =
  let inst = Lazy.force fixture in
  check_float_eps golden_usage name expected
    (Packing.total_usage_time (pack inst))

let test_fixture_shape () =
  let inst = Lazy.force fixture in
  check_int "items" 224 (Instance.length inst);
  check_float_eps golden_usage "lower bound" 409.779318605
    (Dbp_opt.Lower_bounds.best inst)

let test_large_fixture_shapes () =
  check_int "uniform 10k items" 10631
    (Instance.length (Lazy.force fixture_10k_uniform));
  check_int "dense 10k items" 10517
    (Instance.length (Lazy.force fixture_10k_dense));
  check_int "uniform 100k items" 99562
    (Instance.length (Lazy.force fixture_100k))

(* The reference engine is itself pinned on the small fixture, so the
   oracle the differential suite compares against cannot drift either. *)
let test_reference_engine_pinned () =
  let inst = Lazy.force fixture in
  check_float_eps golden_usage "reference first-fit" 535.948051486
    (Packing.total_usage_time
       (Dbp_online.Engine.run_reference Dbp_online.Any_fit.first_fit inst));
  check_float_eps golden_usage "reference best-fit" 529.190261336
    (Packing.total_usage_time
       (Dbp_online.Engine.run_reference Dbp_online.Any_fit.best_fit inst))

(* Engine parity at fixture scale: bit-identical usage on a 10k trace. *)
let test_engine_parity_10k () =
  let inst = Lazy.force fixture_10k_uniform in
  List.iter
    (fun algo ->
      check_float_eps 0. ("parity " ^ algo.Dbp_online.Engine.name)
        (Packing.total_usage_time (Dbp_online.Engine.run_reference algo inst))
        (Packing.total_usage_time (Dbp_online.Engine.run_indexed algo inst)))
    [ Dbp_online.Any_fit.first_fit; Dbp_online.Any_fit.best_fit ]

let run = Dbp_online.Engine.run

let online_cases fixture tag values =
  List.map
    (fun (name, expected, algo) ->
      Alcotest.test_case
        (Printf.sprintf "%s usage (%s)" name tag)
        `Quick
        (check_usage fixture name expected (fun inst -> run (algo inst) inst)))
    values

(* Algorithm table per fixture.  Dual Coloring is pinned only on the
   small fixture: it is O(n^2)+ and takes minutes on 10k jobs. *)
let small_values =
  [
    ("first-fit", 535.948051486, fun _ -> Dbp_online.Any_fit.first_fit);
    ("best-fit", 529.190261336, fun _ -> Dbp_online.Any_fit.best_fit);
    ("worst-fit", 574.475574916, fun _ -> Dbp_online.Any_fit.worst_fit);
    ("next-fit", 736.323036644, fun _ -> Dbp_online.Any_fit.next_fit);
    ("hybrid-ff", 600.020981301, fun _ -> Dbp_online.Hybrid_first_fit.make ());
    ("cbdt-ff", 648.848434420, fun i -> Dbp_online.Classify_departure.tuned i);
    ("cbd-ff", 661.350927663, (fun i -> Dbp_online.Classify_duration.tuned i));
    ("combined-ff", 716.934587037, fun i -> Dbp_online.Classify_combined.tuned i);
  ]

let uniform_10k_values =
  [
    ("first-fit", 21570.946860764, fun _ -> Dbp_online.Any_fit.first_fit);
    ("best-fit", 21594.240047686, fun _ -> Dbp_online.Any_fit.best_fit);
    ("worst-fit", 23677.492090019, fun _ -> Dbp_online.Any_fit.worst_fit);
    ("next-fit", 30919.055029539, fun _ -> Dbp_online.Any_fit.next_fit);
    ("hybrid-ff", 25393.473727456, fun _ -> Dbp_online.Hybrid_first_fit.make ());
    ("cbdt-ff", 26130.211579783, fun i -> Dbp_online.Classify_departure.tuned i);
    ("cbd-ff", 26810.657923001, (fun i -> Dbp_online.Classify_duration.tuned i));
    ( "combined-ff",
      30253.140147243,
      fun i -> Dbp_online.Classify_combined.tuned i );
  ]

let dense_10k_values =
  [
    ("first-fit", 21724.346154517, fun _ -> Dbp_online.Any_fit.first_fit);
    ("best-fit", 21358.697747795, fun _ -> Dbp_online.Any_fit.best_fit);
    ("worst-fit", 22378.298786765, fun _ -> Dbp_online.Any_fit.worst_fit);
    ("next-fit", 26480.879105506, fun _ -> Dbp_online.Any_fit.next_fit);
    ("hybrid-ff", 25083.413279340, fun _ -> Dbp_online.Hybrid_first_fit.make ());
    ("cbdt-ff", 23126.138259396, fun i -> Dbp_online.Classify_departure.tuned i);
    ("cbd-ff", 23485.848664360, (fun i -> Dbp_online.Classify_duration.tuned i));
    ( "combined-ff",
      24469.425504645,
      fun i -> Dbp_online.Classify_combined.tuned i );
  ]

(* The 100k fixture pins the five engine-benched algorithms — the scale
   where the flat engine's arena reuse and batched drains run thousands
   of cycles.  usage_time takes the [run_usage] fast path (no boxed
   packing at all), so pinning it against the same table also pins the
   fast path's bit-identity at fixture scale. *)
let uniform_100k_values =
  [
    ("first-fit", 203474.750446572, fun _ -> Dbp_online.Any_fit.first_fit);
    ("best-fit", 204466.857429296, fun _ -> Dbp_online.Any_fit.best_fit);
    ("worst-fit", 222946.616341789, fun _ -> Dbp_online.Any_fit.worst_fit);
    ("next-fit", 291565.942024068, fun _ -> Dbp_online.Any_fit.next_fit);
    ( "hybrid-ff",
      239557.976824257,
      fun _ -> Dbp_online.Hybrid_first_fit.make () );
  ]

let test_usage_fast_path_100k () =
  let inst = Lazy.force fixture_100k in
  List.iter
    (fun (name, expected, algo) ->
      check_float_eps golden_usage
        (Printf.sprintf "run_usage %s" name)
        expected
        (Dbp_online.Engine.run_usage (algo inst) inst))
    uniform_100k_values

let suite =
  [
    Alcotest.test_case "fixture shape" `Quick test_fixture_shape;
    Alcotest.test_case "large fixture shapes" `Quick test_large_fixture_shapes;
    Alcotest.test_case "reference engine pinned" `Quick
      test_reference_engine_pinned;
    Alcotest.test_case "engine parity on 10k trace" `Quick
      test_engine_parity_10k;
    Alcotest.test_case "ddff usage" `Quick
      (check_usage fixture "ddff" 504.630515721 Dbp_offline.Ddff.pack);
    Alcotest.test_case "dual coloring usage" `Quick
      (check_usage fixture "dual-coloring" 897.357705308 (fun i ->
           Dbp_offline.Dual_coloring.pack i));
    Alcotest.test_case "ddff usage (uniform-10k)" `Quick
      (check_usage fixture_10k_uniform "ddff" 20953.481612078
         Dbp_offline.Ddff.pack);
    Alcotest.test_case "ddff usage (dense-10k)" `Quick
      (check_usage fixture_10k_dense "ddff" 21630.916195636
         Dbp_offline.Ddff.pack);
  ]
  @ online_cases fixture "seed77" small_values
  @ online_cases fixture_10k_uniform "uniform-10k" uniform_10k_values
  @ online_cases fixture_10k_dense "dense-10k" dense_10k_values
  @ online_cases fixture_100k "uniform-100k" uniform_100k_values
  @ [
      Alcotest.test_case "run_usage fast path (uniform-100k)" `Quick
        test_usage_fast_path_100k;
    ]
