(* The dbp command-line tool.

   Subcommands:
     run          pack a workload with the algorithm portfolio and score it
     figure8      print the paper's Figure 8 series (theoretical curves)
     experiments  regenerate the full experiment suite (see DESIGN.md)
     gadget       run the Theorem 3 golden-ratio gadget
     gen          generate a workload trace to CSV
     pack         pack a CSV trace with one algorithm and dump assignments
     faults       run a workload under injected faults and score degradation
     serve        run the streaming packing daemon (JSONL in, decisions out)
     lint         run the dbp-lint static-analysis pass over the sources *)

open Cmdliner

(* ---- shared argument parsing ---- *)

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Run across N domains through the dbp.par pool (results are \
           bit-identical to the sequential run).  0 means auto: \
           recommended cores minus one, clamped to 8.  Default: \
           sequential.")

(* [--domains] wraps the command body in a pool: absent means the
   sequential code path, 0 means Pool.default_domains. *)
let with_opt_pool domains f =
  match domains with
  | None -> f None
  | Some n ->
      let domains = if n = 0 then Dbp_par.Pool.default_domains () else n in
      Dbp_par.Pool.with_pool ~domains (fun pool -> f (Some pool))

let workload_conv =
  Arg.enum
    [
      ("uniform", `Uniform); ("gaming", `Gaming); ("analytics", `Analytics);
      ("vm", `Vm);
    ]

let workload_arg =
  Arg.(
    value
    & opt workload_conv `Uniform
    & info [ "workload"; "w" ] ~docv:"KIND"
        ~doc:
          "Workload family: $(b,uniform), $(b,gaming), $(b,analytics) or \
           $(b,vm).")

let trace_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"Read the instance from a CSV trace.")

let make_instance ~seed workload trace =
  match trace with
  | Some path -> Dbp_workload.Trace.load path
  | None -> (
      match workload with
      | `Uniform ->
          Dbp_workload.Generator.generate ~seed Dbp_workload.Generator.default
      | `Gaming ->
          Dbp_workload.Cloud_gaming.generate ~seed
            Dbp_workload.Cloud_gaming.default
      | `Analytics ->
          Dbp_workload.Analytics.generate ~seed Dbp_workload.Analytics.default
      | `Vm -> Dbp_workload.Vm_fleet.generate ~seed Dbp_workload.Vm_fleet.default)

(* ---- observability plumbing (shared by run/figure8/experiments) ---- *)

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write a metrics exposition to FILE after the run: Prometheus \
           text format, or JSON when FILE ends in $(b,.json).  $(b,-) \
           writes Prometheus text to stdout.")

let write_out ~path content =
  if path = "-" then print_string content
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc content);
    Printf.printf "wrote %s\n" path
  end

let write_metrics ~path metrics =
  let content =
    if path <> "-" && Filename.check_suffix path ".json" then
      Dbp_obs.Metrics.to_json metrics
    else Dbp_obs.Metrics.to_prometheus metrics
  in
  write_out ~path content

let register_pool_stats metrics pool =
  let s = Dbp_par.Pool.stats pool in
  let tally name help v =
    Dbp_obs.Metrics.inc ~by:(float_of_int v)
      (Dbp_obs.Metrics.counter metrics ~help name)
  in
  tally "dbp_pool_jobs_total" "Parallel jobs submitted to the domain pool."
    s.Dbp_par.Pool.jobs;
  tally "dbp_pool_chunks_total" "Work chunks executed across pool domains."
    s.Dbp_par.Pool.chunks;
  tally "dbp_pool_steals_total" "Chunks taken from another domain's queue."
    s.Dbp_par.Pool.steals

(* [--metrics-out] wraps a command body in a (registry, profiler) pair
   that only exists when the flag is given; the profiler's phases are
   folded into the registry before it is written out. *)
let with_metrics metrics_out f =
  match metrics_out with
  | None -> f None
  | Some path ->
      let metrics = Dbp_obs.Metrics.create () in
      let profile = Dbp_obs.Profile.create () in
      let result = f (Some (metrics, profile)) in
      Dbp_obs.Profile.register profile metrics;
      write_metrics ~path metrics;
      result

(* ---- run ---- *)

let run_cmd =
  let opt_flag =
    Arg.(
      value & flag
      & info [ "opt" ]
          ~doc:
            "Also compute the exact repacking-adversary ratio (exponential; \
             small instances only).")
  in
  let algos_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "algo"; "a" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Restrict to an algorithm (repeatable). One of: %s."
               (String.concat ", " Dbp_sim.Runner.names)))
  in
  let metrics_flag =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Also print detailed per-algorithm packing metrics.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the online algorithms' decision traces to FILE as \
             JSONL, one $(b,{\"algo\":...}) header line per algorithm \
             followed by its event stream.  Traces carry simulation time \
             only and are byte-identical across runs.  $(b,-) writes to \
             stdout.")
  in
  let run seed workload trace opt algos metrics domains trace_out metrics_out =
    let instance = make_instance ~seed workload trace in
    let packers =
      match algos with
      | [] -> Dbp_sim.Runner.default_portfolio
      | names ->
          List.map
            (fun n ->
              match Dbp_sim.Runner.by_name n with
              | Some p -> p
              | None ->
                  Printf.eprintf "unknown algorithm %S; known: %s\n" n
                    (String.concat ", " Dbp_sim.Runner.names);
                  exit 2)
            names
    in
    Printf.printf "instance: %d items, span %.2f, demand %.2f, mu %.2f\n"
      (Dbp_core.Instance.length instance)
      (Dbp_core.Instance.span instance)
      (Dbp_core.Instance.demand instance)
      (Dbp_core.Instance.mu instance);
    (* Online portfolio members as engines, restricted to the --algo
       selection; trace and metric re-runs observe exactly these. *)
    let selected_engines () =
      let all = Dbp_sim.Runner.engines instance in
      match algos with
      | [] -> all
      | names -> List.filter (fun (label, _) -> List.mem label names) all
    in
    with_metrics metrics_out (fun obs ->
        let profile = Option.map snd obs in
        let scores =
          with_opt_pool domains (fun pool ->
              let scores =
                Dbp_sim.Runner.evaluate ?pool ?profile ~opt packers instance
              in
              (match (obs, pool) with
              | Some (m, _), Some p -> register_pool_stats m p
              | _ -> ());
              scores)
        in
        Dbp_sim.Report.print (Dbp_sim.Runner.score_table scores);
        if metrics then
          List.iter
            (fun (p : Dbp_sim.Runner.packer) ->
              Printf.printf "\n%s\n" p.Dbp_sim.Runner.label;
              Format.printf "%a"
                Dbp_core.Metrics.pp
                (Dbp_core.Metrics.of_packing (p.Dbp_sim.Runner.pack instance)))
            packers;
        (match trace_out with
        | None -> ()
        | Some path ->
            let sections =
              List.map
                (fun (label, algo) ->
                  let recorder = Dbp_obs.Trace.create () in
                  ignore
                    (Dbp_online.Engine.run
                       ~observer:(Dbp_obs.Trace.observer recorder)
                       algo instance);
                  Dbp_obs.Trace.to_jsonl
                    ~header:[ Printf.sprintf "{\"algo\":\"%s\"}" label ]
                    recorder)
                (selected_engines ())
            in
            write_out ~path (String.concat "" sections));
        match obs with
        | None -> ()
        | Some (m, _) ->
            List.iter
              (fun (label, algo) ->
                ignore
                  (Dbp_online.Engine.run
                     ~observer:
                       (Dbp_obs.Metrics_observer.observer
                          ~labels:[ ("algo", label) ]
                          m)
                     algo instance))
              (selected_engines ()))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Pack a workload with the portfolio and score it.")
    Term.(
      const run $ seed_arg $ workload_arg $ trace_arg $ opt_flag $ algos_arg
      $ metrics_flag $ domains_arg $ trace_out_arg $ metrics_out_arg)

(* ---- figure8 ---- *)

let figure8_cmd =
  let max_mu =
    Arg.(value & opt int 100 & info [ "max-mu" ] ~docv:"N" ~doc:"Largest mu.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  let run max_mu csv domains metrics_out =
    let mus = List.init max_mu (fun i -> float_of_int (i + 1)) in
    let table =
      with_metrics metrics_out (fun obs ->
          with_opt_pool domains (fun pool ->
              let compute () = Dbp_sim.Experiments.figure8 ?pool ~mus () in
              let table =
                match obs with
                | None -> compute ()
                | Some (_, profile) ->
                    Dbp_obs.Profile.time profile "cli.figure8" compute
              in
              (match (obs, pool) with
              | Some (m, _), Some p -> register_pool_stats m p
              | _ -> ());
              table))
    in
    if csv then print_string (Dbp_sim.Report.to_csv table)
    else begin
      Dbp_sim.Report.print ~title:"Figure 8: best competitive ratios" table;
      Printf.printf "\ncrossover mu (paper: 4): %.2f\n"
        (Dbp_sim.Experiments.figure8_crossover ())
    end
  in
  Cmd.v
    (Cmd.info "figure8" ~doc:"Print the paper's Figure 8 series.")
    Term.(const run $ max_mu $ csv $ domains_arg $ metrics_out_arg)

(* ---- experiments ---- *)

let experiments_cmd =
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"PREFIX"
          ~doc:"Run only experiments whose id starts with PREFIX (e.g. T3).")
  in
  let run only domains metrics_out =
    let selected =
      with_metrics metrics_out (fun obs ->
          with_opt_pool domains (fun pool ->
              let compute () = Dbp_sim.Experiments.all ?pool () in
              let tables =
                match obs with
                | None -> compute ()
                | Some (_, profile) ->
                    Dbp_obs.Profile.time profile "cli.experiments" compute
              in
              (match (obs, pool) with
              | Some (m, _), Some p -> register_pool_stats m p
              | _ -> ());
              tables))
      |> List.filter (fun (name, _) ->
             match only with
             | None -> true
             | Some p ->
                 String.length name >= String.length p
                 && String.sub name 0 (String.length p) = p)
    in
    if selected = [] then begin
      Printf.eprintf "no experiment matches %s\n"
        (Option.value ~default:"" only);
      exit 2
    end;
    List.iter
      (fun (name, table) -> Dbp_sim.Report.print ~title:name table)
      selected
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the experiment suite (tables T1-T5, E1-E4, F8).")
    Term.(const run $ only $ domains_arg $ metrics_out_arg)

(* ---- gadget ---- *)

let gadget_cmd =
  let x_arg =
    Arg.(
      value
      & opt float Dbp_workload.Adversarial.golden_ratio
      & info [ "x" ] ~docv:"X" ~doc:"Duration of the long items (> 1).")
  in
  let eps_arg =
    Arg.(value & opt float 0.01 & info [ "eps" ] ~docv:"E" ~doc:"Size offset.")
  in
  let tau_arg =
    Arg.(
      value & opt float 1e-6 & info [ "tau" ] ~docv:"T" ~doc:"Second-wave delay.")
  in
  let run x eps tau =
    let open Dbp_workload.Adversarial in
    let algos =
      [
        Dbp_online.Any_fit.first_fit;
        Dbp_online.Any_fit.best_fit;
        Dbp_online.Classify_departure.make ~rho:(sqrt x) ();
        Dbp_online.Classify_duration.make ~alpha:2. ();
      ]
    in
    Printf.printf
      "Theorem 3 gadget (x=%g, eps=%g, tau=%g); online LB = %.6f\n\n" x eps tau
      Dbp_theory.Ratios.online_lower_bound;
    List.iter
      (fun algo ->
        let ratio case =
          let inst = theorem3 ~x ~eps ~tau case in
          Dbp_core.Packing.total_usage_time (Dbp_online.Engine.run algo inst)
          /. theorem3_opt_usage ~x ~tau case
        in
        let a = ratio A and b = ratio B in
        Printf.printf "%-22s case A %.4f   case B %.4f   worst %.4f\n"
          algo.Dbp_online.Engine.name a b (Float.max a b))
      algos
  in
  Cmd.v
    (Cmd.info "gadget" ~doc:"Run the Theorem 3 golden-ratio gadget.")
    Term.(const run $ x_arg $ eps_arg $ tau_arg)

(* ---- gen ---- *)

let gen_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CSV path.")
  in
  let jsonl_flag =
    Arg.(
      value & flag
      & info [ "jsonl" ]
          ~doc:
            "Emit JSONL arrival lines (the $(b,dbp serve) wire format, \
             arrival order) instead of CSV.  $(b,-o -) writes to stdout.")
  in
  let horizon_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "horizon" ] ~docv:"T"
          ~doc:
            "Override the generated horizon (time units; $(b,uniform) \
             family only).  Arrival count scales with it — the default \
             rate yields about 2T arrivals.")
  in
  let tenants_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tenants" ] ~docv:"K"
          ~doc:
            "With $(b,--jsonl): stamp each arrival with a \
             $(b,\"tenant\":\"tJ\") field, J = id mod K — the key \
             $(b,dbp serve --shards) routes by.  Deterministic, so the \
             same trace regenerates identically.")
  in
  let run seed workload out jsonl horizon tenants =
    let instance =
      match horizon with
      | None -> make_instance ~seed workload None
      | Some horizon -> (
          match workload with
          | `Uniform ->
              Dbp_workload.Generator.generate ~seed
                { Dbp_workload.Generator.default with horizon }
          | _ ->
              prerr_endline "dbp gen: --horizon only applies to -w uniform";
              exit 2)
    in
    (match tenants with
    | Some k when k < 1 ->
        prerr_endline "dbp gen: --tenants must be >= 1";
        exit 2
    | Some _ when not jsonl ->
        prerr_endline "dbp gen: --tenants needs --jsonl (CSV has no tenant)";
        exit 2
    | _ -> ());
    if jsonl then begin
      let buf = Buffer.create 4096 in
      List.iter
        (fun item ->
          let tenant =
            Option.map
              (fun k ->
                Printf.sprintf "t%d" (Dbp_core.Item.id item mod k))
              tenants
          in
          Buffer.add_string buf (Dbp_serve.Arrival.render ?tenant item);
          Buffer.add_char buf '\n')
        (Dbp_core.Instance.arrivals_in_order instance);
      write_out ~path:out (Buffer.contents buf)
    end
    else begin
      Dbp_workload.Trace.save out instance;
      Printf.printf "wrote %d items to %s\n"
        (Dbp_core.Instance.length instance)
        out
    end
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a workload trace to CSV or JSONL.")
    Term.(
      const run $ seed_arg $ workload_arg $ out $ jsonl_flag $ horizon_arg
      $ tenants_arg)

(* ---- pack ---- *)

let pack_cmd =
  let algo_arg =
    Arg.(
      value
      & opt string "first-fit"
      & info [ "algo"; "a" ] ~docv:"NAME" ~doc:"Algorithm to pack with.")
  in
  let trace_req =
    Arg.(
      required
      & opt (some file) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"CSV trace to pack.")
  in
  let gantt_flag =
    Arg.(
      value & flag
      & info [ "gantt" ] ~doc:"Render an ASCII Gantt chart instead of CSV.")
  in
  let run algo trace gantt =
    let instance = Dbp_workload.Trace.load trace in
    let packer =
      match Dbp_sim.Runner.by_name algo with
      | Some p -> p
      | None ->
          Printf.eprintf "unknown algorithm %S; known: %s\n" algo
            (String.concat ", " Dbp_sim.Runner.names);
          exit 2
    in
    let packing = packer.Dbp_sim.Runner.pack instance in
    if gantt then print_string (Dbp_sim.Gantt.render packing)
    else begin
      Printf.printf "item_id,bin\n";
      List.iter
        (fun r ->
          Printf.printf "%d,%d\n" (Dbp_core.Item.id r)
            (Dbp_core.Packing.bin_of_item packing (Dbp_core.Item.id r)))
        (Dbp_core.Instance.items instance)
    end;
    Printf.eprintf "# %s: usage %.4f over %d bins\n" algo
      (Dbp_core.Packing.total_usage_time packing)
      (Dbp_core.Packing.bin_count packing)
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:"Pack a CSV trace and print item-to-bin assignment or a chart.")
    Term.(const run $ algo_arg $ trace_req $ gantt_flag)

(* ---- flex ---- *)

let flex_cmd =
  let slack_arg =
    Arg.(
      value & opt float 1.
      & info [ "slack" ] ~docv:"F"
          ~doc:"Window slack as a multiple of each job's length.")
  in
  let run seed workload slack =
    let instance = make_instance ~seed workload None in
    let jobs =
      Dbp_core.Instance.items instance
      |> List.map (fun item ->
             Dbp_flex.Flex_job.of_item
               ~slack:(slack *. Dbp_core.Item.duration item)
               item)
    in
    Printf.printf "%d jobs, slack %.2fx length\n\n" (List.length jobs) slack;
    List.iter
      (fun name ->
        let scheduler = Option.get (Dbp_flex.Flex_schedule.by_name name) in
        let s = scheduler jobs in
        Dbp_flex.Flex_schedule.check s;
        Printf.printf "%-8s usage %10.2f   bins %4d\n" name
          (Dbp_flex.Flex_schedule.usage s)
          (Dbp_core.Packing.bin_count s.Dbp_flex.Flex_schedule.packing))
      Dbp_flex.Flex_schedule.names
  in
  Cmd.v
    (Cmd.info "flex"
       ~doc:"Schedule a workload as flexible jobs (release + deadline).")
    Term.(const run $ seed_arg $ workload_arg $ slack_arg)

(* ---- faults ---- *)

let fault_algos instance =
  [
    ("first-fit", Dbp_online.Any_fit.first_fit);
    ("best-fit", Dbp_online.Any_fit.best_fit);
    ("worst-fit", Dbp_online.Any_fit.worst_fit);
    ("next-fit", Dbp_online.Any_fit.next_fit);
    ("hybrid-ff", Dbp_online.Hybrid_first_fit.make ());
    ("cbdt-ff*", Dbp_online.Classify_departure.tuned instance);
    ("cbd-ff*", Dbp_online.Classify_duration.tuned instance);
  ]

let faults_cmd =
  let fault_seed =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~docv:"N" ~doc:"Seed of the fault plan PRNG.")
  in
  let crash_rate =
    Arg.(
      value
      & opt float Dbp_faults.Fault_plan.default_spec.crash_rate
      & info [ "crash-rate" ] ~docv:"R" ~doc:"Expected bin crashes per unit time.")
  in
  let slip_prob =
    Arg.(
      value
      & opt float Dbp_faults.Fault_plan.default_spec.slip_prob
      & info [ "slip-prob" ] ~docv:"P"
          ~doc:"Per-job probability of overstaying its declared departure.")
  in
  let slip_stretch =
    Arg.(
      value
      & opt float Dbp_faults.Fault_plan.default_spec.slip_stretch
      & info [ "slip-stretch" ] ~docv:"F"
          ~doc:"Mean overstay as a multiple of the job's duration.")
  in
  let burst_rate =
    Arg.(
      value
      & opt float Dbp_faults.Fault_plan.default_spec.burst_rate
      & info [ "burst-rate" ] ~docv:"R" ~doc:"Expected arrival bursts per unit time.")
  in
  let burst_size =
    Arg.(
      value
      & opt int Dbp_faults.Fault_plan.default_spec.burst_size
      & info [ "burst-size" ] ~docv:"N" ~doc:"Jobs injected per burst.")
  in
  let admission =
    Arg.(
      value & flag
      & info [ "admission-controlled" ]
          ~doc:
            "Recovered jobs may not open new bins (capacity-capped fleet); \
             default policy is elastic.")
  in
  let max_retries =
    Arg.(
      value
      & opt int Dbp_faults.Recovery.default.max_retries
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Re-placement retries before a displaced job is rejected.")
  in
  let backoff =
    Arg.(
      value
      & opt float Dbp_faults.Recovery.default.backoff
      & info [ "backoff" ] ~docv:"T"
          ~doc:"Delay before the first re-placement retry (doubles per retry).")
  in
  let algos_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "algo"; "a" ] ~docv:"NAME"
          ~doc:"Restrict to an online algorithm (repeatable).")
  in
  let run seed workload trace fault_seed crash_rate slip_prob slip_stretch
      burst_rate burst_size admission max_retries backoff algos =
    let instance = make_instance ~seed workload trace in
    let spec =
      {
        Dbp_faults.Fault_plan.crash_rate;
        slip_prob;
        slip_stretch;
        burst_rate;
        burst_size;
      }
    in
    let plan = Dbp_faults.Fault_plan.generate ~seed:fault_seed spec instance in
    let policy =
      let base =
        if admission then Dbp_faults.Recovery.admission_controlled ()
        else Dbp_faults.Recovery.default
      in
      { base with Dbp_faults.Recovery.max_retries; backoff }
    in
    let available = fault_algos instance in
    let selected =
      match algos with
      | [] -> available
      | names ->
          List.map
            (fun n ->
              match List.assoc_opt n available with
              | Some a -> (n, a)
              | None ->
                  Printf.eprintf "unknown algorithm %S; known: %s\n" n
                    (String.concat ", " (List.map fst available));
                  exit 2)
            names
    in
    Printf.printf "instance: %d items, span %.2f; %s; policy %s\n"
      (Dbp_core.Instance.length instance)
      (Dbp_core.Instance.span instance)
      (Format.asprintf "%a" Dbp_faults.Fault_plan.pp plan)
      policy.Dbp_faults.Recovery.policy_name;
    let rows = Dbp_sim.Fault_report.evaluate ~policy selected plan instance in
    Dbp_sim.Report.print ~title:"degradation under injected faults"
      (Dbp_sim.Fault_report.table rows)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run a workload through the resilient engine under a seeded fault \
          plan (bin crashes, departure slippage, arrival bursts) and score \
          the degradation.")
    Term.(
      const run $ seed_arg $ workload_arg $ trace_arg $ fault_seed $ crash_rate
      $ slip_prob $ slip_stretch $ burst_rate $ burst_size $ admission
      $ max_retries $ backoff $ algos_arg)

(* ---- vector ---- *)

let vector_cmd =
  let dims_arg =
    Arg.(value & opt int 3 & info [ "dims" ] ~docv:"D" ~doc:"Resource dimensions.")
  in
  let run seed dims =
    let config = { Dbp_multidim.Vector_workload.default with dims } in
    let instance = Dbp_multidim.Vector_workload.generate ~seed config in
    Printf.printf "%d jobs in %d dimensions; lower bound %.2f\n\n"
      (Dbp_multidim.Vector_instance.length instance)
      dims
      (Dbp_multidim.Vector_instance.lower_bound instance);
    List.iter
      (fun (name, pack) ->
        let p = pack instance in
        Printf.printf "%-22s usage %10.2f   bins %4d   ratio/LB %6.3f\n" name
          (Dbp_multidim.Vector_packing.total_usage_time p)
          (Dbp_multidim.Vector_packing.bin_count p)
          (Dbp_multidim.Vector_packing.ratio_to_lower_bound p))
      [
        ("first-fit", Dbp_multidim.Vector_algorithms.first_fit);
        ("best-fit", Dbp_multidim.Vector_algorithms.best_fit);
        ("cbdt-ff(rho=5)", Dbp_multidim.Vector_algorithms.classify_departure ~rho:5.);
        ( "cbd-ff(alpha=2)",
          Dbp_multidim.Vector_algorithms.classify_duration ~base:1. ~alpha:2. );
        ("ddff", Dbp_multidim.Vector_algorithms.ddff);
      ]
  in
  Cmd.v
    (Cmd.info "vector" ~doc:"Pack a multi-resource (CPU/mem/bw) workload.")
    Term.(const run $ seed_arg $ dims_arg)

(* ---- serve ---- *)

let serve_cmd =
  let algo_arg =
    Arg.(
      value
      & opt string "first-fit"
      & info [ "algo"; "a" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Packing algorithm. One of: %s."
               (String.concat ", " (Dbp_serve.Portfolio.names ()))))
  in
  let input_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "input" ] ~docv:"FILE"
          ~doc:"Read JSONL arrivals from FILE instead of stdin.")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve a Unix-domain socket at PATH instead of reading stdin; \
             decision lines echo back to the client as well as landing in \
             the output.  SIGINT/SIGTERM stop the daemon cleanly.")
  in
  let output_arg =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Append decision lines to FILE ($(b,-) = stdout).  The file \
             doubles as the resume journal, so $(b,--resume) needs a real \
             path.")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Cut durable snapshots to FILE (atomic rename, one rotated \
             $(b,.prev) generation kept).")
  in
  let snapshot_every_arg =
    Arg.(
      value & opt int 1000
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Decision lines between snapshots (0 = only at shutdown).")
  in
  let resume_flag =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Recover after a crash: truncate a torn final output line, \
             replay the journal against the same input, verify the \
             snapshot digest, then continue the stream byte-exactly.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Stream a JSONL decision trace to FILE (detached while the \
             overload ladder is at shedding or above).")
  in
  let shed_arg =
    Arg.(
      value
      & opt int Dbp_serve.Admission.default.Dbp_serve.Admission.shed
      & info [ "shed" ] ~docv:"N"
          ~doc:"Queue depth that detaches tracing (ladder rung 1).")
  in
  let coarsen_arg =
    Arg.(
      value
      & opt int Dbp_serve.Admission.default.Dbp_serve.Admission.coarsen
      & info [ "coarsen" ] ~docv:"N"
          ~doc:"Queue depth that coarsens the snapshot cadence (rung 2).")
  in
  let reject_arg =
    Arg.(
      value
      & opt int Dbp_serve.Admission.default.Dbp_serve.Admission.reject
      & info [ "reject" ] ~docv:"N"
          ~doc:"Queue depth that turns arrivals away (rung 3).")
  in
  let coarsen_factor_arg =
    Arg.(
      value & opt int 8
      & info [ "coarsen-factor" ] ~docv:"F"
          ~doc:"Snapshot-cadence multiplier at the coarsening rung.")
  in
  let throttle_arg =
    Arg.(
      value & opt int 0
      & info [ "throttle-us" ] ~docv:"US"
          ~doc:
            "Sleep US microseconds between arrivals (lets an external \
             killer land mid-stream reproducibly; crash testing).")
  in
  let crash_after_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-after" ] ~docv:"N"
          ~doc:
            "Crash injection: SIGKILL this process after N emitted \
             decision lines (crash testing).")
  in
  let max_arrivals_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-arrivals" ] ~docv:"N"
          ~doc:"Stop after N input lines (soak bounding).")
  in
  let shards_arg =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard-by-tenant scale-out: route arrivals by their \
             $(b,tenant) key to N independent per-domain sessions, each \
             with its own journal segment ($(b,--output).shardK), \
             snapshot and ladder, plus a sequenced merged stream at \
             $(b,--output) (DESIGN.md section 16).  0 (default) = the \
             unsharded daemon.")
  in
  let routes_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "routes" ] ~docv:"FILE"
          ~doc:
            "Tenant pinning overrides for $(b,--shards): one \
             TENANT=SHARD per line ($(b,#) comments); pinned tenants \
             skip the hash.")
  in
  let metrics_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Serve $(b,/metrics) (Prometheus exposition, per-shard \
             labels) and $(b,/healthz) over HTTP/1.0 on \
             127.0.0.1:PORT (0 = pick a free port; sharded mode only).")
  in
  let span_sample_arg =
    Arg.(
      value & opt int 0
      & info [ "span-sample" ] ~docv:"N"
          ~doc:
            "Record a per-arrival latency span for every N-th arrival \
             (deterministic, sequence-keyed; 0 = off).  Phase quantiles \
             land on $(b,/metrics) and in the SIGUSR1 dump; feed the \
             $(b,--span-out) log to $(b,dbp analyze).")
  in
  let span_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "span-out" ] ~docv:"FILE"
          ~doc:
            "Append sampled spans to FILE as JSONL (one object per span, \
             per-phase durations in seconds; needs $(b,--span-sample)).")
  in
  let span_ring_arg =
    Arg.(
      value & opt int 1024
      & info [ "span-ring" ] ~docv:"N"
          ~doc:"In-memory span ring capacity (most recent N spans).")
  in
  let run algo input socket output snapshot snapshot_every resume metrics_out
      trace_out span_sample span_out span_ring shed coarsen reject
      coarsen_factor throttle_us crash_after max_arrivals shards routes
      metrics_port =
    let engine =
      match Dbp_serve.Portfolio.by_name algo with
      | Some e -> e
      | None ->
          Printf.eprintf "unknown algorithm %S; known: %s\n" algo
            (String.concat ", " (Dbp_serve.Portfolio.names ()));
          exit 2
    in
    let scfg =
      match
        Dbp_serve.Session.config
          ~watermarks:{ Dbp_serve.Admission.shed; coarsen; reject }
          ~snapshot_every ~coarsen_factor ~name:algo engine
      with
      | cfg -> cfg
      | exception Invalid_argument msg ->
          Printf.eprintf "dbp serve: %s\n" msg;
          exit 2
    in
    let dcfg =
      {
        Dbp_serve.Daemon.input =
          (match (socket, input) with
          | Some path, _ -> Dbp_serve.Daemon.In_socket path
          | None, Some path -> Dbp_serve.Daemon.In_file path
          | None, None -> Dbp_serve.Daemon.Stdin);
        output;
        snapshot_path = snapshot;
        resume;
        metrics_out;
        trace_out;
        span_sample;
        span_out;
        span_ring;
        throttle_us;
        crash_after;
        max_arrivals;
        log = prerr_endline;
      }
    in
    let result =
      if shards <= 0 then Dbp_serve.Daemon.run dcfg scfg
      else begin
        let route_list =
          match routes with
          | None -> []
          | Some path -> (
              let text =
                let ic = open_in_bin path in
                Fun.protect
                  ~finally:(fun () -> close_in ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              in
              match Dbp_serve.Router.parse_overrides text with
              | Ok l -> l
              | Error msg ->
                  Printf.eprintf "dbp serve: %s: %s\n" path msg;
                  exit 2)
        in
        Dbp_serve.Shard.run
          {
            Dbp_serve.Shard.base = dcfg;
            shards;
            routes = route_list;
            metrics_port;
          }
          scfg
      end
    in
    match result with
    | Ok stats ->
        Printf.eprintf
          "serve: %d lines in, %d placed, %d rejected, %d skipped, %d \
           replayed, %d snapshots%s\n"
          stats.Dbp_serve.Daemon.lines stats.Dbp_serve.Daemon.placed
          stats.Dbp_serve.Daemon.rejected stats.Dbp_serve.Daemon.skipped
          stats.Dbp_serve.Daemon.replayed stats.Dbp_serve.Daemon.snapshots
          (match stats.Dbp_serve.Daemon.resumed_from with
          | Some s -> "; resumed from " ^ s
          | None -> "")
    | Error msg ->
        Printf.eprintf "dbp serve: %s\n" msg;
        exit 3
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the streaming packing daemon: JSONL arrivals in (stdin, file \
          or Unix socket), one placement decision line out per arrival, \
          with bounded memory, durable snapshots, crash-exact $(b,--resume) \
          and a three-rung overload ladder (DESIGN.md section 14).")
    Term.(
      const run $ algo_arg $ input_arg $ socket_arg $ output_arg $ snapshot_arg
      $ snapshot_every_arg $ resume_flag $ metrics_out_arg $ trace_out_arg
      $ span_sample_arg $ span_out_arg $ span_ring_arg $ shed_arg $ coarsen_arg
      $ reject_arg $ coarsen_factor_arg $ throttle_arg $ crash_after_arg
      $ max_arrivals_arg $ shards_arg $ routes_arg $ metrics_port_arg)

(* ---- analyze ---- *)

let analyze_cmd =
  let read_lines path =
    let ic = if path = "-" then stdin else open_in_bin path in
    Fun.protect
      ~finally:(fun () -> if path <> "-" then close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let spans_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spans" ] ~docv:"FILE"
          ~doc:"Span log from $(b,dbp serve --span-out) ($(b,-) = stdin).")
  in
  let journal_arg =
    Arg.(
      value & opt_all string []
      & info [ "journal"; "j" ] ~docv:"[NAME=]FILE"
          ~doc:
            "A decision journal to replay (repeatable; journal file, \
             shard segment, or the sharded merged stream).  NAME labels \
             the report row; defaults to the file name.")
  in
  let input_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "input" ] ~docv:"FILE"
          ~doc:
            "The JSONL arrival stream the journals were produced from; \
             supplies job departures for the usage-time efficiency table.")
  in
  let buckets_arg =
    Arg.(
      value & opt int 10
      & info [ "buckets" ] ~docv:"N"
          ~doc:"Timeline resolution: rows per depth/utilization timeline.")
  in
  let out_arg =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the report to FILE ($(b,-) = stdout).")
  in
  let run spans journals input buckets out =
    if buckets < 1 then begin
      Printf.eprintf "dbp analyze: --buckets must be >= 1\n";
      exit 2
    end;
    let split spec =
      match String.index_opt spec '=' with
      | Some i when i > 0 ->
          (String.sub spec 0 i,
           String.sub spec (i + 1) (String.length spec - i - 1))
      | _ -> (Filename.basename spec, spec)
    in
    match
      Dbp_serve.Analyze.report
        {
          Dbp_serve.Analyze.spans =
            (match spans with None -> [] | Some p -> read_lines p);
          journals =
            List.map
              (fun spec ->
                let name, path = split spec in
                (name, read_lines path))
              journals;
          arrivals = Option.map read_lines input;
          time_buckets = buckets;
        }
    with
    | report ->
        if out = "-" then print_string report
        else begin
          let oc = open_out_bin out in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc report)
        end
    | exception Sys_error msg ->
        Printf.eprintf "dbp analyze: %s\n" msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Offline latency and efficiency report: ingest a $(b,--span-out) \
          log and/or decision journals from $(b,dbp serve) and print \
          per-phase latency percentiles, per-shard mailbox timelines and \
          the paper's usage-time efficiency table (achieved usage vs. the \
          interval-union lower bound).  Deterministic: same inputs, same \
          bytes.")
    Term.(
      const run $ spans_arg $ journal_arg $ input_arg $ buckets_arg $ out_arg)

(* ---- lint ---- *)

let lint_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit machine-readable JSON findings (for CI diffing).")
  in
  let paths_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint; defaults to lib/ bin/ bench/ \
             test/ under the current directory.")
  in
  let semantic_flag =
    Arg.(
      value & flag
      & info [ "semantic" ]
          ~doc:
            "Also run the typed rules R10-R12 over the .cmt artifacts dune \
             produces (run $(b,dune build) first); artifact-load failures \
             surface as C0 findings and exit 2.")
  in
  let rules_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rules" ] ~docv:"IDS"
          ~doc:
            "Keep only findings for these comma-separated rule ids (e.g. \
             $(b,R10,R11)); P0 parse errors and C0 artifact errors always \
             pass the filter.")
  in
  let build_root_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "build-root" ] ~docv:"DIR"
          ~doc:"Where to look for dune artifacts (default _build/default).")
  in
  let run json semantic rules build_root paths =
    let rules =
      Option.map
        (fun csv ->
          let ids =
            String.split_on_char ',' csv
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
          in
          if ids = [] then begin
            prerr_endline "dbp lint: --rules needs a comma-separated id list";
            exit 2
          end;
          List.iter
            (fun id ->
              if not (Dbp_lint.Rules.is_known_id id) then begin
                Printf.eprintf "dbp lint: unknown rule id %s\n" id;
                exit 2
              end)
            ids;
          ids)
        rules
    in
    let roots =
      match paths with
      | [] -> List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "test" ]
      | ps -> ps
    in
    if roots = [] then begin
      prerr_endline "dbp lint: no lintable roots (run from the repo root)";
      exit 2
    end;
    match Dbp_lint.Driver.lint_tree ~semantic ?build_root ?rules roots with
    | findings ->
        print_string
          (if json then Dbp_lint.Driver.to_json findings
           else Dbp_lint.Driver.to_text findings);
        if List.exists (fun f -> Dbp_lint.Finding.rule f = "C0") findings
        then exit 2
        else if findings <> [] then exit 1
    | exception Invalid_argument msg ->
        prerr_endline msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the dbp-lint static-analysis pass (packing-invariant rules \
          R1-R9 plus, with $(b,--semantic), the typed rules R10-R12; see \
          DESIGN.md sections 9 and 15) over the source tree.  Exit status: \
          0 clean, 1 findings, 2 usage or artifact-load error.")
    Term.(
      const run $ json_flag $ semantic_flag $ rules_arg $ build_root_arg
      $ paths_arg)

(* ---- audit ---- *)

let audit_cmd =
  let run seed workload trace =
    let instance = make_instance ~seed workload trace in
    Printf.printf "auditing %d items\n\n" (Dbp_core.Instance.length instance);
    let ddff = Dbp_offline.Ddff_analysis.analyze instance in
    let ddff_failures = Dbp_offline.Ddff_analysis.check ddff in
    Printf.printf "Section 4.1 (Theorem 1) decomposition: %d bins audited, %s\n"
      (List.length ddff.Dbp_offline.Ddff_analysis.reports)
      (if ddff_failures = [] then "all checks pass"
       else Printf.sprintf "%d FAILURES" (List.length ddff_failures));
    List.iter
      (fun f ->
        Format.printf "  %a@." Dbp_offline.Ddff_analysis.pp_failure f)
      ddff_failures;
    if not (Dbp_core.Instance.is_empty instance) then begin
      let cbdt = Dbp_online.Cbdt_analysis.analyze ~rho:3. instance in
      let cbdt_failures = Dbp_online.Cbdt_analysis.check cbdt in
      Printf.printf
        "Section 5.2 (Theorem 4) stages:       %d categories audited, %s\n"
        (List.length cbdt.Dbp_online.Cbdt_analysis.stages)
        (if cbdt_failures = [] then "all checks pass"
         else Printf.sprintf "%d FAILURES" (List.length cbdt_failures));
      List.iter
        (fun f -> Format.printf "  %a@." Dbp_online.Cbdt_analysis.pp_failure f)
        cbdt_failures
    end;
    if Dbp_core.Instance.length instance <= 40 then begin
      let schedule = Dbp_migration.Migrating_schedule.build instance in
      let violations = Dbp_migration.Migrating_schedule.check schedule in
      Printf.printf
        "Repacking adversary:                  cost %.3f, %d migrations, %s\n"
        schedule.Dbp_migration.Migrating_schedule.cost
        schedule.Dbp_migration.Migrating_schedule.migrations
        (if violations = [] then "schedule valid"
         else Printf.sprintf "%d FAILURES" (List.length violations))
    end
    else
      Printf.printf
        "Repacking adversary:                  skipped (instance > 40 items)\n"
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Machine-check the paper's proof decompositions on a workload or \
          trace.")
    Term.(const run $ seed_arg $ workload_arg $ trace_arg)

let () =
  let doc = "Clairvoyant MinUsageTime dynamic bin packing (SPAA'16 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "dbp" ~version:Dbp_serve.Daemon.version ~doc)
          [
            run_cmd; figure8_cmd; experiments_cmd; gadget_cmd; gen_cmd;
            pack_cmd; faults_cmd; flex_cmd; vector_cmd; audit_cmd; serve_cmd;
            analyze_cmd; lint_cmd;
          ]))
