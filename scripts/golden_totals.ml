(* Prints the golden usage-time totals for test/test_golden.ml.

   Run from the repo root after an *intended* behavioural change:
     dune exec scripts/golden_totals.exe
   and paste the printed values into the golden test tables. *)

let algorithms inst =
  [
    ("ddff", fun i -> Dbp_offline.Ddff.pack i);
    ("first-fit", Dbp_online.Engine.run Dbp_online.Any_fit.first_fit);
    ("best-fit", Dbp_online.Engine.run Dbp_online.Any_fit.best_fit);
    ("worst-fit", Dbp_online.Engine.run Dbp_online.Any_fit.worst_fit);
    ("next-fit", Dbp_online.Engine.run Dbp_online.Any_fit.next_fit);
    ("hybrid-ff", Dbp_online.Engine.run (Dbp_online.Hybrid_first_fit.make ()));
    ("cbdt-ff", Dbp_online.Engine.run (Dbp_online.Classify_departure.tuned inst));
    ("cbd-ff", Dbp_online.Engine.run (Dbp_online.Classify_duration.tuned inst));
    ( "combined-ff",
      Dbp_online.Engine.run (Dbp_online.Classify_combined.tuned inst) );
  ]

(* The 100k fixture pins only the five engine-benched algorithms: the
   tuned classifiers scan the instance to pick parameters (fine) but add
   nothing over the 10k pins, and ddff's sort-heavy pass dominates the
   runtime for no extra coverage. *)
let engine_algorithms =
  [
    ("first-fit", Dbp_online.Engine.run Dbp_online.Any_fit.first_fit);
    ("best-fit", Dbp_online.Engine.run Dbp_online.Any_fit.best_fit);
    ("worst-fit", Dbp_online.Engine.run Dbp_online.Any_fit.worst_fit);
    ("next-fit", Dbp_online.Engine.run Dbp_online.Any_fit.next_fit);
    ("hybrid-ff", Dbp_online.Engine.run (Dbp_online.Hybrid_first_fit.make ()));
  ]

let print_totals path algos =
  let inst = Dbp_workload.Trace.load path in
  Printf.printf "%s (%d jobs):\n" path (Dbp_core.Instance.length inst);
  List.iter
    (fun (name, pack) ->
      let t0 = Sys.time () in
      let usage = Dbp_core.Packing.total_usage_time (pack inst) in
      Printf.printf "  %-12s %.9f   (%.2fs)\n" name usage (Sys.time () -. t0))
    algos

let () =
  List.iter
    (fun path ->
      let inst = Dbp_workload.Trace.load path in
      print_totals path (algorithms inst))
    [
      "test/fixtures/uniform_seed77.csv";
      "test/fixtures/uniform_seed2101_10k.csv";
      "test/fixtures/dense_seed2102_10k.csv";
    ];
  print_totals "test/fixtures/uniform_seed2103_100k.csv" engine_algorithms
