#!/bin/sh
# Repo-wide check: build, full test suite, formatting, an engine smoke
# benchmark (indexed vs. reference parity on small workloads), a
# fault-injection smoke sweep (empty-plan bit-identity + monotone
# degradation are asserted inside the bench), a parallel smoke sweep
# (2-domain point list diffed against the sequential 1-domain baseline
# inside the bench) and an observability smoke: two traced CLI runs
# diffed byte-for-byte plus the observer-overhead mini-sweep.
# Run from the repo root:  scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune build @lint =="
# dbp-lint (lib/lint, DESIGN.md section 9): the packing-invariant rule
# set R1-R8 over lib/ bin/ bench/ test/; exits non-zero on any finding.
dune build @lint

echo "== dune runtest =="
# Includes the fault suite (test/test_faults.ml): empty-plan differential,
# capacity-under-crashes, checkpoint round-trips, structured errors.
dune runtest

echo "== dune build @fmt =="
# Formatting is scoped to dune files (see dune-project); ocamlformat is
# not a dependency of this repo.
dune build @fmt

echo "== engine smoke bench + perf-gate (warn-only) =="
# Quick sweep through the flat engine's serving path; asserts indexed =
# reference usage bit-identity on every row, then runs the 1.3x
# perf-regression gate against the committed BENCH_engine.json in
# warn-only mode (quick rows are too small to fail hard on; the full
# sweep enforces the gate at >= 500k jobs — DESIGN.md section 13).
dune exec bench/main.exe -- engine --quick

echo "== fault degradation smoke bench =="
dune exec bench/main.exe -- faults --quick

echo "== parallel scaling smoke bench =="
# Runs the mini-sweep at 1 and 2 domains; the bench itself asserts the
# 2-domain point list bit-identical to the 1-domain baseline (the
# dbp.par determinism contract, DESIGN.md section 11).
dune exec bench/main.exe -- par --quick

echo "== observability smoke =="
# Trace determinism canary (DESIGN.md section 12): the same traced run
# twice must produce byte-identical JSONL, and the observer-overhead
# mini-sweep asserts tracing never perturbs the packing and stays under
# the 2x budget on its largest row.
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
dune exec bin/dbp.exe -- run --seed 7 -a first-fit -a best-fit \
  --trace-out "$obs_dir/a.jsonl" --metrics-out "$obs_dir/a.prom" > /dev/null
dune exec bin/dbp.exe -- run --seed 7 -a first-fit -a best-fit \
  --trace-out "$obs_dir/b.jsonl" > /dev/null
cmp "$obs_dir/a.jsonl" "$obs_dir/b.jsonl"
echo "traces byte-identical across runs"
dune exec bench/main.exe -- obs --quick

echo "All checks passed."
