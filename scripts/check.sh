#!/bin/sh
# Repo-wide check: build, full test suite, formatting, an engine smoke
# benchmark (indexed vs. reference parity on small workloads) and a
# fault-injection smoke sweep (empty-plan bit-identity + monotone
# degradation are asserted inside the bench).
# Run from the repo root:  scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune build @lint =="
# dbp-lint (lib/lint, DESIGN.md section 9): the packing-invariant rule
# set R1-R6 over lib/ bin/ bench/ test/; exits non-zero on any finding.
dune build @lint

echo "== dune runtest =="
# Includes the fault suite (test/test_faults.ml): empty-plan differential,
# capacity-under-crashes, checkpoint round-trips, structured errors.
dune runtest

echo "== dune build @fmt =="
# Formatting is scoped to dune files (see dune-project); ocamlformat is
# not a dependency of this repo.
dune build @fmt

echo "== engine smoke bench =="
dune exec bench/main.exe -- engine --quick

echo "== fault degradation smoke bench =="
dune exec bench/main.exe -- faults --quick

echo "All checks passed."
