#!/bin/sh
# Repo-wide check: build, full test suite, formatting, an engine smoke
# benchmark (indexed vs. reference parity on small workloads), a
# fault-injection smoke sweep (empty-plan bit-identity + monotone
# degradation are asserted inside the bench), a parallel smoke sweep
# (2-domain point list diffed against the sequential 1-domain baseline
# inside the bench), an observability smoke: two traced CLI runs
# diffed byte-for-byte plus the observer-overhead mini-sweep, and a
# serve smoke: a streaming daemon SIGKILLed mid-stream, resumed, and
# its decision stream diffed byte-for-byte against an uninterrupted
# run, plus the serve mini-sweep (throughput / soak / restart / ladder
# gates all asserted inside the bench).
# Run from the repo root:  scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune build @lint =="
# dbp-lint (lib/lint, DESIGN.md section 9): the packing-invariant rule
# set R1-R9 over lib/ bin/ bench/ test/; exits non-zero on any finding.
dune build @lint

echo "== semantic lint (R10-R12) =="
# Typed-artifact phase (DESIGN.md section 15): alias-proof confinement,
# [@dbp.total] totality of the serve/workload parsers, decision-path
# determinism -- all over the .cmt files the build above just produced.
# A C0 finding (exit 2) means the artifacts are stale or missing: run
# `dune build` again before re-running this stage.
dbp_bin=_build/default/bin/dbp.exe
"$dbp_bin" lint --semantic --rules R10,R11,R12 lib

echo "== dune runtest =="
# Includes the fault suite (test/test_faults.ml): empty-plan differential,
# capacity-under-crashes, checkpoint round-trips, structured errors.
dune runtest

echo "== dune build @fmt =="
# Formatting is scoped to dune files (see dune-project); ocamlformat is
# not a dependency of this repo.
dune build @fmt

echo "== engine smoke bench + perf-gate (warn-only) =="
# Quick sweep through the flat engine's serving path; asserts indexed =
# reference usage bit-identity on every row, then runs the 1.3x
# perf-regression gate against the committed BENCH_engine.json in
# warn-only mode (quick rows are too small to fail hard on; the full
# sweep enforces the gate at >= 500k jobs — DESIGN.md section 13).
dune exec bench/main.exe -- engine --quick

echo "== fault degradation smoke bench =="
dune exec bench/main.exe -- faults --quick

echo "== parallel scaling smoke bench =="
# Runs the mini-sweep at 1 and 2 domains; the bench itself asserts the
# 2-domain point list bit-identical to the 1-domain baseline (the
# dbp.par determinism contract, DESIGN.md section 11).
dune exec bench/main.exe -- par --quick

echo "== observability smoke =="
# Trace determinism canary (DESIGN.md section 12): the same traced run
# twice must produce byte-identical JSONL, and the observer-overhead
# mini-sweep asserts tracing never perturbs the packing and stays under
# the 2x budget on its largest row.
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
dune exec bin/dbp.exe -- run --seed 7 -a first-fit -a best-fit \
  --trace-out "$obs_dir/a.jsonl" --metrics-out "$obs_dir/a.prom" > /dev/null
dune exec bin/dbp.exe -- run --seed 7 -a first-fit -a best-fit \
  --trace-out "$obs_dir/b.jsonl" > /dev/null
cmp "$obs_dir/a.jsonl" "$obs_dir/b.jsonl"
echo "traces byte-identical across runs"
dune exec bench/main.exe -- obs --quick

echo "== serve smoke: SIGKILL mid-stream + --resume, byte-identical =="
# The crash-safety contract (DESIGN.md section 14): the decision stream
# is the journal, so killing the daemon at any point and re-running with
# --resume must reproduce the uninterrupted output byte-for-byte.  The
# binary is run directly (not through dune exec) so the SIGKILL hits the
# daemon itself; the throttled run makes the kill land mid-stream, but
# correctness does not depend on where it lands.
serve_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir" "$serve_dir"' EXIT
"$dbp_bin" gen --jsonl --horizon 550 --seed 11 -o "$serve_dir/arrivals.jsonl"
echo "$(wc -l < "$serve_dir/arrivals.jsonl") arrivals"
"$dbp_bin" serve --input "$serve_dir/arrivals.jsonl" \
  --output "$serve_dir/ref.out" --snapshot "$serve_dir/ref.snap" \
  --snapshot-every 64 2> /dev/null
"$dbp_bin" serve --input "$serve_dir/arrivals.jsonl" \
  --output "$serve_dir/crash.out" --snapshot "$serve_dir/crash.snap" \
  --snapshot-every 64 --throttle-us 2000 2> /dev/null &
daemon_pid=$!
sleep 1
kill -9 "$daemon_pid" 2> /dev/null || true
wait "$daemon_pid" 2> /dev/null || true
echo "killed daemon after $(wc -l < "$serve_dir/crash.out") decision lines"
"$dbp_bin" serve --input "$serve_dir/arrivals.jsonl" \
  --output "$serve_dir/crash.out" --snapshot "$serve_dir/crash.snap" \
  --snapshot-every 64 --resume 2> /dev/null
cmp "$serve_dir/ref.out" "$serve_dir/crash.out"
echo "resumed decision stream byte-identical to the uninterrupted run"
dune exec bench/main.exe -- serve --quick

echo "All checks passed."
