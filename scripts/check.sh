#!/bin/sh
# Repo-wide check: build, full test suite, formatting, and an engine
# smoke benchmark (indexed vs. reference parity on small workloads).
# Run from the repo root:  scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== dune build @fmt =="
# Formatting is scoped to dune files (see dune-project); ocamlformat is
# not a dependency of this repo.
dune build @fmt

echo "== engine smoke bench =="
dune exec bench/main.exe -- engine --quick

echo "All checks passed."
