#!/bin/sh
# Repo-wide check: build, full test suite, formatting, an engine smoke
# benchmark (indexed vs. reference parity on small workloads), a
# fault-injection smoke sweep (empty-plan bit-identity + monotone
# degradation are asserted inside the bench), a parallel smoke sweep
# (2-domain point list diffed against the sequential 1-domain baseline
# inside the bench), an observability smoke: two traced CLI runs
# diffed byte-for-byte plus the observer-overhead mini-sweep, and a
# serve smoke: a streaming daemon SIGKILLed mid-stream, resumed, and
# its decision stream diffed byte-for-byte against an uninterrupted
# run, a sharded serve smoke (2-shard daemon fed by two concurrent
# socket clients, scraped over HTTP, SIGKILLed mid-stream, resumed,
# and its journal segments diffed against an uninterrupted reference),
# plus the serve mini-sweep (throughput / soak / restart / ladder /
# shard-scaling / allocation gates all asserted inside the bench), and
# a span-pipeline smoke: a sharded daemon with per-arrival latency
# spans sampled 1/4, a SIGUSR1 metrics dump mid-run, and two `dbp
# analyze` passes over the span log + journals byte-compared.
# Run from the repo root:  scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune build @lint =="
# dbp-lint (lib/lint, DESIGN.md section 9): the packing-invariant rule
# set R1-R9 over lib/ bin/ bench/ test/; exits non-zero on any finding.
dune build @lint

echo "== semantic lint (R10-R12) =="
# Typed-artifact phase (DESIGN.md section 15): alias-proof confinement,
# [@dbp.total] totality of the serve/workload parsers, decision-path
# determinism -- all over the .cmt files the build above just produced.
# A C0 finding (exit 2) means the artifacts are stale or missing: run
# `dune build` again before re-running this stage.
dbp_bin=_build/default/bin/dbp.exe
"$dbp_bin" lint --semantic --rules R10,R11,R12 lib

echo "== dune runtest =="
# Includes the fault suite (test/test_faults.ml): empty-plan differential,
# capacity-under-crashes, checkpoint round-trips, structured errors.
dune runtest

echo "== dune build @fmt =="
# Formatting is scoped to dune files (see dune-project); ocamlformat is
# not a dependency of this repo.
dune build @fmt

echo "== engine smoke bench + perf-gate (warn-only) =="
# Quick sweep through the flat engine's serving path; asserts indexed =
# reference usage bit-identity on every row, then runs the 1.3x
# perf-regression gate against the committed BENCH_engine.json in
# warn-only mode (quick rows are too small to fail hard on; the full
# sweep enforces the gate at >= 500k jobs — DESIGN.md section 13).
dune exec bench/main.exe -- engine --quick

echo "== fault degradation smoke bench =="
dune exec bench/main.exe -- faults --quick

echo "== parallel scaling smoke bench =="
# Runs the mini-sweep at 1 and 2 domains; the bench itself asserts the
# 2-domain point list bit-identical to the 1-domain baseline (the
# dbp.par determinism contract, DESIGN.md section 11).
dune exec bench/main.exe -- par --quick

echo "== observability smoke =="
# Trace determinism canary (DESIGN.md section 12): the same traced run
# twice must produce byte-identical JSONL, and the observer-overhead
# mini-sweep asserts tracing never perturbs the packing and stays under
# the 2x budget on its largest row.
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
dune exec bin/dbp.exe -- run --seed 7 -a first-fit -a best-fit \
  --trace-out "$obs_dir/a.jsonl" --metrics-out "$obs_dir/a.prom" > /dev/null
dune exec bin/dbp.exe -- run --seed 7 -a first-fit -a best-fit \
  --trace-out "$obs_dir/b.jsonl" > /dev/null
cmp "$obs_dir/a.jsonl" "$obs_dir/b.jsonl"
echo "traces byte-identical across runs"
dune exec bench/main.exe -- obs --quick

echo "== serve smoke: SIGKILL mid-stream + --resume, byte-identical =="
# The crash-safety contract (DESIGN.md section 14): the decision stream
# is the journal, so killing the daemon at any point and re-running with
# --resume must reproduce the uninterrupted output byte-for-byte.  The
# binary is run directly (not through dune exec) so the SIGKILL hits the
# daemon itself; the throttled run makes the kill land mid-stream, but
# correctness does not depend on where it lands.
serve_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir" "$serve_dir"' EXIT
"$dbp_bin" gen --jsonl --horizon 550 --seed 11 -o "$serve_dir/arrivals.jsonl"
echo "$(wc -l < "$serve_dir/arrivals.jsonl") arrivals"
"$dbp_bin" serve --input "$serve_dir/arrivals.jsonl" \
  --output "$serve_dir/ref.out" --snapshot "$serve_dir/ref.snap" \
  --snapshot-every 64 2> /dev/null
"$dbp_bin" serve --input "$serve_dir/arrivals.jsonl" \
  --output "$serve_dir/crash.out" --snapshot "$serve_dir/crash.snap" \
  --snapshot-every 64 --throttle-us 2000 2> /dev/null &
daemon_pid=$!
sleep 1
kill -9 "$daemon_pid" 2> /dev/null || true
wait "$daemon_pid" 2> /dev/null || true
echo "killed daemon after $(wc -l < "$serve_dir/crash.out") decision lines"
"$dbp_bin" serve --input "$serve_dir/arrivals.jsonl" \
  --output "$serve_dir/crash.out" --snapshot "$serve_dir/crash.snap" \
  --snapshot-every 64 --resume 2> /dev/null
cmp "$serve_dir/ref.out" "$serve_dir/crash.out"
echo "resumed decision stream byte-identical to the uninterrupted run"

echo "== sharded serve smoke: 2 shards, socket ingest, SIGKILL + --resume =="
# Scale-out contract (DESIGN.md section 16): --routes pins tenant t0 to
# shard 0 and t1 to shard 1, and each of the two concurrent socket
# clients feeds one tenant, so every shard sees a deterministic line
# order even though the cross-client interleave is not.  The journal
# segments are the authoritative streams: after a mid-stream SIGKILL
# and a --resume that re-feeds the same lines, each segment must be
# byte-identical to an uninterrupted file-input reference run.
shard_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir" "$serve_dir" "$shard_dir"' EXIT
"$dbp_bin" gen --jsonl --tenants 2 --horizon 400 --seed 13 \
  -o "$shard_dir/arrivals.jsonl"
n_total=$(wc -l < "$shard_dir/arrivals.jsonl")
echo "$n_total arrivals across 2 tenants"
grep '"tenant":"t0"' "$shard_dir/arrivals.jsonl" > "$shard_dir/a.jsonl"
grep '"tenant":"t1"' "$shard_dir/arrivals.jsonl" > "$shard_dir/b.jsonl"
printf 't0=0\nt1=1\n' > "$shard_dir/routes"
"$dbp_bin" serve --input "$shard_dir/arrivals.jsonl" --shards 2 \
  --routes "$shard_dir/routes" --output "$shard_dir/ref.out" \
  --snapshot "$shard_dir/ref.snap" --snapshot-every 64 2> /dev/null
grep -q '"shard":0' "$shard_dir/ref.out"
grep -q '"shard":1' "$shard_dir/ref.out"
feed=_build/default/scripts/socket_feed.exe
"$dbp_bin" serve --socket "$shard_dir/ingest.sock" --shards 2 \
  --routes "$shard_dir/routes" --output "$shard_dir/live.out" \
  --snapshot "$shard_dir/live.snap" --snapshot-every 64 \
  --metrics-port 9137 --throttle-us 4000 --max-arrivals "$n_total" \
  2> /dev/null &
shard_pid=$!
i=0
while [ ! -S "$shard_dir/ingest.sock" ] && [ "$i" -lt 50 ]; do
  sleep 0.1
  i=$((i + 1))
done
"$feed" "$shard_dir/ingest.sock" "$shard_dir/a.jsonl" &
feed_a=$!
"$feed" "$shard_dir/ingest.sock" "$shard_dir/b.jsonl" &
feed_b=$!
sleep 0.5
curl -s --max-time 10 http://127.0.0.1:9137/metrics > "$shard_dir/metrics"
grep -q 'shard="0"' "$shard_dir/metrics"
grep -q 'shard="1"' "$shard_dir/metrics"
grep -q 'dbp_pool_mailbox_depth' "$shard_dir/metrics"
echo "metrics endpoint serves per-shard series"
sleep 0.5
kill -9 "$shard_pid" 2> /dev/null || true
wait "$shard_pid" 2> /dev/null || true
wait "$feed_a" 2> /dev/null || true
wait "$feed_b" 2> /dev/null || true
# The merged stream is derived (flushed only at teardown, which SIGKILL
# skips); the segments are the authoritative journals, flushed on the
# snapshot cadence, so they are the meaningful progress yardstick here.
seg_lines=$(cat "$shard_dir/live.out.shard0" "$shard_dir/live.out.shard1" \
  2> /dev/null | wc -l)
echo "killed 2-shard daemon after $seg_lines journaled segment lines"
# SIGKILL skips cleanup, so the stale socket file survives; remove it so
# the wait-loop below sees the resumed daemon's fresh socket, not this one.
rm -f "$shard_dir/ingest.sock"
"$dbp_bin" serve --socket "$shard_dir/ingest.sock" --shards 2 \
  --routes "$shard_dir/routes" --output "$shard_dir/live.out" \
  --snapshot "$shard_dir/live.snap" --snapshot-every 64 \
  --max-arrivals "$n_total" --resume 2> /dev/null &
shard_pid=$!
i=0
while [ ! -S "$shard_dir/ingest.sock" ] && [ "$i" -lt 50 ]; do
  sleep 0.1
  i=$((i + 1))
done
"$feed" "$shard_dir/ingest.sock" "$shard_dir/a.jsonl" &
feed_a=$!
"$feed" "$shard_dir/ingest.sock" "$shard_dir/b.jsonl" &
feed_b=$!
wait "$feed_a"
wait "$feed_b"
wait "$shard_pid"
cmp "$shard_dir/ref.out.shard0" "$shard_dir/live.out.shard0"
cmp "$shard_dir/ref.out.shard1" "$shard_dir/live.out.shard1"
echo "resumed segments byte-identical to the uninterrupted run"

dune exec bench/main.exe -- serve --quick

echo "== span pipeline smoke: sharded --span-out + SIGUSR1 + dbp analyze =="
# PR-10 observability contract (DESIGN.md section 17): a sharded daemon
# with deterministic 1/4 span sampling emits a merge-ordered span log;
# a SIGUSR1 mid-run flushes sampled spans and dumps the metrics
# registry — including the span phase histograms and the build-info
# gauge — without disturbing the decision stream; and `dbp analyze`
# over the span log + journal segments + arrivals is byte-
# deterministic: two passes over the same inputs must compare equal.
span_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir" "$serve_dir" "$shard_dir" "$span_dir"' EXIT
"$dbp_bin" gen --jsonl --tenants 2 --horizon 400 --seed 17 \
  -o "$span_dir/arrivals.jsonl"
"$dbp_bin" serve --input "$span_dir/arrivals.jsonl" --shards 2 \
  --output "$span_dir/dec.out" --snapshot "$span_dir/dec.snap" \
  --snapshot-every 64 --span-sample 4 --span-out "$span_dir/spans.jsonl" \
  --metrics-out "$span_dir/metrics.prom" --throttle-us 1000 2> /dev/null &
span_pid=$!
sleep 0.4
kill -USR1 "$span_pid" 2> /dev/null || true
wait "$span_pid"
grep -q 'dbp_serve_phase_seconds' "$span_dir/metrics.prom"
grep -q 'dbp_serve_build_info' "$span_dir/metrics.prom"
echo "metrics dump carries span histograms + build info"
echo "$(wc -l < "$span_dir/spans.jsonl") span lines at 1/4 sampling"
"$dbp_bin" analyze --spans "$span_dir/spans.jsonl" \
  -j shard0="$span_dir/dec.out.shard0" -j shard1="$span_dir/dec.out.shard1" \
  --input "$span_dir/arrivals.jsonl" -o "$span_dir/report.a"
"$dbp_bin" analyze --spans "$span_dir/spans.jsonl" \
  -j shard0="$span_dir/dec.out.shard0" -j shard1="$span_dir/dec.out.shard1" \
  --input "$span_dir/arrivals.jsonl" -o "$span_dir/report.b"
cmp "$span_dir/report.a" "$span_dir/report.b"
echo "analyze report byte-identical across two runs"

echo "All checks passed."
