#!/bin/sh
# Repo-wide check: build, full test suite, formatting, an engine smoke
# benchmark (indexed vs. reference parity on small workloads), a
# fault-injection smoke sweep (empty-plan bit-identity + monotone
# degradation are asserted inside the bench) and a parallel smoke sweep
# (2-domain point list diffed against the sequential 1-domain baseline
# inside the bench).
# Run from the repo root:  scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune build @lint =="
# dbp-lint (lib/lint, DESIGN.md section 9): the packing-invariant rule
# set R1-R7 over lib/ bin/ bench/ test/; exits non-zero on any finding.
dune build @lint

echo "== dune runtest =="
# Includes the fault suite (test/test_faults.ml): empty-plan differential,
# capacity-under-crashes, checkpoint round-trips, structured errors.
dune runtest

echo "== dune build @fmt =="
# Formatting is scoped to dune files (see dune-project); ocamlformat is
# not a dependency of this repo.
dune build @fmt

echo "== engine smoke bench =="
dune exec bench/main.exe -- engine --quick

echo "== fault degradation smoke bench =="
dune exec bench/main.exe -- faults --quick

echo "== parallel scaling smoke bench =="
# Runs the mini-sweep at 1 and 2 domains; the bench itself asserts the
# 2-domain point list bit-identical to the 1-domain baseline (the
# dbp.par determinism contract, DESIGN.md section 11).
dune exec bench/main.exe -- par --quick

echo "All checks passed."
