(* Feed a JSONL file into a running `dbp serve --socket` daemon.

   Usage:  socket_feed.exe SOCKET_PATH FILE

   Used by scripts/check.sh to drive concurrent ingest clients against
   the sharded daemon.  Connects (retrying while the daemon is still
   binding), streams every line of FILE, then closes.  Decision echoes
   are deliberately left unread: they are best-effort on the daemon
   side, and the smoke asserts against the daemon's journal segments,
   not the echo stream.  A write failing with EPIPE/ECONNRESET exits 0
   — the crash smoke SIGKILLs the daemon mid-stream on purpose, and a
   dying client would mask the assertion that matters. *)

let connect_retries = 50

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go attempt =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception
        Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when attempt < connect_retries ->
        Unix.sleepf 0.1;
        go (attempt + 1)
  in
  go 0

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Sys.argv with
  | [| _; path; file |] ->
      let fd = connect path in
      (try
         In_channel.with_open_bin file (fun ic ->
             let rec go () =
               match In_channel.input_line ic with
               | Some line ->
                   write_all fd line;
                   write_all fd "\n";
                   go ()
               | None -> ()
             in
             go ())
       with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
      Unix.close fd
  | _ ->
      prerr_endline "usage: socket_feed.exe SOCKET_PATH FILE";
      exit 2
