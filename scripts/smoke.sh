#!/bin/sh
# End-to-end smoke: build, tests, every example, every CLI subcommand.
# Exits non-zero on the first failure.  A fast-ish full-repo check
# (couple of minutes; the heavyweight experiment suite runs separately
# via `dune exec bench/main.exe`).
set -eux

dune build @all
dune runtest

dune exec examples/quickstart.exe > /dev/null
dune exec examples/adversary.exe > /dev/null
dune exec examples/flex_batch.exe > /dev/null
dune exec examples/gantt_compare.exe > /dev/null
dune exec examples/autoscaler.exe > /dev/null
dune exec examples/vm_consolidation.exe > /dev/null
# examples/cloud_gaming_day.exe also works but runs the whole portfolio
# (including O(n^4) Dual Coloring) on a two-day trace: minutes, not here.

DBP="dune exec bin/dbp.exe --"
$DBP run --seed 1 -a ddff -a first-fit > /dev/null
$DBP run -w vm -a ddff --metrics > /dev/null
$DBP figure8 --max-mu 10 > /dev/null
$DBP figure8 --csv --max-mu 5 > /dev/null
$DBP experiments --only F8 > /dev/null
$DBP gadget > /dev/null
$DBP flex --slack 1 > /dev/null
$DBP vector --dims 2 > /dev/null
$DBP audit -w analytics > /dev/null

trace=$(mktemp /tmp/dbp-smoke-XXXX.csv)
$DBP gen -w gaming --seed 2 -o "$trace" > /dev/null
$DBP pack --trace "$trace" -a ddff > /dev/null
$DBP pack --trace "$trace" -a first-fit --gantt > /dev/null
rm -f "$trace"

echo "smoke: all green"
