(* dbp-lint: standalone entry point, also exposed as `dbp lint`.

   Usage: dbp-lint [--json] [--semantic] [--rules R10,R11]
                   [--build-root DIR] [PATH ...]
   Paths default to lib bin bench test (those that exist under the
   current directory).

   Exit status contract (CI gates on it): 0 clean, 1 findings,
   2 usage error or artifact-load error (any C0 finding). *)

let default_roots () =
  List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "test" ]

let parse_rules csv =
  let ids =
    String.split_on_char ',' csv
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if ids = [] then begin
    prerr_endline "dbp-lint: --rules needs a comma-separated id list";
    exit 2
  end;
  List.iter
    (fun id ->
      if not (Dbp_lint.Rules.is_known_id id) then begin
        Printf.eprintf
          "dbp-lint: unknown rule id %s (see --list-rules)\n" id;
        exit 2
      end)
    ids;
  ids

let () =
  let json = ref false in
  let semantic = ref false in
  let rules = ref None in
  let build_root = ref None in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit machine-readable JSON findings");
      ( "--semantic",
        Arg.Set semantic,
        " also run the typed rules R10-R12 over .cmt artifacts" );
      ( "--rules",
        Arg.String (fun csv -> rules := Some (parse_rules csv)),
        "IDS keep only findings for these comma-separated rule ids \
         (P0/C0 always pass)" );
      ( "--build-root",
        Arg.String (fun d -> build_root := Some d),
        "DIR where to look for dune artifacts (default _build/default)" );
      ( "--list-rules",
        Arg.Unit
          (fun () ->
            List.iter
              (fun r ->
                Printf.printf "%-4s %-26s %s\n" r.Dbp_lint.Rules.id
                  r.Dbp_lint.Rules.name r.Dbp_lint.Rules.hint)
              Dbp_lint.Rules.all;
            exit 0),
        " list the rule registry and exit" );
    ]
  in
  let usage =
    "dbp-lint [--json] [--semantic] [--rules IDS] [--build-root DIR] \
     [PATH ...]"
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let roots =
    match List.rev !paths with [] -> default_roots () | ps -> ps
  in
  if roots = [] then begin
    prerr_endline "dbp-lint: no lintable roots (run from the repo root)";
    exit 2
  end;
  match
    Dbp_lint.Driver.lint_tree ~semantic:!semantic ?build_root:!build_root
      ?rules:!rules roots
  with
  | findings ->
      print_string
        (if !json then Dbp_lint.Driver.to_json findings
         else Dbp_lint.Driver.to_text findings);
      if List.exists (fun f -> Dbp_lint.Finding.rule f = "C0") findings then
        exit 2
      else exit (if findings = [] then 0 else 1)
  | exception Invalid_argument msg ->
      prerr_endline msg;
      exit 2
