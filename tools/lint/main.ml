(* dbp-lint: standalone entry point, also exposed as `dbp lint`.

   Usage: dbp-lint [--json] [PATH ...]
   Paths default to lib bin bench test (those that exist under the
   current directory).  Exit status: 0 clean, 1 findings, 2 usage or
   I/O error. *)

let default_roots () =
  List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "test" ]

let () =
  let json = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit machine-readable JSON findings");
      ("--rules", Arg.Unit (fun () ->
           List.iter
             (fun r ->
               Printf.printf "%-4s %-26s %s\n" r.Dbp_lint.Rules.id
                 r.Dbp_lint.Rules.name r.Dbp_lint.Rules.hint)
             Dbp_lint.Rules.all;
           exit 0),
       " list the rule registry and exit");
    ]
  in
  let usage = "dbp-lint [--json] [PATH ...]" in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let roots =
    match List.rev !paths with [] -> default_roots () | ps -> ps
  in
  if roots = [] then begin
    prerr_endline "dbp-lint: no lintable roots (run from the repo root)";
    exit 2
  end;
  match Dbp_lint.Driver.lint_tree roots with
  | findings ->
      print_string
        (if !json then Dbp_lint.Driver.to_json findings
         else Dbp_lint.Driver.to_text findings);
      exit (if findings = [] then 0 else 1)
  | exception Invalid_argument msg ->
      prerr_endline msg;
      exit 2
