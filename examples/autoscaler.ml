(* Using the library as the decision core of a cluster autoscaler.

   A recurring-analytics cluster (hourly ETL, daily reports, ad-hoc
   queries) asks, for every arriving job, which worker to run it on --
   exactly the online MinUsageTime DBP interface.  This example drives
   the online engine step-by-step through one day, logging scale-up
   events, and then audits the day: worker-hours billed, utilization,
   and distance from the theoretical lower bound.

   Run with: dune exec examples/autoscaler.exe *)

open Dbp_core

let () =
  let config =
    { Dbp_workload.Analytics.default with horizon = 1440. (* one day *) }
  in
  let jobs = Dbp_workload.Analytics.generate ~seed:7 config in
  Printf.printf "templates:\n";
  Array.iter
    (fun t -> Format.printf "  %a@." Dbp_workload.Analytics.pp_template t)
    config.Dbp_workload.Analytics.templates;
  Printf.printf "\n%d jobs in one day (mu = %.1f)\n\n" (Instance.length jobs)
    (Instance.mu jobs);

  (* Wrap the tuned classify-by-duration strategy so we can watch its
     decisions: the [notify] hook reports every placement. *)
  let inner = Dbp_online.Classify_duration.tuned jobs in
  let scale_ups = ref 0 and placements = ref 0 in
  let watched =
    {
      Dbp_online.Engine.name = "watched-" ^ inner.Dbp_online.Engine.name;
      make =
        (fun () ->
          let stepper = inner.Dbp_online.Engine.make () in
          let seen_bins = Hashtbl.create 64 in
          {
            stepper with
            Dbp_online.Engine.notify =
              (fun ~item ~index ->
                incr placements;
                if not (Hashtbl.mem seen_bins index) then begin
                  Hashtbl.add seen_bins index ();
                  incr scale_ups;
                  if !scale_ups <= 10 then
                    Printf.printf
                      "t=%7.1f  scale-up: worker %d for job %d (%.0f%% of a worker, ends t=%.0f)\n"
                      (Item.arrival item) index (Item.id item)
                      (100. *. Item.size item)
                      (Item.departure item)
                end;
                stepper.Dbp_online.Engine.notify ~item ~index);
          });
      (* observe through the plain stepper: the wrapper must see notify *)
      make_indexed = None;
    }
  in
  let packing = Dbp_online.Engine.run watched jobs in
  if !scale_ups > 10 then
    Printf.printf "... (%d more scale-ups)\n" (!scale_ups - 10);

  Printf.printf "\nplacements: %d, distinct workers rented: %d\n" !placements
    !scale_ups;
  Printf.printf "worker-minutes billed: %.0f\n" (Packing.total_usage_time packing);
  Printf.printf "fleet utilization:     %.1f%%\n"
    (100. *. Packing.utilization packing);
  Printf.printf "peak fleet size:       %d workers\n"
    (Packing.max_concurrent_bins packing);
  Printf.printf "lower bound (Prop. 3): %.0f worker-minutes (ratio %.3f)\n"
    (Dbp_opt.Lower_bounds.best jobs)
    (Dbp_opt.Lower_bounds.ratio_to_best jobs (Packing.total_usage_time packing));

  (* What would we have paid with no departure-time knowledge? *)
  let blind =
    Packing.total_usage_time
      (Dbp_online.Engine.run Dbp_online.Any_fit.first_fit jobs)
  in
  Printf.printf "blind first-fit:       %.0f worker-minutes\n" blind
