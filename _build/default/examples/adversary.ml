(* A walk through the paper's lower-bound constructions.

   Part 1 replays Theorem 3's golden-ratio gadget against several online
   algorithms and shows that each one loses at least (1+sqrt(5))/2 on one
   of the two cases -- no online algorithm can dodge both.

   Part 2 runs the mixed-duration trap that makes every Any Fit algorithm
   pay a factor ~mu, and shows classify-by-departure-time dismantling it.

   Run with: dune exec examples/adversary.exe *)

open Dbp_core
module Adv = Dbp_workload.Adversarial

let () =
  let x = Adv.golden_ratio in
  Printf.printf "Part 1: Theorem 3 gadget (x = phi = %.6f)\n\n" x;
  Printf.printf
    "Two items of size 1/2-eps arrive at t=0 with durations x and 1.\n\
     Case A: nothing else arrives. Packing them together is optimal.\n\
     Case B: two items of size 1/2+eps follow immediately; now packing\n\
     the first two together blocks both bins and costs 2x+1 vs x+1.\n\n";
  let tau = 1e-9 in
  let algorithms =
    [
      Dbp_online.Any_fit.first_fit;
      Dbp_online.Any_fit.best_fit;
      Dbp_online.Any_fit.worst_fit;
      Dbp_online.Classify_departure.make ~rho:(sqrt x) ();
      Dbp_online.Classify_duration.make ~alpha:2. ();
      Dbp_online.Classify_combined.make ~alpha:2. ();
    ]
  in
  Printf.printf "%-24s %8s %8s %8s\n" "algorithm" "case A" "case B" "worst";
  List.iter
    (fun algo ->
      let ratio case =
        let inst = Adv.theorem3 ~x ~tau case in
        Packing.total_usage_time (Dbp_online.Engine.run algo inst)
        /. Adv.theorem3_opt_usage ~x ~tau case
      in
      let a = ratio Adv.A and b = ratio Adv.B in
      Printf.printf "%-24s %8.4f %8.4f %8.4f\n" algo.Dbp_online.Engine.name a b
        (Float.max a b))
    algorithms;
  Printf.printf "\nTheorem 3 lower bound: %.4f -- no worst column can beat it.\n"
    Dbp_theory.Ratios.online_lower_bound;

  Printf.printf "\nPart 2: the mixed-duration trap (mu = 50, 20 pairs)\n\n";
  Printf.printf
    "Pairs of (size 0.99, duration 1) and (size 0.01, duration 50) arrive\n\
     in quick succession.  Any Fit glues each tiny straggler to a big\n\
     item, so 20 bins each stay open for ~50 time units.\n\n";
  let trap = Adv.mixed_duration_trap ~pairs:20 ~mu:50. () in
  let lb = Dbp_opt.Lower_bounds.best trap in
  List.iter
    (fun algo ->
      let usage =
        Packing.total_usage_time (Dbp_online.Engine.run algo trap)
      in
      Printf.printf "%-24s usage %8.1f   ratio/LB %6.2f\n"
        algo.Dbp_online.Engine.name usage (usage /. lb))
    [
      Dbp_online.Any_fit.first_fit;
      Dbp_online.Any_fit.best_fit;
      Dbp_online.Any_fit.next_fit;
      Dbp_online.Classify_departure.make ~rho:5. ();
      Dbp_online.Classify_duration.make ~alpha:2. ();
    ];
  Printf.printf "\nlower bound: %.1f; clairvoyant classification recovers it.\n" lb
