(* Quickstart: build a handful of jobs by hand, pack them with a
   non-clairvoyant and a clairvoyant algorithm, and compare server time.

   Run with: dune exec examples/quickstart.exe *)

open Dbp_core

let () =
  (* Five jobs: (size, arrival, departure).  Sizes are fractions of one
     server; times are in hours.  Job 1 is a long-running small service;
     the rest are short batch jobs. *)
  let jobs =
    [
      Item.make ~id:0 ~size:0.55 ~arrival:0. ~departure:2.;
      Item.make ~id:1 ~size:0.10 ~arrival:0. ~departure:12.;
      Item.make ~id:2 ~size:0.55 ~arrival:2.5 ~departure:4.5;
      Item.make ~id:3 ~size:0.55 ~arrival:5. ~departure:7.;
      Item.make ~id:4 ~size:0.40 ~arrival:5.5 ~departure:7.5;
    ]
  in
  let instance = Instance.of_items jobs in
  Format.printf "%a@." Instance.pp instance;

  (* A packing algorithm returns a Packing.t; the objective is its total
     usage time (server-hours rented). *)
  let report name packing =
    Format.printf "%-28s %a@." name Packing.pp_summary packing
  in

  (* Non-clairvoyant First Fit: departure times ignored. *)
  report "online first-fit:"
    (Dbp_online.Engine.run Dbp_online.Any_fit.first_fit instance);

  (* Clairvoyant classification (Theorem 4): departure times known, items
     grouped so each bin's jobs end at about the same time. *)
  report "classify-by-departure-time:"
    (Dbp_online.Engine.run (Dbp_online.Classify_departure.tuned instance) instance);

  (* Offline 5-approximation (Theorem 1). *)
  report "offline ddff:" (Dbp_offline.Ddff.pack instance);

  (* How close is any of this to optimal?  For small instances the exact
     repacking adversary and the exact non-migrating optimum are both
     computable. *)
  Format.printf "repacking adversary OPT_total:  %.3f@."
    (Dbp_opt.Opt_total.value instance);
  Format.printf "exact optimum (no migration):   %.3f@."
    (Dbp_opt.Brute_force.optimal_usage instance);
  Format.printf "Proposition-3 lower bound:      %.3f@."
    (Dbp_opt.Lower_bounds.best instance)
