(* Flexible batch scheduling: jobs with deadlines instead of fixed start
   times (the paper's Section-6 extension, Khandekar et al.'s model).

   A nightly batch window receives jobs that must finish by morning but
   may start whenever capacity suits.  This example compares three
   policies -- run immediately (asap), run at the last moment (alap), and
   the greedy packer that aligns jobs with already-busy server time --
   and shows how much server time scheduling freedom saves.

   Run with: dune exec examples/flex_batch.exe *)

module FJ = Dbp_flex.Flex_job
module FS = Dbp_flex.Flex_schedule

let () =
  (* A synthetic nightly batch: jobs released through the evening, all
     due by 08:00 (time in hours from 20:00). *)
  let rng = Dbp_workload.Prng.create 11 in
  let deadline = 12. in
  let jobs =
    List.init 40 (fun id ->
        let release = Dbp_workload.Prng.uniform rng ~lo:0. ~hi:6. in
        let length = Dbp_workload.Prng.uniform rng ~lo:0.5 ~hi:3. in
        let size = Dbp_workload.Prng.uniform rng ~lo:0.1 ~hi:0.6 in
        FJ.make ~id ~size ~length ~release
          ~deadline:(Float.max deadline (release +. length)))
  in
  Printf.printf "%d batch jobs, all due at t=%.0fh\n\n" (List.length jobs)
    deadline;

  List.iter
    (fun name ->
      let scheduler = Option.get (FS.by_name name) in
      let s = scheduler jobs in
      FS.check s;
      Printf.printf "%-8s usage %7.2f server-hours, %2d servers\n" name
        (FS.usage s)
        (Dbp_core.Packing.bin_count s.FS.packing))
    FS.names;

  (* the same jobs with no flexibility, for reference *)
  let rigid =
    List.map
      (fun j ->
        FJ.make ~id:(FJ.id j) ~size:(FJ.size j) ~length:(FJ.length j)
          ~release:(FJ.release j)
          ~deadline:(FJ.release j +. FJ.length j))
      jobs
  in
  let rigid_usage = FS.usage (FS.asap rigid) in
  Printf.printf "\nrigid (no flexibility): %.2f server-hours\n" rigid_usage;
  let greedy_usage = FS.usage (FS.greedy jobs) in
  Printf.printf "greedy saves %.1f%% of the rigid bill\n"
    (100. *. (1. -. (greedy_usage /. rigid_usage)))
