(* Visual comparison: what the duration-mixing trap does to First Fit,
   and how classification dismantles it -- as Gantt charts.

   Run with: dune exec examples/gantt_compare.exe *)

let () =
  let trap = Dbp_workload.Adversarial.mixed_duration_trap ~pairs:8 ~mu:30. () in
  let show name packing =
    Printf.printf "\n--- %s ---\n" name;
    print_string (Dbp_sim.Gantt.render ~width:64 packing)
  in
  Printf.printf
    "The mixed-duration trap: 8 pairs of (big, 1 time unit) + (tiny, 30 \n\
     time units) items.  Watch the long tails.\n";
  show "online first-fit (blind)"
    (Dbp_online.Engine.run Dbp_online.Any_fit.first_fit trap);
  show "classify-by-departure-time (rho = 5)"
    (Dbp_online.Engine.run (Dbp_online.Classify_departure.make ~rho:5. ()) trap);
  show "offline ddff"
    (Dbp_offline.Ddff.pack trap);
  Printf.printf "\nlower bound: %.1f\n" (Dbp_opt.Lower_bounds.best trap)
