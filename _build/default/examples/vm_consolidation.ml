(* VM consolidation under realistic billing: the full pipeline.

   A 48-hour VM-fleet trace (deployment bursts, power-of-two shapes,
   heavy-tailed lifetimes) is packed by four algorithms; each packing is
   then priced under per-second and per-hour billing with paid-idle
   reuse, and dissected with the packing metrics — which bill you pay
   and *why*.

   Run with: dune exec examples/vm_consolidation.exe *)

open Dbp_core
module BM = Dbp_billing.Billing_model
module BE = Dbp_billing.Billed_engine

let () =
  let fleet =
    Dbp_workload.Vm_fleet.generate ~seed:7 Dbp_workload.Vm_fleet.default
  in
  Printf.printf "%d VMs over 48 h; mu = %.0f; peak demand %.1f hosts\n\n"
    (Instance.length fleet) (Instance.mu fleet)
    (Step_function.max_value (Instance.size_profile fleet));

  let algorithms =
    [
      ("first-fit", Dbp_online.Any_fit.first_fit);
      ("best-fit", Dbp_online.Any_fit.best_fit);
      ("cbdt-ff", Dbp_online.Classify_departure.tuned fleet);
      ("aligned-ff", Dbp_online.Departure_aligned.tuned fleet);
    ]
  in
  Printf.printf "%-12s %12s %12s %8s %8s %10s\n" "algorithm" "host-hours"
    "hourly bill" "hosts" "util" "low-level";
  List.iter
    (fun (name, algo) ->
      let per_second = BE.run ~model:BM.per_second algo fleet in
      let hourly = BE.run ~model:(BM.quantum 1.) algo fleet in
      let m = Metrics.of_packing per_second.BE.packing in
      Printf.printf "%-12s %12.1f %12.1f %8d %7.1f%% %9.1f%%\n" name
        per_second.BE.usage hourly.BE.cost m.Metrics.bins
        (100. *. m.Metrics.utilization)
        (100. *. m.Metrics.low_level_fraction))
    algorithms;

  Printf.printf "\nlower bound: %.1f host-hours\n"
    (Dbp_opt.Lower_bounds.best fleet);
  Printf.printf
    "\n\
     Reading the metrics: on this heavy-tailed trace blind first fit\n\
     wins -- the Pareto lifetimes (mu ~ 160) stretch the classifiers'\n\
     grids so far that category bins sit half-empty (their low-level\n\
     column is the highest).  Soft alignment recovers part of the gap.\n\
     The worst-case picture is the opposite: see the adversary example,\n\
     where first fit pays ~mu and the classifiers stay near optimal.\n\
     Average-case frugality and worst-case insurance are different\n\
     products; this library lets you price both.\n"
