examples/flex_batch.ml: Dbp_core Dbp_flex Dbp_workload Float List Option Printf
