examples/autoscaler.ml: Array Dbp_core Dbp_online Dbp_opt Dbp_workload Format Hashtbl Instance Item Packing Printf
