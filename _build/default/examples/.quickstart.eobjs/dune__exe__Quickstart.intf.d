examples/quickstart.mli:
