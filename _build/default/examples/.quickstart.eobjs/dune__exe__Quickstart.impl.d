examples/quickstart.ml: Dbp_core Dbp_offline Dbp_online Dbp_opt Format Instance Item Packing
