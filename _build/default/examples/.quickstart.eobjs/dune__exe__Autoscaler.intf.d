examples/autoscaler.mli:
