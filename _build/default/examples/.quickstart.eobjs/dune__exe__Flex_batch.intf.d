examples/flex_batch.mli:
