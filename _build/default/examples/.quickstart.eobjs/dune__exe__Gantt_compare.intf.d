examples/gantt_compare.mli:
