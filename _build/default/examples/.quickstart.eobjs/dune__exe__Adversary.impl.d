examples/adversary.ml: Dbp_core Dbp_online Dbp_opt Dbp_theory Dbp_workload Float List Packing Printf
