examples/gantt_compare.ml: Dbp_offline Dbp_online Dbp_opt Dbp_sim Dbp_workload Printf
