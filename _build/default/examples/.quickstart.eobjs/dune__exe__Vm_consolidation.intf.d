examples/vm_consolidation.mli:
