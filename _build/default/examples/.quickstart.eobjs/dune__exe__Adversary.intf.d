examples/adversary.mli:
