examples/cloud_gaming_day.mli:
