examples/cloud_gaming_day.ml: Array Dbp_core Dbp_online Dbp_sim Dbp_workload Float Format Instance List Packing Printf Step_function
