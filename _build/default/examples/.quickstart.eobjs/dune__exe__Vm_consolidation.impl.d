examples/vm_consolidation.ml: Dbp_billing Dbp_core Dbp_online Dbp_opt Dbp_workload Instance List Metrics Printf Step_function
