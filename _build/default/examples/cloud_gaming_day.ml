(* Cloud gaming, the paper's motivating application: game sessions with
   predictable lengths are dispatched to rented game servers; the bill is
   the accumulated server time.

   This example simulates two days of sessions over a five-title
   catalogue with a diurnal arrival pattern, packs the same session
   stream with every algorithm in the portfolio, and prints the rented
   server-hours, the fleet size over the day, and the saving of the best
   clairvoyant strategy over blind packing.

   Run with: dune exec examples/cloud_gaming_day.exe *)

open Dbp_core

let () =
  let config = { Dbp_workload.Cloud_gaming.default with days = 2. } in
  let sessions = Dbp_workload.Cloud_gaming.generate ~seed:2026 config in
  Printf.printf "catalogue:\n";
  Array.iter
    (fun t -> Format.printf "  %a@." Dbp_workload.Cloud_gaming.pp_title t)
    config.Dbp_workload.Cloud_gaming.titles;
  Printf.printf "\n%d sessions over %g days; peak demand %.1f servers\n\n"
    (Instance.length sessions) config.Dbp_workload.Cloud_gaming.days
    (Step_function.max_value (Instance.size_profile sessions));

  let scores = Dbp_sim.Runner.evaluate Dbp_sim.Runner.default_portfolio sessions in
  Dbp_sim.Report.print ~title:"server time by algorithm (minutes)"
    (Dbp_sim.Runner.score_table scores);

  (* Fleet size over the first day, sampled hourly, for first-fit vs the
     tuned classify-by-departure-time strategy. *)
  let ff =
    Packing.open_bins_profile
      (Dbp_online.Engine.run Dbp_online.Any_fit.first_fit sessions)
  and cbdt =
    Packing.open_bins_profile
      (Dbp_online.Engine.run (Dbp_online.Classify_departure.tuned sessions) sessions)
  in
  print_newline ();
  print_endline "hour  first-fit  cbdt-ff   (open servers, day 1)";
  for hour = 0 to 23 do
    let t = float_of_int hour *. 60. in
    Printf.printf "%4d  %9.0f  %7.0f\n" hour (Step_function.value_at ff t)
      (Step_function.value_at cbdt t)
  done;

  let usage_of label =
    let s = List.find (fun s -> s.Dbp_sim.Runner.label = label) scores in
    s.Dbp_sim.Runner.usage
  in
  let blind = usage_of "first-fit" in
  let best_clairvoyant =
    List.fold_left
      (fun acc l -> Float.min acc (usage_of l))
      Float.infinity
      [ "cbdt-ff*"; "cbd-ff*"; "combined-ff*"; "ddff" ]
  in
  Printf.printf
    "\nbest clairvoyant vs online first-fit: %.0f vs %.0f server-minutes (%+.1f%%)\n"
    best_clairvoyant blind
    (100. *. ((best_clairvoyant /. blind) -. 1.))
