(** Lower bounds on OPT_total(R) (paper Section 3.2).

    OPT_total is the cost of an optimal offline adversary allowed to
    repack everything at any time: the integral over the span of
    OPT(R, t), the minimum number of bins the active items can be
    repacked into at time t.  Three lower bounds:

    - Proposition 1: d(R), the total time-space demand;
    - Proposition 2: span(R);
    - Proposition 3: integral of ceil(S(t)) dt, with S(t) the total active
      size — tighter than both. *)

open Dbp_core

val demand : Instance.t -> float
(** Proposition 1. *)

val span : Instance.t -> float
(** Proposition 2. *)

val ceil_size_integral : Instance.t -> float
(** Proposition 3. *)

val best : Instance.t -> float
(** The largest of the three bounds.  Since Proposition 3 dominates the
    other two pointwise this equals {!ceil_size_integral} (up to float
    noise), but taking the max keeps the guarantee explicit. *)

val ratio_to_best : Instance.t -> float -> float
(** [ratio_to_best inst usage] is [usage /. best inst]: a certified upper
    bound on the algorithm-to-optimal ratio on this instance (the true
    ratio can only be smaller, because [best] underestimates OPT).
    Returns [1.] for an empty instance. *)
