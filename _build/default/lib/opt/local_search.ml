open Dbp_core

type stats = {
  moves : int;
  rounds : int;
  initial_usage : float;
  final_usage : float;
}

(* Float residue from add-then-sub of indicators must not pollute the
   support; flush near-zeros after every removal. *)
let clean profile =
  Step_function.map (fun v -> if Float.abs v < 1e-12 then 0. else v) profile

type work_bin = {
  mutable items : Item.t list;
  mutable profile : Step_function.t;
}

let span_of b = Step_function.support_length b.profile

let remove_item b item =
  b.items <- List.filter (fun r -> not (Item.equal r item)) b.items;
  b.profile <-
    clean
      (Step_function.sub b.profile
         (Step_function.indicator (Item.interval item) (Item.size item)))

let add_item b item =
  b.items <- item :: b.items;
  b.profile <-
    Step_function.add b.profile
      (Step_function.indicator (Item.interval item) (Item.size item))

let fits b item =
  Step_function.max_over b.profile (Item.interval item) +. Item.size item
  <= Bin_state.capacity +. Bin_state.tolerance

(* A relocation to a *fresh* bin can never strictly improve: removing an
   item shrinks its source bin's span by at most the item's duration,
   which is exactly what the fresh bin would cost.  So only existing bins
   are candidate targets. *)
let improve ?(max_rounds = 50) packing =
  let instance = Packing.instance packing in
  let bins =
    Packing.bins packing
    |> List.map (fun b ->
           { items = Bin_state.items b; profile = Bin_state.level_profile b })
    |> Array.of_list
  in
  let initial_usage = Packing.total_usage_time packing in
  let moves = ref 0 and rounds = ref 0 in
  let items = Instance.items instance in
  let home = Hashtbl.create 64 in
  Array.iteri
    (fun i b -> List.iter (fun r -> Hashtbl.replace home (Item.id r) i) b.items)
    bins;
  let try_move item =
    let src_idx = Hashtbl.find home (Item.id item) in
    let src = bins.(src_idx) in
    (* gain of removing from source *)
    let span_src = span_of src in
    remove_item src item;
    let removal_gain = span_src -. span_of src in
    let best = ref None in
    Array.iteri
      (fun i target ->
        if i <> src_idx && fits target item then begin
          let span_t = span_of target in
          add_item target item;
          let added_cost = span_of target -. span_t in
          remove_item target item;
          let delta = added_cost -. removal_gain in
          match !best with
          | Some (_, best_delta) when best_delta <= delta +. 1e-12 -> ()
          | _ -> if delta < -1e-9 then best := Some (i, delta)
        end)
      bins;
    match !best with
    | Some (i, _) ->
        add_item bins.(i) item;
        Hashtbl.replace home (Item.id item) i;
        incr moves;
        true
    | None ->
        add_item src item;
        false
  in
  let rec loop () =
    if !rounds >= max_rounds then ()
    else begin
      incr rounds;
      let improved = List.fold_left (fun acc r -> try_move r || acc) false items in
      if improved then loop ()
    end
  in
  if Array.length bins > 1 then loop ();
  let final_bins =
    Array.to_list bins
    |> List.mapi (fun index b ->
           List.sort Item.compare_arrival b.items
           |> List.fold_left Bin_state.place (Bin_state.empty ~index))
  in
  let improved = Packing.of_bins instance final_bins in
  ( improved,
    {
      moves = !moves;
      rounds = !rounds;
      initial_usage;
      final_usage = Packing.total_usage_time improved;
    } )

let upper_bound ?max_rounds instance =
  let improved, _ = improve ?max_rounds (Dbp_offline.Ddff.pack instance) in
  Packing.total_usage_time improved
