(** Exact optimal packing *without* migration, for tiny instances.

    The paper's ratios are measured against the repacking adversary
    ({!Opt_total}), which lower-bounds this stricter optimum; the
    brute-force solver gives the true best achievable by any (offline,
    non-migrating) packing algorithm, used in tests and in the Theorem 3
    gadget experiment where exact small optima matter.

    Branch and bound over items in arrival order: each item goes into one
    of the bins already used or the next fresh bin (canonical bin
    numbering kills bin-permutation symmetry); partial total usage is a
    monotone lower bound, enabling pruning. *)

open Dbp_core

val max_items : int
(** Guard: instances larger than this are refused (default 16) since the
    search is exponential. *)

val optimal_packing : ?limit:int -> Instance.t -> Packing.t
(** A packing of minimum total usage time.
    @param limit overrides {!max_items}.
    @raise Invalid_argument if the instance has more than [limit] items. *)

val optimal_usage : ?limit:int -> Instance.t -> float
